# Empty compiler generated dependencies file for network_picker.
# This may be replaced when dependencies are built.
