file(REMOVE_RECURSE
  "CMakeFiles/network_picker.dir/network_picker.cpp.o"
  "CMakeFiles/network_picker.dir/network_picker.cpp.o.d"
  "network_picker"
  "network_picker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_picker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
