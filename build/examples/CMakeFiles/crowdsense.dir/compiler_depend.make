# Empty compiler generated dependencies file for crowdsense.
# This may be replaced when dependencies are built.
