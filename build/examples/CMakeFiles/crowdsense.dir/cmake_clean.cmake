file(REMOVE_RECURSE
  "CMakeFiles/crowdsense.dir/crowdsense.cpp.o"
  "CMakeFiles/crowdsense.dir/crowdsense.cpp.o.d"
  "crowdsense"
  "crowdsense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowdsense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
