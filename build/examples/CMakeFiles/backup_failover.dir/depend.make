# Empty dependencies file for backup_failover.
# This may be replaced when dependencies are built.
