file(REMOVE_RECURSE
  "CMakeFiles/backup_failover.dir/backup_failover.cpp.o"
  "CMakeFiles/backup_failover.dir/backup_failover.cpp.o.d"
  "backup_failover"
  "backup_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backup_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
