# Empty compiler generated dependencies file for app_replay.
# This may be replaced when dependencies are built.
