file(REMOVE_RECURSE
  "CMakeFiles/app_replay.dir/app_replay.cpp.o"
  "CMakeFiles/app_replay.dir/app_replay.cpp.o.d"
  "app_replay"
  "app_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
