file(REMOVE_RECURSE
  "CMakeFiles/mnshell.dir/mnshell.cpp.o"
  "CMakeFiles/mnshell.dir/mnshell.cpp.o.d"
  "mnshell"
  "mnshell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnshell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
