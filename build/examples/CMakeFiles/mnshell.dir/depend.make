# Empty dependencies file for mnshell.
# This may be replaced when dependencies are built.
