# Empty dependencies file for mn_util.
# This may be replaced when dependencies are built.
