file(REMOVE_RECURSE
  "libmn_util.a"
)
