file(REMOVE_RECURSE
  "CMakeFiles/mn_util.dir/ascii_plot.cc.o"
  "CMakeFiles/mn_util.dir/ascii_plot.cc.o.d"
  "CMakeFiles/mn_util.dir/csv.cc.o"
  "CMakeFiles/mn_util.dir/csv.cc.o.d"
  "CMakeFiles/mn_util.dir/geo.cc.o"
  "CMakeFiles/mn_util.dir/geo.cc.o.d"
  "CMakeFiles/mn_util.dir/interval_set.cc.o"
  "CMakeFiles/mn_util.dir/interval_set.cc.o.d"
  "CMakeFiles/mn_util.dir/rng.cc.o"
  "CMakeFiles/mn_util.dir/rng.cc.o.d"
  "CMakeFiles/mn_util.dir/stats.cc.o"
  "CMakeFiles/mn_util.dir/stats.cc.o.d"
  "CMakeFiles/mn_util.dir/table.cc.o"
  "CMakeFiles/mn_util.dir/table.cc.o.d"
  "libmn_util.a"
  "libmn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
