# Empty dependencies file for mn_mptcp.
# This may be replaced when dependencies are built.
