file(REMOVE_RECURSE
  "libmn_mptcp.a"
)
