file(REMOVE_RECURSE
  "CMakeFiles/mn_mptcp.dir/mptcp_agent.cc.o"
  "CMakeFiles/mn_mptcp.dir/mptcp_agent.cc.o.d"
  "CMakeFiles/mn_mptcp.dir/testbed.cc.o"
  "CMakeFiles/mn_mptcp.dir/testbed.cc.o.d"
  "libmn_mptcp.a"
  "libmn_mptcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mn_mptcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
