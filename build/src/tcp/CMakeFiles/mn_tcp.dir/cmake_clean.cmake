file(REMOVE_RECURSE
  "CMakeFiles/mn_tcp.dir/cc.cc.o"
  "CMakeFiles/mn_tcp.dir/cc.cc.o.d"
  "CMakeFiles/mn_tcp.dir/flow.cc.o"
  "CMakeFiles/mn_tcp.dir/flow.cc.o.d"
  "CMakeFiles/mn_tcp.dir/mux.cc.o"
  "CMakeFiles/mn_tcp.dir/mux.cc.o.d"
  "CMakeFiles/mn_tcp.dir/tcp_endpoint.cc.o"
  "CMakeFiles/mn_tcp.dir/tcp_endpoint.cc.o.d"
  "libmn_tcp.a"
  "libmn_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mn_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
