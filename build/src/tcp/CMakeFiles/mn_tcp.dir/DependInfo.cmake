
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/cc.cc" "src/tcp/CMakeFiles/mn_tcp.dir/cc.cc.o" "gcc" "src/tcp/CMakeFiles/mn_tcp.dir/cc.cc.o.d"
  "/root/repo/src/tcp/flow.cc" "src/tcp/CMakeFiles/mn_tcp.dir/flow.cc.o" "gcc" "src/tcp/CMakeFiles/mn_tcp.dir/flow.cc.o.d"
  "/root/repo/src/tcp/mux.cc" "src/tcp/CMakeFiles/mn_tcp.dir/mux.cc.o" "gcc" "src/tcp/CMakeFiles/mn_tcp.dir/mux.cc.o.d"
  "/root/repo/src/tcp/tcp_endpoint.cc" "src/tcp/CMakeFiles/mn_tcp.dir/tcp_endpoint.cc.o" "gcc" "src/tcp/CMakeFiles/mn_tcp.dir/tcp_endpoint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/mn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
