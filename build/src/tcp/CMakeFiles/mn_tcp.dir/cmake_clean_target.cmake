file(REMOVE_RECURSE
  "libmn_tcp.a"
)
