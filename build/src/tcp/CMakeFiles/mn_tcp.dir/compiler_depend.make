# Empty compiler generated dependencies file for mn_tcp.
# This may be replaced when dependencies are built.
