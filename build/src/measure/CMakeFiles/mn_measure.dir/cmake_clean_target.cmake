file(REMOVE_RECURSE
  "libmn_measure.a"
)
