file(REMOVE_RECURSE
  "CMakeFiles/mn_measure.dir/campaign.cc.o"
  "CMakeFiles/mn_measure.dir/campaign.cc.o.d"
  "CMakeFiles/mn_measure.dir/clustering.cc.o"
  "CMakeFiles/mn_measure.dir/clustering.cc.o.d"
  "CMakeFiles/mn_measure.dir/locations20.cc.o"
  "CMakeFiles/mn_measure.dir/locations20.cc.o.d"
  "CMakeFiles/mn_measure.dir/world.cc.o"
  "CMakeFiles/mn_measure.dir/world.cc.o.d"
  "libmn_measure.a"
  "libmn_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mn_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
