# Empty compiler generated dependencies file for mn_measure.
# This may be replaced when dependencies are built.
