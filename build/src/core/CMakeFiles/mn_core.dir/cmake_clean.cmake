file(REMOVE_RECURSE
  "CMakeFiles/mn_core.dir/energy_policy.cc.o"
  "CMakeFiles/mn_core.dir/energy_policy.cc.o.d"
  "CMakeFiles/mn_core.dir/experiment.cc.o"
  "CMakeFiles/mn_core.dir/experiment.cc.o.d"
  "CMakeFiles/mn_core.dir/policy.cc.o"
  "CMakeFiles/mn_core.dir/policy.cc.o.d"
  "libmn_core.a"
  "libmn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
