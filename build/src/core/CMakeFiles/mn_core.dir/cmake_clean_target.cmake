file(REMOVE_RECURSE
  "libmn_core.a"
)
