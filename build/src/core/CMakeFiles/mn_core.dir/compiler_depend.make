# Empty compiler generated dependencies file for mn_core.
# This may be replaced when dependencies are built.
