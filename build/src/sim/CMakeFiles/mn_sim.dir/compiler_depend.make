# Empty compiler generated dependencies file for mn_sim.
# This may be replaced when dependencies are built.
