file(REMOVE_RECURSE
  "libmn_sim.a"
)
