file(REMOVE_RECURSE
  "CMakeFiles/mn_sim.dir/simulator.cc.o"
  "CMakeFiles/mn_sim.dir/simulator.cc.o.d"
  "libmn_sim.a"
  "libmn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
