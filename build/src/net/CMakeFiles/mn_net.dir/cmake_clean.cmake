file(REMOVE_RECURSE
  "CMakeFiles/mn_net.dir/delivery_trace.cc.o"
  "CMakeFiles/mn_net.dir/delivery_trace.cc.o.d"
  "CMakeFiles/mn_net.dir/links.cc.o"
  "CMakeFiles/mn_net.dir/links.cc.o.d"
  "CMakeFiles/mn_net.dir/path.cc.o"
  "CMakeFiles/mn_net.dir/path.cc.o.d"
  "CMakeFiles/mn_net.dir/trace_gen.cc.o"
  "CMakeFiles/mn_net.dir/trace_gen.cc.o.d"
  "libmn_net.a"
  "libmn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
