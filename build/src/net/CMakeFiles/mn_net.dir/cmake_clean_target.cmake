file(REMOVE_RECURSE
  "libmn_net.a"
)
