
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/delivery_trace.cc" "src/net/CMakeFiles/mn_net.dir/delivery_trace.cc.o" "gcc" "src/net/CMakeFiles/mn_net.dir/delivery_trace.cc.o.d"
  "/root/repo/src/net/links.cc" "src/net/CMakeFiles/mn_net.dir/links.cc.o" "gcc" "src/net/CMakeFiles/mn_net.dir/links.cc.o.d"
  "/root/repo/src/net/path.cc" "src/net/CMakeFiles/mn_net.dir/path.cc.o" "gcc" "src/net/CMakeFiles/mn_net.dir/path.cc.o.d"
  "/root/repo/src/net/trace_gen.cc" "src/net/CMakeFiles/mn_net.dir/trace_gen.cc.o" "gcc" "src/net/CMakeFiles/mn_net.dir/trace_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
