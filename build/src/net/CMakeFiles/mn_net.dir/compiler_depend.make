# Empty compiler generated dependencies file for mn_net.
# This may be replaced when dependencies are built.
