file(REMOVE_RECURSE
  "CMakeFiles/mn_energy.dir/power_model.cc.o"
  "CMakeFiles/mn_energy.dir/power_model.cc.o.d"
  "libmn_energy.a"
  "libmn_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mn_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
