# Empty compiler generated dependencies file for mn_energy.
# This may be replaced when dependencies are built.
