file(REMOVE_RECURSE
  "libmn_energy.a"
)
