# Empty dependencies file for mn_emu.
# This may be replaced when dependencies are built.
