file(REMOVE_RECURSE
  "CMakeFiles/mn_emu.dir/http.cc.o"
  "CMakeFiles/mn_emu.dir/http.cc.o.d"
  "CMakeFiles/mn_emu.dir/mpshell.cc.o"
  "CMakeFiles/mn_emu.dir/mpshell.cc.o.d"
  "CMakeFiles/mn_emu.dir/packet_log.cc.o"
  "CMakeFiles/mn_emu.dir/packet_log.cc.o.d"
  "CMakeFiles/mn_emu.dir/record.cc.o"
  "CMakeFiles/mn_emu.dir/record.cc.o.d"
  "libmn_emu.a"
  "libmn_emu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mn_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
