file(REMOVE_RECURSE
  "libmn_emu.a"
)
