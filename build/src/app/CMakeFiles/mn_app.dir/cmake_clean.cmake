file(REMOVE_RECURSE
  "CMakeFiles/mn_app.dir/pattern.cc.o"
  "CMakeFiles/mn_app.dir/pattern.cc.o.d"
  "CMakeFiles/mn_app.dir/replay.cc.o"
  "CMakeFiles/mn_app.dir/replay.cc.o.d"
  "libmn_app.a"
  "libmn_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mn_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
