file(REMOVE_RECURSE
  "libmn_app.a"
)
