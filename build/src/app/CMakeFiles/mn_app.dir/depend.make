# Empty dependencies file for mn_app.
# This may be replaced when dependencies are built.
