# Empty dependencies file for fig20_longflow_replay.
# This may be replaced when dependencies are built.
