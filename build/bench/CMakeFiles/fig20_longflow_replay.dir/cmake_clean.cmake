file(REMOVE_RECURSE
  "CMakeFiles/fig20_longflow_replay.dir/fig20_longflow_replay.cc.o"
  "CMakeFiles/fig20_longflow_replay.dir/fig20_longflow_replay.cc.o.d"
  "fig20_longflow_replay"
  "fig20_longflow_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_longflow_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
