file(REMOVE_RECURSE
  "CMakeFiles/fig11_flowsize_lte.dir/fig11_flowsize_lte.cc.o"
  "CMakeFiles/fig11_flowsize_lte.dir/fig11_flowsize_lte.cc.o.d"
  "fig11_flowsize_lte"
  "fig11_flowsize_lte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_flowsize_lte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
