# Empty compiler generated dependencies file for fig11_flowsize_lte.
# This may be replaced when dependencies are built.
