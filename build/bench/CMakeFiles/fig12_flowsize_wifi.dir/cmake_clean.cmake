file(REMOVE_RECURSE
  "CMakeFiles/fig12_flowsize_wifi.dir/fig12_flowsize_wifi.cc.o"
  "CMakeFiles/fig12_flowsize_wifi.dir/fig12_flowsize_wifi.cc.o.d"
  "fig12_flowsize_wifi"
  "fig12_flowsize_wifi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_flowsize_wifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
