# Empty dependencies file for fig12_flowsize_wifi.
# This may be replaced when dependencies are built.
