# Empty compiler generated dependencies file for fig18_shortflow_replay.
# This may be replaced when dependencies are built.
