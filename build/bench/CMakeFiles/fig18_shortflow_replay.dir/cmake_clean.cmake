file(REMOVE_RECURSE
  "CMakeFiles/fig18_shortflow_replay.dir/fig18_shortflow_replay.cc.o"
  "CMakeFiles/fig18_shortflow_replay.dir/fig18_shortflow_replay.cc.o.d"
  "fig18_shortflow_replay"
  "fig18_shortflow_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_shortflow_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
