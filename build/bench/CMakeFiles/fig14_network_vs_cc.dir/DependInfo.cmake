
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig14_network_vs_cc.cc" "bench/CMakeFiles/fig14_network_vs_cc.dir/fig14_network_vs_cc.cc.o" "gcc" "bench/CMakeFiles/fig14_network_vs_cc.dir/fig14_network_vs_cc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/mn_app.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/mn_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/mn_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/mn_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mptcp/CMakeFiles/mn_mptcp.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/mn_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
