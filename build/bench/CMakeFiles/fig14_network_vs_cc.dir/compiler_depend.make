# Empty compiler generated dependencies file for fig14_network_vs_cc.
# This may be replaced when dependencies are built.
