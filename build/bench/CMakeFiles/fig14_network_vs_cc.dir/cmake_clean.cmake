file(REMOVE_RECURSE
  "CMakeFiles/fig14_network_vs_cc.dir/fig14_network_vs_cc.cc.o"
  "CMakeFiles/fig14_network_vs_cc.dir/fig14_network_vs_cc.cc.o.d"
  "fig14_network_vs_cc"
  "fig14_network_vs_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_network_vs_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
