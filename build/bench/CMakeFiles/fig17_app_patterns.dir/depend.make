# Empty dependencies file for fig17_app_patterns.
# This may be replaced when dependencies are built.
