file(REMOVE_RECURSE
  "CMakeFiles/fig17_app_patterns.dir/fig17_app_patterns.cc.o"
  "CMakeFiles/fig17_app_patterns.dir/fig17_app_patterns.cc.o.d"
  "fig17_app_patterns"
  "fig17_app_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_app_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
