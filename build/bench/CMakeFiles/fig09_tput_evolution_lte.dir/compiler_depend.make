# Empty compiler generated dependencies file for fig09_tput_evolution_lte.
# This may be replaced when dependencies are built.
