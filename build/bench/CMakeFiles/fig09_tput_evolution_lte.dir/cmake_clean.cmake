file(REMOVE_RECURSE
  "CMakeFiles/fig09_tput_evolution_lte.dir/fig09_tput_evolution_lte.cc.o"
  "CMakeFiles/fig09_tput_evolution_lte.dir/fig09_tput_evolution_lte.cc.o.d"
  "fig09_tput_evolution_lte"
  "fig09_tput_evolution_lte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_tput_evolution_lte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
