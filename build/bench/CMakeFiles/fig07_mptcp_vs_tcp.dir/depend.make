# Empty dependencies file for fig07_mptcp_vs_tcp.
# This may be replaced when dependencies are built.
