file(REMOVE_RECURSE
  "CMakeFiles/fig07_mptcp_vs_tcp.dir/fig07_mptcp_vs_tcp.cc.o"
  "CMakeFiles/fig07_mptcp_vs_tcp.dir/fig07_mptcp_vs_tcp.cc.o.d"
  "fig07_mptcp_vs_tcp"
  "fig07_mptcp_vs_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_mptcp_vs_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
