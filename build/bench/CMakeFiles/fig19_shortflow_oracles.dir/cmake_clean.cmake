file(REMOVE_RECURSE
  "CMakeFiles/fig19_shortflow_oracles.dir/fig19_shortflow_oracles.cc.o"
  "CMakeFiles/fig19_shortflow_oracles.dir/fig19_shortflow_oracles.cc.o.d"
  "fig19_shortflow_oracles"
  "fig19_shortflow_oracles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_shortflow_oracles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
