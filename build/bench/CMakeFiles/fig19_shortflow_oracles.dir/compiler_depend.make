# Empty compiler generated dependencies file for fig19_shortflow_oracles.
# This may be replaced when dependencies are built.
