# Empty dependencies file for fig08_primary_subflow_cdf.
# This may be replaced when dependencies are built.
