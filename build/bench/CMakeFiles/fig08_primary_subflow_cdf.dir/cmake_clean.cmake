file(REMOVE_RECURSE
  "CMakeFiles/fig08_primary_subflow_cdf.dir/fig08_primary_subflow_cdf.cc.o"
  "CMakeFiles/fig08_primary_subflow_cdf.dir/fig08_primary_subflow_cdf.cc.o.d"
  "fig08_primary_subflow_cdf"
  "fig08_primary_subflow_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_primary_subflow_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
