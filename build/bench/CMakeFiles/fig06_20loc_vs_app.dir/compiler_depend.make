# Empty compiler generated dependencies file for fig06_20loc_vs_app.
# This may be replaced when dependencies are built.
