file(REMOVE_RECURSE
  "CMakeFiles/fig06_20loc_vs_app.dir/fig06_20loc_vs_app.cc.o"
  "CMakeFiles/fig06_20loc_vs_app.dir/fig06_20loc_vs_app.cc.o.d"
  "fig06_20loc_vs_app"
  "fig06_20loc_vs_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_20loc_vs_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
