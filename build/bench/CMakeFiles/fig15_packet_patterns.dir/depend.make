# Empty dependencies file for fig15_packet_patterns.
# This may be replaced when dependencies are built.
