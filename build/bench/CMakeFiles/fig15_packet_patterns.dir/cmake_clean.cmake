file(REMOVE_RECURSE
  "CMakeFiles/fig15_packet_patterns.dir/fig15_packet_patterns.cc.o"
  "CMakeFiles/fig15_packet_patterns.dir/fig15_packet_patterns.cc.o.d"
  "fig15_packet_patterns"
  "fig15_packet_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_packet_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
