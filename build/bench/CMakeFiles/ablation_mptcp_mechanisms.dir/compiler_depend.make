# Empty compiler generated dependencies file for ablation_mptcp_mechanisms.
# This may be replaced when dependencies are built.
