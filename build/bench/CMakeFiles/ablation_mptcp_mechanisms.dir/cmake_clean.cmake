file(REMOVE_RECURSE
  "CMakeFiles/ablation_mptcp_mechanisms.dir/ablation_mptcp_mechanisms.cc.o"
  "CMakeFiles/ablation_mptcp_mechanisms.dir/ablation_mptcp_mechanisms.cc.o.d"
  "ablation_mptcp_mechanisms"
  "ablation_mptcp_mechanisms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mptcp_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
