# Empty compiler generated dependencies file for futurework_energy_policy.
# This may be replaced when dependencies are built.
