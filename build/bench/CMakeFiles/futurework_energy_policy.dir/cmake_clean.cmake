file(REMOVE_RECURSE
  "CMakeFiles/futurework_energy_policy.dir/futurework_energy_policy.cc.o"
  "CMakeFiles/futurework_energy_policy.dir/futurework_energy_policy.cc.o.d"
  "futurework_energy_policy"
  "futurework_energy_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/futurework_energy_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
