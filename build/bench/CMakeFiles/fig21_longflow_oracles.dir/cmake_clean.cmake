file(REMOVE_RECURSE
  "CMakeFiles/fig21_longflow_oracles.dir/fig21_longflow_oracles.cc.o"
  "CMakeFiles/fig21_longflow_oracles.dir/fig21_longflow_oracles.cc.o.d"
  "fig21_longflow_oracles"
  "fig21_longflow_oracles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_longflow_oracles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
