# Empty dependencies file for fig21_longflow_oracles.
# This may be replaced when dependencies are built.
