file(REMOVE_RECURSE
  "CMakeFiles/sec36_backup_energy.dir/sec36_backup_energy.cc.o"
  "CMakeFiles/sec36_backup_energy.dir/sec36_backup_energy.cc.o.d"
  "sec36_backup_energy"
  "sec36_backup_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec36_backup_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
