# Empty compiler generated dependencies file for sec36_backup_energy.
# This may be replaced when dependencies are built.
