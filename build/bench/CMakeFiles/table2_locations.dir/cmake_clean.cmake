file(REMOVE_RECURSE
  "CMakeFiles/table2_locations.dir/table2_locations.cc.o"
  "CMakeFiles/table2_locations.dir/table2_locations.cc.o.d"
  "table2_locations"
  "table2_locations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_locations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
