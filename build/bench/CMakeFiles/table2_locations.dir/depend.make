# Empty dependencies file for table2_locations.
# This may be replaced when dependencies are built.
