# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig10_tput_evolution_wifi.
