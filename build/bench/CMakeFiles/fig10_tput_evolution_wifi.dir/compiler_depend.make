# Empty compiler generated dependencies file for fig10_tput_evolution_wifi.
# This may be replaced when dependencies are built.
