file(REMOVE_RECURSE
  "CMakeFiles/fig10_tput_evolution_wifi.dir/fig10_tput_evolution_wifi.cc.o"
  "CMakeFiles/fig10_tput_evolution_wifi.dir/fig10_tput_evolution_wifi.cc.o.d"
  "fig10_tput_evolution_wifi"
  "fig10_tput_evolution_wifi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tput_evolution_wifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
