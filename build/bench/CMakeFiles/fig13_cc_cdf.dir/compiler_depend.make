# Empty compiler generated dependencies file for fig13_cc_cdf.
# This may be replaced when dependencies are built.
