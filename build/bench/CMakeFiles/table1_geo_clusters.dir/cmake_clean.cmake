file(REMOVE_RECURSE
  "CMakeFiles/table1_geo_clusters.dir/table1_geo_clusters.cc.o"
  "CMakeFiles/table1_geo_clusters.dir/table1_geo_clusters.cc.o.d"
  "table1_geo_clusters"
  "table1_geo_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_geo_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
