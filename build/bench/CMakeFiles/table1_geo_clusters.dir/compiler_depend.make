# Empty compiler generated dependencies file for table1_geo_clusters.
# This may be replaced when dependencies are built.
