# Empty compiler generated dependencies file for fig03_tput_cdf.
# This may be replaced when dependencies are built.
