file(REMOVE_RECURSE
  "CMakeFiles/fig03_tput_cdf.dir/fig03_tput_cdf.cc.o"
  "CMakeFiles/fig03_tput_cdf.dir/fig03_tput_cdf.cc.o.d"
  "fig03_tput_cdf"
  "fig03_tput_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_tput_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
