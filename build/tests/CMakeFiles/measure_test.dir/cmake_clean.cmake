file(REMOVE_RECURSE
  "CMakeFiles/measure_test.dir/measure/campaign_test.cc.o"
  "CMakeFiles/measure_test.dir/measure/campaign_test.cc.o.d"
  "CMakeFiles/measure_test.dir/measure/clustering_test.cc.o"
  "CMakeFiles/measure_test.dir/measure/clustering_test.cc.o.d"
  "CMakeFiles/measure_test.dir/measure/locations20_test.cc.o"
  "CMakeFiles/measure_test.dir/measure/locations20_test.cc.o.d"
  "CMakeFiles/measure_test.dir/measure/world_test.cc.o"
  "CMakeFiles/measure_test.dir/measure/world_test.cc.o.d"
  "measure_test"
  "measure_test.pdb"
  "measure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
