#include "core/config.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mn {
namespace {

TEST(TransportConfig, SinglePathNames) {
  EXPECT_EQ(TransportConfig::single_path(PathId::kWifi).name(), "WiFi-TCP");
  EXPECT_EQ(TransportConfig::single_path(PathId::kLte).name(), "LTE-TCP");
}

TEST(TransportConfig, MptcpNames) {
  EXPECT_EQ(TransportConfig::mptcp(PathId::kWifi, CcAlgo::kCoupled).name(),
            "MPTCP-Coupled-WiFi");
  EXPECT_EQ(TransportConfig::mptcp(PathId::kLte, CcAlgo::kDecoupled).name(),
            "MPTCP-Decoupled-LTE");
}

TEST(TransportConfig, ReplayConfigsAreTheSixFromSection5) {
  const auto configs = replay_configs();
  ASSERT_EQ(configs.size(), 6u);
  std::set<std::string> names;
  for (const auto& c : configs) names.insert(c.name());
  EXPECT_TRUE(names.count("WiFi-TCP"));
  EXPECT_TRUE(names.count("LTE-TCP"));
  EXPECT_TRUE(names.count("MPTCP-Coupled-WiFi"));
  EXPECT_TRUE(names.count("MPTCP-Coupled-LTE"));
  EXPECT_TRUE(names.count("MPTCP-Decoupled-WiFi"));
  EXPECT_TRUE(names.count("MPTCP-Decoupled-LTE"));
}

TEST(PathId, OtherPathFlips) {
  EXPECT_EQ(other_path(PathId::kWifi), PathId::kLte);
  EXPECT_EQ(other_path(PathId::kLte), PathId::kWifi);
}

}  // namespace
}  // namespace mn
