#include "core/policy.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace mn {
namespace {

LinkEstimate est(double wifi, double lte) {
  LinkEstimate e;
  e.wifi_down_mbps = wifi;
  e.lte_down_mbps = lte;
  return e;
}

TEST(Policy, AlwaysWifiIsTheAndroidDefault) {
  const auto c = always_wifi_policy();
  EXPECT_EQ(c.kind, TransportKind::kSinglePath);
  EXPECT_EQ(c.path, PathId::kWifi);
}

TEST(Policy, BestSinglePathPicksFasterNetwork) {
  EXPECT_EQ(best_single_path_policy(est(10, 5)).path, PathId::kWifi);
  EXPECT_EQ(best_single_path_policy(est(3, 12)).path, PathId::kLte);
  EXPECT_EQ(best_single_path_policy(est(7, 7)).path, PathId::kWifi);  // tie -> WiFi
}

TEST(Policy, AdaptiveUsesSinglePathForShortFlows) {
  const auto c = adaptive_policy(est(5, 10), 10'000);
  EXPECT_EQ(c.kind, TransportKind::kSinglePath);
  EXPECT_EQ(c.path, PathId::kLte);
}

TEST(Policy, AdaptiveUsesMptcpForLongFlowsOnComparableLinks) {
  const auto c = adaptive_policy(est(8, 10), 1'000'000);
  EXPECT_EQ(c.kind, TransportKind::kMptcp);
  EXPECT_EQ(c.mp.primary, PathId::kLte);
  EXPECT_EQ(c.mp.cc, CcAlgo::kCoupled);
}

TEST(Policy, AdaptiveAvoidsMptcpOnDisparateLinks) {
  // Figure 7a regime: one link 10x the other.
  const auto c = adaptive_policy(est(20, 1.5), 1'000'000);
  EXPECT_EQ(c.kind, TransportKind::kSinglePath);
  EXPECT_EQ(c.path, PathId::kWifi);
}

TEST(Policy, AdaptiveThresholdIsConfigurable) {
  EXPECT_EQ(adaptive_policy(est(8, 10), 50'000, 20'000).kind, TransportKind::kMptcp);
  EXPECT_EQ(adaptive_policy(est(8, 10), 50'000, 200'000).kind,
            TransportKind::kSinglePath);
}

ConfigTimes times_fixture() {
  return {{"WiFi-TCP", 10.0},          {"LTE-TCP", 6.0},
          {"MPTCP-Coupled-WiFi", 7.0}, {"MPTCP-Coupled-LTE", 5.0},
          {"MPTCP-Decoupled-WiFi", 8.0}, {"MPTCP-Decoupled-LTE", 9.0}};
}

TEST(Oracles, ReportTakesMinima) {
  const auto r = make_oracle_report(times_fixture());
  EXPECT_DOUBLE_EQ(r.wifi_tcp, 10.0);
  EXPECT_DOUBLE_EQ(r.single_path_oracle, 6.0);
  EXPECT_DOUBLE_EQ(r.coupled_mptcp_oracle, 5.0);
  EXPECT_DOUBLE_EQ(r.decoupled_mptcp_oracle, 8.0);
  EXPECT_DOUBLE_EQ(r.wifi_primary_oracle, 7.0);
  EXPECT_DOUBLE_EQ(r.lte_primary_oracle, 5.0);
}

TEST(Oracles, MissingConfigThrows) {
  ConfigTimes t = times_fixture();
  t.erase("LTE-TCP");
  EXPECT_THROW(make_oracle_report(t), std::out_of_range);
}

TEST(Oracles, NormalizationAgainstWifiBaseline) {
  const auto r = make_oracle_report(times_fixture());
  const auto n = normalize_oracles({r});
  EXPECT_DOUBLE_EQ(n.wifi_tcp, 1.0);
  EXPECT_DOUBLE_EQ(n.single_path_oracle, 0.6);
  EXPECT_DOUBLE_EQ(n.coupled_mptcp_oracle, 0.5);
}

TEST(Oracles, NormalizationAveragesAcrossConditions) {
  OracleReport a;
  a.wifi_tcp = 10.0;
  a.single_path_oracle = 5.0;
  OracleReport b;
  b.wifi_tcp = 10.0;
  b.single_path_oracle = 10.0;
  const auto n = normalize_oracles({a, b});
  EXPECT_DOUBLE_EQ(n.single_path_oracle, 0.75);
}

TEST(Oracles, EmptyReportsGiveIdentity) {
  const auto n = normalize_oracles({});
  EXPECT_DOUBLE_EQ(n.wifi_tcp, 1.0);
  EXPECT_DOUBLE_EQ(n.single_path_oracle, 1.0);
}

TEST(Stats, NormalQuantileRoundTrip) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(normal_quantile(0.025), -1.959964, 1e-4);
  EXPECT_THROW((void)normal_quantile(0.0), std::runtime_error);
  EXPECT_THROW((void)normal_quantile(1.0), std::runtime_error);
}

}  // namespace
}  // namespace mn
