#include "core/experiment.hpp"

#include <gtest/gtest.h>

namespace mn {
namespace {

LinkSpec mk(double mbps, Duration delay) {
  LinkSpec s;
  s.rate_mbps = mbps;
  s.one_way_delay = delay;
  s.queue_packets = 64;
  return s;
}

MpNetworkSetup net(double wifi = 10, double lte = 8) {
  return symmetric_setup(mk(wifi, msec(10)), mk(lte, msec(30)));
}

TEST(RunTransportFlow, SinglePathUsesOnlyThatNetwork) {
  Simulator sim;
  const auto r = run_transport_flow(sim, net(), TransportConfig::single_path(PathId::kWifi),
                                    500'000, Direction::kDownload);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.subflow_timelines[0].empty());
  EXPECT_TRUE(r.subflow_timelines[1].empty());
}

TEST(RunTransportFlow, MptcpFillsSubflowTimelines) {
  Simulator sim;
  const auto r = run_transport_flow(sim, net(),
                                    TransportConfig::mptcp(PathId::kWifi, CcAlgo::kCoupled),
                                    500'000, Direction::kDownload);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.subflow_timelines[0].empty());
  EXPECT_EQ(r.subflow_paths[0], PathId::kWifi);
  EXPECT_EQ(r.subflow_paths[1], PathId::kLte);
}

TEST(RunTransportFlow, SinglePathOnSlowerLinkIsSlower) {
  Simulator a;
  const auto wifi = run_transport_flow(a, net(12, 3),
                                       TransportConfig::single_path(PathId::kWifi),
                                       1'000'000, Direction::kDownload);
  Simulator b;
  const auto lte = run_transport_flow(b, net(12, 3),
                                      TransportConfig::single_path(PathId::kLte),
                                      1'000'000, Direction::kDownload);
  ASSERT_TRUE(wifi.completed);
  ASSERT_TRUE(lte.completed);
  EXPECT_GT(wifi.throughput_mbps, lte.throughput_mbps);
}

TEST(SweepFlowSizes, ReturnsOnePointPerSize) {
  const std::vector<std::int64_t> sizes{10'000, 100'000, 1'000'000};
  const auto points = sweep_flow_sizes(net(), TransportConfig::single_path(PathId::kWifi),
                                       sizes);
  ASSERT_EQ(points.size(), 3u);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(points[i].flow_bytes, sizes[i]);
    EXPECT_GT(points[i].throughput_mbps, 0.0);
  }
  // Larger flows amortize the handshake: throughput grows with size.
  EXPECT_LT(points[0].throughput_mbps, points[2].throughput_mbps);
}

TEST(SweepFlowSizes, DeterministicAcrossCalls) {
  const std::vector<std::int64_t> sizes{50'000};
  const auto cfg = TransportConfig::mptcp(PathId::kLte, CcAlgo::kDecoupled);
  const auto a = sweep_flow_sizes(net(), cfg, sizes);
  const auto b = sweep_flow_sizes(net(), cfg, sizes);
  EXPECT_DOUBLE_EQ(a[0].throughput_mbps, b[0].throughput_mbps);
}

// Golden determinism check of the parallel sweep: every point is a pure
// function of (net, config, size, dir), so the worker count must never
// change a bit of any result.
TEST(SweepFlowSizes, ParallelSweepIsBitIdenticalToSerial) {
  std::vector<std::int64_t> sizes;
  for (std::int64_t kb = 20; kb <= 200; kb += 20) sizes.push_back(kb * 1000);
  const auto cfg = TransportConfig::mptcp(PathId::kWifi, CcAlgo::kCoupled);
  SweepOptions options;
  options.parallelism = 0;
  const auto serial = sweep_flow_sizes(net(), cfg, sizes, options);
  for (int workers : {1, 4}) {
    options.parallelism = workers;
    const auto parallel = sweep_flow_sizes(net(), cfg, sizes, options);
    ASSERT_EQ(parallel.size(), serial.size()) << "workers=" << workers;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].flow_bytes, serial[i].flow_bytes);
      EXPECT_EQ(parallel[i].throughput_mbps, serial[i].throughput_mbps)
          << "workers=" << workers << " size=" << sizes[i];
      EXPECT_EQ(parallel[i].completion_time.millis(), serial[i].completion_time.millis());
    }
  }
}

}  // namespace
}  // namespace mn
