#include "core/energy_policy.hpp"

#include <gtest/gtest.h>

namespace mn {
namespace {

LinkEstimate est(double wifi_mbps, double lte_mbps, int wifi_rtt_ms = 20,
                 int lte_rtt_ms = 60) {
  LinkEstimate e;
  e.wifi_down_mbps = wifi_mbps;
  e.lte_down_mbps = lte_mbps;
  e.wifi_rtt = msec(wifi_rtt_ms);
  e.lte_rtt = msec(lte_rtt_ms);
  return e;
}

TEST(EnergyCost, SinglePathWifiIsCheapestRadio) {
  const auto wifi = estimate_energy_cost(est(10, 10),
                                         TransportConfig::single_path(PathId::kWifi),
                                         1'000'000);
  const auto lte = estimate_energy_cost(est(10, 10),
                                        TransportConfig::single_path(PathId::kLte),
                                        1'000'000);
  EXPECT_LT(wifi.radio_joules, lte.radio_joules);
}

TEST(EnergyCost, MptcpPaysBothRadios) {
  const auto mptcp = estimate_energy_cost(
      est(10, 10), TransportConfig::mptcp(PathId::kWifi, CcAlgo::kCoupled), 1'000'000);
  const auto wifi = estimate_energy_cost(est(10, 10),
                                         TransportConfig::single_path(PathId::kWifi),
                                         1'000'000);
  EXPECT_GT(mptcp.radio_joules, wifi.radio_joules);
  // ...but finishes sooner on comparable links.
  EXPECT_LT(mptcp.completion_s, wifi.completion_s);
}

TEST(EnergyCost, LteTailDominatesShortFlows) {
  // A 10 KB flow takes well under a second; the 15 s LTE tail dwarfs the
  // active energy (the Section-3.6.2 effect).
  const auto lte = estimate_energy_cost(est(10, 10),
                                        TransportConfig::single_path(PathId::kLte),
                                        10'000);
  EXPECT_GT(lte.radio_joules, 14.0);  // ~ tail_watts * 15 s
}

TEST(EnergyPolicy, ShortFlowsNeverUseMptcp) {
  const auto pick = energy_aware_policy(est(5, 20), 10'000);
  EXPECT_EQ(pick.kind, TransportKind::kSinglePath);
}

TEST(EnergyPolicy, EnergyOnlyPrefersWifiUnlessHopeless) {
  EnergyPolicyConfig cfg;
  cfg.joules_per_second = 0.0;  // pure energy minimization
  const auto pick = energy_aware_policy(est(8, 10), 1'000'000, cfg);
  EXPECT_EQ(pick.kind, TransportKind::kSinglePath);
  EXPECT_EQ(pick.path, PathId::kWifi);
}

TEST(EnergyPolicy, TimeObsessedUserGetsMptcpOnComparableLongFlows) {
  EnergyPolicyConfig cfg;
  cfg.joules_per_second = 1000.0;  // time is everything
  const auto pick = energy_aware_policy(est(10, 9), 5'000'000, cfg);
  EXPECT_EQ(pick.kind, TransportKind::kMptcp);
}

TEST(EnergyPolicy, HopelessWifiStillYieldsLte) {
  EnergyPolicyConfig cfg;
  cfg.joules_per_second = 2.0;
  const auto pick = energy_aware_policy(est(0.2, 15), 2'000'000, cfg);
  // WiFi would take ~80 s: even at 1 W extra, LTE's speed wins.
  EXPECT_EQ(pick.kind, TransportKind::kSinglePath);
  EXPECT_EQ(pick.path, PathId::kLte);
}

TEST(EnergyPolicy, CostsAreInternallyConsistent) {
  const auto c = estimate_energy_cost(est(10, 8),
                                      TransportConfig::single_path(PathId::kLte),
                                      1'000'000, {.joules_per_second = 3.0});
  EXPECT_NEAR(c.total_cost, c.radio_joules + 3.0 * c.completion_s, 1e-9);
  EXPECT_GT(c.completion_s, 0.0);
}

// Sweep the time/energy tradeoff: the chosen config's completion time
// must be non-increasing in joules_per_second (more money on the table
// for speed never makes the pick slower).
class TradeoffSweep : public ::testing::TestWithParam<double> {};

TEST_P(TradeoffSweep, MonotoneTradeoff) {
  const auto e = est(9, 8);
  double prev_time = 1e18;
  for (double jps : {0.0, 0.5, 2.0, 10.0, 100.0}) {
    EnergyPolicyConfig cfg;
    cfg.joules_per_second = jps;
    const auto pick = energy_aware_policy(e, static_cast<std::int64_t>(GetParam()), cfg);
    const auto cost = estimate_energy_cost(e, pick, static_cast<std::int64_t>(GetParam()), cfg);
    EXPECT_LE(cost.completion_s, prev_time + 1e-9);
    prev_time = cost.completion_s;
  }
}

INSTANTIATE_TEST_SUITE_P(FlowSizes, TradeoffSweep,
                         ::testing::Values(200'000, 1'000'000, 10'000'000));

}  // namespace
}  // namespace mn
