#include "tcp/cc.hpp"

#include <gtest/gtest.h>

#include "net/packet.hpp"

namespace mn {
namespace {

constexpr std::int64_t kMss = Packet::kMss;

TEST(RenoCc, StartsAtIw10) {
  RenoCc cc;
  cc.on_established();
  EXPECT_EQ(cc.cwnd_bytes(), 10 * kMss);
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(RenoCc, SlowStartDoublesPerWindow) {
  RenoCc cc;
  cc.on_established();
  const auto before = cc.cwnd_bytes();
  cc.on_ack(before, msec(50));  // ack a full window
  EXPECT_EQ(cc.cwnd_bytes(), 2 * before);
}

TEST(RenoCc, CongestionAvoidanceAddsOneMssPerWindow) {
  RenoCc cc;
  cc.on_established();
  cc.on_enter_recovery(20 * kMss);
  cc.on_exit_recovery();  // now cwnd == ssthresh: CA
  ASSERT_FALSE(cc.in_slow_start());
  const auto cwnd = cc.cwnd_bytes();
  // Ack one full window in MSS pieces.
  std::int64_t acked = 0;
  while (acked < cwnd) {
    cc.on_ack(kMss, msec(50));
    acked += kMss;
  }
  EXPECT_NEAR(static_cast<double>(cc.cwnd_bytes() - cwnd), static_cast<double>(kMss),
              static_cast<double>(kMss) * 0.2);
}

TEST(RenoCc, RecoveryHalvesWindow) {
  RenoCc cc;
  cc.on_established();
  const auto flight = 20 * kMss;
  cc.on_enter_recovery(flight);
  EXPECT_EQ(cc.ssthresh_bytes(), flight / 2);
  // SACK pipe-style recovery: no window inflation.
  EXPECT_EQ(cc.cwnd_bytes(), flight / 2);
  cc.on_dupack_in_recovery();
  EXPECT_EQ(cc.cwnd_bytes(), flight / 2);
  cc.on_exit_recovery();
  EXPECT_EQ(cc.cwnd_bytes(), flight / 2);
}

TEST(RenoCc, RtoCollapsesToOneMss) {
  RenoCc cc;
  cc.on_established();
  cc.on_retransmit_timeout();
  EXPECT_EQ(cc.cwnd_bytes(), kMss);
  EXPECT_EQ(cc.ssthresh_bytes(), 5 * kMss);  // half of IW10
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(RenoCc, SsthreshFloorsAtTwoMss) {
  RenoCc cc;
  cc.on_established();
  cc.on_retransmit_timeout();
  cc.on_retransmit_timeout();
  cc.on_retransmit_timeout();
  EXPECT_GE(cc.ssthresh_bytes(), 2 * kMss);
}

TEST(LiaCc, SingleSubflowBehavesLikeRenoInSlowStart) {
  CoupledGroup group;
  LiaCc cc{group};
  cc.on_established();
  const auto before = cc.cwnd_bytes();
  cc.on_ack(before, msec(50));
  EXPECT_EQ(cc.cwnd_bytes(), 2 * before);
}

TEST(LiaCc, CoupledIncreaseIsAtMostUncoupled) {
  CoupledGroup group;
  LiaCc a{group};
  LiaCc b{group};
  a.on_established();
  b.on_established();
  // Push both into CA.
  a.on_enter_recovery(20 * kMss);
  a.on_exit_recovery();
  b.on_enter_recovery(20 * kMss);
  b.on_exit_recovery();
  const auto a_before = a.cwnd_bytes();
  a.on_ack(kMss, msec(50));
  const auto lia_gain = a.cwnd_bytes() - a_before;

  RenoCc solo;
  solo.on_established();
  solo.on_enter_recovery(20 * kMss);
  solo.on_exit_recovery();
  const auto solo_before = solo.cwnd_bytes();
  solo.on_ack(kMss, msec(50));
  const auto reno_gain = solo.cwnd_bytes() - solo_before;

  EXPECT_LE(lia_gain, reno_gain);
}

TEST(LiaCc, TwoEqualSubflowsGrowSlowerThanTwoRenos) {
  // The essence of coupling: total aggressiveness ~ one TCP, not two.
  CoupledGroup group;
  LiaCc a{group};
  LiaCc b{group};
  for (LiaCc* cc : {&a, &b}) {
    cc->on_established();
    cc->on_enter_recovery(20 * kMss);
    cc->on_exit_recovery();
  }
  std::int64_t lia_total_before = a.cwnd_bytes() + b.cwnd_bytes();
  for (int i = 0; i < 10; ++i) {
    a.on_ack(kMss, msec(50));
    b.on_ack(kMss, msec(50));
  }
  const auto lia_growth = a.cwnd_bytes() + b.cwnd_bytes() - lia_total_before;

  RenoCc ra;
  RenoCc rb;
  for (RenoCc* cc : {&ra, &rb}) {
    cc->on_established();
    cc->on_enter_recovery(20 * kMss);
    cc->on_exit_recovery();
  }
  std::int64_t reno_total_before = ra.cwnd_bytes() + rb.cwnd_bytes();
  for (int i = 0; i < 10; ++i) {
    ra.on_ack(kMss, msec(50));
    rb.on_ack(kMss, msec(50));
  }
  const auto reno_growth = ra.cwnd_bytes() + rb.cwnd_bytes() - reno_total_before;

  EXPECT_LT(lia_growth, reno_growth);
}

TEST(LiaCc, PrefersLowerRttPathViaAlpha) {
  CoupledGroup group;
  LiaCc fast{group};
  LiaCc slow{group};
  for (LiaCc* cc : {&fast, &slow}) {
    cc->on_established();
    cc->on_enter_recovery(20 * kMss);
    cc->on_exit_recovery();
  }
  // Feed RTT samples: alpha favours the path with the better cwnd/rtt^2.
  fast.on_ack(kMss, msec(10));
  slow.on_ack(kMss, msec(200));
  const double alpha = group.alpha();
  EXPECT_GT(alpha, 0.0);
  // With one fast path dominating, alpha approaches total/fast ~ 2.
  EXPECT_GT(alpha, 1.0);
}

TEST(LiaCc, RemovedMemberLeavesGroupConsistent) {
  CoupledGroup group;
  auto a = std::make_unique<LiaCc>(group);
  LiaCc b{group};
  a->on_established();
  b.on_established();
  const auto total_with_two = group.total_cwnd_bytes();
  a.reset();
  EXPECT_LT(group.total_cwnd_bytes(), total_with_two);
  EXPECT_EQ(group.total_cwnd_bytes(), b.cwnd_bytes());
}

TEST(OliaCc, SingleSubflowBehavesLikeRenoInSlowStart) {
  OliaGroup group;
  OliaCc cc{group};
  cc.on_established();
  const auto before = cc.cwnd_bytes();
  cc.on_ack(before, msec(50));
  EXPECT_EQ(cc.cwnd_bytes(), 2 * before);
}

TEST(OliaCc, NeverMoreAggressiveThanReno) {
  OliaGroup group;
  OliaCc a{group};
  OliaCc b{group};
  for (OliaCc* cc : {&a, &b}) {
    cc->on_established();
    cc->on_enter_recovery(20 * kMss);
    cc->on_exit_recovery();
  }
  RenoCc reno;
  reno.on_established();
  reno.on_enter_recovery(20 * kMss);
  reno.on_exit_recovery();
  const auto olia_before = a.cwnd_bytes();
  const auto reno_before = reno.cwnd_bytes();
  a.on_ack(kMss, msec(50));
  reno.on_ack(kMss, msec(50));
  EXPECT_LE(a.cwnd_bytes() - olia_before, reno.cwnd_bytes() - reno_before);
}

TEST(OliaCc, ShiftsCapacityTowardBetterPath) {
  // One path clearly better (lower RTT): after CA rounds its window must
  // grow at least as fast as the worse path's.
  OliaGroup group;
  OliaCc fast{group};
  OliaCc slow{group};
  for (OliaCc* cc : {&fast, &slow}) {
    cc->on_established();
    cc->on_enter_recovery(20 * kMss);
    cc->on_exit_recovery();
  }
  const auto f0 = fast.cwnd_bytes();
  const auto s0 = slow.cwnd_bytes();
  for (int i = 0; i < 200; ++i) {
    fast.on_ack(kMss, msec(20));
    slow.on_ack(kMss, msec(200));
  }
  EXPECT_GE(fast.cwnd_bytes() - f0, slow.cwnd_bytes() - s0);
}

TEST(OliaCc, RemovedMemberLeavesGroupConsistent) {
  OliaGroup group;
  auto a = std::make_unique<OliaCc>(group);
  OliaCc b{group};
  a->on_established();
  b.on_established();
  EXPECT_EQ(group.members().size(), 2u);
  a.reset();
  EXPECT_EQ(group.members().size(), 1u);
  // Surviving member still works.
  b.on_enter_recovery(20 * kMss);
  b.on_exit_recovery();
  b.on_ack(kMss, msec(50));
  SUCCEED();
}

TEST(CubicLiteCc, DecreaseUsesBeta07) {
  CubicLiteCc cc;
  cc.on_established();
  const auto flight = 20 * kMss;
  cc.on_enter_recovery(flight);
  EXPECT_EQ(cc.ssthresh_bytes(), static_cast<std::int64_t>(flight * 0.7));
}

TEST(CubicLiteCc, GrowsBackTowardWmax) {
  CubicLiteCc cc;
  cc.on_established();
  cc.on_enter_recovery(20 * kMss);
  cc.on_exit_recovery();
  const auto start = cc.cwnd_bytes();
  for (int i = 0; i < 400; ++i) cc.on_ack(kMss, msec(50));
  EXPECT_GT(cc.cwnd_bytes(), start);
}

}  // namespace
}  // namespace mn
