#include "tcp/flow.hpp"

#include <gtest/gtest.h>

#include "net/trace_gen.hpp"

namespace mn {
namespace {

LinkSpec mk(double mbps, Duration delay) {
  LinkSpec s;
  s.rate_mbps = mbps;
  s.one_way_delay = delay;
  s.queue_packets = 64;  // a realistic access-link buffer
  return s;
}

TEST(RunBulkFlow, DownloadCompletesWithSaneThroughput) {
  Simulator sim;
  DuplexPath path{sim, mk(50, msec(10)), mk(10, msec(10))};
  const auto r = run_bulk_flow(sim, path, 1'000'000, Direction::kDownload);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.throughput_mbps, 5.0);
  EXPECT_LT(r.throughput_mbps, 10.0);
  EXPECT_GT(r.syn_rtt.usec(), msec(19).usec());
}

TEST(RunBulkFlow, UploadUsesUplinkCapacity) {
  Simulator sim;
  DuplexPath path{sim, mk(5, msec(10)), mk(50, msec(10))};
  const auto r = run_bulk_flow(sim, path, 1'000'000, Direction::kUpload);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.throughput_mbps, 3.0);
  EXPECT_LT(r.throughput_mbps, 5.0);
}

TEST(RunBulkFlow, ShortFlowDominatedByHandshake) {
  Simulator sim;
  DuplexPath path{sim, mk(50, msec(50)), mk(50, msec(50))};
  const auto r = run_bulk_flow(sim, path, 10'000, Direction::kDownload);
  EXPECT_TRUE(r.completed);
  // 1 RTT handshake + ~1 RTT data: completion must exceed 2 one-way
  // delays but a 10 KB flow should finish within ~4 RTTs.
  EXPECT_GE(r.completion_time.usec(), msec(150).usec());
  EXPECT_LE(r.completion_time.usec(), msec(450).usec());
}

TEST(RunBulkFlow, TimelineEndsAtFlowSize) {
  Simulator sim;
  DuplexPath path{sim, mk(20, msec(10)), mk(20, msec(10))};
  const auto r = run_bulk_flow(sim, path, 123'456, Direction::kDownload);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.timeline.back().bytes, 123'456);
}

TEST(RunBulkFlow, TraceDrivenLinkWorks) {
  Simulator sim;
  Rng rng{12};
  LinkSpec down;
  down.trace = std::make_shared<DeliveryTrace>(poisson_trace(12.0, sec(2), rng));
  down.one_way_delay = msec(15);
  down.queue_packets = 64;
  DuplexPath path{sim, mk(20, msec(15)), down};
  const auto r = run_bulk_flow(sim, path, 1'000'000, Direction::kDownload);
  EXPECT_TRUE(r.completed);
  // Poisson delivery is bursty; goodput lands well below the mean rate.
  EXPECT_GT(r.throughput_mbps, 5.0);
  EXPECT_LT(r.throughput_mbps, 12.5);
}

TEST(RunBulkFlow, TimeoutReportsIncomplete) {
  Simulator sim;
  LinkSpec dead = mk(10, msec(10));
  dead.loss_rate = 1.0;
  DuplexPath path{sim, dead, mk(10, msec(10))};
  const auto r =
      run_bulk_flow(sim, path, 1'000'000, Direction::kDownload, reno_factory(), sec(5));
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.completion_time.usec(), sec(5).usec());
}

TEST(RunBulkFlow, SequentialFlowsOnSameSimulator) {
  Simulator sim;
  DuplexPath path1{sim, mk(20, msec(10)), mk(20, msec(10))};
  const auto r1 = run_bulk_flow(sim, path1, 100'000, Direction::kDownload);
  DuplexPath path2{sim, mk(20, msec(10)), mk(20, msec(10))};
  const auto r2 = run_bulk_flow(sim, path2, 100'000, Direction::kDownload,
                                reno_factory(), sec(120), /*connection_id=*/2);
  EXPECT_TRUE(r1.completed);
  EXPECT_TRUE(r2.completed);
  // Same conditions, same protocol: identical completion times.
  EXPECT_EQ(r1.completion_time.usec(), r2.completion_time.usec());
}

TEST(TimelineThroughputAt, ComputesAverageSinceStart) {
  std::vector<TimelinePoint> tl{{TimePoint{500'000}, 500'000},
                                {TimePoint{1'000'000}, 1'000'000}};
  // At t=1s, 1 MB delivered -> 8 Mbit/s.
  EXPECT_DOUBLE_EQ(timeline_throughput_at(tl, sec(1)), 8.0);
  // At t=0.75s the last point <= t is 500 KB -> 5.33 Mbit/s.
  EXPECT_NEAR(timeline_throughput_at(tl, msec(750)), 5.33, 0.01);
  EXPECT_DOUBLE_EQ(timeline_throughput_at(tl, Duration{0}), 0.0);
}

TEST(MeasurePingRtt, MatchesPathDelay) {
  Simulator sim;
  DuplexPath path{sim, mk(100, msec(30)), mk(100, msec(30))};
  const Duration rtt = measure_ping_rtt(sim, path, 10);
  EXPECT_GT(rtt.usec(), msec(60).usec());
  EXPECT_LT(rtt.usec(), msec(62).usec());
}

TEST(MeasurePingRtt, SurvivesTotalLoss) {
  Simulator sim;
  LinkSpec dead = mk(100, msec(10));
  dead.loss_rate = 1.0;
  DuplexPath path{sim, dead, mk(100, msec(10))};
  const Duration rtt = measure_ping_rtt(sim, path, 3);
  EXPECT_GE(rtt.usec(), sec(5).usec());  // timeout value
}

}  // namespace
}  // namespace mn
