// TCP behaviour under genuine packet reordering: the RACK-style
// reordering window in infer_losses() must keep mild reordering from
// being misread as loss, and transfers must stay correct regardless.
#include <gtest/gtest.h>

#include <memory>

#include "net/path.hpp"
#include "tcp/tcp_endpoint.hpp"

namespace mn {
namespace {

/// Client/server pair with a ReorderBox spliced into the downlink.
struct ReorderHarness {
  Simulator sim;
  RateLink up_link;
  DelayBox up_delay;
  RateLink down_link;
  ReorderBox down_reorder;
  DelayBox down_delay;
  TcpEndpoint client;
  TcpEndpoint server;

  ReorderHarness(double reorder_prob, Duration extra, std::uint64_t seed)
      : up_link(sim, 50.0, 256),
        up_delay(sim, msec(10)),
        // Deep queue: no droptail loss, so every retransmission in these
        // tests is attributable to (mis)handling of reordering.
        down_link(sim, 20.0, 512),
        down_reorder(sim, Rng{seed}, reorder_prob, extra),
        down_delay(sim, msec(10)),
        client(sim, TcpConfig{}, std::make_unique<RenoCc>()),
        server(sim, TcpConfig{}, std::make_unique<RenoCc>()) {
    up_link.set_next([this](Packet p) { up_delay.accept(std::move(p)); });
    up_delay.set_next([this](Packet p) { server.handle_packet(p); });
    down_link.set_next([this](Packet p) { down_reorder.accept(std::move(p)); });
    down_reorder.set_next([this](Packet p) { down_delay.accept(std::move(p)); });
    down_delay.set_next([this](Packet p) { client.handle_packet(p); });
    client.set_transmit([this](Packet p) { up_link.accept(std::move(p)); });
    server.set_transmit([this](Packet p) { down_link.accept(std::move(p)); });
  }
};

TEST(Reordering, MildReorderingStillDeliversEverything) {
  ReorderHarness h{0.05, msec(3), 11};
  h.server.send_bytes(500'000);
  h.server.close_when_done();
  h.server.listen();
  h.client.connect();
  h.sim.run_until(TimePoint{sec(30).usec()});
  EXPECT_EQ(h.client.bytes_delivered(), 500'000);
}

TEST(Reordering, HeavyReorderingStillDeliversEverything) {
  ReorderHarness h{0.3, msec(8), 23};
  h.server.send_bytes(300'000);
  h.server.close_when_done();
  h.server.listen();
  h.client.connect();
  h.sim.run_until(TimePoint{sec(60).usec()});
  EXPECT_EQ(h.client.bytes_delivered(), 300'000);
}

TEST(Reordering, MildReorderingCausesFewSpuriousRetransmits) {
  ReorderHarness h{0.03, msec(2), 7};
  h.server.send_bytes(500'000);
  h.server.close_when_done();
  h.server.listen();
  h.client.connect();
  h.sim.run_until(TimePoint{sec(30).usec()});
  ASSERT_EQ(h.client.bytes_delivered(), 500'000);
  // ~345 data packets; with a 2 ms jitter against a 20+ ms RTT, the RACK
  // window should suppress nearly all spurious marks.
  EXPECT_LT(h.server.retransmit_count(), 12u);
}

// Parameterized sweep: delivery correctness holds across reordering
// severities and seeds (the throughput cost may vary, correctness not).
struct ReorderCase {
  double prob;
  int extra_ms;
  std::uint64_t seed;
};

class ReorderSweep : public ::testing::TestWithParam<ReorderCase> {};

TEST_P(ReorderSweep, AlwaysDeliversExactly) {
  const auto& c = GetParam();
  ReorderHarness h{c.prob, msec(c.extra_ms), c.seed};
  h.server.send_bytes(200'000);
  h.server.close_when_done();
  h.server.listen();
  h.client.connect();
  h.sim.run_until(TimePoint{sec(60).usec()});
  EXPECT_EQ(h.client.bytes_delivered(), 200'000);
  EXPECT_EQ(h.client.state(), TcpState::kDone);
  EXPECT_EQ(h.server.state(), TcpState::kDone);
}

INSTANTIATE_TEST_SUITE_P(Severities, ReorderSweep,
                         ::testing::Values(ReorderCase{0.01, 1, 1},
                                           ReorderCase{0.1, 5, 2},
                                           ReorderCase{0.2, 10, 3},
                                           ReorderCase{0.5, 15, 4},
                                           ReorderCase{0.05, 30, 5}));

}  // namespace
}  // namespace mn
