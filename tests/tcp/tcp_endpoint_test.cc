#include "tcp/tcp_endpoint.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "net/path.hpp"
#include "tcp/flow.hpp"
#include "util/units.hpp"

namespace mn {
namespace {

struct Harness {
  Simulator sim;
  DuplexPath path;
  TcpEndpoint client;
  TcpEndpoint server;

  explicit Harness(const LinkSpec& up, const LinkSpec& down)
      : path(sim, up, down),
        client(sim, TcpConfig{}, std::make_unique<RenoCc>()),
        server(sim, TcpConfig{}, std::make_unique<RenoCc>()) {
    client.set_transmit([this](Packet p) { path.send_up(std::move(p)); });
    server.set_transmit([this](Packet p) { path.send_down(std::move(p)); });
    path.set_client_receiver([this](Packet p) { client.handle_packet(p); });
    path.set_server_receiver([this](Packet p) { server.handle_packet(p); });
  }

  ~Harness() {
    path.set_client_receiver({});
    path.set_server_receiver({});
  }

  static LinkSpec fast() {
    LinkSpec s;
    s.rate_mbps = 100.0;
    s.one_way_delay = msec(10);
    return s;
  }

  void run_for(Duration d) { sim.run_until(sim.now() + d); }
};

TEST(TcpEndpoint, HandshakeEstablishesBothSides) {
  Harness h{Harness::fast(), Harness::fast()};
  h.server.listen();
  h.client.connect();
  h.run_for(sec(1));
  EXPECT_TRUE(h.client.established());
  EXPECT_TRUE(h.server.established());
  // Client establishes after one RTT (SYN + SYN-ACK), ~20ms + serialization.
  EXPECT_GE(h.client.established_at().usec(), msec(20).usec());
  EXPECT_LT(h.client.established_at().usec(), msec(25).usec());
}

TEST(TcpEndpoint, HandshakeRttSampleSeedsSrtt) {
  Harness h{Harness::fast(), Harness::fast()};
  h.server.listen();
  h.client.connect();
  h.run_for(sec(1));
  EXPECT_GT(h.client.srtt().usec(), msec(19).usec());
  EXPECT_LT(h.client.srtt().usec(), msec(25).usec());
}

TEST(TcpEndpoint, SynIsRetransmittedOnLoss) {
  LinkSpec lossy = Harness::fast();
  lossy.loss_rate = 1.0;  // uplink drops everything...
  Harness h{lossy, Harness::fast()};
  h.server.listen();
  h.client.connect();
  h.run_for(sec(3));
  EXPECT_FALSE(h.client.established());
  // The SYN RTO (1s, doubling) must have fired at least once by 3s.
  EXPECT_EQ(h.client.state(), TcpState::kSynSent);
}

TEST(TcpEndpoint, SmallUploadDeliversAllBytes) {
  Harness h{Harness::fast(), Harness::fast()};
  h.server.listen();
  h.client.send_bytes(10'000);
  h.client.close_when_done();
  h.client.connect();
  h.run_for(sec(5));
  EXPECT_EQ(h.server.bytes_delivered(), 10'000);
  EXPECT_EQ(h.client.bytes_acked(), 10'000);
}

TEST(TcpEndpoint, BulkDownloadDeliversAllBytes) {
  Harness h{Harness::fast(), Harness::fast()};
  h.server.send_bytes(300'000);
  h.server.close_when_done();
  h.server.listen();
  h.client.connect();
  h.run_for(sec(10));
  EXPECT_EQ(h.client.bytes_delivered(), 300'000);
}

TEST(TcpEndpoint, CleanCloseReachesDoneOnBothSides) {
  Harness h{Harness::fast(), Harness::fast()};
  h.server.listen();
  h.client.send_bytes(5000);
  h.client.close_when_done();
  h.client.connect();
  h.run_for(sec(5));
  EXPECT_EQ(h.client.state(), TcpState::kDone);
  EXPECT_EQ(h.server.state(), TcpState::kDone);
}

TEST(TcpEndpoint, ZeroByteFlowJustOpensAndCloses) {
  Harness h{Harness::fast(), Harness::fast()};
  h.server.listen();
  h.client.close_when_done();
  h.client.connect();
  h.run_for(sec(5));
  EXPECT_EQ(h.client.state(), TcpState::kDone);
  EXPECT_EQ(h.server.state(), TcpState::kDone);
  EXPECT_EQ(h.server.bytes_delivered(), 0);
}

TEST(TcpEndpoint, RecoversFromRandomLoss) {
  LinkSpec lossy = Harness::fast();
  lossy.loss_rate = 0.02;
  lossy.loss_seed = 77;
  Harness h{Harness::fast(), lossy};  // lossy downlink
  h.server.send_bytes(500'000);
  h.server.close_when_done();
  h.server.listen();
  h.client.connect();
  h.run_for(sec(30));
  EXPECT_EQ(h.client.bytes_delivered(), 500'000);
  EXPECT_GT(h.server.retransmit_count(), 0u);
}

TEST(TcpEndpoint, RecoversFromHeavyLoss) {
  LinkSpec lossy = Harness::fast();
  lossy.loss_rate = 0.15;
  lossy.loss_seed = 5;
  Harness h{lossy, lossy};
  h.client.send_bytes(100'000);
  h.client.close_when_done();
  h.server.listen();
  h.client.connect();
  h.run_for(sec(60));
  EXPECT_EQ(h.server.bytes_delivered(), 100'000);
}

TEST(TcpEndpoint, ThroughputIsCappedByBottleneck) {
  LinkSpec slow = Harness::fast();
  slow.rate_mbps = 8.0;   // bottleneck
  slow.queue_packets = 64;  // a sane AP buffer, not pathological bloat
  Harness h{Harness::fast(), slow};
  h.server.send_bytes(1'000'000);
  h.server.close_when_done();
  h.server.listen();
  h.client.connect();
  h.run_for(sec(30));
  ASSERT_EQ(h.client.bytes_delivered(), 1'000'000);
  const auto& tl = h.client.delivered_timeline();
  const double tput = throughput_mbps(1'000'000, tl.back().t - TimePoint{0});
  EXPECT_LT(tput, 8.0);
  EXPECT_GT(tput, 6.0);  // should achieve most of the link
}

TEST(TcpEndpoint, AckedTimelineIsMonotone) {
  Harness h{Harness::fast(), Harness::fast()};
  h.client.send_bytes(200'000);
  h.client.close_when_done();
  h.server.listen();
  h.client.connect();
  h.run_for(sec(10));
  const auto& tl = h.client.acked_timeline();
  ASSERT_FALSE(tl.empty());
  for (std::size_t i = 1; i < tl.size(); ++i) {
    EXPECT_LE(tl[i - 1].t, tl[i].t);
    EXPECT_LT(tl[i - 1].bytes, tl[i].bytes);
  }
  EXPECT_EQ(tl.back().bytes, 200'000);
}

TEST(TcpEndpoint, FreezeStopsAllActivity) {
  LinkSpec dead = Harness::fast();
  dead.loss_rate = 1.0;
  Harness h{dead, Harness::fast()};
  h.server.listen();
  h.client.send_bytes(10'000);
  h.client.connect();
  h.run_for(msec(100));
  h.client.freeze();
  const auto events_before = h.sim.events_fired();
  h.run_for(sec(10));
  // Only pre-scheduled deliveries may fire; no new retransmission cycle.
  EXPECT_LT(h.sim.events_fired() - events_before, 5u);
}

TEST(TcpEndpoint, SourceModePullsChunks) {
  struct CountingSource : DataSource {
    std::int64_t remaining = 50'000;
    std::int64_t next_seq = 0;
    std::optional<Chunk> take(std::int64_t max_bytes, int) override {
      if (remaining <= 0) return std::nullopt;
      Chunk c;
      c.bytes = std::min(max_bytes, remaining);
      c.data_seq = next_seq;
      next_seq += c.bytes;
      remaining -= c.bytes;
      return c;
    }
    [[nodiscard]] bool exhausted() const override { return remaining <= 0; }
  };
  Harness h{Harness::fast(), Harness::fast()};
  CountingSource source;
  h.client.set_source(&source);
  std::int64_t data_seq_seen = -1;
  h.server.on_data_segment = [&](const Packet& p) {
    data_seq_seen = std::max(data_seq_seen, p.data_seq + p.payload);
  };
  h.client.close_when_done();
  h.server.listen();
  h.client.connect();
  h.run_for(sec(10));
  EXPECT_EQ(h.server.bytes_delivered(), 50'000);
  EXPECT_EQ(data_seq_seen, 50'000);  // data_seq tags survive transport
  EXPECT_TRUE(source.exhausted());
}

TEST(TcpEndpoint, DeliveredCallbackFiresInOrder) {
  Harness h{Harness::fast(), Harness::fast()};
  std::vector<std::int64_t> totals;
  h.server.on_delivered = [&](std::int64_t total) { totals.push_back(total); };
  h.client.send_bytes(20'000);
  h.client.close_when_done();
  h.server.listen();
  h.client.connect();
  h.run_for(sec(5));
  ASSERT_FALSE(totals.empty());
  EXPECT_TRUE(std::is_sorted(totals.begin(), totals.end()));
  EXPECT_EQ(totals.back(), 20'000);
}

// Flow-size sweep: every size must complete and throughput must be
// monotone-ish in flow size on a clean link (slow start amortization).
class FlowSizeSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(FlowSizeSweep, CompletesAndThroughputReasonable) {
  Simulator sim;
  LinkSpec spec;
  spec.rate_mbps = 20.0;
  spec.one_way_delay = msec(20);
  DuplexPath path{sim, spec, spec};
  const auto r = run_bulk_flow(sim, path, GetParam(), Direction::kDownload);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.throughput_mbps, 0.0);
  EXPECT_LE(r.throughput_mbps, 20.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FlowSizeSweep,
                         ::testing::Values(1'000, 10'000, 50'000, 100'000, 500'000,
                                           1'000'000, 2'000'000));

}  // namespace
}  // namespace mn
