#include "tcp/mux.hpp"

#include <gtest/gtest.h>

namespace mn {
namespace {

Packet mk_packet(std::uint64_t conn, int subflow, bool syn = false) {
  Packet p;
  p.connection_id = conn;
  p.subflow_id = subflow;
  p.flags.syn = syn;
  return p;
}

TEST(PacketMux, RoutesByConnectionAndSubflow) {
  PacketMux mux;
  int a = 0;
  int b = 0;
  mux.attach(1, 0, [&](Packet) { ++a; });
  mux.attach(1, 1, [&](Packet) { ++b; });
  mux.dispatch(mk_packet(1, 0));
  mux.dispatch(mk_packet(1, 1));
  mux.dispatch(mk_packet(1, 1));
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(PacketMux, UnroutableNonSynIsCounted) {
  PacketMux mux;
  mux.dispatch(mk_packet(9, 0));
  EXPECT_EQ(mux.unroutable_count(), 1u);
}

TEST(PacketMux, SynListenerCanAccept) {
  PacketMux mux;
  int delivered = 0;
  mux.set_syn_listener([&](const Packet& p) {
    mux.attach(p.connection_id, p.subflow_id, [&](Packet) { ++delivered; });
  });
  mux.dispatch(mk_packet(7, 0, /*syn=*/true));
  EXPECT_EQ(delivered, 1);  // re-dispatched to the new endpoint
  EXPECT_EQ(mux.unroutable_count(), 0u);
  mux.dispatch(mk_packet(7, 0));
  EXPECT_EQ(delivered, 2);
}

TEST(PacketMux, SynListenerDecliningCountsUnroutable) {
  PacketMux mux;
  mux.set_syn_listener([](const Packet&) { /* refuse */ });
  mux.dispatch(mk_packet(7, 0, /*syn=*/true));
  EXPECT_EQ(mux.unroutable_count(), 1u);
}

TEST(PacketMux, DetachStopsRouting) {
  PacketMux mux;
  int n = 0;
  mux.attach(1, 0, [&](Packet) { ++n; });
  mux.detach(1, 0);
  mux.dispatch(mk_packet(1, 0));
  EXPECT_EQ(n, 0);
  EXPECT_EQ(mux.unroutable_count(), 1u);
  EXPECT_EQ(mux.endpoint_count(), 0u);
}

TEST(PacketMux, ReattachReplacesHandler) {
  PacketMux mux;
  int old_count = 0;
  int new_count = 0;
  mux.attach(1, 0, [&](Packet) { ++old_count; });
  mux.attach(1, 0, [&](Packet) { ++new_count; });
  mux.dispatch(mk_packet(1, 0));
  EXPECT_EQ(old_count, 0);
  EXPECT_EQ(new_count, 1);
}

}  // namespace
}  // namespace mn
