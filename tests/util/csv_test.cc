#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace mn {
namespace {

TEST(Csv, WriteAndParseRoundTrip) {
  CsvWriter w{{"a", "b", "c"}};
  w.add_row({"1", "2", "3"});
  w.add_row({"x", "y", "z"});
  const auto data = parse_csv(w.str());
  ASSERT_EQ(data.header.size(), 3u);
  ASSERT_EQ(data.rows.size(), 2u);
  EXPECT_EQ(data.rows[0][1], "2");
  EXPECT_EQ(data.rows[1][2], "z");
}

TEST(Csv, RowWidthMismatchThrows) {
  CsvWriter w{{"a", "b"}};
  EXPECT_THROW(w.add_row({"only-one"}), std::runtime_error);
}

TEST(Csv, ColLookup) {
  const auto data = parse_csv("x,y\n1,2\n");
  EXPECT_EQ(data.col("y"), 1u);
  EXPECT_THROW(data.col("nope"), std::runtime_error);
}

TEST(Csv, RaggedRowThrows) {
  EXPECT_THROW(parse_csv("a,b\n1\n"), std::runtime_error);
}

TEST(Csv, EmptyCellsPreserved) {
  const auto data = parse_csv("a,b,c\n,,\n");
  ASSERT_EQ(data.rows.size(), 1u);
  EXPECT_EQ(data.rows[0][0], "");
  EXPECT_EQ(data.rows[0][2], "");
}

TEST(Csv, SaveAndLoadFile) {
  const auto path =
      (std::filesystem::temp_directory_path() / "mn_csv_test.csv").string();
  CsvWriter w{{"k", "v"}};
  w.add_row({"tput", "9.5"});
  w.save(path);
  const auto data = load_csv(path);
  ASSERT_EQ(data.rows.size(), 1u);
  EXPECT_EQ(data.rows[0][0], "tput");
  std::remove(path.c_str());
}

TEST(Csv, LoadMissingFileThrows) {
  EXPECT_THROW(load_csv("/nonexistent/definitely/not.csv"), std::runtime_error);
}

TEST(FormatDouble, ExactRoundTripForAwkwardValues) {
  for (double v : {0.1, 1.0 / 3.0, 1234.56789012345, 2.5e-17, -9.875e20, 0.0,
                   123456789.123456789, 5e-324}) {
    EXPECT_EQ(parse_double(format_double(v)), v) << format_double(v);
  }
}

TEST(FormatDouble, BeatsToStringTruncation) {
  // The bug this guards against: std::to_string emits 6 fixed decimals,
  // so anything needing more precision (or smaller than 1e-6) corrupts.
  const double v = 3.141592653589793;
  EXPECT_NE(std::to_string(v), format_double(v));
  EXPECT_EQ(parse_double(format_double(v)), v);
}

TEST(ParseDouble, RejectsHostileCells) {
  EXPECT_THROW((void)parse_double(""), std::runtime_error);
  EXPECT_THROW((void)parse_double("abc"), std::runtime_error);
  EXPECT_THROW((void)parse_double("1.2x"), std::runtime_error);   // stod would accept
  EXPECT_THROW((void)parse_double(" 1.2"), std::runtime_error);   // no silent trimming
  EXPECT_THROW((void)parse_double("1.2 "), std::runtime_error);
  EXPECT_THROW((void)parse_double("--5"), std::runtime_error);
  EXPECT_DOUBLE_EQ(parse_double("-5.5e2"), -550.0);
}

}  // namespace
}  // namespace mn
