#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/stats.hpp"

namespace mn {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsIndependentOfParentContinuation) {
  Rng parent{9};
  Rng child = parent.fork("link");
  // Child stream must differ from the parent's continued stream.
  Rng parent_copy{9};
  (void)parent_copy.next_u64();  // parent consumed one draw for the fork
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (child.next_u64() == parent_copy.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkLabelMatters) {
  Rng p1{9};
  Rng p2{9};
  Rng a = p1.fork("wifi");
  Rng b = p2.fork("lte");
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{3};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng{4};
  std::vector<int> seen(6, 0);
  for (int i = 0; i < 6000; ++i) {
    const auto v = rng.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (int count : seen) EXPECT_GT(count, 800);
}

TEST(Rng, NormalMoments) {
  Rng rng{5};
  OnlineStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng{6};
  OnlineStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.exponential(4.0));
  EXPECT_NEAR(s.mean(), 4.0, 0.1);
  EXPECT_GE(s.min(), 0.0);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng{8};
  EmpiricalDistribution d;
  for (int i = 0; i < 50000; ++i) d.add(rng.lognormal(1.0, 0.5));
  EXPECT_NEAR(d.median(), std::exp(1.0), 0.05);
}

TEST(Rng, ChanceFrequency) {
  Rng rng{10};
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Shuffle, PreservesElements) {
  Rng rng{11};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  shuffle(v, rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

}  // namespace
}  // namespace mn
