#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace mn {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MeanAndVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, SingleSample) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(EmpiricalDistribution, QuantileInterpolates) {
  EmpiricalDistribution d{{1.0, 2.0, 3.0, 4.0}};
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(d.median(), 2.5);
  EXPECT_DOUBLE_EQ(d.quantile(1.0 / 3.0), 2.0);
}

TEST(EmpiricalDistribution, QuantileOfEmptyIsQuietNaN) {
  // Documented contract: empty sample sets have no quantiles, and the
  // aggregation pipelines must stay exception-free — every quantile
  // accessor reports quiet NaN instead of throwing.
  EmpiricalDistribution d;
  EXPECT_TRUE(std::isnan(d.quantile(0.5)));
  EXPECT_TRUE(std::isnan(d.quantile(0.0)));
  EXPECT_TRUE(std::isnan(d.quantile(1.0)));
  EXPECT_TRUE(std::isnan(d.median()));
  EXPECT_TRUE(std::isnan(d.min()));
  EXPECT_TRUE(std::isnan(d.max()));
  // One sample restores real values for every q.
  d.add(7.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(d.min(), 7.0);
  EXPECT_DOUBLE_EQ(d.max(), 7.0);
}

TEST(EmpiricalDistribution, CdfAt) {
  EmpiricalDistribution d{{1.0, 2.0, 2.0, 5.0}};
  EXPECT_DOUBLE_EQ(d.cdf_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf_at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(d.cdf_at(10.0), 1.0);
}

TEST(EmpiricalDistribution, FractionBelowZeroIsLteWinRegion) {
  // Samples model Tput(WiFi) - Tput(LTE): negative means LTE wins.
  EmpiricalDistribution d{{-3.0, -1.0, 0.0, 2.0, 5.0}};
  EXPECT_DOUBLE_EQ(d.fraction_below(0.0), 0.4);
}

TEST(EmpiricalDistribution, AddAfterQueryResorts) {
  EmpiricalDistribution d{{3.0, 1.0}};
  EXPECT_DOUBLE_EQ(d.median(), 2.0);
  d.add(100.0);
  EXPECT_DOUBLE_EQ(d.median(), 3.0);
}

TEST(EmpiricalDistribution, CdfPointsMonotone) {
  EmpiricalDistribution d{{5.0, 1.0, 3.0}};
  const auto pts = d.cdf_points();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts.front().first, 1.0);
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LE(pts[i - 1].first, pts[i].first);
    EXPECT_LT(pts[i - 1].second, pts[i].second);
  }
}

TEST(EmpiricalDistribution, MedianOfGaussianSamples) {
  Rng rng{7};
  EmpiricalDistribution d;
  for (int i = 0; i < 20000; ++i) d.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(d.median(), 10.0, 0.1);
  EXPECT_NEAR(d.mean(), 10.0, 0.1);
  EXPECT_NEAR(d.cdf_at(12.0), 0.8413, 0.02);
}

// TSan regression: the const accessors used to lazily sort `mutable`
// state, so two concurrent readers raced.  They are pure reads now —
// this test is quiet under -DMN_SANITIZE=thread and fails loudly there
// if lazy mutation ever comes back.
TEST(EmpiricalDistribution, ConcurrentConstReadersAreRaceFree) {
  Rng rng{99};
  EmpiricalDistribution d;
  for (int i = 0; i < 5000; ++i) d.add(rng.uniform(-50.0, 50.0));
  const EmpiricalDistribution& shared = d;

  std::vector<std::thread> readers;
  std::vector<double> medians(4, 0.0);
  for (std::size_t t = 0; t < medians.size(); ++t) {
    readers.emplace_back([&shared, &medians, t] {
      double acc = 0.0;
      for (int i = 0; i < 200; ++i) {
        acc = shared.quantile(0.5);
        acc += shared.cdf_at(0.0) + shared.fraction_below(10.0);
        acc += shared.sorted_samples().front();
      }
      medians[t] = acc;
    });
  }
  for (auto& r : readers) r.join();
  for (std::size_t t = 1; t < medians.size(); ++t) EXPECT_DOUBLE_EQ(medians[t], medians[0]);
}

TEST(EmpiricalDistribution, AddAllMergesIntoSortedOrder) {
  EmpiricalDistribution d{{5.0, 1.0}};
  d.add_all({4.0, 0.5, 9.0});
  const auto& s = d.sorted_samples();
  ASSERT_EQ(s.size(), 5u);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  EXPECT_DOUBLE_EQ(s.front(), 0.5);
  EXPECT_DOUBLE_EQ(s.back(), 9.0);
}

TEST(MedianOf, OddCount) {
  EXPECT_DOUBLE_EQ(median_of({3.0, 1.0, 2.0}), 2.0);
}

// Property sweep: quantile() must be monotone in q for arbitrary sample sets.
class QuantileMonotoneTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantileMonotoneTest, MonotoneInQ) {
  Rng rng{GetParam()};
  EmpiricalDistribution d;
  const int n = static_cast<int>(rng.uniform_int(1, 200));
  for (int i = 0; i < n; ++i) d.add(rng.uniform(-100.0, 100.0));
  double prev = d.quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double v = d.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotoneTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace mn
