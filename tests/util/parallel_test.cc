#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>

namespace mn {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (int parallelism : {0, 1, 3, 8}) {
    std::vector<std::atomic<int>> hits(100);
    parallel_for(hits.size(), parallelism, [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "parallelism=" << parallelism;
  }
}

TEST(ParallelFor, ZeroIterationsIsANoop) {
  parallel_for(0, 4, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, MoreWorkersThanWorkIsFine) {
  std::atomic<int> calls{0};
  parallel_for(2, 16, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 2);
}

TEST(ParallelFor, PropagatesTheFirstException) {
  for (int parallelism : {0, 4}) {
    EXPECT_THROW(
        parallel_for(50, parallelism,
                     [](std::size_t i) {
                       if (i == 13) throw std::runtime_error("boom");
                     }),
        std::runtime_error)
        << "parallelism=" << parallelism;
  }
}

TEST(ParallelMap, ResultsLandInIndexOrder) {
  for (int parallelism : {0, 1, 4}) {
    const auto out =
        parallel_map(64, parallelism, [](std::size_t i) { return static_cast<int>(i * i); });
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i * i));
    }
  }
}

TEST(ParallelMap, IdenticalResultsAtEveryWorkerCount) {
  const auto serial = parallel_map(37, 0, [](std::size_t i) { return 3.5 * static_cast<double>(i); });
  for (int parallelism : {1, 2, 7}) {
    EXPECT_EQ(parallel_map(37, parallelism,
                           [](std::size_t i) { return 3.5 * static_cast<double>(i); }),
              serial);
  }
}

TEST(Parallelism, ResolvesExplicitOverEnvironment) {
  EXPECT_EQ(resolve_parallelism(0), 0);
  EXPECT_EQ(resolve_parallelism(5), 5);
  // Negative = MN_THREADS; unset/garbage means serial.
  ::setenv("MN_THREADS", "3", 1);
  EXPECT_EQ(resolve_parallelism(-1), 3);
  ::setenv("MN_THREADS", "junk", 1);
  EXPECT_EQ(resolve_parallelism(-1), 0);
  ::unsetenv("MN_THREADS");
  EXPECT_EQ(resolve_parallelism(-1), 0);
}

}  // namespace
}  // namespace mn
