#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/ascii_plot.hpp"

namespace mn {
namespace {

TEST(Table, FormatsAlignedColumns) {
  Table t{{"Location", "Runs"}};
  t.add_row({"US (Boston, MA)", "884"});
  t.add_row({"Israel", "276"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("US (Boston, MA)"), std::string::npos);
  EXPECT_NE(out.find("| Runs"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::pct(0.42), "42%");
  EXPECT_EQ(Table::pct(0.425, 1), "42.5%");
}

TEST(Table, ShortRowsArePadded) {
  Table t{{"a", "b", "c"}};
  t.add_row({"1"});
  std::ostringstream os;
  t.print(os);
  SUCCEED();  // must not crash; width logic handles the padding
}

TEST(AsciiPlot, RendersSeriesAndLegend) {
  Series s{"cdf", {{0.0, 0.0}, {1.0, 0.5}, {2.0, 1.0}}};
  PlotOptions opt;
  opt.x_label = "mbps";
  opt.y_label = "CDF";
  const std::string out = render_plot({s}, opt);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("cdf"), std::string::npos);
  EXPECT_NE(out.find("mbps"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlot, EmptySeriesDoesNotCrash) {
  const std::string out = render_plot({Series{"empty", {}}}, PlotOptions{});
  EXPECT_FALSE(out.empty());
}

TEST(AsciiPlot, TimelineMarksEvents) {
  const std::string out =
      render_timeline({{"LTE", {0.0, 1.0, 2.0}}, {"WiFi", {5.0}}}, 10.0, 40);
  EXPECT_NE(out.find("LTE"), std::string::npos);
  EXPECT_NE(out.find('|'), std::string::npos);
}

}  // namespace
}  // namespace mn
