#include "util/time.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace mn {
namespace {

TEST(Time, Constructors) {
  EXPECT_EQ(usec(5).usec(), 5);
  EXPECT_EQ(msec(5).usec(), 5000);
  EXPECT_EQ(sec(5).usec(), 5'000'000);
  EXPECT_EQ(secs_f(1.5).usec(), 1'500'000);
  EXPECT_EQ(secs_f(-0.5).usec(), -500'000);
}

TEST(Time, Arithmetic) {
  const TimePoint t{1000};
  EXPECT_EQ((t + msec(1)).usec(), 2000);
  EXPECT_EQ((t - usec(500)).usec(), 500);
  EXPECT_EQ((TimePoint{3000} - t).usec(), 2000);
  EXPECT_EQ((msec(2) * 3).usec(), 6000);
  EXPECT_EQ((msec(6) / 3).usec(), 2000);
}

TEST(Time, Ordering) {
  EXPECT_LT(TimePoint{1}, TimePoint{2});
  EXPECT_LE(msec(1), usec(1000));
  EXPECT_GT(TimePoint::max(), TimePoint{1});
}

TEST(Time, SecondsConversion) {
  EXPECT_DOUBLE_EQ(msec(1500).seconds(), 1.5);
  EXPECT_DOUBLE_EQ(msec(1500).millis(), 1500.0);
  EXPECT_DOUBLE_EQ(TimePoint{250000}.seconds(), 0.25);
}

TEST(Units, ThroughputMbps) {
  // 1 MB over 1 second = 8 Mbit/s.
  EXPECT_DOUBLE_EQ(throughput_mbps(1'000'000, sec(1)), 8.0);
  EXPECT_DOUBLE_EQ(throughput_mbps(1'000'000, Duration{0}), 0.0);
  EXPECT_DOUBLE_EQ(throughput_mbps(0, sec(1)), 0.0);
}

TEST(Units, TransmissionTime) {
  // 1500 bytes at 12 Mbit/s = 1 ms.
  EXPECT_EQ(transmission_time(1500, 12.0).usec(), 1000);
  EXPECT_EQ(transmission_time(1500, 0.0).usec(), 0);
}

TEST(Units, BytesAtRate) {
  EXPECT_EQ(bytes_at_rate(8.0, sec(1)), 1'000'000);
  EXPECT_EQ(bytes_at_rate(8.0, msec(500)), 500'000);
}

TEST(Units, RoundTrip) {
  // transmission_time and throughput_mbps are inverse up to rounding.
  const auto t = transmission_time(123456, 7.5);
  EXPECT_NEAR(throughput_mbps(123456, t), 7.5, 0.01);
}

}  // namespace
}  // namespace mn
