#include "util/geo.hpp"

#include <gtest/gtest.h>

namespace mn {
namespace {

TEST(Geo, ZeroDistance) {
  const GeoPoint p{42.4, -71.1};
  EXPECT_DOUBLE_EQ(haversine_km(p, p), 0.0);
}

TEST(Geo, BostonToNewYork) {
  // Paper Table 1 coordinates: Boston (42.4,-71.1), New York (40.9,-73.8).
  const double d = haversine_km({42.4, -71.1}, {40.9, -73.8});
  EXPECT_GT(d, 250.0);
  EXPECT_LT(d, 320.0);
}

TEST(Geo, Symmetric) {
  const GeoPoint a{31.8, 35.0};   // Israel
  const GeoPoint b{59.4, 27.4};   // Estonia
  EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
}

TEST(Geo, Antipodal) {
  // Half Earth circumference is about 20015 km.
  const double d = haversine_km({0.0, 0.0}, {0.0, 180.0});
  EXPECT_NEAR(d, 20015.0, 30.0);
}

TEST(Geo, SmallOffsetsAreLocal) {
  // ~0.1 degree latitude is ~11 km; well within the paper's 100 km radius.
  const double d = haversine_km({42.4, -71.1}, {42.5, -71.1});
  EXPECT_GT(d, 10.0);
  EXPECT_LT(d, 12.5);
}

}  // namespace
}  // namespace mn
