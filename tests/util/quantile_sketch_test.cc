// QuantileSketch: the streaming aggregation substrate of the shared
// world.  The load-bearing property is the *bit-exact associative
// merge* — shard a stream any way, merge in any order, read identical
// bits — because the MN_THREADS golden test of the world depends on it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace mn {
namespace {

const double kQs[] = {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0};

/// Exact-equality comparison of every observable: two sketches that
/// pass this are indistinguishable to any caller.
void expect_identical(const QuantileSketch& a, const QuantileSketch& b) {
  ASSERT_EQ(a.count(), b.count());
  ASSERT_EQ(a.rejected(), b.rejected());
  for (const double q : kQs) {
    const double qa = a.quantile(q);
    const double qb = b.quantile(q);
    if (std::isnan(qa)) {
      EXPECT_TRUE(std::isnan(qb));
    } else {
      EXPECT_EQ(qa, qb) << "q=" << q;  // bit-exact, not approximate
    }
  }
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.mean(), b.mean());
}

std::vector<double> mixed_samples(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Span many octaves, both signs, with zeros sprinkled in.
    const double mag = std::exp(rng.uniform(-8.0, 12.0));
    const double u = rng.uniform();
    xs.push_back(u < 0.05 ? 0.0 : (u < 0.30 ? -mag : mag));
  }
  return xs;
}

TEST(QuantileSketch, EmptySketchReturnsQuietNaN) {
  QuantileSketch s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(std::isnan(s.quantile(0.0)));
  EXPECT_TRUE(std::isnan(s.quantile(0.5)));
  EXPECT_TRUE(std::isnan(s.quantile(1.0)));
  EXPECT_TRUE(std::isnan(s.median()));
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  EXPECT_TRUE(std::isnan(s.mean()));
}

TEST(QuantileSketch, SingleElementIsExactAtEveryQuantile) {
  for (const double x : {3.25, -17.5, 0.0, 1e-9, 2.5e11}) {
    QuantileSketch s;
    s.add(x);
    ASSERT_EQ(s.count(), 1u);
    EXPECT_EQ(s.min(), x);
    EXPECT_EQ(s.max(), x);
    for (const double q : kQs) {
      EXPECT_EQ(s.quantile(q), x) << "x=" << x << " q=" << q;
    }
  }
}

TEST(QuantileSketch, NonFiniteInputsAreRejectedNotCounted) {
  QuantileSketch s;
  s.add(std::numeric_limits<double>::quiet_NaN());
  s.add(std::numeric_limits<double>::infinity());
  s.add(-std::numeric_limits<double>::infinity());
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.rejected(), 3u);
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.median(), 5.0);
}

TEST(QuantileSketch, QuantilesTrackExactWithinRelativeErrorBound) {
  const auto xs = mixed_samples(20000, 42);
  QuantileSketch sketch;
  EmpiricalDistribution exact;
  for (const double x : xs) {
    sketch.add(x);
    exact.add(x);
  }
  // 1/32 sub-bucketing bounds relative error by ~3.1%; allow a hair of
  // slack for interpolation-rule differences between the two containers.
  for (const double q : {0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95}) {
    const double want = exact.quantile(q);
    const double got = sketch.quantile(q);
    EXPECT_NEAR(got, want, std::abs(want) * 0.035 + 1e-12) << "q=" << q;
  }
  EXPECT_EQ(sketch.min(), exact.min());  // extremes are tracked exactly
  EXPECT_EQ(sketch.max(), exact.max());
}

TEST(QuantileSketch, MergeIsBitExactAcrossShardCountsAndOrders) {
  const auto xs = mixed_samples(9973, 7);  // prime: shards never align
  QuantileSketch serial;
  for (const double x : xs) serial.add(x);

  for (const std::size_t shards : {2u, 4u, 8u}) {
    std::vector<QuantileSketch> parts(shards);
    for (std::size_t i = 0; i < xs.size(); ++i) parts[i % shards].add(xs[i]);

    QuantileSketch fwd;
    for (const auto& p : parts) fwd.merge_from(p);
    expect_identical(fwd, serial);

    QuantileSketch rev;
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) rev.merge_from(*it);
    expect_identical(rev, serial);

    // Tree-shaped merge (pairwise reduce) — associativity, not just
    // commutativity.
    while (parts.size() > 1) {
      std::vector<QuantileSketch> next;
      for (std::size_t i = 0; i + 1 < parts.size(); i += 2) {
        parts[i].merge_from(parts[i + 1]);
        next.push_back(std::move(parts[i]));
      }
      if (parts.size() % 2) next.push_back(std::move(parts.back()));
      parts = std::move(next);
    }
    expect_identical(parts[0], serial);
  }
}

TEST(QuantileSketch, MergeWithEmptySketchIsIdentity) {
  QuantileSketch s;
  for (const double x : {1.0, 2.0, 3.0}) s.add(x);
  QuantileSketch empty;
  s.merge_from(empty);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 3.0);

  QuantileSketch other;
  other.merge_from(s);
  expect_identical(other, s);
}

TEST(QuantileSketch, NegativeSamplesOrderBelowPositive) {
  QuantileSketch s;
  for (int i = 1; i <= 100; ++i) {
    s.add(static_cast<double>(i));
    s.add(static_cast<double>(-i));
  }
  EXPECT_LT(s.quantile(0.25), 0.0);
  EXPECT_GT(s.quantile(0.75), 0.0);
  EXPECT_EQ(s.min(), -100.0);
  EXPECT_EQ(s.max(), 100.0);
  // Median of a sign-symmetric set sits near zero, well inside (-1, 1).
  EXPECT_GT(s.median(), -1.5);
  EXPECT_LT(s.median(), 1.5);
}

TEST(QuantileSketch, OutOfRangeMagnitudesClampButStayOrdered) {
  QuantileSketch s;
  s.add(1e-300);  // below 2^-32: zero bucket
  s.add(1.0);
  s.add(1e300);  // above 2^40: top bucket, exact max still tracked
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.min(), 1e-300);
  EXPECT_EQ(s.max(), 1e300);
  EXPECT_LE(s.quantile(0.0), s.quantile(0.5));
  EXPECT_LE(s.quantile(0.5), s.quantile(1.0));
}

TEST(QuantileSketch, MemoryIsBoundedAndLazyForNegatives) {
  QuantileSketch s;
  const std::size_t base = s.memory_bytes();
  for (int i = 0; i < 100000; ++i) s.add(static_cast<double>(i % 977) + 0.5);
  EXPECT_EQ(s.memory_bytes(), base) << "positive-only stream must not grow";
  s.add(-1.0);
  EXPECT_GT(s.memory_bytes(), base);  // negative array materialized once
  const std::size_t with_neg = s.memory_bytes();
  for (int i = 0; i < 100000; ++i) s.add(-static_cast<double>(i % 977) - 0.5);
  EXPECT_EQ(s.memory_bytes(), with_neg);
}

}  // namespace
}  // namespace mn
