#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mn {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now().usec(), 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(TimePoint{300}, [&] { order.push_back(3); });
  sim.schedule_at(TimePoint{100}, [&] { order.push_back(1); });
  sim.schedule_at(TimePoint{200}, [&] { order.push_back(2); });
  sim.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().usec(), 300);
}

TEST(Simulator, TiesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(TimePoint{50}, [&order, i] { order.push_back(i); });
  }
  sim.run_until_idle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  TimePoint fired{};
  sim.schedule_at(TimePoint{100}, [&] {
    sim.schedule_after(usec(50), [&] { fired = sim.now(); });
  });
  sim.run_until_idle();
  EXPECT_EQ(fired.usec(), 150);
}

TEST(Simulator, PastScheduleClampsToNow) {
  Simulator sim;
  sim.run_until(TimePoint{1000});
  bool fired = false;
  sim.schedule_at(TimePoint{10}, [&] {
    fired = true;
    EXPECT_EQ(sim.now().usec(), 1000);
  });
  sim.run_until_idle();
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(TimePoint{5}, [&] { fired = true; });
  sim.cancel(id);
  sim.run_until_idle();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelUnknownIdIsNoop) {
  Simulator sim;
  sim.cancel(9999);
  SUCCEED();
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(TimePoint{100}, [&] { ++fired; });
  sim.schedule_at(TimePoint{200}, [&] { ++fired; });
  sim.run_until(TimePoint{150});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().usec(), 150);
  sim.run_until(TimePoint{250});
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilSkipsCancelledHead) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(TimePoint{100}, [] {});
  sim.schedule_at(TimePoint{200}, [&] { fired = true; });
  sim.cancel(id);
  sim.run_until(TimePoint{300});
  EXPECT_TRUE(fired);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_after(usec(10), chain);
  };
  sim.schedule_after(usec(10), chain);
  sim.run_until_idle();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now().usec(), 1000);
  EXPECT_EQ(sim.events_fired(), 100u);
}

TEST(Timer, FiresOnceAfterDelay) {
  Simulator sim;
  int fires = 0;
  Timer t{sim, [&] { ++fires; }};
  t.restart(msec(5));
  EXPECT_TRUE(t.armed());
  sim.run_until_idle();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(t.armed());
  EXPECT_EQ(sim.now().usec(), 5000);
}

TEST(Timer, RestartResetsDeadline) {
  Simulator sim;
  TimePoint fired{};
  Timer t{sim, [&] { fired = sim.now(); }};
  t.restart(msec(5));
  sim.schedule_at(TimePoint{3000}, [&] { t.restart(msec(5)); });
  sim.run_until_idle();
  EXPECT_EQ(fired.usec(), 8000);
}

TEST(Timer, StopPreventsFiring) {
  Simulator sim;
  int fires = 0;
  Timer t{sim, [&] { ++fires; }};
  t.restart(msec(5));
  t.stop();
  sim.run_until_idle();
  EXPECT_EQ(fires, 0);
}

TEST(Timer, DestructionCancelsPending) {
  Simulator sim;
  int fires = 0;
  {
    Timer t{sim, [&] { ++fires; }};
    t.restart(msec(5));
  }
  sim.run_until_idle();
  EXPECT_EQ(fires, 0);
}

// Cancel edge cases exercised by the fault injector's disarm path: an
// EventId may be cancelled after it fired, twice, or never — none of
// which may corrupt the pending_events() accounting.
TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  int fires = 0;
  const EventId id = sim.schedule_at(TimePoint{5}, [&] { ++fires; });
  sim.run_until_idle();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.cancel(id);  // already fired: must not resurrect a phantom entry
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.schedule_at(TimePoint{10}, [&] { ++fires; });
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until_idle();
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, DoubleCancelCountsOnce) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(TimePoint{5}, [&] { fired = true; });
  sim.schedule_at(TimePoint{6}, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(id);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.cancel(id);  // second cancel of the same id must not double-count
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until_idle();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, PendingEventsNeverUnderflows) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(sim.schedule_at(TimePoint{i * 10}, [] {}));
  }
  // Cancel everything twice, plus ids that never existed.
  for (const EventId id : ids) sim.cancel(id);
  for (const EventId id : ids) sim.cancel(id);
  sim.cancel(123456);
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.run_until_idle();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.events_fired(), 0u);
}

TEST(Simulator, CancelledHeadDoesNotAdvanceClockInRunUntil) {
  Simulator sim;
  const EventId id = sim.schedule_at(TimePoint{100}, [] {});
  sim.cancel(id);
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.run_until(TimePoint{50});
  EXPECT_EQ(sim.now().usec(), 50);
  sim.run_until_idle();
  EXPECT_EQ(sim.pending_events(), 0u);
}

// Regression: with the cursor mid-L1-bucket, an event whose *time*
// distance is just under the L1 horizon (2^24 us) is already a full
// wheel revolution away in *bucket* distance.  Filing it into L1 by
// absolute bucket index would wrap it into the cursor's own bucket and
// fire it ~16.7 s early; it must take the overflow heap instead.
// (Constants mirror the engine: L1 buckets are 4096 us, 4096 of them.)
TEST(Simulator, L1HorizonBoundaryFromMidBucketCursor) {
  constexpr std::int64_t kBucket = 4096;
  constexpr std::int64_t kHorizon = kBucket * 4096;  // 2^24 us
  Simulator sim;
  // Park the cursor mid-bucket.
  sim.schedule_at(TimePoint{1000}, [] {});
  sim.run_until_idle();
  ASSERT_EQ(sim.now().usec(), 1000);

  std::vector<std::int64_t> fired;
  auto record = [&] { fired.push_back(sim.now().usec()); };
  // Last tick of the farthest in-range L1 bucket (bucket distance 4095).
  const std::int64_t in_range_at = (1000 / kBucket + 4096) * kBucket - 1;
  // Under the horizon in time distance, but bucket distance 4096: one
  // full revolution ahead of the cursor's bucket.
  const std::int64_t wrap_at = 1000 + kHorizon - 1;
  // At the horizon exactly: overflow in any case.
  const std::int64_t beyond_at = 1000 + kHorizon;
  sim.schedule_at(TimePoint{beyond_at}, record);
  sim.schedule_at(TimePoint{wrap_at}, record);
  sim.schedule_at(TimePoint{in_range_at}, record);
  sim.run_until_idle();
  EXPECT_EQ(fired, (std::vector<std::int64_t>{in_range_at, wrap_at, beyond_at}));
  EXPECT_EQ(sim.now().usec(), beyond_at);
}

// Property sweep: with random schedules and cancellations, firing order is
// always non-decreasing in time and cancelled events never fire.
class SimulatorFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorFuzzTest, OrderAndCancellationInvariants) {
  Simulator sim;
  std::vector<std::int64_t> fire_times;
  std::vector<EventId> ids;
  std::uint64_t x = GetParam();
  auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  for (int i = 0; i < 500; ++i) {
    const auto at = static_cast<std::int64_t>(next() % 10000);
    ids.push_back(sim.schedule_at(TimePoint{at}, [&fire_times, &sim] {
      fire_times.push_back(sim.now().usec());
    }));
  }
  int cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    sim.cancel(ids[i]);
    ++cancelled;
  }
  sim.run_until_idle();
  EXPECT_EQ(fire_times.size(), 500u - static_cast<std::size_t>(cancelled));
  EXPECT_TRUE(std::is_sorted(fire_times.begin(), fire_times.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorFuzzTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace mn
