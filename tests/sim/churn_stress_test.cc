// Engine churn stress: 1M mixed schedule/cancel/advance operations plus
// a Timer torture loop, locked against constants recorded from the
// legacy (std::function + unordered_map) engine.  Any divergence in
// fire count or the FNV-1a checksum of fire times means the slab engine
// broke the (time, insertion-order) firing contract.
//
// The golden constants were produced by compiling churn_workload.hpp
// against the pre-slab simulator at commit c4bd5f5 and running both
// workloads; the slab engine must reproduce them bit-for-bit.
#include <gtest/gtest.h>

#include "churn_workload.hpp"
#include "sim/simulator.hpp"

namespace mn {
namespace {

TEST(ChurnStress, MillionOpChurnMatchesLegacyEngine) {
  const auto r = churn::run_event_churn();
  EXPECT_EQ(r.fired, 499441u);
  EXPECT_EQ(r.checksum, 11317656599842578852ull);
}

TEST(ChurnStress, TimerTortureMatchesLegacyEngine) {
  const auto r = churn::run_timer_torture();
  EXPECT_EQ(r.fired, 9955u);
  EXPECT_EQ(r.checksum, 14546355658960493477ull);
}

TEST(ChurnStress, SlabStateIsCleanAfterChurn) {
  Simulator sim;
  churn::XorShift64 rng{0xABCDEF0123456789ull};
  std::vector<EventId> ids;
  int fired = 0;
  for (int round = 0; round < 50; ++round) {
    ids.clear();
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(sim.schedule_after(usec(static_cast<std::int64_t>(rng.next() % 2000)),
                                       [&fired] { ++fired; }));
    }
    // Cancel a random third, including double-cancels.
    for (int i = 0; i < 400; ++i) sim.cancel(ids[rng.next() % ids.size()]);
    sim.run_until_idle();
    // pending_events() debug-asserts heap/slab/free-list consistency.
    EXPECT_EQ(sim.pending_events(), 0u);
  }
  EXPECT_GT(fired, 0);
  EXPECT_EQ(static_cast<std::uint64_t>(fired), sim.events_fired());
}

// The batch-dispatch extension of the audit contract: bookkeeping must
// reconcile when queried from inside a sink callback, mid-span, in
// every build type — and the whole churn trace must be identical under
// batched and scalar dispatch.
TEST(ChurnStress, SinkChurnAuditsHoldMidBatchAndMatchScalar) {
  const auto batched = churn::run_sink_churn(/*batch_dispatch=*/true);
  const auto scalar = churn::run_sink_churn(/*batch_dispatch=*/false);
  EXPECT_EQ(batched.audit_failures, 0u);
  EXPECT_EQ(scalar.audit_failures, 0u);
  EXPECT_GT(batched.fired, 0u);
  EXPECT_EQ(batched.fired, scalar.fired);
  EXPECT_EQ(batched.checksum, scalar.checksum);
}

TEST(ChurnStress, CancelAfterSlotReuseIsNoOp) {
  Simulator sim;
  int fired = 0;
  // Fire an event so its slot is retired, then schedule a new event
  // that recycles the slot under a bumped generation: the stale id
  // must not cancel the new occupant.
  const EventId stale = sim.schedule_at(TimePoint{10}, [&fired] { ++fired; });
  sim.run_until_idle();
  sim.schedule_at(TimePoint{20}, [&fired] { ++fired; });
  sim.cancel(stale);
  sim.cancel(stale);
  sim.run_until_idle();
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace mn
