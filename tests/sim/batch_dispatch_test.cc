// Batch sink dispatch ABI: grouping rules, the scalar fallback, and
// the cancel/reschedule/audit semantics from inside a delivered span.
//
// The contract under test (simulator.hpp header comment): a fired
// group is a maximal run of consecutive-in-seq same-tick same-sink
// items; grouping never reorders anything relative to scalar dispatch;
// items in a delivered span are already fired (their ids are dead, the
// audit counters see them as gone); cancelling other same-tick work
// from inside a batch suppresses it exactly as under scalar dispatch.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace mn {
namespace {

/// Records every span a sink receives: (fire time, items) per call.
struct SpanLog {
  struct Entry {
    std::int64_t at;
    std::vector<std::uint64_t> items;
  };
  std::vector<Entry> calls;

  SinkId attach(Simulator& sim) {
    return sim.register_sink([this, &sim](SinkSpan s) {
      calls.push_back({sim.now().usec(), {s.begin(), s.end()}});
    });
  }
  [[nodiscard]] std::vector<std::uint64_t> flat() const {
    std::vector<std::uint64_t> all;
    for (const auto& c : calls) all.insert(all.end(), c.items.begin(), c.items.end());
    return all;
  }
};

TEST(BatchDispatch, SameTickSameSinkItemsArriveAsOneSpan) {
  Simulator sim;
  SpanLog log;
  const SinkId sink = log.attach(sim);
  for (std::uint64_t i = 0; i < 5; ++i) sim.schedule_item_at(TimePoint{100}, sink, i);
  sim.run_until_idle();
  ASSERT_EQ(log.calls.size(), 1u);
  EXPECT_EQ(log.calls[0].at, 100);
  EXPECT_EQ(log.calls[0].items, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(sim.events_fired(), 5u);
}

TEST(BatchDispatch, GroupsSplitAtSinkBoundaries) {
  Simulator sim;
  SpanLog a, b;
  const SinkId sa = a.attach(sim);
  const SinkId sb = b.attach(sim);
  // Schedule order (= seq order) at one tick: A A B A -> groups [A,A] [B] [A].
  sim.schedule_item_at(TimePoint{50}, sa, 1);
  sim.schedule_item_at(TimePoint{50}, sa, 2);
  sim.schedule_item_at(TimePoint{50}, sb, 3);
  sim.schedule_item_at(TimePoint{50}, sa, 4);
  sim.run_until_idle();
  ASSERT_EQ(a.calls.size(), 2u);
  EXPECT_EQ(a.calls[0].items, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(a.calls[1].items, (std::vector<std::uint64_t>{4}));
  ASSERT_EQ(b.calls.size(), 1u);
  EXPECT_EQ(b.calls[0].items, (std::vector<std::uint64_t>{3}));
}

TEST(BatchDispatch, ClosuresSplitGroupsAtTheirSeqPosition) {
  Simulator sim;
  SpanLog log;
  const SinkId sink = log.attach(sim);
  std::vector<std::string> order;
  sim.schedule_item_at(TimePoint{10}, sink, 1);
  sim.schedule_at(TimePoint{10}, [&order] { order.push_back("closure"); });
  sim.schedule_item_at(TimePoint{10}, sink, 2);
  sim.run_until_idle();
  ASSERT_EQ(log.calls.size(), 2u);
  EXPECT_EQ(log.calls[0].items, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(log.calls[1].items, (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(order, (std::vector<std::string>{"closure"}));
}

TEST(BatchDispatch, ScalarFallbackDegradesEveryGroupToWidthOne) {
  Simulator sim;
  sim.set_batch_dispatch(false);
  SpanLog log;
  const SinkId sink = log.attach(sim);
  for (std::uint64_t i = 0; i < 4; ++i) sim.schedule_item_at(TimePoint{7}, sink, i);
  sim.run_until_idle();
  ASSERT_EQ(log.calls.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(log.calls[i].items, std::vector<std::uint64_t>{i});
  }
  EXPECT_EQ(log.flat(), (std::vector<std::uint64_t>{0, 1, 2, 3}));
}

TEST(BatchDispatch, EnvVarForcesScalarDispatchAtConstruction) {
  ::setenv("MN_SCALAR_DISPATCH", "1", 1);
  Simulator scalar;
  ::unsetenv("MN_SCALAR_DISPATCH");
  Simulator batched;
  EXPECT_FALSE(scalar.batch_dispatch());
  EXPECT_TRUE(batched.batch_dispatch());
}

TEST(BatchDispatch, CancellingOwnSpanItemsIsANoop) {
  Simulator sim;
  std::vector<EventId> ids;
  std::size_t deliveries = 0;
  SinkId sink = 0;
  sink = sim.register_sink([&](SinkSpan s) {
    deliveries += s.size();
    // Every id in this span is already fired; cancelling them must not
    // disturb anything (notably not the counters the audit reconciles).
    for (const EventId id : ids) sim.cancel(id);
    EXPECT_TRUE(sim.bookkeeping_consistent());
  });
  for (std::uint64_t i = 0; i < 3; ++i) {
    ids.push_back(sim.schedule_item_at(TimePoint{5}, sink, i));
  }
  sim.run_until_idle();
  EXPECT_EQ(deliveries, 3u);
  EXPECT_EQ(sim.events_fired(), 3u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(BatchDispatch, CancellingOtherSinksSameTickWorkSuppressesIt) {
  for (const bool batch : {true, false}) {
    Simulator sim;
    sim.set_batch_dispatch(batch);
    SpanLog victim_log;
    const SinkId victim = victim_log.attach(sim);
    EventId victim_id = 0;
    std::size_t killer_calls = 0;
    const SinkId killer = sim.register_sink([&](SinkSpan) {
      ++killer_calls;
      sim.cancel(victim_id);
    });
    sim.schedule_item_at(TimePoint{9}, killer, 0);
    victim_id = sim.schedule_item_at(TimePoint{9}, victim, 7);
    sim.run_until_idle();
    EXPECT_EQ(killer_calls, 1u) << "batch=" << batch;
    EXPECT_TRUE(victim_log.calls.empty()) << "batch=" << batch;
    EXPECT_EQ(sim.events_fired(), 1u) << "batch=" << batch;
  }
}

TEST(BatchDispatch, RescheduleFromInsideSpanLandsSameTickAfterGroup) {
  Simulator sim;
  SpanLog log;
  SinkId sink = 0;
  bool rearmed = false;
  sink = sim.register_sink([&](SinkSpan s) {
    log.calls.push_back({sim.now().usec(), {s.begin(), s.end()}});
    if (!rearmed) {
      rearmed = true;
      // Same-tick reschedule from inside the span: fires later this
      // tick as its own group (its seq is newer than the whole batch).
      sim.schedule_item_at(sim.now(), sink, 99);
    }
  });
  sim.schedule_item_at(TimePoint{3}, sink, 1);
  sim.schedule_item_at(TimePoint{3}, sink, 2);
  sim.run_until_idle();
  ASSERT_EQ(log.calls.size(), 2u);
  EXPECT_EQ(log.calls[0].items, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(log.calls[1].items, (std::vector<std::uint64_t>{99}));
  EXPECT_EQ(log.calls[1].at, 3);
}

TEST(BatchDispatch, MidSpanAuditSeesDeliveredItemsAsFired) {
  Simulator sim;
  SinkId sink = 0;
  std::size_t checked = 0;
  sink = sim.register_sink([&](SinkSpan s) {
    // The 4 span items are fired and freed; the closure at the same
    // tick is still pending.  pending_events() must say exactly 1.
    EXPECT_EQ(sim.pending_events(), 1u);
    EXPECT_TRUE(sim.bookkeeping_consistent());
    checked += s.size();
  });
  for (std::uint64_t i = 0; i < 4; ++i) sim.schedule_item_at(TimePoint{8}, sink, i);
  bool closure_fired = false;
  sim.schedule_at(TimePoint{8}, [&closure_fired] { closure_fired = true; });
  sim.run_until_idle();
  EXPECT_EQ(checked, 4u);
  EXPECT_TRUE(closure_fired);
}

TEST(BatchDispatch, StepGranularityIsOneGroup) {
  Simulator sim;
  SpanLog log;
  const SinkId sink = log.attach(sim);
  for (std::uint64_t i = 0; i < 3; ++i) sim.schedule_item_at(TimePoint{2}, sink, i);
  sim.schedule_item_at(TimePoint{4}, sink, 9);
  EXPECT_TRUE(sim.step());  // the whole width-3 group is one step
  EXPECT_EQ(log.calls.size(), 1u);
  EXPECT_EQ(sim.events_fired(), 3u);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(log.calls.size(), 2u);
  EXPECT_FALSE(sim.step());
}

/// Randomized equivalence: an identical mixed workload (closures, two
/// sinks, cancels, bursty same-tick schedules) must produce the same
/// fire trace under batched and scalar dispatch.
TEST(BatchDispatch, RandomizedWorkloadMatchesScalarTraceExactly) {
  auto run = [](bool batch) {
    Simulator sim;
    sim.set_batch_dispatch(batch);
    std::vector<std::pair<std::int64_t, std::uint64_t>> trace;  // (time, tag)
    const SinkId sa = sim.register_sink([&](SinkSpan s) {
      for (const std::uint64_t v : s) trace.emplace_back(sim.now().usec(), v);
    });
    const SinkId sb = sim.register_sink([&](SinkSpan s) {
      for (const std::uint64_t v : s) trace.emplace_back(sim.now().usec(), v | (1ull << 32));
    });
    std::uint64_t rng = 0x243F6A8885A308D3ull;
    auto next = [&rng] {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };
    std::vector<EventId> ids;
    for (int i = 0; i < 20000; ++i) {
      const std::uint64_t r = next();
      const std::int64_t at = sim.now().usec() + static_cast<std::int64_t>((r >> 10) % 300);
      switch (r % 6) {
        case 0:
        case 1:
          ids.push_back(sim.schedule_item_at(TimePoint{at}, sa, r >> 32));
          break;
        case 2:
          ids.push_back(sim.schedule_item_at(TimePoint{at}, sb, r >> 32));
          break;
        case 3:
          ids.push_back(sim.schedule_at(TimePoint{at}, [&trace, &sim, tag = r >> 32] {
            trace.emplace_back(sim.now().usec(), tag | (2ull << 32));
          }));
          break;
        case 4:
          if (!ids.empty()) sim.cancel(ids[(r >> 8) % ids.size()]);
          break;
        default:
          sim.run_until(sim.now() + usec(static_cast<std::int64_t>((r >> 8) % 64)));
      }
    }
    sim.run_until_idle();
    return std::pair{trace, sim.events_fired()};
  };
  const auto batched = run(true);
  const auto scalar = run(false);
  EXPECT_EQ(batched.second, scalar.second);
  ASSERT_EQ(batched.first.size(), scalar.first.size());
  EXPECT_EQ(batched.first, scalar.first);
}

}  // namespace
}  // namespace mn
