// Deterministic churn workloads shared by the engine stress test and
// the out-of-tree reference runner that recorded the golden constants
// against the legacy (pre-slab) engine.  Both engines must produce the
// same (fired, checksum) for each workload: the workload only observes
// fire *times* and counts, never EventId bit patterns, so it is valid
// across engine representations.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"

namespace mn::churn {

struct Result {
  std::uint64_t fired = 0;
  std::uint64_t checksum = 0;
  std::uint64_t audit_failures = 0;  // run_sink_churn only
};

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// xorshift64 — tiny, deterministic, no <random> dependency.
struct XorShift64 {
  std::uint64_t s;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

/// 1M mixed schedule/cancel/advance operations.  Cancels draw from the
/// full id history, so already-fired and double-cancelled ids are hit
/// constantly (the generation-mismatch path in the slab engine, the
/// map-miss path in the legacy one).
inline Result run_event_churn() {
  Simulator sim;
  XorShift64 rng{0x9E3779B97F4A7C15ull};
  Result result;
  result.checksum = kFnvOffset;
  auto on_fire = [&] {
    result.checksum =
        (result.checksum ^ static_cast<std::uint64_t>(sim.now().usec())) * kFnvPrime;
    ++result.fired;
  };
  std::vector<EventId> ids;
  ids.reserve(600'000);
  constexpr int kOps = 1'000'000;
  for (int i = 0; i < kOps; ++i) {
    const std::uint64_t r = rng.next();
    const std::uint64_t op = r % 8;
    if (op < 4) {
      ids.push_back(sim.schedule_at(
          sim.now() + usec(static_cast<std::int64_t>((r >> 8) % 5000)),
          [&on_fire] { on_fire(); }));
    } else if (op < 6) {
      if (!ids.empty()) sim.cancel(ids[(r >> 8) % ids.size()]);
    } else {
      sim.run_until(sim.now() + usec(static_cast<std::int64_t>((r >> 8) % 800)));
    }
    // Every 4096 ops, force the bookkeeping audit that pending_events()
    // debug-asserts (slab occupancy vs heap size vs free list).
    if ((i & 0xFFF) == 0) (void)sim.pending_events();
  }
  sim.run_until_idle();
  return result;
}

/// Timer torture: four timers restarted/stopped at random — the RTO
/// pattern, where nearly every scheduled event is cancelled before it
/// can fire.
inline Result run_timer_torture() {
  Simulator sim;
  XorShift64 rng{0xD1B54A32D192ED03ull};
  Result result;
  result.checksum = kFnvOffset;
  auto on_fire = [&] {
    result.checksum =
        (result.checksum ^ static_cast<std::uint64_t>(sim.now().usec())) * kFnvPrime;
    ++result.fired;
  };
  Timer t0{sim, [&on_fire] { on_fire(); }};
  Timer t1{sim, [&on_fire] { on_fire(); }};
  Timer t2{sim, [&on_fire] { on_fire(); }};
  Timer t3{sim, [&on_fire] { on_fire(); }};
  Timer* timers[] = {&t0, &t1, &t2, &t3};
  constexpr int kOps = 200'000;
  for (int i = 0; i < kOps; ++i) {
    const std::uint64_t r = rng.next();
    Timer& t = *timers[(r >> 4) % 4];
    const std::uint64_t op = r % 10;
    if (op < 6) {
      t.restart(usec(static_cast<std::int64_t>((r >> 8) % 3000) + 1));
    } else if (op < 8) {
      t.stop();
    } else {
      sim.run_until(sim.now() + usec(static_cast<std::int64_t>((r >> 8) % 500)));
    }
    if ((i & 0xFFF) == 0) (void)sim.pending_events();
  }
  sim.run_until_idle();
  return result;
}

/// Sink-dispatch churn with mid-batch audits: two sinks and a closure
/// stream over bursty same-tick schedules plus cancels, where every
/// sink delivery folds its span into the checksum and periodically runs
/// the full bookkeeping audit FROM INSIDE the callback — the items of
/// the span being delivered are already fired, so the audit must
/// reconcile with them gone.  Run under batched and scalar dispatch the
/// results must match field for field (the golden grouping contract);
/// audit_failures must be zero in every build type.
inline Result run_sink_churn(bool batch_dispatch) {
  Simulator sim;
  sim.set_batch_dispatch(batch_dispatch);
  XorShift64 rng{0xC6A4A7935BD1E995ull};
  Result result;
  result.checksum = kFnvOffset;
  auto fold = [&](std::uint64_t v) {
    result.checksum = (result.checksum ^ v) * kFnvPrime;
    ++result.fired;
  };
  std::uint64_t deliveries = 0;
  const auto make_sink = [&](std::uint64_t tag) {
    return [&, tag](SinkSpan s) {
      for (const std::uint64_t item : s) {
        fold(static_cast<std::uint64_t>(sim.now().usec()) ^ item ^ tag);
      }
      if ((++deliveries & 0x3F) == 0) {
        // Mid-batch: pending_events() debug-asserts the audit; the
        // explicit call checks it in release builds too.
        (void)sim.pending_events();
        if (!sim.bookkeeping_consistent()) ++result.audit_failures;
      }
    };
  };
  const SinkId sa = sim.register_sink(make_sink(0));
  const SinkId sb = sim.register_sink(make_sink(0x8000000000000000ull));
  std::vector<EventId> ids;
  ids.reserve(120'000);
  constexpr int kOps = 200'000;
  for (int i = 0; i < kOps; ++i) {
    const std::uint64_t r = rng.next();
    const std::int64_t at = sim.now().usec() + static_cast<std::int64_t>((r >> 16) % 400);
    const std::uint64_t op = r % 8;
    if (op < 3) {
      ids.push_back(sim.schedule_item_at(TimePoint{at}, sa, r >> 32));
    } else if (op < 5) {
      ids.push_back(sim.schedule_item_at(TimePoint{at}, sb, r >> 32));
    } else if (op < 6) {
      ids.push_back(sim.schedule_at(TimePoint{at}, [&fold, &sim] {
        fold(static_cast<std::uint64_t>(sim.now().usec()));
      }));
    } else if (op < 7) {
      if (!ids.empty()) sim.cancel(ids[(r >> 8) % ids.size()]);
    } else {
      sim.run_until(sim.now() + usec(static_cast<std::int64_t>((r >> 8) % 200)));
    }
  }
  sim.run_until_idle();
  return result;
}

}  // namespace mn::churn
