// Golden scalar-vs-batched determinism: batch dispatch (sink spans in
// the engine, sweep delivery in the net layer, on_packets() at the
// endpoints) is a pure mechanism change — every observable output must
// be byte-identical to scalar dispatch at any batch width, worker
// count included.
//
// Scalar mode is forced two ways, matching how users reach it:
// set_batch_dispatch(false) on a simulator owned by the test, and the
// MN_SCALAR_DISPATCH=1 environment hook for simulators constructed
// deep inside the campaign machinery.
//
// What "output" means here: result structs, timelines and campaign CSV
// bytes.  Flight-recorder *intra-tick event order* is deliberately NOT
// compared — a batched sink delivers its span after every item in it
// is retired, so obs events within one tick may interleave differently
// while every per-tick count and every (time, seq) pair stays equal
// (see DESIGN.md on the determinism contract).
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "measure/campaign.hpp"
#include "measure/world.hpp"
#include "mptcp/testbed.hpp"
#include "tcp/flow.hpp"
#include "util/units.hpp"

namespace mn {
namespace {

/// RAII MN_SCALAR_DISPATCH=1 (read by every Simulator constructor).
struct ScopedScalarDispatch {
  ScopedScalarDispatch() { ::setenv("MN_SCALAR_DISPATCH", "1", 1); }
  ~ScopedScalarDispatch() { ::unsetenv("MN_SCALAR_DISPATCH"); }
};

std::string timeline_str(const std::vector<TimelinePoint>& tl) {
  std::ostringstream out;
  for (const auto& pt : tl) out << pt.t.usec() << ":" << pt.bytes << ";";
  return out.str();
}

std::string flow_signature(const FlowResult& r) {
  std::ostringstream out;
  out.precision(17);
  out << r.completed << "|" << r.throughput_mbps << "|" << r.completion_time.usec()
      << "|" << r.syn_rtt.usec() << "|" << r.max_stall.usec() << "|" << r.retransmits
      << "|" << r.failure_reason << "|" << timeline_str(r.timeline);
  return out.str();
}

std::string mptcp_signature(const MptcpFlowResult& r) {
  std::ostringstream out;
  out.precision(17);
  out << r.completed << "|" << r.throughput_mbps << "|" << r.completion_time.usec()
      << "|" << r.negotiated_mp << "|" << r.achieved_mp << "|" << r.join_attempts
      << "|" << r.fallback_reason << "|" << r.energy_wifi_j << "|" << r.energy_lte_j
      << "|" << timeline_str(r.timeline) << "#" << timeline_str(r.subflow_timelines[0])
      << "#" << timeline_str(r.subflow_timelines[1]);
  return out.str();
}

TEST(BatchGolden, BulkTcpFlowIdenticalUnderScalarDispatch) {
  const auto run = [](bool batch) {
    Simulator sim;
    sim.set_batch_dispatch(batch);
    LinkSpec spec;
    spec.rate_mbps = 10.0;
    spec.one_way_delay = msec(10);
    spec.queue_packets = 64;
    DuplexPath path{sim, spec, spec};
    return flow_signature(run_bulk_flow(sim, path, 500'000, Direction::kDownload));
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(BatchGolden, FaultedTcpFlowIdenticalUnderScalarDispatch) {
  // Loss + a transparent-but-enabled middlebox: the batch path enters
  // the pipe through accept_batch and the per-packet RNG draw order
  // must survive the sweep.
  const auto run = [](bool batch) {
    Simulator sim;
    sim.set_batch_dispatch(batch);
    LinkSpec spec;
    spec.rate_mbps = 8.0;
    spec.one_way_delay = msec(15);
    spec.queue_packets = 32;
    spec.loss_rate = 0.02;
    spec.loss_seed = 11;
    DuplexPath path{sim, spec, spec};
    MiddleboxSpec mbox;
    mbox.mangle_dss = 0.5;  // draws per data packet; no effect on plain TCP
    path.uplink().set_middlebox(mbox);
    path.downlink().set_middlebox(mbox);
    return flow_signature(run_bulk_flow(sim, path, 300'000, Direction::kDownload));
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(BatchGolden, MptcpFlowIdenticalUnderScalarDispatch) {
  const auto run = [](bool batch) {
    Simulator sim;
    sim.set_batch_dispatch(batch);
    LinkSpec wifi;
    wifi.rate_mbps = 10.0;
    wifi.one_way_delay = msec(10);
    wifi.queue_packets = 64;
    LinkSpec lte = wifi;
    lte.one_way_delay = msec(30);
    return mptcp_signature(run_mptcp_flow(sim, symmetric_setup(wifi, lte), MptcpSpec{},
                                          500'000, Direction::kDownload));
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(BatchGolden, PingRttIdenticalUnderScalarDispatch) {
  // The echo server bounces each burst back through send_down_batch —
  // the one place a whole span re-enters a pipe in one call.
  const auto run = [](bool batch) {
    Simulator sim;
    sim.set_batch_dispatch(batch);
    LinkSpec spec;
    spec.rate_mbps = 20.0;
    spec.one_way_delay = msec(25);
    DuplexPath path{sim, spec, spec};
    return measure_ping_rtt(sim, path, 10).usec();
  };
  EXPECT_EQ(run(true), run(false));
}

// The full-campaign bar: CSV bytes equal across {batched, scalar} x
// {serial, 4 workers}.  Workers pre-draw inputs serially, so the only
// way parallelism or batching can leak into the records is an engine
// ordering bug.
TEST(BatchGolden, CampaignCsvIdenticalAcrossDispatchModesAndWorkers) {
  const std::vector<ClusterSpec> world{
      make_cluster("A", {40.0, -70.0}, 8, 0.10, 14.0),
      make_cluster("B", {10.0, 100.0}, 8, 0.85, 4.0)};
  const auto run = [&world](bool scalar, int parallelism) {
    CampaignOptions opt;
    opt.incomplete_probability = 0.1;
    opt.parallelism = parallelism;
    if (scalar) {
      ScopedScalarDispatch env;
      return to_csv(run_campaign(world, opt)).str();
    }
    return to_csv(run_campaign(world, opt)).str();
  };
  const std::string golden = run(/*scalar=*/false, /*parallelism=*/0);
  EXPECT_FALSE(golden.empty());
  EXPECT_EQ(run(false, 4), golden) << "4-worker batched differs from serial";
  EXPECT_EQ(run(true, 0), golden) << "scalar dispatch changed campaign output";
  EXPECT_EQ(run(true, 4), golden) << "4-worker scalar differs";
}

}  // namespace
}  // namespace mn
