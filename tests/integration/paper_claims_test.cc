// End-to-end reproduction invariants: each test asserts one of the
// paper's headline findings on the full stack (locations -> links ->
// transports -> metrics).  These are the claims EXPERIMENTS.md reports;
// if one breaks, the reproduction regressed even if every unit test
// still passes.
#include <gtest/gtest.h>

#include <algorithm>

#include "app/replay.hpp"
#include "core/experiment.hpp"
#include "core/policy.hpp"
#include "energy/power_model.hpp"
#include "measure/locations20.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace mn {
namespace {

double tput(const MpNetworkSetup& net, const TransportConfig& cfg, std::int64_t bytes) {
  Simulator sim;
  return run_transport_flow(sim, net, cfg, bytes, Direction::kDownload).throughput_mbps;
}

// Finding 2 (Figure 7 / Section 3.3): for short flows, the right
// single-path TCP beats every MPTCP variant.
TEST(PaperClaims, ShortFlowsFavorBestSinglePath) {
  const auto setup = location_setup(table2_locations()[0], /*seed=*/2);
  double best_tcp = 0.0;
  double best_mptcp = 0.0;
  for (const auto& cfg : replay_configs()) {
    const double v = tput(setup, cfg, 10 * kKB);
    (cfg.kind == TransportKind::kSinglePath ? best_tcp : best_mptcp) =
        std::max(cfg.kind == TransportKind::kSinglePath ? best_tcp : best_mptcp, v);
  }
  EXPECT_GE(best_tcp, best_mptcp);
}

// Figure 7b: with comparable links, MPTCP wins at 1 MB.
TEST(PaperClaims, LongFlowsOnComparableLinksFavorMptcp) {
  const auto setup = location_setup(table2_locations()[10], /*seed=*/2);  // 8/7 Mbit/s
  double best_tcp = 0.0;
  double best_mptcp = 0.0;
  for (const auto& cfg : replay_configs()) {
    const double v = tput(setup, cfg, 1000 * kKB);
    (cfg.kind == TransportKind::kSinglePath ? best_tcp : best_mptcp) =
        std::max(cfg.kind == TransportKind::kSinglePath ? best_tcp : best_mptcp, v);
  }
  EXPECT_GT(best_mptcp, best_tcp);
}

// Figure 8: the primary-subflow choice hits short flows harder than
// long flows (median relative difference decreasing in flow size).
TEST(PaperClaims, PrimaryChoiceMattersMostForShortFlows) {
  EmpiricalDistribution small;
  EmpiricalDistribution large;
  for (int li : {0, 3, 9, 16, 18}) {
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      const auto& loc = table2_locations()[static_cast<std::size_t>(li)];
      const auto a = location_setup(loc, seed * 100);
      const auto b = location_setup(loc, seed * 100 + 7);
      const std::vector<std::pair<EmpiricalDistribution*, std::int64_t>> cases{
          {&small, 10 * kKB}, {&large, 1000 * kKB}};
      for (const auto& [dist, bytes] : cases) {
        const double lte = tput(a, TransportConfig::mptcp(PathId::kLte, CcAlgo::kDecoupled),
                                bytes);
        const double wifi = tput(b, TransportConfig::mptcp(PathId::kWifi, CcAlgo::kDecoupled),
                                 bytes);
        if (wifi > 0) dist->add(std::abs(lte - wifi) / wifi);
      }
    }
  }
  EXPECT_GT(small.median(), large.median());
}

// Figure 15g/h asymmetry is covered in mptcp tests; here assert the
// energy headline (Section 3.6.2): for a short flow, LTE-as-backup
// saves under half of the active-LTE energy.
TEST(PaperClaims, BackupLteSavesLittleForShortFlows) {
  auto lte_energy = [](MpMode mode) {
    Simulator sim;
    LinkSpec wifi;
    wifi.rate_mbps = 5.0;
    wifi.one_way_delay = msec(12);
    LinkSpec lte = wifi;
    lte.one_way_delay = msec(30);
    MptcpSpec spec{PathId::kWifi, CcAlgo::kDecoupled, mode};
    MptcpTestbed bed{sim, symmetric_setup(wifi, lte), spec};
    bed.start_transfer(2'000'000, Direction::kDownload);  // ~2-3 s flow
    EXPECT_TRUE(bed.run_until_finished(sec(60)));
    EnergyMeter meter{lte_power_params()};
    for (const auto& e : bed.events(PathId::kLte)) meter.add_activity(e.t);
    return meter.radio_energy_joules(TimePoint{sec(60).usec()});
  };
  const double full = lte_energy(MpMode::kFull);
  const double backup = lte_energy(MpMode::kBackup);
  EXPECT_GT(backup, 0.0);
  EXPECT_GT(backup, 0.5 * full) << "backup should NOT save much for short flows";
}

// Section 5: the adaptive policy derived from the findings never loses
// badly to the oracle across a spread of conditions and flow sizes.
TEST(PaperClaims, AdaptivePolicyTracksOracle) {
  for (int li : {0, 5, 10, 16}) {
    const auto& loc = table2_locations()[static_cast<std::size_t>(li)];
    const auto setup = location_setup(loc, /*seed=*/3);
    LinkEstimate est;
    est.wifi_down_mbps = loc.wifi_mbps;
    est.lte_down_mbps = loc.lte_mbps;
    for (std::int64_t bytes : {std::int64_t{10 * kKB}, 1000 * kKB}) {
      const auto pick = adaptive_policy(est, bytes);
      const double picked = tput(setup, pick, bytes);
      double oracle = 0.0;
      for (const auto& cfg : replay_configs()) {
        oracle = std::max(oracle, tput(setup, cfg, bytes));
      }
      EXPECT_GT(picked, 0.45 * oracle)
          << "policy pick " << pick.name() << " too far from oracle at location "
          << loc.id << ", " << bytes << " B";
    }
  }
}

// Figures 18-21 in miniature: replaying a short-flow app, the spread
// between best and worst single path exceeds the spread MPTCP adds on
// top of the best single path.
TEST(PaperClaims, NetworkSelectionDominatesForShortFlowApps) {
  Rng rng{99};
  const AppPattern pattern = cnn_launch(rng);
  const auto setup = location_setup(table2_locations()[1], /*seed=*/5);  // WiFi-dominant
  const auto times = replay_all_configs(pattern, setup);
  const double wifi_tcp = times.at("WiFi-TCP");
  const double lte_tcp = times.at("LTE-TCP");
  double best_mptcp = 1e18;
  for (const auto& [name, t] : times) {
    if (name.rfind("MPTCP", 0) == 0) best_mptcp = std::min(best_mptcp, t);
  }
  const double best_tcp = std::min(wifi_tcp, lte_tcp);
  const double single_path_gain = std::max(wifi_tcp, lte_tcp) - best_tcp;
  const double mptcp_gain = best_tcp - best_mptcp;  // can be negative
  EXPECT_GT(single_path_gain, mptcp_gain);
}

}  // namespace
}  // namespace mn
