#include "util/interval_set.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mn {
namespace {

TEST(IntervalSet, EmptyInitially) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.total(), 0);
  EXPECT_EQ(s.contiguous_from(0), 0);
}

TEST(IntervalSet, SingleAdd) {
  IntervalSet s;
  EXPECT_EQ(s.add(10, 20), 10);
  EXPECT_EQ(s.total(), 10);
  EXPECT_EQ(s.contiguous_from(10), 10);
  EXPECT_EQ(s.contiguous_from(0), 0);
  EXPECT_TRUE(s.covers(10, 20));
  EXPECT_FALSE(s.covers(10, 21));
}

TEST(IntervalSet, DuplicateAddGainsNothing) {
  IntervalSet s;
  s.add(0, 100);
  EXPECT_EQ(s.add(0, 100), 0);
  EXPECT_EQ(s.add(20, 50), 0);
  EXPECT_EQ(s.total(), 100);
}

TEST(IntervalSet, OverlapMerges) {
  IntervalSet s;
  s.add(0, 10);
  EXPECT_EQ(s.add(5, 15), 5);
  EXPECT_EQ(s.total(), 15);
  EXPECT_EQ(s.interval_count(), 1u);
}

TEST(IntervalSet, AdjacentMerges) {
  IntervalSet s;
  s.add(0, 10);
  s.add(10, 20);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.contiguous_from(0), 20);
}

TEST(IntervalSet, GapKeepsSeparate) {
  IntervalSet s;
  s.add(0, 10);
  s.add(20, 30);
  EXPECT_EQ(s.interval_count(), 2u);
  EXPECT_EQ(s.total(), 20);
  EXPECT_EQ(s.contiguous_from(0), 10);
  // Filling the gap merges everything.
  EXPECT_EQ(s.add(10, 20), 10);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.contiguous_from(0), 30);
}

TEST(IntervalSet, SpanningAddSwallowsMany) {
  IntervalSet s;
  s.add(10, 20);
  s.add(30, 40);
  s.add(50, 60);
  EXPECT_EQ(s.add(0, 100), 70);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.total(), 100);
}

TEST(IntervalSet, EmptyRangeIsNoop) {
  IntervalSet s;
  EXPECT_EQ(s.add(5, 5), 0);
  EXPECT_EQ(s.add(7, 3), 0);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, CoversEdgeCases) {
  IntervalSet s;
  s.add(10, 20);
  EXPECT_TRUE(s.covers(15, 15));  // empty range
  EXPECT_FALSE(s.covers(5, 15));
  EXPECT_FALSE(s.covers(15, 25));
}

// Property: total() equals brute-force coverage for random insertions.
class IntervalSetFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalSetFuzz, TotalMatchesBruteForce) {
  Rng rng{GetParam()};
  IntervalSet s;
  std::vector<bool> covered(1000, false);
  for (int i = 0; i < 200; ++i) {
    const auto a = rng.uniform_int(0, 999);
    const auto b = rng.uniform_int(0, 999);
    const auto lo = std::min(a, b);
    const auto hi = std::max(a, b);
    s.add(lo, hi);
    for (std::int64_t j = lo; j < hi; ++j) covered[static_cast<std::size_t>(j)] = true;
    std::int64_t expect = 0;
    for (bool c : covered) expect += c;
    ASSERT_EQ(s.total(), expect) << "after add [" << lo << "," << hi << ")";
  }
  // contiguous_from(0) equals the brute-force prefix run.
  std::int64_t prefix = 0;
  while (prefix < 1000 && covered[static_cast<std::size_t>(prefix)]) ++prefix;
  EXPECT_EQ(s.contiguous_from(0), prefix);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetFuzz, ::testing::Values(1, 7, 42, 99, 1234));

}  // namespace
}  // namespace mn
