#include "mptcp/mptcp_agent.hpp"

#include <gtest/gtest.h>

#include "mptcp/testbed.hpp"

namespace mn {
namespace {

LinkSpec mk(double mbps, Duration delay, int queue = 64) {
  LinkSpec s;
  s.rate_mbps = mbps;
  s.one_way_delay = delay;
  s.queue_packets = queue;
  return s;
}

MpNetworkSetup basic_setup(double wifi_mbps = 10, double lte_mbps = 10) {
  return symmetric_setup(mk(wifi_mbps, msec(10)), mk(lte_mbps, msec(30)));
}

MptcpSpec spec(PathId primary, CcAlgo cc = CcAlgo::kDecoupled,
               MpMode mode = MpMode::kFull) {
  MptcpSpec s;
  s.primary = primary;
  s.cc = cc;
  s.mode = mode;
  return s;
}

TEST(MptcpAgent, EstablishesBothSubflows) {
  Simulator sim;
  MptcpTestbed bed{sim, basic_setup(), spec(PathId::kWifi)};
  bed.start_transfer(100'000, Direction::kDownload);
  sim.run_until(TimePoint{sec(2).usec()});
  EXPECT_TRUE(bed.client().subflow(0).established() ||
              bed.client().subflow(0).state() == TcpState::kDone);
  EXPECT_TRUE(bed.client().subflow(1).established() ||
              bed.client().subflow(1).state() == TcpState::kDone);
}

TEST(MptcpAgent, PrimarySubflowRidesThePrimaryNetwork) {
  Simulator sim;
  MptcpTestbed wifi_bed{sim, basic_setup(), spec(PathId::kWifi)};
  EXPECT_EQ(wifi_bed.client().subflow_path(0), PathId::kWifi);
  EXPECT_EQ(wifi_bed.client().subflow_path(1), PathId::kLte);
  Simulator sim2;
  MptcpTestbed lte_bed{sim2, basic_setup(), spec(PathId::kLte)};
  EXPECT_EQ(lte_bed.client().subflow_path(0), PathId::kLte);
  EXPECT_EQ(lte_bed.client().subflow_path(1), PathId::kWifi);
}

TEST(MptcpAgent, DownloadDeliversAllDataAcrossSubflows) {
  Simulator sim;
  const auto r =
      run_mptcp_flow(sim, basic_setup(), spec(PathId::kWifi), 1'000'000,
                     Direction::kDownload);
  EXPECT_TRUE(r.completed);
  // Both subflows must have carried data in Full-MPTCP mode.
  EXPECT_FALSE(r.subflow_timelines[0].empty());
  EXPECT_FALSE(r.subflow_timelines[1].empty());
  EXPECT_GT(r.subflow_timelines[0].back().bytes, 100'000);
  EXPECT_GT(r.subflow_timelines[1].back().bytes, 100'000);
}

TEST(MptcpAgent, UploadCompletesToo) {
  Simulator sim;
  const auto r = run_mptcp_flow(sim, basic_setup(), spec(PathId::kLte), 500'000,
                                Direction::kUpload);
  EXPECT_TRUE(r.completed);
}

TEST(MptcpAgent, AggregatesCapacityOfBothLinks) {
  // 8 + 8 Mbit/s should beat either link alone for a long flow.
  Simulator sim;
  const auto r = run_mptcp_flow(sim, basic_setup(8, 8), spec(PathId::kWifi),
                                4'000'000, Direction::kDownload);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.throughput_mbps, 9.0);
}

TEST(MptcpAgent, ShortFlowStaysNearPrimaryPerformance) {
  // A 10 KB flow finishes before the secondary subflow matters much.
  Simulator sim;
  const auto r = run_mptcp_flow(sim, basic_setup(), spec(PathId::kWifi), 10'000,
                                Direction::kDownload);
  ASSERT_TRUE(r.completed);
  // Must complete within a few WiFi RTTs (20 ms each).
  EXPECT_LT(r.completion_time.usec(), msec(200).usec());
}

TEST(MptcpAgent, PrimaryEstablishmentRecordsHandshake) {
  Simulator sim;
  const auto r = run_mptcp_flow(sim, basic_setup(), spec(PathId::kLte), 10'000,
                                Direction::kDownload);
  // LTE one-way delay is 30 ms: the primary handshake takes >= 60 ms.
  EXPECT_GE(r.primary_established.usec(), msec(60).usec());
  EXPECT_LT(r.primary_established.usec(), msec(80).usec());
}

TEST(MptcpAgent, DataLevelTimelineIsMonotone) {
  Simulator sim;
  const auto r = run_mptcp_flow(sim, basic_setup(), spec(PathId::kWifi), 500'000,
                                Direction::kDownload);
  ASSERT_TRUE(r.completed);
  for (std::size_t i = 1; i < r.timeline.size(); ++i) {
    EXPECT_LE(r.timeline[i - 1].t, r.timeline[i].t);
    EXPECT_LT(r.timeline[i - 1].bytes, r.timeline[i].bytes);
  }
  EXPECT_EQ(r.timeline.back().bytes, 500'000);
}

TEST(MptcpAgent, BackupModeKeepsDataOffTheBackupPath) {
  Simulator sim;
  MptcpTestbed bed{sim, basic_setup(), spec(PathId::kWifi, CcAlgo::kDecoupled,
                                            MpMode::kBackup)};
  bed.start_transfer(500'000, Direction::kDownload);
  EXPECT_TRUE(bed.run_until_finished(sec(30)));
  // The backup (LTE) interface saw only control packets: SYN/FIN/ACKs.
  for (const auto& ev : bed.events(PathId::kLte)) {
    EXPECT_EQ(ev.payload, 0) << "data leaked onto the backup path";
  }
  // And it did see the handshake + teardown (paper Fig 15c/d).
  bool saw_syn = false;
  bool saw_fin = false;
  for (const auto& ev : bed.events(PathId::kLte)) {
    saw_syn |= ev.flags.syn;
    saw_fin |= ev.flags.fin;
  }
  EXPECT_TRUE(saw_syn);
  EXPECT_TRUE(saw_fin);
}

TEST(MptcpAgent, BackupModeSoftFailoverMovesData) {
  Simulator sim;
  MptcpTestbed bed{sim, basic_setup(), spec(PathId::kWifi, CcAlgo::kDecoupled,
                                            MpMode::kBackup)};
  bed.start_transfer(2'000'000, Direction::kDownload);
  // Disable the active (WiFi) path mid-flow via "multipath off".
  sim.schedule_at(TimePoint{msec(400).usec()}, [&] {
    bed.iface(PathId::kWifi).disable_soft();
  });
  EXPECT_TRUE(bed.run_until_finished(sec(60)));
  EXPECT_EQ(bed.client().data_delivered_in_order(), 2'000'000);
  // LTE must have carried real data after the failover.
  std::int64_t lte_payload = 0;
  for (const auto& ev : bed.events(PathId::kLte)) lte_payload += ev.payload;
  EXPECT_GT(lte_payload, 500'000);
}

TEST(MptcpAgent, SilentUnplugOfPrimaryStallsUntilReplug) {
  // Paper Figure 15g: LTE primary (tethered, no carrier-loss reporting),
  // WiFi backup.  Unplugging LTE stalls the transfer; replug resumes it.
  Simulator sim;
  MpNetworkSetup setup = basic_setup();
  MptcpTestbed bed{sim, setup, spec(PathId::kLte, CcAlgo::kDecoupled, MpMode::kBackup)};
  bed.start_transfer(2'000'000, Direction::kDownload);
  sim.schedule_at(TimePoint{msec(300).usec()}, [&] { bed.iface(PathId::kLte).unplug(); });
  // Run a while with LTE dead: WiFi must NOT take over (no notification).
  sim.run_until(TimePoint{sec(5).usec()});
  std::int64_t wifi_payload = 0;
  for (const auto& ev : bed.events(PathId::kWifi)) wifi_payload += ev.payload;
  EXPECT_EQ(wifi_payload, 0) << "backup activated despite silent failure";
  EXPECT_LT(bed.client().data_delivered_in_order(), 2'000'000);
  // Replug: the transfer resumes on LTE and completes.
  bed.iface(PathId::kLte).plug_in();
  EXPECT_TRUE(bed.run_until_finished(sec(120)));
  EXPECT_EQ(bed.client().data_delivered_in_order(), 2'000'000);
}

TEST(MptcpAgent, CarrierLossUnplugOfPrimaryFailsOverImmediately) {
  // Paper Figure 15h: WiFi primary (carrier loss visible), LTE backup.
  Simulator sim;
  MptcpTestbed bed{sim, basic_setup(), spec(PathId::kWifi, CcAlgo::kDecoupled,
                                            MpMode::kBackup)};
  bed.start_transfer(2'000'000, Direction::kDownload);
  sim.schedule_at(TimePoint{msec(300).usec()}, [&] { bed.iface(PathId::kWifi).unplug(); });
  EXPECT_TRUE(bed.run_until_finished(sec(60)));
  EXPECT_EQ(bed.client().data_delivered_in_order(), 2'000'000);
}

TEST(MptcpAgent, FullModeSurvivesOnePathSoftFailure) {
  Simulator sim;
  MptcpTestbed bed{sim, basic_setup(), spec(PathId::kWifi)};
  bed.start_transfer(2'000'000, Direction::kDownload);
  sim.schedule_at(TimePoint{msec(300).usec()}, [&] {
    bed.iface(PathId::kLte).disable_soft();
  });
  EXPECT_TRUE(bed.run_until_finished(sec(60)));
  EXPECT_EQ(bed.client().data_delivered_in_order(), 2'000'000);
}

TEST(MptcpAgent, SinglePathModeOpensSecondSubflowOnlyOnFailure) {
  Simulator sim;
  MptcpTestbed bed{sim, basic_setup(), spec(PathId::kWifi, CcAlgo::kDecoupled,
                                            MpMode::kSinglePath)};
  bed.start_transfer(1'000'000, Direction::kDownload);
  sim.run_until(TimePoint{msec(300).usec()});
  // No traffic at all on LTE yet (not even a handshake).
  EXPECT_TRUE(bed.events(PathId::kLte).empty());
  bed.iface(PathId::kWifi).disable_soft();
  EXPECT_TRUE(bed.run_until_finished(sec(60)));
  EXPECT_EQ(bed.client().data_delivered_in_order(), 1'000'000);
  EXPECT_FALSE(bed.events(PathId::kLte).empty());
}

TEST(MptcpAgent, ReinjectionDeduplicatesAtReceiver) {
  Simulator sim;
  MptcpTestbed bed{sim, basic_setup(), spec(PathId::kWifi)};
  bed.start_transfer(1'000'000, Direction::kDownload);
  sim.schedule_at(TimePoint{msec(250).usec()}, [&] {
    bed.iface(PathId::kWifi).disable_soft();
  });
  ASSERT_TRUE(bed.run_until_finished(sec(60)));
  // Exactly the flow size delivered at data level, never more.
  EXPECT_EQ(bed.client().data_delivered(), 1'000'000);
  EXPECT_EQ(bed.client().data_delivered_in_order(), 1'000'000);
}

// Parameterized sweep over all 2x2x2 MPTCP configurations: every
// combination must complete a mid-size transfer in both directions.
struct ConfigCase {
  PathId primary;
  CcAlgo cc;
  bool upload;
};

class MptcpConfigSweep : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(MptcpConfigSweep, TransferCompletes) {
  const auto& c = GetParam();
  Simulator sim;
  MptcpSpec s = spec(c.primary, c.cc);
  const auto r = run_mptcp_flow(sim, basic_setup(12, 6), s, 300'000,
                                c.upload ? Direction::kUpload : Direction::kDownload);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.throughput_mbps, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, MptcpConfigSweep,
    ::testing::Values(ConfigCase{PathId::kWifi, CcAlgo::kDecoupled, false},
                      ConfigCase{PathId::kWifi, CcAlgo::kCoupled, false},
                      ConfigCase{PathId::kLte, CcAlgo::kDecoupled, false},
                      ConfigCase{PathId::kLte, CcAlgo::kCoupled, false},
                      ConfigCase{PathId::kWifi, CcAlgo::kDecoupled, true},
                      ConfigCase{PathId::kWifi, CcAlgo::kCoupled, true},
                      ConfigCase{PathId::kLte, CcAlgo::kDecoupled, true},
                      ConfigCase{PathId::kLte, CcAlgo::kCoupled, true}));

}  // namespace
}  // namespace mn
