// The pluggable scheduler/path-policy layer: every policy completes,
// the redundant policy never overcounts delivery, the energy policies
// gate the LTE radio without ever deadlocking a flow, and the testbed
// surfaces run timeouts instead of reading them as completions.
#include <gtest/gtest.h>

#include "mptcp/scheduler.hpp"
#include "mptcp/testbed.hpp"
#include "obs/obs.hpp"

namespace mn {
namespace {

LinkSpec mk(double mbps, Duration delay, int queue = 64) {
  LinkSpec s;
  s.rate_mbps = mbps;
  s.one_way_delay = delay;
  s.queue_packets = queue;
  return s;
}

MptcpFlowResult run(const MpNetworkSetup& net, MptcpSpec spec, std::int64_t bytes) {
  Simulator sim;
  return run_mptcp_flow(sim, net, spec, bytes, Direction::kDownload, sec(120));
}

std::int64_t subflow_bytes(const MptcpFlowResult& r, int subflow) {
  const auto& tl = r.subflow_timelines[static_cast<std::size_t>(subflow)];
  return tl.empty() ? 0 : tl.back().bytes;
}

TEST(Scheduler, AllFivePoliciesCompleteTransfers) {
  const auto net = symmetric_setup(mk(8, msec(10)), mk(6, msec(30)));
  for (int i = 0; i < kMpSchedulerCount; ++i) {
    MptcpSpec spec;
    spec.scheduler = static_cast<MpScheduler>(i);
    const auto r = run(net, spec, 600'000);
    EXPECT_TRUE(r.completed) << to_string(spec.scheduler) << ": " << r.failure_reason;
    EXPECT_EQ(r.scheduler, spec.scheduler);
  }
}

TEST(Scheduler, NamesRoundTripThroughParse) {
  for (int i = 0; i < kMpSchedulerCount; ++i) {
    const auto s = static_cast<MpScheduler>(i);
    const auto parsed = parse_scheduler(to_string(s));
    ASSERT_TRUE(parsed.has_value()) << to_string(s);
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(parse_scheduler("NoSuchPolicy").has_value());
  EXPECT_FALSE(parse_scheduler("").has_value());
}

TEST(Scheduler, PoliciesAreDeterministic) {
  const auto net = symmetric_setup(mk(10, msec(8)), mk(4, msec(40)));
  for (MpScheduler s : {MpScheduler::kLowestRtt, MpScheduler::kRedundant,
                        MpScheduler::kEnergyAware}) {
    MptcpSpec spec;
    spec.scheduler = s;
    const auto a = run(net, spec, 800'000);
    const auto b = run(net, spec, 800'000);
    EXPECT_EQ(a.completion_time.usec(), b.completion_time.usec()) << to_string(s);
    EXPECT_EQ(subflow_bytes(a, 0), subflow_bytes(b, 0)) << to_string(s);
    EXPECT_EQ(subflow_bytes(a, 1), subflow_bytes(b, 1)) << to_string(s);
  }
}

TEST(Scheduler, RedundantDuplicatesWithoutOvercounting) {
  const auto net = symmetric_setup(mk(8, msec(10)), mk(8, msec(25)));
  MptcpSpec spec;
  spec.scheduler = MpScheduler::kRedundant;
  const auto r = run(net, spec, 1'000'000);
  ASSERT_TRUE(r.completed) << r.failure_reason;
  // Duplication is real: the two subflows together deliver more than
  // the flow (the client's interval set deduplicates; the app sees
  // exactly the flow — completion at 1 MB proves no overcount).
  EXPECT_GT(subflow_bytes(r, 0) + subflow_bytes(r, 1), 1'100'000);
  EXPECT_GT(subflow_bytes(r, 0), 100'000);
  EXPECT_GT(subflow_bytes(r, 1), 100'000);
}

TEST(Scheduler, RedundantMasksSilentPathDeath) {
  // With every grant mirrored, losing one path mid-flow costs nothing:
  // the survivor already holds duplicates of the stranded chunks.
  Simulator sim;
  const auto net = symmetric_setup(mk(10, msec(10)), mk(5, msec(30)));
  MptcpSpec spec;
  spec.primary = PathId::kWifi;
  spec.scheduler = MpScheduler::kRedundant;
  MptcpTestbed bed{sim, net, spec};
  bed.start_transfer(1'000'000, Direction::kDownload);
  sim.schedule_at(TimePoint{msec(300).usec()},
                  [&bed] { bed.iface(PathId::kLte).unplug(); });
  // The dead subflow's close can outlive the data (RTO ladder); the
  // claim under test is that every byte still arrives promptly.
  (void)bed.run_until_finished(sec(30));
  EXPECT_EQ(bed.client().data_delivered_in_order(), 1'000'000);
}

TEST(Scheduler, EnergyAwareShortFlowNeverWakesLte) {
  const auto net = symmetric_setup(mk(10, msec(10)), mk(8, msec(30)));
  MptcpSpec spec;
  spec.primary = PathId::kWifi;
  spec.scheduler = MpScheduler::kEnergyAware;  // engage at 512 kB default
  const auto r = run(net, spec, 100'000);
  ASSERT_TRUE(r.completed) << r.failure_reason;
  EXPECT_FALSE(r.achieved_mp) << "LTE joined for a flow far below the engage gate";
  EXPECT_LT(r.energy_lte_j, 0.01);
  EXPECT_GT(r.energy_wifi_j, 0.0);
}

TEST(Scheduler, EnergyAwareLongFlowEngagesLte) {
  const auto net = symmetric_setup(mk(10, msec(10)), mk(8, msec(30)));
  MptcpSpec spec;
  spec.primary = PathId::kWifi;
  spec.scheduler = MpScheduler::kEnergyAware;
  const auto r = run(net, spec, 2'000'000);
  ASSERT_TRUE(r.completed) << r.failure_reason;
  EXPECT_TRUE(r.achieved_mp) << "the flow proved itself big; LTE should engage";
  // LTE carried data and paid (at least) one 15 s tail.
  EXPECT_GT(subflow_bytes(r, 1), 50'000);
  EXPECT_GT(r.energy_lte_j, 10.0);
}

TEST(Scheduler, EnergyAwareEngageThresholdIsTunable) {
  const auto net = symmetric_setup(mk(10, msec(10)), mk(8, msec(30)));
  MptcpSpec spec;
  spec.primary = PathId::kWifi;
  spec.scheduler = MpScheduler::kEnergyAware;
  spec.energy_engage_bytes = 10'000;  // tiny gate: even 100 kB engages
  const auto r = run(net, spec, 100'000);
  ASSERT_TRUE(r.completed) << r.failure_reason;
  EXPECT_TRUE(r.achieved_mp);
}

TEST(Scheduler, EnergyAwareFailsOverWhenPrimaryDies) {
  // The failover guard: a policy hoarding the LTE radio must release it
  // the moment WiFi is the flow's only casualty, not its only hope.
  Simulator sim;
  const auto net = symmetric_setup(mk(10, msec(10)), mk(5, msec(30)));
  MptcpSpec spec;
  spec.primary = PathId::kWifi;
  spec.scheduler = MpScheduler::kEnergyAware;
  spec.energy_engage_bytes = std::int64_t{1} << 40;  // never engage by size
  MptcpTestbed bed{sim, net, spec};
  bed.start_transfer(1'000'000, Direction::kDownload);
  sim.schedule_at(TimePoint{msec(200).usec()},
                  [&bed] { bed.iface(PathId::kWifi).unplug(); });
  EXPECT_TRUE(bed.run_until_finished(sec(60)));
  EXPECT_EQ(bed.client().data_delivered_in_order(), 1'000'000);
}

TEST(Scheduler, TailBatchSmallFlowStaysOffCostlyRadio) {
  const auto net = symmetric_setup(mk(10, msec(10)), mk(8, msec(30)));
  MptcpSpec spec;
  spec.primary = PathId::kWifi;
  spec.scheduler = MpScheduler::kTailBatch;  // open at 256 kB default
  const auto r = run(net, spec, 100'000);
  ASSERT_TRUE(r.completed) << r.failure_reason;
  // LTE may join (TailBatch gates grants, not joins) but the backlog
  // never justified waking it for data.
  EXPECT_LT(subflow_bytes(r, 1), 10'000);
}

TEST(Scheduler, TailBatchLargeBacklogOpensTheGate) {
  const auto net = symmetric_setup(mk(10, msec(10)), mk(8, msec(30)));
  MptcpSpec spec;
  spec.primary = PathId::kWifi;
  spec.scheduler = MpScheduler::kTailBatch;
  const auto r = run(net, spec, 2'000'000);
  ASSERT_TRUE(r.completed) << r.failure_reason;
  EXPECT_GT(subflow_bytes(r, 1), 100'000);
}

TEST(Scheduler, LowestRttFavorsNearPathOverRoundRobin) {
  // The legacy behavioural contract, restated against the strategy
  // objects: with asymmetric RTTs, lowest-RTT loads the near path at
  // least as much as round-robin does.
  const auto net = symmetric_setup(mk(10, msec(5)), mk(10, msec(60)));
  MptcpSpec lr;
  lr.scheduler = MpScheduler::kLowestRtt;
  MptcpSpec rr = lr;
  rr.scheduler = MpScheduler::kRoundRobin;
  const auto a = run(net, lr, 2'000'000);
  const auto b = run(net, rr, 2'000'000);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  const auto share = [](const MptcpFlowResult& r) {
    const double near = static_cast<double>(subflow_bytes(r, 0));
    const double far = static_cast<double>(subflow_bytes(r, 1));
    return near / (near + far);
  };
  EXPECT_GE(share(a), share(b) - 0.05);
}

TEST(Scheduler, RunTimeoutIsSurfacedAndCounted) {
  Simulator sim;
  obs::ObsHub hub;
  sim.set_obs(&hub);
  const auto net = symmetric_setup(mk(1, msec(10)), mk(1, msec(30)));
  MptcpTestbed bed{sim, net, MptcpSpec{}};
  bed.start_transfer(10'000'000, Direction::kDownload);  // ~40 s at 2 Mbit/s
  EXPECT_FALSE(bed.run_until_finished(msec(500)));
  EXPECT_EQ(hub.snapshot().value_of("mptcp.run_timeouts"), 1);
  // Finishing later does not retroactively count another timeout.
  EXPECT_TRUE(bed.run_until_finished(sec(120)));
  EXPECT_EQ(hub.snapshot().value_of("mptcp.run_timeouts"), 1);
}

}  // namespace
}  // namespace mn
