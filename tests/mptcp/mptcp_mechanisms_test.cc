// Focused tests for the MPTCP v0.88 mechanisms: receive-window blocking,
// opportunistic reinjection, penalization, and the scheduler options.
#include <gtest/gtest.h>

#include "mptcp/testbed.hpp"

namespace mn {
namespace {

LinkSpec mk(double mbps, Duration delay, int queue = 64) {
  LinkSpec s;
  s.rate_mbps = mbps;
  s.one_way_delay = delay;
  s.queue_packets = queue;
  return s;
}

MptcpFlowResult run(const MpNetworkSetup& net, MptcpSpec spec, std::int64_t bytes) {
  Simulator sim;
  return run_mptcp_flow(sim, net, spec, bytes, Direction::kDownload, sec(120));
}

TEST(MptcpMechanisms, TinyWindowThrottlesWhenSlowPathMustCarryData) {
  // Round-robin forces the slow, laggy path to carry half the chunks:
  // a small data-level window then couples the whole connection to the
  // slow path's in-order progress (Figure 7a's head-of-line blocking);
  // a large window decouples them.
  const auto net = symmetric_setup(mk(16, msec(8)), mk(2, msec(60), 150));
  MptcpSpec tiny;
  tiny.primary = PathId::kWifi;
  tiny.cc = CcAlgo::kDecoupled;
  tiny.scheduler = MpScheduler::kRoundRobin;
  tiny.opportunistic_reinjection = false;  // isolate the blocking effect
  tiny.receive_window_bytes = 64'000;
  MptcpSpec big = tiny;
  big.receive_window_bytes = 2'000'000;
  const auto t = run(net, tiny, 2'000'000);
  const auto b = run(net, big, 2'000'000);
  ASSERT_TRUE(t.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_LT(t.throughput_mbps, b.throughput_mbps);
}

TEST(MptcpMechanisms, WindowNeverOverrunsReceiveBuffer) {
  // Invariant: out-of-order data held at the receiver never exceeds the
  // configured window (plus one MSS of slack for an in-flight grant).
  Simulator sim;
  const auto net = symmetric_setup(mk(10, msec(5)), mk(2, msec(80), 150));
  MptcpSpec spec;
  spec.primary = PathId::kWifi;
  spec.cc = CcAlgo::kDecoupled;
  spec.receive_window_bytes = 100'000;
  MptcpTestbed bed{sim, net, spec};
  bed.start_transfer(1'500'000, Direction::kDownload);
  std::int64_t worst = 0;
  while (!(bed.client().finished() && bed.server().finished()) &&
         sim.now() < TimePoint{sec(60).usec()}) {
    if (!sim.step()) break;
    const std::int64_t held =
        bed.client().data_delivered() - bed.client().data_delivered_in_order();
    worst = std::max(worst, held);
  }
  EXPECT_LE(worst, 100'000 + 2 * Packet::kMss);
}

TEST(MptcpMechanisms, ReinjectionRescuesSilentPathDeath) {
  // Full-MPTCP with a silently dying LTE path (tethered modem, no
  // carrier-loss signal): the chunks stranded on LTE can only reach the
  // client if the scheduler reinjects them on WiFi.  Without
  // reinjection the transfer hangs on the dead subflow's RTO ladder.
  auto run_scenario = [](bool reinjection) {
    Simulator sim;
    const auto net = symmetric_setup(mk(10, msec(10)), mk(5, msec(30)));
    MptcpSpec spec;
    spec.primary = PathId::kWifi;
    spec.cc = CcAlgo::kDecoupled;
    spec.opportunistic_reinjection = reinjection;
    MptcpTestbed bed{sim, net, spec};
    bed.start_transfer(2'000'000, Direction::kDownload);
    sim.schedule_at(TimePoint{msec(300).usec()},
                    [&bed] { bed.iface(PathId::kLte).unplug(); });
    // The reinjection=false arm is *expected* to stall out here — the
    // assertion below is on delivered bytes, not completion.
    (void)bed.run_until_finished(sec(30));
    return bed.client().data_delivered_in_order();
  };
  EXPECT_EQ(run_scenario(true), 2'000'000) << "reinjection must drain the dead path";
  EXPECT_LT(run_scenario(false), 2'000'000)
      << "without reinjection the stranded chunks cannot complete quickly";
}

TEST(MptcpMechanisms, RoundRobinSchedulerCompletesTransfers) {
  const auto net = symmetric_setup(mk(8, msec(10)), mk(8, msec(30)));
  MptcpSpec spec;
  spec.scheduler = MpScheduler::kRoundRobin;
  const auto r = run(net, spec, 1'000'000);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.subflow_timelines[0].back().bytes, 100'000);
  EXPECT_GT(r.subflow_timelines[1].back().bytes, 100'000);
}

TEST(MptcpMechanisms, SchedulersDifferInAllocation) {
  // Asymmetric RTTs: lowest-RTT favours the near path more than
  // round-robin does.
  const auto net = symmetric_setup(mk(10, msec(5)), mk(10, msec(60)));
  MptcpSpec lr;
  lr.scheduler = MpScheduler::kLowestRtt;
  lr.cc = CcAlgo::kDecoupled;
  MptcpSpec rr = lr;
  rr.scheduler = MpScheduler::kRoundRobin;
  const auto a = run(net, lr, 2'000'000);
  const auto b = run(net, rr, 2'000'000);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  const auto near_share = [](const MptcpFlowResult& r) {
    const double near = static_cast<double>(r.subflow_timelines[0].back().bytes);
    const double far = static_cast<double>(r.subflow_timelines[1].back().bytes);
    return near / (near + far);
  };
  EXPECT_GT(near_share(a), near_share(b) - 0.05);
}

TEST(MptcpMechanisms, PenalizationTamesBufferbloatedPath) {
  // Deep-buffered slow path: penalization keeps its RTT from starving
  // the aggregate; disabling it must never make things better by much.
  const auto net = symmetric_setup(mk(12, msec(8)), mk(3, msec(40), 300));
  MptcpSpec with;
  with.primary = PathId::kWifi;
  with.cc = CcAlgo::kDecoupled;
  MptcpSpec without = with;
  without.penalization = false;
  const auto a = run(net, with, 4'000'000);
  const auto b = run(net, without, 4'000'000);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_GT(a.throughput_mbps, b.throughput_mbps * 0.85);
}

TEST(MptcpMechanisms, OliaCompletesAndAggregates) {
  const auto net = symmetric_setup(mk(8, msec(10)), mk(8, msec(30)));
  MptcpSpec spec;
  spec.cc = CcAlgo::kOlia;
  const auto r = run(net, spec, 2'000'000);
  ASSERT_TRUE(r.completed);
  // Both paths carry data and the aggregate beats one link alone.
  EXPECT_GT(r.subflow_timelines[0].back().bytes, 200'000);
  EXPECT_GT(r.subflow_timelines[1].back().bytes, 200'000);
  EXPECT_GT(r.throughput_mbps, 8.0);
}

TEST(MptcpMechanisms, AllThreeCcAlgorithmsComplete) {
  const auto net = symmetric_setup(mk(10, msec(10)), mk(6, msec(30)));
  for (CcAlgo cc : {CcAlgo::kDecoupled, CcAlgo::kCoupled, CcAlgo::kOlia}) {
    MptcpSpec spec;
    spec.cc = cc;
    const auto r = run(net, spec, 500'000);
    EXPECT_TRUE(r.completed) << to_string(cc);
  }
}

}  // namespace
}  // namespace mn
