// The negotiation/fallback state machine under a middlebox adversary:
// kNegotiating -> kMultipath | kFallbackTcp | kSubflowRejected, with
// graceful degradation to plain TCP instead of stalls.
#include <gtest/gtest.h>

#include "mptcp/testbed.hpp"
#include "tcp/flow.hpp"

namespace mn {
namespace {

LinkSpec mk(double mbps, Duration delay, int queue = 64) {
  LinkSpec s;
  s.rate_mbps = mbps;
  s.one_way_delay = delay;
  s.queue_packets = queue;
  return s;
}

MpNetworkSetup net_with_wifi_box(const MiddleboxSpec& box) {
  auto net = symmetric_setup(mk(10, msec(10)), mk(5, msec(30)));
  net.wifi_up.middlebox = box;
  net.wifi_down.middlebox = box;
  return net;
}

MpNetworkSetup net_with_lte_box(const MiddleboxSpec& box) {
  auto net = symmetric_setup(mk(10, msec(10)), mk(5, msec(30)));
  net.lte_up.middlebox = box;
  net.lte_down.middlebox = box;
  return net;
}

MptcpFlowResult run(const MpNetworkSetup& net, const MptcpSpec& spec,
                    std::int64_t bytes, const FlowRunOptions& fo = {}) {
  Simulator sim;
  return run_mptcp_flow(sim, net, spec, bytes, Direction::kDownload, fo);
}

TEST(MiddleboxFallback, CleanPathNegotiatesAndAchievesMultipath) {
  MptcpSpec spec;
  spec.primary = PathId::kWifi;
  const auto r = run(symmetric_setup(mk(10, msec(10)), mk(5, msec(30))), spec, 500'000);
  ASSERT_TRUE(r.completed) << r.failure_reason;
  EXPECT_EQ(r.negotiation, MpNegotiation::kMultipath);
  EXPECT_TRUE(r.negotiated_mp);
  EXPECT_TRUE(r.achieved_mp);
  EXPECT_EQ(r.fallback_reason, "");
}

TEST(MiddleboxFallback, StrippedCapableDegradesToPlainTcp) {
  MiddleboxSpec box;
  box.strip_capable = 1.0;
  MptcpSpec spec;
  spec.primary = PathId::kWifi;
  const auto r = run(net_with_wifi_box(box), spec, 500'000);
  ASSERT_TRUE(r.completed) << r.failure_reason;
  EXPECT_EQ(r.negotiation, MpNegotiation::kFallbackTcp);
  EXPECT_FALSE(r.negotiated_mp);
  EXPECT_FALSE(r.achieved_mp);
  EXPECT_EQ(r.fallback_reason, "capable_stripped");
  EXPECT_GT(r.throughput_mbps, 0.0);
}

TEST(MiddleboxFallback, DroppedSynRetriesWithoutOptionsAndConnects) {
  // A paranoid ALG eats every SYN carrying MPTCP options: the endpoint
  // must stop offering MP_CAPABLE after its retry budget and connect as
  // plain TCP instead of retrying the doomed SYN forever.
  MiddleboxSpec box;
  box.drop_unknown_syn = 1.0;
  MptcpSpec spec;
  spec.primary = PathId::kWifi;
  const auto r = run(net_with_wifi_box(box), spec, 300'000);
  ASSERT_TRUE(r.completed) << r.failure_reason;
  EXPECT_EQ(r.negotiation, MpNegotiation::kFallbackTcp);
  EXPECT_FALSE(r.negotiated_mp);
  EXPECT_EQ(r.fallback_reason, "syn_dropped");
}

TEST(MiddleboxFallback, StrippedJoinRejectsSubflowButKeepsPrimary) {
  // MP_CAPABLE survives (clean WiFi) but the LTE path's box strips every
  // MP_JOIN: negotiated but never achieved — the Aschenbrenner split.
  MiddleboxSpec box;
  box.strip_join = 1.0;
  MptcpSpec spec;
  spec.primary = PathId::kWifi;
  // Long enough that the flow is still open when the join retry ladder
  // exhausts (stripped retries wait out the full join timeout before
  // failing) — short flows close first and record nothing, which is
  // correct but not what this test probes.
  const auto r = run(net_with_lte_box(box), spec, 12'000'000);
  ASSERT_TRUE(r.completed) << r.failure_reason;
  EXPECT_EQ(r.negotiation, MpNegotiation::kSubflowRejected);
  EXPECT_TRUE(r.negotiated_mp);
  EXPECT_FALSE(r.achieved_mp);
  EXPECT_EQ(r.fallback_reason, "join_rejected");
  // Every allowed attempt was made (capped backoff), then we gave up.
  EXPECT_EQ(r.join_attempts, MptcpSpec{}.join_max_attempts);
}

TEST(MiddleboxFallback, MidFlowMangleDrainsOnSurvivingSubflow) {
  // Both subflows join; 300 ms in, a sequence-rewriting box appears on
  // LTE.  The receiver cannot place LTE's data any more, signals
  // MP_FAIL, and the sender must kill the poisoned subflow and drain
  // everything (including falsely subflow-acked ranges) on WiFi.
  MptcpSpec spec;
  spec.primary = PathId::kWifi;
  Simulator sim;
  const auto net = symmetric_setup(mk(10, msec(10)), mk(5, msec(30)));
  FlowRunOptions fo;
  fo.on_testbed = [&sim](MptcpTestbed& bed) {
    sim.schedule_at(TimePoint{msec(300).usec()}, [&bed] {
      MiddleboxSpec box;
      box.rewrite_seq = 1.0;
      bed.path(PathId::kLte).uplink().set_middlebox(box);
      bed.path(PathId::kLte).downlink().set_middlebox(box);
    });
  };
  const auto r = run_mptcp_flow(sim, net, spec, 2'000'000, Direction::kDownload, fo);
  ASSERT_TRUE(r.completed) << r.failure_reason;
  EXPECT_TRUE(r.achieved_mp);  // multipath worked until the box appeared
  EXPECT_EQ(r.fallback_reason, "mid_flow_dss");
}

TEST(MiddleboxFallback, SoleSubflowMangleContinuesAsPlainTcp) {
  // Single-path mode, so subflow 0 is the only one.  When its DSS dies
  // mid-flow there is nothing to fail over to: both ends must degrade
  // to sequence-space accounting and finish as a plain TCP stream.
  MptcpSpec spec;
  spec.primary = PathId::kWifi;
  spec.mode = MpMode::kSinglePath;
  Simulator sim;
  const auto net = symmetric_setup(mk(10, msec(10)), mk(5, msec(30)));
  FlowRunOptions fo;
  fo.on_testbed = [&sim](MptcpTestbed& bed) {
    sim.schedule_at(TimePoint{msec(300).usec()}, [&bed] {
      MiddleboxSpec box;
      box.rewrite_seq = 1.0;
      bed.path(PathId::kWifi).uplink().set_middlebox(box);
      bed.path(PathId::kWifi).downlink().set_middlebox(box);
    });
  };
  const auto r = run_mptcp_flow(sim, net, spec, 1'000'000, Direction::kDownload, fo);
  ASSERT_TRUE(r.completed) << r.failure_reason;
  EXPECT_EQ(r.fallback_reason, "mid_flow_dss");
  EXPECT_EQ(r.negotiation, MpNegotiation::kFallbackTcp);
}

TEST(MiddleboxFallback, FallbackMatchesSinglePathTcpThroughput) {
  // The bulk-flow regression bar: a stripped-to-fallback MPTCP flow must
  // achieve at least equivalent single-path TCP throughput on the same
  // WiFi link (it IS a plain TCP flow after the handshake).
  const LinkSpec wifi = mk(10, msec(10));
  double tcp_mbps = 0.0;
  {
    Simulator sim;
    DuplexPath path{sim, wifi, wifi};
    const auto r = run_bulk_flow(sim, path, 1'000'000, Direction::kDownload);
    ASSERT_TRUE(r.completed);
    tcp_mbps = r.throughput_mbps;
  }
  MiddleboxSpec box;
  box.strip_capable = 1.0;
  MptcpSpec spec;
  spec.primary = PathId::kWifi;
  const auto r = run(net_with_wifi_box(box), spec, 1'000'000);
  ASSERT_TRUE(r.completed) << r.failure_reason;
  EXPECT_EQ(r.negotiation, MpNegotiation::kFallbackTcp);
  EXPECT_GE(r.throughput_mbps, 0.95 * tcp_mbps);
}

TEST(MiddleboxFallback, NoHangForAnyHandshakeInterference) {
  // Sweep every box-policy combination over both paths: no combination
  // may stall the flow — each either multipaths, degrades, or rejects
  // the join, and always terminates within the watchdog.
  for (const bool capable : {false, true}) {
    for (const bool join : {false, true}) {
      for (const bool drop : {false, true}) {
        MiddleboxSpec box;
        box.strip_capable = capable ? 1.0 : 0.0;
        box.strip_join = join ? 1.0 : 0.0;
        box.drop_unknown_syn = drop ? 1.0 : 0.0;
        MptcpSpec spec;
        spec.primary = PathId::kWifi;
        auto net = symmetric_setup(mk(10, msec(10)), mk(5, msec(30)));
        net.wifi_up.middlebox = box;
        net.wifi_down.middlebox = box;
        net.lte_up.middlebox = box;
        net.lte_down.middlebox = box;
        const auto r = run(net, spec, 200'000);
        ASSERT_TRUE(r.completed)
            << "capable=" << capable << " join=" << join << " drop=" << drop
            << " reason=" << r.failure_reason;
        if (capable || drop) {
          EXPECT_FALSE(r.negotiated_mp);
        }
        if (capable || join || drop) {
          EXPECT_FALSE(r.achieved_mp);
        }
      }
    }
  }
}

}  // namespace
}  // namespace mn
