#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "obs/pcap_export.hpp"
#include "obs/trace_export.hpp"

namespace mn::obs {
namespace {

FlightEvent make_event(std::int64_t t, FlightEventType type, std::uint8_t arg8 = 0,
                       std::uint32_t arg32 = 0, std::int64_t v1 = 0,
                       std::int64_t v2 = 0) {
  FlightEvent e;
  e.t_usec = t;
  e.type = type;
  e.arg8 = arg8;
  e.arg32 = arg32;
  e.v1 = v1;
  e.v2 = v2;
  return e;
}

TEST(FlightRecorder, ReturnsEventsOldestFirst) {
  FlightRecorder fr{8};
  fr.record(make_event(10, FlightEventType::kEventFire, 0, 1));
  fr.record(make_event(20, FlightEventType::kPktDrop, 2, 0, 1488));
  fr.record(make_event(30, FlightEventType::kCwndUpdate, 1, 0, 14480, 7240));

  const auto events = fr.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].t_usec, 10);
  EXPECT_EQ(events[1].type, FlightEventType::kPktDrop);
  EXPECT_EQ(events[2].v2, 7240);
  EXPECT_EQ(fr.overwritten(), 0u);
}

TEST(FlightRecorder, OverwritesOldestWhenFull) {
  FlightRecorder fr{4};
  for (int i = 1; i <= 6; ++i) {
    fr.record(make_event(i, FlightEventType::kMarker, 0, static_cast<std::uint32_t>(i)));
  }
  EXPECT_EQ(fr.size(), 4u);
  EXPECT_EQ(fr.overwritten(), 2u);
  const auto events = fr.events();
  ASSERT_EQ(events.size(), 4u);
  // Events 1 and 2 were overwritten; 3..6 remain, oldest first.
  EXPECT_EQ(events.front().t_usec, 3);
  EXPECT_EQ(events.back().t_usec, 6);
}

TEST(FlightRecorder, SerializeParseRoundTrip) {
  FlightRecorder fr{4};
  for (int i = 1; i <= 6; ++i) {
    fr.record(make_event(i * 100, FlightEventType::kRttSample, 1,
                         static_cast<std::uint32_t>(i), i * 1000, i * 2000));
  }
  const std::string bytes = fr.serialize();
  std::uint64_t overwritten = 0;
  const auto parsed = FlightRecorder::parse(bytes, &overwritten);
  EXPECT_EQ(overwritten, 2u);
  ASSERT_EQ(parsed.size(), 4u);
  EXPECT_EQ(parsed[0].t_usec, 300);
  EXPECT_EQ(parsed[3].type, FlightEventType::kRttSample);
  EXPECT_EQ(parsed[3].arg8, 1);
  EXPECT_EQ(parsed[3].arg32, 6u);
  EXPECT_EQ(parsed[3].v1, 6000);
  EXPECT_EQ(parsed[3].v2, 12000);
}

TEST(FlightRecorder, ParseRejectsBadMagicAndTruncation) {
  FlightRecorder fr{2};
  fr.record(make_event(1, FlightEventType::kMarker));
  const std::string bytes = fr.serialize();

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW((void)FlightRecorder::parse(bad_magic), std::runtime_error);

  const std::string truncated = bytes.substr(0, bytes.size() - 5);
  EXPECT_THROW((void)FlightRecorder::parse(truncated), std::runtime_error);

  EXPECT_THROW((void)FlightRecorder::parse(""), std::runtime_error);
}

TEST(FlightRecorder, DumpWritesParseableFile) {
  FlightRecorder fr{16};
  fr.record(make_event(42, FlightEventType::kFaultFire, 3));
  const std::string path = ::testing::TempDir() + "flight_dump_test.mnfr";
  fr.dump(path);

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  const auto parsed = FlightRecorder::parse(bytes);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].t_usec, 42);
  EXPECT_EQ(parsed[0].type, FlightEventType::kFaultFire);
  std::remove(path.c_str());
}

TEST(FlightRecorder, TextRenderingNamesEveryEvent) {
  FlightRecorder fr{8};
  fr.record(make_event(1, FlightEventType::kPktDrop, 2, 0, 1488));
  fr.record(make_event(2, FlightEventType::kRtoFire, 0, 0, 1, 200000));
  const std::string text = fr.to_text();
  EXPECT_NE(text.find(flight_event_name(FlightEventType::kPktDrop)), std::string::npos);
  EXPECT_NE(text.find(flight_event_name(FlightEventType::kRtoFire)), std::string::npos);
  EXPECT_EQ(text, flight_events_text(fr.events()));
}

TEST(TraceExport, ChromeTraceEmitsCounterAndInstantPhases) {
  std::vector<FlightEvent> events;
  events.push_back(make_event(1000, FlightEventType::kCwndUpdate, 1, 0, 14480, 7240));
  events.push_back(make_event(2000, FlightEventType::kPktDrop, 0, 0, 1488));

  const std::string json = chrome_trace_json(events);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // cwnd counter track
  EXPECT_NE(json.find("\"cwnd sf1\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // drop instant
  // Valid JSON bracket balance (cheap sanity check, not a parser).
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(TraceExport, WriteChromeTraceCreatesFile) {
  std::vector<FlightEvent> events{make_event(5, FlightEventType::kMarker)};
  const std::string path = ::testing::TempDir() + "trace_test.json";
  write_chrome_trace(path, events);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("traceEvents"), std::string::npos);
  std::remove(path.c_str());
}

TEST(PcapExport, EmitsClassicPcapStructure) {
  std::vector<PcapPacket> packets;
  PcapPacket p;
  p.t_usec = 1'500'000;
  p.outbound = true;
  p.syn = true;
  p.seq = 0;
  packets.push_back(p);
  p.t_usec = 1'600'000;
  p.outbound = false;
  p.syn = true;
  p.ack = true;
  p.payload = 1448;
  packets.push_back(p);

  const std::string bytes = pcap_bytes(packets);
  // 24-byte global header + 2 * (16-byte record header + 40-byte frame).
  ASSERT_EQ(bytes.size(), 24u + 2u * (16u + 40u));
  const auto u32 = [&bytes](std::size_t off) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[off])) |
           static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[off + 1])) << 8 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[off + 2])) << 16 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[off + 3])) << 24;
  };
  EXPECT_EQ(u32(0), 0xa1b2c3d4u);  // magic, little-endian writer
  EXPECT_EQ(u32(20), 101u);        // LINKTYPE_RAW
  // First record: ts_sec=1, ts_usec=500000, incl_len=40, orig_len=40.
  EXPECT_EQ(u32(24), 1u);
  EXPECT_EQ(u32(28), 500'000u);
  EXPECT_EQ(u32(32), 40u);
  EXPECT_EQ(u32(36), 40u);
  // Second record's orig_len carries the payload: 40 + 1448.
  EXPECT_EQ(u32(24 + 16 + 40 + 12), 40u + 1448u);
  // IPv4 version/IHL nibble of the first frame.
  EXPECT_EQ(static_cast<unsigned char>(bytes[40]), 0x45u);
}

}  // namespace
}  // namespace mn::obs
