#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace mn::obs {
namespace {

TEST(Metrics, CountersGaugesAndHistogramsRecord) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("test.counter");
  const MetricId g = reg.gauge("test.gauge");
  const MetricId h = reg.histogram("test.hist");

  reg.add(c);
  reg.add(c, 4);
  reg.set(g, 7);
  reg.set(g, 3);  // gauges overwrite
  reg.observe(h, 100);
  reg.observe(h, 200);

  EXPECT_EQ(reg.value(c), 5);
  EXPECT_EQ(reg.value(g), 3);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.value_of("test.counter"), 5);
  EXPECT_EQ(snap.value_of("test.gauge"), 3);
  const SnapshotEntry* hist = snap.find("test.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->kind, MetricKind::kHistogram);
  EXPECT_EQ(hist->hist.count, 2u);
  EXPECT_EQ(hist->hist.sum, 300);
}

TEST(Metrics, DuplicateNameThrows) {
  MetricsRegistry reg;
  (void)reg.counter("dup");
  EXPECT_THROW((void)reg.counter("dup"), std::invalid_argument);
  EXPECT_THROW((void)reg.gauge("dup"), std::invalid_argument);
}

TEST(Metrics, CapacityIsEnforcedAtRegistrationTime) {
  MetricsRegistry reg;
  for (std::size_t i = 0; i < MetricsRegistry::kMaxMetrics; ++i) {
    (void)reg.counter("c" + std::to_string(i));
  }
  EXPECT_THROW((void)reg.counter("one-too-many"), std::length_error);

  MetricsRegistry hreg;
  for (std::size_t i = 0; i < MetricsRegistry::kMaxHistograms; ++i) {
    (void)hreg.histogram("h" + std::to_string(i));
  }
  EXPECT_THROW((void)hreg.histogram("hist-too-many"), std::length_error);
}

TEST(Metrics, BucketFloorInvertsBucketOf) {
  // bucket_floor(b) must be the smallest value mapping to bucket b, for
  // every reachable bucket.
  for (std::int64_t v : {0L, 1L, 7L, 8L, 9L, 100L, 1023L, 1024L, 999'983L,
                         (1L << 40) + 12345L}) {
    const std::uint32_t b = MetricsRegistry::bucket_of(v);
    EXPECT_LE(MetricsRegistry::bucket_floor(b), v) << v;
    EXPECT_GT(MetricsRegistry::bucket_floor(b + 1), v) << v;
  }
  EXPECT_EQ(MetricsRegistry::bucket_of(-5), 0u);  // negatives clamp
}

TEST(Metrics, BucketRelativeErrorIsBounded) {
  // Log-linear with 8 sub-buckets per octave: bucket width / floor
  // <= 2^-3 = 12.5% at any magnitude.
  for (std::int64_t v = 8; v < (1L << 50); v = v * 3 + 7) {
    const std::uint32_t b = MetricsRegistry::bucket_of(v);
    const double lo = static_cast<double>(MetricsRegistry::bucket_floor(b));
    const double hi = static_cast<double>(MetricsRegistry::bucket_floor(b + 1));
    EXPECT_LE((hi - lo) / lo, 0.125 + 1e-12) << v;
  }
}

TEST(Metrics, SnapshotIsSortedByNameRegardlessOfRegistrationOrder) {
  MetricsRegistry a;
  (void)a.counter("zeta");
  (void)a.counter("alpha");
  (void)a.counter("mid");
  MetricsRegistry b;
  (void)b.counter("mid");
  (void)b.counter("zeta");
  (void)b.counter("alpha");
  EXPECT_EQ(a.snapshot().prometheus_text(), b.snapshot().prometheus_text());
  const auto snap = a.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries[0].name, "alpha");
  EXPECT_EQ(snap.entries[2].name, "zeta");
}

MetricsSnapshot make_snapshot(std::int64_t counter, std::int64_t gauge,
                              std::int64_t hist_value) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("x.counter");
  const MetricId g = reg.gauge("x.gauge");
  const MetricId h = reg.histogram("x.hist");
  reg.add(c, counter);
  reg.set(g, gauge);
  reg.observe(h, hist_value);
  return reg.snapshot();
}

TEST(Metrics, MergeAddsCountersMaxesGaugesAndMergesHistograms) {
  MetricsSnapshot a = make_snapshot(3, 10, 100);
  const MetricsSnapshot b = make_snapshot(4, 7, 100'000);
  a.merge_from(b);

  EXPECT_EQ(a.value_of("x.counter"), 7);
  EXPECT_EQ(a.value_of("x.gauge"), 10);  // max, not sum
  const SnapshotEntry* h = a.find("x.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->hist.count, 2u);
  EXPECT_EQ(h->hist.sum, 100'100);
  EXPECT_EQ(h->hist.buckets.size(), 2u);  // two distinct buckets, sorted
  EXPECT_LT(h->hist.buckets[0].first, h->hist.buckets[1].first);
}

TEST(Metrics, MergeCopiesEntriesAbsentOnOneSide) {
  MetricsRegistry ra;
  const MetricId ca = ra.counter("only.a");
  ra.add(ca, 2);
  MetricsSnapshot a = ra.snapshot();

  MetricsRegistry rb;
  const MetricId cb = rb.counter("only.b");
  rb.add(cb, 5);
  a.merge_from(rb.snapshot());

  EXPECT_EQ(a.value_of("only.a"), 2);
  EXPECT_EQ(a.value_of("only.b"), 5);
  ASSERT_EQ(a.entries.size(), 2u);
  EXPECT_EQ(a.entries[0].name, "only.a");  // still sorted after insert
}

TEST(Metrics, ValueOfFallbackAndPrefixSum) {
  MetricsRegistry reg;
  reg.add(reg.counter("drop.loss"), 3);
  reg.add(reg.counter("drop.overflow"), 4);
  reg.add(reg.counter("other"), 100);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.value_of("absent", -1), -1);
  EXPECT_EQ(snap.sum_with_prefix("drop."), 7);
  EXPECT_EQ(snap.sum_with_prefix("nope."), 0);
}

TEST(Metrics, PrometheusTextExposesAllKindsDeterministically) {
  MetricsRegistry reg;
  reg.add(reg.counter("sim.events"), 12);
  reg.set(reg.gauge("util.fallbacks"), 0);
  const MetricId h = reg.histogram("tcp.rtt-usec");
  reg.observe(h, 50);
  reg.observe(h, 50);
  reg.observe(h, 5000);

  const std::string text = reg.snapshot().prometheus_text();
  // Names are flattened to the prometheus charset.
  EXPECT_NE(text.find("# TYPE sim_events counter"), std::string::npos);
  EXPECT_NE(text.find("sim_events 12"), std::string::npos);
  EXPECT_NE(text.find("# TYPE util_fallbacks gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tcp_rtt_usec histogram"), std::string::npos);
  EXPECT_NE(text.find("tcp_rtt_usec_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("tcp_rtt_usec_sum 5100"), std::string::npos);
  EXPECT_NE(text.find("tcp_rtt_usec_count 3"), std::string::npos);
  // Deterministic byte-for-byte.
  EXPECT_EQ(text, reg.snapshot().prometheus_text());
}

}  // namespace
}  // namespace mn::obs
