// End-to-end tests of the observability wiring: every layer of the
// stack records into an ObsHub installed via Simulator::set_obs, drop
// causes reconcile with stage/interface counters, campaign metrics are
// bit-identical across worker counts, and a watchdog-tripped chaos run
// leaves a parseable flight-recorder dump.
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "faults/chaos.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_plan.hpp"
#include "measure/campaign.hpp"
#include "energy/power_model.hpp"
#include "mptcp/testbed.hpp"
#include "net/path.hpp"
#include "sim/simulator.hpp"
#include "tcp/flow.hpp"
#include "util/inplace_function.hpp"

namespace mn {
namespace {

LinkSpec fixed_link(double mbps, Duration delay, int queue = 64, double loss = 0.0) {
  LinkSpec s;
  s.rate_mbps = mbps;
  s.one_way_delay = delay;
  s.queue_packets = queue;
  s.loss_rate = loss;
  return s;
}

Packet data_packet(std::int64_t payload = 1448) {
  Packet p;
  p.payload = payload;
  return p;
}

TEST(ObsWiring, BulkFlowPopulatesEveryLayerOfTheHub) {
  obs::ObsHub hub{1 << 12};
  Simulator sim;
  sim.set_obs(&hub);
  DuplexPath path{sim, fixed_link(10.0, msec(10)), fixed_link(10.0, msec(10))};
  const auto result = run_bulk_flow(sim, path, 200'000, Direction::kDownload,
                                    reno_factory(), BulkFlowOptions{});
  ASSERT_TRUE(result.completed);

  const auto snap = hub.snapshot();
  EXPECT_GT(snap.value_of("sim.events_scheduled"), 0);
  EXPECT_GT(snap.value_of("sim.events_fired"), 0);
  EXPECT_GT(snap.value_of("net.pkt_enqueued"), 0);
  EXPECT_GT(snap.value_of("net.pkt_delivered"), 0);
  const obs::SnapshotEntry* rtt = snap.find("tcp.rtt_usec");
  ASSERT_NE(rtt, nullptr);
  EXPECT_GT(rtt->hist.count, 0u);
  const obs::SnapshotEntry* cwnd = snap.find("tcp.cwnd_bytes");
  ASSERT_NE(cwnd, nullptr);
  EXPECT_GT(cwnd->hist.count, 0u);

  // The flight recorder saw the same story.
  ASSERT_NE(hub.flight(), nullptr);
  bool saw_deliver = false;
  bool saw_rtt = false;
  for (const auto& e : hub.flight()->events()) {
    saw_deliver |= e.type == obs::FlightEventType::kPktDeliver;
    saw_rtt |= e.type == obs::FlightEventType::kRttSample;
  }
  EXPECT_TRUE(saw_deliver);
  EXPECT_TRUE(saw_rtt);
}

TEST(ObsWiring, QueueOverflowDropsAreCounted) {
  obs::ObsHub hub;
  Simulator sim;
  sim.set_obs(&hub);
  // Tiny queue on a slow link: slow start will overrun it.
  DuplexPath path{sim, fixed_link(1.0, msec(5), /*queue=*/4),
                  fixed_link(1.0, msec(5), /*queue=*/4)};
  (void)run_bulk_flow(sim, path, 300'000, Direction::kDownload, reno_factory(),
                      BulkFlowOptions{});
  const auto snap = hub.snapshot();
  EXPECT_GT(snap.value_of("drop.queue_overflow"), 0);
  EXPECT_EQ(snap.value_of("drop.random_loss"), 0);
  EXPECT_EQ(snap.value_of("drop.blackhole"), 0);
}

TEST(ObsWiring, RandomLossDropsAreCounted) {
  obs::ObsHub hub;
  Simulator sim;
  sim.set_obs(&hub);
  DuplexPath path{sim, fixed_link(10.0, msec(5), 64, /*loss=*/0.05),
                  fixed_link(10.0, msec(5), 64, /*loss=*/0.05)};
  (void)run_bulk_flow(sim, path, 200'000, Direction::kDownload, reno_factory(),
                      BulkFlowOptions{});
  EXPECT_GT(hub.snapshot().value_of("drop.random_loss"), 0);
}

TEST(ObsWiring, BurstLossDropsAreCounted) {
  obs::ObsHub hub;
  Simulator sim;
  sim.set_obs(&hub);
  DuplexPath path{sim, fixed_link(10.0, msec(1)), fixed_link(10.0, msec(1))};
  GeLossSpec ge;
  ge.loss_bad = 1.0;
  ge.p_good_to_bad = 1.0;  // enter Bad immediately, stay a while
  ge.p_bad_to_good = 0.1;
  path.uplink().set_burst_loss(ge);
  for (int i = 0; i < 50; ++i) path.send_up(data_packet());
  sim.run_until_idle();
  EXPECT_GT(hub.snapshot().value_of("drop.burst_loss"), 0);
}

TEST(ObsWiring, BlackholeDropsAreCounted) {
  obs::ObsHub hub;
  Simulator sim;
  sim.set_obs(&hub);
  DuplexPath path{sim, fixed_link(10.0, msec(1)), fixed_link(10.0, msec(1))};
  path.uplink().set_blackhole(true);
  for (int i = 0; i < 7; ++i) path.send_up(data_packet());
  sim.run_until_idle();
  const auto snap = hub.snapshot();
  EXPECT_EQ(snap.value_of("drop.blackhole"), 7);
  EXPECT_EQ(static_cast<std::uint64_t>(snap.value_of("drop.blackhole")),
            path.uplink().blackholed_packets());
}

TEST(ObsWiring, IfaceDownDropsMatchInterfaceCounters) {
  obs::ObsHub hub;
  Simulator sim;
  sim.set_obs(&hub);
  DuplexPath path{sim, fixed_link(10.0, msec(1)), fixed_link(10.0, msec(1))};
  NetworkInterface iface{"wifi", sim, path};
  iface.set_receiver([](Packet) {});
  iface.unplug();

  // Outbound sends while down drop at the interface...
  for (int i = 0; i < 3; ++i) iface.send(data_packet());
  // ...and inbound deliveries while down drop on arrival.
  for (int i = 0; i < 2; ++i) path.send_down(data_packet());
  sim.run_until_idle();

  EXPECT_EQ(iface.tx_dropped_down(), 3u);
  EXPECT_EQ(iface.rx_dropped_down(), 2u);
  EXPECT_EQ(hub.snapshot().value_of("drop.iface_down"), 5);
}

TEST(ObsWiring, MptcpFlowRecordsSchedulerGrantsOnBothSubflows) {
  obs::ObsHub hub{1 << 12};
  Simulator sim;
  sim.set_obs(&hub);
  const MpNetworkSetup setup =
      symmetric_setup(fixed_link(8.0, msec(15)), fixed_link(6.0, msec(30)));
  MptcpSpec spec;  // Full-MPTCP, both subflows carry data
  const auto result = run_mptcp_flow(sim, setup, spec, 400'000, Direction::kDownload,
                                     FlowRunOptions{});
  ASSERT_TRUE(result.completed);
  const auto snap = hub.snapshot();
  EXPECT_GT(snap.value_of("mptcp.sched_grants_sf0"), 0);
  EXPECT_GT(snap.value_of("mptcp.sched_grants_sf1"), 0);
  bool saw_grant = false;
  for (const auto& e : hub.flight()->events()) {
    saw_grant |= e.type == obs::FlightEventType::kSchedGrant;
  }
  EXPECT_TRUE(saw_grant);
}

TEST(ObsWiring, FaultCountersReconcileArmedAppliedSkipped) {
  obs::ObsHub hub{256};
  Simulator sim;
  sim.set_obs(&hub);
  DuplexPath path{sim, fixed_link(10.0, msec(5)), fixed_link(10.0, msec(5))};
  FaultInjector injector{sim};
  injector.set_target(PathId::kWifi, &path);

  FaultPlan plan;
  plan.blackhole(msec(10), PathId::kWifi);
  plan.restore(msec(20), PathId::kWifi);
  plan.soft_down(msec(30), PathId::kWifi);  // no iface target -> skipped
  injector.arm(plan);
  sim.run_until_idle();

  const auto snap = hub.snapshot();
  EXPECT_EQ(snap.value_of("fault.armed"), 3);
  EXPECT_EQ(snap.value_of("fault.applied"), 2);
  EXPECT_EQ(snap.value_of("fault.skipped"), 1);
  EXPECT_EQ(injector.events_applied(), 2);
  EXPECT_EQ(injector.events_skipped(), 1);
}

TEST(ObsWiring, EnergyPublishRecordsTransitionsAndMillijouleGauges) {
  obs::ObsHub hub{256};
  EnergyMeter wifi{wifi_power_params()};
  EnergyMeter lte{lte_power_params()};
  wifi.add_activity(TimePoint{msec(100).usec()});
  wifi.add_activity(TimePoint{msec(150).usec()});
  lte.add_activity(TimePoint{msec(100).usec()});

  const auto horizon = TimePoint{sec(20).usec()};
  wifi.publish(hub, horizon, /*radio_id=*/0);
  lte.publish(hub, horizon, /*radio_id=*/1);

  const auto snap = hub.snapshot();
  // Each radio walks idle -> active -> tail (-> idle): >= 3 transitions each.
  EXPECT_GE(snap.value_of("energy.state_transitions"), 6);
  EXPECT_GT(snap.value_of("energy.wifi_mj"), 0);
  EXPECT_GT(snap.value_of("energy.lte_mj"), 0);
  // The 15 s LTE tail dwarfs WiFi's 200 ms one.
  EXPECT_GT(snap.value_of("energy.lte_mj"), snap.value_of("energy.wifi_mj"));
  bool saw_radio_state = false;
  for (const auto& e : hub.flight()->events()) {
    saw_radio_state |= e.type == obs::FlightEventType::kRadioState;
  }
  EXPECT_TRUE(saw_radio_state);
}

TEST(ObsWiring, InstrumentedHotPathsNeverFallBackToHeap) {
  const std::uint64_t before = inplace_function_heap_fallbacks();
  obs::ObsHub hub{1 << 12};
  {
    Simulator sim;
    sim.set_obs(&hub);
    DuplexPath path{sim, fixed_link(10.0, msec(10)), fixed_link(10.0, msec(10))};
    (void)run_bulk_flow(sim, path, 200'000, Direction::kDownload, reno_factory(),
                        BulkFlowOptions{});
  }
  {
    Simulator sim;
    sim.set_obs(&hub);
    const MpNetworkSetup setup =
        symmetric_setup(fixed_link(8.0, msec(15)), fixed_link(6.0, msec(30)));
    (void)run_mptcp_flow(sim, setup, MptcpSpec{}, 200'000, Direction::kDownload,
                         FlowRunOptions{});
  }
  EXPECT_EQ(inplace_function_heap_fallbacks(), before);
  // The hub republishes the process-wide count as a gauge at snapshot time.
  EXPECT_EQ(hub.snapshot().value_of("util.inplace_heap_fallbacks"),
            static_cast<std::int64_t>(inplace_function_heap_fallbacks()));
}

std::vector<ClusterSpec> tiny_world() {
  return {make_cluster("FastWiFi", {40.0, -70.0}, 8, 0.10, 14.0),
          make_cluster("FastLTE", {10.0, 100.0}, 8, 0.85, 4.0)};
}

TEST(ObsWiring, ParallelCampaignMetricsAreByteIdenticalAcrossWorkerCounts) {
  CampaignOptions serial;
  serial.run_scale = 0.5;
  serial.incomplete_probability = 0.0;
  serial.parallelism = 1;
  CampaignOptions threaded = serial;
  threaded.parallelism = 4;

  const auto a = run_campaign(tiny_world(), serial);
  const auto b = run_campaign(tiny_world(), threaded);
  ASSERT_EQ(a.size(), b.size());
  // Per-run snapshots match...
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].metrics.prometheus_text(), b[i].metrics.prometheus_text()) << i;
  }
  // ...and so does the plan-order reduction, byte for byte.
  EXPECT_EQ(merge_run_metrics(a).prometheus_text(),
            merge_run_metrics(b).prometheus_text());
  // The campaign did real work under observation.
  EXPECT_GT(merge_run_metrics(a).value_of("net.pkt_delivered"), 0);
}

TEST(ObsWiring, CampaignCsvRoundTripsMetricsColumns) {
  CampaignOptions opt;
  opt.run_scale = 0.25;
  opt.incomplete_probability = 0.0;
  const auto runs = run_campaign(tiny_world(), opt);

  const std::string text = to_csv(runs).str();
  EXPECT_NE(text.find("m_retransmits"), std::string::npos);
  const auto reloaded = from_csv(parse_csv(text));
  ASSERT_EQ(reloaded.size(), complete_runs(runs).size());
  // Re-export is stable: metric columns survive the round trip.
  EXPECT_EQ(to_csv(reloaded).str(), text);

  // Files written before the metrics columns still load (all-zero metrics).
  const std::string legacy =
      "cluster,lat,lon,wifi_up,wifi_down,lte_up,lte_down,wifi_rtt_ms,lte_rtt_ms\n"
      "Old,40,-70,5,6,2,3,20,50\n";
  const auto old_runs = from_csv(parse_csv(legacy));
  ASSERT_EQ(old_runs.size(), 1u);
  EXPECT_TRUE(old_runs[0].metrics.entries.empty());
}

TEST(ObsWiring, ChaosWatchdogTripDumpsReadableFlightRecorder) {
  ChaosSoakOptions options;
  options.max_bytes = 400'000;
  options.timeout = sec(60);
  options.stall_limit = sec(5);
  options.plan.horizon = sec(4);
  options.plan.max_events = 6;
  options.plan.restore_probability = 0.0;  // unrestored faults: trips guaranteed soon
  options.flight_recorder_events = 2048;
  options.flight_dump_dir = ::testing::TempDir();

  ChaosRunReport tripped;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    ChaosRunReport r = run_chaos_run(seed, options);
    EXPECT_TRUE(r.ok()) << "seed " << seed;
    if (!r.completed) {
      tripped = std::move(r);
      break;
    }
  }
  ASSERT_FALSE(tripped.completed) << "no seed tripped the watchdog";
  ASSERT_FALSE(tripped.flight_dump.empty());

  // The in-report dump parses and ends near the incident.
  const auto events = obs::FlightRecorder::parse(tripped.flight_dump);
  ASSERT_FALSE(events.empty());
  bool saw_fault = false;
  for (const auto& e : events) {
    saw_fault |= e.type == obs::FlightEventType::kFaultArm ||
                 e.type == obs::FlightEventType::kFaultFire;
  }
  // A 2048-event window may have scrolled past the arm records on a long
  // run, but the run's own metrics must agree a fault was applied.
  EXPECT_GT(tripped.metrics.value_of("fault.armed"), 0);
  (void)saw_fault;

  // The on-disk dump exists and parses to the same events.
  const std::string path = options.flight_dump_dir + "/chaos_flight_" +
                           std::to_string(tripped.seed) + ".mnfr";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << path;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes, tripped.flight_dump);
  EXPECT_EQ(obs::FlightRecorder::parse(bytes).size(), events.size());
  std::remove(path.c_str());
}

TEST(ObsWiring, ChaosRunReportCarriesMetricsSnapshot) {
  ChaosSoakOptions options;
  options.max_bytes = 200'000;
  options.timeout = sec(60);
  options.stall_limit = sec(10);
  options.plan.horizon = sec(4);
  const ChaosRunReport r = run_chaos_run(91, options);
  EXPECT_GT(r.metrics.value_of("sim.events_fired"), 0);
  EXPECT_GT(r.metrics.value_of("net.pkt_delivered"), 0);
  // No recorder configured -> no dump, even on aborted runs.
  EXPECT_TRUE(r.flight_dump.empty());
}

}  // namespace
}  // namespace mn
