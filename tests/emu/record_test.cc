#include "emu/record.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace mn {
namespace {

RecordedExchange exchange(const std::string& uri, std::int64_t resp_bytes,
                          std::vector<HttpHeader> req_headers = {}) {
  RecordedExchange e;
  e.request.method = "GET";
  e.request.uri = uri;
  e.request.headers = std::move(req_headers);
  e.response.status = 200;
  e.response.body_bytes = resp_bytes;
  return e;
}

TEST(RecordStore, ExactUriMatch) {
  RecordStore store;
  store.add(exchange("/a", 100));
  store.add(exchange("/b", 200));
  HttpRequest req;
  req.uri = "/b";
  const auto hit = store.match(req);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->response.body_bytes, 200);
}

TEST(RecordStore, MethodMustMatch) {
  RecordStore store;
  store.add(exchange("/a", 100));
  HttpRequest req;
  req.method = "POST";
  req.uri = "/a";
  EXPECT_FALSE(store.match(req).has_value());
}

TEST(RecordStore, LongestPrefixFallback) {
  // Mahimahi behavior for changed query strings.
  RecordStore store;
  store.add(exchange("/search?q=old&t=1", 100));
  store.add(exchange("/other", 200));
  HttpRequest req;
  req.uri = "/search?q=new&t=2";
  const auto hit = store.match(req);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->response.body_bytes, 100);
}

TEST(RecordStore, TimeSensitiveHeadersIgnoredInScoring) {
  RecordStore store;
  store.add(exchange("/page", 1,
                     {{"Accept", "text/html"}, {"If-Modified-Since", "recorded-time"}}));
  store.add(exchange("/page", 2, {{"Accept", "image/png"}}));
  HttpRequest req;
  req.uri = "/page";
  req.headers = {{"Accept", "text/html"}, {"If-Modified-Since", "replay-time"}};
  const auto hit = store.match(req);
  ASSERT_TRUE(hit.has_value());
  // The Accept header (not time-sensitive) should steer the match.
  EXPECT_EQ(hit->response.body_bytes, 1);
}

TEST(RecordStore, NoPlausibleMatchReturnsNullopt) {
  RecordStore store;
  store.add(exchange("/a", 100));
  HttpRequest req;
  req.uri = "zzz-no-common-prefix";
  EXPECT_FALSE(store.match(req).has_value());
}

TEST(RecordStore, SerializeRoundTrip) {
  RecordStore store;
  store.add(exchange("/x", 123, {{"Host", "h"}, {"Accept", "a/b"}}));
  store.add(exchange("/y", 456));
  const auto text = store.serialize();
  const auto back = RecordStore::deserialize(text);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.exchanges()[0].request.uri, "/x");
  EXPECT_EQ(back.exchanges()[0].request.headers.size(), 2u);
  EXPECT_EQ(back.exchanges()[1].response.body_bytes, 456);
}

TEST(RecordStore, DeserializeRejectsGarbage) {
  EXPECT_THROW(RecordStore::deserialize("WHAT is this\n"), std::runtime_error);
  EXPECT_THROW(RecordStore::deserialize("EXCHANGE\nMETHOD GET\n"), std::runtime_error);
  EXPECT_THROW(RecordStore::deserialize("METHOD GET\n"), std::runtime_error);
}

TEST(RecordStore, SaveLoadFile) {
  const auto path =
      (std::filesystem::temp_directory_path() / "mn_record_test.txt").string();
  RecordStore store;
  store.add(exchange("/file", 999));
  store.save(path);
  const auto back = RecordStore::load(path);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back.exchanges()[0].response.body_bytes, 999);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mn
