#include "emu/packet_log.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>

#include "tcp/cc.hpp"

namespace mn {
namespace {

Packet data_packet(std::int64_t seq, std::int64_t payload) {
  Packet p;
  p.seq = seq;
  p.payload = payload;
  p.flags.ack = true;
  return p;
}

TEST(PacketLog, RecordsEntries) {
  PacketLog log;
  log.record("wifi", TimePoint{1000}, PacketDir::kSent, data_packet(0, 100));
  log.record("lte", TimePoint{2000}, PacketDir::kReceived, data_packet(100, 200));
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.entries()[0].iface, "wifi");
  EXPECT_EQ(log.entries()[1].payload, 200);
}

TEST(PacketLog, EventTimesPerLane) {
  PacketLog log;
  log.record("wifi", TimePoint{sec(1).usec()}, PacketDir::kSent, data_packet(0, 1));
  log.record("lte", TimePoint{sec(2).usec()}, PacketDir::kSent, data_packet(0, 1));
  log.record("wifi", TimePoint{sec(3).usec()}, PacketDir::kReceived, data_packet(0, 1));
  const auto wifi = log.event_times("wifi");
  ASSERT_EQ(wifi.size(), 2u);
  EXPECT_DOUBLE_EQ(wifi[0], 1.0);
  EXPECT_DOUBLE_EQ(wifi[1], 3.0);
  EXPECT_EQ(log.event_times("lte").size(), 1u);
  EXPECT_TRUE(log.event_times("bluetooth").empty());
}

TEST(PacketLog, CumulativeReceivedBytes) {
  PacketLog log;
  log.record("wifi", TimePoint{1000}, PacketDir::kReceived, data_packet(0, 100));
  log.record("wifi", TimePoint{2000}, PacketDir::kSent, data_packet(0, 999));  // sent: no
  log.record("wifi", TimePoint{3000}, PacketDir::kReceived, data_packet(100, 50));
  EXPECT_EQ(log.bytes_received_by("wifi", TimePoint{1500}), 100);
  EXPECT_EQ(log.bytes_received_by("wifi", TimePoint{5000}), 150);
  EXPECT_EQ(log.bytes_received_by("lte", TimePoint{5000}), 0);
}

TEST(PacketLog, SerializeRoundTrip) {
  PacketLog log;
  Packet syn;
  syn.flags.syn = true;
  syn.subflow_id = 1;
  log.record("lte", TimePoint{42}, PacketDir::kSent, syn);
  log.record("wifi", TimePoint{99}, PacketDir::kReceived, data_packet(7, 1448));
  const auto text = log.serialize();
  const PacketLog back = PacketLog::deserialize(text);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_TRUE(back.entries()[0].flags.syn);
  EXPECT_EQ(back.entries()[0].subflow_id, 1);
  EXPECT_EQ(back.entries()[1].payload, 1448);
  EXPECT_EQ(back.entries()[1].seq, 7);
  EXPECT_EQ(back.serialize(), text);
}

TEST(PacketLog, DeserializeRejectsGarbage) {
  EXPECT_THROW(PacketLog::deserialize("not a packet line\n"), std::exception);
}

TEST(PacketLog, FileSaveLoad) {
  const auto path =
      (std::filesystem::temp_directory_path() / "mn_packet_log_test.txt").string();
  PacketLog log;
  log.record("wifi", TimePoint{1}, PacketDir::kSent, data_packet(0, 10));
  log.save(path);
  const auto back = PacketLog::load(path);
  EXPECT_EQ(back.size(), 1u);
  std::remove(path.c_str());
}

TEST(PacketLog, TapIntegratesWithInterface) {
  Simulator sim;
  LinkSpec spec;
  spec.rate_mbps = 100.0;
  spec.one_way_delay = msec(1);
  DuplexPath path{sim, spec, spec};
  NetworkInterface iface{"wifi", sim, path};
  PacketLog log;
  iface.set_tap(log.tap_for("wifi"));
  iface.set_receiver([](Packet) {});
  iface.send(data_packet(0, 500));
  path.send_down(data_packet(1, 700));
  sim.run_until_idle();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.entries()[0].dir, PacketDir::kSent);
  EXPECT_EQ(log.entries()[1].dir, PacketDir::kReceived);
  EXPECT_EQ(log.bytes_received_by("wifi", TimePoint{sec(1).usec()}), 700);
}

TEST(PacketLog, BoundedCapacityEvictsOldestFirst) {
  PacketLog log;
  log.set_capacity(3);
  EXPECT_EQ(log.capacity(), 3u);
  for (int i = 0; i < 5; ++i) {
    log.record("wifi", TimePoint{i * 1000}, PacketDir::kSent, data_packet(i, 100));
  }
  // The newest window survives, oldest-first eviction.
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.evicted(), 2u);
  EXPECT_EQ(log.entries()[0].seq, 2);
  EXPECT_EQ(log.entries()[1].seq, 3);
  EXPECT_EQ(log.entries()[2].seq, 4);
}

TEST(PacketLog, ShrinkingCapacityEvictsImmediately) {
  PacketLog log;
  for (int i = 0; i < 6; ++i) {
    log.record("lte", TimePoint{i}, PacketDir::kSent, data_packet(i, 1));
  }
  log.set_capacity(2);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.evicted(), 4u);
  EXPECT_EQ(log.entries()[0].seq, 4);
  // Capacity 0 returns to unbounded growth.
  log.set_capacity(0);
  log.record("lte", TimePoint{100}, PacketDir::kSent, data_packet(7, 1));
  log.record("lte", TimePoint{101}, PacketDir::kSent, data_packet(8, 1));
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.evicted(), 4u);
}

TEST(PacketLog, ExportsPcap) {
  PacketLog log;
  Packet syn;
  syn.flags.syn = true;
  log.record("wifi", TimePoint{1000}, PacketDir::kSent, syn);
  log.record("wifi", TimePoint{2000}, PacketDir::kReceived, data_packet(1, 1448));

  const auto pcap = log.to_pcap();
  ASSERT_EQ(pcap.size(), 2u);
  EXPECT_TRUE(pcap[0].outbound);
  EXPECT_TRUE(pcap[0].syn);
  EXPECT_FALSE(pcap[1].outbound);
  EXPECT_EQ(pcap[1].payload, 1448);

  const std::string path = ::testing::TempDir() + "packet_log_test.pcap";
  log.save_pcap(path);
  std::error_code ec;
  EXPECT_GE(std::filesystem::file_size(path, ec), 24u + 2u * 16u);
  EXPECT_FALSE(ec);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mn
