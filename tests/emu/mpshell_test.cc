#include "emu/mpshell.hpp"

#include <gtest/gtest.h>

namespace mn {
namespace {

LinkSpec mk(double mbps, Duration delay) {
  LinkSpec s;
  s.rate_mbps = mbps;
  s.one_way_delay = delay;
  s.queue_packets = 64;
  return s;
}

MpNetworkSetup net(double wifi = 10, double lte = 8) {
  return symmetric_setup(mk(wifi, msec(10)), mk(lte, msec(30)));
}

TEST(MpShell, SingleExchangeOverTcpCompletes) {
  Simulator sim;
  MpShell shell{sim, net()};
  HttpConnectionSim conn{shell, TransportConfig::single_path(PathId::kWifi), 1,
                         {synthetic_exchange(300, 20'000)}};
  bool done = false;
  conn.on_complete = [&] { done = true; };
  conn.start(TimePoint{0});
  sim.run_until(TimePoint{sec(10).usec()});
  EXPECT_TRUE(done);
  EXPECT_TRUE(conn.complete());
  // handshake + request + response: a few WiFi RTTs.
  EXPECT_LT((conn.completed_at() - conn.started_at()).seconds(), 0.5);
}

TEST(MpShell, SingleExchangeOverMptcpCompletes) {
  Simulator sim;
  MpShell shell{sim, net()};
  HttpConnectionSim conn{shell, TransportConfig::mptcp(PathId::kLte, CcAlgo::kCoupled), 1,
                         {synthetic_exchange(300, 500'000)}};
  conn.start(TimePoint{0});
  sim.run_until(TimePoint{sec(30).usec()});
  EXPECT_TRUE(conn.complete());
}

TEST(MpShell, SequentialExchangesOnOneConnection) {
  Simulator sim;
  MpShell shell{sim, net()};
  std::vector<HttpExchange> exchanges;
  for (int i = 0; i < 5; ++i) {
    exchanges.push_back(synthetic_exchange(300, 5'000, msec(10)));
  }
  HttpConnectionSim conn{shell, TransportConfig::single_path(PathId::kWifi), 1,
                         exchanges};
  conn.start(TimePoint{0});
  sim.run_until(TimePoint{sec(30).usec()});
  ASSERT_TRUE(conn.complete());
  // 5 sequential request/response rounds: at least 5 RTTs + thinks.
  EXPECT_GT((conn.completed_at() - conn.started_at()).seconds(), 0.1);
}

TEST(MpShell, ManyConcurrentConnectionsShareTheLinks) {
  Simulator sim;
  MpShell shell{sim, net()};
  std::vector<std::unique_ptr<HttpConnectionSim>> conns;
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    auto c = std::make_unique<HttpConnectionSim>(
        shell, TransportConfig::single_path(PathId::kWifi),
        static_cast<std::uint64_t>(i + 1),
        std::vector<HttpExchange>{synthetic_exchange(300, 30'000)});
    c->on_complete = [&done] { ++done; };
    c->start(TimePoint{msec(i * 50).usec()});
    conns.push_back(std::move(c));
  }
  sim.run_until(TimePoint{sec(30).usec()});
  EXPECT_EQ(done, 10);
}

TEST(MpShell, MixedTransportsCoexist) {
  Simulator sim;
  MpShell shell{sim, net()};
  HttpConnectionSim tcp_conn{shell, TransportConfig::single_path(PathId::kLte), 1,
                             {synthetic_exchange(300, 40'000)}};
  HttpConnectionSim mp_conn{shell, TransportConfig::mptcp(PathId::kWifi, CcAlgo::kDecoupled),
                            2, {synthetic_exchange(300, 40'000)}};
  tcp_conn.start(TimePoint{0});
  mp_conn.start(TimePoint{0});
  sim.run_until(TimePoint{sec(30).usec()});
  EXPECT_TRUE(tcp_conn.complete());
  EXPECT_TRUE(mp_conn.complete());
}

TEST(MpShell, ServerThinkTimeDelaysResponse) {
  Simulator sim;
  MpShell shell{sim, net()};
  HttpConnectionSim fast{shell, TransportConfig::single_path(PathId::kWifi), 1,
                         {synthetic_exchange(300, 1'000, Duration{0})}};
  HttpConnectionSim slow{shell, TransportConfig::single_path(PathId::kWifi), 2,
                         {synthetic_exchange(300, 1'000, sec(1))}};
  fast.start(TimePoint{0});
  slow.start(TimePoint{0});
  sim.run_until(TimePoint{sec(10).usec()});
  ASSERT_TRUE(fast.complete());
  ASSERT_TRUE(slow.complete());
  const auto fast_d = fast.completed_at() - fast.started_at();
  const auto slow_d = slow.completed_at() - slow.started_at();
  EXPECT_GT((slow_d - fast_d).seconds(), 0.9);
}

TEST(MpShell, EmptyExchangeListCompletesImmediately) {
  Simulator sim;
  MpShell shell{sim, net()};
  HttpConnectionSim conn{shell, TransportConfig::single_path(PathId::kWifi), 1, {}};
  conn.start(TimePoint{msec(5).usec()});
  sim.run_until(TimePoint{sec(1).usec()});
  EXPECT_TRUE(conn.complete());
  EXPECT_EQ(conn.completed_at().usec(), msec(5).usec());
}

TEST(MpShell, WifiTcpIsUnaffectedByLtePathQuality) {
  // Same WiFi, terrible LTE: a WiFi-TCP connection must perform the same.
  auto good = net(10, 10);
  auto bad = net(10, 0.5);
  Duration d_good{0};
  Duration d_bad{0};
  {
    Simulator sim;
    MpShell shell{sim, good};
    HttpConnectionSim conn{shell, TransportConfig::single_path(PathId::kWifi), 1,
                           {synthetic_exchange(300, 100'000)}};
    conn.start(TimePoint{0});
    sim.run_until(TimePoint{sec(10).usec()});
    d_good = conn.completed_at() - conn.started_at();
  }
  {
    Simulator sim;
    MpShell shell{sim, bad};
    HttpConnectionSim conn{shell, TransportConfig::single_path(PathId::kWifi), 1,
                           {synthetic_exchange(300, 100'000)}};
    conn.start(TimePoint{0});
    sim.run_until(TimePoint{sec(10).usec()});
    d_bad = conn.completed_at() - conn.started_at();
  }
  EXPECT_EQ(d_good.usec(), d_bad.usec());
}

}  // namespace
}  // namespace mn
