#include "emu/http.hpp"

#include <gtest/gtest.h>

namespace mn {
namespace {

TEST(Http, RequestWireBytesIncludeEverything) {
  HttpRequest r;
  r.method = "GET";
  r.uri = "/index.html";
  r.headers = {{"Host", "example.com"}};
  r.body_bytes = 0;
  const auto base = r.wire_bytes();
  EXPECT_GT(base, 20);
  r.body_bytes = 500;
  EXPECT_EQ(r.wire_bytes(), base + 500);
}

TEST(Http, ResponseWireBytes) {
  HttpResponse r;
  r.body_bytes = 1000;
  EXPECT_GT(r.wire_bytes(), 1000);
}

TEST(Http, HeaderLookupIsCaseInsensitive) {
  HttpRequest r;
  r.headers = {{"If-Modified-Since", "yesterday"}};
  EXPECT_EQ(r.header("if-modified-since").value_or(""), "yesterday");
  EXPECT_EQ(r.header("IF-MODIFIED-SINCE").value_or(""), "yesterday");
  EXPECT_FALSE(r.header("etag").has_value());
}

TEST(Http, TimeSensitiveHeaderList) {
  EXPECT_TRUE(is_time_sensitive_header("If-Modified-Since"));
  EXPECT_TRUE(is_time_sensitive_header("date"));
  EXPECT_TRUE(is_time_sensitive_header("Cookie"));
  EXPECT_FALSE(is_time_sensitive_header("Host"));
  EXPECT_FALSE(is_time_sensitive_header("Content-Type"));
}

}  // namespace
}  // namespace mn
