// Contended-cell mechanics: airtime fairness, PF scheduling, the shared
// backhaul bottleneck, generation-tagged staleness, and the idle/re-arm
// life cycle.  Each test drives a cell directly through fluid GrantSink
// stubs; the packet-fidelity CellPort gets its own file.
#include "world/cell.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "util/inplace_function.hpp"

namespace mn::world {
namespace {

/// Fluid backlog that detaches itself from the cell when drained (the
/// same discipline ClusterWorld follows — a station that accepts zero
/// forever would keep the cell ticking for eternity).
struct Backlog final : GrantSink {
  CellBase* cell = nullptr;
  StationId id;
  std::int64_t remaining = 0;
  std::int64_t taken = 0;
  std::int64_t last_grant_us = -1;
  int grants = 0;
  Simulator* sim = nullptr;

  std::int64_t on_grant(std::uint32_t, std::int64_t offered) override {
    const std::int64_t g = offered < remaining ? offered : remaining;
    remaining -= g;
    taken += g;
    ++grants;
    if (sim != nullptr) last_grant_us = sim->now().usec();
    if (remaining == 0 && cell != nullptr) cell->detach(id);
    return g;
  }
};

CellConfig cfg(const char* name, Backhaul* bh = nullptr) {
  CellConfig c;
  c.name = name;
  c.service_tick = msec(5);
  c.grants_per_tick = 8;
  c.backhaul = bh;
  c.station_capacity = 16;
  return c;
}

TEST(WifiCell, EfficiencyDecaysWithContention) {
  Simulator sim;
  WifiCell cell(sim, cfg("w"));
  EXPECT_DOUBLE_EQ(cell.efficiency(1), 1.0);
  for (int n = 2; n < 40; ++n) {
    EXPECT_LT(cell.efficiency(n), cell.efficiency(n - 1)) << n;
    EXPECT_GT(cell.efficiency(n), 0.0);
  }
}

TEST(WifiCell, AirtimeSharedFairlyAmongEqualStations) {
  Simulator sim;
  WifiCell cell(sim, cfg("w"));
  std::vector<Backlog> users(4);
  for (std::uint32_t i = 0; i < users.size(); ++i) {
    users[i].cell = &cell;
    users[i].remaining = 1'000'000'000;  // never drains during the test
    users[i].id = cell.attach(&users[i], i, /*phy_mbps=*/10.0);
  }
  sim.run_until(TimePoint{} + sec(2));

  // Equal PHY, airtime-fair round-robin: every station gets the same
  // share to within one tick's quantum.
  std::int64_t lo = users[0].taken;
  std::int64_t hi = users[0].taken;
  std::int64_t total = 0;
  for (const Backlog& u : users) {
    lo = std::min(lo, u.taken);
    hi = std::max(hi, u.taken);
    total += u.taken;
  }
  EXPECT_GT(lo, 0);
  EXPECT_LT(static_cast<double>(hi - lo), 0.05 * static_cast<double>(hi));

  // Cell capacity ~ phy * eff(4) (airtime split, not rate sum): 2 s of
  // 10 Mbit/s at eff(4) = 1/1.09 is ~2.29 MB.
  const double expect_bytes = 10e6 / 8.0 * cell.efficiency(4) * 2.0;
  EXPECT_NEAR(static_cast<double>(total), expect_bytes, 0.05 * expect_bytes);
  for (Backlog& u : users) cell.detach(u.id);
}

TEST(WifiCell, SlowStationGetsEqualAirtimeNotEqualBytes) {
  Simulator sim;
  WifiCell cell(sim, cfg("w"));
  Backlog fast;
  Backlog slow;
  fast.cell = slow.cell = &cell;
  fast.remaining = slow.remaining = 1'000'000'000;
  fast.id = cell.attach(&fast, 0, 40.0);
  slow.id = cell.attach(&slow, 1, 4.0);
  sim.run_until(TimePoint{} + sec(2));
  // Airtime fairness: bytes scale with own PHY — a 10x rate gap yields
  // ~10x the bytes (NOT equal-throughput, which would punish the fast
  // station; the classic WiFi rate-anomaly shape).
  const double ratio = static_cast<double>(fast.taken) / static_cast<double>(slow.taken);
  EXPECT_NEAR(ratio, 10.0, 1.0);
  cell.detach(fast.id);
  cell.detach(slow.id);
}

TEST(LteSector, ProportionalFairServesEveryoneAndExploitsDiversity) {
  Simulator sim;
  LteSector cell(sim, cfg("l"));
  std::vector<Backlog> users(6);
  for (std::uint32_t i = 0; i < users.size(); ++i) {
    users[i].cell = &cell;
    users[i].remaining = 1'000'000'000;
    users[i].id = cell.attach(&users[i], i, 20.0);
  }
  sim.run_until(TimePoint{} + sec(2));
  std::int64_t lo = users[0].taken;
  std::int64_t hi = users[0].taken;
  std::int64_t total = 0;
  for (const Backlog& u : users) {
    lo = std::min(lo, u.taken);
    hi = std::max(hi, u.taken);
    total += u.taken;
  }
  // No starvation, and equal-average UEs end within 15% of each other.
  EXPECT_GT(lo, 0);
  EXPECT_LT(static_cast<double>(hi - lo), 0.15 * static_cast<double>(hi));
  // PF rides fading peaks: long-run sector throughput must land at or
  // above the no-diversity baseline (avg PHY) and below the +40% peak.
  const double mbps = static_cast<double>(total) * 8.0 / 2.0 / 1e6;
  EXPECT_GT(mbps, 18.0);
  EXPECT_LT(mbps, 29.0);
  for (Backlog& u : users) cell.detach(u.id);
}

TEST(LteSector, FadingIsDeterministicAndBounded) {
  Simulator sim;
  LteSector::Options opt;
  opt.fading_depth = 0.4;
  opt.fading_seed = 1234;
  LteSector cell(sim, cfg("l"), opt);
  LteSector again(sim, cfg("l2"), opt);
  for (std::uint32_t tag = 0; tag < 8; ++tag) {
    for (std::int64_t tick = 0; tick < 200; ++tick) {
      const double f = cell.fading(tag, tick);
      EXPECT_GE(f, 0.6);
      EXPECT_LE(f, 1.4);
      EXPECT_EQ(f, again.fading(tag, tick)) << "same seed, same factor";
    }
  }
}

TEST(Backhaul, SharedBottleneckCapsBothCells) {
  Simulator sim;
  Backhaul bh(/*rate_mbps=*/8.0, /*burst=*/msec(20));
  WifiCell wifi(sim, cfg("w", &bh));
  LteSector lte(sim, cfg("l", &bh));
  Backlog u1;
  Backlog u2;
  u1.cell = &wifi;
  u2.cell = &lte;
  u1.remaining = u2.remaining = 1'000'000'000;
  // WiFi demand (4 Mbit/s) sits below the 8 Mbit/s bucket; the LTE UE
  // could saturate it alone.  Grants draw in (time, seq) order, so WiFi
  // takes its full demand and LTE gets exactly the leftover — the
  // bucket enforces the sum, not a fairness split.
  u1.id = wifi.attach(&u1, 0, 4.0);
  u2.id = lte.attach(&u2, 0, 50.0);
  sim.run_until(TimePoint{} + sec(2));
  const std::int64_t total = u1.taken + u2.taken;
  // 8 Mbit/s for 2 s = 2 MB, plus the 20 ms burst allowance.
  const double cap = 8e6 / 8.0 * 2.0 + 8e6 / 8.0 * 0.020;
  EXPECT_LE(static_cast<double>(total), cap * 1.01);
  EXPECT_GT(static_cast<double>(total), cap * 0.80);  // bottleneck well used
  const double wifi_want = 4e6 / 8.0 * 2.0;
  EXPECT_NEAR(static_cast<double>(u1.taken), wifi_want, 0.15 * wifi_want);
  EXPECT_GT(u2.taken, 0);
  EXPECT_LT(u2.taken, u1.taken * 2);  // LTE is throttled far below its PHY
  EXPECT_GT(bh.throttled_bytes(), 0);  // demand exceeded the bucket
  wifi.detach(u1.id);
  lte.detach(u2.id);
}

TEST(CellBase, DetachedStationReceivesNoGrantsAndStaleIdIsHarmless) {
  Simulator sim;
  WifiCell cell(sim, cfg("w"));
  Backlog u;
  u.sim = &sim;
  u.remaining = 1'000'000'000;
  u.id = cell.attach(&u, 0, 10.0);
  sim.run_until(TimePoint{} + msec(50));
  EXPECT_GT(u.taken, 0);
  const StationId stale = u.id;
  cell.detach(stale);
  EXPECT_FALSE(cell.is_attached(stale));
  const std::int64_t at_detach_us = sim.now().usec();
  const std::int64_t taken_at_detach = u.taken;
  sim.run_until(TimePoint{} + msec(200));
  // In-flight grants hit the stale generation and commit nothing.
  EXPECT_EQ(u.taken, taken_at_detach);
  EXPECT_LE(u.last_grant_us, at_detach_us);
  // Double detach and is_attached on a reused slot are no-ops/false.
  cell.detach(stale);
  Backlog v;
  v.remaining = 1'000'000'000;
  v.id = cell.attach(&v, 1, 10.0);  // may reuse the freed slot...
  EXPECT_TRUE(cell.is_attached(v.id));
  EXPECT_FALSE(cell.is_attached(stale));  // ...yet the old id stays stale
  cell.detach(v.id);
}

TEST(CellBase, IdleCellReArmsOnNextAttach) {
  Simulator sim;
  WifiCell cell(sim, cfg("w"));
  Backlog u;
  u.cell = &cell;
  u.remaining = 40'000;  // small: drains quickly, then the cell idles
  u.id = cell.attach(&u, 0, 10.0);
  sim.run_until_idle();  // terminates ONLY if the cell disarms when empty
  EXPECT_EQ(u.remaining, 0);
  EXPECT_EQ(cell.active_stations(), 0);
  const std::int64_t idle_us = sim.now().usec();

  Backlog v;
  v.cell = &cell;
  v.remaining = 40'000;
  v.id = cell.attach(&v, 1, 10.0);
  sim.run_until_idle();
  EXPECT_EQ(v.remaining, 0);
  EXPECT_GT(sim.now().usec(), idle_us);
}

TEST(CellBase, SteadyStateGrantPathStaysOffTheHeap) {
  Simulator sim;
  WifiCell cell(sim, cfg("w"));
  std::vector<Backlog> users(8);
  for (std::uint32_t i = 0; i < users.size(); ++i) {
    users[i].cell = &cell;
    users[i].remaining = 200'000;
    users[i].id = cell.attach(&users[i], i, 12.0);
  }
  const std::uint64_t before = inplace_function_heap_fallbacks();
  sim.run_until_idle();
  EXPECT_EQ(inplace_function_heap_fallbacks(), before);
  for (const Backlog& u : users) EXPECT_EQ(u.remaining, 0);
}

}  // namespace
}  // namespace mn::world
