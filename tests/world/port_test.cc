// CellPort: real packet queues drained by shared-cell grants.  Covers
// the queue/credit/detach life cycle with raw packets, then the
// headline integration — several real TCP connections contending for
// one WifiCell, each slower than it would be alone but all completing.
#include "world/port.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/path.hpp"
#include "sim/simulator.hpp"
#include "tcp/cc.hpp"
#include "tcp/tcp_endpoint.hpp"

namespace mn::world {
namespace {

CellConfig cell_cfg(const char* name) {
  CellConfig c;
  c.name = name;
  c.service_tick = msec(5);
  c.grants_per_tick = 8;
  c.station_capacity = 16;
  return c;
}

Packet data_packet(std::int64_t payload) {
  Packet p;
  p.payload = payload;
  return p;
}

TEST(CellPort, DrainsWholePacketsInGrantBurstsAndDetachesWhenEmpty) {
  Simulator sim;
  WifiCell cell(sim, cell_cfg("w"));
  CellPort port(sim, cell, /*phy_mbps=*/10.0, /*queue_packets=*/64);
  std::int64_t delivered_bytes = 0;
  int delivered_pkts = 0;
  port.set_next([&](Packet p) {
    delivered_bytes += p.wire_bytes();
    ++delivered_pkts;
  });

  EXPECT_FALSE(port.attached());  // idle port stays out of the contention set
  for (int i = 0; i < 20; ++i) port.accept(data_packet(1400));
  EXPECT_TRUE(port.attached());  // first packet associates

  sim.run_until_idle();
  EXPECT_EQ(delivered_pkts, 20);
  EXPECT_EQ(delivered_bytes, 20 * (1400 + Packet::kHeaderBytes));
  EXPECT_EQ(port.queued_packets(), 0);
  EXPECT_FALSE(port.attached());  // empty queue re-detaches
  EXPECT_EQ(port.counters().accepted, 20u);
  EXPECT_EQ(port.counters().delivered, 20u);
  EXPECT_EQ(port.counters().dropped, 0u);
}

TEST(CellPort, QueueOverflowDropsTail) {
  Simulator sim;
  WifiCell cell(sim, cell_cfg("w"));
  CellPort port(sim, cell, 1.0, /*queue_packets=*/8);
  int delivered = 0;
  port.set_next([&](Packet) { ++delivered; });
  for (int i = 0; i < 30; ++i) port.accept(data_packet(1400));
  EXPECT_EQ(port.counters().dropped, 22u);  // only 8 fit
  sim.run_until_idle();
  EXPECT_EQ(delivered, 8);
}

TEST(CellPort, ReAssociatesForLaterTraffic) {
  Simulator sim;
  WifiCell cell(sim, cell_cfg("w"));
  CellPort port(sim, cell, 10.0, 64);
  int delivered = 0;
  port.set_next([&](Packet) { ++delivered; });
  port.accept(data_packet(1000));
  sim.run_until_idle();
  EXPECT_EQ(delivered, 1);
  EXPECT_FALSE(port.attached());
  // Second burst after the cell has gone fully idle.
  port.accept(data_packet(1000));
  port.accept(data_packet(1000));
  EXPECT_TRUE(port.attached());
  sim.run_until_idle();
  EXPECT_EQ(delivered, 3);
}

/// One TCP connection whose server->client direction crosses a shared
/// cell; the client->server (ACK) direction rides a private uplink.
struct CellFlow {
  OneWayPipe up;
  CellPort down;
  TcpEndpoint client;
  TcpEndpoint server;
  std::int64_t target = 0;
  TimePoint done_at{};

  CellFlow(Simulator& sim, CellBase& cell, double phy_mbps)
      : up(sim, ack_spec()),
        down(sim, cell, phy_mbps, /*queue_packets=*/150),
        client(sim, TcpConfig{}, std::make_unique<RenoCc>()),
        server(sim, TcpConfig{}, std::make_unique<RenoCc>()) {
    client.set_transmit([this](Packet p) { up.send(std::move(p)); });
    up.set_receiver([this](Packet p) { server.handle_packet(p); });
    server.set_transmit([this](Packet p) { down.accept(std::move(p)); });
    down.set_next([this](Packet p) { client.handle_packet(p); });
  }

  void start(Simulator& sim, std::int64_t bytes) {
    target = bytes;
    server.send_bytes(bytes);  // buffered until the handshake completes
    server.listen();
    client.connect();
    client.on_delivered = [this, &sim](std::int64_t total) {
      if (total >= target && done_at.usec() == 0) done_at = sim.now();
    };
  }

  static LinkSpec ack_spec() {
    LinkSpec s;
    s.rate_mbps = 50.0;
    s.one_way_delay = msec(10);
    s.queue_packets = 256;
    return s;
  }
};

TEST(CellPort, RealTcpFlowsContendForOneWifiCell) {
  Simulator sim;
  WifiCell cell(sim, cell_cfg("w"));

  // Solo baseline: one connection owns the cell.
  auto solo = std::make_unique<CellFlow>(sim, cell, 16.0);
  solo->start(sim, 500'000);
  sim.run_until_idle();
  ASSERT_GT(solo->done_at.usec(), 0);
  const double solo_s = static_cast<double>(solo->done_at.usec()) / 1e6;
  solo.reset();

  // Contended: six connections share the same AP from t=0.
  Simulator sim2;
  WifiCell cell2(sim2, cell_cfg("w"));
  std::vector<std::unique_ptr<CellFlow>> flows;
  for (int i = 0; i < 6; ++i) {
    flows.push_back(std::make_unique<CellFlow>(sim2, cell2, 16.0));
    flows.back()->start(sim2, 500'000);
  }
  sim2.run_until(TimePoint{} + sec(60));

  double slowest_s = 0.0;
  for (const auto& f : flows) {
    ASSERT_GT(f->done_at.usec(), 0) << "every contended flow still completes";
    EXPECT_EQ(f->client.bytes_delivered(), 500'000);
    slowest_s = std::max(slowest_s, static_cast<double>(f->done_at.usec()) / 1e6);
  }
  // Six flows through one airtime-shared AP: the slowest must pay a
  // clear contention penalty over the solo run (at least 3x with six
  // stations; exact values depend on DCF overhead and tick phasing).
  EXPECT_GT(slowest_s, 3.0 * solo_s);
  EXPECT_GT(cell2.granted_bytes(), 6 * 500'000);
}

}  // namespace
}  // namespace mn::world
