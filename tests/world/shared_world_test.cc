// Shared-world determinism goldens: the cluster digest must be
// byte-identical across worker counts (MN_THREADS axis) and across
// batched vs scalar sink dispatch — the two axes that reorder event
// *processing* without being allowed to change event *semantics*.
#include "world/shared_world.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>

#include "measure/world.hpp"
#include "util/inplace_function.hpp"

namespace mn::world {
namespace {

/// RAII MN_SCALAR_DISPATCH=1 (read by every Simulator constructor).
struct ScopedScalarDispatch {
  ScopedScalarDispatch() { ::setenv("MN_SCALAR_DISPATCH", "1", 1); }
  ~ScopedScalarDispatch() { ::unsetenv("MN_SCALAR_DISPATCH"); }
};

WorldOptions small_opts() {
  WorldOptions opt;
  opt.arrival_window_s = 10.0;
  opt.incomplete_probability = 0.1;
  return opt;
}

constexpr std::uint64_t kUsers = 300;

TEST(SplitUsers, DeterministicWeightedAndExhaustive) {
  const auto world = table1_world();
  const auto counts = split_users(world, 10'000);
  ASSERT_EQ(counts.size(), world.size());
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 10'000);
  // Weighted by cluster run counts: Boston (884 paper runs) must get
  // the largest share.
  for (std::size_t i = 1; i < counts.size(); ++i) EXPECT_GE(counts[0], counts[i]);
  EXPECT_EQ(counts, split_users(world, 10'000)) << "pure function of inputs";
  // Everyone lands somewhere even when users < clusters.
  const auto tiny = split_users(world, 5);
  EXPECT_EQ(std::accumulate(tiny.begin(), tiny.end(), 0), 5);
}

TEST(SharedWorld, EveryUserCompletesAndStatsAddUp) {
  const auto world = table1_world();
  const auto r = run_world(world, kUsers, small_opts());
  EXPECT_EQ(r.total_users, kUsers);
  EXPECT_GT(r.events_fired, 0u);
  EXPECT_GT(r.sim_horizon_s, 0.0);
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  std::uint64_t both = 0;
  for (std::size_t i = 0; i < r.stats.size(); ++i) {
    const StreamingClusterStats& c = r.stats.cluster(i);
    started += c.users_started;
    completed += c.users_completed;
    both += c.both_measured;
    EXPECT_LE(c.lte_wins, c.both_measured);
  }
  EXPECT_EQ(started, kUsers);
  EXPECT_EQ(completed, kUsers);
  // ~10% incomplete runs skip one side and leave the win denominator.
  EXPECT_LT(both, kUsers);
  EXPECT_GT(both, kUsers / 2);
}

TEST(SharedWorld, DigestIdenticalAcrossWorkerCounts) {
  const auto world = table1_world();
  WorldOptions serial = small_opts();
  serial.parallelism = 0;
  WorldOptions wide = small_opts();
  wide.parallelism = 4;
  const std::string a = run_world(world, kUsers, serial).stats.digest();
  const std::string b = run_world(world, kUsers, wide).stats.digest();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(SharedWorld, DigestIdenticalUnderScalarDispatch) {
  const auto world = table1_world();
  std::string batched;
  {
    const auto r = run_world(world, kUsers, small_opts());
    batched = r.stats.digest();
  }
  std::string scalar_env;
  {
    ScopedScalarDispatch env;  // every Simulator in run_world sees it
    scalar_env = run_world(world, kUsers, small_opts()).stats.digest();
  }
  std::string scalar_opt;
  {
    WorldOptions opt = small_opts();
    opt.batch_dispatch = false;
    scalar_opt = run_world(world, kUsers, opt).stats.digest();
  }
  ASSERT_FALSE(batched.empty());
  EXPECT_EQ(batched, scalar_env);
  EXPECT_EQ(batched, scalar_opt);
}

TEST(SharedWorld, SteadyStateStaysOffTheHeapFallbackPath) {
  const auto world = table1_world();
  // Warm-up run absorbs one-time lazy init (negative sketch arrays etc.).
  (void)run_world(world, 50, small_opts());
  const std::uint64_t before = inplace_function_heap_fallbacks();
  (void)run_world(world, kUsers, small_opts());
  EXPECT_EQ(inplace_function_heap_fallbacks(), before);
}

TEST(SharedWorld, VenueCountScalesWithUsers) {
  Simulator sim;
  const auto world = table1_world();
  WorldOptions opt = small_opts();
  opt.users_per_cell = 64;
  ClusterWorld small(sim, world[0], 10, opt);
  EXPECT_EQ(small.venue_count(), 1u);
  Simulator sim2;
  ClusterWorld big(sim2, world[0], 1000, opt);
  EXPECT_EQ(big.venue_count(), 16u);  // ceil(1000 / 64)
}

TEST(SharedWorld, ObsRegistersPerCellSeriesWhenAsked) {
  const auto world = table1_world();
  WorldOptions opt = small_opts();
  opt.attach_obs = true;  // must not throw (metric-capacity headroom)
  const auto r = run_world(world, 100, opt);
  std::uint64_t completed = 0;
  for (std::size_t i = 0; i < r.stats.size(); ++i) {
    completed += r.stats.cluster(i).users_completed;
  }
  EXPECT_EQ(completed, 100u);
}

}  // namespace
}  // namespace mn::world
