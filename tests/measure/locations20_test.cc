#include "measure/locations20.hpp"

#include <gtest/gtest.h>

#include "tcp/flow.hpp"

namespace mn {
namespace {

TEST(Locations20, HasExactlyTwenty) {
  const auto& locs = table2_locations();
  ASSERT_EQ(locs.size(), 20u);
  for (std::size_t i = 0; i < locs.size(); ++i) {
    EXPECT_EQ(locs[i].id, static_cast<int>(i) + 1);
    EXPECT_FALSE(locs[i].city.empty());
    EXPECT_FALSE(locs[i].description.empty());
    EXPECT_GT(locs[i].wifi_mbps, 0.0);
    EXPECT_GT(locs[i].lte_mbps, 0.0);
  }
}

TEST(Locations20, SevenCcStudyMembers) {
  int n = 0;
  for (const auto& l : table2_locations()) n += l.cc_study_member;
  EXPECT_EQ(n, 7);  // Section 3.5: "at 7 of the 20 locations"
}

TEST(Locations20, SevenCitiesCovered) {
  std::set<std::string> cities;
  for (const auto& l : table2_locations()) cities.insert(l.city);
  EXPECT_EQ(cities.size(), 7u);  // paper: "7 cities in the United States"
}

TEST(Locations20, MixOfWifiAndLteDominantSites) {
  int wifi_better = 0;
  int lte_better = 0;
  for (const auto& l : table2_locations()) {
    (l.wifi_mbps > l.lte_mbps ? wifi_better : lte_better)++;
  }
  EXPECT_GE(wifi_better, 5);
  EXPECT_GE(lte_better, 5);
}

TEST(Locations20, SetupBuildsTraceLinks) {
  const auto& loc = table2_locations().front();
  const auto setup = location_setup(loc, /*seed=*/1);
  ASSERT_NE(setup.wifi_down.trace, nullptr);
  ASSERT_NE(setup.lte_down.trace, nullptr);
  // Two-state traces average between their good and bad rates; the
  // long-run mean should sit within ~50% of the nominal rate.
  EXPECT_NEAR(setup.wifi_down.trace->average_rate_mbps(), loc.wifi_mbps,
              loc.wifi_mbps * 0.5);
}

TEST(Locations20, SetupIsDeterministicPerSeed) {
  const auto& loc = table2_locations()[3];
  const auto a = location_setup(loc, 7);
  const auto b = location_setup(loc, 7);
  EXPECT_EQ(a.wifi_down.trace->to_mahimahi(), b.wifi_down.trace->to_mahimahi());
  const auto c = location_setup(loc, 8);
  EXPECT_NE(a.wifi_down.trace->to_mahimahi(), c.wifi_down.trace->to_mahimahi());
}

TEST(Locations20, TcpOverLocationAchievesRoughlyNominalRate) {
  const auto& loc = table2_locations()[9];  // Boston apartment: WiFi 20 Mbit/s
  const auto setup = location_setup(loc, 3);
  Simulator sim;
  DuplexPath wifi{sim, setup.wifi_up, setup.wifi_down};
  const auto r = run_bulk_flow(sim, wifi, 1'000'000, Direction::kDownload);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.throughput_mbps, loc.wifi_mbps * 0.4);
  EXPECT_LT(r.throughput_mbps, loc.wifi_mbps * 1.1);
}

}  // namespace
}  // namespace mn
