#include "measure/world.hpp"

#include <gtest/gtest.h>

namespace mn {
namespace {

TEST(World, Has22Table1Clusters) {
  const auto world = table1_world();
  EXPECT_EQ(world.size(), 22u);
  EXPECT_EQ(world.front().name, "US (Boston, MA)");
  EXPECT_EQ(world.front().runs, 884);
}

TEST(World, RunCountsMatchTable1Order) {
  const auto world = table1_world();
  for (std::size_t i = 1; i < world.size(); ++i) {
    EXPECT_GE(world[i - 1].runs, world[i].runs) << "Table 1 is ordered by runs";
  }
}

TEST(World, CalibrationPlacesLteRelativeToWifi) {
  // High LTE-win clusters must have LTE medians above WiFi; low-win
  // clusters below (allowing the TCP-pipeline bias headroom).
  for (const auto& c : table1_world()) {
    if (c.lte_win_target >= 0.7) {
      EXPECT_GT(c.lte_rate.median_mbps, c.wifi_rate.median_mbps) << c.name;
    }
    if (c.lte_win_target <= 0.1) {
      EXPECT_LT(c.lte_rate.median_mbps, c.wifi_rate.median_mbps * 1.05) << c.name;
    }
  }
}

TEST(World, CalibrationHitsWinTargetEmpirically) {
  // Sample link rates directly.  The raw-rate win fraction intentionally
  // OVERSHOOTS the target: the calibration bakes in a TCP-pipeline bias
  // (TCP extracts less of a bursty LTE link), so the *measured* win
  // fraction — checked in campaign_test — lands on target while the
  // raw-rate fraction sits above it.
  const auto cluster = make_cluster("test", {0, 0}, 100, 0.40, 10.0);
  Rng rng{123};
  int wins = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double wifi = cluster.wifi_rate.sample(rng);
    const double lte = cluster.lte_rate.sample(rng);
    wins += lte > wifi;
  }
  const double raw = static_cast<double>(wins) / n;
  EXPECT_GT(raw, 0.40);
  EXPECT_LT(raw, 0.85);
}

TEST(World, RateSamplesStayInPhysicalRange) {
  Rng rng{5};
  const auto cluster = make_cluster("x", {0, 0}, 1, 0.5, 10.0);
  for (int i = 0; i < 1000; ++i) {
    const double r = cluster.wifi_rate.sample(rng);
    EXPECT_GE(r, 0.3);
    EXPECT_LE(r, 60.0);
  }
}

TEST(World, DelaySamplesStayInRange) {
  Rng rng{6};
  const auto cluster = make_cluster("x", {0, 0}, 1, 0.5, 10.0);
  for (int i = 0; i < 1000; ++i) {
    const Duration d = cluster.lte_delay.sample(rng);
    EXPECT_GE(d.usec(), msec(2).usec());
    EXPECT_LE(d.usec(), msec(400).usec());
  }
}

TEST(World, ZeroWinTargetIsClampedNotDegenerate) {
  const auto c = make_cluster("sweden", {59.6, 18.6}, 16, 0.0, 16.0);
  EXPECT_GT(c.lte_rate.median_mbps, 0.0);
  EXPECT_LT(c.lte_rate.median_mbps, c.wifi_rate.median_mbps / 2.0);
}

}  // namespace
}  // namespace mn
