// The middlebox strip-probability sweep through the campaign: the
// negotiated/achieved/fallback columns, their CSV round-trip, and the
// determinism contracts (parallel-vs-serial golden, cold/warm/resumed
// store caches) for a middlebox campaign.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "measure/campaign.hpp"
#include "store/run_store.hpp"

namespace mn {
namespace {

namespace fs = std::filesystem;

std::vector<ClusterSpec> tiny_world() {
  return {make_cluster("FastWiFi", {40.0, -70.0}, 12, 0.10, 14.0),
          make_cluster("FastLTE", {10.0, 100.0}, 12, 0.85, 4.0)};
}

CampaignOptions middlebox_campaign(double strip) {
  CampaignOptions opt;
  opt.run_scale = 0.25;  // 6 runs
  opt.incomplete_probability = 0.0;
  opt.transfer_bytes = 300'000;
  opt.mp_probe_bytes = 150'000;
  opt.middlebox_strip_probability = strip;
  return opt;
}

std::string campaign_bytes(const std::vector<RunRecord>& runs) {
  return to_csv(runs).str() + "\n===\n" + merge_run_metrics(runs).prometheus_text();
}

TEST(MiddleboxCampaign, ZeroKnobKeepsLegacyPlansAndColumnsEmpty) {
  const CampaignOptions opt = middlebox_campaign(0.0);
  for (const RunPlan& p : plan_campaign(tiny_world(), opt)) {
    EXPECT_FALSE(p.has_middlebox);
  }
  const auto runs = run_campaign(tiny_world(), opt);
  for (const auto& r : runs) EXPECT_FALSE(r.mp_probed);
  // The new columns exist but stay empty — a legacy-shaped dataset.
  const auto data = parse_csv(to_csv(runs).str());
  const auto c = data.col("negotiated_mp");
  for (const auto& row : data.rows) EXPECT_EQ(row[c], "");
}

TEST(MiddleboxCampaign, SweepProducesNegotiatedVersusAchievedSplit) {
  // At strip probability 1 every MP_CAPABLE dies: nothing negotiates.
  // At 0 every probe negotiates and achieves.  In between the fractions
  // separate (capable survives more often than capable AND join).
  const auto none = run_campaign(tiny_world(), middlebox_campaign(0.0));
  // 0.0 disables the probe entirely; use a tiny epsilon for "clean".
  const auto clean = run_campaign(tiny_world(), middlebox_campaign(1e-9));
  const auto hostile = run_campaign(tiny_world(), middlebox_campaign(1.0));
  for (const auto& r : none) EXPECT_FALSE(r.mp_probed);
  for (const auto& r : clean) {
    ASSERT_TRUE(r.mp_probed);
    EXPECT_TRUE(r.negotiated_mp);
    EXPECT_TRUE(r.achieved_mp);
    EXPECT_FALSE(r.failed) << r.failure_reason;
  }
  for (const auto& r : hostile) {
    ASSERT_TRUE(r.mp_probed);
    EXPECT_FALSE(r.negotiated_mp);
    EXPECT_FALSE(r.achieved_mp);
    EXPECT_FALSE(r.fallback_reason.empty());
    // Graceful degradation: a hostile middlebox must not fail the run.
    EXPECT_FALSE(r.failed) << r.failure_reason;
  }
}

TEST(MiddleboxCampaign, CsvRoundTripsNegotiationColumns) {
  const auto runs = complete_runs(run_campaign(tiny_world(), middlebox_campaign(0.5)));
  ASSERT_FALSE(runs.empty());
  const auto back = from_csv(parse_csv(to_csv(runs).str()));
  ASSERT_EQ(back.size(), runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(back[i].mp_probed, runs[i].mp_probed);
    EXPECT_EQ(back[i].negotiated_mp, runs[i].negotiated_mp);
    EXPECT_EQ(back[i].achieved_mp, runs[i].achieved_mp);
    EXPECT_EQ(back[i].fallback_reason, runs[i].fallback_reason);
  }
  EXPECT_EQ(to_csv(back).str(), to_csv(runs).str());
}

TEST(MiddleboxCampaign, RunRecordBlobRoundTripsNegotiationFields) {
  for (const auto& r : run_campaign(tiny_world(), middlebox_campaign(0.5))) {
    const RunRecord back = parse_run_record(serialize_run_record(r));
    EXPECT_EQ(back.mp_probed, r.mp_probed);
    EXPECT_EQ(back.negotiated_mp, r.negotiated_mp);
    EXPECT_EQ(back.achieved_mp, r.achieved_mp);
    EXPECT_EQ(back.fallback_reason, r.fallback_reason);
  }
}

// Golden parallel-vs-serial: a middlebox campaign's full observable
// output is byte-identical for every worker count (MN_THREADS contract).
TEST(MiddleboxCampaign, ParallelAndSerialAreByteIdentical) {
  CampaignOptions opt = middlebox_campaign(0.5);
  opt.parallelism = 0;
  const std::string golden = campaign_bytes(run_campaign(tiny_world(), opt));
  for (int workers : {1, 4}) {
    opt.parallelism = workers;
    EXPECT_EQ(campaign_bytes(run_campaign(tiny_world(), opt)), golden)
        << "workers=" << workers;
  }
}

// Cold/warm/resumed store caches reproduce the storeless golden bytes
// for a middlebox campaign (the kRunFormatVersion-keyed contract).
TEST(MiddleboxCampaign, ColdWarmAndResumedCachesAreByteIdentical) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "middlebox_campaign_cache";
  fs::remove_all(dir);
  CampaignOptions opt = middlebox_campaign(0.5);
  opt.parallelism = 0;
  const std::string golden = campaign_bytes(run_campaign(tiny_world(), opt));
  const auto plans = plan_campaign(tiny_world(), opt);
  ASSERT_GE(plans.size(), 4u);

  {
    store::RunStore store{dir.string()};
    opt.store = &store;
    const auto cold = run_campaign(tiny_world(), opt);
    EXPECT_EQ(campaign_bytes(cold), golden) << "cold";
    EXPECT_EQ(store.stats().hits, 0u);

    const auto warm = run_campaign(tiny_world(), opt);
    EXPECT_EQ(campaign_bytes(warm), golden) << "warm";
    EXPECT_EQ(store.stats().hits, warm.size());
    opt.store = nullptr;
  }

  // Resume: drop half the cached runs, rerun, golden bytes again with
  // exactly the missing half executed.
  fs::remove_all(dir);
  {
    store::RunStore half{dir.string()};
    for (std::size_t i = 0; i < plans.size() / 2; ++i) {
      half.put(scenario_key(plans[i], opt),
               serialize_run_record(execute_run(plans[i], opt)));
    }
  }
  store::RunStore store{dir.string()};
  opt.store = &store;
  const auto resumed = run_campaign(tiny_world(), opt);
  EXPECT_EQ(campaign_bytes(resumed), golden) << "resumed";
  EXPECT_EQ(store.stats().hits, plans.size() / 2);
  EXPECT_EQ(store.stats().misses, plans.size() - plans.size() / 2);
  fs::remove_all(dir);
}

TEST(MiddleboxCampaign, StripProbabilityKeysTheScenario) {
  // Different strip settings must never share cache entries; the same
  // settings must (keys are a pure function of the plan + options).
  const auto p_a = plan_campaign(tiny_world(), middlebox_campaign(0.3));
  const auto p_b = plan_campaign(tiny_world(), middlebox_campaign(0.7));
  ASSERT_EQ(p_a.size(), p_b.size());
  EXPECT_NE(scenario_key(p_a[0], middlebox_campaign(0.3)),
            scenario_key(p_b[0], middlebox_campaign(0.7)));
  EXPECT_EQ(scenario_key(p_a[0], middlebox_campaign(0.3)),
            scenario_key(plan_campaign(tiny_world(), middlebox_campaign(0.3))[0],
                         middlebox_campaign(0.3)));
}

}  // namespace
}  // namespace mn
