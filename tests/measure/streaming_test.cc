// StreamingRunStats: the O(clusters) aggregation layer between the
// shared world and Table-1 output — merge discipline, the RunRecord
// bridge from the private-link campaign, and the digest contract.
#include "measure/streaming.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "measure/campaign.hpp"
#include "measure/world.hpp"

namespace mn {
namespace {

RunRecord record(double wifi_down, double lte_down, bool failed = false) {
  RunRecord r;
  r.wifi_measured = true;
  r.lte_measured = true;
  r.wifi_down_mbps = wifi_down;
  r.lte_down_mbps = lte_down;
  r.wifi_rtt_ms = 40.0;
  r.lte_rtt_ms = 60.0;
  r.failed = failed;
  return r;
}

TEST(StreamingRunStats, RunRecordBridgeMatchesCampaignFiltering) {
  const auto world = table1_world();
  StreamingRunStats stats(world);
  ASSERT_EQ(stats.size(), world.size());

  stats.add_run_record(0, record(5.0, 10.0));          // LTE wins
  stats.add_run_record(0, record(10.0, 5.0));          // WiFi wins
  stats.add_run_record(0, record(1.0, 2.0, /*failed=*/true));  // filtered
  RunRecord wifi_only = record(7.0, 0.0);
  wifi_only.lte_measured = false;  // incomplete: out of the denominator
  stats.add_run_record(0, wifi_only);

  const StreamingClusterStats& c = stats.cluster(0);
  EXPECT_EQ(c.users_started, 4u);
  EXPECT_EQ(c.users_completed, 3u);
  EXPECT_EQ(c.both_measured, 2u);
  EXPECT_EQ(c.lte_wins, 1u);
  EXPECT_DOUBLE_EQ(c.lte_win_fraction(), 0.5);
  EXPECT_EQ(c.wifi_down_mbps.count(), 3u);  // wifi-only run still sampled
  EXPECT_EQ(c.lte_down_mbps.count(), 2u);
}

TEST(StreamingRunStats, IndexAlignedMergeIsExact) {
  const auto world = table1_world();
  StreamingRunStats whole(world);
  StreamingRunStats shard_a(world);
  StreamingRunStats shard_b(world);
  for (int i = 0; i < 40; ++i) {
    const auto rec = record(1.0 + i, 41.0 - i);
    const std::size_t cluster = static_cast<std::size_t>(i) % world.size();
    whole.add_run_record(cluster, rec);
    (i % 2 ? shard_a : shard_b).add_run_record(cluster, rec);
  }
  StreamingRunStats merged(world);
  merged.merge_from(shard_a);
  merged.merge_from(shard_b);
  EXPECT_EQ(merged.digest(), whole.digest());

  StreamingRunStats reversed(world);
  reversed.merge_from(shard_b);
  reversed.merge_from(shard_a);
  EXPECT_EQ(reversed.digest(), whole.digest());
}

TEST(StreamingRunStats, DigestDistinguishesDifferentData) {
  const auto world = table1_world();
  StreamingRunStats a(world);
  StreamingRunStats b(world);
  a.add_run_record(0, record(5.0, 10.0));
  b.add_run_record(0, record(5.0, 10.5));
  EXPECT_NE(a.digest(), b.digest());
}

TEST(StreamingRunStats, Table1HasOneRowPerClusterAndBoundedMemory) {
  const auto world = table1_world();
  StreamingRunStats stats(world);
  for (int i = 0; i < 10000; ++i) {
    stats.add_run_record(static_cast<std::size_t>(i) % world.size(),
                         record(3.0 + (i % 7), 5.0 + (i % 11)));
  }
  const Table t = stats.table1();
  EXPECT_EQ(t.rows().size(), world.size());
  // O(clusters), not O(runs): 22 clusters x 5 sketches stays in the
  // couple-of-MB range no matter how many records streamed through.
  EXPECT_LT(stats.memory_bytes(), 8u << 20);
  EXPECT_GT(stats.memory_bytes(), 0u);
}

}  // namespace
}  // namespace mn
