#include "measure/campaign.hpp"

#include <gtest/gtest.h>

namespace mn {
namespace {

std::vector<ClusterSpec> tiny_world() {
  return {make_cluster("FastWiFi", {40.0, -70.0}, 12, 0.10, 14.0),
          make_cluster("FastLTE", {10.0, 100.0}, 12, 0.85, 4.0)};
}

TEST(Campaign, ProducesRequestedRunCounts) {
  CampaignOptions opt;
  opt.incomplete_probability = 0.0;
  const auto runs = run_campaign(tiny_world(), opt);
  EXPECT_EQ(runs.size(), 24u);
  for (const auto& r : runs) EXPECT_TRUE(r.complete());
}

TEST(Campaign, RunScaleShrinksTheCampaign) {
  CampaignOptions opt;
  opt.run_scale = 0.25;
  const auto runs = run_campaign(tiny_world(), opt);
  EXPECT_EQ(runs.size(), 6u);
}

TEST(Campaign, IncompleteRunsAreGeneratedAndFiltered) {
  CampaignOptions opt;
  opt.incomplete_probability = 0.5;
  const auto runs = run_campaign(tiny_world(), opt);
  const auto complete = complete_runs(runs);
  EXPECT_LT(complete.size(), runs.size());
  for (const auto& r : complete) EXPECT_TRUE(r.complete());
}

TEST(Campaign, MeasuredThroughputsArePositiveAndPlausible) {
  CampaignOptions opt;
  opt.incomplete_probability = 0.0;
  opt.run_scale = 0.5;
  for (const auto& r : complete_runs(run_campaign(tiny_world(), opt))) {
    EXPECT_GT(r.wifi_down_mbps, 0.0);
    EXPECT_LT(r.wifi_down_mbps, 60.0);
    EXPECT_GT(r.lte_down_mbps, 0.0);
    EXPECT_GT(r.wifi_rtt_ms, 1.0);
    EXPECT_GT(r.lte_rtt_ms, 1.0);
  }
}

TEST(Campaign, WinFractionsFollowClusterCalibration) {
  CampaignOptions opt;
  opt.incomplete_probability = 0.0;
  opt.run_scale = 3.0;  // 36 runs per cluster
  const auto runs = complete_runs(run_campaign(tiny_world(), opt));
  int fast_wifi_wins = 0;
  int fast_wifi_n = 0;
  int fast_lte_wins = 0;
  int fast_lte_n = 0;
  for (const auto& r : runs) {
    if (r.cluster == "FastWiFi") {
      ++fast_wifi_n;
      fast_wifi_wins += r.lte_wins();
    } else {
      ++fast_lte_n;
      fast_lte_wins += r.lte_wins();
    }
  }
  EXPECT_LT(static_cast<double>(fast_wifi_wins) / fast_wifi_n, 0.35);
  EXPECT_GT(static_cast<double>(fast_lte_wins) / fast_lte_n, 0.6);
}

TEST(Campaign, DeterministicForSameSeed) {
  CampaignOptions opt;
  opt.run_scale = 0.25;
  const auto a = run_campaign(tiny_world(), opt);
  const auto b = run_campaign(tiny_world(), opt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].wifi_down_mbps, b[i].wifi_down_mbps);
    EXPECT_DOUBLE_EQ(a[i].lte_rtt_ms, b[i].lte_rtt_ms);
  }
}

TEST(Campaign, CsvRoundTripIsExact) {
  CampaignOptions opt;
  opt.incomplete_probability = 0.0;
  opt.run_scale = 0.25;
  const auto runs = complete_runs(run_campaign(tiny_world(), opt));
  ASSERT_FALSE(runs.empty());
  const auto back = from_csv(parse_csv(to_csv(runs).str()));
  ASSERT_EQ(back.size(), runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(back[i].cluster, runs[i].cluster);
    // Bit-exact: format_double guarantees the shortest round-trip form.
    EXPECT_EQ(back[i].pos.lat_deg, runs[i].pos.lat_deg);
    EXPECT_EQ(back[i].pos.lon_deg, runs[i].pos.lon_deg);
    EXPECT_EQ(back[i].wifi_up_mbps, runs[i].wifi_up_mbps);
    EXPECT_EQ(back[i].wifi_down_mbps, runs[i].wifi_down_mbps);
    EXPECT_EQ(back[i].lte_up_mbps, runs[i].lte_up_mbps);
    EXPECT_EQ(back[i].lte_down_mbps, runs[i].lte_down_mbps);
    EXPECT_EQ(back[i].wifi_rtt_ms, runs[i].wifi_rtt_ms);
    EXPECT_EQ(back[i].lte_rtt_ms, runs[i].lte_rtt_ms);
  }
  // And the serialized text itself is a fixed point.
  EXPECT_EQ(to_csv(back).str(), to_csv(runs).str());
}

// Backward compatibility, locked with a checked-in fixture: CSVs written
// before the observability subsystem added the m_retransmits/m_rto/
// m_drops columns must keep parsing cleanly, with an empty metrics
// snapshot (find_col, not col, on the optional columns).
TEST(Campaign, FromCsvParsesPreObservabilityFixture) {
  const auto runs = from_csv(load_csv(std::string{MN_TEST_DATA_DIR} +
                                      "/measure/pre_pr4_campaign.csv"));
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].cluster, "boston");
  EXPECT_EQ(runs[2].cluster, "seattle");
  EXPECT_DOUBLE_EQ(runs[0].wifi_down_mbps, 11.5);
  EXPECT_DOUBLE_EQ(runs[2].lte_rtt_ms, 61.5);
  for (const auto& r : runs) {
    EXPECT_TRUE(r.complete());
    // No metrics columns -> no reconstructed snapshot, zeroed metrics.
    EXPECT_TRUE(r.metrics.entries.empty());
    EXPECT_EQ(r.metrics.value_of("tcp.retransmits"), 0);
    EXPECT_EQ(r.metrics.sum_with_prefix("drop."), 0);
  }
  // Re-exporting legacy rows emits the modern columns with zeros.
  const std::string text = to_csv(runs).str();
  EXPECT_NE(text.find("m_retransmits"), std::string::npos);
  const auto back = from_csv(parse_csv(text));
  ASSERT_EQ(back.size(), runs.size());
  EXPECT_DOUBLE_EQ(back[1].lte_down_mbps, runs[1].lte_down_mbps);
}

TEST(Campaign, FromCsvRejectsMalformedRowsWithRowNumber) {
  const std::string header =
      "cluster,lat,lon,wifi_up,wifi_down,lte_up,lte_down,wifi_rtt_ms,lte_rtt_ms";
  // Non-numeric field: row is named in the error.
  try {
    (void)from_csv(parse_csv(header + "\nA,1,2,3,4,5,6,7,8\nB,1,2,junk,4,5,6,7,8\n"));
    FAIL() << "expected malformed row to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("row 2"), std::string::npos) << e.what();
    EXPECT_NE(std::string{e.what()}.find("junk"), std::string::npos) << e.what();
  }
  // Trailing garbage that std::stod would silently accept.
  EXPECT_THROW((void)from_csv(parse_csv(header + "\nA,1,2,3.5x,4,5,6,7,8\n")),
               std::runtime_error);
  // Hand-built short row: must be a clear error, not an out-of-bounds read.
  CsvData data = parse_csv(header + "\nA,1,2,3,4,5,6,7,8\n");
  data.rows.push_back({"B", "1", "2"});
  try {
    (void)from_csv(data);
    FAIL() << "expected short row to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("row 2"), std::string::npos) << e.what();
  }
  // Missing column: still the CsvData::col error.
  EXPECT_THROW((void)from_csv(parse_csv("cluster,lat\nA,1\n")), std::runtime_error);
}

// The plan/execute determinism contract: the execute phase owns all of
// its pre-drawn inputs, so the worker count can never change a byte of
// output.  to_csv serializes every double at full round-trip precision,
// making this a golden byte-identity check.
TEST(Campaign, ParallelOutputIsByteIdenticalToSerial) {
  CampaignOptions opt;
  opt.run_scale = 0.5;
  opt.incomplete_probability = 0.2;
  opt.fault_probability = 0.15;  // exercise the fault path too
  opt.parallelism = 0;
  const auto serial = run_campaign(tiny_world(), opt);
  const std::string golden = to_csv(serial).str();
  for (int workers : {1, 4}) {
    opt.parallelism = workers;
    const auto parallel = run_campaign(tiny_world(), opt);
    ASSERT_EQ(parallel.size(), serial.size()) << "workers=" << workers;
    EXPECT_EQ(to_csv(parallel).str(), golden) << "workers=" << workers;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].failed, serial[i].failed);
      EXPECT_EQ(parallel[i].failure_reason, serial[i].failure_reason);
      EXPECT_EQ(parallel[i].wifi_measured, serial[i].wifi_measured);
      EXPECT_EQ(parallel[i].lte_measured, serial[i].lte_measured);
    }
  }
}

TEST(Campaign, PlanPhaseIsCheapAndExecuteMatchesRunCampaign) {
  CampaignOptions opt;
  opt.run_scale = 0.25;
  const auto plans = plan_campaign(tiny_world(), opt);
  ASSERT_EQ(plans.size(), 6u);
  std::vector<RunRecord> records;
  records.reserve(plans.size());
  for (const auto& p : plans) records.push_back(execute_run(p, opt));
  EXPECT_EQ(to_csv(records).str(), to_csv(run_campaign(tiny_world(), opt)).str());
}

// Acceptance gate of the fault-injection PR: a campaign with 10% of its
// runs fault-injected finishes end to end — a faulted probe becomes a
// failed RunRecord with a reason, never an aborted campaign.
TEST(Campaign, SurvivesInjectedFaultsAndRecordsFailures) {
  CampaignOptions opt;
  opt.seed = 2;  // deterministic: this seed faults several of the 72 runs
  opt.incomplete_probability = 0.0;
  opt.run_scale = 3.0;
  opt.fault_probability = 0.10;
  const auto runs = run_campaign(tiny_world(), opt);
  EXPECT_EQ(runs.size(), 72u);
  int failed = 0;
  for (const auto& r : runs) {
    if (!r.failed) continue;
    ++failed;
    EXPECT_FALSE(r.failure_reason.empty());
    EXPECT_FALSE(r.complete());
  }
  EXPECT_GT(failed, 0);
  EXPECT_LT(failed, 72);
  EXPECT_EQ(complete_runs(runs).size(), runs.size() - static_cast<std::size_t>(failed));
}

TEST(Campaign, ZeroFaultProbabilityPreservesLegacyResults) {
  CampaignOptions legacy;
  legacy.run_scale = 0.5;
  CampaignOptions with_knob = legacy;
  with_knob.fault_probability = 0.0;  // default, spelled out
  const auto a = run_campaign(tiny_world(), legacy);
  const auto b = run_campaign(tiny_world(), with_knob);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].wifi_down_mbps, b[i].wifi_down_mbps);
    EXPECT_DOUBLE_EQ(a[i].lte_down_mbps, b[i].lte_down_mbps);
    EXPECT_FALSE(b[i].failed);
  }
}

TEST(Analysis, DiffDistributionsHaveRightSigns) {
  CampaignOptions opt;
  opt.incomplete_probability = 0.0;
  const auto runs = complete_runs(run_campaign(tiny_world(), opt));
  const auto a = analyze_campaign(runs);
  EXPECT_EQ(a.up_diff.size(), runs.size());
  EXPECT_EQ(a.down_diff.size(), runs.size());
  // Mixed world: both positive and negative diffs must exist.
  EXPECT_GT(a.down_diff.max(), 0.0);
  EXPECT_LT(a.down_diff.min(), 0.0);
  EXPECT_GT(a.lte_win_combined(), 0.0);
  EXPECT_LT(a.lte_win_combined(), 1.0);
}

TEST(Analysis, RttWinFractionIsSane) {
  CampaignOptions opt;
  opt.incomplete_probability = 0.0;
  opt.run_scale = 2.0;
  const auto a = analyze_campaign(complete_runs(run_campaign(tiny_world(), opt)));
  EXPECT_GE(a.lte_rtt_win(), 0.0);
  EXPECT_LE(a.lte_rtt_win(), 0.6);  // LTE usually has higher RTT
}

}  // namespace
}  // namespace mn
