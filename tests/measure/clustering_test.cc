#include "measure/clustering.hpp"

#include <gtest/gtest.h>

namespace mn {
namespace {

RunRecord run_at(double lat, double lon, const std::string& origin, bool lte_wins) {
  RunRecord r;
  r.pos = {lat, lon};
  r.cluster = origin;
  r.wifi_measured = r.lte_measured = true;
  r.wifi_down_mbps = lte_wins ? 5.0 : 10.0;
  r.lte_down_mbps = lte_wins ? 10.0 : 5.0;
  return r;
}

TEST(Clustering, EmptyInput) {
  const auto result = cluster_runs({});
  EXPECT_TRUE(result.clusters.empty());
  EXPECT_TRUE(result.assignment.empty());
}

TEST(Clustering, SinglePointSingleCluster) {
  const auto result = cluster_runs({run_at(42.4, -71.1, "Boston", false)});
  ASSERT_EQ(result.clusters.size(), 1u);
  EXPECT_EQ(result.clusters[0].runs, 1);
  EXPECT_EQ(result.clusters[0].label, "Boston");
}

TEST(Clustering, NearbyRunsGroupTogether) {
  std::vector<RunRecord> runs;
  for (int i = 0; i < 10; ++i) {
    runs.push_back(run_at(42.4 + i * 0.01, -71.1, "Boston", false));
  }
  const auto result = cluster_runs(runs, 100.0);
  EXPECT_EQ(result.clusters.size(), 1u);
  EXPECT_EQ(result.clusters[0].runs, 10);
}

TEST(Clustering, DistantRunsSplit) {
  std::vector<RunRecord> runs;
  runs.push_back(run_at(42.4, -71.1, "Boston", false));   // Boston
  runs.push_back(run_at(31.8, 35.0, "Israel", true));     // Israel
  runs.push_back(run_at(42.5, -71.0, "Boston", false));
  const auto result = cluster_runs(runs, 100.0);
  ASSERT_EQ(result.clusters.size(), 2u);
  EXPECT_EQ(result.clusters[0].runs, 2);  // sorted by size
  EXPECT_EQ(result.clusters[0].label, "Boston");
  EXPECT_EQ(result.clusters[1].label, "Israel");
}

TEST(Clustering, WinFractionPerCluster) {
  std::vector<RunRecord> runs;
  for (int i = 0; i < 8; ++i) runs.push_back(run_at(42.4, -71.1, "Boston", i < 2));
  const auto result = cluster_runs(runs);
  ASSERT_EQ(result.clusters.size(), 1u);
  EXPECT_NEAR(result.clusters[0].lte_win_fraction, 0.25, 1e-9);
}

TEST(Clustering, AssignmentMatchesClusterOrder) {
  std::vector<RunRecord> runs;
  runs.push_back(run_at(42.4, -71.1, "Boston", false));
  runs.push_back(run_at(31.8, 35.0, "Israel", false));
  runs.push_back(run_at(42.45, -71.05, "Boston", false));
  const auto result = cluster_runs(runs);
  ASSERT_EQ(result.assignment.size(), 3u);
  EXPECT_EQ(result.assignment[0], result.assignment[2]);
  EXPECT_NE(result.assignment[0], result.assignment[1]);
  // Assignments index into result.clusters.
  for (int a : result.assignment) {
    ASSERT_GE(a, 0);
    ASSERT_LT(a, static_cast<int>(result.clusters.size()));
  }
}

TEST(Clustering, RunsWithin200KmOfEachOther) {
  // The paper's property: all runs in a group are within 2r of each other.
  std::vector<RunRecord> runs;
  for (int i = 0; i < 30; ++i) {
    runs.push_back(run_at(42.0 + (i % 5) * 0.2, -71.0 - (i % 3) * 0.2, "Boston", false));
  }
  for (int i = 0; i < 30; ++i) {
    runs.push_back(run_at(26.0 + (i % 5) * 0.2, -80.2, "Miami", false));
  }
  const auto result = cluster_runs(runs, 100.0);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    for (std::size_t j = i + 1; j < runs.size(); ++j) {
      if (result.assignment[i] == result.assignment[j]) {
        EXPECT_LT(haversine_km(runs[i].pos, runs[j].pos), 200.0);
      }
    }
  }
}

}  // namespace
}  // namespace mn
