// The scheduler sweep through the campaign: the mp_scheduler knob
// selects the policy per probe, the energy/scheduler columns round-trip
// CSV and the record blob (v3), the knob keys middlebox scenarios (and
// leaves legacy keys alone), the determinism contracts hold (parallel
// golden, cold/warm/resumed caches), and a checked-in pre-PR7 v2 blob
// still parses with energy fields defaulted.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "measure/campaign.hpp"
#include "store/run_store.hpp"

namespace mn {
namespace {

namespace fs = std::filesystem;

std::vector<ClusterSpec> tiny_world() {
  return {make_cluster("FastWiFi", {40.0, -70.0}, 12, 0.10, 14.0),
          make_cluster("FastLTE", {10.0, 100.0}, 12, 0.85, 4.0)};
}

CampaignOptions scheduler_campaign(MpScheduler s) {
  CampaignOptions opt;
  opt.run_scale = 0.25;  // 6 runs
  opt.incomplete_probability = 0.0;
  opt.transfer_bytes = 300'000;
  opt.mp_probe_bytes = 150'000;
  // A vanishing strip probability enables the multipath probe (0.0
  // disables it) without making any middlebox hostile.
  opt.middlebox_strip_probability = 1e-9;
  opt.mp_scheduler = s;
  return opt;
}

std::string campaign_bytes(const std::vector<RunRecord>& runs) {
  return to_csv(runs).str() + "\n===\n" + merge_run_metrics(runs).prometheus_text();
}

TEST(SchedulerCampaign, SweepPopulatesEnergyAndSchedulerColumns) {
  for (int i = 0; i < kMpSchedulerCount; ++i) {
    const auto s = static_cast<MpScheduler>(i);
    const auto runs = run_campaign(tiny_world(), scheduler_campaign(s));
    for (const auto& r : runs) {
      ASSERT_TRUE(r.mp_probed);
      EXPECT_EQ(r.scheduler, to_string(s));
      // Every probe moved real bytes over WiFi; the radio model charges
      // at least one burst + tail for that.
      EXPECT_GT(r.energy_wifi_j, 0.0) << to_string(s);
      EXPECT_GE(r.energy_lte_j, 0.0) << to_string(s);
    }
  }
}

TEST(SchedulerCampaign, KnobIsInertWithoutMultipathProbes) {
  // With the probe disabled the scheduler knob must not leak into the
  // dataset (columns empty) nor into the cache keys (legacy contract).
  CampaignOptions opt = scheduler_campaign(MpScheduler::kEnergyAware);
  opt.middlebox_strip_probability = 0.0;
  const auto runs = run_campaign(tiny_world(), opt);
  for (const auto& r : runs) {
    EXPECT_FALSE(r.mp_probed);
    EXPECT_TRUE(r.scheduler.empty());
  }
  const auto data = parse_csv(to_csv(runs).str());
  const auto c_e = data.col("m_energy_wifi_j");
  const auto c_s = data.col("scheduler");
  for (const auto& row : data.rows) {
    EXPECT_EQ(row[c_e], "");
    EXPECT_EQ(row[c_s], "");
  }
}

TEST(SchedulerCampaign, CsvRoundTripsEnergyColumns) {
  const auto runs = complete_runs(
      run_campaign(tiny_world(), scheduler_campaign(MpScheduler::kEnergyAware)));
  ASSERT_FALSE(runs.empty());
  const auto back = from_csv(parse_csv(to_csv(runs).str()));
  ASSERT_EQ(back.size(), runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(back[i].energy_wifi_j, runs[i].energy_wifi_j);
    EXPECT_EQ(back[i].energy_lte_j, runs[i].energy_lte_j);
    EXPECT_EQ(back[i].scheduler, runs[i].scheduler);
  }
  // format_double emits the shortest round-trip form, so a second pass
  // through the CSV is byte-identical — energy columns included.
  EXPECT_EQ(to_csv(back).str(), to_csv(runs).str());
}

TEST(SchedulerCampaign, RunRecordBlobRoundTripsEnergyFields) {
  for (const auto& r :
       run_campaign(tiny_world(), scheduler_campaign(MpScheduler::kTailBatch))) {
    const RunRecord back = parse_run_record(serialize_run_record(r));
    EXPECT_EQ(back.energy_wifi_j, r.energy_wifi_j);
    EXPECT_EQ(back.energy_lte_j, r.energy_lte_j);
    EXPECT_EQ(back.scheduler, r.scheduler);
    EXPECT_EQ(back.mp_probed, r.mp_probed);
  }
}

TEST(SchedulerCampaign, SchedulerKeysTheScenario) {
  // Different policies simulate different packet schedules: they must
  // never share cache entries.  Same policy, same key (pure function).
  const auto lr = scheduler_campaign(MpScheduler::kLowestRtt);
  const auto ea = scheduler_campaign(MpScheduler::kEnergyAware);
  const auto p_lr = plan_campaign(tiny_world(), lr);
  const auto p_ea = plan_campaign(tiny_world(), ea);
  ASSERT_EQ(p_lr.size(), p_ea.size());
  EXPECT_NE(scenario_key(p_lr[0], lr), scenario_key(p_ea[0], ea));
  EXPECT_EQ(scenario_key(p_lr[0], lr),
            scenario_key(plan_campaign(tiny_world(), lr)[0], lr));

  // Legacy (no-probe) plans predate the knob; their keys must not move
  // when it changes, or every pre-PR7 cache would be invalidated.
  CampaignOptions legacy_a = lr;
  legacy_a.middlebox_strip_probability = 0.0;
  CampaignOptions legacy_b = ea;
  legacy_b.middlebox_strip_probability = 0.0;
  EXPECT_EQ(scenario_key(plan_campaign(tiny_world(), legacy_a)[0], legacy_a),
            scenario_key(plan_campaign(tiny_world(), legacy_b)[0], legacy_b));
}

// Golden parallel-vs-serial: a scheduler-sweep campaign's observable
// output is byte-identical for every worker count (MN_THREADS contract).
TEST(SchedulerCampaign, ParallelAndSerialAreByteIdentical) {
  for (MpScheduler s : {MpScheduler::kEnergyAware, MpScheduler::kRedundant}) {
    CampaignOptions opt = scheduler_campaign(s);
    opt.parallelism = 0;
    const std::string golden = campaign_bytes(run_campaign(tiny_world(), opt));
    for (int workers : {1, 4}) {
      opt.parallelism = workers;
      EXPECT_EQ(campaign_bytes(run_campaign(tiny_world(), opt)), golden)
          << to_string(s) << " workers=" << workers;
    }
  }
}

// Cold/warm/resumed store caches reproduce the storeless golden bytes
// for a scheduler-sweep campaign — energy values survive the blob.
TEST(SchedulerCampaign, ColdWarmAndResumedCachesAreByteIdentical) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "scheduler_campaign_cache";
  fs::remove_all(dir);
  CampaignOptions opt = scheduler_campaign(MpScheduler::kEnergyAware);
  opt.parallelism = 0;
  const std::string golden = campaign_bytes(run_campaign(tiny_world(), opt));
  const auto plans = plan_campaign(tiny_world(), opt);
  ASSERT_GE(plans.size(), 4u);

  {
    store::RunStore store{dir.string()};
    opt.store = &store;
    const auto cold = run_campaign(tiny_world(), opt);
    EXPECT_EQ(campaign_bytes(cold), golden) << "cold";
    EXPECT_EQ(store.stats().hits, 0u);

    const auto warm = run_campaign(tiny_world(), opt);
    EXPECT_EQ(campaign_bytes(warm), golden) << "warm";
    EXPECT_EQ(store.stats().hits, warm.size());
    opt.store = nullptr;
  }

  fs::remove_all(dir);
  {
    store::RunStore half{dir.string()};
    for (std::size_t i = 0; i < plans.size() / 2; ++i) {
      half.put(scenario_key(plans[i], opt),
               serialize_run_record(execute_run(plans[i], opt)));
    }
  }
  store::RunStore store{dir.string()};
  opt.store = &store;
  const auto resumed = run_campaign(tiny_world(), opt);
  EXPECT_EQ(campaign_bytes(resumed), golden) << "resumed";
  EXPECT_EQ(store.stats().hits, plans.size() / 2);
  EXPECT_EQ(store.stats().misses, plans.size() - plans.size() / 2);
  fs::remove_all(dir);
}

// A pre-PR7 cache holds version-2 blobs: no energy fields, no scheduler
// string.  The checked-in fixture (written by the v2 serializer) must
// parse forever, with the new fields at their documented defaults.
TEST(SchedulerCampaign, PrePr7V2BlobParsesWithEnergyDefaults) {
  const fs::path p = fs::path(MN_TEST_DATA_DIR) / "measure" /
                     "pre_pr7_run_record_v2.bin";
  std::ifstream in{p, std::ios::binary};
  ASSERT_TRUE(in.is_open()) << p;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string blob = buf.str();
  ASSERT_FALSE(blob.empty());
  ASSERT_EQ(static_cast<unsigned char>(blob[0]), 2u) << "fixture is not v2";

  const RunRecord rec = parse_run_record(blob);
  EXPECT_EQ(rec.cluster, "FixtureTown");
  EXPECT_DOUBLE_EQ(rec.pos.lat_deg, 40.5);
  EXPECT_DOUBLE_EQ(rec.pos.lon_deg, -73.25);
  EXPECT_TRUE(rec.mp_probed);
  EXPECT_TRUE(rec.negotiated_mp);
  EXPECT_TRUE(rec.achieved_mp);
  EXPECT_EQ(rec.metrics.value_of("tcp.retransmits"), 3);
  // The v3 additions default: zero joules, empty scheduler.
  EXPECT_EQ(rec.energy_wifi_j, 0.0);
  EXPECT_EQ(rec.energy_lte_j, 0.0);
  EXPECT_TRUE(rec.scheduler.empty());

  // And a record round-tripped today re-serializes as v3.
  const std::string v3 = serialize_run_record(rec);
  EXPECT_EQ(static_cast<unsigned char>(v3[0]), 3u);
  const RunRecord again = parse_run_record(v3);
  EXPECT_EQ(again.cluster, rec.cluster);
  EXPECT_EQ(again.scheduler, rec.scheduler);
}

}  // namespace
}  // namespace mn
