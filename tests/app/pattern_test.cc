#include "app/pattern.hpp"

#include <gtest/gtest.h>

namespace mn {
namespace {

TEST(Patterns, Figure17ProducesSixScenarios) {
  const auto patterns = figure17_patterns(42);
  ASSERT_EQ(patterns.size(), 6u);
  EXPECT_EQ(patterns[0].name, "cnn-launch");
  EXPECT_EQ(patterns[3].name, "imdb-click");
  EXPECT_EQ(patterns[5].name, "dropbox-click");
}

TEST(Patterns, ClassificationMatchesThePaper) {
  // Fig 17d and 17f are long-flow dominated; the rest short-flow.
  const auto patterns = figure17_patterns(42);
  EXPECT_EQ(classify(patterns[0]), AppClass::kShortFlowDominated);  // cnn launch
  EXPECT_EQ(classify(patterns[1]), AppClass::kShortFlowDominated);  // cnn click
  EXPECT_EQ(classify(patterns[2]), AppClass::kShortFlowDominated);  // imdb launch
  EXPECT_EQ(classify(patterns[3]), AppClass::kLongFlowDominated);   // imdb click
  EXPECT_EQ(classify(patterns[4]), AppClass::kShortFlowDominated);  // dropbox launch
  EXPECT_EQ(classify(patterns[5]), AppClass::kLongFlowDominated);   // dropbox click
}

TEST(Patterns, FlowCountsResembleFigure17) {
  const auto patterns = figure17_patterns(42);
  EXPECT_NEAR(patterns[0].flow_count(), 20, 2);  // cnn launch ~20 flows
  EXPECT_NEAR(patterns[2].flow_count(), 14, 2);  // imdb launch ~14
  EXPECT_NEAR(patterns[5].flow_count(), 12, 2);  // dropbox click ~12
}

TEST(Patterns, LongFlowsCarryMostBytes) {
  const auto patterns = figure17_patterns(42);
  const auto& dropbox = patterns[5];
  EXPECT_GT(dropbox.largest_flow_bytes(), 3'000'000);
  EXPECT_GT(static_cast<double>(dropbox.largest_flow_bytes()) /
                static_cast<double>(dropbox.total_bytes()),
            0.7);
}

TEST(Patterns, DeterministicPerSeed) {
  const auto a = figure17_patterns(7);
  const auto b = figure17_patterns(7);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[1].total_bytes(), b[1].total_bytes());
  const auto c = figure17_patterns(8);
  EXPECT_NE(a[1].total_bytes(), c[1].total_bytes());
}

TEST(Patterns, StartOffsetsSortedAndBounded) {
  for (const auto& p : figure17_patterns(42)) {
    for (std::size_t i = 1; i < p.flows.size(); ++i) {
      EXPECT_LE(p.flows[i - 1].start_offset.usec(), p.flows[i].start_offset.usec() +
                                                        sec(10).usec());
    }
    for (const auto& f : p.flows) {
      EXPECT_GE(f.start_offset.usec(), 0);
      EXPECT_LE(f.start_offset.usec(), sec(10).usec());
    }
  }
}

TEST(Patterns, ClassifierEdgeCases) {
  AppPattern p;
  p.name = "empty";
  EXPECT_EQ(classify(p), AppClass::kShortFlowDominated);
  // One 600 KB flow: absolute threshold trips.
  AppFlow f;
  f.exchanges.push_back(synthetic_exchange(200, 600'000));
  p.flows.push_back(f);
  EXPECT_EQ(classify(p), AppClass::kLongFlowDominated);
}

TEST(Patterns, StoreRoundTripPreservesResponses) {
  const auto patterns = figure17_patterns(42);
  const auto& cnn = patterns[0];
  const RecordStore store = pattern_to_store(cnn);
  EXPECT_GT(store.size(), cnn.flow_count());  // >= 1 exchange per flow
  const AppPattern replayed = pattern_via_store(cnn, store);
  ASSERT_EQ(replayed.flows.size(), cnn.flows.size());
  EXPECT_EQ(replayed.total_bytes(), cnn.total_bytes());
}

TEST(Patterns, ReplayThroughStoreMatchesDespiteChangedTimeHeaders) {
  auto patterns = figure17_patterns(42);
  const RecordStore store = pattern_to_store(patterns[0]);
  // Simulate replay-time requests with a different If-Modified-Since.
  AppPattern mutated = patterns[0];
  for (auto& flow : mutated.flows) {
    for (auto& e : flow.exchanges) {
      for (auto& h : e.request.headers) {
        if (h.name == "If-Modified-Since") h.value = "Thu, 02 Jul 2026 00:00:00 GMT";
      }
      e.response.body_bytes = 0;  // must be restored from the store
    }
  }
  const AppPattern replayed = pattern_via_store(mutated, store);
  EXPECT_EQ(replayed.total_bytes(), patterns[0].total_bytes());
}

}  // namespace
}  // namespace mn
