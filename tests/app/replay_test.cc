#include "app/replay.hpp"

#include <gtest/gtest.h>

namespace mn {
namespace {

LinkSpec mk(double mbps, Duration delay) {
  LinkSpec s;
  s.rate_mbps = mbps;
  s.one_way_delay = delay;
  s.queue_packets = 64;
  return s;
}

MpNetworkSetup net(double wifi, double lte) {
  return symmetric_setup(mk(wifi, msec(10)), mk(lte, msec(30)));
}

AppPattern small_pattern() {
  Rng rng{1};
  AppPattern p = dropbox_launch(rng);  // 6 small flows: cheap to replay
  return p;
}

TEST(ReplayApp, CompletesAndReportsResponseTime) {
  const auto r = replay_app(small_pattern(), net(10, 8),
                            TransportConfig::single_path(PathId::kWifi));
  EXPECT_TRUE(r.all_complete);
  EXPECT_GT(r.response_time_s, 0.0);
  EXPECT_LT(r.response_time_s, 30.0);
  EXPECT_EQ(r.flows.size(), small_pattern().flow_count());
}

TEST(ReplayApp, EmptyPatternIsTrivial) {
  AppPattern p;
  const auto r = replay_app(p, net(10, 8), TransportConfig::single_path(PathId::kWifi));
  EXPECT_TRUE(r.all_complete);
  EXPECT_DOUBLE_EQ(r.response_time_s, 0.0);
}

TEST(ReplayApp, FasterNetworkGivesFasterResponse) {
  const auto pattern = small_pattern();
  const auto fast = replay_app(pattern, net(20, 1),
                               TransportConfig::single_path(PathId::kWifi));
  const auto slow = replay_app(pattern, net(20, 1),
                               TransportConfig::single_path(PathId::kLte));
  ASSERT_TRUE(fast.all_complete);
  ASSERT_TRUE(slow.all_complete);
  EXPECT_LT(fast.response_time_s, slow.response_time_s);
}

TEST(ReplayApp, MptcpCompletesLongFlowPattern) {
  Rng rng{2};
  const AppPattern p = dropbox_click(rng);
  const auto r = replay_app(p, net(8, 8),
                            TransportConfig::mptcp(PathId::kWifi, CcAlgo::kCoupled));
  EXPECT_TRUE(r.all_complete);
}

TEST(ReplayApp, DeterministicAcrossRuns) {
  const auto pattern = small_pattern();
  const auto a = replay_app(pattern, net(10, 8),
                            TransportConfig::mptcp(PathId::kLte, CcAlgo::kDecoupled));
  const auto b = replay_app(pattern, net(10, 8),
                            TransportConfig::mptcp(PathId::kLte, CcAlgo::kDecoupled));
  EXPECT_DOUBLE_EQ(a.response_time_s, b.response_time_s);
}

TEST(ReplayAllConfigs, ProducesAllSixTimes) {
  const auto times = replay_all_configs(small_pattern(), net(10, 8));
  ASSERT_EQ(times.size(), 6u);
  for (const auto& [name, t] : times) {
    EXPECT_GT(t, 0.0) << name;
  }
  // Feed straight into the oracle machinery.
  const auto report = make_oracle_report(times);
  EXPECT_LE(report.single_path_oracle, report.wifi_tcp);
}

}  // namespace
}  // namespace mn
