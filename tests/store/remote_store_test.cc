// RemoteStore <-> StoreServer: the client/server pair over a real Unix
// socket, in-process.  Round trips, degradation on every failure mode,
// and thread-safety of the shared client.
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "store/remote/client.hpp"
#include "store/remote/server.hpp"
#include "store/remote/socket.hpp"
#include "store/run_store.hpp"

namespace mn::store::remote {
namespace {

namespace fs = std::filesystem;

ScenarioKey key_of(std::uint64_t hi, std::uint64_t lo) { return ScenarioKey{hi, lo}; }

class RemoteStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = fs::path(::testing::TempDir()) /
            ("remote_" + std::string{::testing::UnitTest::GetInstance()
                                         ->current_test_info()
                                         ->name()});
    fs::remove_all(base_);
    fs::create_directories(base_);
  }
  void TearDown() override {
    stop_server();
    fs::remove_all(base_);
  }

  [[nodiscard]] std::string store_dir() const { return (base_ / "store").string(); }
  [[nodiscard]] std::string sock() const { return (base_ / "mn.sock").string(); }

  void start_server() {
    server_ = std::make_unique<StoreServer>(StoreServerOptions{store_dir(), sock()});
    server_thread_ = std::thread([this] { server_->run(); });
  }
  void stop_server() {
    if (server_) server_->stop();
    if (server_thread_.joinable()) server_thread_.join();
    server_.reset();
  }

  [[nodiscard]] RemoteStore make_client(int max_attempts = 3) const {
    RemoteStoreOptions opt;
    opt.endpoint = sock();
    opt.max_attempts = max_attempts;
    opt.initial_backoff = std::chrono::milliseconds{1};
    opt.max_backoff = std::chrono::milliseconds{5};
    opt.connect_timeout = std::chrono::milliseconds{500};
    opt.io_timeout = std::chrono::milliseconds{2000};
    return RemoteStore{std::move(opt)};
  }

  fs::path base_;
  std::unique_ptr<StoreServer> server_;
  std::thread server_thread_;
};

TEST_F(RemoteStoreTest, PutLookupRoundTripsThroughTheServer) {
  start_server();
  auto client = make_client();
  EXPECT_TRUE(client.ping());

  EXPECT_FALSE(client.lookup(key_of(1, 2)).has_value());
  client.put(key_of(1, 2), "hello over the wire");
  EXPECT_EQ(client.lookup(key_of(1, 2)), "hello over the wire");
  client.put(key_of(1, 2), "superseded");
  EXPECT_EQ(client.lookup(key_of(1, 2)), "superseded");
  client.put(key_of(3, 4), std::string(100'000, 'x'));  // a fat blob
  EXPECT_EQ(client.lookup(key_of(3, 4))->size(), 100'000u);

  const auto s = client.stats();
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.puts, 3u);
  EXPECT_EQ(s.degraded, 0u);

  stop_server();
  // Durability: what the server appended is an ordinary MNRS1 store.
  RunStore disk{store_dir()};
  EXPECT_EQ(disk.size(), 2u);
  EXPECT_EQ(disk.lookup(key_of(1, 2)), "superseded");
  EXPECT_TRUE(verify_store(store_dir()).ok());
}

TEST_F(RemoteStoreTest, LookupManyBatchesAndPreservesOrder) {
  start_server();
  auto client = make_client();
  std::vector<ScenarioKey> keys;
  // More than one MULTI_GET chunk, hits interleaved with misses.
  for (std::uint64_t i = 0; i < wire::kMultiGetBatch + 50; ++i) {
    keys.push_back(key_of(i, i * 3));
    if (i % 2 == 0) client.put(keys.back(), "blob-" + std::to_string(i));
  }
  const auto blobs = client.lookup_many(keys);
  ASSERT_EQ(blobs.size(), keys.size());
  for (std::uint64_t i = 0; i < blobs.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(blobs[i], "blob-" + std::to_string(i));
    } else {
      EXPECT_FALSE(blobs[i].has_value());
    }
  }
  // Exactly ceil(n / batch) = 2 round trips on the server side.
  EXPECT_EQ(server_->stats().multi_gets, 2u);
}

TEST_F(RemoteStoreTest, ServerLoadsExistingSegmentsAndServesThem) {
  {
    RunStore local{store_dir()};
    local.put(key_of(9, 9), "written locally before the server started");
  }
  start_server();
  auto client = make_client();
  EXPECT_EQ(client.lookup(key_of(9, 9)), "written locally before the server started");
  EXPECT_EQ(server_->stats().entries, 1u);
}

TEST_F(RemoteStoreTest, DeadEndpointDegradesToMissesNeverThrows) {
  // No server at all: every operation degrades, nothing throws.
  auto client = make_client(/*max_attempts=*/2);
  EXPECT_FALSE(client.lookup(key_of(1, 1)).has_value());
  client.put(key_of(1, 1), "dropped");
  EXPECT_FALSE(client.ping());
  const auto blobs = client.lookup_many({key_of(1, 1), key_of(2, 2)});
  EXPECT_FALSE(blobs[0].has_value());
  EXPECT_FALSE(blobs[1].has_value());
  const auto s = client.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.puts, 0u);
  EXPECT_GT(s.degraded, 0u);
  // The circuit breaker answered some of those without a socket.
  EXPECT_GT(s.skipped, 0u);
}

TEST_F(RemoteStoreTest, ServerKilledMidSessionDegradesThenRecovers) {
  start_server();
  auto client = make_client(/*max_attempts=*/1);
  client.put(key_of(5, 5), "before the kill");
  EXPECT_EQ(client.lookup(key_of(5, 5)), "before the kill");

  stop_server();
  // Degraded, not broken.
  EXPECT_FALSE(client.lookup(key_of(5, 5)).has_value());
  EXPECT_GT(client.stats().degraded, 0u);

  // A new server over the same directory serves the old record; the
  // client reconnects through its breaker within max_skip operations.
  start_server();
  std::optional<std::string> back;
  for (int i = 0; i < 200 && !back; ++i) back = client.lookup(key_of(5, 5));
  EXPECT_EQ(back, "before the kill");
  EXPECT_GE(client.stats().reconnects, 1u);
}

TEST_F(RemoteStoreTest, GarbageServerIsAProtocolErrorNotData) {
  // A listener that answers every frame with garbage bytes.
  const Endpoint ep = parse_endpoint(sock());
  const int listen_fd = listen_endpoint(ep);
  std::thread garbage([listen_fd] {
    for (;;) {
      struct pollfd p = {listen_fd, POLLIN, 0};
      if (::poll(&p, 1, 2000) <= 0) break;
      const int c = ::accept(listen_fd, nullptr, nullptr);
      if (c < 0) break;
      char buf[4096];
      if (::recv(c, buf, sizeof buf, 0) > 0) {
        const char junk[] = "HTTP/1.1 200 OK\r\n\r\nnot MNSP1 at all";
        (void)::send(c, junk, sizeof junk, MSG_NOSIGNAL);
      }
      ::close(c);
    }
  });

  auto client = make_client(/*max_attempts=*/2);
  EXPECT_FALSE(client.lookup(key_of(1, 1)).has_value());
  const auto s = client.stats();
  EXPECT_GT(s.protocol_errors, 0u);
  EXPECT_GT(s.degraded, 0u);
  ::close(listen_fd);
  garbage.join();
}

TEST_F(RemoteStoreTest, SecondServerOnTheSameDirectoryFailsFast) {
  start_server();
  EXPECT_THROW(
      StoreServer({store_dir(), (base_ / "other.sock").string()}),
      std::runtime_error);
}

TEST_F(RemoteStoreTest, TcpEndpointWorksEndToEnd) {
  server_ = std::make_unique<StoreServer>(
      StoreServerOptions{store_dir(), "127.0.0.1:0"});
  const std::uint16_t port = server_->tcp_port();
  ASSERT_GT(port, 0);
  server_thread_ = std::thread([this] { server_->run(); });

  RemoteStoreOptions opt;
  opt.endpoint = "127.0.0.1:" + std::to_string(port);
  RemoteStore client{std::move(opt)};
  EXPECT_TRUE(client.ping());
  client.put(key_of(8, 8), "over tcp");
  EXPECT_EQ(client.lookup(key_of(8, 8)), "over tcp");
}

TEST_F(RemoteStoreTest, ServerStatsAndMetricsExposeTraffic) {
  start_server();
  auto client = make_client();
  client.put(key_of(1, 1), "x");
  (void)client.lookup(key_of(1, 1));
  (void)client.lookup(key_of(2, 2));

  const auto remote_stats = client.server_stats();
  ASSERT_TRUE(remote_stats.has_value());
  EXPECT_EQ(remote_stats->puts, 1u);
  EXPECT_EQ(remote_stats->gets, 2u);
  EXPECT_EQ(remote_stats->hits, 1u);
  EXPECT_EQ(remote_stats->misses, 1u);
  EXPECT_EQ(remote_stats->entries, 1u);
  EXPECT_GT(remote_stats->bytes_appended, 0u);

  const std::string server_text = server_->metrics_snapshot().prometheus_text();
  EXPECT_NE(server_text.find("store_server_puts 1"), std::string::npos);
  const std::string client_text = client.metrics_snapshot().prometheus_text();
  EXPECT_NE(client_text.find("store_remote_hits 1"), std::string::npos);
  EXPECT_NE(client_text.find("store_remote_puts 1"), std::string::npos);
}

// Named "Concurrent" so the TSan CI job picks it up: many threads
// hammer one shared RemoteStore, which must serialize cleanly.
TEST_F(RemoteStoreTest, ConcurrentClientsShareOneRemoteStoreSafely) {
  start_server();
  auto client = make_client();
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&client, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const auto key = key_of(static_cast<std::uint64_t>(t),
                                static_cast<std::uint64_t>(i));
        client.put(key, "t" + std::to_string(t) + "-" + std::to_string(i));
        EXPECT_EQ(client.lookup(key), "t" + std::to_string(t) + "-" + std::to_string(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto s = client.stats();
  EXPECT_EQ(s.puts, static_cast<std::uint64_t>(kThreads * kOpsPerThread));
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kThreads * kOpsPerThread));
  EXPECT_EQ(s.degraded, 0u);
  EXPECT_EQ(server_->stats().entries, static_cast<std::uint64_t>(kThreads * kOpsPerThread));
}

}  // namespace
}  // namespace mn::store::remote
