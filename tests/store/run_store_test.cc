#include "store/run_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

namespace mn::store {
namespace {

namespace fs = std::filesystem;

class RunStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("runstore_" + std::string{::testing::UnitTest::GetInstance()
                                          ->current_test_info()
                                          ->name()});
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string dir() const { return dir_.string(); }

  fs::path dir_;
};

TEST_F(RunStoreTest, PutLookupAndReopenPersistence) {
  {
    RunStore store{dir()};
    EXPECT_EQ(store.size(), 0u);
    EXPECT_FALSE(store.lookup({1, 1}).has_value());
    store.put({1, 1}, "one");
    store.put({2, 2}, "two");
    EXPECT_TRUE(store.contains({1, 1}));
    EXPECT_EQ(store.lookup({1, 1}).value(), "one");
    const auto s = store.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.puts, 2u);
    EXPECT_GT(s.bytes_written, 0u);
  }
  RunStore again{dir()};
  EXPECT_EQ(again.size(), 2u);
  EXPECT_EQ(again.lookup({2, 2}).value(), "two");
}

TEST_F(RunStoreTest, LaterPutsSupersedeAcrossSegments) {
  {
    RunStore store{dir()};
    store.put({1, 1}, "old");
  }
  {
    RunStore store{dir()};  // new open = new segment
    store.put({1, 1}, "new");
    EXPECT_EQ(store.size(), 1u);
  }
  RunStore store{dir()};
  EXPECT_EQ(store.stats().segments_loaded, 2u);
  EXPECT_EQ(store.lookup({1, 1}).value(), "new");
}

TEST_F(RunStoreTest, UnsealedActiveSegmentSurvivesKill) {
  {
    RunStore store{dir()};
    store.put({1, 1}, "alpha");
    store.put({2, 2}, "bravo");
    // Simulate a kill: no seal_active(), and tear the segment's tail as
    // if the process died mid-append.
    store.seal_active();  // RunStore seals in its destructor anyway...
  }
  // ...so instead damage the file after the fact: append garbage bytes
  // (a torn in-flight frame) to the newest segment.
  const auto files = list_segment_files(dir());
  ASSERT_EQ(files.size(), 1u);
  {
    std::ofstream out(files[0], std::ios::binary | std::ios::app);
    out << "\x03\x00";  // torn frame header
  }
  RunStore store{dir()};
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.lookup({1, 1}).value(), "alpha");
  EXPECT_GE(store.stats().torn_frames, 1u);
}

TEST_F(RunStoreTest, CompactMergesToOneSealedSegment) {
  {
    RunStore a{dir()};
    a.put({1, 1}, "old");
    a.put({2, 2}, "two");
  }
  {
    RunStore b{dir()};
    b.put({1, 1}, "new");
    b.put({3, 3}, "three");
  }
  {
    RunStore c{dir()};
    EXPECT_EQ(c.stats().segments_loaded, 2u);
    c.compact();
  }
  const auto files = list_segment_files(dir());
  ASSERT_EQ(files.size(), 1u);
  const VerifyReport report = verify_store(dir());
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.sealed_segments, 1u);
  EXPECT_EQ(report.records, 3u);  // superseded duplicate dropped
  RunStore store{dir()};
  EXPECT_EQ(store.lookup({1, 1}).value(), "new");
  EXPECT_EQ(store.lookup({3, 3}).value(), "three");
}

TEST_F(RunStoreTest, ForeignAndRefusedFilesAreSkippedCleanly) {
  {
    RunStore store{dir()};
    store.put({1, 1}, "keep");
  }
  // A foreign file and a future-format segment in the same directory.
  { std::ofstream{(dir_ / "notes.txt")} << "not a segment"; }
  { std::ofstream{(dir_ / "seg-000099.mnrs"), std::ios::binary} << "MNRS9\nxxxx"; }
  RunStore store{dir()};
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.stats().segments_loaded, 1u);
  EXPECT_EQ(store.stats().segments_skipped, 1u);
  // New segments must not collide with the refused high-numbered file.
  store.put({2, 2}, "fresh");
  store.seal_active();
  RunStore again{dir()};
  EXPECT_EQ(again.size(), 2u);
}

TEST_F(RunStoreTest, VerifyReportsDamage) {
  {
    RunStore store{dir()};
    store.put({1, 1}, "alpha");
  }
  EXPECT_TRUE(verify_store(dir()).ok());
  const auto files = list_segment_files(dir());
  ASSERT_EQ(files.size(), 1u);
  {
    std::ofstream out(files[0], std::ios::binary | std::ios::app);
    out << "torn";
  }
  const VerifyReport damaged = verify_store(dir());
  EXPECT_FALSE(damaged.ok());
  EXPECT_GE(damaged.torn_frames, 1u);
  EXPECT_NE(damaged.text.find("torn"), std::string::npos);
}

TEST_F(RunStoreTest, MetricsSnapshotExportsStoreCounters) {
  RunStore store{dir()};
  store.put({1, 1}, "x");
  (void)store.lookup({1, 1});
  (void)store.lookup({9, 9});
  const auto snap = store.metrics_snapshot();
  EXPECT_EQ(snap.value_of("store.hits"), 1);
  EXPECT_EQ(snap.value_of("store.misses"), 1);
  EXPECT_EQ(snap.value_of("store.puts"), 1);
  EXPECT_GT(snap.value_of("store.bytes_written"), 0);
  EXPECT_EQ(snap.value_of("store.torn_frames"), 0);
  EXPECT_EQ(snap.value_of("store.entries"), 1);
}

TEST_F(RunStoreTest, ConcurrentPutsAndLookupsAreSafe) {
  RunStore store{dir()};
  std::vector<std::thread> workers;
  workers.reserve(4);
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&store, w] {
      for (std::uint64_t i = 0; i < 50; ++i) {
        const ScenarioKey key{static_cast<std::uint64_t>(w), i};
        store.put(key, "blob-" + std::to_string(i));
        EXPECT_TRUE(store.lookup(key).has_value());
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(store.size(), 200u);
  store.seal_active();
  EXPECT_TRUE(verify_store(dir()).ok());
}

TEST_F(RunStoreTest, SortedEntriesAreKeyOrdered) {
  RunStore store{dir()};
  store.put({2, 0}, "b");
  store.put({1, 5}, "a");
  store.put({2, 1}, "c");
  const auto entries = store.sorted_entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_TRUE(entries[0].first < entries[1].first);
  EXPECT_TRUE(entries[1].first < entries[2].first);
}

}  // namespace
}  // namespace mn::store
