#include "store/key.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace mn::store {
namespace {

ScenarioKey key_of(std::string_view domain, double x) {
  KeyBuilder b{domain};
  b.f64(x);
  return b.finish();
}

TEST(ScenarioKey, DeterministicAndHexStable) {
  KeyBuilder a{"test"};
  a.u64(7).str("hello").f64(1.5).boolean(true);
  KeyBuilder b{"test"};
  b.u64(7).str("hello").f64(1.5).boolean(true);
  EXPECT_EQ(a.finish(), b.finish());
  const std::string hex = a.finish().hex();
  EXPECT_EQ(hex.size(), 32u);
  EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(hex, b.finish().hex());
}

TEST(ScenarioKey, EveryFieldChangesTheKey) {
  const ScenarioKey base = key_of("test", 1.0);
  EXPECT_NE(base, key_of("test", 2.0));
  EXPECT_NE(base, key_of("other-domain", 1.0));
  // Version salt: identical fields under a bumped version never collide
  // (the clean-miss invalidation contract).
  KeyBuilder salted{"test", kRunFormatVersion + 1};
  salted.f64(1.0);
  EXPECT_NE(base, salted.finish());
}

TEST(ScenarioKey, StringsAreLengthPrefixed) {
  KeyBuilder a{"test"};
  a.str("ab").str("c");
  KeyBuilder b{"test"};
  b.str("a").str("bc");
  EXPECT_NE(a.finish(), b.finish());
}

TEST(ScenarioKey, DoublesHashBitExactly) {
  // -0.0 == 0.0 arithmetically but has a different bit pattern: the key
  // must distinguish them (determinism beats prettiness).
  EXPECT_NE(key_of("test", 0.0), key_of("test", -0.0));
}

TEST(ScenarioKey, NoTrivialCollisionsOverAGrid) {
  std::unordered_set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    KeyBuilder b{"grid"};
    b.u32(static_cast<std::uint32_t>(i % 10)).u64(static_cast<std::uint64_t>(i / 10));
    seen.insert(b.finish().hex());
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(ScenarioKey, OrderingAndHashAreConsistent) {
  const ScenarioKey a{1, 2};
  const ScenarioKey b{1, 3};
  const ScenarioKey c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(ScenarioKeyHash{}(a), ScenarioKeyHash{}(ScenarioKey{1, 2}));
}

}  // namespace
}  // namespace mn::store
