// Real multi-process coverage: the fleet-tier claims ("two OS processes
// can append to one directory", "a SIGKILLed server never fails a
// campaign") proven with fork(2), not in-process simulation.
//
// Kept out of the TSan name patterns (no "Parallel"/"Concurrent"):
// sanitizers and fork don't mix well, and the in-process lock tests
// already cover the same flock protocol for the instrumented builds.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "measure/campaign.hpp"
#include "store/remote/client.hpp"
#include "store/remote/server.hpp"
#include "store/run_store.hpp"

namespace mn {
namespace {

namespace fs = std::filesystem;

store::ScenarioKey key_of(std::uint64_t hi, std::uint64_t lo) {
  return store::ScenarioKey{hi, lo};
}

class MultiProcessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = fs::path(::testing::TempDir()) /
            ("mproc_" + std::string{::testing::UnitTest::GetInstance()
                                        ->current_test_info()
                                        ->name()});
    fs::remove_all(base_);
    fs::create_directories(base_);
  }
  void TearDown() override { fs::remove_all(base_); }

  [[nodiscard]] std::string store_dir() const { return (base_ / "store").string(); }
  [[nodiscard]] std::string sock() const { return (base_ / "mn.sock").string(); }

  /// Run `fn` in a forked child; returns the child's exit status.
  template <typename Fn>
  [[nodiscard]] static int run_child(Fn&& fn) {
    const pid_t pid = fork();
    if (pid == 0) {
      // _exit, not exit: no gtest teardown or atexit in the child.
      fn();
      _exit(0);
    }
    int status = 0;
    waitpid(pid, &status, 0);
    return status;
  }

  fs::path base_;
};

TEST_F(MultiProcessTest, TwoProcessesAppendToOneDirectoryLosslessly) {
  const int status = run_child([this] {
    store::RunStore child_store{store_dir()};
    for (std::uint64_t i = 0; i < 20; ++i) {
      child_store.put(key_of(0xC, i), "child-" + std::to_string(i));
    }
  });
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);

  // Parent appends into the same directory afterwards-and-concurrently
  // (its own O_EXCL-claimed segment); a genuinely concurrent child also
  // writes while the parent holds the shared lock.
  store::RunStore parent{store_dir()};
  const int status2 = run_child([this] {
    store::RunStore child_store{store_dir()};
    for (std::uint64_t i = 0; i < 20; ++i) {
      child_store.put(key_of(0xD, i), "child2-" + std::to_string(i));
    }
  });
  ASSERT_TRUE(WIFEXITED(status2));
  ASSERT_EQ(WEXITSTATUS(status2), 0);
  for (std::uint64_t i = 0; i < 20; ++i) {
    parent.put(key_of(0xE, i), "parent-" + std::to_string(i));
  }

  // All three writers' records are readable and the store verifies.
  store::RunStore fresh{store_dir()};
  EXPECT_EQ(fresh.size(), 60u);
  EXPECT_EQ(fresh.lookup(key_of(0xC, 7)), "child-7");
  EXPECT_EQ(fresh.lookup(key_of(0xD, 7)), "child2-7");
  EXPECT_EQ(fresh.lookup(key_of(0xE, 7)), "parent-7");
  EXPECT_TRUE(store::verify_store(store_dir()).ok());
}

TEST_F(MultiProcessTest, CompactIsBusyWhileAChildHoldsTheStore) {
  // Child opens the store and sleeps holding the shared lock; the
  // parent's compact must refuse rather than delete under it.
  const pid_t pid = fork();
  if (pid == 0) {
    store::RunStore child_store{store_dir()};
    child_store.put(key_of(1, 1), "held");
    // Signal readiness via a marker file, then hold the lock.
    std::ofstream{(base_ / "ready").string()}.flush();
    for (int i = 0; i < 100; ++i) {
      usleep(100 * 1000);
      if (fs::exists(base_ / "done")) break;
    }
    _exit(0);
  }
  for (int i = 0; i < 100 && !fs::exists(base_ / "ready"); ++i) usleep(50 * 1000);
  ASSERT_TRUE(fs::exists(base_ / "ready")) << "child never started";

  {
    store::RunStore mine{store_dir()};
    mine.put(key_of(2, 2), "mine");
    EXPECT_THROW(mine.compact(), store::StoreBusyError);
  }
  std::ofstream{(base_ / "done").string()}.flush();
  int status = 0;
  waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFEXITED(status));

  // After the child exits, compaction succeeds and keeps both records.
  store::RunStore mine{store_dir()};
  mine.compact();
  EXPECT_EQ(mine.lookup(key_of(1, 1)), "held");
  EXPECT_EQ(mine.lookup(key_of(2, 2)), "mine");
}

TEST_F(MultiProcessTest, SigkilledServerNeverFailsACampaign) {
  std::vector<ClusterSpec> world{
      make_cluster("FastWiFi", {40.0, -70.0}, 12, 0.10, 14.0),
      make_cluster("FastLTE", {10.0, 100.0}, 12, 0.85, 4.0)};
  CampaignOptions opt;
  opt.run_scale = 0.25;
  opt.incomplete_probability = 0.2;
  opt.fault_probability = 0.15;
  opt.parallelism = 0;
  const std::string golden =
      to_csv(run_campaign(world, opt)).str();

  // Server in a forked child process, SIGKILLed (not stopped) while the
  // campaign talks to it.
  const pid_t server_pid = fork();
  if (server_pid == 0) {
    store::remote::StoreServer server{{store_dir(), sock()}};
    server.run();  // until SIGKILL
    _exit(0);
  }
  for (int i = 0; i < 200 && !fs::exists(sock()); ++i) usleep(10 * 1000);
  ASSERT_TRUE(fs::exists(sock())) << "server never bound its socket";

  store::remote::RemoteStoreOptions ropt;
  ropt.endpoint = sock();
  ropt.max_attempts = 1;
  ropt.initial_backoff = std::chrono::milliseconds{1};
  store::remote::RemoteStore remote{std::move(ropt)};

  // Warm a couple of entries so the kill happens on a live session.
  const auto plans = plan_campaign(world, opt);
  remote.put(scenario_key(plans[0], opt),
             serialize_run_record(execute_run(plans[0], opt)));
  ASSERT_TRUE(remote.ping());

  kill(server_pid, SIGKILL);
  int status = 0;
  waitpid(server_pid, &status, 0);
  ASSERT_TRUE(WIFSIGNALED(status));

  opt.store = &remote;
  for (int workers : {1, 4}) {
    opt.parallelism = workers;
    const auto runs = run_campaign(world, opt);
    EXPECT_EQ(to_csv(runs).str(), golden) << "workers=" << workers;
    std::size_t failed = 0;
    for (const auto& r : runs) failed += r.failed ? 1 : 0;
    EXPECT_EQ(failed, 0u);
  }

  // The SIGKILLed server's directory still verifies (its segment may be
  // unsealed — that is the torn-tail-tolerant normal, not damage).
  EXPECT_TRUE(store::verify_store(store_dir()).ok());
  // And a successor server can serve it immediately (locks died with
  // the process).
  store::remote::StoreServer successor{{store_dir(), sock()}};
  EXPECT_GE(successor.stats().entries, 1u);
}

}  // namespace
}  // namespace mn
