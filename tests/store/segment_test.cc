// MNRS1 corruption suite: every way a segment file can be damaged must
// degrade into skipped frames or a refused file — decodable records
// always survive, and nothing is ever undefined behaviour (this suite
// runs under ASan/UBSan in CI).
#include "store/segment.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace mn::store {
namespace {

namespace fs = std::filesystem;

class SegmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("mnrs1_" + std::string{::testing::UnitTest::GetInstance()
                                       ->current_test_info()
                                       ->name()});
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const char* name) const { return (dir_ / name).string(); }

  static std::string slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }
  static void spit(const std::string& p, const std::string& bytes) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  /// A sealed three-record segment; returns the record keys.
  std::vector<ScenarioKey> write_sample(const std::string& p) {
    std::vector<ScenarioKey> keys{{1, 10}, {2, 20}, {3, 30}};
    SegmentWriter w{p};
    w.append(keys[0], "alpha");
    w.append(keys[1], "bravo-bravo");
    w.append(keys[2], "charlie");
    w.seal();
    return keys;
  }

  fs::path dir_;
};

TEST_F(SegmentTest, RoundTripSealed) {
  const auto keys = write_sample(path("a.mnrs"));
  const SegmentReadResult r = read_segment(path("a.mnrs"));
  EXPECT_TRUE(r.sealed);
  EXPECT_FALSE(r.version_mismatch);
  EXPECT_EQ(r.torn_frames, 0u);
  ASSERT_EQ(r.entries.size(), 3u);
  EXPECT_EQ(r.entries[0].key, keys[0]);
  EXPECT_EQ(r.entries[0].blob, "alpha");
  EXPECT_EQ(r.entries[1].blob, "bravo-bravo");
  EXPECT_EQ(r.entries[2].blob, "charlie");
}

TEST_F(SegmentTest, UnsealedActiveSegmentReadsEveryRecord) {
  write_sample(path("a.mnrs"));
  // Strip the footer: what an active (never-sealed) segment looks like.
  std::string bytes = slurp(path("a.mnrs"));
  bytes.resize(bytes.size() - 20);  // footer only; index frame remains as data
  spit(path("a.mnrs"), bytes);
  const SegmentReadResult r = read_segment(path("a.mnrs"));
  EXPECT_FALSE(r.sealed);
  EXPECT_EQ(r.torn_frames, 0u);
  EXPECT_EQ(r.entries.size(), 3u);  // stray index frame carries no records
}

TEST_F(SegmentTest, TornFinalFrameIsTruncatedAway) {
  // Simulate a crash mid-append: records then a torn partial frame.
  {
    SegmentWriter w{path("a.mnrs")};
    w.append({1, 10}, "alpha");
    w.append({2, 20}, "bravo");
    // Leave unsealed: the destructor would seal, so release it first.
    w.seal();
  }
  std::string bytes = slurp(path("a.mnrs"));
  bytes.resize(bytes.size() - 20);        // drop footer (active segment)
  bytes.resize(bytes.size() - 3);         // tear into the index frame
  spit(path("a.mnrs"), bytes);
  const SegmentReadResult r = read_segment(path("a.mnrs"));
  EXPECT_FALSE(r.sealed);
  EXPECT_EQ(r.entries.size(), 2u);
  EXPECT_GE(r.torn_frames, 1u);
  EXPECT_GT(r.truncated_bytes, 0u);
}

TEST_F(SegmentTest, FlippedCrcByteSkipsExactlyThatFrame) {
  write_sample(path("a.mnrs"));
  std::string bytes = slurp(path("a.mnrs"));
  // Flip one payload byte of the second record ("bravo-bravo").  Frame 1
  // starts at header(10) + frame0(9+16+5); its payload begins 9+16 later.
  const std::size_t frame1 = 10 + 9 + 16 + 5;
  const std::size_t victim = frame1 + 9 + 16 + 2;
  bytes[victim] = static_cast<char>(bytes[victim] ^ 0x40);
  spit(path("a.mnrs"), bytes);
  const SegmentReadResult r = read_segment(path("a.mnrs"));
  EXPECT_FALSE(r.sealed);  // census mismatch: 3 indexed, 2 readable
  ASSERT_EQ(r.entries.size(), 2u);
  EXPECT_EQ(r.entries[0].blob, "alpha");
  EXPECT_EQ(r.entries[1].blob, "charlie");  // resynchronized past the bad frame
  EXPECT_GE(r.torn_frames, 1u);
}

TEST_F(SegmentTest, ImplausibleLengthTruncatesTheRest) {
  write_sample(path("a.mnrs"));
  std::string bytes = slurp(path("a.mnrs"));
  bytes.resize(bytes.size() - 20);  // unsealed, so the scan trusts lengths only
  const std::size_t frame1 = 10 + 9 + 16 + 5;
  bytes[frame1 + 3] = static_cast<char>(0xFF);  // len explodes past the file
  spit(path("a.mnrs"), bytes);
  const SegmentReadResult r = read_segment(path("a.mnrs"));
  ASSERT_EQ(r.entries.size(), 1u);
  EXPECT_EQ(r.entries[0].blob, "alpha");
  EXPECT_GE(r.torn_frames, 1u);
}

TEST_F(SegmentTest, WrongMagicAndWrongVersionAreRefused) {
  write_sample(path("a.mnrs"));
  std::string bytes = slurp(path("a.mnrs"));
  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  spit(path("m.mnrs"), wrong_magic);
  EXPECT_TRUE(read_segment(path("m.mnrs")).version_mismatch);

  std::string wrong_version = bytes;
  wrong_version[6] = 9;  // version little-endian low byte
  spit(path("v.mnrs"), wrong_version);
  const auto r = read_segment(path("v.mnrs"));
  EXPECT_TRUE(r.version_mismatch);
  EXPECT_TRUE(r.entries.empty());  // refused wholesale, never half-read

  // An empty file is NOT a refusal: it is a segment another process
  // claimed (O_EXCL) and never wrote — the crash window between claim
  // and header.  Tolerated as zero records so verify stays green.
  spit(path("e.mnrs"), "");
  const auto empty = read_segment(path("e.mnrs"));
  EXPECT_FALSE(empty.version_mismatch);
  EXPECT_EQ(empty.torn_frames, 0u);
  EXPECT_TRUE(empty.entries.empty());
}

TEST_F(SegmentTest, EveryPrefixTruncationIsHandledCleanly) {
  // Exhaustive torn-tail sweep: every possible crash point parses
  // without throwing and never yields more records than were written.
  write_sample(path("a.mnrs"));
  const std::string bytes = slurp(path("a.mnrs"));
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    spit(path("t.mnrs"), bytes.substr(0, n));
    const SegmentReadResult r = read_segment(path("t.mnrs"));
    EXPECT_LE(r.entries.size(), 3u) << "at prefix " << n;
  }
}

TEST_F(SegmentTest, OversizeBlobIsRejectedAtAppend) {
  SegmentWriter w{path("a.mnrs")};
  EXPECT_THROW(w.append({1, 1}, std::string(kMaxFramePayload, 'x')), std::length_error);
}

}  // namespace
}  // namespace mn::store
