// MappedSegment: the server's mmap'd read-only view must agree with the
// heap reader (read_segment) on every segment state — sealed, unsealed,
// torn, refused, and the claimed-but-never-written empty file.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "store/segment.hpp"
#include "store/segment_view.hpp"

namespace mn::store {
namespace {

namespace fs = std::filesystem;

class SegmentViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = fs::path(::testing::TempDir()) /
            ("view_" + std::string{::testing::UnitTest::GetInstance()
                                       ->current_test_info()
                                       ->name()} +
             ".mnrs");
    fs::remove(path_);
  }
  void TearDown() override { fs::remove(path_); }

  [[nodiscard]] std::string path() const { return path_.string(); }

  /// Writes n records; returns the file size before sealing.  The
  /// writer's destructor always seals, so "unsealed" states are made by
  /// truncating back to this size — exactly what a crashed writer
  /// leaves behind.
  std::uint64_t write_records(int n, bool seal) {
    std::uint64_t unsealed_size = kSegmentMagic.size() + 4;  // header
    {
      SegmentWriter w{path()};
      for (int i = 0; i < n; ++i) {
        unsealed_size += w.append(ScenarioKey{static_cast<std::uint64_t>(i), 99},
                                  "blob-" + std::to_string(i));
      }
      w.seal();
    }
    if (!seal) fs::resize_file(path_, unsealed_size);
    return unsealed_size;
  }

  /// The mapped view and the heap reader must report identical content.
  void expect_view_matches_reader() {
    const SegmentReadResult heap = read_segment(path());
    const MappedSegment view{path()};
    EXPECT_EQ(view.scan().sealed, heap.sealed);
    EXPECT_EQ(view.scan().version_mismatch, heap.version_mismatch);
    EXPECT_EQ(view.scan().torn_frames, heap.torn_frames);
    ASSERT_EQ(view.scan().entries.size(), heap.entries.size());
    for (std::size_t i = 0; i < heap.entries.size(); ++i) {
      EXPECT_EQ(view.scan().entries[i].key, heap.entries[i].key);
      EXPECT_EQ(view.blob(view.scan().entries[i]), heap.entries[i].blob);
    }
  }

  fs::path path_;
};

TEST_F(SegmentViewTest, SealedSegmentMapsIdentically) {
  write_records(10, /*seal=*/true);
  expect_view_matches_reader();
  const MappedSegment view{path()};
  EXPECT_TRUE(view.scan().sealed);
  EXPECT_EQ(view.scan().entries.size(), 10u);
}

TEST_F(SegmentViewTest, UnsealedSegmentMapsIdentically) {
  write_records(4, /*seal=*/false);
  expect_view_matches_reader();
  const MappedSegment view{path()};
  EXPECT_FALSE(view.scan().sealed);
  EXPECT_EQ(view.scan().entries.size(), 4u);
}

TEST_F(SegmentViewTest, TornTailIsToleratedIdentically) {
  write_records(5, /*seal=*/false);
  // Chop mid-frame: the last record becomes a torn tail.
  const auto size = fs::file_size(path_);
  fs::resize_file(path_, size - 7);
  expect_view_matches_reader();
  const MappedSegment view{path()};
  EXPECT_EQ(view.scan().entries.size(), 4u);
  EXPECT_GT(view.scan().truncated_bytes, 0u);
}

TEST_F(SegmentViewTest, EmptyFileIsClaimedNotDamage) {
  // The crash window between O_EXCL claim and header write leaves a
  // zero-byte file; both readers treat it as benign.
  std::ofstream{path()}.flush();
  const MappedSegment view{path()};
  EXPECT_EQ(view.scan().entries.size(), 0u);
  EXPECT_FALSE(view.scan().version_mismatch);
  EXPECT_EQ(view.scan().torn_frames, 0u);
  expect_view_matches_reader();
}

TEST_F(SegmentViewTest, ForeignVersionIsRefusedIdentically) {
  std::ofstream{path(), std::ios::binary} << "MNRS9\njunk that is not ours at all";
  const MappedSegment view{path()};
  EXPECT_TRUE(view.scan().version_mismatch);
  EXPECT_EQ(view.scan().entries.size(), 0u);
  expect_view_matches_reader();
}

TEST_F(SegmentViewTest, BlobViewsAreZeroCopyIntoTheMapping) {
  write_records(3, /*seal=*/true);
  const MappedSegment view{path()};
  for (const auto& e : view.scan().entries) {
    const std::string_view blob = view.blob(e);
    EXPECT_GE(blob.data(), view.data().data());
    EXPECT_LE(blob.data() + blob.size(), view.data().data() + view.data().size());
  }
}

TEST_F(SegmentViewTest, MissingFileThrows) {
  EXPECT_THROW(MappedSegment{path() + ".nope"}, std::runtime_error);
}

}  // namespace
}  // namespace mn::store
