// MNSP1 wire protocol: framing, CRC, versioning, and every body codec
// must be bit-exact, refuse damage wholesale, and survive arbitrary
// stream fragmentation.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "store/key.hpp"
#include "store/remote/wire.hpp"
#include "util/crc32.hpp"

namespace mn::store::wire {
namespace {

ScenarioKey key_of(std::uint64_t hi, std::uint64_t lo) { return ScenarioKey{hi, lo}; }

TEST(WireTest, FrameRoundTripsEveryOp) {
  for (Op op : {Op::kPing, Op::kPong, Op::kGet, Op::kGetReply, Op::kMultiGet,
                Op::kMultiGetReply, Op::kPut, Op::kPutReply, Op::kStats,
                Op::kStatsReply, Op::kError}) {
    const std::string body = "body for op " + std::to_string(static_cast<int>(op));
    FrameParser p;
    p.feed(encode_frame(op, body));
    const auto msg = p.next();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->op, op);
    EXPECT_EQ(msg->body, body);
    EXPECT_FALSE(p.next().has_value());
    EXPECT_EQ(p.buffered(), 0u);
  }
}

TEST(WireTest, EncodingIsDeterministic) {
  // Bit-exact framing: the same logical message is the same bytes, every
  // time — the KeyBuilder discipline extended to the wire.
  EXPECT_EQ(encode_frame(Op::kGet, encode_key_body(key_of(1, 2))),
            encode_frame(Op::kGet, encode_key_body(key_of(1, 2))));
  EXPECT_NE(encode_frame(Op::kGet, encode_key_body(key_of(1, 2))),
            encode_frame(Op::kGet, encode_key_body(key_of(2, 1))));
}

TEST(WireTest, ByteAtATimeFeedingYieldsTheSameMessages) {
  const std::string stream = encode_frame(Op::kPing, encode_nonce_body(42)) +
                             encode_frame(Op::kPut, encode_put_body(key_of(7, 9), "blob")) +
                             encode_frame(Op::kStats, {});
  FrameParser p;
  std::vector<Message> got;
  for (char c : stream) {
    p.feed({&c, 1});
    while (auto m = p.next()) got.push_back(std::move(*m));
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].op, Op::kPing);
  EXPECT_EQ(decode_nonce_body(got[0].body), 42u);
  EXPECT_EQ(got[1].op, Op::kPut);
  const auto [key, blob] = decode_put_body(got[1].body);
  EXPECT_EQ(key, key_of(7, 9));
  EXPECT_EQ(blob, "blob");
  EXPECT_EQ(got[2].op, Op::kStats);
  EXPECT_TRUE(got[2].body.empty());
}

TEST(WireTest, EveryFlippedBitIsACrcOrHeaderError) {
  const std::string frame = encode_frame(Op::kGet, encode_key_body(key_of(3, 4)));
  int rejected = 0;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    std::string bad = frame;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    FrameParser p;
    try {
      p.feed(bad);
      const auto m = p.next();
      // A length-field flip may leave the parser waiting for more bytes;
      // that is fine — what must never happen is a *successful* parse of
      // damaged bytes.
      if (m.has_value()) FAIL() << "bit flip at offset " << i << " parsed cleanly";
    } catch (const WireError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
}

TEST(WireTest, TruncatedFrameIsIncompleteNeverAMessage) {
  const std::string frame = encode_frame(Op::kPut, encode_put_body(key_of(1, 1), "payload"));
  for (std::size_t n = 0; n < frame.size(); ++n) {
    FrameParser p;
    p.feed(frame.substr(0, n));
    EXPECT_FALSE(p.next().has_value()) << "prefix of " << n << " bytes";
  }
}

TEST(WireTest, ForeignVersionIsRefusedWholesale) {
  std::string frame = encode_frame(Op::kPing, encode_nonce_body(1));
  // Payload starts after the 8-byte header; byte 0 is the version.
  ASSERT_GT(frame.size(), kWireHeaderBytes);
  frame[kWireHeaderBytes] = static_cast<char>(kWireProtocolVersion + 1);
  FrameParser p;
  p.feed(frame);
  // Version byte is CRC-covered, so this surfaces as CRC damage — the
  // point is wholesale refusal, not the specific message.
  EXPECT_THROW((void)p.next(), WireError);
}

TEST(WireTest, UnknownOpIsRefused) {
  // Build a frame with a valid CRC but an op no MNSP1 peer sends.
  const std::string body;
  std::string payload;
  payload.push_back(static_cast<char>(kWireProtocolVersion));
  payload.push_back(static_cast<char>(0x7F));
  std::string frame = encode_frame(Op::kPing, {});
  // Cheaper: corrupting op via re-encode — craft through the public API
  // by checking the parser's known-op validation with a raw frame.
  (void)frame;
  FrameParser p;
  // Frame the payload manually: len + crc + payload.
  std::string raw;
  const auto put_u32 = [&raw](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) raw.push_back(static_cast<char>(v >> (i * 8)));
  };
  put_u32(static_cast<std::uint32_t>(payload.size()));
  put_u32(mn::crc32(payload));
  raw += payload;
  p.feed(raw);
  EXPECT_THROW((void)p.next(), WireError);
}

TEST(WireTest, ImplausibleLengthIsRefusedImmediately) {
  std::string raw;
  const std::uint32_t huge = kMaxWirePayload + 1;
  for (int i = 0; i < 4; ++i) raw.push_back(static_cast<char>(huge >> (i * 8)));
  raw += std::string(4, '\0');
  FrameParser p;
  p.feed(raw);
  EXPECT_THROW((void)p.next(), WireError);
}

TEST(WireTest, KeysBodyRoundTripsAndValidatesSize) {
  std::vector<ScenarioKey> keys;
  for (std::uint64_t i = 0; i < 300; ++i) keys.push_back(key_of(i, ~i));
  const std::string body = encode_keys_body(keys);
  EXPECT_EQ(decode_keys_body(body), keys);
  // A trailing half-key is malformed, not silently dropped.
  EXPECT_THROW((void)decode_keys_body(body.substr(0, body.size() - 3)), WireError);
}

TEST(WireTest, BlobRepliesDistinguishMissFromEmptyBlob) {
  EXPECT_EQ(decode_blob_reply(encode_blob_reply(std::nullopt)), std::nullopt);
  EXPECT_EQ(decode_blob_reply(encode_blob_reply(std::string_view{""})), "");
  EXPECT_EQ(decode_blob_reply(encode_blob_reply(std::string_view{"x"})), "x");

  const std::vector<std::optional<std::string_view>> blobs{
      std::nullopt, std::string_view{""}, std::string_view{"abc"}};
  const auto back = decode_blobs_reply(encode_blobs_reply(blobs));
  ASSERT_EQ(back.size(), 3u);
  EXPECT_FALSE(back[0].has_value());
  EXPECT_EQ(back[1], "");
  EXPECT_EQ(back[2], "abc");
}

TEST(WireTest, StatsReplyRoundTripsEveryField) {
  WireStats s;
  s.entries = 1;
  s.segments = 2;
  s.hits = 3;
  s.misses = 4;
  s.gets = 5;
  s.multi_gets = 6;
  s.puts = 7;
  s.bytes_appended = 8;
  s.connections = 9;
  s.protocol_errors = 10;
  EXPECT_EQ(decode_stats_reply(encode_stats_reply(s)), s);
}

TEST(WireTest, ErrorBodyRoundTrips) {
  EXPECT_EQ(decode_error_body(encode_error_body("bad version")), "bad version");
}

TEST(WireTest, MalformedBodiesThrowNeverCrash) {
  EXPECT_THROW((void)decode_nonce_body("short"), WireError);
  EXPECT_THROW((void)decode_key_body("0123456789"), WireError);
  EXPECT_THROW((void)decode_put_body("tiny"), WireError);
  EXPECT_THROW((void)decode_status_body(""), WireError);
  EXPECT_THROW((void)decode_stats_reply("x"), WireError);
  EXPECT_THROW((void)decode_blob_reply(""), WireError);
}

}  // namespace
}  // namespace mn::store::wire
