// The headline contract of the remote tier: campaign output is
// byte-identical across {no store, local store, remote store, server
// killed mid-campaign}, at serial and parallel worker counts — and a
// fleet of workers sharing one server dedupes work (each missing run
// executes exactly once).
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "measure/campaign.hpp"
#include "store/remote/client.hpp"
#include "store/remote/server.hpp"
#include "store/run_store.hpp"

namespace mn {
namespace {

namespace fs = std::filesystem;

std::vector<ClusterSpec> tiny_world() {
  return {make_cluster("FastWiFi", {40.0, -70.0}, 12, 0.10, 14.0),
          make_cluster("FastLTE", {10.0, 100.0}, 12, 0.85, 4.0)};
}

CampaignOptions small_campaign() {
  CampaignOptions opt;
  opt.run_scale = 0.25;  // 6 runs
  opt.incomplete_probability = 0.2;
  opt.fault_probability = 0.15;
  return opt;
}

std::string campaign_bytes(const std::vector<RunRecord>& runs) {
  return to_csv(runs).str() + "\n===\n" + merge_run_metrics(runs).prometheus_text();
}

class RemoteCampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = fs::path(::testing::TempDir()) /
            ("rcamp_" + std::string{::testing::UnitTest::GetInstance()
                                        ->current_test_info()
                                        ->name()});
    fs::remove_all(base_);
    fs::create_directories(base_);
  }
  void TearDown() override {
    stop_server();
    fs::remove_all(base_);
  }

  [[nodiscard]] std::string store_dir() const { return (base_ / "store").string(); }
  [[nodiscard]] std::string sock() const { return (base_ / "mn.sock").string(); }

  void start_server() {
    server_ = std::make_unique<store::remote::StoreServer>(
        store::remote::StoreServerOptions{store_dir(), sock()});
    server_thread_ = std::thread([this] { server_->run(); });
  }
  void stop_server() {
    if (server_) server_->stop();
    if (server_thread_.joinable()) server_thread_.join();
    server_.reset();
  }

  [[nodiscard]] store::remote::RemoteStore make_client(int max_attempts = 3) const {
    store::remote::RemoteStoreOptions opt;
    opt.endpoint = sock();
    opt.max_attempts = max_attempts;
    opt.initial_backoff = std::chrono::milliseconds{1};
    opt.max_backoff = std::chrono::milliseconds{5};
    return store::remote::RemoteStore{std::move(opt)};
  }

  fs::path base_;
  std::unique_ptr<store::remote::StoreServer> server_;
  std::thread server_thread_;
};

// The golden matrix: every store tier, serial and parallel, one output.
TEST_F(RemoteCampaignTest, AllStoreTiersAreByteIdenticalAtAnyParallelism) {
  CampaignOptions opt = small_campaign();
  opt.parallelism = 0;
  const std::string golden = campaign_bytes(run_campaign(tiny_world(), opt));

  start_server();
  for (int workers : {1, 4}) {
    opt.parallelism = workers;

    // Local tier (its own directory, independent of the server's).
    {
      fs::remove_all(base_ / "local");
      store::RunStore local{(base_ / "local").string()};
      opt.store = &local;
      EXPECT_EQ(campaign_bytes(run_campaign(tiny_world(), opt)), golden)
          << "local cold, workers=" << workers;
      EXPECT_EQ(campaign_bytes(run_campaign(tiny_world(), opt)), golden)
          << "local warm, workers=" << workers;
    }

    // Remote tier: cold on first pass, warm from then on (the server
    // keeps its store across client sessions and worker counts).
    auto remote = make_client();
    opt.store = &remote;
    EXPECT_EQ(campaign_bytes(run_campaign(tiny_world(), opt)), golden)
        << "remote, workers=" << workers;
    EXPECT_EQ(remote.stats().degraded, 0u);
    opt.store = nullptr;
  }

  // After the matrix the server's store holds exactly the plan's runs.
  const auto plans = plan_campaign(tiny_world(), opt);
  EXPECT_EQ(server_->stats().entries, plans.size());
}

// A dead server is a slow campaign, never a different campaign.
TEST_F(RemoteCampaignTest, ServerKilledMidCampaignStillByteIdentical) {
  CampaignOptions opt = small_campaign();
  opt.parallelism = 0;
  const std::string golden = campaign_bytes(run_campaign(tiny_world(), opt));

  start_server();
  auto remote = make_client(/*max_attempts=*/1);
  opt.store = &remote;

  // Warm the server with half the plan, then kill it mid-fleet.
  const auto plans = plan_campaign(tiny_world(), opt);
  for (std::size_t i = 0; i < plans.size() / 2; ++i) {
    remote.put(scenario_key(plans[i], opt),
               serialize_run_record(execute_run(plans[i], opt)));
  }
  stop_server();  // SIGKILL-equivalent for the client: connection dies

  for (int workers : {1, 4}) {
    opt.parallelism = workers;
    const auto runs = run_campaign(tiny_world(), opt);
    EXPECT_EQ(campaign_bytes(runs), golden) << "dead server, workers=" << workers;
    std::size_t failed = 0;
    for (const auto& r : runs) failed += r.failed ? 1 : 0;
    EXPECT_EQ(failed, 0u);
  }
  EXPECT_GT(remote.stats().degraded, 0u);
  EXPECT_EQ(remote.stats().hits, 0u);  // every lookup degraded to a miss
}

// Fleet dedupe: two workers sharing one server — the second worker
// re-executes nothing.
TEST_F(RemoteCampaignTest, SecondFleetWorkerRunsNothing) {
  CampaignOptions opt = small_campaign();
  opt.parallelism = 2;
  start_server();

  auto worker1 = make_client();
  opt.store = &worker1;
  const auto cold = run_campaign(tiny_world(), opt);
  EXPECT_EQ(worker1.stats().hits, 0u);
  EXPECT_EQ(worker1.stats().misses, cold.size());
  EXPECT_EQ(worker1.stats().puts, cold.size());

  auto worker2 = make_client();
  opt.store = &worker2;
  const auto warm = run_campaign(tiny_world(), opt);
  EXPECT_EQ(campaign_bytes(warm), campaign_bytes(cold));
  EXPECT_EQ(worker2.stats().hits, warm.size());
  EXPECT_EQ(worker2.stats().misses, 0u);
  EXPECT_EQ(worker2.stats().puts, 0u);

  // Each missing run executed exactly once, fleet-wide.
  EXPECT_EQ(server_->stats().puts, cold.size());
}

// Sweep and chaos ride the same Store interface — spot-check the sweep
// through the remote tier.
TEST_F(RemoteCampaignTest, SweepThroughRemoteTierMatchesBaseline) {
  LinkSpec wifi;
  wifi.rate_mbps = 12.0;
  LinkSpec lte;
  lte.rate_mbps = 6.0;
  lte.one_way_delay = msec(30);
  const MpNetworkSetup net = symmetric_setup(wifi, lte);
  const TransportConfig config = TransportConfig::mptcp(PathId::kWifi, CcAlgo::kCoupled);
  const std::vector<std::int64_t> sizes{20'000, 200'000};

  SweepOptions opt;
  opt.parallelism = 0;
  const auto baseline = sweep_flow_sizes(net, config, sizes, opt);

  start_server();
  auto remote = make_client();
  opt.store = &remote;
  const auto cold = sweep_flow_sizes(net, config, sizes, opt);
  const auto warm = sweep_flow_sizes(net, config, sizes, opt);
  EXPECT_EQ(remote.stats().misses, sizes.size());
  EXPECT_EQ(remote.stats().hits, sizes.size());
  ASSERT_EQ(warm.size(), baseline.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(cold[i].throughput_mbps, baseline[i].throughput_mbps);
    EXPECT_EQ(warm[i].completion_time, baseline[i].completion_time);
  }
}

}  // namespace
}  // namespace mn
