// Directory locking: the fleet-tier concurrency discipline.  flock(2)
// locks are per open-file-description, so two RunStores (or a RunStore
// and a StoreServer) in ONE process behave exactly like two processes —
// these tests exercise the real cross-process protocol in-process.
//
// The regression under test: compact() used to rewrite the directory
// from its own in-memory map and delete every file, silently dropping
// records appended by a concurrent process and deleting refused
// (foreign-version) segments.  Now it must take the census from disk
// under an exclusive lock, refuse to run while another appender lives,
// and leave refused segments in place.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "store/lockfile.hpp"
#include "store/run_store.hpp"

namespace mn::store {
namespace {

namespace fs = std::filesystem;

ScenarioKey key_of(std::uint64_t hi, std::uint64_t lo) { return ScenarioKey{hi, lo}; }

class StoreLockTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("lock_" + std::string{::testing::UnitTest::GetInstance()
                                      ->current_test_info()
                                      ->name()});
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string dir() const { return dir_.string(); }

  fs::path dir_;
};

TEST_F(StoreLockTest, CompactWhileAnotherAppenderLivesIsBusyAndLossless) {
  RunStore a{dir()};
  a.put(key_of(1, 1), "from-a");

  RunStore b{dir()};  // second appender, second open file description
  b.put(key_of(2, 2), "from-b");

  EXPECT_THROW(a.compact(), StoreBusyError);

  // Nothing was modified: both handles still serve, and after both
  // close, a fresh open sees both records.
  EXPECT_EQ(a.lookup(key_of(1, 1)), "from-a");
  EXPECT_EQ(b.lookup(key_of(2, 2)), "from-b");

  // The refused compact must not have broken a's appender either.
  a.put(key_of(3, 3), "from-a-after-busy");
}

TEST_F(StoreLockTest, CompactMergesRecordsAppendedByOtherHandles) {
  auto a = std::make_unique<RunStore>(dir());
  a->put(key_of(1, 1), "from-a");

  {
    // A second appender writes records `a` never loaded (it opened
    // before they existed) — the old compact dropped these.
    RunStore b{dir()};
    b.put(key_of(2, 2), "from-b");
    b.put(key_of(1, 1), "superseded-by-b");  // later segment wins
  }

  a->compact();

  // The census came from disk: b's records survive, including b's
  // supersede of a shared key (b's segment is newer).
  RunStore fresh{dir()};
  EXPECT_EQ(fresh.size(), 2u);
  EXPECT_EQ(fresh.lookup(key_of(2, 2)), "from-b");
  EXPECT_EQ(fresh.lookup(key_of(1, 1)), "superseded-by-b");
  a.reset();

  // And the compacted directory is one sealed segment plus locks.
  const auto report = verify_store(dir());
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.sealed_segments, report.segments);
}

TEST_F(StoreLockTest, CompactLeavesForeignVersionSegmentsInPlace) {
  const fs::path foreign = dir_ / "seg-000999.mnrs";
  {
    RunStore store{dir()};
    store.put(key_of(7, 7), "mine");
    std::ofstream{foreign, std::ios::binary} << "MNRS9\nbytes from the future";
    store.compact();
    // Refused segments are data we cannot read — compaction must not
    // delete what it does not understand.
    EXPECT_TRUE(fs::exists(foreign));
    EXPECT_EQ(store.lookup(key_of(7, 7)), "mine");
  }
  EXPECT_TRUE(fs::exists(foreign));
}

TEST_F(StoreLockTest, CompactRestoresTheSharedLockAfterwards) {
  RunStore a{dir()};
  a.put(key_of(1, 1), "one");
  a.compact();
  // Still an appender: a second handle coexists (shared lock), and a
  // second compact from it is refused while `a` lives.
  RunStore b{dir()};
  EXPECT_THROW(b.compact(), StoreBusyError);
  a.put(key_of(2, 2), "two");
  EXPECT_EQ(b.lookup(key_of(1, 1)), "one");
}

TEST_F(StoreLockTest, TwoAppendersNeverClobberEachOthersSegments) {
  {
    RunStore a{dir()};
    RunStore b{dir()};
    // Interleaved appends from two handles that both started at an
    // empty directory: O_EXCL segment claims give them distinct files.
    for (std::uint64_t i = 0; i < 10; ++i) {
      a.put(key_of(0xA, i), "a" + std::to_string(i));
      b.put(key_of(0xB, i), "b" + std::to_string(i));
    }
  }
  RunStore fresh{dir()};
  EXPECT_EQ(fresh.size(), 20u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(fresh.lookup(key_of(0xA, i)), "a" + std::to_string(i));
    EXPECT_EQ(fresh.lookup(key_of(0xB, i)), "b" + std::to_string(i));
  }
  EXPECT_TRUE(verify_store(dir()).ok());
}

TEST_F(StoreLockTest, FileLockSharedCoexistsExclusiveDoesNot) {
  fs::create_directories(dir_);
  const std::string lock = store_lock_path(dir());
  FileLock s1 = FileLock::shared(lock);
  FileLock s2 = FileLock::shared(lock);  // shared + shared: fine
  EXPECT_FALSE(FileLock::try_exclusive(lock).held());
  s1.release();
  EXPECT_FALSE(FileLock::try_exclusive(lock).held());  // s2 still holds
  s2.release();
  EXPECT_TRUE(FileLock::try_exclusive(lock).held());
}

TEST_F(StoreLockTest, ExclusiveWithRetriesThrowsBusyNotHangs) {
  fs::create_directories(dir_);
  const std::string lock = store_lock_path(dir());
  FileLock holder = FileLock::shared(lock);
  EXPECT_THROW((void)FileLock::exclusive(lock, /*attempts=*/3,
                                         std::chrono::milliseconds{1}),
               StoreBusyError);
}

}  // namespace
}  // namespace mn::store
