// The store's end-to-end contract: campaign / sweep / chaos output is
// byte-identical across cold cache, warm cache, mixed cache, any
// parallelism, and a kill-and-rerun resume — and every flavour of
// corruption degrades to a clean cache miss.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "faults/chaos.hpp"
#include "measure/campaign.hpp"
#include "store/run_store.hpp"

namespace mn {
namespace {

namespace fs = std::filesystem;

std::vector<ClusterSpec> tiny_world() {
  return {make_cluster("FastWiFi", {40.0, -70.0}, 12, 0.10, 14.0),
          make_cluster("FastLTE", {10.0, 100.0}, 12, 0.85, 4.0)};
}

CampaignOptions small_campaign() {
  CampaignOptions opt;
  opt.run_scale = 0.25;  // 6 runs
  opt.incomplete_probability = 0.2;
  opt.fault_probability = 0.15;
  return opt;
}

/// The full observable output of a campaign, as bytes.
std::string campaign_bytes(const std::vector<RunRecord>& runs) {
  return to_csv(runs).str() + "\n===\n" + merge_run_metrics(runs).prometheus_text();
}

class CampaignCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("cache_" + std::string{::testing::UnitTest::GetInstance()
                                       ->current_test_info()
                                       ->name()});
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string dir() const { return dir_.string(); }

  fs::path dir_;
};

// The golden test of the tentpole: cold cache, warm cache, and a mixed
// cache produce byte-identical records + merged metrics + CSV, at
// serial and parallel worker counts, and match the storeless baseline.
TEST_F(CampaignCacheTest, ColdWarmMixedAndParallelAreByteIdentical) {
  CampaignOptions opt = small_campaign();
  opt.parallelism = 0;
  const std::string golden = campaign_bytes(run_campaign(tiny_world(), opt));

  for (int workers : {1, 4}) {
    fs::remove_all(dir_);
    store::RunStore store{dir()};
    opt.parallelism = workers;
    opt.store = &store;

    const auto cold = run_campaign(tiny_world(), opt);
    EXPECT_EQ(campaign_bytes(cold), golden) << "cold, workers=" << workers;
    EXPECT_EQ(store.stats().hits, 0u);
    EXPECT_EQ(store.stats().misses, cold.size());

    const auto warm = run_campaign(tiny_world(), opt);
    EXPECT_EQ(campaign_bytes(warm), golden) << "warm, workers=" << workers;
    EXPECT_EQ(store.stats().hits, warm.size());
    EXPECT_EQ(store.stats().misses, warm.size());  // unchanged since cold
    opt.store = nullptr;
  }
}

// Crash-resume: a campaign killed partway keeps its finished runs; the
// rerun executes only the remainder and reproduces the golden output.
TEST_F(CampaignCacheTest, KilledCampaignResumesWithOnlyMissingRuns) {
  CampaignOptions opt = small_campaign();
  opt.parallelism = 0;
  const std::string golden = campaign_bytes(run_campaign(tiny_world(), opt));
  const auto plans = plan_campaign(tiny_world(), opt);
  ASSERT_GE(plans.size(), 4u);

  {
    // "Killed" campaign: only the first half of the plans completed (and
    // the store is dropped without sealing, like a dead process).
    store::RunStore half{dir()};
    for (std::size_t i = 0; i < plans.size() / 2; ++i) {
      half.put(scenario_key(plans[i], opt),
               serialize_run_record(execute_run(plans[i], opt)));
    }
  }

  store::RunStore store{dir()};
  EXPECT_EQ(store.size(), plans.size() / 2);
  opt.store = &store;
  const auto resumed = run_campaign(tiny_world(), opt);
  EXPECT_EQ(campaign_bytes(resumed), golden);
  // Exactly the missing half executed.
  EXPECT_EQ(store.stats().hits, plans.size() / 2);
  EXPECT_EQ(store.stats().misses, plans.size() - plans.size() / 2);
  EXPECT_EQ(store.stats().puts, plans.size() - plans.size() / 2);
}

// Corruption at the blob level: an undecodable cached blob is a clean
// miss — the run re-executes and the fresh record supersedes the junk.
TEST_F(CampaignCacheTest, CorruptBlobIsACleanMissAndIsSuperseded) {
  CampaignOptions opt = small_campaign();
  opt.parallelism = 0;
  const std::string golden = campaign_bytes(run_campaign(tiny_world(), opt));
  const auto plans = plan_campaign(tiny_world(), opt);

  store::RunStore store{dir()};
  store.put(scenario_key(plans[0], opt), "junk that is not a RunRecord");
  opt.store = &store;
  const auto runs = run_campaign(tiny_world(), opt);
  EXPECT_EQ(campaign_bytes(runs), golden);
  EXPECT_EQ(store.stats().hits, 1u);  // the corrupt blob was found...
  // ...but every run re-executed (+1 for the poison put itself).
  EXPECT_EQ(store.stats().puts, plans.size() + 1);

  // And the supersede stuck: a second pass is all hits, still golden.
  const auto warm = run_campaign(tiny_world(), opt);
  EXPECT_EQ(campaign_bytes(warm), golden);
  EXPECT_EQ(store.stats().puts, plans.size() + 1);
}

// The version salt: entries keyed under a different format version can
// never be found by the current code — a bump is a clean global miss.
TEST_F(CampaignCacheTest, WrongVersionSaltNeverHits) {
  CampaignOptions opt = small_campaign();
  const auto plans = plan_campaign(tiny_world(), opt);
  store::RunStore store{dir()};
  // Poison: a record stored under a hypothetical future format version.
  store::KeyBuilder future{"campaign-run", store::kRunFormatVersion + 1};
  future.str(plans[0].cluster).f64(plans[0].pos.lat_deg);
  store.put(future.finish(), "stale bytes from the future");
  EXPECT_FALSE(store.lookup(scenario_key(plans[0], opt)).has_value());
}

TEST_F(CampaignCacheTest, ScenarioKeyIsAPureFunctionOfPlanAndOptions) {
  const CampaignOptions opt = small_campaign();
  const auto plans = plan_campaign(tiny_world(), opt);
  ASSERT_GE(plans.size(), 2u);
  EXPECT_EQ(scenario_key(plans[0], opt), scenario_key(plans[0], opt));
  EXPECT_NE(scenario_key(plans[0], opt), scenario_key(plans[1], opt));
  // Result-affecting options key; plan-phase-only options don't.
  CampaignOptions bigger = opt;
  bigger.transfer_bytes *= 2;
  EXPECT_NE(scenario_key(plans[0], opt), scenario_key(plans[0], bigger));
  CampaignOptions threaded = opt;
  threaded.parallelism = 8;
  threaded.run_scale = 2.0;
  threaded.seed += 1;
  EXPECT_EQ(scenario_key(plans[0], opt), scenario_key(plans[0], threaded));
}

TEST_F(CampaignCacheTest, RunRecordBlobRoundTripsExactly) {
  CampaignOptions opt = small_campaign();
  opt.parallelism = 0;
  const auto runs = run_campaign(tiny_world(), opt);
  for (const RunRecord& rec : runs) {
    const RunRecord back = parse_run_record(serialize_run_record(rec));
    EXPECT_EQ(back.cluster, rec.cluster);
    EXPECT_EQ(back.pos.lat_deg, rec.pos.lat_deg);  // bit-exact doubles
    EXPECT_EQ(back.wifi_up_mbps, rec.wifi_up_mbps);
    EXPECT_EQ(back.lte_rtt_ms, rec.lte_rtt_ms);
    EXPECT_EQ(back.failed, rec.failed);
    EXPECT_EQ(back.failure_reason, rec.failure_reason);
    EXPECT_EQ(back.metrics.prometheus_text(), rec.metrics.prometheus_text());
  }
  // Truncated blobs throw (clean miss), never crash.
  const std::string bytes = serialize_run_record(runs[0]);
  for (std::size_t n = 0; n < bytes.size(); n += 7) {
    EXPECT_THROW((void)parse_run_record(bytes.substr(0, n)), std::runtime_error);
  }
}

TEST_F(CampaignCacheTest, SweepColdAndWarmAreIdentical) {
  LinkSpec wifi;
  wifi.rate_mbps = 12.0;
  LinkSpec lte;
  lte.rate_mbps = 6.0;
  lte.one_way_delay = msec(30);
  const MpNetworkSetup net = symmetric_setup(wifi, lte);
  const TransportConfig config = TransportConfig::mptcp(PathId::kWifi, CcAlgo::kCoupled);
  const std::vector<std::int64_t> sizes{20'000, 200'000};

  SweepOptions opt;
  opt.parallelism = 0;
  const auto baseline = sweep_flow_sizes(net, config, sizes, opt);

  store::RunStore store{dir()};
  opt.store = &store;
  const auto cold = sweep_flow_sizes(net, config, sizes, opt);
  EXPECT_EQ(store.stats().misses, sizes.size());
  const auto warm = sweep_flow_sizes(net, config, sizes, opt);
  EXPECT_EQ(store.stats().hits, sizes.size());
  ASSERT_EQ(cold.size(), baseline.size());
  ASSERT_EQ(warm.size(), baseline.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(cold[i].throughput_mbps, baseline[i].throughput_mbps);
    EXPECT_EQ(warm[i].throughput_mbps, baseline[i].throughput_mbps);
    EXPECT_EQ(warm[i].completion_time, baseline[i].completion_time);
  }
  // Direction keys: the same sweep uploading is a distinct scenario.
  EXPECT_NE(sweep_scenario_key(net, config, sizes[0], Direction::kDownload),
            sweep_scenario_key(net, config, sizes[0], Direction::kUpload));
}

TEST_F(CampaignCacheTest, ChaosSoakColdAndWarmAreIdentical) {
  ChaosSoakOptions opt;
  opt.runs = 4;
  opt.parallelism = 0;
  opt.timeout = sec(30);
  opt.flight_recorder_events = 256;
  const ChaosSoakSummary baseline = run_chaos_soak(opt);

  store::RunStore store{dir()};
  opt.store = &store;
  const ChaosSoakSummary cold = run_chaos_soak(opt);
  EXPECT_EQ(store.stats().misses, 4u);
  const ChaosSoakSummary warm = run_chaos_soak(opt);
  EXPECT_EQ(store.stats().hits, 4u);
  for (const ChaosSoakSummary* s : {&cold, &warm}) {
    EXPECT_EQ(s->runs, baseline.runs);
    EXPECT_EQ(s->completed, baseline.completed);
    EXPECT_EQ(s->aborted, baseline.aborted);
    EXPECT_EQ(s->max_stall, baseline.max_stall);
    EXPECT_EQ(s->violating.size(), baseline.violating.size());
  }
}

TEST_F(CampaignCacheTest, ChaosReportBlobRoundTripsWithFlightDump) {
  ChaosRunReport report;
  report.seed = 42;
  report.completed = false;
  report.failure_reason = "stall";
  report.max_stall = msec(1234);
  report.faults_applied = 3;
  report.bytes_requested = 100'000;
  report.plan_text = "fault plan text";
  report.violations = {"first", "second"};
  report.flight_dump = std::string{"MNFR1\x00\x01raw", 10};
  const ChaosRunReport back = parse_chaos_report(serialize_chaos_report(report));
  EXPECT_EQ(back.seed, report.seed);
  EXPECT_EQ(back.completed, report.completed);
  EXPECT_EQ(back.failure_reason, report.failure_reason);
  EXPECT_EQ(back.max_stall, report.max_stall);
  EXPECT_EQ(back.violations, report.violations);
  EXPECT_EQ(back.flight_dump, report.flight_dump);
}

}  // namespace
}  // namespace mn
