#include "energy/power_model.hpp"

#include <gtest/gtest.h>

#include "obs/obs.hpp"

namespace mn {
namespace {

TEST(EnergyMeter, IdleRadioConsumesBaseOnly) {
  EnergyMeter meter{lte_power_params()};
  const auto horizon = TimePoint{sec(10).usec()};
  EXPECT_DOUBLE_EQ(meter.energy_joules(horizon), kBasePowerWatts * 10.0);
  EXPECT_DOUBLE_EQ(meter.radio_energy_joules(horizon), 0.0);
  const auto tl = meter.timeline(horizon);
  ASSERT_EQ(tl.size(), 1u);
  EXPECT_DOUBLE_EQ(tl[0].watts, kBasePowerWatts);
}

TEST(EnergyMeter, SinglePacketCostsActivePlusTail) {
  const RadioPowerParams p = lte_power_params();
  EnergyMeter meter{p};
  meter.add_activity(TimePoint{sec(1).usec()});
  const auto horizon = TimePoint{sec(30).usec()};
  const double radio = meter.radio_energy_joules(horizon);
  // Active for burst_hold (0.1 s at 2.5 W) + tail (15 s at 1 W) = ~15.25 J.
  EXPECT_NEAR(radio, p.active_watts * p.burst_hold.seconds() +
                         p.tail_watts * p.tail_duration.seconds(),
              0.01);
}

TEST(EnergyMeter, LteTailIs15Seconds) {
  EnergyMeter meter{lte_power_params()};
  meter.add_activity(TimePoint{0});
  const auto tl = meter.timeline(TimePoint{sec(30).usec()});
  // Steps: active, tail, idle.
  ASSERT_EQ(tl.size(), 3u);
  EXPECT_NEAR((tl[1].end - tl[1].start).seconds(), 15.0, 0.001);
  EXPECT_DOUBLE_EQ(tl[1].watts, kBasePowerWatts + 1.0);  // ~2 W total (Fig 16)
}

TEST(EnergyMeter, WifiTailIsNegligible) {
  EnergyMeter meter{wifi_power_params()};
  meter.add_activity(TimePoint{0});
  const double radio = meter.radio_energy_joules(TimePoint{sec(30).usec()});
  EXPECT_LT(radio, 0.2);  // versus ~15 J for LTE
}

TEST(EnergyMeter, PacketsWithinHoldFormOneBurst) {
  const RadioPowerParams p = lte_power_params();
  EnergyMeter meter{p};
  for (int i = 0; i < 10; ++i) {
    meter.add_activity(TimePoint{i * msec(50).usec()});  // gaps < burst_hold
  }
  const auto tl = meter.timeline(TimePoint{sec(30).usec()});
  int active_steps = 0;
  for (const auto& s : tl) {
    if (s.watts == kBasePowerWatts + p.active_watts) ++active_steps;
  }
  EXPECT_EQ(active_steps, 1);  // merged
}

TEST(EnergyMeter, SeparatedBurstsEachPayTail) {
  const RadioPowerParams p = wifi_power_params();
  EnergyMeter meter{p};
  meter.add_activity(TimePoint{0});
  meter.add_activity(TimePoint{sec(5).usec()});
  const auto horizon = TimePoint{sec(10).usec()};
  const double radio = meter.radio_energy_joules(horizon);
  const double one_burst = p.active_watts * p.burst_hold.seconds() +
                           p.tail_watts * p.tail_duration.seconds();
  EXPECT_NEAR(radio, 2.0 * one_burst, 0.01);
}

TEST(EnergyMeter, NewBurstInterruptsTail) {
  const RadioPowerParams p = lte_power_params();
  EnergyMeter meter{p};
  meter.add_activity(TimePoint{0});
  meter.add_activity(TimePoint{sec(5).usec()});  // within the 15 s tail
  const auto tl = meter.timeline(TimePoint{sec(40).usec()});
  // The first tail must be cut short at t=5 s.
  for (const auto& s : tl) {
    if (s.watts == kBasePowerWatts + p.tail_watts && s.start.usec() < sec(5).usec()) {
      EXPECT_LE(s.end.usec(), sec(5).usec());
    }
  }
}

TEST(EnergyMeter, TimelineIsContiguousAndCoversHorizon) {
  EnergyMeter meter{lte_power_params()};
  meter.add_activity(TimePoint{msec(500).usec()});
  meter.add_activity(TimePoint{sec(20).usec()});
  const auto horizon = TimePoint{sec(60).usec()};
  const auto tl = meter.timeline(horizon);
  ASSERT_FALSE(tl.empty());
  EXPECT_EQ(tl.front().start.usec(), 0);
  EXPECT_EQ(tl.back().end.usec(), horizon.usec());
  for (std::size_t i = 1; i < tl.size(); ++i) {
    EXPECT_EQ(tl[i - 1].end.usec(), tl[i].start.usec());
  }
}

TEST(EnergyMeter, ActivityBeyondHorizonIsIgnored) {
  const RadioPowerParams p = lte_power_params();
  EnergyMeter meter{p};
  meter.add_activity(TimePoint{sec(2).usec()});
  meter.add_activity(TimePoint{sec(50).usec()});  // past the horizon
  const auto horizon = TimePoint{sec(10).usec()};
  // One burst at t=2: active for burst_hold, tail clipped at the horizon.
  const double active_s = p.burst_hold.seconds();
  const double tail_s = 10.0 - 2.0 - active_s;
  EXPECT_NEAR(meter.radio_energy_joules(horizon),
              p.active_watts * active_s + p.tail_watts * tail_s, 0.01);
  const auto tl = meter.timeline(horizon);
  ASSERT_FALSE(tl.empty());
  EXPECT_EQ(tl.back().end.usec(), horizon.usec());
}

TEST(EnergyMeter, BurstStraddlingHorizonIsClipped) {
  const RadioPowerParams p = lte_power_params();
  EnergyMeter meter{p};
  const auto horizon = TimePoint{sec(10).usec()};
  meter.add_activity(horizon - msec(50));
  // Only 50 ms of the active hold fit before the horizon; no tail fits.
  EXPECT_NEAR(meter.radio_energy_joules(horizon), p.active_watts * 0.05, 0.001);
  const auto tl = meter.timeline(horizon);
  ASSERT_FALSE(tl.empty());
  EXPECT_EQ(tl.back().end.usec(), horizon.usec());
  EXPECT_DOUBLE_EQ(tl.back().watts, kBasePowerWatts + p.active_watts);
}

// Regression for the sorted-insertion invariant: timeline() stops
// scanning at the first beyond-horizon timestamp, which is only correct
// if out-of-order add_activity calls kept the vector ascending.  With
// the invariant broken ([20 s, 1 s, 5 s] stored as-is) the scan would
// bail at the leading 20 s entry and report an idle radio.
TEST(EnergyMeter, OutOfOrderInsertKeepsHorizonCutoffCorrect) {
  EnergyMeter unordered{lte_power_params()};
  unordered.add_activity(TimePoint{sec(20).usec()});
  unordered.add_activity(TimePoint{sec(1).usec()});
  unordered.add_activity(TimePoint{sec(5).usec()});
  EnergyMeter ordered{lte_power_params()};
  ordered.add_activity(TimePoint{sec(1).usec()});
  ordered.add_activity(TimePoint{sec(5).usec()});
  const auto horizon = TimePoint{sec(10).usec()};
  const double got = unordered.radio_energy_joules(horizon);
  EXPECT_GT(got, 0.0);
  EXPECT_DOUBLE_EQ(got, ordered.radio_energy_joules(horizon));
}

TEST(EnergyMeter, PacketsCloserThanBurstHoldCostOneBurst) {
  const RadioPowerParams p = lte_power_params();
  EnergyMeter meter{p};
  meter.add_activity(TimePoint{0});
  meter.add_activity(TimePoint{msec(50).usec()});  // inside the 100 ms hold
  const auto horizon = TimePoint{sec(30).usec()};
  // One coalesced burst [0, 50 ms] + hold, then one tail — identical in
  // shape to a lone packet, just 50 ms more active time.
  const double active_s = 0.05 + p.burst_hold.seconds();
  EXPECT_NEAR(meter.radio_energy_joules(horizon),
              p.active_watts * active_s + p.tail_watts * p.tail_duration.seconds(),
              0.01);
}

// publish() classifies steps by wattage; when tail_watts == active_watts
// the two states are indistinguishable by power and must classify as
// active (state 1), never as a phantom tail.
TEST(EnergyMeter, EqualTailAndActiveWattsPublishAsActive) {
  RadioPowerParams p;
  p.active_watts = 1.5;
  p.tail_watts = 1.5;
  p.tail_duration = sec(5);
  p.burst_hold = msec(100);
  EnergyMeter meter{p};
  meter.add_activity(TimePoint{sec(1).usec()});
  obs::ObsHub hub{/*flight_capacity=*/64};
  meter.publish(hub, TimePoint{sec(10).usec()}, /*radio_id=*/1);
  ASSERT_NE(hub.flight(), nullptr);
  bool saw_active = false;
  for (const auto& e : hub.flight()->events()) {
    if (e.type != obs::FlightEventType::kRadioState) continue;
    EXPECT_NE(e.arg32, 2u) << "tail state published despite equal wattage";
    if (e.arg32 == 1u) saw_active = true;
  }
  EXPECT_TRUE(saw_active);
  EXPECT_GT(hub.snapshot().value_of("energy.state_transitions"), 0);
}

TEST(EnergyMeter, UnsortedActivityIsHandled) {
  EnergyMeter meter{wifi_power_params()};
  meter.add_activity(TimePoint{sec(5).usec()});
  meter.add_activity(TimePoint{sec(1).usec()});
  const double e = meter.energy_joules(TimePoint{sec(10).usec()});
  EXPECT_GT(e, kBasePowerWatts * 10.0);
}

// The Section-3.6.2 headline: for flows shorter than ~15 s, an LTE
// backup interface that only carries SYN+FIN saves almost nothing.
TEST(EnergyMeter, ShortFlowBackupLteSavesLittle) {
  const auto horizon = TimePoint{sec(30).usec()};
  // Full-MPTCP: LTE active for a 10-second flow.
  EnergyMeter full{lte_power_params()};
  for (int ms = 0; ms <= 10'000; ms += 20) full.add_activity(TimePoint{msec(ms).usec()});
  // Backup: LTE sees only the SYN at t=0 and the FIN at t=10 s.
  EnergyMeter backup{lte_power_params()};
  backup.add_activity(TimePoint{0});
  backup.add_activity(TimePoint{sec(10).usec()});
  const double full_j = backup.radio_energy_joules(horizon) > 0
                            ? full.radio_energy_joules(horizon)
                            : 0.0;
  const double backup_j = backup.radio_energy_joules(horizon);
  // Backup still pays two tails: savings well under half.
  EXPECT_GT(backup_j, 0.5 * full_j);
}

}  // namespace
}  // namespace mn
