#include "net/delivery_trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace mn {
namespace {

TEST(DeliveryTrace, ValidatesInput) {
  EXPECT_THROW(DeliveryTrace({}, msec(10)), std::invalid_argument);
  EXPECT_THROW(DeliveryTrace({msec(1)}, Duration{0}), std::invalid_argument);
  EXPECT_THROW(DeliveryTrace({msec(5), msec(2)}, msec(10)), std::invalid_argument);
  EXPECT_THROW(DeliveryTrace({msec(15)}, msec(10)), std::invalid_argument);
}

TEST(DeliveryTrace, NextOpportunityWithinPeriod) {
  DeliveryTrace t{{msec(2), msec(5), msec(9)}, msec(10)};
  EXPECT_EQ(t.next_opportunity(TimePoint{0}).usec(), msec(2).usec());
  EXPECT_EQ(t.next_opportunity(TimePoint{msec(2).usec()}).usec(), msec(2).usec());
  EXPECT_EQ(t.next_opportunity(TimePoint{msec(3).usec()}).usec(), msec(5).usec());
}

TEST(DeliveryTrace, WrapsAcrossPeriods) {
  DeliveryTrace t{{msec(2), msec(5)}, msec(10)};
  // After the last in-period opportunity, wrap to 10ms + 2ms.
  EXPECT_EQ(t.next_opportunity(TimePoint{msec(6).usec()}).usec(), msec(12).usec());
  // Far in the future: cycle 3 (30ms) + 2ms.
  EXPECT_EQ(t.next_opportunity(TimePoint{msec(31).usec()}).usec(), msec(32).usec());
}

TEST(DeliveryTrace, AverageRate) {
  // 10 opportunities of 1500 bytes over 10 ms = 12 Mbit/s.
  std::vector<Duration> opp;
  for (int i = 1; i <= 10; ++i) opp.push_back(msec(i));
  DeliveryTrace t{std::move(opp), msec(10)};
  EXPECT_NEAR(t.average_rate_mbps(), 12.0, 1e-9);
}

TEST(DeliveryTrace, MahimahiRoundTrip) {
  DeliveryTrace t{{msec(1), msec(3), msec(3), msec(7)}, msec(7)};
  const std::string text = t.to_mahimahi();
  EXPECT_EQ(text, "1\n3\n3\n7\n");
  const DeliveryTrace back = DeliveryTrace::from_mahimahi(text);
  EXPECT_EQ(back.opportunities_per_period(), 4u);
  EXPECT_EQ(back.period().usec(), msec(7).usec());
}

TEST(DeliveryTrace, MahimahiRejectsBadInput) {
  EXPECT_THROW(DeliveryTrace::from_mahimahi(""), std::runtime_error);
  EXPECT_THROW(DeliveryTrace::from_mahimahi("abc\n"), std::runtime_error);
  EXPECT_THROW(DeliveryTrace::from_mahimahi("5\n3\n"), std::runtime_error);
  EXPECT_THROW(DeliveryTrace::from_mahimahi("5 junk\n"), std::runtime_error);
}

TEST(DeliveryTrace, FileSaveLoadRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "mn_trace_test.trace").string();
  DeliveryTrace t{{msec(1), msec(4), msec(9)}, msec(9)};
  t.save(path);
  const DeliveryTrace back = DeliveryTrace::load(path);
  EXPECT_EQ(back.to_mahimahi(), t.to_mahimahi());
  EXPECT_EQ(back.period().usec(), t.period().usec());
  std::remove(path.c_str());
}

TEST(DeliveryTrace, LoadMissingFileThrows) {
  EXPECT_THROW(DeliveryTrace::load("/nonexistent/nope.trace"), std::runtime_error);
}

TEST(DeliveryTrace, MahimahiZeroOnlyTraceGetsMinimumPeriod) {
  const DeliveryTrace t = DeliveryTrace::from_mahimahi("0\n");
  EXPECT_GE(t.period().usec(), msec(1).usec());
}

}  // namespace
}  // namespace mn
