#include "net/links.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/trace_gen.hpp"
#include "util/units.hpp"

namespace mn {
namespace {

Packet data_packet(std::int64_t payload) {
  Packet p;
  p.payload = payload;
  return p;
}

TEST(DelayBox, DelaysByExactlyD) {
  Simulator sim;
  DelayBox box{sim, msec(25)};
  TimePoint arrival{};
  box.set_next([&](Packet) { arrival = sim.now(); });
  box.accept(data_packet(100));
  sim.run_until_idle();
  EXPECT_EQ(arrival.usec(), msec(25).usec());
}

TEST(DelayBox, PreservesOrder) {
  Simulator sim;
  DelayBox box{sim, msec(10)};
  std::vector<std::int64_t> seqs;
  box.set_next([&](Packet p) { seqs.push_back(p.seq); });
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(TimePoint{i * 100}, [&box, i] {
      Packet p;
      p.seq = i;
      box.accept(std::move(p));
    });
  }
  sim.run_until_idle();
  EXPECT_EQ(seqs, (std::vector<std::int64_t>{0, 1, 2, 3, 4}));
}

TEST(LossBox, ZeroLossPassesEverything) {
  Simulator sim;
  LossBox box{Rng{1}, 0.0};
  int delivered = 0;
  box.set_next([&](Packet) { ++delivered; });
  for (int i = 0; i < 1000; ++i) box.accept(data_packet(10));
  EXPECT_EQ(delivered, 1000);
  EXPECT_EQ(box.counters().dropped, 0u);
}

TEST(LossBox, DropsAtConfiguredRate) {
  LossBox box{Rng{2}, 0.25};
  int delivered = 0;
  box.set_next([&](Packet) { ++delivered; });
  for (int i = 0; i < 20000; ++i) box.accept(data_packet(10));
  EXPECT_NEAR(delivered / 20000.0, 0.75, 0.02);
}

TEST(RateLink, SerializationDelayMatchesRate) {
  Simulator sim;
  RateLink link{sim, 12.0, 10};  // 12 Mbit/s -> 1500B takes 1 ms
  TimePoint arrival{};
  link.set_next([&](Packet) { arrival = sim.now(); });
  link.accept(data_packet(1460));  // 1460+40 = 1500 wire bytes
  sim.run_until_idle();
  EXPECT_EQ(arrival.usec(), 1000);
}

TEST(RateLink, BackToBackPacketsQueueInTime) {
  Simulator sim;
  RateLink link{sim, 12.0, 10};
  std::vector<std::int64_t> arrivals;
  link.set_next([&](Packet) { arrivals.push_back(sim.now().usec()); });
  link.accept(data_packet(1460));
  link.accept(data_packet(1460));
  link.accept(data_packet(1460));
  sim.run_until_idle();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], 1000);
  EXPECT_EQ(arrivals[1], 2000);
  EXPECT_EQ(arrivals[2], 3000);
}

TEST(RateLink, DropTailWhenFull) {
  Simulator sim;
  RateLink link{sim, 12.0, 2};
  int delivered = 0;
  link.set_next([&](Packet) { ++delivered; });
  for (int i = 0; i < 5; ++i) link.accept(data_packet(1460));
  sim.run_until_idle();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(link.counters().dropped, 3u);
}

TEST(RateLink, QueueDrainsAndAcceptsAgain) {
  Simulator sim;
  RateLink link{sim, 12.0, 1};
  int delivered = 0;
  link.set_next([&](Packet) { ++delivered; });
  link.accept(data_packet(1460));
  sim.run_until_idle();
  link.accept(data_packet(1460));
  sim.run_until_idle();
  EXPECT_EQ(delivered, 2);
}

TEST(RateLink, RejectsBadConfig) {
  Simulator sim;
  EXPECT_THROW(RateLink(sim, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(RateLink(sim, 10.0, 0), std::invalid_argument);
}

// A rate crash mid-transmission must reprice the in-flight packet's
// remaining bytes AND every queued packet — not just packets accepted
// after the change (the fault-injection rate_crash/rate_restore path).
TEST(RateLink, SetRateMidQueueRepricesQueuedPackets) {
  Simulator sim;
  RateLink link{sim, 12.0, 10};  // 1500B wire = 1 ms per packet
  std::vector<std::int64_t> arrivals;
  link.set_next([&](Packet) { arrivals.push_back(sim.now().usec()); });
  link.accept(data_packet(1460));
  link.accept(data_packet(1460));
  link.accept(data_packet(1460));
  // Halve the rate halfway through the head packet: 750 of its 1500
  // wire bytes are sent, the remaining 750 now take 1 ms at 6 Mbit/s,
  // and each queued packet takes 2 ms instead of 1 ms.
  sim.schedule_at(TimePoint{500}, [&link] { link.set_rate(6.0); });
  sim.run_until_idle();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], 1500);
  EXPECT_EQ(arrivals[1], 3500);
  EXPECT_EQ(arrivals[2], 5500);
}

TEST(RateLink, SetRateSpeedupShortensQueuedDrain) {
  Simulator sim;
  RateLink link{sim, 6.0, 10};  // 1500B wire = 2 ms per packet
  std::vector<std::int64_t> arrivals;
  link.set_next([&](Packet) { arrivals.push_back(sim.now().usec()); });
  link.accept(data_packet(1460));
  link.accept(data_packet(1460));
  link.accept(data_packet(1460));
  // Double the rate halfway through the head packet: its remaining
  // 750 bytes take 500 us, then 1 ms per queued packet.
  sim.schedule_at(TimePoint{1000}, [&link] { link.set_rate(12.0); });
  sim.run_until_idle();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], 1500);
  EXPECT_EQ(arrivals[1], 2500);
  EXPECT_EQ(arrivals[2], 3500);
}

TEST(RateLink, SetRateWhileIdleOnlyAffectsFuturePackets) {
  Simulator sim;
  RateLink link{sim, 12.0, 10};
  std::vector<std::int64_t> arrivals;
  link.set_next([&](Packet) { arrivals.push_back(sim.now().usec()); });
  link.set_rate(6.0);
  link.accept(data_packet(1460));
  sim.run_until_idle();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], 2000);
  EXPECT_THROW(link.set_rate(0.0), std::invalid_argument);
}

TEST(TraceLink, DeliversAtOpportunities) {
  Simulator sim;
  auto trace = std::make_shared<DeliveryTrace>(
      std::vector<Duration>{msec(3), msec(7)}, msec(10));
  TraceLink link{sim, trace, 10};
  std::vector<std::int64_t> arrivals;
  link.set_next([&](Packet) { arrivals.push_back(sim.now().usec()); });
  link.accept(data_packet(1400));
  link.accept(data_packet(1400));
  link.accept(data_packet(1400));
  sim.run_until_idle();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], msec(3).usec());
  EXPECT_EQ(arrivals[1], msec(7).usec());
  EXPECT_EQ(arrivals[2], msec(13).usec());  // wraps into the next period
}

TEST(TraceLink, SmallPacketsShareOneOpportunity) {
  Simulator sim;
  auto trace = std::make_shared<DeliveryTrace>(std::vector<Duration>{msec(5)}, msec(10));
  TraceLink link{sim, trace, 10};
  std::vector<std::int64_t> arrivals;
  link.set_next([&](Packet) { arrivals.push_back(sim.now().usec()); });
  // Three 400-byte-wire packets (360 payload + 40) fit in one 1500B slot.
  for (int i = 0; i < 3; ++i) link.accept(data_packet(360));
  sim.run_until_idle();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], msec(5).usec());
  EXPECT_EQ(arrivals[1], msec(5).usec());
  EXPECT_EQ(arrivals[2], msec(5).usec());
}

TEST(TraceLink, FullPacketUsesWholeOpportunity) {
  Simulator sim;
  auto trace = std::make_shared<DeliveryTrace>(std::vector<Duration>{msec(5)}, msec(10));
  TraceLink link{sim, trace, 10};
  std::vector<std::int64_t> arrivals;
  link.set_next([&](Packet) { arrivals.push_back(sim.now().usec()); });
  link.accept(data_packet(1460));  // 1500 wire bytes
  link.accept(data_packet(360));   // must wait for the next period
  sim.run_until_idle();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], msec(5).usec());
  EXPECT_EQ(arrivals[1], msec(15).usec());
}

TEST(TraceLink, DropTailWhenFull) {
  Simulator sim;
  auto trace = std::make_shared<DeliveryTrace>(std::vector<Duration>{msec(5)}, msec(10));
  TraceLink link{sim, trace, 2};
  int delivered = 0;
  link.set_next([&](Packet) { ++delivered; });
  for (int i = 0; i < 6; ++i) link.accept(data_packet(1460));
  sim.run_until_idle();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(link.counters().dropped, 4u);
}

TEST(TraceLink, AchievesTraceRateUnderLoad) {
  Simulator sim;
  auto trace = std::make_shared<DeliveryTrace>(constant_rate_trace(8.0, sec(1)));
  TraceLink link{sim, trace, 1000};
  std::int64_t delivered_bytes = 0;
  link.set_next([&](Packet p) { delivered_bytes += p.wire_bytes(); });
  // Offer 2 MB instantly; the link should drain ~1 MB (8 Mbit/s) per second.
  for (int i = 0; i < 1000; ++i) link.accept(data_packet(1460));
  sim.run_until(TimePoint{sec(1).usec()});
  EXPECT_NEAR(static_cast<double>(delivered_bytes), 1.0e6, 5e4);
}

TEST(ReorderBox, ZeroProbabilityPreservesOrder) {
  Simulator sim;
  ReorderBox box{sim, Rng{1}, 0.0, msec(5)};
  std::vector<std::int64_t> seqs;
  box.set_next([&](Packet p) { seqs.push_back(p.seq); });
  for (int i = 0; i < 50; ++i) {
    Packet p;
    p.seq = i;
    box.accept(std::move(p));
  }
  sim.run_until_idle();
  EXPECT_TRUE(std::is_sorted(seqs.begin(), seqs.end()));
  EXPECT_EQ(seqs.size(), 50u);
}

TEST(ReorderBox, ReordersSomePacketsButLosesNone) {
  Simulator sim;
  ReorderBox box{sim, Rng{2}, 0.3, msec(5)};
  std::vector<std::int64_t> seqs;
  box.set_next([&](Packet p) { seqs.push_back(p.seq); });
  for (int i = 0; i < 200; ++i) {
    sim.schedule_at(TimePoint{i * 500}, [&box, i] {
      Packet p;
      p.seq = i;
      box.accept(std::move(p));
    });
  }
  sim.run_until_idle();
  EXPECT_EQ(seqs.size(), 200u);
  EXPECT_FALSE(std::is_sorted(seqs.begin(), seqs.end()));
  auto sorted = seqs;
  std::sort(sorted.begin(), sorted.end());
  for (std::int64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  }
}

TEST(TraceLink, RejectsBadConfig) {
  Simulator sim;
  EXPECT_THROW(TraceLink(sim, nullptr, 10), std::invalid_argument);
}

TEST(PacketRing, FifoAcrossWrapAndGrowth) {
  PacketRing ring;
  EXPECT_TRUE(ring.empty());
  std::int64_t pushed = 0, popped = 0;
  // Interleave pushes and pops so head_ walks the buffer (wrap), while
  // the net size climbs past 64 and 128 (two growth re-linearizations).
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 9; ++i) {
      Packet p;
      p.seq = pushed++;
      ring.push_back(std::move(p));
    }
    for (int i = 0; i < 4; ++i) {
      ASSERT_FALSE(ring.empty());
      EXPECT_EQ(ring.front().seq, popped);
      EXPECT_EQ(ring.pop_front().seq, popped);
      ++popped;
    }
  }
  EXPECT_EQ(ring.size(), static_cast<std::size_t>(pushed - popped));
  while (!ring.empty()) EXPECT_EQ(ring.pop_front().seq, popped++);
  EXPECT_EQ(popped, pushed);
}

TEST(DelayBox, BatchHandlerReceivesWholeTickSweepAsOneSpan) {
  Simulator sim;
  DelayBox box{sim, msec(5)};
  std::vector<std::vector<std::int64_t>> sweeps;
  box.set_next_batch([&](std::span<Packet> ps) {
    std::vector<std::int64_t> seqs;
    for (const Packet& p : ps) seqs.push_back(p.seq);
    sweeps.push_back(std::move(seqs));
  });
  for (std::int64_t i = 0; i < 4; ++i) {
    Packet p;
    p.seq = i;
    box.accept(std::move(p));  // all at t=0 -> all due at t=5ms
  }
  sim.run_until_idle();
  ASSERT_EQ(sweeps.size(), 1u);
  EXPECT_EQ(sweeps[0], (std::vector<std::int64_t>{0, 1, 2, 3}));
  EXPECT_EQ(box.counters().accepted, 4u);
  EXPECT_EQ(box.counters().delivered, 4u);
}

TEST(DelayBox, BatchHandlerSplitsSweepsPerTick) {
  Simulator sim;
  DelayBox box{sim, msec(1)};
  std::vector<std::size_t> widths;
  box.set_next_batch([&](std::span<Packet> ps) { widths.push_back(ps.size()); });
  const auto inject = [&sim, &box](std::int64_t at, int n) {
    sim.schedule_at(TimePoint{at}, [&box, n] {
      for (int i = 0; i < n; ++i) box.accept(Packet{});
    });
  };
  inject(0, 3);
  inject(200, 2);
  sim.run_until_idle();
  EXPECT_EQ(widths, (std::vector<std::size_t>{3, 2}));
}

TEST(DelayBox, BatchAndScalarDeliverIdenticalOrderAndTiming) {
  const auto run = [](bool batched) {
    Simulator sim;
    DelayBox box{sim, msec(2)};
    std::vector<std::pair<std::int64_t, std::int64_t>> trace;  // (time, seq)
    if (batched) {
      box.set_next_batch([&](std::span<Packet> ps) {
        for (const Packet& p : ps) trace.emplace_back(sim.now().usec(), p.seq);
      });
    } else {
      box.set_next([&](Packet p) { trace.emplace_back(sim.now().usec(), p.seq); });
    }
    std::int64_t seq = 0;
    for (std::int64_t at : {0, 0, 0, 150, 150, 900}) {
      sim.schedule_at(TimePoint{at}, [&box, &seq] {
        Packet p;
        p.seq = seq++;
        box.accept(std::move(p));
      });
    }
    sim.run_until_idle();
    return trace;
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace mn
