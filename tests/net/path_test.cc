#include "net/path.hpp"

#include <gtest/gtest.h>

#include "net/trace_gen.hpp"

namespace mn {
namespace {

LinkSpec fast_spec() {
  LinkSpec s;
  s.rate_mbps = 100.0;
  s.one_way_delay = msec(5);
  return s;
}

Packet data_packet(std::int64_t payload) {
  Packet p;
  p.payload = payload;
  return p;
}

TEST(OneWayPipe, DeliversWithLinkPlusPropagationDelay) {
  Simulator sim;
  LinkSpec spec;
  spec.rate_mbps = 12.0;  // 1500B -> 1ms serialization
  spec.one_way_delay = msec(20);
  OneWayPipe pipe{sim, spec};
  TimePoint arrival{};
  pipe.set_receiver([&](Packet) { arrival = sim.now(); });
  pipe.send(data_packet(1460));
  sim.run_until_idle();
  EXPECT_EQ(arrival.usec(), msec(21).usec());
}

TEST(OneWayPipe, TraceSpecUsesTraceLink) {
  Simulator sim;
  LinkSpec spec;
  spec.trace = std::make_shared<DeliveryTrace>(std::vector<Duration>{msec(4)}, msec(10));
  spec.one_way_delay = msec(1);
  OneWayPipe pipe{sim, spec};
  TimePoint arrival{};
  pipe.set_receiver([&](Packet) { arrival = sim.now(); });
  pipe.send(data_packet(100));
  sim.run_until_idle();
  EXPECT_EQ(arrival.usec(), msec(5).usec());
}

TEST(OneWayPipe, LossStageDrops) {
  Simulator sim;
  LinkSpec spec = fast_spec();
  spec.loss_rate = 1.0;  // drop everything
  OneWayPipe pipe{sim, spec};
  int delivered = 0;
  pipe.set_receiver([&](Packet) { ++delivered; });
  for (int i = 0; i < 10; ++i) pipe.send(data_packet(100));
  sim.run_until_idle();
  EXPECT_EQ(delivered, 0);
}

TEST(DuplexPath, BothDirectionsIndependent) {
  Simulator sim;
  DuplexPath path{sim, fast_spec(), fast_spec()};
  int at_server = 0;
  int at_client = 0;
  path.set_server_receiver([&](Packet) { ++at_server; });
  path.set_client_receiver([&](Packet) { ++at_client; });
  path.send_up(data_packet(10));
  path.send_up(data_packet(10));
  path.send_down(data_packet(10));
  sim.run_until_idle();
  EXPECT_EQ(at_server, 2);
  EXPECT_EQ(at_client, 1);
}

TEST(NetworkInterface, PassesTrafficWhenUp) {
  Simulator sim;
  DuplexPath path{sim, fast_spec(), fast_spec()};
  NetworkInterface iface{"wifi", sim, path};
  int at_server = 0;
  int at_client = 0;
  path.set_server_receiver([&](Packet) { ++at_server; });
  iface.set_receiver([&](Packet) { ++at_client; });
  iface.send(data_packet(10));
  path.send_down(data_packet(10));
  sim.run_until_idle();
  EXPECT_EQ(at_server, 1);
  EXPECT_EQ(at_client, 1);
}

TEST(NetworkInterface, DropsAllTrafficWhenDown) {
  Simulator sim;
  DuplexPath path{sim, fast_spec(), fast_spec()};
  NetworkInterface iface{"lte", sim, path};
  int received = 0;
  path.set_server_receiver([&](Packet) { FAIL() << "sent while down"; });
  iface.set_receiver([&](Packet) { ++received; });
  iface.disable_soft();
  iface.send(data_packet(10));
  path.send_down(data_packet(10));
  sim.run_until_idle();
  EXPECT_EQ(received, 0);
}

TEST(NetworkInterface, SoftDisableNotifiesListeners) {
  Simulator sim;
  DuplexPath path{sim, fast_spec(), fast_spec()};
  NetworkInterface iface{"lte", sim, path};
  std::vector<bool> events;
  iface.add_state_listener([&](bool up) { events.push_back(up); });
  iface.disable_soft();
  iface.plug_in();
  EXPECT_EQ(events, (std::vector<bool>{false, true}));
}

TEST(NetworkInterface, SilentUnplugDoesNotNotify) {
  Simulator sim;
  DuplexPath path{sim, fast_spec(), fast_spec()};
  NetworkInterface iface{"lte-usb", sim, path, /*reports_carrier_loss=*/false};
  int notifications = 0;
  iface.add_state_listener([&](bool) { ++notifications; });
  iface.unplug();
  EXPECT_FALSE(iface.is_up());
  EXPECT_EQ(notifications, 0);
  // Replug always notifies (the OS sees the device appear).
  iface.plug_in();
  EXPECT_EQ(notifications, 1);
}

TEST(NetworkInterface, CarrierReportingUnplugNotifies) {
  Simulator sim;
  DuplexPath path{sim, fast_spec(), fast_spec()};
  NetworkInterface iface{"wifi", sim, path, /*reports_carrier_loss=*/true};
  int down_events = 0;
  iface.add_state_listener([&](bool up) { down_events += up ? 0 : 1; });
  iface.unplug();
  EXPECT_EQ(down_events, 1);
}

TEST(NetworkInterface, TapSeesBothDirections) {
  Simulator sim;
  DuplexPath path{sim, fast_spec(), fast_spec()};
  NetworkInterface iface{"wifi", sim, path};
  int sent = 0;
  int received = 0;
  iface.set_tap([&](TimePoint, PacketDir dir, const Packet&) {
    (dir == PacketDir::kSent ? sent : received)++;
  });
  iface.set_receiver([](Packet) {});
  iface.send(data_packet(10));
  path.send_down(data_packet(10));
  sim.run_until_idle();
  EXPECT_EQ(sent, 1);
  EXPECT_EQ(received, 1);
}

TEST(NetworkInterface, RedundantStateChangeIsIdempotent) {
  Simulator sim;
  DuplexPath path{sim, fast_spec(), fast_spec()};
  NetworkInterface iface{"wifi", sim, path};
  int notifications = 0;
  iface.add_state_listener([&](bool) { ++notifications; });
  iface.plug_in();  // already up
  EXPECT_EQ(notifications, 0);
  iface.disable_soft();
  iface.disable_soft();
  EXPECT_EQ(notifications, 1);
}

TEST(NetworkInterface, EnableNotifiesAndRestoresTraffic) {
  Simulator sim;
  DuplexPath path{sim, fast_spec(), fast_spec()};
  NetworkInterface iface{"lte", sim, path};
  std::vector<bool> events;
  iface.add_state_listener([&](bool up) { events.push_back(up); });
  int at_server = 0;
  path.set_server_receiver([&](Packet) { ++at_server; });
  iface.disable_soft();
  iface.send(data_packet(10));  // dropped: interface is down
  iface.enable();
  iface.send(data_packet(10));
  sim.run_until_idle();
  EXPECT_EQ(events, (std::vector<bool>{false, true}));
  EXPECT_EQ(at_server, 1);
}

TEST(OneWayPipe, BlackholeSwallowsNewPacketsButDeliversInFlight) {
  Simulator sim;
  OneWayPipe pipe{sim, fast_spec()};
  int delivered = 0;
  pipe.set_receiver([&](Packet) { ++delivered; });
  pipe.send(data_packet(100));   // enters the pipeline before the fault
  pipe.set_blackhole(true);
  pipe.send(data_packet(100));   // vanishes silently
  pipe.send(data_packet(100));   // vanishes silently
  pipe.set_blackhole(false);
  pipe.send(data_packet(100));   // resumed
  sim.run_until_idle();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(pipe.blackholed_packets(), 2u);
  EXPECT_TRUE(pipe.counters_consistent());
}

TEST(OneWayPipe, RateChangeRejectedOnTraceDrivenLink) {
  Simulator sim;
  LinkSpec spec;
  spec.trace = std::make_shared<DeliveryTrace>(std::vector<Duration>{msec(4)}, msec(10));
  OneWayPipe pipe{sim, spec};
  EXPECT_FALSE(pipe.set_rate_mbps(1.0));
  EXPECT_FALSE(pipe.restore_rate());
  // Fixed-rate links accept the change.
  OneWayPipe fixed{sim, fast_spec()};
  EXPECT_TRUE(fixed.set_rate_mbps(1.0));
  EXPECT_TRUE(fixed.restore_rate());
}

TEST(OneWayPipe, BurstLossChainEntersAndLeavesBadState) {
  Simulator sim;
  OneWayPipe pipe{sim, fast_spec()};
  int delivered = 0;
  pipe.set_receiver([&](Packet) { ++delivered; });
  EXPECT_FALSE(pipe.burst_stage().enabled());

  GeLossSpec ge;  // deterministic: first packet flips Good -> Bad, drops
  ge.loss_good = 0.0;
  ge.loss_bad = 1.0;
  ge.p_good_to_bad = 1.0;
  ge.p_bad_to_good = 0.0;
  pipe.set_burst_loss(ge);
  for (int i = 0; i < 5; ++i) pipe.send(data_packet(100));
  sim.run_until_idle();
  EXPECT_EQ(delivered, 0);
  EXPECT_TRUE(pipe.burst_stage().in_bad_state());

  pipe.clear_burst_loss();
  EXPECT_FALSE(pipe.burst_stage().enabled());
  EXPECT_FALSE(pipe.burst_stage().in_bad_state());
  pipe.send(data_packet(100));
  sim.run_until_idle();
  EXPECT_EQ(delivered, 1);
  EXPECT_TRUE(pipe.counters_consistent());
}

TEST(OneWayPipe, CountersStayConsistentUnderCombinedFaults) {
  Simulator sim;
  LinkSpec spec = fast_spec();
  spec.loss_rate = 0.3;
  spec.queue_packets = 4;
  OneWayPipe pipe{sim, spec};
  pipe.set_receiver([](Packet) {});
  GeLossSpec ge;
  ge.loss_bad = 0.8;
  ge.p_good_to_bad = 0.2;
  for (int i = 0; i < 200; ++i) {
    if (i == 40) pipe.set_burst_loss(ge);
    if (i == 80) pipe.set_blackhole(true);
    if (i == 120) pipe.set_blackhole(false);
    if (i == 160) pipe.clear_burst_loss();
    pipe.send(data_packet(1460));
    if (i % 3 == 0) sim.run_until_idle();
  }
  sim.run_until_idle();
  EXPECT_TRUE(pipe.counters_consistent());
  EXPECT_EQ(pipe.link_queued(), 0);
}

// Satellite of the fault-injection PR: the two directions of a duplex
// path must not replay the same loss pattern when built from one spec.
TEST(DuplexPath, DirectionsDeriveIndependentLossStreams) {
  Simulator sim;
  LinkSpec lossy = fast_spec();
  lossy.loss_rate = 0.5;
  lossy.loss_seed = 9;

  // Standalone pipes use the seed as given: identical patterns.
  OneWayPipe a{sim, lossy};
  OneWayPipe b{sim, lossy};
  std::vector<std::int64_t> ids_a;
  std::vector<std::int64_t> ids_b;
  a.set_receiver([&](Packet p) { ids_a.push_back(p.payload); });
  b.set_receiver([&](Packet p) { ids_b.push_back(p.payload); });
  for (std::int64_t i = 0; i < 32; ++i) {
    a.send(data_packet(i));
    b.send(data_packet(i));
  }
  sim.run_until_idle();
  EXPECT_EQ(ids_a, ids_b);
  EXPECT_FALSE(ids_a.empty());
  EXPECT_LT(ids_a.size(), 32u);

  // Through DuplexPath each direction forks its own stream.
  DuplexPath path{sim, lossy, lossy};
  std::vector<std::int64_t> up_ids;
  std::vector<std::int64_t> down_ids;
  path.set_server_receiver([&](Packet p) { up_ids.push_back(p.payload); });
  path.set_client_receiver([&](Packet p) { down_ids.push_back(p.payload); });
  for (std::int64_t i = 0; i < 32; ++i) {
    path.send_up(data_packet(i));
    path.send_down(data_packet(i));
  }
  sim.run_until_idle();
  EXPECT_NE(up_ids, down_ids);
}

TEST(OneWayPipe, BatchReceiverSeesWholeTickSweepAsOneSpan) {
  Simulator sim;
  OneWayPipe pipe{sim, fast_spec()};
  std::vector<std::vector<std::int64_t>> spans;
  pipe.set_receiver_batch([&](std::span<Packet> ps) {
    std::vector<std::int64_t> seqs;
    for (const Packet& p : ps) seqs.push_back(p.seq);
    spans.push_back(std::move(seqs));
  });
  std::vector<Packet> burst(3);
  for (std::int64_t i = 0; i < 3; ++i) burst[static_cast<std::size_t>(i)].seq = i;
  pipe.send_batch({burst.data(), burst.size()});
  sim.run_until_idle();
  // The rate link serializes, so deliveries may land on distinct ticks
  // (width-1 spans); order across all spans is what the contract fixes.
  ASSERT_FALSE(spans.empty());
  std::vector<std::int64_t> all;
  for (const auto& s : spans) all.insert(all.end(), s.begin(), s.end());
  EXPECT_EQ(all, (std::vector<std::int64_t>{0, 1, 2}));
  EXPECT_TRUE(pipe.counters_consistent());
}

TEST(OneWayPipe, SendBatchMatchesScalarSendExactly) {
  const auto run = [](bool batched) {
    Simulator sim;
    LinkSpec spec;
    spec.rate_mbps = 12.0;
    spec.one_way_delay = msec(3);
    OneWayPipe pipe{sim, spec};
    std::vector<std::pair<std::int64_t, std::int64_t>> trace;
    pipe.set_receiver([&](Packet p) { trace.emplace_back(sim.now().usec(), p.seq); });
    std::vector<Packet> burst(5);
    for (std::int64_t i = 0; i < 5; ++i) {
      burst[static_cast<std::size_t>(i)].seq = i;
      burst[static_cast<std::size_t>(i)].payload = 1000;
    }
    if (batched) {
      pipe.send_batch({burst.data(), burst.size()});
    } else {
      for (Packet& p : burst) pipe.send(std::move(p));
    }
    sim.run_until_idle();
    return trace;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(OneWayPipe, BlackholedBatchCountsEveryPacket) {
  Simulator sim;
  OneWayPipe pipe{sim, fast_spec()};
  int delivered = 0;
  pipe.set_receiver([&](Packet) { ++delivered; });
  pipe.set_blackhole(true);
  std::vector<Packet> burst(4);
  pipe.send_batch({burst.data(), burst.size()});
  sim.run_until_idle();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(pipe.blackholed_packets(), 4u);
  EXPECT_TRUE(pipe.counters_consistent());
}

// Entry flattening: while middlebox and burst stages are disabled the
// pipe entry bypasses them entirely, so their counters must stay zero;
// fault toggles mid-run rewire the chain and the stages start (and
// stop) counting, with conservation holding throughout.
TEST(OneWayPipe, EntryBypassesDisabledStagesAndRewiresOnFaultToggles) {
  Simulator sim;
  OneWayPipe pipe{sim, fast_spec()};
  int delivered = 0;
  pipe.set_receiver([&](Packet) { ++delivered; });

  pipe.send(data_packet(100));
  sim.run_until_idle();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(pipe.middlebox_stage().counters().accepted, 0u)
      << "disabled middlebox saw traffic: entry not flattened";
  EXPECT_EQ(pipe.burst_stage().counters().accepted, 0u);

  MiddleboxSpec transparent;  // all probabilities zero, but enabled
  pipe.set_middlebox(transparent);
  pipe.send(data_packet(100));
  sim.run_until_idle();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(pipe.middlebox_stage().counters().accepted, 1u);

  pipe.clear_middlebox();
  pipe.send(data_packet(100));
  sim.run_until_idle();
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(pipe.middlebox_stage().counters().accepted, 1u)
      << "cleared middlebox still on the path";
  EXPECT_TRUE(pipe.counters_consistent());
}

TEST(NetworkInterface, TapForcesPerPacketDeliveryOverBatchReceiver) {
  Simulator sim;
  DuplexPath path{sim, fast_spec(), fast_spec()};
  NetworkInterface iface{"wifi", sim, path, false};
  int scalar_calls = 0;
  int batch_calls = 0;
  int tap_events = 0;
  iface.set_receiver([&](Packet) { ++scalar_calls; });
  iface.set_receiver_batch([&](std::span<Packet>) { ++batch_calls; });
  iface.set_tap([&](TimePoint, PacketDir, const Packet&) { ++tap_events; });
  for (int i = 0; i < 3; ++i) path.send_down(data_packet(50));
  sim.run_until_idle();
  EXPECT_EQ(scalar_calls, 3);
  EXPECT_EQ(batch_calls, 0) << "tapped interface must take the per-packet path";
  EXPECT_EQ(tap_events, 3);
}

TEST(NetworkInterface, UntappedBatchReceiverTakesSweeps) {
  Simulator sim;
  DuplexPath path{sim, fast_spec(), fast_spec()};
  NetworkInterface iface{"wifi", sim, path, false};
  int scalar_calls = 0;
  std::size_t batched_packets = 0;
  iface.set_receiver([&](Packet) { ++scalar_calls; });
  iface.set_receiver_batch([&](std::span<Packet> ps) { batched_packets += ps.size(); });
  for (int i = 0; i < 3; ++i) path.send_down(data_packet(50));
  sim.run_until_idle();
  EXPECT_EQ(batched_packets, 3u);
  EXPECT_EQ(scalar_calls, 0);
}

}  // namespace
}  // namespace mn
