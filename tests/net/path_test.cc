#include "net/path.hpp"

#include <gtest/gtest.h>

#include "net/trace_gen.hpp"

namespace mn {
namespace {

LinkSpec fast_spec() {
  LinkSpec s;
  s.rate_mbps = 100.0;
  s.one_way_delay = msec(5);
  return s;
}

Packet data_packet(std::int64_t payload) {
  Packet p;
  p.payload = payload;
  return p;
}

TEST(OneWayPipe, DeliversWithLinkPlusPropagationDelay) {
  Simulator sim;
  LinkSpec spec;
  spec.rate_mbps = 12.0;  // 1500B -> 1ms serialization
  spec.one_way_delay = msec(20);
  OneWayPipe pipe{sim, spec};
  TimePoint arrival{};
  pipe.set_receiver([&](Packet) { arrival = sim.now(); });
  pipe.send(data_packet(1460));
  sim.run_until_idle();
  EXPECT_EQ(arrival.usec(), msec(21).usec());
}

TEST(OneWayPipe, TraceSpecUsesTraceLink) {
  Simulator sim;
  LinkSpec spec;
  spec.trace = std::make_shared<DeliveryTrace>(std::vector<Duration>{msec(4)}, msec(10));
  spec.one_way_delay = msec(1);
  OneWayPipe pipe{sim, spec};
  TimePoint arrival{};
  pipe.set_receiver([&](Packet) { arrival = sim.now(); });
  pipe.send(data_packet(100));
  sim.run_until_idle();
  EXPECT_EQ(arrival.usec(), msec(5).usec());
}

TEST(OneWayPipe, LossStageDrops) {
  Simulator sim;
  LinkSpec spec = fast_spec();
  spec.loss_rate = 1.0;  // drop everything
  OneWayPipe pipe{sim, spec};
  int delivered = 0;
  pipe.set_receiver([&](Packet) { ++delivered; });
  for (int i = 0; i < 10; ++i) pipe.send(data_packet(100));
  sim.run_until_idle();
  EXPECT_EQ(delivered, 0);
}

TEST(DuplexPath, BothDirectionsIndependent) {
  Simulator sim;
  DuplexPath path{sim, fast_spec(), fast_spec()};
  int at_server = 0;
  int at_client = 0;
  path.set_server_receiver([&](Packet) { ++at_server; });
  path.set_client_receiver([&](Packet) { ++at_client; });
  path.send_up(data_packet(10));
  path.send_up(data_packet(10));
  path.send_down(data_packet(10));
  sim.run_until_idle();
  EXPECT_EQ(at_server, 2);
  EXPECT_EQ(at_client, 1);
}

TEST(NetworkInterface, PassesTrafficWhenUp) {
  Simulator sim;
  DuplexPath path{sim, fast_spec(), fast_spec()};
  NetworkInterface iface{"wifi", sim, path};
  int at_server = 0;
  int at_client = 0;
  path.set_server_receiver([&](Packet) { ++at_server; });
  iface.set_receiver([&](Packet) { ++at_client; });
  iface.send(data_packet(10));
  path.send_down(data_packet(10));
  sim.run_until_idle();
  EXPECT_EQ(at_server, 1);
  EXPECT_EQ(at_client, 1);
}

TEST(NetworkInterface, DropsAllTrafficWhenDown) {
  Simulator sim;
  DuplexPath path{sim, fast_spec(), fast_spec()};
  NetworkInterface iface{"lte", sim, path};
  int received = 0;
  path.set_server_receiver([&](Packet) { FAIL() << "sent while down"; });
  iface.set_receiver([&](Packet) { ++received; });
  iface.disable_soft();
  iface.send(data_packet(10));
  path.send_down(data_packet(10));
  sim.run_until_idle();
  EXPECT_EQ(received, 0);
}

TEST(NetworkInterface, SoftDisableNotifiesListeners) {
  Simulator sim;
  DuplexPath path{sim, fast_spec(), fast_spec()};
  NetworkInterface iface{"lte", sim, path};
  std::vector<bool> events;
  iface.add_state_listener([&](bool up) { events.push_back(up); });
  iface.disable_soft();
  iface.plug_in();
  EXPECT_EQ(events, (std::vector<bool>{false, true}));
}

TEST(NetworkInterface, SilentUnplugDoesNotNotify) {
  Simulator sim;
  DuplexPath path{sim, fast_spec(), fast_spec()};
  NetworkInterface iface{"lte-usb", sim, path, /*reports_carrier_loss=*/false};
  int notifications = 0;
  iface.add_state_listener([&](bool) { ++notifications; });
  iface.unplug();
  EXPECT_FALSE(iface.is_up());
  EXPECT_EQ(notifications, 0);
  // Replug always notifies (the OS sees the device appear).
  iface.plug_in();
  EXPECT_EQ(notifications, 1);
}

TEST(NetworkInterface, CarrierReportingUnplugNotifies) {
  Simulator sim;
  DuplexPath path{sim, fast_spec(), fast_spec()};
  NetworkInterface iface{"wifi", sim, path, /*reports_carrier_loss=*/true};
  int down_events = 0;
  iface.add_state_listener([&](bool up) { down_events += up ? 0 : 1; });
  iface.unplug();
  EXPECT_EQ(down_events, 1);
}

TEST(NetworkInterface, TapSeesBothDirections) {
  Simulator sim;
  DuplexPath path{sim, fast_spec(), fast_spec()};
  NetworkInterface iface{"wifi", sim, path};
  int sent = 0;
  int received = 0;
  iface.set_tap([&](TimePoint, PacketDir dir, const Packet&) {
    (dir == PacketDir::kSent ? sent : received)++;
  });
  iface.set_receiver([](Packet) {});
  iface.send(data_packet(10));
  path.send_down(data_packet(10));
  sim.run_until_idle();
  EXPECT_EQ(sent, 1);
  EXPECT_EQ(received, 1);
}

TEST(NetworkInterface, RedundantStateChangeIsIdempotent) {
  Simulator sim;
  DuplexPath path{sim, fast_spec(), fast_spec()};
  NetworkInterface iface{"wifi", sim, path};
  int notifications = 0;
  iface.add_state_listener([&](bool) { ++notifications; });
  iface.plug_in();  // already up
  EXPECT_EQ(notifications, 0);
  iface.disable_soft();
  iface.disable_soft();
  EXPECT_EQ(notifications, 1);
}

}  // namespace
}  // namespace mn
