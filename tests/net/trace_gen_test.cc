#include "net/trace_gen.hpp"

#include <gtest/gtest.h>

namespace mn {
namespace {

TEST(TraceGen, ConstantRateMatchesRequestedRate) {
  const auto t = constant_rate_trace(12.0, sec(1));
  EXPECT_NEAR(t.average_rate_mbps(), 12.0, 0.05);
}

TEST(TraceGen, ConstantRateRejectsNonPositive) {
  EXPECT_THROW(constant_rate_trace(0.0, sec(1)), std::invalid_argument);
  EXPECT_THROW(constant_rate_trace(-3.0, sec(1)), std::invalid_argument);
}

TEST(TraceGen, VeryLowRateStillHasOneOpportunity) {
  const auto t = constant_rate_trace(0.001, msec(100));
  EXPECT_GE(t.opportunities_per_period(), 1u);
}

TEST(TraceGen, PoissonApproximatesRate) {
  Rng rng{42};
  const auto t = poisson_trace(10.0, sec(10), rng);
  EXPECT_NEAR(t.average_rate_mbps(), 10.0, 0.5);
}

TEST(TraceGen, PoissonIsDeterministicPerSeed) {
  Rng a{7};
  Rng b{7};
  const auto ta = poisson_trace(5.0, sec(1), a);
  const auto tb = poisson_trace(5.0, sec(1), b);
  EXPECT_EQ(ta.to_mahimahi(), tb.to_mahimahi());
}

TEST(TraceGen, TwoStateAverageBetweenGoodAndBad) {
  Rng rng{3};
  TwoStateSpec spec;
  spec.good_mbps = 20.0;
  spec.bad_mbps = 2.0;
  spec.mean_dwell = msec(200);
  const auto t = two_state_trace(spec, sec(20), rng);
  const double avg = t.average_rate_mbps();
  EXPECT_GT(avg, 2.0);
  EXPECT_LT(avg, 20.0);
  // With equal dwell, the long-run average should be near the midpoint.
  EXPECT_NEAR(avg, 11.0, 3.0);
}

// Parameterized property: generated traces always satisfy the
// DeliveryTrace invariants across a rate sweep (the constructor throws on
// violation, so construction itself is the assertion).
class TraceGenSweep : public ::testing::TestWithParam<double> {};

TEST_P(TraceGenSweep, GeneratorsProduceValidTraces) {
  const double mbps = GetParam();
  Rng rng{99};
  const auto c = constant_rate_trace(mbps, sec(1));
  EXPECT_NEAR(c.average_rate_mbps(), mbps, mbps * 0.05 + 0.02);
  const auto p = poisson_trace(mbps, sec(1), rng);
  EXPECT_GT(p.opportunities_per_period(), 0u);
  TwoStateSpec spec;
  spec.good_mbps = mbps * 1.5;
  spec.bad_mbps = mbps * 0.5;
  const auto g = two_state_trace(spec, sec(1), rng);
  EXPECT_GT(g.opportunities_per_period(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Rates, TraceGenSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0));

}  // namespace
}  // namespace mn
