// MiddleboxBox unit tests: box-level policy draws, SYN option
// stripping/dropping, per-packet DSS mangling, and the zero-cost
// disabled path.
#include "net/middlebox.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/packet.hpp"

namespace mn {
namespace {

Packet syn(MpOption opt) {
  Packet p;
  p.flags.syn = true;
  p.mp_option = opt;
  return p;
}

Packet data(std::int64_t data_seq) {
  Packet p;
  p.payload = Packet::kMss;
  p.seq = 1;
  p.data_seq = data_seq;
  return p;
}

TEST(MiddleboxBox, DisabledIsTransparent) {
  MiddleboxBox box;
  std::vector<Packet> out;
  box.set_next([&out](Packet p) { out.push_back(p); });
  box.accept(syn(MpOption::kCapable));
  box.accept(data(42));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].mp_option, MpOption::kCapable);
  EXPECT_EQ(out[1].data_seq, 42);
  EXPECT_EQ(box.syn_stripped(), 0u);
  EXPECT_EQ(box.dss_mangled(), 0u);
}

TEST(MiddleboxBox, PolicyDrawIsDeterministicInSeed) {
  // The same seed draws the same box; probability 1 / 0 pin the draws.
  for (const std::uint64_t seed : {1ull, 7ull, 20140814ull}) {
    MiddleboxSpec spec;
    spec.strip_capable = 1.0;
    spec.strip_join = 0.0;
    spec.seed = seed;
    MiddleboxBox a, b;
    a.set_spec(spec);
    b.set_spec(spec);
    EXPECT_EQ(a.strips_capable(), b.strips_capable());
    EXPECT_TRUE(a.strips_capable());
    EXPECT_FALSE(a.strips_join());
  }
}

TEST(MiddleboxBox, StripsCapableButNotJoin) {
  MiddleboxSpec spec;
  spec.strip_capable = 1.0;
  MiddleboxBox box;
  box.set_spec(spec);
  std::vector<Packet> out;
  box.set_next([&out](Packet p) { out.push_back(p); });
  box.accept(syn(MpOption::kCapable));
  box.accept(syn(MpOption::kJoin));
  box.accept(syn(MpOption::kNone));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].mp_option, MpOption::kNone);  // stripped
  EXPECT_EQ(out[1].mp_option, MpOption::kJoin);  // join policy not drawn
  EXPECT_EQ(out[2].mp_option, MpOption::kNone);
  EXPECT_EQ(box.syn_stripped(), 1u);
}

TEST(MiddleboxBox, DropsSynsCarryingUnknownOptions) {
  MiddleboxSpec spec;
  spec.drop_unknown_syn = 1.0;
  MiddleboxBox box;
  box.set_spec(spec);
  std::vector<Packet> out;
  box.set_next([&out](Packet p) { out.push_back(p); });
  box.accept(syn(MpOption::kCapable));
  box.accept(syn(MpOption::kNone));  // plain SYN sails through
  box.accept(data(0));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[0].flags.syn);  // the surviving plain SYN
  EXPECT_EQ(out[0].mp_option, MpOption::kNone);
  EXPECT_FALSE(out[1].flags.syn);  // the data packet
  EXPECT_EQ(box.syn_dropped(), 1u);
  EXPECT_EQ(box.counters().dropped, 1);
  EXPECT_EQ(box.counters().accepted, box.counters().delivered + box.counters().dropped);
}

TEST(MiddleboxBox, RewriteSeqKillsEveryDss) {
  MiddleboxSpec spec;
  spec.rewrite_seq = 1.0;
  MiddleboxBox box;
  box.set_spec(spec);
  std::vector<Packet> out;
  box.set_next([&out](Packet p) { out.push_back(p); });
  for (int i = 0; i < 10; ++i) box.accept(data(i * Packet::kMss));
  ASSERT_EQ(out.size(), 10u);
  for (const auto& p : out) {
    EXPECT_EQ(p.data_seq, -1);
    EXPECT_EQ(p.data_ack, -1);
  }
  EXPECT_EQ(box.dss_mangled(), 10u);
}

TEST(MiddleboxBox, ManglesDssAtConfiguredRate) {
  MiddleboxSpec spec;
  spec.mangle_dss = 0.3;
  MiddleboxBox box;
  box.set_spec(spec);
  int mangled = 0;
  box.set_next([&mangled](Packet p) { mangled += p.data_seq < 0; });
  const int n = 20'000;
  for (int i = 0; i < n; ++i) box.accept(data(i));
  const double rate = static_cast<double>(mangled) / n;
  EXPECT_NEAR(rate, 0.3, 0.02);
  EXPECT_EQ(box.dss_mangled(), static_cast<std::uint64_t>(mangled));
}

TEST(MiddleboxBox, MpFailSignalAlwaysPassesThrough) {
  // MP_FAIL rides a bare ACK with no DSS fields — even a seq-rewriting
  // box must forward it intact or fallback could never converge.
  MiddleboxSpec spec;
  spec.rewrite_seq = 1.0;
  spec.mangle_dss = 1.0;
  MiddleboxBox box;
  box.set_spec(spec);
  std::vector<Packet> out;
  box.set_next([&out](Packet p) { out.push_back(p); });
  Packet fail;
  fail.flags.ack = true;
  fail.mp_option = MpOption::kFail;
  box.accept(fail);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].mp_option, MpOption::kFail);
}

TEST(MiddleboxBox, DisableRestoresTransparency) {
  MiddleboxSpec spec;
  spec.strip_capable = 1.0;
  MiddleboxBox box;
  box.set_spec(spec);
  box.disable();
  std::vector<Packet> out;
  box.set_next([&out](Packet p) { out.push_back(p); });
  box.accept(syn(MpOption::kCapable));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].mp_option, MpOption::kCapable);
}

}  // namespace
}  // namespace mn
