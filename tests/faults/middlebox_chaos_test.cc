// Middlebox adversary in the fault layer: plan round-trip, gated random
// draws, injector application, and the middlebox chaos soak — every
// flow must terminate, and under middlebox-only plans every watchdog
// abort must carry a recorded fallback reason.
#include <gtest/gtest.h>

#include "faults/chaos.hpp"
#include "faults/fault_plan.hpp"

namespace mn {
namespace {

TEST(MiddleboxFaultPlan, SerializeParseRoundTripsMiddleboxEvents) {
  FaultPlan plan;
  MiddleboxSpec spec;
  spec.strip_capable = 0.75;
  spec.strip_join = 0.5;
  spec.drop_unknown_syn = 0.125;
  spec.mangle_dss = 0.03125;
  spec.rewrite_seq = 0.25;
  spec.seed = 0xdeadbeefcafe;
  plan.middlebox_on(msec(100), PathId::kWifi, spec, LinkDir::kDown);
  plan.middlebox_off(sec(2), PathId::kWifi, LinkDir::kDown);
  const std::string text = plan.serialize();
  const FaultPlan back = FaultPlan::parse(text);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.serialize(), text);
  const FaultEvent& on = back.events()[0];
  EXPECT_EQ(on.kind, FaultKind::kMiddleboxOn);
  EXPECT_EQ(on.middlebox.strip_capable, 0.75);
  EXPECT_EQ(on.middlebox.strip_join, 0.5);
  EXPECT_EQ(on.middlebox.drop_unknown_syn, 0.125);
  EXPECT_EQ(on.middlebox.mangle_dss, 0.03125);
  EXPECT_EQ(on.middlebox.rewrite_seq, 0.25);
  EXPECT_EQ(on.middlebox.seed, 0xdeadbeefcafeull);
  EXPECT_EQ(back.events()[1].kind, FaultKind::kMiddleboxOff);
}

TEST(MiddleboxFaultPlan, ParseRejectsOutOfRangeProbabilities) {
  EXPECT_THROW(
      (void)FaultPlan::parse("100000 mbox_on wifi both 1.5 0 0 0 0 7\n"),
      std::runtime_error);
}

TEST(MiddleboxFaultPlan, GatedDrawKeepsLegacyStreamIdentical) {
  // The middlebox draw happens after the legacy event loop and only
  // when the knob is on: for any seed, the legacy prefix of a
  // middlebox-enabled plan equals the whole legacy plan byte for byte.
  RandomPlanOptions legacy;
  RandomPlanOptions with_box = legacy;
  with_box.middlebox_probability = 1.0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const FaultPlan a = random_fault_plan(seed, legacy);
    const FaultPlan b = random_fault_plan(seed, with_box);
    ASSERT_GT(b.size(), a.size()) << "seed " << seed;
    // Plans keep themselves time-sorted, so the middlebox event may
    // interleave anywhere: compare the legacy plan against b with the
    // middlebox events filtered out.
    std::vector<std::string> b_legacy;
    bool has_box = false;
    for (const FaultEvent& ev : b.events()) {
      if (ev.kind == FaultKind::kMiddleboxOn || ev.kind == FaultKind::kMiddleboxOff) {
        has_box = has_box || ev.kind == FaultKind::kMiddleboxOn;
        continue;
      }
      b_legacy.push_back(ev.describe());
    }
    ASSERT_EQ(b_legacy.size(), a.size()) << "seed " << seed;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.events()[i].describe(), b_legacy[i])
          << "seed " << seed << " event " << i;
    }
    EXPECT_TRUE(has_box) << "seed " << seed;
  }
}

TEST(MiddleboxFaultPlan, MaxEventsZeroYieldsMiddleboxOnlyPlans) {
  RandomPlanOptions options;
  options.max_events = 0;
  options.middlebox_probability = 1.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const FaultPlan plan = random_fault_plan(seed, options);
    ASSERT_GE(plan.size(), 1u);
    for (const FaultEvent& ev : plan.events()) {
      EXPECT_TRUE(ev.kind == FaultKind::kMiddleboxOn ||
                  ev.kind == FaultKind::kMiddleboxOff)
          << ev.describe();
    }
  }
}

ChaosSoakOptions middlebox_soak_options(int runs) {
  ChaosSoakOptions options;
  options.runs = runs;
  options.max_bytes = 400'000;
  options.timeout = sec(60);
  options.stall_limit = sec(10);
  options.plan.horizon = sec(4);
  options.plan.max_events = 0;  // middlebox-only plans
  options.plan.middlebox_probability = 1.0;
  return options;
}

TEST(MiddleboxChaos, SingleRunIsDeterministicIncludingNegotiationFields) {
  const ChaosSoakOptions options = middlebox_soak_options(1);
  const ChaosRunReport a = run_chaos_run(17, options);
  const ChaosRunReport b = run_chaos_run(17, options);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.plan_text, b.plan_text);
  EXPECT_EQ(a.negotiated_mp, b.negotiated_mp);
  EXPECT_EQ(a.achieved_mp, b.achieved_mp);
  EXPECT_EQ(a.fallback_reason, b.fallback_reason);
  EXPECT_EQ(a.bytes_observed, b.bytes_observed);
}

TEST(MiddleboxChaos, ReportCodecRoundTripsNegotiationFields) {
  const ChaosRunReport r = run_chaos_run(23, middlebox_soak_options(1));
  const ChaosRunReport back = parse_chaos_report(serialize_chaos_report(r));
  EXPECT_EQ(back.negotiated_mp, r.negotiated_mp);
  EXPECT_EQ(back.achieved_mp, r.achieved_mp);
  EXPECT_EQ(back.fallback_reason, r.fallback_reason);
  EXPECT_EQ(back.plan_text, r.plan_text);
  EXPECT_EQ(back.violations, r.violations);
}

// The middlebox acceptance gate: 200 runs whose plans contain ONLY
// middlebox events.  Every flow must terminate (complete or abort
// within the watchdog — the soak returning at all proves no hang), hold
// all four chaos invariants, and any watchdog abort must carry a
// recorded fallback_reason: under a pure middlebox adversary, "stalled
// with no explanation" is exactly the bug class this PR removes.
TEST(MiddleboxChaos, TwoHundredMiddleboxPlansTerminateWithRecordedReasons) {
  const ChaosSoakOptions options = middlebox_soak_options(200);
  int completed = 0;
  int aborted = 0;
  int degraded = 0;
  for (int i = 0; i < options.runs; ++i) {
    const ChaosRunReport r = run_chaos_run(options.seed + static_cast<std::uint64_t>(i),
                                           options);
    for (const std::string& v : r.violations) {
      ADD_FAILURE() << "seed " << r.seed << " violated: " << v << "\nplan:\n"
                    << r.plan_text;
    }
    if (r.completed) {
      ++completed;
    } else {
      ++aborted;
      EXPECT_FALSE(r.fallback_reason.empty())
          << "seed " << r.seed << " aborted (" << r.failure_reason
          << ") without a recorded fallback reason\nplan:\n" << r.plan_text;
    }
    degraded += !r.fallback_reason.empty();
  }
  EXPECT_EQ(completed + aborted, options.runs);
  // Middleboxes must actually bite: some flows degrade, most complete.
  EXPECT_GT(degraded, 0);
  EXPECT_GT(completed, options.runs / 2);
}

}  // namespace
}  // namespace mn
