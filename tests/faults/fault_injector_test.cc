#include "faults/fault_injector.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "mptcp/testbed.hpp"

namespace mn {
namespace {

LinkSpec mk(double mbps, Duration delay, int queue = 64) {
  LinkSpec s;
  s.rate_mbps = mbps;
  s.one_way_delay = delay;
  s.queue_packets = queue;
  return s;
}

MpNetworkSetup basic_setup(double wifi_mbps = 10, double lte_mbps = 10) {
  return symmetric_setup(mk(wifi_mbps, msec(10)), mk(lte_mbps, msec(30)));
}

MptcpSpec spec(PathId primary, MpMode mode = MpMode::kFull) {
  MptcpSpec s;
  s.primary = primary;
  s.cc = CcAlgo::kDecoupled;
  s.mode = mode;
  return s;
}

Packet data_packet(std::int64_t payload) {
  Packet p;
  p.payload = payload;
  return p;
}

TEST(FaultInjector, BlackholeDropsSilentlyAndRestoreResumes) {
  Simulator sim;
  DuplexPath path{sim, mk(100, msec(1)), mk(100, msec(1))};
  FaultInjector injector{sim};
  injector.set_target(PathId::kWifi, &path);

  FaultPlan plan;
  plan.blackhole(msec(10), PathId::kWifi).restore(msec(20), PathId::kWifi);
  injector.arm(plan);

  int at_server = 0;
  path.set_server_receiver([&](Packet) { ++at_server; });
  // One packet before, one during, one after the blackhole window.
  sim.schedule_at(TimePoint{msec(5).usec()}, [&] { path.send_up(data_packet(100)); });
  sim.schedule_at(TimePoint{msec(15).usec()}, [&] { path.send_up(data_packet(100)); });
  sim.schedule_at(TimePoint{msec(25).usec()}, [&] { path.send_up(data_packet(100)); });
  sim.run_until_idle();

  EXPECT_EQ(at_server, 2);
  EXPECT_EQ(path.uplink().blackholed_packets(), 1u);
  EXPECT_FALSE(path.uplink().blackholed());
  EXPECT_EQ(injector.events_applied(), 2);
  EXPECT_EQ(injector.events_skipped(), 0);
  ASSERT_EQ(injector.log().size(), 2u);
  EXPECT_NE(injector.log()[0].find("blackhole"), std::string::npos);
}

TEST(FaultInjector, DirectionalBlackholeOnlyAffectsThatDirection) {
  Simulator sim;
  DuplexPath path{sim, mk(100, msec(1)), mk(100, msec(1))};
  FaultInjector injector{sim};
  injector.set_target(PathId::kLte, &path);
  FaultPlan plan;
  plan.blackhole(msec(0), PathId::kLte, LinkDir::kUp);
  injector.arm(plan);

  int at_server = 0;
  int at_client = 0;
  path.set_server_receiver([&](Packet) { ++at_server; });
  path.set_client_receiver([&](Packet) { ++at_client; });
  sim.schedule_at(TimePoint{msec(5).usec()}, [&] {
    path.send_up(data_packet(10));
    path.send_down(data_packet(10));
  });
  sim.run_until_idle();
  EXPECT_EQ(at_server, 0);
  EXPECT_EQ(at_client, 1);
}

TEST(FaultInjector, InterfaceEventsWithoutInterfaceAreSkipped) {
  Simulator sim;
  DuplexPath path{sim, mk(10, msec(5)), mk(10, msec(5))};
  FaultInjector injector{sim};
  injector.set_target(PathId::kWifi, &path);  // no NetworkInterface
  FaultPlan plan;
  plan.soft_down(msec(1), PathId::kWifi)
      .unplug(msec(2), PathId::kWifi)
      .blackhole(msec(3), PathId::kLte);  // no target registered for LTE at all
  injector.arm(plan);
  sim.run_until_idle();
  EXPECT_EQ(injector.events_applied(), 0);
  EXPECT_EQ(injector.events_skipped(), 3);
}

TEST(FaultInjector, DisarmCancelsEverythingPending) {
  Simulator sim;
  DuplexPath path{sim, mk(10, msec(5)), mk(10, msec(5))};
  FaultInjector injector{sim};
  injector.set_target(PathId::kWifi, &path);
  FaultPlan plan;
  plan.blackhole(sec(10), PathId::kWifi).restore(sec(20), PathId::kWifi);
  injector.arm(plan);
  EXPECT_EQ(sim.pending_events(), 2u);
  injector.disarm();
  sim.run_until_idle();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(injector.events_applied(), 0);
  EXPECT_FALSE(path.uplink().blackholed());
}

TEST(FaultInjector, DelaySpikeShiftsArrivalsUntilCleared) {
  Simulator sim;
  DuplexPath path{sim, mk(12, msec(20)), mk(12, msec(20))};  // 1ms serialization
  FaultInjector injector{sim};
  injector.set_target(PathId::kWifi, &path);
  FaultPlan plan;
  plan.delay_spike(msec(10), PathId::kWifi, msec(100), LinkDir::kUp)
      .delay_clear(msec(200), PathId::kWifi, LinkDir::kUp);
  injector.arm(plan);

  std::vector<std::int64_t> arrivals;
  path.set_server_receiver([&](Packet) { arrivals.push_back(sim.now().usec()); });
  sim.schedule_at(TimePoint{msec(50).usec()}, [&] { path.send_up(data_packet(1460)); });
  sim.schedule_at(TimePoint{msec(250).usec()}, [&] { path.send_up(data_packet(1460)); });
  sim.run_until_idle();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], msec(171).usec());  // 50 + 1 + 20 + 100
  EXPECT_EQ(arrivals[1], msec(271).usec());  // 250 + 1 + 20
}

TEST(FaultInjector, RateCrashSlowsDeliveryAndRestoreHeals) {
  Simulator sim;
  DuplexPath path{sim, mk(12, msec(0)), mk(12, msec(0))};
  FaultInjector injector{sim};
  injector.set_target(PathId::kWifi, &path);
  FaultPlan plan;
  plan.rate_crash(msec(0), PathId::kWifi, 1.2, LinkDir::kUp)  // 1500B -> 10ms
      .rate_restore(msec(100), PathId::kWifi, LinkDir::kUp);
  injector.arm(plan);

  std::vector<std::int64_t> arrivals;
  path.set_server_receiver([&](Packet) { arrivals.push_back(sim.now().usec()); });
  sim.schedule_at(TimePoint{msec(10).usec()}, [&] { path.send_up(data_packet(1460)); });
  sim.schedule_at(TimePoint{msec(200).usec()}, [&] { path.send_up(data_packet(1460)); });
  sim.run_until_idle();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], msec(20).usec());   // crashed: 10ms serialization
  EXPECT_EQ(arrivals[1], msec(201).usec());  // restored: 1ms serialization
}

TEST(FaultInjector, BurstLossTogglesGilbertElliottStage) {
  Simulator sim;
  DuplexPath path{sim, mk(100, msec(1)), mk(100, msec(1))};
  FaultInjector injector{sim};
  injector.set_target(PathId::kWifi, &path);
  GeLossSpec ge;
  ge.loss_good = 1.0;  // drop everything while enabled (degenerate but visible)
  ge.loss_bad = 1.0;
  FaultPlan plan;
  plan.burst_loss(msec(10), PathId::kWifi, ge, LinkDir::kUp)
      .burst_loss_off(msec(20), PathId::kWifi, LinkDir::kUp);
  injector.arm(plan);

  int at_server = 0;
  path.set_server_receiver([&](Packet) { ++at_server; });
  sim.schedule_at(TimePoint{msec(15).usec()}, [&] { path.send_up(data_packet(10)); });
  sim.schedule_at(TimePoint{msec(25).usec()}, [&] { path.send_up(data_packet(10)); });
  sim.run_until_idle();
  EXPECT_EQ(at_server, 1);
  EXPECT_FALSE(path.uplink().burst_stage().enabled());
}

TEST(FaultInjector, SoftDownViaPlanNotifiesPathManager) {
  // The soft_down event must reach MPTCP as a path-state notification
  // (RST-style failover), unlike the silent blackhole.
  Simulator sim;
  MptcpTestbed bed{sim, basic_setup(), spec(PathId::kWifi)};
  FaultInjector injector{sim};
  injector.set_target(PathId::kWifi, &bed.path(PathId::kWifi), &bed.iface(PathId::kWifi));
  FaultPlan plan;
  plan.soft_down(msec(400), PathId::kWifi);
  injector.arm(plan);
  bed.start_transfer(2'000'000, Direction::kDownload);
  EXPECT_TRUE(bed.run_until_finished(sec(60)));
  EXPECT_TRUE(bed.client().subflow_dead(0));
  EXPECT_EQ(bed.client().data_delivered_in_order(), 2'000'000);
}

// ---------------------------------------------------------------------
// Figure 15g via the FaultPlan API: a silent blackhole of the primary
// (tethered LTE) stalls the whole connection — Backup mode never learns
// the path died — and the transfer resumes once the blackhole lifts.
// ---------------------------------------------------------------------
TEST(FaultInjector, ScriptedBlackholeReproducesFigure15gStall) {
  Simulator sim;
  MptcpTestbed bed{sim, basic_setup(), spec(PathId::kLte, MpMode::kBackup)};
  FaultInjector injector{sim};
  injector.set_target(PathId::kWifi, &bed.path(PathId::kWifi), &bed.iface(PathId::kWifi));
  injector.set_target(PathId::kLte, &bed.path(PathId::kLte), &bed.iface(PathId::kLte));
  FaultPlan plan;
  plan.blackhole(msec(300), PathId::kLte).restore(sec(5), PathId::kLte);
  injector.arm(plan);

  bed.start_transfer(2'000'000, Direction::kDownload);
  std::int64_t delivered_at_blackhole = -1;
  sim.schedule_at(TimePoint{msec(350).usec()},
                  [&] { delivered_at_blackhole = bed.client().data_delivered_in_order(); });
  std::int64_t delivered_mid_stall = -1;
  sim.schedule_at(TimePoint{sec(4).usec()},
                  [&] { delivered_mid_stall = bed.client().data_delivered_in_order(); });

  const WatchdogResult result = bed.run_with_watchdog(sec(60), sec(30));
  EXPECT_TRUE(result.completed) << result.reason;

  // The stall signature: no progress between the blackhole and the
  // restore, no failover to WiFi (the failure is silent), and a long
  // watchdog-visible progress gap.
  EXPECT_GE(delivered_at_blackhole, 0);
  EXPECT_LE(delivered_mid_stall - delivered_at_blackhole, 64 * 1460)
      << "transfer kept moving through the blackhole";
  std::int64_t wifi_payload = 0;
  for (const auto& ev : bed.events(PathId::kWifi)) wifi_payload += ev.payload;
  EXPECT_EQ(wifi_payload, 0) << "backup activated despite silent failure";
  EXPECT_GE(result.max_stall.usec(), sec(3).usec());
  EXPECT_EQ(bed.client().data_delivered_in_order(), 2'000'000);
}

// ---------------------------------------------------------------------
// Capped exponential RTO backoff: under a sustained blackhole the
// retransmission timer doubles but never exceeds MptcpSpec's cap, so
// the sender keeps probing at a bounded period (the failover timer the
// chaos invariants rely on).
// ---------------------------------------------------------------------
TEST(FaultInjector, RtoBackoffStaysCappedUnderBlackhole) {
  Simulator sim;
  MptcpSpec s = spec(PathId::kLte, MpMode::kBackup);
  s.subflow_max_rto = sec(2);
  MptcpTestbed bed{sim, basic_setup(), s};
  FaultInjector injector{sim};
  injector.set_target(PathId::kLte, &bed.path(PathId::kLte), &bed.iface(PathId::kLte));
  FaultPlan plan;
  plan.blackhole(msec(500), PathId::kLte);  // never restored
  injector.arm(plan);

  // Upload: the client transmits data through its LTE interface tap, so
  // every RTO-driven retransmission is visible in events(kLte).
  bed.start_transfer(500'000, Direction::kUpload);
  const WatchdogResult result = bed.run_with_watchdog(sec(30), sec(6));
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.reason.find("stall"), std::string::npos) << result.reason;
  EXPECT_LE(result.max_stall.usec(), sec(6).usec());

  // The silent blackhole must not kill the subflow (no RST arrived).
  EXPECT_FALSE(bed.client().subflow_dead(0));
  EXPECT_LE(bed.client().subflow(0).rto().usec(), sec(2).usec());
  EXPECT_GE(bed.client().subflow(0).rto_count(), 3u);

  // Every gap between consecutive data transmissions after the blackhole
  // must respect the cap (2s, plus scheduling slack).
  std::vector<std::int64_t> sends;
  for (const auto& ev : bed.events(PathId::kLte)) {
    if (ev.dir == PacketDir::kSent && ev.payload > 0 &&
        ev.t.usec() > msec(500).usec()) {
      sends.push_back(ev.t.usec());
    }
  }
  ASSERT_GE(sends.size(), 3u);
  for (std::size_t i = 1; i < sends.size(); ++i) {
    EXPECT_LE(sends[i] - sends[i - 1], msec(2500).usec());
  }

  // Abort cleanly: freeze, disarm, drain — no event leak.
  bed.shutdown();
  injector.disarm();
  sim.run_until_idle();
  EXPECT_EQ(sim.pending_events(), 0u);
}

// Regression (found by the chaos soak): soft-downing BOTH paths used to
// read as a clean close — every subflow dead made finished() vacuously
// true — so the run claimed completion with data undelivered.
TEST(FaultInjector, KillingBothPathsIsAFailureNotAFinish) {
  Simulator sim;
  MptcpTestbed bed{sim, basic_setup(), spec(PathId::kWifi)};
  FaultInjector injector{sim};
  injector.set_target(PathId::kWifi, &bed.path(PathId::kWifi), &bed.iface(PathId::kWifi));
  injector.set_target(PathId::kLte, &bed.path(PathId::kLte), &bed.iface(PathId::kLte));
  FaultPlan plan;
  plan.soft_down(msec(300), PathId::kWifi).soft_down(msec(400), PathId::kLte);
  injector.arm(plan);
  bed.start_transfer(2'000'000, Direction::kDownload);
  const WatchdogResult result = bed.run_with_watchdog(sec(60), sec(5));
  EXPECT_FALSE(result.completed);
  EXPECT_LT(bed.client().data_delivered_in_order(), 2'000'000);
  bed.shutdown();
  injector.disarm();
  sim.run_until_idle();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(RunTransportFlow, ReportsStallAndReasonUnderUnrestoredBlackhole) {
  Simulator sim;
  TransportConfig config;
  config.kind = TransportKind::kSinglePath;
  config.path = PathId::kWifi;
  FaultPlan plan;
  plan.blackhole(msec(200), PathId::kWifi);
  TransportRunOptions options;
  options.timeout = sec(60);
  options.stall_limit = sec(5);
  options.faults = &plan;
  const auto r = run_transport_flow(sim, basic_setup(), config, 2'000'000,
                                    Direction::kDownload, options);
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.failure_reason.find("stall"), std::string::npos) << r.failure_reason;
  EXPECT_LE(r.stall_time.usec(), sec(5).usec());
  sim.run_until_idle();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(RunTransportFlow, MptcpFlowSurvivesScriptedFaults) {
  Simulator sim;
  TransportConfig config;
  config.kind = TransportKind::kMptcp;
  config.mp = spec(PathId::kWifi);
  FaultPlan plan;
  plan.blackhole(msec(300), PathId::kWifi).restore(sec(2), PathId::kWifi);
  TransportRunOptions options;
  options.timeout = sec(60);
  options.stall_limit = sec(30);
  options.faults = &plan;
  const auto r = run_transport_flow(sim, basic_setup(), config, 1'000'000,
                                    Direction::kDownload, options);
  EXPECT_TRUE(r.completed) << r.failure_reason;
  sim.run_until_idle();
  EXPECT_EQ(sim.pending_events(), 0u);
}

}  // namespace
}  // namespace mn
