#include "faults/fault_plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "net/delivery_trace.hpp"
#include "net/trace_gen.hpp"

namespace mn {
namespace {

FaultPlan every_kind_plan() {
  GeLossSpec ge;
  ge.loss_good = 0.01;
  ge.loss_bad = 0.4;
  ge.p_good_to_bad = 0.02;
  ge.p_bad_to_good = 0.15;
  ge.seed = 77;
  FaultPlan plan;
  plan.blackhole(msec(100), PathId::kWifi, LinkDir::kBoth)
      .restore(msec(900), PathId::kWifi, LinkDir::kBoth)
      .soft_down(msec(200), PathId::kLte)
      .soft_up(msec(800), PathId::kLte)
      .unplug(msec(300), PathId::kWifi)
      .replug(msec(700), PathId::kWifi)
      .burst_loss(msec(400), PathId::kLte, ge, LinkDir::kDown)
      .burst_loss_off(msec(600), PathId::kLte, LinkDir::kDown)
      .rate_crash(msec(450), PathId::kWifi, 0.25, LinkDir::kUp)
      .rate_restore(msec(650), PathId::kWifi, LinkDir::kUp)
      .delay_spike(msec(500), PathId::kLte, msec(120), LinkDir::kBoth)
      .delay_clear(msec(550), PathId::kLte, LinkDir::kBoth);
  return plan;
}

TEST(FaultPlan, KeepsEventsSortedByTime) {
  const FaultPlan plan = every_kind_plan();
  ASSERT_EQ(plan.size(), 12u);
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_LE(plan.events()[i - 1].at.usec(), plan.events()[i].at.usec());
  }
}

TEST(FaultPlan, StableForSimultaneousEvents) {
  FaultPlan plan;
  plan.blackhole(msec(5), PathId::kWifi);
  plan.soft_down(msec(5), PathId::kLte);
  plan.unplug(msec(5), PathId::kWifi);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kBlackhole);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kSoftDown);
  EXPECT_EQ(plan.events()[2].kind, FaultKind::kUnplug);
}

TEST(FaultPlan, SerializeParseRoundTripsEveryKind) {
  const FaultPlan plan = every_kind_plan();
  const std::string text = plan.serialize();
  const FaultPlan back = FaultPlan::parse(text);
  ASSERT_EQ(back.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const FaultEvent& a = plan.events()[i];
    const FaultEvent& b = back.events()[i];
    EXPECT_EQ(a.at.usec(), b.at.usec());
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.path, b.path);
    EXPECT_EQ(a.dir, b.dir);
    EXPECT_DOUBLE_EQ(a.rate_mbps, b.rate_mbps);
    EXPECT_EQ(a.extra_delay.usec(), b.extra_delay.usec());
    EXPECT_DOUBLE_EQ(a.ge.loss_good, b.ge.loss_good);
    EXPECT_DOUBLE_EQ(a.ge.loss_bad, b.ge.loss_bad);
    EXPECT_EQ(a.ge.seed, b.ge.seed);
  }
  // The round trip is a fixed point.
  EXPECT_EQ(back.serialize(), text);
}

TEST(FaultPlan, ParseSkipsCommentsAndBlankLines) {
  const FaultPlan plan =
      FaultPlan::parse("# a comment\n\n1000 blackhole wifi both\n");
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kBlackhole);
}

TEST(FaultPlan, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)FaultPlan::parse("oops\n"), std::runtime_error);
  EXPECT_THROW((void)FaultPlan::parse("-5 blackhole wifi both\n"), std::runtime_error);
  EXPECT_THROW((void)FaultPlan::parse("10 explode wifi both\n"), std::runtime_error);
  EXPECT_THROW((void)FaultPlan::parse("10 blackhole ethernet both\n"), std::runtime_error);
  EXPECT_THROW((void)FaultPlan::parse("10 blackhole wifi sideways\n"), std::runtime_error);
  EXPECT_THROW((void)FaultPlan::parse("10 rate_crash wifi both -3\n"), std::runtime_error);
  EXPECT_THROW((void)FaultPlan::parse("10 delay_spike wifi both -1\n"), std::runtime_error);
  EXPECT_THROW((void)FaultPlan::parse("10 burst_on wifi both 0.1 0.5\n"),
               std::runtime_error);
  EXPECT_THROW((void)FaultPlan::parse("10 blackhole wifi both junk\n"), std::runtime_error);
}

TEST(RandomFaultPlan, DeterministicPerSeed) {
  const FaultPlan a = random_fault_plan(42);
  const FaultPlan b = random_fault_plan(42);
  EXPECT_EQ(a.serialize(), b.serialize());
  const FaultPlan c = random_fault_plan(43);
  EXPECT_NE(a.serialize(), c.serialize());
}

TEST(RandomFaultPlan, EventsLieWithinHorizonPlusSlack) {
  RandomPlanOptions options;
  options.horizon = sec(3);
  options.max_events = 8;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const FaultPlan plan = random_fault_plan(seed, options);
    EXPECT_GE(plan.size(), 1u);
    for (const FaultEvent& ev : plan.events()) {
      EXPECT_GE(ev.at.usec(), 0);
      // Restores may land up to 2s past the horizon.
      EXPECT_LE(ev.at.usec(), (options.horizon + sec(2) + msec(50)).usec());
    }
    // Serialization of every generated plan must round-trip.
    EXPECT_EQ(FaultPlan::parse(plan.serialize()).serialize(), plan.serialize());
  }
}

// ---------------------------------------------------------------------
// Mid-trace corruption: the DeliveryTrace loading path must reject every
// corrupted variant with an exception (or, for truncation, accept a
// still-valid prefix) — never crash and never build a nonsense link.
// ---------------------------------------------------------------------

class TraceCorruptionTest : public ::testing::TestWithParam<TraceCorruption> {};

TEST_P(TraceCorruptionTest, LoaderThrowsOrYieldsValidTrace) {
  const std::string base = constant_rate_trace(12.0, msec(60)).to_mahimahi();
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng{seed};
    const std::string bad = corrupt_mahimahi(base, GetParam(), rng);
    try {
      const DeliveryTrace t = DeliveryTrace::from_mahimahi(bad);
      // If it parsed, it must be a usable trace.
      EXPECT_GT(t.opportunities_per_period(), 0u);
      EXPECT_GT(t.period().usec(), 0);
    } catch (const std::runtime_error&) {
      // Loud rejection is the expected outcome.
    } catch (const std::invalid_argument&) {
      // Construction-level rejection is equally acceptable.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, TraceCorruptionTest,
                         ::testing::Values(TraceCorruption::kTruncate,
                                           TraceCorruption::kUnsort,
                                           TraceCorruption::kJunkLine,
                                           TraceCorruption::kNegative,
                                           TraceCorruption::kEmpty,
                                           TraceCorruption::kBinary));

TEST(TraceCorruption, DefiniteRejections) {
  // No zero timestamps: negating any line must yield a negative number.
  const std::string base =
      DeliveryTrace{{msec(5), msec(10), msec(20)}, msec(40)}.to_mahimahi();
  Rng rng{7};
  EXPECT_THROW((void)DeliveryTrace::from_mahimahi(
                   corrupt_mahimahi(base, TraceCorruption::kEmpty, rng)),
               std::runtime_error);
  EXPECT_ANY_THROW((void)DeliveryTrace::from_mahimahi(
      corrupt_mahimahi(base, TraceCorruption::kUnsort, rng)));
  EXPECT_ANY_THROW((void)DeliveryTrace::from_mahimahi(
      corrupt_mahimahi(base, TraceCorruption::kNegative, rng)));
  EXPECT_ANY_THROW((void)DeliveryTrace::from_mahimahi(
      corrupt_mahimahi(base, TraceCorruption::kJunkLine, rng)));
}

}  // namespace
}  // namespace mn
