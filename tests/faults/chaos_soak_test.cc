#include "faults/chaos.hpp"

#include <gtest/gtest.h>

namespace mn {
namespace {

// Keep the per-run workload small so 200+ runs stay inside the normal
// ctest budget; the bench binary runs the heavyweight version.
ChaosSoakOptions soak_options(int runs) {
  ChaosSoakOptions options;
  options.runs = runs;
  options.max_bytes = 600'000;
  options.timeout = sec(60);
  options.stall_limit = sec(10);
  options.plan.horizon = sec(6);
  options.plan.max_events = 6;
  return options;
}

TEST(ChaosSoak, SingleRunIsDeterministic) {
  const ChaosSoakOptions options = soak_options(1);
  const ChaosRunReport a = run_chaos_run(91, options);
  const ChaosRunReport b = run_chaos_run(91, options);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failure_reason, b.failure_reason);
  EXPECT_EQ(a.max_stall.usec(), b.max_stall.usec());
  EXPECT_EQ(a.faults_applied, b.faults_applied);
  EXPECT_EQ(a.bytes_observed, b.bytes_observed);
  EXPECT_EQ(a.plan_text, b.plan_text);
  EXPECT_EQ(a.violations, b.violations);
}

TEST(ChaosSoak, ReportCarriesReplayMaterial) {
  const ChaosRunReport r = run_chaos_run(7, soak_options(1));
  EXPECT_EQ(r.seed, 7u);
  EXPECT_FALSE(r.plan_text.empty());
  EXPECT_GT(r.bytes_requested, 0);
  // The serialized plan must be replayable as-is.
  EXPECT_GE(FaultPlan::parse(r.plan_text).size(), 1u);
}

// The acceptance gate: 200+ seeded random fault plans, every run obeying
// all four invariants (byte conservation, no event leak, bounded stall,
// consistent stage counters).  Violations print the offending seed and
// serialized plan so the run can be replayed in isolation.
TEST(ChaosSoak, TwoHundredSeededPlansHoldAllInvariants) {
  const ChaosSoakOptions options = soak_options(200);
  const ChaosSoakSummary summary = run_chaos_soak(options);
  EXPECT_EQ(summary.runs, 200);
  EXPECT_EQ(summary.completed + summary.aborted, 200);
  // Chaos must actually bite sometimes and heal sometimes.
  EXPECT_GT(summary.completed, 0);
  EXPECT_LE(summary.max_stall.usec(), options.stall_limit.usec());
  for (const ChaosRunReport& r : summary.violating) {
    ADD_FAILURE() << "seed " << r.seed << " violated invariants:\n"
                  << "  plan:\n" << r.plan_text << "\n  violations:";
    for (const std::string& v : r.violations) ADD_FAILURE() << "  - " << v;
  }
  EXPECT_TRUE(summary.ok());
}

}  // namespace
}  // namespace mn
