#include "mptcp/scheduler.hpp"

#include <algorithm>

namespace mn {

namespace {

/// The radio whose tail energy the energy policies manage.  The 15 s
/// RRC tail is an LTE property (energy/power_model); WiFi's PSM re-entry
/// is 200 ms and not worth scheduling around.
constexpr PathId kCostlyPath = PathId::kLte;

/// The Linux-default sort key: SRTT, with unmeasured subflows pessimised
/// to 100 ms so a fresh join does not instantly outrank a warm path.
[[nodiscard]] std::int64_t srtt_key(const SubflowSnapshot& sf) {
  return sf.srtt.usec() > 0 ? sf.srtt.usec() : msec(100).usec();
}

std::size_t lowest_rtt_order(std::span<const SubflowSnapshot> subflows,
                             std::span<int> out) {
  const std::size_t n = std::min(subflows.size(), out.size());
  for (std::size_t i = 0; i < n; ++i) out[i] = subflows[i].id;
  // Stable insertion sort.  Subflow counts are tiny (two in every paper
  // scenario) and this runs once per pump on the hottest MPTCP path —
  // std::stable_sort's temporary buffer costs a heap round-trip per call.
  for (std::size_t i = 1; i < n; ++i) {
    const int v = out[i];
    const std::int64_t key = srtt_key(subflows[static_cast<std::size_t>(v)]);
    std::size_t j = i;
    for (; j > 0 && srtt_key(subflows[static_cast<std::size_t>(out[j - 1])]) > key; --j) {
      out[j] = out[j - 1];
    }
    out[j] = v;
  }
  return n;
}

/// True when `sf` is the only subflow the agent would hand fresh data —
/// the failover guard: an energy policy must never starve the last
/// carrying path just because it is the costly one.  Keyed on can_carry,
/// not usable: an established-but-withheld backup cannot substitute for
/// the subflow being denied (deadlock otherwise).
[[nodiscard]] bool sole_carrier(const SubflowSnapshot& sf,
                                std::span<const SubflowSnapshot> subflows) {
  for (const SubflowSnapshot& other : subflows) {
    if (other.id != sf.id && other.can_carry) return false;
  }
  return true;
}

class LowestRttScheduler final : public Scheduler {
 public:
  std::size_t pump_order(std::span<const SubflowSnapshot> subflows,
                         const SchedContext&, std::span<int> out) override {
    return lowest_rtt_order(subflows, out);
  }
  [[nodiscard]] const char* name() const override { return "LowestRTT"; }
};

class RoundRobinScheduler final : public Scheduler {
 public:
  std::size_t pump_order(std::span<const SubflowSnapshot> subflows,
                         const SchedContext& ctx, std::span<int> out) override {
    // Offer data first to the subflow after the previous grantee —
    // robust against pump_order being invoked several times per ACK.
    const std::size_t n = std::min(subflows.size(), out.size());
    if (n == 0) return 0;
    const auto start =
        static_cast<std::size_t>(ctx.last_grant_subflow + 1) % n;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = subflows[(start + i) % n].id;
    }
    return n;
  }
  [[nodiscard]] const char* name() const override { return "RoundRobin"; }
};

class RedundantScheduler final : public Scheduler {
 public:
  std::size_t pump_order(std::span<const SubflowSnapshot> subflows,
                         const SchedContext&, std::span<int> out) override {
    return lowest_rtt_order(subflows, out);
  }
  [[nodiscard]] bool duplicate_grants() const override { return true; }
  [[nodiscard]] const char* name() const override { return "Redundant"; }
};

/// eMPTCP-style delayed subflow establishment: the costly radio is not
/// joined — and gets no fresh data — until the flow has proven itself
/// big (un-acked backlog >= engage threshold).  The latch is one-way:
/// once the radio is worth waking, flapping it would only multiply
/// tails.  Short flows complete WiFi-only and never pay the LTE tail.
class EnergyAwareScheduler final : public Scheduler {
 public:
  explicit EnergyAwareScheduler(std::int64_t engage_bytes)
      : engage_bytes_(engage_bytes) {}

  std::size_t pump_order(std::span<const SubflowSnapshot> subflows,
                         const SchedContext& ctx, std::span<int> out) override {
    update(ctx);
    return lowest_rtt_order(subflows, out);
  }
  bool allow_join(std::span<const SubflowSnapshot> subflows, PathId path,
                  const SchedContext& ctx) override {
    update(ctx);
    if (path != kCostlyPath || engaged_) return true;
    // Failover: with no usable subflow left, the join is the flow's
    // only way forward regardless of energy.
    for (const SubflowSnapshot& sf : subflows) {
      if (sf.usable) return false;
    }
    return true;
  }
  bool allow_fresh_grant(const SubflowSnapshot& sf,
                         std::span<const SubflowSnapshot> subflows,
                         const SchedContext& ctx) override {
    update(ctx);
    if (sf.path != kCostlyPath || engaged_) return true;
    return sole_carrier(sf, subflows);
  }
  [[nodiscard]] const char* name() const override { return "EnergyAware"; }

 private:
  void update(const SchedContext& ctx) {
    // workload_seen, not outstanding: the client of a download has no
    // sender backlog — the flow proves itself big by what has arrived.
    if (!engaged_ && ctx.workload_seen() >= std::max<std::int64_t>(engage_bytes_, 1)) {
      engaged_ = true;
    }
    if (engage_bytes_ <= 0) engaged_ = true;  // gate disabled
  }

  std::int64_t engage_bytes_;
  bool engaged_ = false;
};

/// Tail-aware batching: fresh grants to the costly radio open only when
/// the *unassigned* backlog is worth a tail (>= open bytes) and close
/// again once it drains (<= close bytes).  Against an app that writes
/// incrementally, LTE wakes for coalesced batches instead of per-write
/// dribbles; each wake amortises its 15 s tail over a real batch.
class TailBatchScheduler final : public Scheduler {
 public:
  TailBatchScheduler(std::int64_t open_bytes, std::int64_t close_bytes)
      : open_bytes_(std::max<std::int64_t>(open_bytes, 1)),
        close_bytes_(std::clamp<std::int64_t>(close_bytes, 0, open_bytes_ - 1)) {}

  std::size_t pump_order(std::span<const SubflowSnapshot> subflows,
                         const SchedContext& ctx, std::span<int> out) override {
    update(ctx);
    return lowest_rtt_order(subflows, out);
  }
  bool allow_fresh_grant(const SubflowSnapshot& sf,
                         std::span<const SubflowSnapshot> subflows,
                         const SchedContext& ctx) override {
    update(ctx);
    if (sf.path != kCostlyPath || open_) return true;
    return sole_carrier(sf, subflows);
  }
  [[nodiscard]] const char* name() const override { return "TailBatch"; }

 private:
  void update(const SchedContext& ctx) {
    if (!open_ && ctx.unassigned() >= open_bytes_) open_ = true;
    else if (open_ && ctx.unassigned() <= close_bytes_) open_ = false;
  }

  std::int64_t open_bytes_;
  std::int64_t close_bytes_;
  bool open_ = false;
};

}  // namespace

std::size_t Scheduler::pump_order(std::span<const SubflowSnapshot> subflows,
                                  const SchedContext&, std::span<int> out) {
  const std::size_t n = std::min(subflows.size(), out.size());
  for (std::size_t i = 0; i < n; ++i) out[i] = subflows[i].id;
  return n;
}

bool Scheduler::allow_join(std::span<const SubflowSnapshot>, PathId,
                           const SchedContext&) {
  return true;
}

bool Scheduler::allow_fresh_grant(const SubflowSnapshot&,
                                  std::span<const SubflowSnapshot>,
                                  const SchedContext&) {
  return true;
}

void Scheduler::on_grant(int, std::int64_t, std::int64_t, const SchedContext&) {}

std::unique_ptr<Scheduler> make_scheduler(const MptcpSpec& spec) {
  switch (spec.scheduler) {
    case MpScheduler::kRoundRobin: return std::make_unique<RoundRobinScheduler>();
    case MpScheduler::kRedundant: return std::make_unique<RedundantScheduler>();
    case MpScheduler::kEnergyAware:
      return std::make_unique<EnergyAwareScheduler>(spec.energy_engage_bytes);
    case MpScheduler::kTailBatch:
      return std::make_unique<TailBatchScheduler>(spec.tail_batch_open_bytes,
                                                  spec.tail_batch_close_bytes);
    case MpScheduler::kLowestRtt: break;
  }
  return std::make_unique<LowestRttScheduler>();
}

}  // namespace mn
