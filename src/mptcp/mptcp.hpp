// MPTCP configuration types (paper Section 3 terminology).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/time.hpp"

namespace mn {

/// The two access networks of a multi-homed phone.
enum class PathId : int { kWifi = 0, kLte = 1 };

[[nodiscard]] constexpr PathId other_path(PathId p) {
  return p == PathId::kWifi ? PathId::kLte : PathId::kWifi;
}

[[nodiscard]] inline std::string to_string(PathId p) {
  return p == PathId::kWifi ? "WiFi" : "LTE";
}

/// Congestion-control coupling across subflows (paper Section 3.5).
enum class CcAlgo {
  kDecoupled,  // independent Reno per subflow
  kCoupled,    // RFC 6356 Linked Increases (LIA)
  kOlia,       // Khalili et al. (the paper's ref [10]) — extension
};

[[nodiscard]] inline std::string to_string(CcAlgo c) {
  switch (c) {
    case CcAlgo::kDecoupled: return "Decoupled";
    case CcAlgo::kCoupled: return "Coupled";
    case CcAlgo::kOlia: return "OLIA";
  }
  return "?";
}

/// Operating mode (paper Sections 3 and 3.6).
enum class MpMode {
  kFull,        // data on all subflows
  kBackup,      // backup subflow does handshake/FIN only, unless failover
  kSinglePath,  // Paasch et al.: open the second subflow only on failure
};

[[nodiscard]] inline std::string to_string(MpMode m) {
  switch (m) {
    case MpMode::kFull: return "Full-MPTCP";
    case MpMode::kBackup: return "Backup";
    case MpMode::kSinglePath: return "Single-Path";
  }
  return "?";
}

/// Which subflow gets data first when several have window space, and
/// how the path manager treats the costly (LTE) radio.  The first two
/// are the kernel schedulers; the last three answer the paper's
/// Section-7 energy question with policies from the eMPTCP literature.
enum class MpScheduler {
  kLowestRtt,   // Linux MPTCP default (what the paper measured)
  kRoundRobin,  // the kernel's alternative scheduler; ablation knob
  kRedundant,   // duplicate every grant on all subflows; first ACK wins
  kEnergyAware, // eMPTCP: delay the LTE subflow until the flow proves big
  kTailBatch,   // coalesce LTE grants so each batch amortises the 15 s tail
};

constexpr int kMpSchedulerCount = 5;

[[nodiscard]] inline std::string to_string(MpScheduler s) {
  switch (s) {
    case MpScheduler::kLowestRtt: return "LowestRTT";
    case MpScheduler::kRoundRobin: return "RoundRobin";
    case MpScheduler::kRedundant: return "Redundant";
    case MpScheduler::kEnergyAware: return "EnergyAware";
    case MpScheduler::kTailBatch: return "TailBatch";
  }
  return "?";
}

/// Inverse of to_string(MpScheduler); nullopt on anything else (the CSV
/// scheduler column round-trips through this).
[[nodiscard]] inline std::optional<MpScheduler> parse_scheduler(std::string_view name) {
  for (int i = 0; i < kMpSchedulerCount; ++i) {
    const auto s = static_cast<MpScheduler>(i);
    if (to_string(s) == name) return s;
  }
  return std::nullopt;
}

/// Connection-level multipath negotiation outcome (middlebox realism).
/// kNegotiating until the primary handshake settles, then:
///   kMultipath       — MP_CAPABLE survived end to end
///   kFallbackTcp     — option stripped/dropped in the handshake, or the
///                      connection degraded to one path mid-flow after
///                      DSS mangling (infinite-map-style fallback)
///   kSubflowRejected — primary negotiated multipath, but every MP_JOIN
///                      attempt was rejected: single-subflow MPTCP
enum class MpNegotiation {
  kNegotiating,
  kMultipath,
  kFallbackTcp,
  kSubflowRejected,
};

[[nodiscard]] inline std::string to_string(MpNegotiation n) {
  switch (n) {
    case MpNegotiation::kNegotiating: return "Negotiating";
    case MpNegotiation::kMultipath: return "Multipath";
    case MpNegotiation::kFallbackTcp: return "Fallback-TCP";
    case MpNegotiation::kSubflowRejected: return "Subflow-Rejected";
  }
  return "?";
}

struct MptcpSpec {
  /// Network carrying the primary subflow (the paper's central knob).
  PathId primary = PathId::kWifi;
  CcAlgo cc = CcAlgo::kCoupled;
  MpMode mode = MpMode::kFull;
  /// Delay between primary establishment and the MP_JOIN SYN — the
  /// path manager's ADD_ADDR round plus scheduling latency, clearly
  /// visible in the paper's Figures 9-10 subflow ramps.
  Duration join_delay = msec(200);
  /// Data-level receive buffer.  New data may only be scheduled within
  /// this window of the cumulative data-ACK — the mechanism behind the
  /// paper's Figure 7a: with disparate paths, chunks stuck on the slow
  /// subflow block the window and idle the fast one (receive-buffer
  /// head-of-line blocking, a known MPTCP v0.88 pathology).
  std::int64_t receive_window_bytes = 400'000;
  MpScheduler scheduler = MpScheduler::kLowestRtt;
  /// Ablation knobs for the v0.88 window-blocking mitigations
  /// (bench/ablation_mptcp_mechanisms studies them).
  bool opportunistic_reinjection = true;
  bool penalization = true;
  /// Per-subflow retransmission timer bounds (RFC 6298 / Linux
  /// TCP_RTO_MIN..TCP_RTO_MAX).  Exposed so fault experiments can
  /// tighten the backoff ceiling: on a blackholed subflow the RTO
  /// doubles per expiry but must never exceed subflow_max_rto.
  Duration subflow_min_rto = msec(200);
  Duration subflow_initial_rto = sec(1);
  Duration subflow_max_rto = sec(60);
  /// MP_JOIN persistence against middlebox rejection: total connection
  /// attempts for subflow 1 (initial + retries), the backoff before each
  /// retry (doubled per attempt), and how long one attempt may sit in
  /// the handshake before it is declared rejected.  Bounded so no
  /// middlebox combination can hang a run — after the last attempt the
  /// connection settles at kSubflowRejected and runs single-subflow.
  int join_max_attempts = 3;
  Duration join_retry_backoff = msec(500);
  Duration join_timeout = sec(3);
  /// kEnergyAware: the LTE subflow is not joined (and gets no fresh
  /// data) until the un-acked backlog reaches this many bytes — flows
  /// that stay below it never wake the LTE radio and never pay its
  /// 15-second tail.  <= 0 disables the gate (always engage).
  std::int64_t energy_engage_bytes = 512'000;
  /// kTailBatch hysteresis on the *unassigned* backlog: LTE fresh
  /// grants open at >= open bytes and close once it drains to
  /// <= close bytes, so the costly radio wakes only for batches worth
  /// its tail and dribbles ride WiFi.
  std::int64_t tail_batch_open_bytes = 256'000;
  std::int64_t tail_batch_close_bytes = 64'000;
  /// Forwarded to every subflow's TcpConfig: record the per-subflow
  /// acked/delivered timelines.  Leave on for figure benches; turn off
  /// when attaching many agents at once (shared-cell worlds) so
  /// per-connection memory stays bounded.
  bool record_timelines = true;
};

}  // namespace mn
