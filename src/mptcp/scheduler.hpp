// The pluggable MPTCP data-level scheduler / path-policy interface.
//
// MptcpAgent used to branch on an MpScheduler enum inside pump_all() and
// take(); the strategy now lives behind this interface so new policies
// (and eventually N-subflow path managers) plug in without touching the
// agent.  The agent hands every decision point a *span* of per-subflow
// snapshots — nothing in the contract assumes two subflows.
//
// Decision points, in the order the agent consults them:
//   pump_order        — which established subflows to offer data, and in
//                       what order (the classic "scheduler" question)
//   allow_join        — may the path manager open a subflow on `path`
//                       now?  Denials are re-polled every pump, so a
//                       policy can delay a radio and release it later
//                       (eMPTCP delayed subflow establishment)
//   allow_fresh_grant — may this subflow be assigned *new* data?
//                       Reinjections and duplicate grants are always
//                       allowed: they serve reliability, not scheduling
//   duplicate_grants  — mirror every fresh grant onto the other
//                       subflows' duplicate queues (first ACK wins)
//   on_grant          — grant history callback (any policy state)
//
// All policies are deterministic and allocation-free on the hot path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>

#include "mptcp/mptcp.hpp"

namespace mn {

/// Point-in-time view of one subflow, rebuilt by the agent per decision.
struct SubflowSnapshot {
  int id = 0;
  PathId path = PathId::kWifi;
  /// Alive and established: eligible to carry data right now.
  bool usable = false;
  /// Usable AND the agent would actually hand it a fresh grant (in
  /// Backup / Single-Path mode the non-active subflow withholds).  The
  /// energy policies' failover guard keys off this, not `usable`: a
  /// withheld backup is no substitute for the path being denied.
  bool can_carry = false;
  bool dead = false;
  bool is_backup = false;
  /// Smoothed RTT (zero until the first sample).
  Duration srtt{0};
};

/// Connection-level sender state shared by every decision point.
struct SchedContext {
  TimePoint now{0};
  std::int64_t data_end = 0;       // total bytes enqueued so far
  std::int64_t next_data_seq = 0;  // next unassigned byte
  std::int64_t cum_acked = 0;      // contiguous data-level ack
  /// Receiver side: in-order data-level bytes delivered.  On a pure
  /// data receiver (the client of a download) the sender-side fields
  /// above are all zero — policies sizing up the flow must look at
  /// both directions (see workload_seen()).
  std::int64_t delivered = 0;
  int last_grant_subflow = 1;      // round-robin history

  /// Bytes enqueued but not yet assigned to any subflow.
  [[nodiscard]] std::int64_t unassigned() const { return data_end - next_data_seq; }
  /// Bytes enqueued but not yet data-level acked (total remaining work).
  [[nodiscard]] std::int64_t outstanding() const { return data_end - cum_acked; }
  /// How big the flow has proven itself so far, whichever direction the
  /// data rides: the engage signal for delayed-establishment policies
  /// (a download's client path manager sees zero sender backlog).
  [[nodiscard]] std::int64_t workload_seen() const {
    return std::max(outstanding(), delivered);
  }
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  virtual ~Scheduler() = default;

  /// Fill `out` with subflow ids in pump-offer order and return how many
  /// were written (<= subflows.size(); out.size() >= subflows.size()).
  /// Every subflow should appear: pumping also drives retransmission and
  /// ack clocking, so policies starve a radio via allow_fresh_grant, not
  /// by hiding it from the pump.
  virtual std::size_t pump_order(std::span<const SubflowSnapshot> subflows,
                                 const SchedContext& ctx, std::span<int> out);

  /// May the path manager open a subflow on `path` now?  Returning false
  /// defers the join; the agent re-asks on later pumps.
  virtual bool allow_join(std::span<const SubflowSnapshot> subflows, PathId path,
                          const SchedContext& ctx);

  /// May subflow `sf` be assigned fresh (never-sent) data?
  virtual bool allow_fresh_grant(const SubflowSnapshot& sf,
                                 std::span<const SubflowSnapshot> subflows,
                                 const SchedContext& ctx);

  /// Mirror fresh grants onto the other subflows (redundant mode).
  [[nodiscard]] virtual bool duplicate_grants() const { return false; }

  /// A grant was issued (fresh, reinject, or duplicate) to `subflow_id`.
  virtual void on_grant(int subflow_id, std::int64_t data_seq, std::int64_t bytes,
                        const SchedContext& ctx);

  [[nodiscard]] virtual const char* name() const = 0;
};

/// Build the policy object for `spec.scheduler` (never null).
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(const MptcpSpec& spec);

}  // namespace mn
