// The simulated counterpart of the paper's Figure-5 measurement setup: a
// multi-homed client (WiFi + tethered LTE) talking to a single-homed
// server at MIT, over two emulated duplex paths.
//
// The testbed wires one MptcpAgent on each end, exposes the two
// client-side NetworkInterfaces for failure injection (soft disable /
// unplug / replug), and records per-interface packet events — the raw
// material of the Figure-15 timelines and the energy model.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "energy/power_model.hpp"
#include "mptcp/mptcp_agent.hpp"
#include "net/path.hpp"
#include "tcp/flow.hpp"

namespace mn {

/// Link parameters for both directions of both networks.
struct MpNetworkSetup {
  LinkSpec wifi_up;
  LinkSpec wifi_down;
  LinkSpec lte_up;
  LinkSpec lte_down;
  /// A locally attached WiFi radio sees carrier loss; the paper's
  /// USB-tethered LTE phone does not (the Figure-15g asymmetry).
  bool wifi_reports_carrier_loss = true;
  bool lte_reports_carrier_loss = false;
};

/// Symmetric convenience constructor: same spec both directions per path.
[[nodiscard]] MpNetworkSetup symmetric_setup(const LinkSpec& wifi, const LinkSpec& lte);

/// One packet crossing a client interface.
struct PacketEvent {
  TimePoint t;
  PacketDir dir = PacketDir::kSent;
  TcpFlags flags;
  std::int64_t payload = 0;
};

/// Outcome of MptcpTestbed::run_with_watchdog.
struct WatchdogResult {
  bool completed = false;
  /// Longest observed gap between two progress-signature changes.  The
  /// watchdog guarantees max_stall <= stall_limit even when the event
  /// queue is sparse (60s RTO-backoff gaps on a blackholed path).
  Duration max_stall{0};
  /// Empty on success; "stall", "timeout" or "idle" otherwise.
  std::string reason;
};

class MptcpTestbed {
 public:
  MptcpTestbed(Simulator& sim, const MpNetworkSetup& setup, MptcpSpec spec,
               std::uint64_t connection_id = 1);
  MptcpTestbed(const MptcpTestbed&) = delete;
  MptcpTestbed& operator=(const MptcpTestbed&) = delete;
  ~MptcpTestbed();

  [[nodiscard]] MptcpAgent& client() { return *client_; }
  [[nodiscard]] MptcpAgent& server() { return *server_; }
  [[nodiscard]] NetworkInterface& iface(PathId path) {
    return *ifaces_[static_cast<std::size_t>(path)];
  }
  /// The emulated duplex path behind `path` (fault-injection target).
  [[nodiscard]] DuplexPath& path(PathId path) {
    return path == PathId::kWifi ? *wifi_path_ : *lte_path_;
  }
  [[nodiscard]] const std::vector<PacketEvent>& events(PathId path) const {
    return events_[static_cast<std::size_t>(path)];
  }
  /// First-class radio energy: every packet crossing a client interface
  /// feeds that radio's EnergyMeter (Figure-16 parameters), so per-radio
  /// joules are available on any testbed run without re-deriving them
  /// from the event lists.
  [[nodiscard]] const EnergyMeter& meter(PathId path) const {
    return meters_[static_cast<std::size_t>(path)];
  }
  /// Radio energy above base load over [0, horizon], in joules.
  [[nodiscard]] double radio_energy_joules(PathId path, TimePoint horizon) const {
    return meter(path).radio_energy_joules(horizon);
  }

  /// Begin a bulk transfer: server.listen + client.connect + data enqueue.
  void start_transfer(std::int64_t bytes, Direction dir);
  /// Step the simulator until both agents finish or `timeout` elapses.
  /// Returns true when the transfer completed cleanly.  The result must
  /// not be ignored: a timed-out run left the agents mid-flow, and
  /// reading sim.now() as a completion time silently reports the
  /// timeout as the result.  Timeouts count as mptcp.run_timeouts.
  [[nodiscard]] bool run_until_finished(Duration timeout);
  /// Like run_until_finished, but also aborts when no *progress* has been
  /// made for `stall_limit` — wall-clock caps alone let a blackholed flow
  /// burn the whole timeout retransmitting into the void.
  [[nodiscard]] WatchdogResult run_with_watchdog(Duration timeout, Duration stall_limit);
  /// Hash of the monotone transfer counters on both ends.  Changes iff
  /// the flow made real progress; retransmit/RTO counts are deliberately
  /// excluded (endless retransmission into a blackhole is not progress).
  [[nodiscard]] std::uint64_t progress_signature() const;
  /// Freeze both agents (all subflow timers stopped).  After an aborted
  /// run this lets the simulator drain to an empty queue.
  void shutdown();

 private:
  Simulator& sim_;
  std::unique_ptr<DuplexPath> wifi_path_;
  std::unique_ptr<DuplexPath> lte_path_;
  std::array<std::unique_ptr<NetworkInterface>, 2> ifaces_;  // index = PathId
  std::unique_ptr<MptcpAgent> client_;
  std::unique_ptr<MptcpAgent> server_;
  std::array<std::vector<PacketEvent>, 2> events_;
  std::array<EnergyMeter, 2> meters_;  // index = PathId
};

/// Result of one MPTCP bulk flow (run_mptcp_flow).
struct MptcpFlowResult {
  bool completed = false;
  Duration completion_time{0};  // first SYN -> all data observed at client
  double throughput_mbps = 0.0;
  Duration primary_established{0};
  /// Longest progress gap observed by the watchdog.
  Duration max_stall{0};
  /// Why the flow did not complete ("" when it did).
  std::string failure_reason;
  /// How multipath negotiation settled (client view; middlebox realism).
  MpNegotiation negotiation = MpNegotiation::kNegotiating;
  /// MP_CAPABLE survived the primary handshake end to end.
  bool negotiated_mp = false;
  /// A second subflow actually joined — multipath was used, not merely
  /// negotiated (the negotiated-vs-achieved distinction).
  bool achieved_mp = false;
  /// Why multipath degraded ("" when it did not): "capable_stripped",
  /// "syn_dropped", "join_rejected" or "mid_flow_dss".
  std::string fallback_reason;
  /// MP_JOIN connection attempts issued by the client's path manager.
  int join_attempts = 0;
  /// Which data-level scheduler policy the flow ran under.
  MpScheduler scheduler = MpScheduler::kLowestRtt;
  /// Per-radio energy above base load (joules), integrated from flow
  /// start to end-of-run + 20 s so the LTE tail is fully charged.
  double energy_wifi_j = 0.0;
  double energy_lte_j = 0.0;
  /// Client-observed MPTCP data-level timeline (relative to first SYN).
  std::vector<TimelinePoint> timeline;
  /// Client-observed per-subflow byte timelines (index = subflow id;
  /// subflow 0 is on the primary network).
  std::array<std::vector<TimelinePoint>, 2> subflow_timelines;
  std::array<PathId, 2> subflow_paths{PathId::kWifi, PathId::kLte};
};

/// Knobs for run_mptcp_flow beyond the flow itself.
struct FlowRunOptions {
  Duration timeout = sec(120);
  /// Abort when no progress for this long (watchdog bound).
  Duration stall_limit = sec(30);
  std::uint64_t connection_id = 1;
  /// Called after the testbed is wired but before the transfer starts;
  /// the fault layer uses this to arm a FaultInjector against the bed's
  /// paths/interfaces without mptcp depending on the faults library.
  std::function<void(MptcpTestbed&)> on_testbed;
};

[[nodiscard]] MptcpFlowResult run_mptcp_flow(Simulator& sim, const MpNetworkSetup& setup,
                                             const MptcpSpec& spec, std::int64_t bytes,
                                             Direction dir, const FlowRunOptions& options);

[[nodiscard]] MptcpFlowResult run_mptcp_flow(Simulator& sim, const MpNetworkSetup& setup,
                                             const MptcpSpec& spec, std::int64_t bytes,
                                             Direction dir, Duration timeout = sec(120),
                                             std::uint64_t connection_id = 1);

}  // namespace mn
