// One end of an MPTCP connection (Linux MPTCP v0.88 semantics, as
// measured by the paper).
//
// The agent owns up to two TCP subflow endpoints (subflow 0 on the
// primary network, subflow 1 on the other), a data-level scheduler that
// hands byte ranges to subflows (implementing DataSource), data-level
// reassembly/ack tracking via interval sets, and the path-failure
// machinery: RST-signalled soft failures with reinjection, silent
// blackholes (the Figure-15g stall), and Backup/Single-Path modes.
//
// Both the client and the server side are instances of this class; the
// client additionally drives connect()/join scheduling.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "mptcp/mptcp.hpp"
#include "mptcp/scheduler.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_endpoint.hpp"
#include "util/interval_set.hpp"

namespace mn {

class MptcpAgent final : public DataSource {
 public:
  MptcpAgent(Simulator& sim, std::uint64_t connection_id, MptcpSpec spec,
             bool is_client);
  ~MptcpAgent() override;

  // ---- wiring ---------------------------------------------------------
  /// How subflow `id` puts packets on its network.  Must be set for both
  /// subflows before connect()/listen().
  void set_transmit(int subflow_id, PacketHandler transmit);
  /// Feed a packet that arrived for this connection (any subflow).
  void handle_packet(const Packet& p);
  /// Batched receive: a whole delivery sweep in arrival order.  Wire
  /// semantics are exactly per-packet handle_packet — batching changes
  /// how packets reach the agent, never how it reacts to them.
  void on_packets(std::span<const Packet> ps) {
    for (const Packet& p : ps) handle_packet(p);
  }

  // ---- control --------------------------------------------------------
  void connect();  // client: SYN on primary, join the other after
  void listen();   // server: both subflows accept
  /// Enqueue data-level bytes for transmission to the peer.
  void send_data(std::int64_t bytes);
  /// Close every subflow once all enqueued data is data-level acked.
  void close_when_done();
  /// Interface state change on `path` (from NetworkInterface listeners).
  /// Soft failures arrive here; silent unplugs do not.
  void notify_path_state(PathId path, bool up);
  /// Freeze every subflow (stop all timers, go quiescent).  Used by the
  /// watchdog/abort paths so an aborted flow cannot keep rescheduling
  /// RTO timers and leak simulator events.
  void shutdown();

  // ---- DataSource (called by subflow endpoints) -------------------------
  std::optional<Chunk> take(std::int64_t max_bytes, int subflow_id) override;
  [[nodiscard]] bool exhausted() const override;

  // ---- callbacks --------------------------------------------------------
  std::function<void()> on_established;  // primary subflow up
  std::function<void(std::int64_t newly, std::int64_t total)> on_data_acked;
  std::function<void(std::int64_t total)> on_data_delivered;
  std::function<void()> on_closed;  // all subflows finished

  // ---- introspection ----------------------------------------------------
  /// Negotiation/fallback state machine (middlebox realism):
  /// kNegotiating -> kMultipath | kFallbackTcp | kSubflowRejected.
  [[nodiscard]] MpNegotiation negotiation() const { return negotiation_; }
  /// Whether MP_CAPABLE survived the primary handshake end to end.
  [[nodiscard]] bool negotiated_mp() const { return negotiated_mp_; }
  /// Whether a second subflow actually joined (multipath was *used*,
  /// not merely negotiated — the Aschenbrenner distinction).
  [[nodiscard]] bool achieved_mp() const { return achieved_mp_; }
  /// Why multipath degraded ("" while none): "capable_stripped",
  /// "syn_dropped", "join_rejected", or "mid_flow_dss".
  [[nodiscard]] const std::string& fallback_reason() const { return fallback_reason_; }
  [[nodiscard]] int join_attempts() const { return join_attempts_; }
  /// Receiver side: payload bytes discarded because a middlebox zeroed
  /// their DSS mapping and no safe reconstruction existed (upper bound —
  /// retransmissions may double-count).  Nonzero only under DSS faults.
  [[nodiscard]] std::int64_t mangled_discarded() const { return mangled_discarded_; }
  [[nodiscard]] std::int64_t data_acked() const { return acked_.total(); }
  [[nodiscard]] std::int64_t data_delivered() const { return received_.total(); }
  /// In-order data-level delivery (what the application could read).
  [[nodiscard]] std::int64_t data_delivered_in_order() const {
    return received_.contiguous_from(0);
  }
  [[nodiscard]] const std::vector<TimelinePoint>& acked_timeline() const {
    return acked_timeline_;
  }
  [[nodiscard]] const std::vector<TimelinePoint>& delivered_timeline() const {
    return delivered_timeline_;
  }
  [[nodiscard]] const TcpEndpoint& subflow(int id) const { return *subflows_[id].ep; }
  [[nodiscard]] PathId subflow_path(int id) const { return subflows_[id].path; }
  [[nodiscard]] bool subflow_dead(int id) const { return subflows_[id].dead; }
  [[nodiscard]] bool finished() const;

 private:
  struct Subflow {
    std::unique_ptr<TcpEndpoint> ep;
    PathId path = PathId::kWifi;
    PacketHandler transmit;
    /// Data ranges assigned, in subflow-send order: (data_seq, len).
    std::deque<std::pair<std::int64_t, std::int64_t>> mappings;
    /// Data ranges this subflow got subflow-acked, back-coalesced, in
    /// consumption order.  The MP_FAIL path requeues them wholesale:
    /// without a DATA_ACK in the model, the sender cannot know which
    /// "acked" bytes the receiver actually placed once DSS mangling is
    /// in play (the receiver's interval set dedups re-deliveries).
    std::vector<std::pair<std::int64_t, std::int64_t>> acked_log;
    /// Redundant scheduling: fresh grants issued to *other* subflows,
    /// queued for duplication here.  Entries already covered by the
    /// data-level ack set are skipped at serve time (first ACK wins).
    std::deque<std::pair<std::int64_t, std::int64_t>> dup_queue;
    bool dead = false;
    bool is_backup = false;
    bool connected_started = false;
  };

  [[nodiscard]] std::unique_ptr<CongestionController> make_cc();
  void setup_subflow(int id, PathId path, MpOption syn_option);
  void install_transmit(int id);
  void start_join();
  void pump_all();
  void on_subflow_acked(int id, std::int64_t newly);
  void on_subflow_segment(int id, const Packet& p);
  void kill_subflow(int id, bool send_rst);
  void maybe_close_subflows();
  void maybe_fire_closed();
  [[nodiscard]] int active_data_subflow() const;
  /// Scheduler decision-point inputs, rebuilt per consultation.
  [[nodiscard]] SchedContext sched_context() const;
  void fill_snapshots(std::array<SubflowSnapshot, 2>& out) const;
  /// Serve subflow `sf` from its duplicate-grant queue (redundant
  /// scheduling); false when nothing un-acked is queued.
  bool take_duplicate(Subflow& sf, std::int64_t max_bytes, Chunk& c);

  // -- negotiation / fallback state machine --
  void on_subflow_negotiated(int id, MpOption opt);
  void enter_handshake_fallback(const std::string& reason);
  /// True while subflow 1 is between its first MP_JOIN and either
  /// success or give-up (the window where an RST means "rejected",
  /// not "path died").
  [[nodiscard]] bool join_in_progress() const;
  void attempt_join();
  void fail_join_attempt();
  void give_up_join();
  void abandon_join();  // flow closing: stop retrying, not a failure
  void on_join_timer();
  /// MP_FAIL arrived on `id`: the peer saw mangled DSS options there.
  void on_mp_fail(int id);
  void send_mp_fail(int id);

  Simulator& sim_;
  std::uint64_t connection_id_;
  MptcpSpec spec_;
  bool is_client_;
  CoupledGroup group_;
  OliaGroup olia_group_;

  std::array<Subflow, 2> subflows_;

  /// The pluggable data-level scheduler / path policy (never null).
  std::unique_ptr<Scheduler> scheduler_;
  /// The policy denied allow_join for subflow 1; re-polled every pump
  /// (eMPTCP delayed subflow establishment).
  bool join_deferred_ = false;

  // Scheduler state (sender side).
  std::int64_t data_end_ = 0;       // total bytes enqueued
  std::int64_t next_data_seq_ = 0;  // next unassigned byte
  std::deque<std::pair<std::int64_t, std::int64_t>> reinject_;
  std::int64_t last_opportunistic_seq_ = -1;  // one reinjection per stall
  int last_grant_subflow_ = 1;                // round-robin scheduler state
  bool close_requested_ = false;
  bool subflow_close_issued_ = false;

  IntervalSet acked_;    // sender: data-level acked ranges
  IntervalSet received_;  // receiver: data-level received ranges
  std::vector<TimelinePoint> acked_timeline_;
  std::vector<TimelinePoint> delivered_timeline_;
  bool closed_fired_ = false;

  // Negotiation / fallback state.
  MpNegotiation negotiation_ = MpNegotiation::kNegotiating;
  std::string fallback_reason_;
  bool negotiated_mp_ = false;
  bool achieved_mp_ = false;
  /// Data-level fallback: the connection is (or became) plain single-
  /// path TCP, so a receiver may reconstruct data sequence numbers from
  /// subflow sequence space when a middlebox zeroed the DSS option.
  bool fallback_ = false;
  bool shutdown_ = false;
  int join_attempts_ = 0;       // connection attempts issued for subflow 1
  bool join_given_up_ = false;
  bool join_retry_pending_ = false;  // next timer fire = retry, not timeout
  std::int64_t mangled_discarded_ = 0;  // receiver: unplaceable mangled payload
  Timer join_timer_;
};

}  // namespace mn
