// One end of an MPTCP connection (Linux MPTCP v0.88 semantics, as
// measured by the paper).
//
// The agent owns up to two TCP subflow endpoints (subflow 0 on the
// primary network, subflow 1 on the other), a data-level scheduler that
// hands byte ranges to subflows (implementing DataSource), data-level
// reassembly/ack tracking via interval sets, and the path-failure
// machinery: RST-signalled soft failures with reinjection, silent
// blackholes (the Figure-15g stall), and Backup/Single-Path modes.
//
// Both the client and the server side are instances of this class; the
// client additionally drives connect()/join scheduling.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "mptcp/mptcp.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_endpoint.hpp"
#include "util/interval_set.hpp"

namespace mn {

class MptcpAgent final : public DataSource {
 public:
  MptcpAgent(Simulator& sim, std::uint64_t connection_id, MptcpSpec spec,
             bool is_client);
  ~MptcpAgent() override;

  // ---- wiring ---------------------------------------------------------
  /// How subflow `id` puts packets on its network.  Must be set for both
  /// subflows before connect()/listen().
  void set_transmit(int subflow_id, PacketHandler transmit);
  /// Feed a packet that arrived for this connection (any subflow).
  void handle_packet(const Packet& p);

  // ---- control --------------------------------------------------------
  void connect();  // client: SYN on primary, join the other after
  void listen();   // server: both subflows accept
  /// Enqueue data-level bytes for transmission to the peer.
  void send_data(std::int64_t bytes);
  /// Close every subflow once all enqueued data is data-level acked.
  void close_when_done();
  /// Interface state change on `path` (from NetworkInterface listeners).
  /// Soft failures arrive here; silent unplugs do not.
  void notify_path_state(PathId path, bool up);
  /// Freeze every subflow (stop all timers, go quiescent).  Used by the
  /// watchdog/abort paths so an aborted flow cannot keep rescheduling
  /// RTO timers and leak simulator events.
  void shutdown();

  // ---- DataSource (called by subflow endpoints) -------------------------
  std::optional<Chunk> take(std::int64_t max_bytes, int subflow_id) override;
  [[nodiscard]] bool exhausted() const override;

  // ---- callbacks --------------------------------------------------------
  std::function<void()> on_established;  // primary subflow up
  std::function<void(std::int64_t newly, std::int64_t total)> on_data_acked;
  std::function<void(std::int64_t total)> on_data_delivered;
  std::function<void()> on_closed;  // all subflows finished

  // ---- introspection ----------------------------------------------------
  [[nodiscard]] std::int64_t data_acked() const { return acked_.total(); }
  [[nodiscard]] std::int64_t data_delivered() const { return received_.total(); }
  /// In-order data-level delivery (what the application could read).
  [[nodiscard]] std::int64_t data_delivered_in_order() const {
    return received_.contiguous_from(0);
  }
  [[nodiscard]] const std::vector<TimelinePoint>& acked_timeline() const {
    return acked_timeline_;
  }
  [[nodiscard]] const std::vector<TimelinePoint>& delivered_timeline() const {
    return delivered_timeline_;
  }
  [[nodiscard]] const TcpEndpoint& subflow(int id) const { return *subflows_[id].ep; }
  [[nodiscard]] PathId subflow_path(int id) const { return subflows_[id].path; }
  [[nodiscard]] bool subflow_dead(int id) const { return subflows_[id].dead; }
  [[nodiscard]] bool finished() const;

 private:
  struct Subflow {
    std::unique_ptr<TcpEndpoint> ep;
    PathId path = PathId::kWifi;
    PacketHandler transmit;
    /// Data ranges assigned, in subflow-send order: (data_seq, len).
    std::deque<std::pair<std::int64_t, std::int64_t>> mappings;
    bool dead = false;
    bool is_backup = false;
    bool connected_started = false;
  };

  [[nodiscard]] std::unique_ptr<CongestionController> make_cc();
  void setup_subflow(int id, PathId path, MpOption syn_option);
  void start_join();
  void pump_all();
  void on_subflow_acked(int id, std::int64_t newly);
  void on_subflow_segment(int id, const Packet& p);
  void kill_subflow(int id, bool send_rst);
  void maybe_close_subflows();
  void maybe_fire_closed();
  [[nodiscard]] int active_data_subflow() const;

  Simulator& sim_;
  std::uint64_t connection_id_;
  MptcpSpec spec_;
  bool is_client_;
  CoupledGroup group_;
  OliaGroup olia_group_;

  std::array<Subflow, 2> subflows_;

  // Scheduler state (sender side).
  std::int64_t data_end_ = 0;       // total bytes enqueued
  std::int64_t next_data_seq_ = 0;  // next unassigned byte
  std::deque<std::pair<std::int64_t, std::int64_t>> reinject_;
  std::int64_t last_opportunistic_seq_ = -1;  // one reinjection per stall
  int last_grant_subflow_ = 1;                // round-robin scheduler state
  bool close_requested_ = false;
  bool subflow_close_issued_ = false;

  IntervalSet acked_;    // sender: data-level acked ranges
  IntervalSet received_;  // receiver: data-level received ranges
  std::vector<TimelinePoint> acked_timeline_;
  std::vector<TimelinePoint> delivered_timeline_;
  bool closed_fired_ = false;
};

}  // namespace mn
