#include "mptcp/testbed.hpp"

#include <utility>

#include "util/units.hpp"

namespace mn {

MpNetworkSetup symmetric_setup(const LinkSpec& wifi, const LinkSpec& lte) {
  MpNetworkSetup s;
  s.wifi_up = s.wifi_down = wifi;
  s.lte_up = s.lte_down = lte;
  return s;
}

MptcpTestbed::MptcpTestbed(Simulator& sim, const MpNetworkSetup& setup, MptcpSpec spec,
                           std::uint64_t connection_id)
    : sim_(sim) {
  wifi_path_ = std::make_unique<DuplexPath>(sim, setup.wifi_up, setup.wifi_down);
  lte_path_ = std::make_unique<DuplexPath>(sim, setup.lte_up, setup.lte_down);
  ifaces_[0] = std::make_unique<NetworkInterface>("wifi", sim, *wifi_path_,
                                                  setup.wifi_reports_carrier_loss);
  ifaces_[1] = std::make_unique<NetworkInterface>("lte", sim, *lte_path_,
                                                  setup.lte_reports_carrier_loss);

  client_ = std::make_unique<MptcpAgent>(sim, connection_id, spec, /*is_client=*/true);
  server_ = std::make_unique<MptcpAgent>(sim, connection_id, spec, /*is_client=*/false);

  for (int id = 0; id < 2; ++id) {
    const PathId path = client_->subflow_path(id);
    NetworkInterface* iface = ifaces_[static_cast<std::size_t>(path)].get();
    client_->set_transmit(id, [iface](Packet p) { iface->send(std::move(p)); });
    DuplexPath* dp = (path == PathId::kWifi) ? wifi_path_.get() : lte_path_.get();
    server_->set_transmit(id, [dp](Packet p) { dp->send_down(std::move(p)); });
  }
  // All client-bound traffic funnels into the client agent (subflow_id in
  // the packet selects the endpoint); same on the server.
  for (auto& iface : ifaces_) {
    iface->set_receiver([this](Packet p) { client_->handle_packet(p); });
  }
  wifi_path_->set_server_receiver([this](Packet p) { server_->handle_packet(p); });
  lte_path_->set_server_receiver([this](Packet p) { server_->handle_packet(p); });

  // Interface state changes drive MPTCP path management on the client.
  for (int pi = 0; pi < 2; ++pi) {
    const auto path = static_cast<PathId>(pi);
    ifaces_[static_cast<std::size_t>(pi)]->add_state_listener(
        [this, path](bool up) { client_->notify_path_state(path, up); });
    // Packet-event taps (Figure 15 / energy model).
    ifaces_[static_cast<std::size_t>(pi)]->set_tap(
        [this, pi](TimePoint t, PacketDir dir, const Packet& p) {
          events_[static_cast<std::size_t>(pi)].push_back(
              PacketEvent{t, dir, p.flags, p.payload});
        });
  }
}

MptcpTestbed::~MptcpTestbed() {
  wifi_path_->set_server_receiver({});
  lte_path_->set_server_receiver({});
}

void MptcpTestbed::start_transfer(std::int64_t bytes, Direction dir) {
  MptcpAgent& sender = (dir == Direction::kUpload) ? *client_ : *server_;
  sender.send_data(bytes);
  sender.close_when_done();
  server_->listen();
  client_->connect();
}

bool MptcpTestbed::run_until_finished(Duration timeout) {
  const TimePoint deadline = sim_.now() + timeout;
  while (!(client_->finished() && server_->finished()) && sim_.now() < deadline) {
    if (!sim_.step()) break;
  }
  return client_->finished() && server_->finished();
}

MptcpFlowResult run_mptcp_flow(Simulator& sim, const MpNetworkSetup& setup,
                               const MptcpSpec& spec, std::int64_t bytes, Direction dir,
                               Duration timeout, std::uint64_t connection_id) {
  MptcpTestbed bed{sim, setup, spec, connection_id};
  const TimePoint start = sim.now();
  MptcpFlowResult result;

  bed.client().on_established = [&] { result.primary_established = sim.now() - start; };
  bed.start_transfer(bytes, dir);
  bed.run_until_finished(timeout);

  // Client-observed data-level clock: delivered for downloads, acked for
  // uploads (the paper measures at the phone's tcpdump).
  const auto& tl = (dir == Direction::kDownload) ? bed.client().delivered_timeline()
                                                 : bed.client().acked_timeline();
  result.timeline.reserve(tl.size());
  for (const auto& pt : tl) {
    result.timeline.push_back({TimePoint{(pt.t - start).usec()}, pt.bytes});
  }
  for (int id = 0; id < 2; ++id) {
    result.subflow_paths[static_cast<std::size_t>(id)] = bed.client().subflow_path(id);
    const auto& stl = (dir == Direction::kDownload)
                          ? bed.client().subflow(id).delivered_timeline()
                          : bed.client().subflow(id).acked_timeline();
    auto& out = result.subflow_timelines[static_cast<std::size_t>(id)];
    out.reserve(stl.size());
    for (const auto& pt : stl) {
      out.push_back({TimePoint{(pt.t - start).usec()}, pt.bytes});
    }
  }

  const std::int64_t observed = result.timeline.empty() ? 0 : result.timeline.back().bytes;
  if (observed >= bytes) {
    result.completed = true;
    for (const auto& pt : result.timeline) {
      if (pt.bytes >= bytes) {
        result.completion_time = Duration{pt.t.usec()};
        break;
      }
    }
    result.throughput_mbps = throughput_mbps(bytes, result.completion_time);
  } else {
    result.completion_time = timeout;
    result.throughput_mbps = throughput_mbps(observed, timeout);
  }
  return result;
}

}  // namespace mn
