#include "mptcp/testbed.hpp"

#include <utility>

#include "util/units.hpp"

namespace mn {

MpNetworkSetup symmetric_setup(const LinkSpec& wifi, const LinkSpec& lte) {
  MpNetworkSetup s;
  s.wifi_up = s.wifi_down = wifi;
  s.lte_up = s.lte_down = lte;
  return s;
}

MptcpTestbed::MptcpTestbed(Simulator& sim, const MpNetworkSetup& setup, MptcpSpec spec,
                           std::uint64_t connection_id)
    : sim_(sim), meters_{EnergyMeter{wifi_power_params()}, EnergyMeter{lte_power_params()}} {
  wifi_path_ = std::make_unique<DuplexPath>(sim, setup.wifi_up, setup.wifi_down);
  lte_path_ = std::make_unique<DuplexPath>(sim, setup.lte_up, setup.lte_down);
  ifaces_[0] = std::make_unique<NetworkInterface>("wifi", sim, *wifi_path_,
                                                  setup.wifi_reports_carrier_loss);
  ifaces_[1] = std::make_unique<NetworkInterface>("lte", sim, *lte_path_,
                                                  setup.lte_reports_carrier_loss);

  client_ = std::make_unique<MptcpAgent>(sim, connection_id, spec, /*is_client=*/true);
  server_ = std::make_unique<MptcpAgent>(sim, connection_id, spec, /*is_client=*/false);

  for (int id = 0; id < 2; ++id) {
    const PathId path = client_->subflow_path(id);
    NetworkInterface* iface = ifaces_[static_cast<std::size_t>(path)].get();
    client_->set_transmit(id, [iface](Packet p) { iface->send(std::move(p)); });
    DuplexPath* dp = (path == PathId::kWifi) ? wifi_path_.get() : lte_path_.get();
    server_->set_transmit(id, [dp](Packet p) { dp->send_down(std::move(p)); });
  }
  // All client-bound traffic funnels into the client agent (subflow_id in
  // the packet selects the endpoint); same on the server.
  for (auto& iface : ifaces_) {
    iface->set_receiver([this](Packet p) { client_->handle_packet(p); });
    iface->set_receiver_batch([this](std::span<Packet> ps) {
      client_->on_packets({ps.data(), ps.size()});
    });
  }
  // The client side installs taps below, which forces its interfaces
  // onto the per-packet path; the untapped server side takes each
  // tick's deliveries as one span.
  wifi_path_->set_server_receiver([this](Packet p) { server_->handle_packet(p); });
  lte_path_->set_server_receiver([this](Packet p) { server_->handle_packet(p); });
  wifi_path_->set_server_receiver_batch(
      [this](std::span<Packet> ps) { server_->on_packets({ps.data(), ps.size()}); });
  lte_path_->set_server_receiver_batch(
      [this](std::span<Packet> ps) { server_->on_packets({ps.data(), ps.size()}); });

  // Interface state changes drive MPTCP path management on the client.
  for (int pi = 0; pi < 2; ++pi) {
    const auto path = static_cast<PathId>(pi);
    ifaces_[static_cast<std::size_t>(pi)]->add_state_listener(
        [this, path](bool up) { client_->notify_path_state(path, up); });
    // Packet-event taps (Figure 15 / energy model).  The same events
    // feed the per-radio energy meters first-class.
    ifaces_[static_cast<std::size_t>(pi)]->set_tap(
        [this, pi](TimePoint t, PacketDir dir, const Packet& p) {
          events_[static_cast<std::size_t>(pi)].push_back(
              PacketEvent{t, dir, p.flags, p.payload});
          meters_[static_cast<std::size_t>(pi)].add_activity(t);
        });
  }
}

MptcpTestbed::~MptcpTestbed() {
  wifi_path_->set_server_receiver({});
  lte_path_->set_server_receiver({});
  wifi_path_->set_server_receiver_batch({});
  lte_path_->set_server_receiver_batch({});
}

void MptcpTestbed::start_transfer(std::int64_t bytes, Direction dir) {
  MptcpAgent& sender = (dir == Direction::kUpload) ? *client_ : *server_;
  sender.send_data(bytes);
  sender.close_when_done();
  server_->listen();
  client_->connect();
}

bool MptcpTestbed::run_until_finished(Duration timeout) {
  const TimePoint deadline = sim_.now() + timeout;
  while (!(client_->finished() && server_->finished()) && sim_.now() < deadline) {
    if (!sim_.step()) break;
  }
  const bool finished = client_->finished() && server_->finished();
  if (!finished && sim_.now() >= deadline) {
    if (auto* o = sim_.obs()) o->count(o->ids().mptcp_run_timeouts);
  }
  return finished;
}

std::uint64_t MptcpTestbed::progress_signature() const {
  // Weighted sum of every monotone transfer counter plus the subflow
  // states (handshake transitions count as progress too).  Because the
  // byte counters only ever increase, a sum changes exactly when any
  // component changes — no hash needed.  States get a 2^40 weight so a
  // state transition can never be cancelled by a byte-counter delta
  // (individual flows move far fewer than a terabyte).  This runs after
  // every simulator step, so it must stay a handful of inline loads.
  std::uint64_t sig = 0;
  for (const MptcpAgent* agent : {client_.get(), server_.get()}) {
    sig += static_cast<std::uint64_t>(agent->data_acked());
    sig += static_cast<std::uint64_t>(agent->data_delivered());
    for (int id = 0; id < 2; ++id) {
      const TcpEndpoint& ep = agent->subflow(id);
      sig += static_cast<std::uint64_t>(ep.bytes_acked());
      sig += static_cast<std::uint64_t>(ep.bytes_delivered());
      sig += static_cast<std::uint64_t>(ep.state()) << 40;
    }
  }
  return sig;
}

WatchdogResult MptcpTestbed::run_with_watchdog(Duration timeout, Duration stall_limit) {
  WatchdogResult result;
  const TimePoint deadline = sim_.now() + timeout;
  // The watchdog is a *simulator* event, so the stall bound holds even
  // when the next real event is far away (exponential RTO backoff can
  // leave minute-long gaps in the queue).
  bool stalled = false;
  Timer watchdog{sim_, [&stalled] { stalled = true; }};
  watchdog.restart(stall_limit);
  std::uint64_t last_sig = progress_signature();
  TimePoint last_progress = sim_.now();

  while (!(client_->finished() && server_->finished())) {
    if (stalled || sim_.now() >= deadline) break;
    if (!sim_.step()) break;
    const std::uint64_t sig = progress_signature();
    if (sig != last_sig) {
      result.max_stall = std::max(result.max_stall, sim_.now() - last_progress);
      last_sig = sig;
      last_progress = sim_.now();
      watchdog.restart(stall_limit);
    }
  }
  result.max_stall = std::max(result.max_stall, sim_.now() - last_progress);

  if (client_->finished() && server_->finished()) {
    result.completed = true;
  } else if (stalled) {
    result.reason = "stall: no progress for " + std::to_string(stall_limit.usec() / 1000) +
                    " ms";
  } else if (sim_.now() >= deadline) {
    result.reason = "timeout";
    if (auto* o = sim_.obs()) o->count(o->ids().mptcp_run_timeouts);
  } else {
    result.reason = "idle: event queue drained before completion";
  }
  return result;
}

void MptcpTestbed::shutdown() {
  client_->shutdown();
  server_->shutdown();
}

MptcpFlowResult run_mptcp_flow(Simulator& sim, const MpNetworkSetup& setup,
                               const MptcpSpec& spec, std::int64_t bytes, Direction dir,
                               const FlowRunOptions& options) {
  MptcpTestbed bed{sim, setup, spec, options.connection_id};
  const TimePoint start = sim.now();
  MptcpFlowResult result;

  bed.client().on_established = [&] { result.primary_established = sim.now() - start; };
  if (options.on_testbed) options.on_testbed(bed);
  bed.start_transfer(bytes, dir);
  const WatchdogResult watchdog = bed.run_with_watchdog(options.timeout, options.stall_limit);
  result.max_stall = watchdog.max_stall;
  if (!watchdog.completed) {
    result.failure_reason = watchdog.reason;
    // Quiesce the agents so the caller can drain the simulator without
    // RTO timers rescheduling forever.
    bed.shutdown();
  }

  // Negotiation outcome: the client (active opener) is authoritative —
  // it is the side real measurement tools observe — but when a one-way
  // middlebox leaves the views asymmetric, a fallback either side saw is
  // worth reporting.
  // Per-radio energy: integrate to end-of-run + 20 s so the LTE tail
  // (15 s after the FIN) is fully charged to the flow that caused it.
  result.scheduler = spec.scheduler;
  const TimePoint energy_horizon = sim.now() + sec(20);
  result.energy_wifi_j = bed.radio_energy_joules(PathId::kWifi, energy_horizon);
  result.energy_lte_j = bed.radio_energy_joules(PathId::kLte, energy_horizon);
  if (auto* o = sim.obs()) {
    bed.meter(PathId::kWifi).publish(*o, energy_horizon, /*radio_id=*/0);
    bed.meter(PathId::kLte).publish(*o, energy_horizon, /*radio_id=*/1);
  }

  result.negotiation = bed.client().negotiation();
  result.negotiated_mp = bed.client().negotiated_mp();
  result.achieved_mp = bed.client().achieved_mp();
  result.join_attempts = bed.client().join_attempts();
  result.fallback_reason = bed.client().fallback_reason();
  if (result.fallback_reason.empty()) {
    result.fallback_reason = bed.server().fallback_reason();
  }

  // Client-observed data-level clock: delivered for downloads, acked for
  // uploads (the paper measures at the phone's tcpdump).
  const auto& tl = (dir == Direction::kDownload) ? bed.client().delivered_timeline()
                                                 : bed.client().acked_timeline();
  result.timeline.reserve(tl.size());
  for (const auto& pt : tl) {
    result.timeline.push_back({TimePoint{(pt.t - start).usec()}, pt.bytes});
  }
  for (int id = 0; id < 2; ++id) {
    result.subflow_paths[static_cast<std::size_t>(id)] = bed.client().subflow_path(id);
    const auto& stl = (dir == Direction::kDownload)
                          ? bed.client().subflow(id).delivered_timeline()
                          : bed.client().subflow(id).acked_timeline();
    auto& out = result.subflow_timelines[static_cast<std::size_t>(id)];
    out.reserve(stl.size());
    for (const auto& pt : stl) {
      out.push_back({TimePoint{(pt.t - start).usec()}, pt.bytes});
    }
  }

  const std::int64_t observed = result.timeline.empty() ? 0 : result.timeline.back().bytes;
  if (observed >= bytes) {
    result.completed = true;
    for (const auto& pt : result.timeline) {
      if (pt.bytes >= bytes) {
        result.completion_time = Duration{pt.t.usec()};
        break;
      }
    }
    result.throughput_mbps = throughput_mbps(bytes, result.completion_time);
  } else {
    result.completion_time = options.timeout;
    result.throughput_mbps = throughput_mbps(observed, options.timeout);
    if (result.failure_reason.empty()) result.failure_reason = "incomplete";
  }
  return result;
}

MptcpFlowResult run_mptcp_flow(Simulator& sim, const MpNetworkSetup& setup,
                               const MptcpSpec& spec, std::int64_t bytes, Direction dir,
                               Duration timeout, std::uint64_t connection_id) {
  FlowRunOptions options;
  options.timeout = timeout;
  // Preserve the legacy contract: a plain wall-clock cap.  The paper's
  // scripted failure experiments deliberately hold a flow stalled for
  // tens of seconds (Figure 15g), so no stall bound here.
  options.stall_limit = timeout;
  options.connection_id = connection_id;
  return run_mptcp_flow(sim, setup, spec, bytes, dir, options);
}

}  // namespace mn
