#include "mptcp/mptcp_agent.hpp"

#include <algorithm>
#include <cstdio>

namespace mn {

MptcpAgent::MptcpAgent(Simulator& sim, std::uint64_t connection_id, MptcpSpec spec,
                       bool is_client)
    : sim_(sim), connection_id_(connection_id), spec_(spec), is_client_(is_client) {
  // Subflow 0 rides the primary network; subflow 1 the other one.
  setup_subflow(0, spec_.primary, MpOption::kCapable);
  setup_subflow(1, other_path(spec_.primary), MpOption::kJoin);
  subflows_[1].is_backup = spec_.mode != MpMode::kFull;
}

MptcpAgent::~MptcpAgent() = default;

std::unique_ptr<CongestionController> MptcpAgent::make_cc() {
  switch (spec_.cc) {
    case CcAlgo::kCoupled: return std::make_unique<LiaCc>(group_);
    case CcAlgo::kOlia: return std::make_unique<OliaCc>(olia_group_);
    case CcAlgo::kDecoupled: break;
  }
  return std::make_unique<RenoCc>();
}

void MptcpAgent::setup_subflow(int id, PathId path, MpOption syn_option) {
  Subflow& sf = subflows_[static_cast<std::size_t>(id)];
  sf.path = path;
  TcpConfig cfg;
  cfg.connection_id = connection_id_;
  cfg.subflow_id = id;
  cfg.syn_option = syn_option;
  cfg.min_rto = spec_.subflow_min_rto;
  cfg.initial_rto = spec_.subflow_initial_rto;
  cfg.max_rto = spec_.subflow_max_rto;
  sf.ep = std::make_unique<TcpEndpoint>(sim_, cfg, make_cc());
  sf.ep->set_source(this);
  sf.ep->on_send_possible = [this] { pump_all(); };
  sf.ep->on_acked = [this, id](std::int64_t newly, std::int64_t) {
    on_subflow_acked(id, newly);
  };
  sf.ep->on_data_segment = [this, id](const Packet& p) { on_subflow_segment(id, p); };
  sf.ep->on_closed = [this] { maybe_fire_closed(); };
  if (id == 0) {
    sf.ep->on_established = [this] {
      if (on_established) on_established();
      if (is_client_) start_join();
      pump_all();
    };
  }
}

void MptcpAgent::set_transmit(int subflow_id, PacketHandler transmit) {
  // The agent owns the one canonical handler (it also needs it for the
  // RST path after the endpoint is frozen); the endpoint forwards
  // through it.  PacketHandler is move-only, so no copies.
  Subflow& sf = subflows_[static_cast<std::size_t>(subflow_id)];
  sf.transmit = std::move(transmit);
  sf.ep->set_transmit([this, subflow_id](Packet p) {
    Subflow& owner = subflows_[static_cast<std::size_t>(subflow_id)];
    if (owner.transmit) owner.transmit(std::move(p));
  });
}

void MptcpAgent::handle_packet(const Packet& p) {
  if (p.subflow_id < 0 || p.subflow_id > 1) return;
  Subflow& sf = subflows_[static_cast<std::size_t>(p.subflow_id)];
  if (p.flags.rst) {
    // Peer tore this subflow down (soft interface failure on its side).
    kill_subflow(p.subflow_id, /*send_rst=*/false);
    return;
  }
  if (sf.dead) return;
  sf.ep->handle_packet(p);
}

void MptcpAgent::connect() { subflows_[0].connected_started = true; subflows_[0].ep->connect(); }

void MptcpAgent::listen() {
  subflows_[0].ep->listen();
  subflows_[1].ep->listen();
}

void MptcpAgent::start_join() {
  if (spec_.mode == MpMode::kSinglePath) return;  // joined only on failure
  Subflow& sf = subflows_[1];
  if (sf.connected_started || sf.dead) return;
  sf.connected_started = true;
  if (spec_.join_delay.usec() > 0) {
    sim_.schedule_after(spec_.join_delay, [this] {
      if (!subflows_[1].dead) subflows_[1].ep->connect();
    });
  } else {
    sf.ep->connect();
  }
}

void MptcpAgent::send_data(std::int64_t bytes) {
  data_end_ += bytes;
  pump_all();
}

void MptcpAgent::close_when_done() {
  close_requested_ = true;
  maybe_close_subflows();
  pump_all();
}

void MptcpAgent::notify_path_state(PathId path, bool up) {
  for (int id = 0; id < 2; ++id) {
    Subflow& sf = subflows_[static_cast<std::size_t>(id)];
    if (sf.path != path) continue;
    if (!up) {
      kill_subflow(id, /*send_rst=*/true);
    } else if (!sf.dead) {
      // Replug of a silently-failed path: the subflow was never killed,
      // so revive it — window updates wake the remote sender and our own
      // retransmissions restart (paper Figure 15g's resume-on-replug).
      sf.ep->on_link_up();
    }
    // A *dead* subflow stays dead (Linux v0.88 does not resurrect
    // closed subflows).
  }
}

void MptcpAgent::shutdown() {
  for (auto& sf : subflows_) {
    if (sf.ep) sf.ep->freeze();
  }
}

int MptcpAgent::active_data_subflow() const {
  // In Backup / Single-Path mode, data rides the primary subflow while it
  // lives, then fails over to the other.
  if (!subflows_[0].dead) return 0;
  return 1;
}

std::optional<DataSource::Chunk> MptcpAgent::take(std::int64_t max_bytes,
                                                  int subflow_id) {
#ifdef MN_MPTCP_DEBUG
  std::fprintf(stderr, "[take] t=%.3f sf=%d max=%lld next=%lld end=%lld cum=%lld\n",
               sim_.now().seconds(), subflow_id, (long long)max_bytes,
               (long long)next_data_seq_, (long long)data_end_,
               (long long)acked_.contiguous_from(0));
#endif
  Subflow& sf = subflows_[static_cast<std::size_t>(subflow_id)];
  if (sf.dead || max_bytes <= 0) return std::nullopt;
  if (spec_.mode != MpMode::kFull && subflow_id != active_data_subflow()) {
    return std::nullopt;  // backup withholding
  }
  Chunk c;
  if (!reinject_.empty()) {
    auto& [start, len] = reinject_.front();
    c.data_seq = start;
    c.bytes = std::min(max_bytes, len);
    start += c.bytes;
    len -= c.bytes;
    if (len == 0) reinject_.pop_front();
  } else {
    const std::int64_t cum_ack = acked_.contiguous_from(0);
    const std::int64_t window_limit =
        cum_ack + std::max<std::int64_t>(spec_.receive_window_bytes, 64'000);
    if (next_data_seq_ < data_end_ && next_data_seq_ < window_limit) {
      c.data_seq = next_data_seq_;
      c.bytes = std::min({max_bytes, data_end_ - next_data_seq_,
                          window_limit - next_data_seq_});
      next_data_seq_ += c.bytes;
    } else if (spec_.opportunistic_reinjection && data_end_ > 0 &&
               cum_ack < data_end_ && cum_ack > last_opportunistic_seq_) {
      // Blocked: either the receive window is closed mid-flow, or all
      // data is assigned and we are waiting on stragglers at the tail.
      // Opportunistic reinjection (Linux MPTCP v0.88, after Raiciu et
      // al.): if another subflow holds the chunk everyone waits on,
      // retransmit it here instead of idling.  One per stall point.
      const bool window_blocked = next_data_seq_ < data_end_;
      for (int other = 0; other < 2 && c.bytes == 0; ++other) {
        if (other == subflow_id) continue;
        Subflow& o = subflows_[static_cast<std::size_t>(other)];
        for (const auto& [ds, len] : o.mappings) {
          if (ds <= cum_ack && cum_ack < ds + len) {
            last_opportunistic_seq_ = cum_ack;
            c.data_seq = cum_ack;
            c.bytes = std::min(max_bytes, ds + len - cum_ack);
            // Penalization targets a genuinely window-hogging slow
            // path (severe RTT asymmetry, i.e. bufferbloat), not a
            // peer's transient loss-recovery hole.
            if (spec_.penalization && window_blocked &&
                o.ep->srtt() > 3 * sf.ep->srtt()) {
              o.ep->penalize();
            }
            break;
          }
        }
      }
      if (c.bytes == 0) return std::nullopt;
    } else {
      return std::nullopt;
    }
  }
  sf.mappings.emplace_back(c.data_seq, c.bytes);
  last_grant_subflow_ = subflow_id;
  if (auto* o = sim_.obs()) {
    o->count(subflow_id == 0 ? o->ids().mptcp_grants_sf0 : o->ids().mptcp_grants_sf1);
    o->record(sim_.now(), obs::FlightEventType::kSchedGrant,
              static_cast<std::uint8_t>(subflow_id), 0, c.data_seq, c.bytes);
  }
  return c;
}

bool MptcpAgent::exhausted() const {
  return reinject_.empty() && next_data_seq_ >= data_end_;
}

void MptcpAgent::pump_all() {
  std::array<int, 2> order{0, 1};
  if (spec_.scheduler == MpScheduler::kLowestRtt) {
    // Lowest-SRTT-first (the Linux MPTCP default scheduler).
    const auto key = [this](int id) {
      const Subflow& sf = subflows_[static_cast<std::size_t>(id)];
      return sf.ep->srtt().usec() > 0 ? sf.ep->srtt().usec() : msec(100).usec();
    };
    if (key(1) < key(0)) std::swap(order[0], order[1]);
  } else {
    // Round-robin: offer data first to the subflow that did NOT receive
    // the previous grant (robust against pump_all being invoked several
    // times per ACK).
    if (last_grant_subflow_ == 0) std::swap(order[0], order[1]);
  }
  for (int id : order) {
    Subflow& sf = subflows_[static_cast<std::size_t>(id)];
    if (!sf.dead && sf.ep->established()) sf.ep->pump();
  }
}

void MptcpAgent::on_subflow_acked(int id, std::int64_t newly) {
  Subflow& sf = subflows_[static_cast<std::size_t>(id)];
  std::int64_t gained = 0;
  while (newly > 0 && !sf.mappings.empty()) {
    auto& [data_seq, len] = sf.mappings.front();
    const std::int64_t n = std::min(newly, len);
    gained += acked_.add(data_seq, data_seq + n);
    data_seq += n;
    len -= n;
    newly -= n;
    if (len == 0) sf.mappings.pop_front();
  }
  if (gained > 0) {
    acked_timeline_.push_back({sim_.now(), acked_.total()});
    if (on_data_acked) on_data_acked(gained, acked_.total());
    pump_all();  // the data-level window may have opened
  }
  maybe_close_subflows();
}

void MptcpAgent::on_subflow_segment(int /*id*/, const Packet& p) {
  if (p.data_seq < 0 || p.payload <= 0) return;
  const std::int64_t gained = received_.add(p.data_seq, p.data_seq + p.payload);
  if (gained > 0) {
    delivered_timeline_.push_back({sim_.now(), received_.total()});
    if (on_data_delivered) on_data_delivered(received_.total());
  }
}

void MptcpAgent::kill_subflow(int id, bool send_rst) {
  Subflow& sf = subflows_[static_cast<std::size_t>(id)];
  if (sf.dead) return;
  sf.dead = true;
  if (send_rst) {
    Packet rst;
    rst.connection_id = connection_id_;
    rst.subflow_id = id;
    rst.flags.rst = true;
    rst.sent_at = sim_.now();
    // Tear-down signal on the dying path itself (works for a soft
    // "multipath off", where the radio still transmits)...
    if (sf.transmit) sf.transmit(rst);
    // ...and MP_FAIL-style over the surviving subflow's path, for
    // carrier-loss failures where the dying path is already mute.
    Subflow& peer_sf = subflows_[static_cast<std::size_t>(1 - id)];
    if (!peer_sf.dead && peer_sf.transmit) peer_sf.transmit(rst);
  }
  sf.ep->freeze();
  // Reinject data this subflow never got acknowledged; the receiver's
  // interval set deduplicates anything that actually arrived.
  for (auto& [data_seq, len] : sf.mappings) {
    if (len > 0) {
      reinject_.emplace_back(data_seq, len);
      if (auto* o = sim_.obs()) {
        o->count(o->ids().mptcp_reinjects);
        o->record(sim_.now(), obs::FlightEventType::kReinject,
                  static_cast<std::uint8_t>(id), 0, data_seq, len);
      }
    }
  }
  sf.mappings.clear();
  // Single-Path mode: open the other subflow now (break-before-make).
  if (is_client_ && spec_.mode == MpMode::kSinglePath && id == 0) {
    Subflow& backup = subflows_[1];
    if (!backup.connected_started && !backup.dead) {
      backup.connected_started = true;
      backup.ep->connect();
    }
  }
  pump_all();
  maybe_fire_closed();
}

void MptcpAgent::maybe_close_subflows() {
  if (!close_requested_ || subflow_close_issued_) return;
  if (!exhausted()) return;
  if (data_end_ > 0 && acked_.total() < data_end_) return;
  subflow_close_issued_ = true;
  for (auto& sf : subflows_) {
    if (sf.dead) continue;
    if (!sf.connected_started && !sf.ep->established() &&
        sf.ep->state() == TcpState::kClosed) {
      // Never started (Single-Path backup): nothing to close.
      sf.dead = true;
      continue;
    }
    sf.ep->close_when_done();
  }
  maybe_fire_closed();
}

bool MptcpAgent::finished() const {
  bool any_done = false;
  for (const auto& sf : subflows_) {
    if (sf.dead) continue;
    if (sf.ep->state() == TcpState::kListen && !is_client_) continue;  // unused accept slot
    if (!sf.connected_started && sf.ep->state() == TcpState::kClosed) {
      continue;  // never opened (Single-Path backup)
    }
    if (sf.ep->state() != TcpState::kDone) return false;
    any_done = true;
  }
  // A connection whose every subflow died (RST, both paths down) never
  // finished — it failed.  Without this, killing both paths mid-transfer
  // would read as a clean close with data still undelivered.
  return any_done;
}

void MptcpAgent::maybe_fire_closed() {
  if (closed_fired_ || !finished()) return;
  closed_fired_ = true;
  if (on_closed) on_closed();
}

}  // namespace mn
