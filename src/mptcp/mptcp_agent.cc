#include "mptcp/mptcp_agent.hpp"

#include <algorithm>
#include <cstdio>

namespace mn {

MptcpAgent::MptcpAgent(Simulator& sim, std::uint64_t connection_id, MptcpSpec spec,
                       bool is_client)
    : sim_(sim),
      connection_id_(connection_id),
      spec_(spec),
      is_client_(is_client),
      scheduler_(make_scheduler(spec)),
      join_timer_(sim, [this] { on_join_timer(); }) {
  // Subflow 0 rides the primary network; subflow 1 the other one.
  setup_subflow(0, spec_.primary, MpOption::kCapable);
  setup_subflow(1, other_path(spec_.primary), MpOption::kJoin);
  subflows_[1].is_backup = spec_.mode != MpMode::kFull;
}

MptcpAgent::~MptcpAgent() = default;

std::unique_ptr<CongestionController> MptcpAgent::make_cc() {
  switch (spec_.cc) {
    case CcAlgo::kCoupled: return std::make_unique<LiaCc>(group_);
    case CcAlgo::kOlia: return std::make_unique<OliaCc>(olia_group_);
    case CcAlgo::kDecoupled: break;
  }
  return std::make_unique<RenoCc>();
}

void MptcpAgent::setup_subflow(int id, PathId path, MpOption syn_option) {
  Subflow& sf = subflows_[static_cast<std::size_t>(id)];
  sf.path = path;
  TcpConfig cfg;
  cfg.connection_id = connection_id_;
  cfg.subflow_id = id;
  cfg.syn_option = syn_option;
  cfg.min_rto = spec_.subflow_min_rto;
  cfg.initial_rto = spec_.subflow_initial_rto;
  cfg.max_rto = spec_.subflow_max_rto;
  cfg.record_timelines = spec_.record_timelines;
  sf.ep = std::make_unique<TcpEndpoint>(sim_, cfg, make_cc());
  sf.ep->set_source(this);
  sf.ep->on_send_possible = [this] { pump_all(); };
  sf.ep->on_acked = [this, id](std::int64_t newly, std::int64_t) {
    on_subflow_acked(id, newly);
  };
  sf.ep->on_data_segment = [this, id](const Packet& p) { on_subflow_segment(id, p); };
  sf.ep->on_closed = [this] { maybe_fire_closed(); };
  sf.ep->on_negotiated = [this, id](MpOption opt) { on_subflow_negotiated(id, opt); };
  if (id == 0) {
    sf.ep->on_established = [this] {
      if (on_established) on_established();
      if (is_client_) start_join();
      pump_all();
    };
  }
}

void MptcpAgent::set_transmit(int subflow_id, PacketHandler transmit) {
  // The agent owns the one canonical handler (it also needs it for the
  // RST path after the endpoint is frozen); the endpoint forwards
  // through it.  PacketHandler is move-only, so no copies.
  subflows_[static_cast<std::size_t>(subflow_id)].transmit = std::move(transmit);
  install_transmit(subflow_id);
}

void MptcpAgent::install_transmit(int id) {
  // Separate from set_transmit so a recreated endpoint (join retry,
  // server-side resurrection) re-attaches to the slot's stored handler.
  subflows_[static_cast<std::size_t>(id)].ep->set_transmit([this, id](Packet p) {
    Subflow& owner = subflows_[static_cast<std::size_t>(id)];
    if (owner.transmit) owner.transmit(std::move(p));
  });
}

void MptcpAgent::handle_packet(const Packet& p) {
  if (p.subflow_id < 0 || p.subflow_id > 1) return;
  Subflow& sf = subflows_[static_cast<std::size_t>(p.subflow_id)];
  if (p.flags.rst) {
    if (p.subflow_id == 1 && join_in_progress()) {
      // The peer refused the MP_JOIN handshake (a middlebox ate the
      // option, so the server could not match the subflow to the
      // connection).  A rejection, not a path death: retry with backoff.
      fail_join_attempt();
    } else {
      // Peer tore this subflow down (soft interface failure on its side).
      kill_subflow(p.subflow_id, /*send_rst=*/false);
    }
    return;
  }
  if (p.mp_option == MpOption::kFail && !shutdown_) {
    on_mp_fail(p.subflow_id);  // never reaches the endpoint: agent-level
    return;
  }
  if (sf.dead) {
    // A rejected join slot comes back to life on a fresh MP_JOIN SYN —
    // the client gave up on the old attempt and is opening a new
    // subflow into the same slot.
    if (!is_client_ && p.subflow_id == 1 && p.flags.syn && !p.flags.ack &&
        p.mp_option == MpOption::kJoin && !shutdown_ && !closed_fired_) {
      setup_subflow(1, sf.path, MpOption::kJoin);
      install_transmit(1);
      sf.dead = false;
      sf.connected_started = false;
      sf.ep->listen();
      sf.ep->handle_packet(p);
    }
    return;
  }
  sf.ep->handle_packet(p);
}

void MptcpAgent::connect() { subflows_[0].connected_started = true; subflows_[0].ep->connect(); }

void MptcpAgent::listen() {
  subflows_[0].ep->listen();
  subflows_[1].ep->listen();
}

void MptcpAgent::start_join() {
  join_deferred_ = false;
  if (spec_.mode == MpMode::kSinglePath) return;  // joined only on failure
  if (join_given_up_ || negotiation_ == MpNegotiation::kFallbackTcp) return;
  Subflow& sf = subflows_[1];
  if (sf.connected_started || sf.dead) return;
  // The policy may hold the costly radio back until the flow proves big
  // (eMPTCP delayed subflow establishment); pump_all re-polls it.
  {
    std::array<SubflowSnapshot, 2> snaps;
    fill_snapshots(snaps);
    if (!scheduler_->allow_join(snaps, sf.path, sched_context())) {
      join_deferred_ = true;
      return;
    }
  }
  sf.connected_started = true;
  if (spec_.join_delay.usec() > 0) {
    sim_.schedule_after(spec_.join_delay, [this] { attempt_join(); });
  } else {
    attempt_join();
  }
}

// ---- negotiation / fallback state machine --------------------------------
//
//   kNegotiating --(MP_CAPABLE survives sf0 handshake)--> kMultipath
//   kNegotiating --(option stripped / SYN dropped)------> kFallbackTcp
//   kMultipath   --(every MP_JOIN attempt rejected)-----> kSubflowRejected
//   kMultipath   --(mid-flow DSS mangled, MP_FAIL)------> kFallbackTcp
//
// Every transition is driven by a bounded mechanism (SYN-option
// suppression in the endpoint, join_max_attempts/join_timeout here, one
// MP_FAIL per subflow), so no middlebox combination can stall a flow in
// kNegotiating forever.

void MptcpAgent::on_subflow_negotiated(int id, MpOption opt) {
  if (id == 0) {
    if (opt == MpOption::kCapable) {
      negotiated_mp_ = true;
      if (negotiation_ == MpNegotiation::kNegotiating) {
        negotiation_ = MpNegotiation::kMultipath;
      }
    } else {
      // Our side suppressed the option after unanswered SYNs (a
      // SYN-dropping middlebox) or the peer never saw/echoed it (an
      // option-stripping one).  Either way: plain TCP from here on.
      enter_handshake_fallback(subflows_[0].ep->syn_option_suppressed()
                                   ? "syn_dropped"
                                   : "capable_stripped");
    }
    return;
  }
  // Subflow 1: the MP_JOIN handshake settled.
  if (opt == MpOption::kJoin) {
    achieved_mp_ = true;
    join_timer_.stop();
    return;
  }
  if (is_client_) {
    fail_join_attempt();
  } else {
    // A subflow that lost its MP_JOIN cannot be matched to the
    // connection: reject it (RFC 6824 token-mismatch behaviour).  The
    // client sees the RST mid-join and retries or gives up.
    kill_subflow(1, /*send_rst=*/true);
  }
}

void MptcpAgent::enter_handshake_fallback(const std::string& reason) {
  negotiation_ = MpNegotiation::kFallbackTcp;
  fallback_ = true;
  fallback_reason_ = reason;
  join_given_up_ = true;  // a plain-TCP connection has nothing to join
  join_timer_.stop();
  Subflow& sf1 = subflows_[1];
  if (!sf1.connected_started && !sf1.ep->established()) sf1.dead = true;
  // Count once per connection, on the active opener, so the client and
  // server agents sharing one hub do not double-report.
  if (is_client_) {
    if (auto* o = sim_.obs()) o->count(o->ids().mptcp_fallback_handshake);
  }
}

bool MptcpAgent::join_in_progress() const {
  return is_client_ && subflows_[1].connected_started && !achieved_mp_ &&
         !join_given_up_;
}

void MptcpAgent::attempt_join() {
  if (!is_client_ || achieved_mp_ || join_given_up_ || shutdown_) return;
  if (negotiation_ == MpNegotiation::kFallbackTcp) return;
  if (subflow_close_issued_ || closed_fired_) return;
  if (join_attempts_ >= spec_.join_max_attempts) {
    give_up_join();
    return;
  }
  ++join_attempts_;
  Subflow& sf = subflows_[1];
  if (sf.dead || sf.ep->state() != TcpState::kClosed) {
    // Retry after a rejected attempt: v0.88 never resurrects a closed
    // subflow, so the path manager opens a brand-new one in the slot.
    setup_subflow(1, sf.path, MpOption::kJoin);
    install_transmit(1);
    sf.dead = false;
    sf.is_backup = spec_.mode != MpMode::kFull;
  }
  sf.connected_started = true;
  join_retry_pending_ = false;
  join_timer_.restart(spec_.join_timeout);  // supervision: rejection backstop
  sf.ep->connect();
}

void MptcpAgent::fail_join_attempt() {
  if (!join_in_progress()) return;
  if (join_retry_pending_) return;  // duplicate signal; retry already scheduled
  join_timer_.stop();
  Subflow& sf = subflows_[1];
  if (!sf.dead) {
    sf.dead = true;
    // RST so the server abandons its half-open accept state.
    Packet rst;
    rst.connection_id = connection_id_;
    rst.subflow_id = 1;
    rst.flags.rst = true;
    rst.sent_at = sim_.now();
    if (sf.transmit) sf.transmit(rst);
    sf.ep->freeze();
    sf.mappings.clear();  // nothing assigned pre-establishment
    sf.dup_queue.clear();
  }
  if (join_attempts_ >= spec_.join_max_attempts) {
    give_up_join();
    return;
  }
  if (auto* o = sim_.obs()) o->count(o->ids().mptcp_join_retries);
  join_retry_pending_ = true;
  const int shift = join_attempts_ > 0 ? join_attempts_ - 1 : 0;
  join_timer_.restart(Duration{spec_.join_retry_backoff.usec() << shift});
}

void MptcpAgent::give_up_join() {
  if (join_given_up_) return;
  join_given_up_ = true;
  join_retry_pending_ = false;
  join_timer_.stop();
  if (!achieved_mp_ && negotiation_ == MpNegotiation::kMultipath) {
    negotiation_ = MpNegotiation::kSubflowRejected;
    fallback_reason_ = "join_rejected";
    if (auto* o = sim_.obs()) o->count(o->ids().mptcp_fallback_join_rejected);
  }
  // The close path may have been waiting on the join to settle.
  maybe_close_subflows();
  maybe_fire_closed();
}

void MptcpAgent::abandon_join() {
  // Flow is closing with all data acked: a join still mid-handshake (or
  // waiting on its retry backoff) no longer serves a purpose.  Not a
  // failure — no fallback_reason, negotiation state stays as settled.
  join_given_up_ = true;
  join_retry_pending_ = false;
  join_timer_.stop();
  Subflow& sf = subflows_[1];
  if (!sf.dead && !sf.ep->established()) kill_subflow(1, /*send_rst=*/true);
}

void MptcpAgent::on_join_timer() {
  if (achieved_mp_ || join_given_up_ || shutdown_) return;
  if (join_retry_pending_) {
    attempt_join();
  } else {
    fail_join_attempt();  // this attempt's handshake timed out
  }
}

void MptcpAgent::on_mp_fail(int id) {
  // The peer saw a data segment on `id` whose DSS mapping a middlebox
  // destroyed (modelling a DSS-checksum failure).
  if (fallback_) return;
  if (fallback_reason_.empty()) {
    fallback_reason_ = "mid_flow_dss";
    if (auto* o = sim_.obs()) o->count(o->ids().mptcp_fallback_mid_flow);
  }
  negotiation_ = MpNegotiation::kFallbackTcp;
  Subflow& other = subflows_[static_cast<std::size_t>(1 - id)];
  const bool other_viable = !other.dead && other.ep->established();
  if (other_viable || achieved_mp_) {
    // Infinite-map-style degradation: abandon the poisoned subflow and
    // drain its in-flight data on the survivor (kill_subflow reinjects
    // every unacked mapping).  Subflow-acked history is requeued too —
    // any of it may have arrived DSS-mangled and never been placed, and
    // without a DATA_ACK the sender cannot tell which.  With multipath
    // history and no survivor, subflow-sequence reconstruction is
    // impossible — killing the last subflow aborts the flow, and the
    // watchdog reports the recorded fallback_reason instead of hanging.
    Subflow& sf = subflows_[static_cast<std::size_t>(id)];
    for (const auto& [ds, len] : sf.acked_log) {
      reinject_.emplace_back(ds, len);
      if (auto* o = sim_.obs()) o->count(o->ids().mptcp_reinjects);
    }
    sf.acked_log.clear();
    kill_subflow(id, /*send_rst=*/true);
  } else {
    // Sole subflow and multipath never achieved: the connection *is* a
    // plain TCP stream, so continue on it with sequence-space
    // accounting (the receiver mirrors this on its side).
    fallback_ = true;
  }
}

void MptcpAgent::send_mp_fail(int id) {
  // One MP_FAIL per unplaceable segment, not one per subflow: the
  // signal crosses lossy, possibly-blackholed reverse pipes, and the
  // sender's reaction (kill or fallback) stops the segment stream, so
  // repetition is naturally bounded by the in-flight window.
  Packet p;
  p.connection_id = connection_id_;
  p.subflow_id = id;
  p.flags.ack = true;
  p.mp_option = MpOption::kFail;
  p.sent_at = sim_.now();
  Subflow& sf = subflows_[static_cast<std::size_t>(id)];
  if (sf.transmit) sf.transmit(p);
}

void MptcpAgent::send_data(std::int64_t bytes) {
  data_end_ += bytes;
  pump_all();
}

void MptcpAgent::close_when_done() {
  close_requested_ = true;
  maybe_close_subflows();
  pump_all();
}

void MptcpAgent::notify_path_state(PathId path, bool up) {
  for (int id = 0; id < 2; ++id) {
    Subflow& sf = subflows_[static_cast<std::size_t>(id)];
    if (sf.path != path) continue;
    if (!up) {
      kill_subflow(id, /*send_rst=*/true);
    } else if (!sf.dead) {
      // Replug of a silently-failed path: the subflow was never killed,
      // so revive it — window updates wake the remote sender and our own
      // retransmissions restart (paper Figure 15g's resume-on-replug).
      sf.ep->on_link_up();
    }
    // A *dead* subflow stays dead (Linux v0.88 does not resurrect
    // closed subflows).
  }
}

void MptcpAgent::shutdown() {
  shutdown_ = true;
  join_timer_.stop();
  for (auto& sf : subflows_) {
    if (sf.ep) sf.ep->freeze();
  }
}

int MptcpAgent::active_data_subflow() const {
  // In Backup / Single-Path mode, data rides the primary subflow while it
  // lives, then fails over to the other.
  if (!subflows_[0].dead) return 0;
  return 1;
}

std::optional<DataSource::Chunk> MptcpAgent::take(std::int64_t max_bytes,
                                                  int subflow_id) {
#ifdef MN_MPTCP_DEBUG
  std::fprintf(stderr, "[take] t=%.3f sf=%d max=%lld next=%lld end=%lld cum=%lld\n",
               sim_.now().seconds(), subflow_id, (long long)max_bytes,
               (long long)next_data_seq_, (long long)data_end_,
               (long long)acked_.contiguous_from(0));
#endif
  Subflow& sf = subflows_[static_cast<std::size_t>(subflow_id)];
  if (sf.dead || max_bytes <= 0) return std::nullopt;
  if (spec_.mode != MpMode::kFull && subflow_id != active_data_subflow()) {
    return std::nullopt;  // backup withholding
  }
  Chunk c;
  bool fresh_grant = false;
  if (!reinject_.empty()) {
    auto& [start, len] = reinject_.front();
    c.data_seq = start;
    c.bytes = std::min(max_bytes, len);
    start += c.bytes;
    len -= c.bytes;
    if (len == 0) reinject_.pop_front();
  } else if (scheduler_->duplicate_grants() && take_duplicate(sf, max_bytes, c)) {
    // Duplicate of a fresh grant issued to another subflow (redundant
    // scheduling); the receiver's interval set makes the first arrival
    // win and deduplicates the rest.
  } else {
    const std::int64_t cum_ack = acked_.contiguous_from(0);
    const std::int64_t window_limit =
        cum_ack + std::max<std::int64_t>(spec_.receive_window_bytes, 64'000);
    bool fresh_allowed = next_data_seq_ < data_end_ && next_data_seq_ < window_limit;
    if (fresh_allowed) {
      // Policy gate on *new* data only — reinjections and duplicates
      // above serve reliability and always pass.
      std::array<SubflowSnapshot, 2> snaps;
      fill_snapshots(snaps);
      fresh_allowed = scheduler_->allow_fresh_grant(
          snaps[static_cast<std::size_t>(subflow_id)], snaps, sched_context());
    }
    if (fresh_allowed) {
      c.data_seq = next_data_seq_;
      c.bytes = std::min({max_bytes, data_end_ - next_data_seq_,
                          window_limit - next_data_seq_});
      next_data_seq_ += c.bytes;
      fresh_grant = true;
    } else if (spec_.opportunistic_reinjection && data_end_ > 0 &&
               cum_ack < data_end_ && cum_ack > last_opportunistic_seq_) {
      // Blocked: either the receive window is closed mid-flow, or all
      // data is assigned and we are waiting on stragglers at the tail.
      // Opportunistic reinjection (Linux MPTCP v0.88, after Raiciu et
      // al.): if another subflow holds the chunk everyone waits on,
      // retransmit it here instead of idling.  One per stall point.
      const bool window_blocked = next_data_seq_ < data_end_;
      for (int other = 0; other < 2 && c.bytes == 0; ++other) {
        if (other == subflow_id) continue;
        Subflow& o = subflows_[static_cast<std::size_t>(other)];
        for (const auto& [ds, len] : o.mappings) {
          if (ds <= cum_ack && cum_ack < ds + len) {
            last_opportunistic_seq_ = cum_ack;
            c.data_seq = cum_ack;
            c.bytes = std::min(max_bytes, ds + len - cum_ack);
            // Penalization targets a genuinely window-hogging slow
            // path (severe RTT asymmetry, i.e. bufferbloat), not a
            // peer's transient loss-recovery hole.
            if (spec_.penalization && window_blocked &&
                o.ep->srtt() > 3 * sf.ep->srtt()) {
              o.ep->penalize();
            }
            break;
          }
        }
      }
      if (c.bytes == 0) return std::nullopt;
    } else {
      return std::nullopt;
    }
  }
  sf.mappings.emplace_back(c.data_seq, c.bytes);
  last_grant_subflow_ = subflow_id;
  if (fresh_grant && scheduler_->duplicate_grants()) {
    // Mirror the fresh range onto every other live subflow's duplicate
    // queue; each serves it when its own window opens.
    for (int other = 0; other < 2; ++other) {
      if (other == subflow_id) continue;
      Subflow& o = subflows_[static_cast<std::size_t>(other)];
      if (!o.dead) o.dup_queue.emplace_back(c.data_seq, c.bytes);
    }
  }
  scheduler_->on_grant(subflow_id, c.data_seq, c.bytes, sched_context());
  if (auto* o = sim_.obs()) {
    o->count(subflow_id == 0 ? o->ids().mptcp_grants_sf0 : o->ids().mptcp_grants_sf1);
    o->record(sim_.now(), obs::FlightEventType::kSchedGrant,
              static_cast<std::uint8_t>(subflow_id), 0, c.data_seq, c.bytes);
  }
  return c;
}

bool MptcpAgent::take_duplicate(Subflow& sf, std::int64_t max_bytes, Chunk& c) {
  while (!sf.dup_queue.empty()) {
    auto& [start, len] = sf.dup_queue.front();
    if (acked_.covers(start, start + len)) {
      sf.dup_queue.pop_front();  // first ACK already won; nothing to gain
      continue;
    }
    c.data_seq = start;
    c.bytes = std::min(max_bytes, len);
    start += c.bytes;
    len -= c.bytes;
    if (len == 0) sf.dup_queue.pop_front();
    return true;
  }
  return false;
}

bool MptcpAgent::exhausted() const {
  return reinject_.empty() && next_data_seq_ >= data_end_;
}

SchedContext MptcpAgent::sched_context() const {
  SchedContext ctx;
  ctx.now = sim_.now();
  ctx.data_end = data_end_;
  ctx.next_data_seq = next_data_seq_;
  ctx.cum_acked = acked_.contiguous_from(0);
  ctx.delivered = received_.contiguous_from(0);
  ctx.last_grant_subflow = last_grant_subflow_;
  return ctx;
}

void MptcpAgent::fill_snapshots(std::array<SubflowSnapshot, 2>& out) const {
  for (int id = 0; id < 2; ++id) {
    const Subflow& sf = subflows_[static_cast<std::size_t>(id)];
    SubflowSnapshot& s = out[static_cast<std::size_t>(id)];
    s.id = id;
    s.path = sf.path;
    s.dead = sf.dead;
    s.usable = !sf.dead && sf.ep->established();
    s.can_carry =
        s.usable && (spec_.mode == MpMode::kFull || id == active_data_subflow());
    s.is_backup = sf.is_backup;
    s.srtt = sf.ep->srtt();
  }
}

void MptcpAgent::pump_all() {
  // A deferred join is re-polled before pumping: the policy may have
  // engaged the costly radio now that the backlog grew, or lost its
  // last cheap subflow and need the failover.
  if (join_deferred_) start_join();
  std::array<SubflowSnapshot, 2> snaps;
  fill_snapshots(snaps);
  std::array<int, 2> order{0, 1};
  const std::size_t n = scheduler_->pump_order(snaps, sched_context(), order);
  for (std::size_t i = 0; i < n; ++i) {
    Subflow& sf = subflows_[static_cast<std::size_t>(order[i])];
    if (!sf.dead && sf.ep->established()) sf.ep->pump();
  }
}

void MptcpAgent::on_subflow_acked(int id, std::int64_t newly) {
  Subflow& sf = subflows_[static_cast<std::size_t>(id)];
  std::int64_t gained = 0;
  while (newly > 0 && !sf.mappings.empty()) {
    auto& [data_seq, len] = sf.mappings.front();
    const std::int64_t n = std::min(newly, len);
    if (!sf.acked_log.empty() &&
        sf.acked_log.back().first + sf.acked_log.back().second == data_seq) {
      sf.acked_log.back().second += n;
    } else {
      sf.acked_log.emplace_back(data_seq, n);
    }
    gained += acked_.add(data_seq, data_seq + n);
    data_seq += n;
    len -= n;
    newly -= n;
    if (len == 0) sf.mappings.pop_front();
  }
  if (gained > 0) {
    acked_timeline_.push_back({sim_.now(), acked_.total()});
    if (on_data_acked) on_data_acked(gained, acked_.total());
    pump_all();  // the data-level window may have opened
  }
  maybe_close_subflows();
}

void MptcpAgent::on_subflow_segment(int id, const Packet& p) {
  if (p.payload <= 0) return;
  std::int64_t ds = p.data_seq;
  if (ds < 0) {
    // A middlebox zeroed the DSS mapping on this segment.
    if (!fallback_) {
      if (achieved_mp_ || id != 0) {
        // Multipath history: data-level placement is unrecoverable for
        // this segment.  Signal the sender; it kills the poisoned
        // subflow and re-sends everything it carried on the survivor.
        mangled_discarded_ += p.payload;
        send_mp_fail(id);
        return;
      }
      // All data so far rode subflow 0 in assignment order, so its
      // sequence space *is* the data sequence space: degrade to plain
      // TCP accounting and notify the sender to mirror the fallback.
      fallback_ = true;
      negotiation_ = MpNegotiation::kFallbackTcp;
      if (fallback_reason_.empty()) fallback_reason_ = "mid_flow_dss";
      send_mp_fail(id);
    }
    ds = p.seq - 1;  // subflow seq 0 is the SYN; data starts at 1
  }
  const std::int64_t gained = received_.add(ds, ds + p.payload);
  if (gained > 0) {
    delivered_timeline_.push_back({sim_.now(), received_.total()});
    if (on_data_delivered) on_data_delivered(received_.total());
    // A pure receiver's pump_all rarely runs, but delivered bytes are
    // exactly the engage signal a delayed-establishment policy watches
    // on the download side — re-poll a deferred join as they grow.
    if (join_deferred_) start_join();
  }
}

void MptcpAgent::kill_subflow(int id, bool send_rst) {
  Subflow& sf = subflows_[static_cast<std::size_t>(id)];
  if (sf.dead) return;
  sf.dead = true;
  if (send_rst) {
    Packet rst;
    rst.connection_id = connection_id_;
    rst.subflow_id = id;
    rst.flags.rst = true;
    rst.sent_at = sim_.now();
    // Tear-down signal on the dying path itself (works for a soft
    // "multipath off", where the radio still transmits)...
    if (sf.transmit) sf.transmit(rst);
    // ...and MP_FAIL-style over the surviving subflow's path, for
    // carrier-loss failures where the dying path is already mute.
    Subflow& peer_sf = subflows_[static_cast<std::size_t>(1 - id)];
    if (!peer_sf.dead && peer_sf.transmit) peer_sf.transmit(rst);
  }
  sf.ep->freeze();
  // Reinject data this subflow never got acknowledged; the receiver's
  // interval set deduplicates anything that actually arrived.
  for (auto& [data_seq, len] : sf.mappings) {
    if (len > 0) {
      reinject_.emplace_back(data_seq, len);
      if (auto* o = sim_.obs()) {
        o->count(o->ids().mptcp_reinjects);
        o->record(sim_.now(), obs::FlightEventType::kReinject,
                  static_cast<std::uint8_t>(id), 0, data_seq, len);
      }
    }
  }
  sf.mappings.clear();
  sf.dup_queue.clear();
  // A join whose subflow died under it (path down mid-handshake) is not
  // retried: the path manager has no liveness signal to wait on, and a
  // bounded retry against a dead path would only delay the close.
  if (id == 1 && join_in_progress()) {
    join_given_up_ = true;
    join_retry_pending_ = false;
    join_timer_.stop();
  }
  // Single-Path mode: open the other subflow now (break-before-make).
  // Never after a handshake fallback — a plain-TCP connection has no
  // second subflow to fail over to.
  if (is_client_ && spec_.mode == MpMode::kSinglePath && id == 0 &&
      negotiation_ != MpNegotiation::kFallbackTcp) {
    Subflow& backup = subflows_[1];
    if (!backup.connected_started && !backup.dead) attempt_join();
  }
  pump_all();
  maybe_fire_closed();
}

void MptcpAgent::maybe_close_subflows() {
  if (!close_requested_ || subflow_close_issued_) return;
  if (!exhausted()) return;
  if (data_end_ > 0 && acked_.total() < data_end_) return;
  // All data acked: a join still in flight must not block the close
  // (close_when_done on a kSynSent endpoint would never reach kDone).
  if (join_in_progress()) abandon_join();
  subflow_close_issued_ = true;
  for (auto& sf : subflows_) {
    if (sf.dead) continue;
    if (!sf.connected_started && !sf.ep->established() &&
        sf.ep->state() == TcpState::kClosed) {
      // Never started (Single-Path backup): nothing to close.
      sf.dead = true;
      continue;
    }
    sf.ep->close_when_done();
  }
  maybe_fire_closed();
}

bool MptcpAgent::finished() const {
  bool any_done = false;
  for (const auto& sf : subflows_) {
    if (sf.dead) continue;
    if (sf.ep->state() == TcpState::kListen && !is_client_) continue;  // unused accept slot
    if (!sf.connected_started && sf.ep->state() == TcpState::kClosed) {
      continue;  // never opened (Single-Path backup)
    }
    if (sf.ep->state() != TcpState::kDone) return false;
    any_done = true;
  }
  // A connection whose every subflow died (RST, both paths down) never
  // finished — it failed.  Without this, killing both paths mid-transfer
  // would read as a clean close with data still undelivered.
  return any_done;
}

void MptcpAgent::maybe_fire_closed() {
  if (closed_fired_ || !finished()) return;
  closed_fired_ = true;
  if (on_closed) on_closed();
}

}  // namespace mn
