// Network-selection policies and oracle schemes.
//
// The paper closes by asking how a device should choose between WiFi,
// LTE, and MPTCP.  This header provides:
//   - static policies (Android's always-WiFi default, best-measured),
//   - the adaptive per-flow-size policy the paper's findings motivate
//     (short flow -> best single path; long flow -> MPTCP with the best
//     primary and coupled congestion control),
//   - the five Figure-19/21 oracle schemes, evaluated over measured
//     response times.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/config.hpp"

namespace mn {

/// What a policy knows when choosing (recent app-level measurements).
struct LinkEstimate {
  double wifi_down_mbps = 0.0;
  double lte_down_mbps = 0.0;
  Duration wifi_rtt{0};
  Duration lte_rtt{0};
};

/// Android default circa the paper: WiFi whenever associated.
[[nodiscard]] TransportConfig always_wifi_policy();

/// Pick the single path with the higher measured throughput.
[[nodiscard]] TransportConfig best_single_path_policy(const LinkEstimate& est);

/// The paper-derived adaptive answer to "WiFi, LTE, or Both?":
///   - flows below `short_flow_threshold` use the best single path
///     (MPTCP cannot amortize its join for short flows — Section 3.3);
///   - longer flows use Full-MPTCP with the faster network as primary
///     and coupled congestion control (Sections 3.4-3.5) — provided the
///     two links are roughly comparable; with a large disparity, MPTCP
///     underperforms the best single path (Figure 7a), so stay single.
[[nodiscard]] TransportConfig adaptive_policy(const LinkEstimate& est,
                                              std::int64_t flow_bytes,
                                              std::int64_t short_flow_threshold = 100'000,
                                              double comparable_ratio = 4.0);

/// Measured outcome of one configuration at one network condition.
using ConfigTimes = std::map<std::string, double>;  // config name -> seconds

/// The Figure-19/21 oracle schemes over a set of measured times.  Every
/// value is the response time the oracle achieves.
struct OracleReport {
  double wifi_tcp = 0.0;                // baseline (Android default)
  double single_path_oracle = 0.0;      // min(WiFi-TCP, LTE-TCP)
  double decoupled_mptcp_oracle = 0.0;  // min over decoupled primaries
  double coupled_mptcp_oracle = 0.0;    // min over coupled primaries
  double wifi_primary_oracle = 0.0;     // min over CC, WiFi primary
  double lte_primary_oracle = 0.0;      // min over CC, LTE primary
};

/// Build the report from measured times for the six replay_configs().
/// Throws std::out_of_range if a config name is missing.
[[nodiscard]] OracleReport make_oracle_report(const ConfigTimes& times);

/// Average multiple reports (per network condition) and normalize by the
/// WiFi-TCP baseline, producing the Figure-19/21 bars.
struct NormalizedOracles {
  double wifi_tcp = 1.0;
  double single_path_oracle = 1.0;
  double decoupled_mptcp_oracle = 1.0;
  double coupled_mptcp_oracle = 1.0;
  double wifi_primary_oracle = 1.0;
  double lte_primary_oracle = 1.0;
};

[[nodiscard]] NormalizedOracles normalize_oracles(const std::vector<OracleReport>& reports);

}  // namespace mn
