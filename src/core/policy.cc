#include "core/policy.hpp"

#include <algorithm>
#include <stdexcept>

namespace mn {
namespace {

double at(const ConfigTimes& times, const std::string& key) {
  const auto it = times.find(key);
  if (it == times.end()) throw std::out_of_range("missing config time: " + key);
  return it->second;
}

}  // namespace

TransportConfig always_wifi_policy() {
  return TransportConfig::single_path(PathId::kWifi);
}

TransportConfig best_single_path_policy(const LinkEstimate& est) {
  return TransportConfig::single_path(
      est.wifi_down_mbps >= est.lte_down_mbps ? PathId::kWifi : PathId::kLte);
}

TransportConfig adaptive_policy(const LinkEstimate& est, std::int64_t flow_bytes,
                                std::int64_t short_flow_threshold,
                                double comparable_ratio) {
  const PathId best = est.wifi_down_mbps >= est.lte_down_mbps ? PathId::kWifi
                                                              : PathId::kLte;
  if (flow_bytes < short_flow_threshold) {
    return TransportConfig::single_path(best);
  }
  const double hi = std::max(est.wifi_down_mbps, est.lte_down_mbps);
  const double lo = std::min(est.wifi_down_mbps, est.lte_down_mbps);
  if (lo <= 0.0 || hi / lo > comparable_ratio) {
    // Figure 7a regime: a large disparity makes MPTCP a loser at any
    // size; the slow link's subflow drags data-level delivery.
    return TransportConfig::single_path(best);
  }
  return TransportConfig::mptcp(best, CcAlgo::kCoupled);
}

OracleReport make_oracle_report(const ConfigTimes& times) {
  OracleReport r;
  const double wifi_tcp = at(times, "WiFi-TCP");
  const double lte_tcp = at(times, "LTE-TCP");
  const double cw = at(times, "MPTCP-Coupled-WiFi");
  const double cl = at(times, "MPTCP-Coupled-LTE");
  const double dw = at(times, "MPTCP-Decoupled-WiFi");
  const double dl = at(times, "MPTCP-Decoupled-LTE");
  r.wifi_tcp = wifi_tcp;
  r.single_path_oracle = std::min(wifi_tcp, lte_tcp);
  r.decoupled_mptcp_oracle = std::min(dw, dl);
  r.coupled_mptcp_oracle = std::min(cw, cl);
  r.wifi_primary_oracle = std::min(cw, dw);
  r.lte_primary_oracle = std::min(cl, dl);
  return r;
}

NormalizedOracles normalize_oracles(const std::vector<OracleReport>& reports) {
  NormalizedOracles n;
  if (reports.empty()) return n;
  double base = 0.0;
  double sp = 0.0;
  double dec = 0.0;
  double cpl = 0.0;
  double wp = 0.0;
  double lp = 0.0;
  for (const auto& r : reports) {
    base += r.wifi_tcp;
    sp += r.single_path_oracle;
    dec += r.decoupled_mptcp_oracle;
    cpl += r.coupled_mptcp_oracle;
    wp += r.wifi_primary_oracle;
    lp += r.lte_primary_oracle;
  }
  if (base <= 0.0) return n;
  n.wifi_tcp = 1.0;
  n.single_path_oracle = sp / base;
  n.decoupled_mptcp_oracle = dec / base;
  n.coupled_mptcp_oracle = cpl / base;
  n.wifi_primary_oracle = wp / base;
  n.lte_primary_oracle = lp / base;
  return n;
}

}  // namespace mn
