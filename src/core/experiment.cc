#include "core/experiment.hpp"

#include <stdexcept>

#include "faults/fault_injector.hpp"
#include "store/codec.hpp"
#include "util/parallel.hpp"

namespace mn {
namespace {

/// Absorb one link direction into a scenario key: every field of the
/// spec, including the full-precision trace contents when trace-driven.
void key_link(store::KeyBuilder& key, const LinkSpec& spec) {
  key.boolean(spec.rate_mbps.has_value());
  if (spec.rate_mbps) key.f64(*spec.rate_mbps);
  key.boolean(spec.trace != nullptr);
  if (spec.trace) {
    key.i64(spec.trace->period().usec());
    key.u64(spec.trace->opportunities_per_period());
    for (const Duration d : spec.trace->opportunities()) key.i64(d.usec());
  }
  key.i64(spec.one_way_delay.usec())
      .f64(spec.loss_rate)
      .u32(static_cast<std::uint32_t>(spec.queue_packets))
      .u64(spec.loss_seed)
      .boolean(spec.burst_loss.has_value());
  if (spec.burst_loss) {
    key.f64(spec.burst_loss->loss_good)
        .f64(spec.burst_loss->loss_bad)
        .f64(spec.burst_loss->p_good_to_bad)
        .f64(spec.burst_loss->p_bad_to_good)
        .u64(spec.burst_loss->seed);
  }
}

void key_transport(store::KeyBuilder& key, const TransportConfig& config) {
  key.u8(static_cast<std::uint8_t>(config.kind)).u8(static_cast<std::uint8_t>(config.path));
  const MptcpSpec& mp = config.mp;
  key.u8(static_cast<std::uint8_t>(mp.primary))
      .u8(static_cast<std::uint8_t>(mp.cc))
      .u8(static_cast<std::uint8_t>(mp.mode))
      .i64(mp.join_delay.usec())
      .i64(mp.receive_window_bytes)
      .u8(static_cast<std::uint8_t>(mp.scheduler))
      .boolean(mp.opportunistic_reinjection)
      .boolean(mp.penalization)
      .i64(mp.subflow_min_rto.usec())
      .i64(mp.subflow_initial_rto.usec())
      .i64(mp.subflow_max_rto.usec());
}

constexpr std::uint8_t kSweepPointBlobVersion = 1;

}  // namespace

TransportFlowResult run_transport_flow(Simulator& sim, const MpNetworkSetup& net,
                                       const TransportConfig& config, std::int64_t bytes,
                                       Direction dir, const TransportRunOptions& options) {
  TransportFlowResult out;
  if (config.kind == TransportKind::kSinglePath) {
    const bool wifi = config.path == PathId::kWifi;
    DuplexPath path{sim, wifi ? net.wifi_up : net.lte_up,
                    wifi ? net.wifi_down : net.lte_down};
    FaultInjector injector{sim};
    if (options.faults) {
      // Plan events addressed to the other network are skipped by the
      // injector (a single-path flow has only one target).
      injector.set_target(config.path, &path);
      injector.arm(*options.faults);
    }
    BulkFlowOptions flow_options;
    flow_options.timeout = options.timeout;
    flow_options.stall_limit = options.stall_limit;
    const FlowResult r = run_bulk_flow(sim, path, bytes, dir, reno_factory(), flow_options);
    out.completed = r.completed;
    out.completion_time = r.completion_time;
    out.throughput_mbps = r.throughput_mbps;
    out.timeline = r.timeline;
    out.stall_time = r.max_stall;
    out.failure_reason = r.failure_reason;
    return out;
  }
  FaultInjector injector{sim};
  FlowRunOptions flow_options;
  flow_options.timeout = options.timeout;
  flow_options.stall_limit = options.stall_limit;
  if (options.faults) {
    flow_options.on_testbed = [&injector, &options](MptcpTestbed& bed) {
      injector.set_target(PathId::kWifi, &bed.path(PathId::kWifi),
                          &bed.iface(PathId::kWifi));
      injector.set_target(PathId::kLte, &bed.path(PathId::kLte), &bed.iface(PathId::kLte));
      injector.arm(*options.faults);
    };
  }
  const MptcpFlowResult r = run_mptcp_flow(sim, net, config.mp, bytes, dir, flow_options);
  // The testbed is gone once run_mptcp_flow returns; drop any event still
  // scheduled against it before this scope's own teardown.
  injector.disarm();
  out.completed = r.completed;
  out.completion_time = r.completion_time;
  out.throughput_mbps = r.throughput_mbps;
  out.timeline = r.timeline;
  out.subflow_timelines = r.subflow_timelines;
  out.subflow_paths = r.subflow_paths;
  out.stall_time = r.max_stall;
  out.failure_reason = r.failure_reason;
  return out;
}

TransportFlowResult run_transport_flow(Simulator& sim, const MpNetworkSetup& net,
                                       const TransportConfig& config, std::int64_t bytes,
                                       Direction dir, Duration timeout) {
  TransportRunOptions options;
  options.timeout = timeout;
  // Legacy contract: wall-clock cap only (scripted failure experiments
  // hold flows stalled for tens of seconds on purpose).
  options.stall_limit = timeout;
  return run_transport_flow(sim, net, config, bytes, dir, options);
}

store::ScenarioKey sweep_scenario_key(const MpNetworkSetup& net,
                                      const TransportConfig& config, std::int64_t bytes,
                                      Direction dir) {
  store::KeyBuilder key{"sweep-point"};
  key_link(key, net.wifi_up);
  key_link(key, net.wifi_down);
  key_link(key, net.lte_up);
  key_link(key, net.lte_down);
  key.boolean(net.wifi_reports_carrier_loss).boolean(net.lte_reports_carrier_loss);
  key_transport(key, config);
  key.i64(bytes).u8(static_cast<std::uint8_t>(dir));
  return key.finish();
}

std::string serialize_sweep_point(const SweepPoint& point) {
  store::BinWriter w;
  w.put_u8(kSweepPointBlobVersion);
  w.put_i64(point.flow_bytes);
  w.put_f64(point.throughput_mbps);
  w.put_i64(point.completion_time.usec());
  return w.take();
}

SweepPoint parse_sweep_point(std::string_view blob) {
  store::BinReader r{blob};
  if (r.get_u8() != kSweepPointBlobVersion) {
    throw std::runtime_error("sweep point blob: unknown layout version");
  }
  SweepPoint point;
  point.flow_bytes = r.get_i64();
  point.throughput_mbps = r.get_f64();
  point.completion_time = Duration{r.get_i64()};
  r.expect_done();
  return point;
}

std::vector<SweepPoint> sweep_flow_sizes(const MpNetworkSetup& net,
                                         const TransportConfig& config,
                                         const std::vector<std::int64_t>& sizes,
                                         const SweepOptions& options) {
  // Each point is a pure function of (net, config, bytes, dir): a fresh
  // private Simulator per point, the shared setup read-only.
  auto simulate = [&](std::int64_t bytes) {
    Simulator sim;  // fresh world per point: identical starting conditions
    const auto r = run_transport_flow(sim, net, config, bytes, options.dir);
    return SweepPoint{bytes, r.throughput_mbps, r.completion_time};
  };
  if (options.store == nullptr) {
    return parallel_map(sizes.size(), options.parallelism,
                        [&](std::size_t i) { return simulate(sizes[i]); });
  }
  // Cache-aware sweep, same shape as run_campaign: hits resolved up
  // front, only the misses simulated, results reassembled in size order.
  std::vector<store::ScenarioKey> keys(sizes.size());
  std::vector<SweepPoint> points(sizes.size());
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    keys[i] = sweep_scenario_key(net, config, sizes[i], options.dir);
  }
  const auto blobs = options.store->lookup_many(keys);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (blobs[i]) {
      try {
        points[i] = parse_sweep_point(*blobs[i]);
        continue;
      } catch (const std::exception&) {
        // Undecodable blob = miss; superseded by the fresh result below.
      }
    }
    missing.push_back(i);
  }
  const std::vector<SweepPoint> fresh =
      parallel_map(missing.size(), options.parallelism,
                   [&](std::size_t j) { return simulate(sizes[missing[j]]); });
  for (std::size_t j = 0; j < missing.size(); ++j) {
    options.store->put(keys[missing[j]], serialize_sweep_point(fresh[j]));
    points[missing[j]] = fresh[j];
  }
  return points;
}

std::vector<SweepPoint> sweep_flow_sizes(const MpNetworkSetup& net,
                                         const TransportConfig& config,
                                         const std::vector<std::int64_t>& sizes,
                                         Direction dir) {
  SweepOptions options;
  options.dir = dir;
  return sweep_flow_sizes(net, config, sizes, options);
}

}  // namespace mn
