#include "core/experiment.hpp"

namespace mn {

TransportFlowResult run_transport_flow(Simulator& sim, const MpNetworkSetup& net,
                                       const TransportConfig& config, std::int64_t bytes,
                                       Direction dir, Duration timeout) {
  TransportFlowResult out;
  if (config.kind == TransportKind::kSinglePath) {
    const bool wifi = config.path == PathId::kWifi;
    DuplexPath path{sim, wifi ? net.wifi_up : net.lte_up,
                    wifi ? net.wifi_down : net.lte_down};
    const FlowResult r = run_bulk_flow(sim, path, bytes, dir, reno_factory(), timeout);
    out.completed = r.completed;
    out.completion_time = r.completion_time;
    out.throughput_mbps = r.throughput_mbps;
    out.timeline = r.timeline;
    return out;
  }
  const MptcpFlowResult r = run_mptcp_flow(sim, net, config.mp, bytes, dir, timeout);
  out.completed = r.completed;
  out.completion_time = r.completion_time;
  out.throughput_mbps = r.throughput_mbps;
  out.timeline = r.timeline;
  out.subflow_timelines = r.subflow_timelines;
  out.subflow_paths = r.subflow_paths;
  return out;
}

std::vector<SweepPoint> sweep_flow_sizes(const MpNetworkSetup& net,
                                         const TransportConfig& config,
                                         const std::vector<std::int64_t>& sizes,
                                         Direction dir) {
  std::vector<SweepPoint> points;
  points.reserve(sizes.size());
  for (const std::int64_t bytes : sizes) {
    Simulator sim;  // fresh world per point: identical starting conditions
    const auto r = run_transport_flow(sim, net, config, bytes, dir);
    points.push_back({bytes, r.throughput_mbps, r.completion_time});
  }
  return points;
}

}  // namespace mn
