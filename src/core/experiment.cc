#include "core/experiment.hpp"

#include "faults/fault_injector.hpp"
#include "util/parallel.hpp"

namespace mn {

TransportFlowResult run_transport_flow(Simulator& sim, const MpNetworkSetup& net,
                                       const TransportConfig& config, std::int64_t bytes,
                                       Direction dir, const TransportRunOptions& options) {
  TransportFlowResult out;
  if (config.kind == TransportKind::kSinglePath) {
    const bool wifi = config.path == PathId::kWifi;
    DuplexPath path{sim, wifi ? net.wifi_up : net.lte_up,
                    wifi ? net.wifi_down : net.lte_down};
    FaultInjector injector{sim};
    if (options.faults) {
      // Plan events addressed to the other network are skipped by the
      // injector (a single-path flow has only one target).
      injector.set_target(config.path, &path);
      injector.arm(*options.faults);
    }
    BulkFlowOptions flow_options;
    flow_options.timeout = options.timeout;
    flow_options.stall_limit = options.stall_limit;
    const FlowResult r = run_bulk_flow(sim, path, bytes, dir, reno_factory(), flow_options);
    out.completed = r.completed;
    out.completion_time = r.completion_time;
    out.throughput_mbps = r.throughput_mbps;
    out.timeline = r.timeline;
    out.stall_time = r.max_stall;
    out.failure_reason = r.failure_reason;
    return out;
  }
  FaultInjector injector{sim};
  FlowRunOptions flow_options;
  flow_options.timeout = options.timeout;
  flow_options.stall_limit = options.stall_limit;
  if (options.faults) {
    flow_options.on_testbed = [&injector, &options](MptcpTestbed& bed) {
      injector.set_target(PathId::kWifi, &bed.path(PathId::kWifi),
                          &bed.iface(PathId::kWifi));
      injector.set_target(PathId::kLte, &bed.path(PathId::kLte), &bed.iface(PathId::kLte));
      injector.arm(*options.faults);
    };
  }
  const MptcpFlowResult r = run_mptcp_flow(sim, net, config.mp, bytes, dir, flow_options);
  // The testbed is gone once run_mptcp_flow returns; drop any event still
  // scheduled against it before this scope's own teardown.
  injector.disarm();
  out.completed = r.completed;
  out.completion_time = r.completion_time;
  out.throughput_mbps = r.throughput_mbps;
  out.timeline = r.timeline;
  out.subflow_timelines = r.subflow_timelines;
  out.subflow_paths = r.subflow_paths;
  out.stall_time = r.max_stall;
  out.failure_reason = r.failure_reason;
  return out;
}

TransportFlowResult run_transport_flow(Simulator& sim, const MpNetworkSetup& net,
                                       const TransportConfig& config, std::int64_t bytes,
                                       Direction dir, Duration timeout) {
  TransportRunOptions options;
  options.timeout = timeout;
  // Legacy contract: wall-clock cap only (scripted failure experiments
  // hold flows stalled for tens of seconds on purpose).
  options.stall_limit = timeout;
  return run_transport_flow(sim, net, config, bytes, dir, options);
}

std::vector<SweepPoint> sweep_flow_sizes(const MpNetworkSetup& net,
                                         const TransportConfig& config,
                                         const std::vector<std::int64_t>& sizes,
                                         const SweepOptions& options) {
  // Each point is a pure function of (net, config, bytes, dir): a fresh
  // private Simulator per point, the shared setup read-only.
  return parallel_map(sizes.size(), options.parallelism, [&](std::size_t i) {
    Simulator sim;  // fresh world per point: identical starting conditions
    const auto r = run_transport_flow(sim, net, config, sizes[i], options.dir);
    return SweepPoint{sizes[i], r.throughput_mbps, r.completion_time};
  });
}

std::vector<SweepPoint> sweep_flow_sizes(const MpNetworkSetup& net,
                                         const TransportConfig& config,
                                         const std::vector<std::int64_t>& sizes,
                                         Direction dir) {
  SweepOptions options;
  options.dir = dir;
  return sweep_flow_sizes(net, config, sizes, options);
}

}  // namespace mn
