// Flow-level experiment drivers shared by tests and benches: run one
// transfer under any TransportConfig over an MpNetworkSetup, and sweep
// flow sizes (the x-axis of Figures 7, 8, 11-14).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "faults/fault_plan.hpp"
#include "mptcp/testbed.hpp"
#include "store/key.hpp"
#include "store/store.hpp"
#include "tcp/flow.hpp"

namespace mn {

/// Uniform result for single-path and MPTCP flows.
struct TransportFlowResult {
  bool completed = false;
  Duration completion_time{0};
  double throughput_mbps = 0.0;
  /// Client-observed cumulative-bytes timeline (relative to first SYN).
  std::vector<TimelinePoint> timeline;
  /// MPTCP only: per-subflow client timelines (empty for single path).
  std::array<std::vector<TimelinePoint>, 2> subflow_timelines;
  std::array<PathId, 2> subflow_paths{PathId::kWifi, PathId::kLte};
  /// Longest gap between progress events seen by the watchdog.
  Duration stall_time{0};
  /// Why the flow did not complete ("" when it did): "stall: ...",
  /// "timeout", or "idle: ...".
  std::string failure_reason;
};

/// Knobs for run_transport_flow beyond the flow itself.
struct TransportRunOptions {
  Duration timeout = sec(120);
  /// Watchdog bound: abort once no progress is made for this long.
  Duration stall_limit = sec(30);
  /// Optional fault schedule, armed against the flow's path(s) at start
  /// (not owned; must outlive the call).
  const FaultPlan* faults = nullptr;
};

/// Run `bytes` under `config` over `net`.  A fresh Simulator should be
/// used per call for reproducibility (pass one in; it is advanced).
[[nodiscard]] TransportFlowResult run_transport_flow(Simulator& sim,
                                                     const MpNetworkSetup& net,
                                                     const TransportConfig& config,
                                                     std::int64_t bytes, Direction dir,
                                                     const TransportRunOptions& options);

[[nodiscard]] TransportFlowResult run_transport_flow(Simulator& sim,
                                                     const MpNetworkSetup& net,
                                                     const TransportConfig& config,
                                                     std::int64_t bytes, Direction dir,
                                                     Duration timeout = sec(120));

/// One point of a flow-size sweep.
struct SweepPoint {
  std::int64_t flow_bytes = 0;
  double throughput_mbps = 0.0;
  Duration completion_time{0};
};

/// Knobs for sweep_flow_sizes.
struct SweepOptions {
  Direction dir = Direction::kDownload;
  /// Worker threads for the per-size runs: 0/1 = serial, negative =
  /// follow MN_THREADS.  Each point builds a private Simulator from the
  /// shared-immutable setup, so results are bit-identical at any value.
  int parallelism = -1;
  /// Optional result store: each point is looked up before simulating
  /// and appended on miss.  Figure benches sharing one store then pay
  /// for each (net, config, size, dir) point once across the suite.
  /// Not owned.
  store::Store* store = nullptr;
};

/// Content key of one sweep point: a canonical hash of the full network
/// setup (including trace contents), the transport configuration, the
/// flow size, and the direction.
[[nodiscard]] store::ScenarioKey sweep_scenario_key(const MpNetworkSetup& net,
                                                    const TransportConfig& config,
                                                    std::int64_t bytes, Direction dir);

/// Store blob codec for SweepPoint; parse throws std::runtime_error on
/// corruption (treated upstream as a cache miss).
[[nodiscard]] std::string serialize_sweep_point(const SweepPoint& point);
[[nodiscard]] SweepPoint parse_sweep_point(std::string_view blob);

/// Throughput as a function of flow size for one config (Figure 7 axes).
[[nodiscard]] std::vector<SweepPoint> sweep_flow_sizes(const MpNetworkSetup& net,
                                                       const TransportConfig& config,
                                                       const std::vector<std::int64_t>& sizes,
                                                       const SweepOptions& options);

[[nodiscard]] std::vector<SweepPoint> sweep_flow_sizes(
    const MpNetworkSetup& net, const TransportConfig& config,
    const std::vector<std::int64_t>& sizes, Direction dir = Direction::kDownload);

}  // namespace mn
