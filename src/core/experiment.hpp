// Flow-level experiment drivers shared by tests and benches: run one
// transfer under any TransportConfig over an MpNetworkSetup, and sweep
// flow sizes (the x-axis of Figures 7, 8, 11-14).
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "mptcp/testbed.hpp"
#include "tcp/flow.hpp"

namespace mn {

/// Uniform result for single-path and MPTCP flows.
struct TransportFlowResult {
  bool completed = false;
  Duration completion_time{0};
  double throughput_mbps = 0.0;
  /// Client-observed cumulative-bytes timeline (relative to first SYN).
  std::vector<TimelinePoint> timeline;
  /// MPTCP only: per-subflow client timelines (empty for single path).
  std::array<std::vector<TimelinePoint>, 2> subflow_timelines;
  std::array<PathId, 2> subflow_paths{PathId::kWifi, PathId::kLte};
};

/// Run `bytes` under `config` over `net`.  A fresh Simulator should be
/// used per call for reproducibility (pass one in; it is advanced).
[[nodiscard]] TransportFlowResult run_transport_flow(Simulator& sim,
                                                     const MpNetworkSetup& net,
                                                     const TransportConfig& config,
                                                     std::int64_t bytes, Direction dir,
                                                     Duration timeout = sec(120));

/// One point of a flow-size sweep.
struct SweepPoint {
  std::int64_t flow_bytes = 0;
  double throughput_mbps = 0.0;
  Duration completion_time{0};
};

/// Throughput as a function of flow size for one config (Figure 7 axes).
[[nodiscard]] std::vector<SweepPoint> sweep_flow_sizes(
    const MpNetworkSetup& net, const TransportConfig& config,
    const std::vector<std::int64_t>& sizes, Direction dir = Direction::kDownload);

}  // namespace mn
