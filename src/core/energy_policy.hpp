// Energy-aware network selection — the paper's closing future-work
// question: "with energy consumption being a major concern for mobile
// devices, how can we make the decisions when trying to minimize energy
// consumption?"
//
// The model combines the Figure-16 radio parameters with the flow-level
// performance estimates: a configuration's cost is a weighted sum of
// predicted completion time and predicted radio energy, where the energy
// prediction includes the tail cost of *touching* a radio at all (the
// Section-3.6.2 insight that even SYN/FIN-only use of LTE costs ~15 J).
#pragma once

#include <string>

#include "core/config.hpp"
#include "core/policy.hpp"
#include "energy/power_model.hpp"

namespace mn {

struct EnergyPolicyConfig {
  /// Joules the user will pay per saved second of transfer time.
  /// 0 = energy only; large = time only (degenerates to adaptive_policy).
  double joules_per_second = 2.0;
  /// Flow-size boundary below which MPTCP is never worth the second
  /// radio's tail energy.
  std::int64_t short_flow_threshold = 100'000;
};

/// Predicted cost of running `flow_bytes` under `config` given measured
/// link estimates.  Exposed for tests and the ablation bench.
struct EnergyCostEstimate {
  double completion_s = 0.0;
  double radio_joules = 0.0;
  double total_cost = 0.0;  // radio_joules + joules_per_second * completion_s
};

[[nodiscard]] EnergyCostEstimate estimate_energy_cost(const LinkEstimate& est,
                                                      const TransportConfig& config,
                                                      std::int64_t flow_bytes,
                                                      const EnergyPolicyConfig& policy = {});

/// Choose the configuration minimizing the combined time+energy cost
/// over the six standard configurations (plus single-radio preference on
/// ties).  This is the energy-aware counterpart of adaptive_policy().
[[nodiscard]] TransportConfig energy_aware_policy(const LinkEstimate& est,
                                                  std::int64_t flow_bytes,
                                                  const EnergyPolicyConfig& policy = {});

}  // namespace mn
