// Transport configurations — the answer space of "WiFi, LTE, or Both?".
//
// The paper evaluates six configurations per network condition
// (Section 5): single-path TCP on WiFi or LTE, and MPTCP with
// {coupled, decoupled} x {WiFi-primary, LTE-primary}.  TransportConfig
// names one of them; all experiment drivers and the replay engine take
// one.
#pragma once

#include <string>
#include <vector>

#include "mptcp/mptcp.hpp"

namespace mn {

enum class TransportKind {
  kSinglePath,
  kMptcp,
};

struct TransportConfig {
  TransportKind kind = TransportKind::kSinglePath;
  /// Single-path: which network.  MPTCP: ignored (see mp.primary).
  PathId path = PathId::kWifi;
  MptcpSpec mp;

  [[nodiscard]] static TransportConfig single_path(PathId p) {
    TransportConfig c;
    c.kind = TransportKind::kSinglePath;
    c.path = p;
    return c;
  }
  [[nodiscard]] static TransportConfig mptcp(PathId primary, CcAlgo cc,
                                             MpMode mode = MpMode::kFull) {
    TransportConfig c;
    c.kind = TransportKind::kMptcp;
    c.mp.primary = primary;
    c.mp.cc = cc;
    c.mp.mode = mode;
    return c;
  }

  [[nodiscard]] std::string name() const {
    if (kind == TransportKind::kSinglePath) {
      return to_string(path) + "-TCP";
    }
    return "MPTCP-" + to_string(mp.cc) + "-" + to_string(mp.primary);
  }
};

/// The paper's six Section-5 configurations, in Figure-18/20 order.
[[nodiscard]] inline std::vector<TransportConfig> replay_configs() {
  return {
      TransportConfig::single_path(PathId::kWifi),
      TransportConfig::single_path(PathId::kLte),
      TransportConfig::mptcp(PathId::kWifi, CcAlgo::kCoupled),
      TransportConfig::mptcp(PathId::kLte, CcAlgo::kCoupled),
      TransportConfig::mptcp(PathId::kWifi, CcAlgo::kDecoupled),
      TransportConfig::mptcp(PathId::kLte, CcAlgo::kDecoupled),
  };
}

}  // namespace mn
