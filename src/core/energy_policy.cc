#include "core/energy_policy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mn {
namespace {

/// Predicted completion seconds for one config (first-order model: the
/// handshake plus size over effective rate; MPTCP's second path joins
/// late and both paths contribute afterwards).
double predict_completion_s(const LinkEstimate& est, const TransportConfig& config,
                            std::int64_t flow_bytes) {
  const double wifi = std::max(est.wifi_down_mbps, 0.05);
  const double lte = std::max(est.lte_down_mbps, 0.05);
  const double wifi_rtt = std::max(est.wifi_rtt.seconds(), 0.005);
  const double lte_rtt = std::max(est.lte_rtt.seconds(), 0.005);
  const double bits = static_cast<double>(flow_bytes) * 8.0;

  auto single = [bits](double mbps, double rtt) {
    // Handshake + slow-start penalty (~2 RTT equivalent) + serialization.
    return 3.0 * rtt + bits / (mbps * 1e6);
  };
  if (config.kind == TransportKind::kSinglePath) {
    return config.path == PathId::kWifi ? single(wifi, wifi_rtt) : single(lte, lte_rtt);
  }
  const bool wifi_primary = config.mp.primary == PathId::kWifi;
  const double primary_rate = wifi_primary ? wifi : lte;
  const double primary_rtt = wifi_primary ? wifi_rtt : lte_rtt;
  const double join_s = config.mp.join_delay.seconds() + 2.0 * primary_rtt;
  // Bytes moved before the join on the primary alone:
  const double pre_join_bits = std::min(bits, primary_rate * 1e6 * join_s);
  const double rest = bits - pre_join_bits;
  // Coupled CC is a bit less aggressive in aggregate (RFC 6356 fairness).
  const double agg = (wifi + lte) * (config.mp.cc == CcAlgo::kCoupled ? 0.85 : 0.95);
  return 3.0 * primary_rtt + join_s + rest / (agg * 1e6);
}

/// Radio joules for a transfer of `seconds` on one radio, Figure-16
/// parameters: active power for the duration plus one tail.
double radio_joules(const RadioPowerParams& p, double active_seconds) {
  if (active_seconds <= 0.0) return 0.0;
  return p.active_watts * active_seconds + p.tail_watts * p.tail_duration.seconds();
}

}  // namespace

EnergyCostEstimate estimate_energy_cost(const LinkEstimate& est,
                                        const TransportConfig& config,
                                        std::int64_t flow_bytes,
                                        const EnergyPolicyConfig& policy) {
  EnergyCostEstimate out;
  out.completion_s = predict_completion_s(est, config, flow_bytes);
  const auto lte = lte_power_params();
  const auto wifi = wifi_power_params();
  if (config.kind == TransportKind::kSinglePath) {
    out.radio_joules = config.path == PathId::kWifi
                           ? radio_joules(wifi, out.completion_s)
                           : radio_joules(lte, out.completion_s);
  } else {
    // MPTCP keeps both radios active for the transfer; both pay tails.
    out.radio_joules =
        radio_joules(wifi, out.completion_s) + radio_joules(lte, out.completion_s);
  }
  out.total_cost = out.radio_joules + policy.joules_per_second * out.completion_s;
  return out;
}

TransportConfig energy_aware_policy(const LinkEstimate& est, std::int64_t flow_bytes,
                                    const EnergyPolicyConfig& policy) {
  TransportConfig best = always_wifi_policy();
  double best_cost = std::numeric_limits<double>::infinity();
  for (const TransportConfig& config : replay_configs()) {
    if (config.kind == TransportKind::kMptcp &&
        flow_bytes < policy.short_flow_threshold) {
      continue;  // Section 3.3: MPTCP cannot pay for itself on short flows
    }
    const auto cost = estimate_energy_cost(est, config, flow_bytes, policy);
    if (cost.total_cost < best_cost) {
      best_cost = cost.total_cost;
      best = config;
    }
  }
  return best;
}

}  // namespace mn
