// MpShell — the paper's multi-link Mahimahi extension (Section 4.1):
// a network container that gives a simulated mobile client two access
// networks (WiFi + LTE) to a single-homed server, shared by any number
// of concurrent connections (each app flow is one connection).
//
// Also defines the Transport abstraction (single-path TCP or MPTCP,
// chosen per connection by TransportConfig) and HttpConnectionSim, the
// client-server HTTP state machine used by app replay.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "emu/http.hpp"
#include "mptcp/mptcp_agent.hpp"
#include "mptcp/testbed.hpp"
#include "tcp/mux.hpp"

namespace mn {

class MpShell {
 public:
  MpShell(Simulator& sim, const MpNetworkSetup& setup);
  MpShell(const MpShell&) = delete;
  MpShell& operator=(const MpShell&) = delete;
  ~MpShell();

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] NetworkInterface& iface(PathId path) {
    return *ifaces_[static_cast<std::size_t>(path)];
  }
  [[nodiscard]] PacketMux& client_mux() { return client_mux_; }
  [[nodiscard]] PacketMux& server_mux() { return server_mux_; }
  void server_send(PathId path, Packet p);

 private:
  Simulator& sim_;
  std::unique_ptr<DuplexPath> wifi_path_;
  std::unique_ptr<DuplexPath> lte_path_;
  std::array<std::unique_ptr<NetworkInterface>, 2> ifaces_;
  PacketMux client_mux_;
  PacketMux server_mux_;
};

/// One side of a logical connection; created in pairs by make_transport_pair.
class Transport {
 public:
  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;
  virtual ~Transport() = default;

  virtual void connect() = 0;  // client side
  virtual void listen() = 0;   // server side
  /// Enqueue application bytes toward the peer.
  virtual void send(std::int64_t bytes) = 0;
  virtual void close_when_done() = 0;
  [[nodiscard]] virtual bool finished() const = 0;

  std::function<void()> on_established;
  /// In-order bytes available to the application at this side.
  std::function<void(std::int64_t total)> on_delivered;
};

struct TransportPair {
  std::unique_ptr<Transport> client;
  std::unique_ptr<Transport> server;
};

/// Build a connected client/server transport pair over `shell` according
/// to `config`.  `connection_id` must be unique within the shell.
[[nodiscard]] TransportPair make_transport_pair(MpShell& shell,
                                                const TransportConfig& config,
                                                std::uint64_t connection_id);

/// One request/response on a connection.
struct HttpExchange {
  HttpRequest request;
  HttpResponse response;
  Duration server_think{0};  // server processing before the response
};

/// Convenience constructor for synthetic exchanges of given body sizes.
[[nodiscard]] HttpExchange synthetic_exchange(std::int64_t request_bytes,
                                              std::int64_t response_bytes,
                                              Duration server_think = Duration{0});

/// Drives a sequence of HTTP exchanges over one transport connection:
/// requests are issued sequentially; the server answers each complete
/// request after its think time.  Completion = last response fully
/// delivered at the client.
class HttpConnectionSim {
 public:
  HttpConnectionSim(MpShell& shell, const TransportConfig& config,
                    std::uint64_t connection_id, std::vector<HttpExchange> exchanges);

  /// Schedule the connection to open at absolute time `at`.
  void start(TimePoint at);

  std::function<void()> on_complete;

  [[nodiscard]] bool complete() const { return complete_; }
  [[nodiscard]] TimePoint started_at() const { return started_at_; }
  [[nodiscard]] TimePoint completed_at() const { return completed_at_; }

 private:
  void begin();
  void on_server_delivered(std::int64_t total);
  void on_client_delivered(std::int64_t total);

  MpShell& shell_;
  TransportPair pair_;
  std::vector<HttpExchange> exchanges_;
  std::vector<std::int64_t> request_thresholds_;   // cumulative request bytes
  std::vector<std::int64_t> response_thresholds_;  // cumulative response bytes
  std::size_t requests_sent_ = 0;
  std::size_t responses_sent_ = 0;
  std::size_t responses_done_ = 0;
  bool complete_ = false;
  TimePoint started_at_{};
  TimePoint completed_at_{};
};

}  // namespace mn
