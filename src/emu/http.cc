#include "emu/http.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace mn {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::int64_t headers_bytes(const std::vector<HttpHeader>& headers) {
  std::int64_t n = 0;
  for (const auto& h : headers) {
    n += static_cast<std::int64_t>(h.name.size() + h.value.size()) + 4;  // ": " + CRLF
  }
  return n + 2;  // final CRLF
}

}  // namespace

std::int64_t HttpRequest::wire_bytes() const {
  return static_cast<std::int64_t>(method.size() + uri.size()) + 12 +
         headers_bytes(headers) + body_bytes;
}

std::optional<std::string> HttpRequest::header(const std::string& name) const {
  const std::string want = lower(name);
  for (const auto& h : headers) {
    if (lower(h.name) == want) return h.value;
  }
  return std::nullopt;
}

std::int64_t HttpResponse::wire_bytes() const {
  return 17 /* status line */ + headers_bytes(headers) + body_bytes;
}

bool is_time_sensitive_header(const std::string& name) {
  static const std::array<const char*, 7> kIgnored = {
      "if-modified-since", "if-none-match", "if-unmodified-since",
      "date",              "cookie",        "authorization",
      "cache-control"};
  const std::string n = lower(name);
  return std::any_of(kIgnored.begin(), kIgnored.end(),
                     [&n](const char* s) { return n == s; });
}

}  // namespace mn
