// RecordShell / ReplayShell analog (paper Section 4.1, after Mahimahi).
//
// RecordStore holds request/response pairs captured by a recording run.
// Replay matches an incoming request against the store: the URI must
// match (falling back to the longest-common-prefix candidate, as
// Mahimahi does for changed query strings), and among URI matches the
// exchange with the most agreeing non-time-sensitive headers wins.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "emu/http.hpp"

namespace mn {

struct RecordedExchange {
  HttpRequest request;
  HttpResponse response;
};

class RecordStore {
 public:
  void add(RecordedExchange exchange) { exchanges_.push_back(std::move(exchange)); }

  [[nodiscard]] std::size_t size() const { return exchanges_.size(); }
  [[nodiscard]] const std::vector<RecordedExchange>& exchanges() const {
    return exchanges_;
  }

  /// ReplayShell matching.  Returns nullopt when nothing plausible is
  /// stored (no same-method exchange sharing any URI prefix).
  [[nodiscard]] std::optional<RecordedExchange> match(const HttpRequest& request) const;

  /// Text persistence (one recorded session per file).
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static RecordStore deserialize(const std::string& text);
  void save(const std::string& path) const;
  [[nodiscard]] static RecordStore load(const std::string& path);

 private:
  std::vector<RecordedExchange> exchanges_;
};

}  // namespace mn
