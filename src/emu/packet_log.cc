#include "emu/packet_log.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mn {

void PacketLog::record(const std::string& iface, TimePoint t, PacketDir dir,
                       const Packet& p) {
  PacketLogEntry e;
  e.t = t;
  e.iface = iface;
  e.dir = dir;
  e.subflow_id = p.subflow_id;
  e.flags = p.flags;
  e.seq = p.seq;
  e.ack = p.ack_seq;
  e.payload = p.payload;
  entries_.push_back(std::move(e));
  if (capacity_ != 0 && entries_.size() > capacity_) {
    entries_.pop_front();
    ++evicted_;
  }
}

void PacketLog::set_capacity(std::size_t max_entries) {
  capacity_ = max_entries;
  if (capacity_ == 0) return;
  while (entries_.size() > capacity_) {
    entries_.pop_front();
    ++evicted_;
  }
}

InterfaceTap PacketLog::tap_for(std::string iface) {
  return [this, iface = std::move(iface)](TimePoint t, PacketDir dir, const Packet& p) {
    record(iface, t, dir, p);
  };
}

std::vector<double> PacketLog::event_times(const std::string& iface) const {
  std::vector<double> out;
  for (const auto& e : entries_) {
    if (e.iface == iface) out.push_back(e.t.seconds());
  }
  return out;
}

std::int64_t PacketLog::bytes_received_by(const std::string& iface, TimePoint t) const {
  std::int64_t total = 0;
  for (const auto& e : entries_) {
    if (e.iface == iface && e.dir == PacketDir::kReceived && e.t <= t) {
      total += e.payload;
    }
  }
  return total;
}

std::string PacketLog::serialize() const {
  std::ostringstream os;
  for (const auto& e : entries_) {
    std::string flags;
    if (e.flags.syn) flags += "SYN,";
    if (e.flags.ack) flags += "ACK,";
    if (e.flags.fin) flags += "FIN,";
    if (e.flags.rst) flags += "RST,";
    if (flags.empty()) flags = "-";
    os << e.t.usec() << ' ' << e.iface << ' '
       << (e.dir == PacketDir::kSent ? 'S' : 'R') << " sf=" << e.subflow_id << ' '
       << flags << " seq=" << e.seq << " ack=" << e.ack << " len=" << e.payload << '\n';
  }
  return os.str();
}

PacketLog PacketLog::deserialize(const std::string& text) {
  PacketLog log;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    PacketLogEntry e;
    std::int64_t usecs = 0;
    char dir = 'S';
    std::string sf;
    std::string flags;
    std::string seq;
    std::string ack;
    std::string len;
    if (!(ls >> usecs >> e.iface >> dir >> sf >> flags >> seq >> ack >> len)) {
      throw std::runtime_error("PacketLog: bad line: " + line);
    }
    e.t = TimePoint{usecs};
    e.dir = dir == 'S' ? PacketDir::kSent : PacketDir::kReceived;
    auto num_after = [&line](const std::string& field, const char* prefix) {
      const auto pos = field.find(prefix);
      if (pos != 0) throw std::runtime_error("PacketLog: bad field in: " + line);
      return std::stoll(field.substr(std::strlen(prefix)));
    };
    e.subflow_id = static_cast<int>(num_after(sf, "sf="));
    e.flags.syn = flags.find("SYN") != std::string::npos;
    e.flags.ack = flags.find("ACK") != std::string::npos;
    e.flags.fin = flags.find("FIN") != std::string::npos;
    e.flags.rst = flags.find("RST") != std::string::npos;
    e.seq = num_after(seq, "seq=");
    e.ack = num_after(ack, "ack=");
    e.payload = num_after(len, "len=");
    log.entries_.push_back(std::move(e));
  }
  return log;
}

void PacketLog::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("PacketLog: cannot write " + path);
  out << serialize();
}

PacketLog PacketLog::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("PacketLog: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return deserialize(buf.str());
}

std::vector<obs::PcapPacket> PacketLog::to_pcap() const {
  std::vector<obs::PcapPacket> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    obs::PcapPacket p;
    p.t_usec = e.t.usec();
    p.outbound = e.dir == PacketDir::kSent;
    p.subflow = static_cast<std::uint16_t>(e.subflow_id);
    p.syn = e.flags.syn;
    p.ack = e.flags.ack;
    p.fin = e.flags.fin;
    p.rst = e.flags.rst;
    p.seq = static_cast<std::uint32_t>(e.seq);
    p.ack_seq = static_cast<std::uint32_t>(e.ack);
    p.payload = e.payload;
    out.push_back(p);
  }
  return out;
}

void PacketLog::save_pcap(const std::string& path) const {
  obs::write_pcap(path, to_pcap());
}

}  // namespace mn
