#include "emu/mpshell.hpp"

namespace mn {

MpShell::MpShell(Simulator& sim, const MpNetworkSetup& setup) : sim_(sim) {
  wifi_path_ = std::make_unique<DuplexPath>(sim, setup.wifi_up, setup.wifi_down);
  lte_path_ = std::make_unique<DuplexPath>(sim, setup.lte_up, setup.lte_down);
  ifaces_[0] = std::make_unique<NetworkInterface>("wifi", sim, *wifi_path_,
                                                  setup.wifi_reports_carrier_loss);
  ifaces_[1] = std::make_unique<NetworkInterface>("lte", sim, *lte_path_,
                                                  setup.lte_reports_carrier_loss);
  for (auto& iface : ifaces_) {
    iface->set_receiver([this](Packet p) { client_mux_.dispatch(p); });
  }
  wifi_path_->set_server_receiver([this](Packet p) { server_mux_.dispatch(p); });
  lte_path_->set_server_receiver([this](Packet p) { server_mux_.dispatch(p); });
}

MpShell::~MpShell() {
  wifi_path_->set_server_receiver({});
  lte_path_->set_server_receiver({});
}

void MpShell::server_send(PathId path, Packet p) {
  (path == PathId::kWifi ? wifi_path_ : lte_path_)->send_down(std::move(p));
}

namespace {

class TcpTransport final : public Transport {
 public:
  TcpTransport(MpShell& shell, PathId path, std::uint64_t conn, bool is_client)
      : shell_(shell), path_(path), conn_(conn), is_client_(is_client),
        ep_(shell.sim(), make_config(conn), std::make_unique<RenoCc>()) {
    if (is_client_) {
      ep_.set_transmit([this](Packet p) { shell_.iface(path_).send(std::move(p)); });
      shell_.client_mux().attach(conn_, 0, [this](Packet p) { ep_.handle_packet(p); });
    } else {
      ep_.set_transmit([this](Packet p) { shell_.server_send(path_, std::move(p)); });
      shell_.server_mux().attach(conn_, 0, [this](Packet p) { ep_.handle_packet(p); });
    }
    ep_.on_established = [this] {
      if (on_established) on_established();
    };
    ep_.on_delivered = [this](std::int64_t total) {
      if (on_delivered) on_delivered(total);
    };
  }

  ~TcpTransport() override {
    (is_client_ ? shell_.client_mux() : shell_.server_mux()).detach(conn_, 0);
  }

  void connect() override { ep_.connect(); }
  void listen() override { ep_.listen(); }
  void send(std::int64_t bytes) override { ep_.send_bytes(bytes); }
  void close_when_done() override { ep_.close_when_done(); }
  [[nodiscard]] bool finished() const override { return ep_.state() == TcpState::kDone; }

 private:
  static TcpConfig make_config(std::uint64_t conn) {
    TcpConfig cfg;
    cfg.connection_id = conn;
    return cfg;
  }

  MpShell& shell_;
  PathId path_;
  std::uint64_t conn_;
  bool is_client_;
  TcpEndpoint ep_;
};

class MptcpTransport final : public Transport {
 public:
  MptcpTransport(MpShell& shell, const MptcpSpec& spec, std::uint64_t conn,
                 bool is_client)
      : shell_(shell), conn_(conn), is_client_(is_client),
        agent_(shell.sim(), conn, spec, is_client) {
    for (int id = 0; id < 2; ++id) {
      const PathId path = agent_.subflow_path(id);
      if (is_client_) {
        agent_.set_transmit(id, [this, path](Packet p) {
          shell_.iface(path).send(std::move(p));
        });
      } else {
        agent_.set_transmit(id, [this, path](Packet p) {
          shell_.server_send(path, std::move(p));
        });
      }
      PacketMux& mux = is_client_ ? shell_.client_mux() : shell_.server_mux();
      mux.attach(conn_, id, [this](Packet p) { agent_.handle_packet(p); });
    }
    agent_.on_established = [this] {
      if (on_established) on_established();
    };
    agent_.on_data_delivered = [this](std::int64_t) {
      if (on_delivered) on_delivered(agent_.data_delivered_in_order());
    };
  }

  ~MptcpTransport() override {
    PacketMux& mux = is_client_ ? shell_.client_mux() : shell_.server_mux();
    mux.detach(conn_, 0);
    mux.detach(conn_, 1);
  }

  void connect() override { agent_.connect(); }
  void listen() override { agent_.listen(); }
  void send(std::int64_t bytes) override { agent_.send_data(bytes); }
  void close_when_done() override { agent_.close_when_done(); }
  [[nodiscard]] bool finished() const override { return agent_.finished(); }

 private:
  MpShell& shell_;
  std::uint64_t conn_;
  bool is_client_;
  MptcpAgent agent_;
};

}  // namespace

TransportPair make_transport_pair(MpShell& shell, const TransportConfig& config,
                                  std::uint64_t connection_id) {
  TransportPair pair;
  if (config.kind == TransportKind::kSinglePath) {
    pair.client =
        std::make_unique<TcpTransport>(shell, config.path, connection_id, true);
    pair.server =
        std::make_unique<TcpTransport>(shell, config.path, connection_id, false);
  } else {
    pair.client = std::make_unique<MptcpTransport>(shell, config.mp, connection_id, true);
    pair.server =
        std::make_unique<MptcpTransport>(shell, config.mp, connection_id, false);
  }
  return pair;
}

HttpExchange synthetic_exchange(std::int64_t request_bytes, std::int64_t response_bytes,
                                Duration server_think) {
  HttpExchange e;
  e.request.method = "GET";
  e.request.uri = "/synthetic";
  e.request.body_bytes = std::max<std::int64_t>(0, request_bytes - 100);
  e.response.body_bytes = std::max<std::int64_t>(0, response_bytes - 100);
  e.server_think = server_think;
  return e;
}

HttpConnectionSim::HttpConnectionSim(MpShell& shell, const TransportConfig& config,
                                     std::uint64_t connection_id,
                                     std::vector<HttpExchange> exchanges)
    : shell_(shell),
      pair_(make_transport_pair(shell, config, connection_id)),
      exchanges_(std::move(exchanges)) {
  std::int64_t req_cum = 0;
  std::int64_t resp_cum = 0;
  for (const auto& e : exchanges_) {
    req_cum += e.request.wire_bytes();
    resp_cum += e.response.wire_bytes();
    request_thresholds_.push_back(req_cum);
    response_thresholds_.push_back(resp_cum);
  }
  pair_.server->on_delivered = [this](std::int64_t total) { on_server_delivered(total); };
  pair_.client->on_delivered = [this](std::int64_t total) { on_client_delivered(total); };
}

void HttpConnectionSim::start(TimePoint at) {
  shell_.sim().schedule_at(at, [this] { begin(); });
}

void HttpConnectionSim::begin() {
  started_at_ = shell_.sim().now();
  pair_.server->listen();
  pair_.client->connect();
  if (exchanges_.empty()) {
    complete_ = true;
    completed_at_ = started_at_;
    pair_.client->close_when_done();
    if (on_complete) on_complete();
    return;
  }
  // First request rides the handshake completion (it is buffered).
  pair_.client->send(exchanges_[0].request.wire_bytes());
  requests_sent_ = 1;
}

void HttpConnectionSim::on_server_delivered(std::int64_t total) {
  while (responses_sent_ < exchanges_.size() &&
         total >= request_thresholds_[responses_sent_]) {
    const std::size_t k = responses_sent_++;
    const std::int64_t bytes = exchanges_[k].response.wire_bytes();
    const Duration think = exchanges_[k].server_think;
    if (think.usec() > 0) {
      shell_.sim().schedule_after(think, [this, bytes] { pair_.server->send(bytes); });
    } else {
      pair_.server->send(bytes);
    }
  }
}

void HttpConnectionSim::on_client_delivered(std::int64_t total) {
  while (responses_done_ < exchanges_.size() &&
         total >= response_thresholds_[responses_done_]) {
    ++responses_done_;
    if (responses_done_ == exchanges_.size()) {
      complete_ = true;
      completed_at_ = shell_.sim().now();
      pair_.client->close_when_done();
      if (on_complete) on_complete();
      return;
    }
    // Next request in the sequence.
    pair_.client->send(exchanges_[requests_sent_].request.wire_bytes());
    ++requests_sent_;
  }
}

}  // namespace mn
