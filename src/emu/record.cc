#include "emu/record.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mn {
namespace {

std::size_t common_prefix(const std::string& a, const std::string& b) {
  std::size_t i = 0;
  while (i < a.size() && i < b.size() && a[i] == b[i]) ++i;
  return i;
}

int header_agreement(const HttpRequest& a, const HttpRequest& b) {
  int score = 0;
  for (const auto& h : a.headers) {
    if (is_time_sensitive_header(h.name)) continue;
    const auto v = b.header(h.name);
    if (v && *v == h.value) ++score;
  }
  return score;
}

}  // namespace

std::optional<RecordedExchange> RecordStore::match(const HttpRequest& request) const {
  const RecordedExchange* best = nullptr;
  bool best_exact = false;
  std::size_t best_prefix = 0;
  int best_headers = -1;
  for (const auto& e : exchanges_) {
    if (e.request.method != request.method) continue;
    const bool exact = e.request.uri == request.uri;
    const std::size_t prefix = common_prefix(e.request.uri, request.uri);
    if (!exact && prefix == 0) continue;
    const int headers = header_agreement(request, e.request);
    // Exact URI beats prefix; longer prefix beats shorter; then headers.
    const bool better = (exact && !best_exact) ||
                        (exact == best_exact &&
                         (prefix > best_prefix ||
                          (prefix == best_prefix && headers > best_headers)));
    if (best == nullptr || better) {
      best = &e;
      best_exact = exact;
      best_prefix = prefix;
      best_headers = headers;
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

std::string RecordStore::serialize() const {
  std::ostringstream os;
  for (const auto& e : exchanges_) {
    os << "EXCHANGE\n";
    os << "METHOD " << e.request.method << "\n";
    os << "URI " << e.request.uri << "\n";
    for (const auto& h : e.request.headers) {
      os << "REQHDR " << h.name << ": " << h.value << "\n";
    }
    os << "REQBODY " << e.request.body_bytes << "\n";
    os << "STATUS " << e.response.status << "\n";
    for (const auto& h : e.response.headers) {
      os << "RESPHDR " << h.name << ": " << h.value << "\n";
    }
    os << "RESPBODY " << e.response.body_bytes << "\n";
    os << "END\n";
  }
  return os.str();
}

RecordStore RecordStore::deserialize(const std::string& text) {
  RecordStore store;
  std::istringstream in(text);
  std::string line;
  std::optional<RecordedExchange> cur;
  auto parse_header = [](const std::string& rest) {
    const auto colon = rest.find(": ");
    if (colon == std::string::npos) {
      throw std::runtime_error("RecordStore: bad header line: " + rest);
    }
    return HttpHeader{rest.substr(0, colon), rest.substr(colon + 2)};
  };
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const auto space = line.find(' ');
    const std::string tag = line.substr(0, space);
    const std::string rest = space == std::string::npos ? "" : line.substr(space + 1);
    if (tag == "EXCHANGE") {
      cur = RecordedExchange{};
    } else if (!cur) {
      throw std::runtime_error("RecordStore: content outside EXCHANGE block");
    } else if (tag == "METHOD") {
      cur->request.method = rest;
    } else if (tag == "URI") {
      cur->request.uri = rest;
    } else if (tag == "REQHDR") {
      cur->request.headers.push_back(parse_header(rest));
    } else if (tag == "REQBODY") {
      cur->request.body_bytes = std::stoll(rest);
    } else if (tag == "STATUS") {
      cur->response.status = std::stoi(rest);
    } else if (tag == "RESPHDR") {
      cur->response.headers.push_back(parse_header(rest));
    } else if (tag == "RESPBODY") {
      cur->response.body_bytes = std::stoll(rest);
    } else if (tag == "END") {
      store.add(std::move(*cur));
      cur.reset();
    } else {
      throw std::runtime_error("RecordStore: unknown tag: " + tag);
    }
  }
  if (cur) throw std::runtime_error("RecordStore: truncated EXCHANGE block");
  return store;
}

void RecordStore::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("RecordStore: cannot write " + path);
  out << serialize();
}

RecordStore RecordStore::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("RecordStore: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return deserialize(buf.str());
}

}  // namespace mn
