// Minimal HTTP/1.1 message model for record-and-replay.
//
// Bodies are byte counts (the simulator moves sizes, not payloads);
// headers are real key/value pairs because ReplayShell's matching logic
// (ignore time-sensitive fields) operates on them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mn {

struct HttpHeader {
  std::string name;
  std::string value;
};

struct HttpRequest {
  std::string method = "GET";
  std::string uri = "/";
  std::vector<HttpHeader> headers;
  std::int64_t body_bytes = 0;

  /// Approximate on-the-wire size: request line + headers + body.
  [[nodiscard]] std::int64_t wire_bytes() const;
  [[nodiscard]] std::optional<std::string> header(const std::string& name) const;
};

struct HttpResponse {
  int status = 200;
  std::vector<HttpHeader> headers;
  std::int64_t body_bytes = 0;

  [[nodiscard]] std::int64_t wire_bytes() const;
};

/// Header fields that have "likely changed since recording" (paper
/// Section 4.1) and must be ignored when matching a replayed request.
[[nodiscard]] bool is_time_sensitive_header(const std::string& name);

}  // namespace mn
