// A tcpdump-style packet logger.
//
// The paper collected tcpdump traces at the MPTCP client and built its
// Figure-9/10/15 analyses from them.  PacketLog is the simulated
// counterpart: attach it to a NetworkInterface tap (or feed it packets
// directly), and it records one line per packet in a stable text format
// that can be saved, reloaded, and queried (event times per lane,
// cumulative byte counts over time).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "net/path.hpp"
#include "obs/pcap_export.hpp"
#include "tcp/tcp_endpoint.hpp"

namespace mn {

struct PacketLogEntry {
  TimePoint t;
  std::string iface;  // "wifi" / "lte" / arbitrary
  PacketDir dir = PacketDir::kSent;
  int subflow_id = 0;
  TcpFlags flags;
  std::int64_t seq = 0;
  std::int64_t ack = 0;
  std::int64_t payload = 0;
};

class PacketLog {
 public:
  /// Record one packet crossing `iface`.
  void record(const std::string& iface, TimePoint t, PacketDir dir, const Packet& p);

  /// Returns a tap callback bound to `iface`, suitable for
  /// NetworkInterface::set_tap.  The log must outlive the interface.
  [[nodiscard]] InterfaceTap tap_for(std::string iface);

  [[nodiscard]] const std::deque<PacketLogEntry>& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Bound the log to the most recent `max_entries` packets (0 =
  /// unbounded, the default).  Long soaks tap millions of packets; a
  /// bounded log keeps the newest window and evicts oldest-first, like
  /// tcpdump's ring-buffer mode.  Shrinking below the current size
  /// evicts immediately.
  void set_capacity(std::size_t max_entries);
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Entries evicted (oldest-first) since construction.
  [[nodiscard]] std::uint64_t evicted() const { return evicted_; }

  /// Event timestamps (seconds) for one interface — the Figure-15 lanes.
  [[nodiscard]] std::vector<double> event_times(const std::string& iface) const;
  /// Cumulative received payload bytes on `iface` by time `t`.
  [[nodiscard]] std::int64_t bytes_received_by(const std::string& iface, TimePoint t) const;

  /// One line per packet:
  ///   <usec> <iface> <S|R> sf=<id> [SYN][ACK][FIN][RST] seq=<n> ack=<n> len=<n>
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static PacketLog deserialize(const std::string& text);
  void save(const std::string& path) const;
  [[nodiscard]] static PacketLog load(const std::string& path);

  /// Convert to pcap records (kSent = outbound).  Sequence numbers
  /// truncate to 32 bits as on the wire.
  [[nodiscard]] std::vector<obs::PcapPacket> to_pcap() const;
  /// Write a classic pcap file openable by tcpdump/Wireshark.
  void save_pcap(const std::string& path) const;

 private:
  std::deque<PacketLogEntry> entries_;
  std::size_t capacity_ = 0;  // 0 = unbounded
  std::uint64_t evicted_ = 0;
};

}  // namespace mn
