// A tcpdump-style packet logger.
//
// The paper collected tcpdump traces at the MPTCP client and built its
// Figure-9/10/15 analyses from them.  PacketLog is the simulated
// counterpart: attach it to a NetworkInterface tap (or feed it packets
// directly), and it records one line per packet in a stable text format
// that can be saved, reloaded, and queried (event times per lane,
// cumulative byte counts over time).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "net/path.hpp"
#include "tcp/tcp_endpoint.hpp"

namespace mn {

struct PacketLogEntry {
  TimePoint t;
  std::string iface;  // "wifi" / "lte" / arbitrary
  PacketDir dir = PacketDir::kSent;
  int subflow_id = 0;
  TcpFlags flags;
  std::int64_t seq = 0;
  std::int64_t ack = 0;
  std::int64_t payload = 0;
};

class PacketLog {
 public:
  /// Record one packet crossing `iface`.
  void record(const std::string& iface, TimePoint t, PacketDir dir, const Packet& p);

  /// Returns a tap callback bound to `iface`, suitable for
  /// NetworkInterface::set_tap.  The log must outlive the interface.
  [[nodiscard]] InterfaceTap tap_for(std::string iface);

  [[nodiscard]] const std::vector<PacketLogEntry>& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Event timestamps (seconds) for one interface — the Figure-15 lanes.
  [[nodiscard]] std::vector<double> event_times(const std::string& iface) const;
  /// Cumulative received payload bytes on `iface` by time `t`.
  [[nodiscard]] std::int64_t bytes_received_by(const std::string& iface, TimePoint t) const;

  /// One line per packet:
  ///   <usec> <iface> <S|R> sf=<id> [SYN][ACK][FIN][RST] seq=<n> ack=<n> len=<n>
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static PacketLog deserialize(const std::string& text);
  void save(const std::string& path) const;
  [[nodiscard]] static PacketLog load(const std::string& path);

 private:
  std::vector<PacketLogEntry> entries_;
};

}  // namespace mn
