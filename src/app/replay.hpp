// App replay over emulated multi-homed networks (paper Section 5).
//
// Runs an AppPattern through MpShell under one TransportConfig and
// reports the paper's metric: app response time = time between the start
// of the first HTTP connection and the end of the last one.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "app/pattern.hpp"
#include "core/policy.hpp"
#include "mptcp/testbed.hpp"

namespace mn {

struct FlowReplayOutcome {
  bool complete = false;
  Duration start{0};
  Duration end{0};
};

struct AppReplayResult {
  bool all_complete = false;
  /// Start of first connection -> end of last connection, in seconds.
  double response_time_s = 0.0;
  std::vector<FlowReplayOutcome> flows;
};

/// Replay `pattern` over `net` using `config` for every connection.
[[nodiscard]] AppReplayResult replay_app(const AppPattern& pattern,
                                         const MpNetworkSetup& net,
                                         const TransportConfig& config,
                                         Duration timeout = sec(180));

/// Replay a pattern under all six Section-5 configurations; keys are
/// TransportConfig::name() (the ConfigTimes format the oracles consume).
[[nodiscard]] ConfigTimes replay_all_configs(const AppPattern& pattern,
                                             const MpNetworkSetup& net,
                                             Duration timeout = sec(180));

}  // namespace mn
