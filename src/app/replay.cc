#include "app/replay.hpp"

#include <algorithm>
#include <memory>

namespace mn {

AppReplayResult replay_app(const AppPattern& pattern, const MpNetworkSetup& net,
                           const TransportConfig& config, Duration timeout) {
  AppReplayResult result;
  if (pattern.flows.empty()) {
    result.all_complete = true;
    return result;
  }

  Simulator sim;
  MpShell shell{sim, net};
  std::vector<std::unique_ptr<HttpConnectionSim>> conns;
  conns.reserve(pattern.flows.size());
  std::size_t completed = 0;
  for (std::size_t i = 0; i < pattern.flows.size(); ++i) {
    const AppFlow& flow = pattern.flows[i];
    auto conn = std::make_unique<HttpConnectionSim>(
        shell, config, /*connection_id=*/i + 1, flow.exchanges);
    conn->on_complete = [&completed] { ++completed; };
    conn->start(TimePoint{flow.start_offset.usec()});
    conns.push_back(std::move(conn));
  }

  const TimePoint deadline{timeout.usec()};
  while (completed < conns.size() && sim.now() < deadline) {
    if (!sim.step()) break;
  }

  TimePoint first_start = TimePoint::max();
  TimePoint last_end{0};
  result.flows.reserve(conns.size());
  for (const auto& conn : conns) {
    FlowReplayOutcome out;
    out.complete = conn->complete();
    out.start = conn->started_at() - TimePoint{0};
    out.end = (conn->complete() ? conn->completed_at() : deadline) - TimePoint{0};
    first_start = std::min(first_start, conn->started_at());
    last_end = std::max(last_end, conn->complete() ? conn->completed_at() : deadline);
    result.flows.push_back(out);
  }
  result.all_complete = completed == conns.size();
  result.response_time_s = (last_end - first_start).seconds();
  return result;
}

ConfigTimes replay_all_configs(const AppPattern& pattern, const MpNetworkSetup& net,
                               Duration timeout) {
  ConfigTimes times;
  for (const TransportConfig& config : replay_configs()) {
    const AppReplayResult r = replay_app(pattern, net, config, timeout);
    times[config.name()] = r.response_time_s;
  }
  return times;
}

}  // namespace mn
