#include "app/pattern.hpp"

#include <algorithm>

#include "util/units.hpp"

namespace mn {
namespace {

/// A short-flow connection: a handful of small exchanges (API calls,
/// thumbnails, beacons).
AppFlow small_flow(Rng& rng, Duration start, int exchange_count, std::int64_t min_resp,
                   std::int64_t max_resp, const std::string& uri_prefix, int flow_idx) {
  AppFlow f;
  f.start_offset = start;
  for (int i = 0; i < exchange_count; ++i) {
    HttpExchange e;
    e.request.method = "GET";
    e.request.uri = uri_prefix + "/" + std::to_string(flow_idx) + "/" + std::to_string(i);
    e.request.headers = {{"Host", "app.example.com"},
                         {"User-Agent", "android"},
                         {"If-Modified-Since", "Mon, 01 Sep 2014 00:00:00 GMT"}};
    e.request.body_bytes = 0;
    e.response.status = 200;
    e.response.headers = {{"Content-Type", "application/octet-stream"}};
    e.response.body_bytes = rng.uniform_int(min_resp, max_resp);
    e.server_think = msec(rng.uniform_int(5, 60));
    f.exchanges.push_back(std::move(e));
  }
  return f;
}

/// A long flow: one big object fetched in a single request (trailer, PDF).
AppFlow big_flow(Duration start, std::int64_t bytes, const std::string& uri) {
  AppFlow f;
  f.start_offset = start;
  HttpExchange e;
  e.request.method = "GET";
  e.request.uri = uri;
  e.request.headers = {{"Host", "cdn.example.com"}, {"User-Agent", "android"}};
  e.response.status = 200;
  e.response.headers = {{"Content-Type", "application/octet-stream"}};
  e.response.body_bytes = bytes;
  e.server_think = msec(30);
  f.exchanges.push_back(std::move(e));
  return f;
}

AppPattern short_flow_app(const std::string& name, Rng& rng, int flows,
                          Duration spread, std::int64_t min_resp, std::int64_t max_resp) {
  AppPattern p;
  p.name = name;
  for (int i = 0; i < flows; ++i) {
    // Connections cluster right after the user action, with stragglers.
    const double frac = rng.uniform() * rng.uniform();  // biased early
    const Duration start{static_cast<std::int64_t>(frac * spread.usec())};
    const int exchanges = static_cast<int>(rng.uniform_int(2, 5));
    p.flows.push_back(small_flow(rng, start, exchanges, min_resp, max_resp,
                                 "/" + name, i));
  }
  std::sort(p.flows.begin(), p.flows.end(),
            [](const AppFlow& a, const AppFlow& b) { return a.start_offset < b.start_offset; });
  return p;
}

}  // namespace

std::int64_t AppFlow::total_bytes() const {
  std::int64_t n = 0;
  for (const auto& e : exchanges) n += e.request.wire_bytes() + e.response.wire_bytes();
  return n;
}

std::int64_t AppPattern::total_bytes() const {
  std::int64_t n = 0;
  for (const auto& f : flows) n += f.total_bytes();
  return n;
}

std::int64_t AppPattern::largest_flow_bytes() const {
  std::int64_t best = 0;
  for (const auto& f : flows) best = std::max(best, f.total_bytes());
  return best;
}

std::string to_string(AppClass c) {
  return c == AppClass::kShortFlowDominated ? "short-flow dominated"
                                            : "long-flow dominated";
}

AppClass classify(const AppPattern& pattern, std::int64_t long_flow_bytes,
                  double dominant_share) {
  const std::int64_t largest = pattern.largest_flow_bytes();
  const std::int64_t total = pattern.total_bytes();
  if (largest >= long_flow_bytes) return AppClass::kLongFlowDominated;
  if (total > 0 &&
      static_cast<double>(largest) / static_cast<double>(total) >= dominant_share) {
    return AppClass::kLongFlowDominated;
  }
  return AppClass::kShortFlowDominated;
}

AppPattern cnn_launch(Rng& rng) {
  // Fig 17a: ~20 connections, small transfers, a couple persisting.
  return short_flow_app("cnn-launch", rng, 20, msec(1500), 2'000, 25'000);
}

AppPattern cnn_click(Rng& rng) {
  // Fig 17b: ~25 connections after an article click.
  return short_flow_app("cnn-click", rng, 25, msec(1500), 2'000, 30'000);
}

AppPattern imdb_launch(Rng& rng) {
  // Fig 17c: ~14 connections, small transfers.
  return short_flow_app("imdb-launch", rng, 14, msec(1500), 1'000, 25'000);
}

AppPattern imdb_click(Rng& rng) {
  // Fig 17d: ~35 connections; connection ID 30 downloads a whole movie
  // trailer in one HTTP request.
  AppPattern p = short_flow_app("imdb-click", rng, 34, msec(2000), 1'000, 20'000);
  p.name = "imdb-click";
  p.flows.push_back(big_flow(msec(1200), 4'000'000, "/imdb/trailer.mp4"));
  return p;
}

AppPattern dropbox_launch(Rng& rng) {
  // Fig 17e: ~6 connections, metadata only.
  return short_flow_app("dropbox-launch", rng, 6, msec(1200), 1'000, 20'000);
}

AppPattern dropbox_click(Rng& rng) {
  // Fig 17f: ~12 connections; connection ID 8 downloads the clicked PDF.
  AppPattern p = short_flow_app("dropbox-click", rng, 11, msec(1000), 1'000, 15'000);
  p.name = "dropbox-click";
  p.flows.push_back(big_flow(msec(800), 8'000'000, "/dropbox/file.pdf"));
  return p;
}

std::vector<AppPattern> figure17_patterns(std::uint64_t seed) {
  Rng rng{seed};
  std::vector<AppPattern> out;
  Rng r1 = rng.fork("cnn-launch");
  out.push_back(cnn_launch(r1));
  Rng r2 = rng.fork("cnn-click");
  out.push_back(cnn_click(r2));
  Rng r3 = rng.fork("imdb-launch");
  out.push_back(imdb_launch(r3));
  Rng r4 = rng.fork("imdb-click");
  out.push_back(imdb_click(r4));
  Rng r5 = rng.fork("dropbox-launch");
  out.push_back(dropbox_launch(r5));
  Rng r6 = rng.fork("dropbox-click");
  out.push_back(dropbox_click(r6));
  return out;
}

RecordStore pattern_to_store(const AppPattern& pattern) {
  RecordStore store;
  for (const auto& flow : pattern.flows) {
    for (const auto& e : flow.exchanges) {
      store.add(RecordedExchange{e.request, e.response});
    }
  }
  return store;
}

AppPattern pattern_via_store(const AppPattern& pattern, const RecordStore& store) {
  AppPattern out;
  out.name = pattern.name + "@replay";
  for (const auto& flow : pattern.flows) {
    AppFlow f;
    f.start_offset = flow.start_offset;
    for (const auto& e : flow.exchanges) {
      HttpExchange replayed = e;
      if (const auto hit = store.match(e.request)) {
        replayed.response = hit->response;
      }
      f.exchanges.push_back(std::move(replayed));
    }
    out.flows.push_back(std::move(f));
  }
  return out;
}

}  // namespace mn
