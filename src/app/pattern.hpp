// Mobile-app traffic patterns (paper Section 4.2, Figure 17).
//
// An AppPattern is what RecordShell captures from a real app: a set of
// connections (flows), each opening at some offset after the user action
// and carrying a sequence of HTTP exchanges.  Built-in generators mimic
// the six recorded scenarios — CNN / IMDB / Dropbox, launch and click —
// whose shapes motivate the short-flow vs long-flow dichotomy.
#pragma once

#include <string>
#include <vector>

#include "emu/mpshell.hpp"
#include "emu/record.hpp"
#include "util/rng.hpp"

namespace mn {

struct AppFlow {
  Duration start_offset{0};
  std::vector<HttpExchange> exchanges;

  [[nodiscard]] std::int64_t total_bytes() const;
};

struct AppPattern {
  std::string name;
  std::vector<AppFlow> flows;

  [[nodiscard]] std::int64_t total_bytes() const;
  [[nodiscard]] std::int64_t largest_flow_bytes() const;
  [[nodiscard]] std::size_t flow_count() const { return flows.size(); }
};

enum class AppClass { kShortFlowDominated, kLongFlowDominated };

[[nodiscard]] std::string to_string(AppClass c);

/// Section 4.2's categorization: an app is long-flow dominated when one
/// connection moves a large amount of data (an absolute threshold, or
/// dominating the session's bytes).
[[nodiscard]] AppClass classify(const AppPattern& pattern,
                                std::int64_t long_flow_bytes = 500'000,
                                double dominant_share = 0.5);

// ---- Figure-17 scenario generators -----------------------------------
// Deterministic given the Rng: same seed, same pattern.

[[nodiscard]] AppPattern cnn_launch(Rng& rng);      // Fig 17a: short-flow dominated
[[nodiscard]] AppPattern cnn_click(Rng& rng);       // Fig 17b
[[nodiscard]] AppPattern imdb_launch(Rng& rng);     // Fig 17c
[[nodiscard]] AppPattern imdb_click(Rng& rng);      // Fig 17d: trailer download
[[nodiscard]] AppPattern dropbox_launch(Rng& rng);  // Fig 17e
[[nodiscard]] AppPattern dropbox_click(Rng& rng);   // Fig 17f: PDF download

/// All six, in Figure-17 order.
[[nodiscard]] std::vector<AppPattern> figure17_patterns(std::uint64_t seed);

/// Convert a pattern to the recorded request/response store it would
/// produce under RecordShell (one entry per exchange).
[[nodiscard]] RecordStore pattern_to_store(const AppPattern& pattern);

/// Rebuild replayable flows by matching a pattern's requests against a
/// store (the ReplayShell path: recorded once, replayed under emulated
/// conditions).  Missing matches fall back to the pattern's own data.
[[nodiscard]] AppPattern pattern_via_store(const AppPattern& pattern,
                                           const RecordStore& store);

}  // namespace mn
