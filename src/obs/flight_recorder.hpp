// Flight recorder: a fixed-size overwriting ring of compact binary
// events, the post-mortem substrate for watchdog trips and assertion
// failures.
//
// Recording is allocation-free and O(1): the ring is sized once at
// construction and a record is a struct store plus index arithmetic;
// when full, the oldest event is overwritten (like an aircraft FDR, the
// last N events before the incident are what matter).  The chaos-soak
// harness serializes the ring into its run report when a watchdog
// trips, and tests/tools parse it back with FlightRecorder::parse.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mn::obs {

/// Event taxonomy across the whole stack.  Values are part of the dump
/// format: append only, never renumber.
enum class FlightEventType : std::uint8_t {
  kEventSchedule = 0,  // arg32=seq, v1=fire-at usec
  kEventFire = 1,      // arg32=seq
  kEventCancel = 2,
  kPktEnqueue = 3,     // v1=wire bytes, v2=queue depth after
  kPktDrop = 4,        // arg8=DropCause, v1=wire bytes
  kPktDeliver = 5,     // v1=wire bytes
  kCwndUpdate = 6,     // arg8=subflow, v1=cwnd bytes, v2=ssthresh bytes
  kRttSample = 7,      // arg8=subflow, v1=sample usec, v2=srtt usec
  kRtoFire = 8,        // arg8=subflow, v1=backoff, v2=rto usec
  kRetransmit = 9,     // arg8=subflow, v1=seq, v2=len
  kSchedGrant = 10,    // arg8=subflow, v1=data_seq, v2=bytes
  kReinject = 11,      // arg8=source subflow, v1=data_seq, v2=len
  kFaultArm = 12,      // arg8=FaultKind, v1=fire-at usec
  kFaultFire = 13,     // arg8=FaultKind, arg32=1 when skipped
  kRadioState = 14,    // arg8=radio id, arg32=state (0 idle/1 active/2 tail)
  kMarker = 15,        // free-form: arg32 + v1/v2 caller-defined
};

[[nodiscard]] const char* flight_event_name(FlightEventType type);

/// One 32-byte record.  Fields are generic slots; their meaning per
/// type is documented on FlightEventType.
struct FlightEvent {
  std::int64_t t_usec = 0;
  FlightEventType type = FlightEventType::kMarker;
  std::uint8_t arg8 = 0;
  std::uint16_t arg16 = 0;
  std::uint32_t arg32 = 0;
  std::int64_t v1 = 0;
  std::int64_t v2 = 0;
};

class FlightRecorder {
 public:
  /// `capacity` = max retained events (>= 1); older events overwrite.
  explicit FlightRecorder(std::size_t capacity);

  /// O(1), allocation-free.  Overwrites the oldest event when full.
  void record(const FlightEvent& e) {
    ring_[head_] = e;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (count_ < ring_.size()) {
      ++count_;
    } else {
      ++overwritten_;
    }
  }

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] std::size_t size() const { return count_; }
  /// Events lost to ring wrap-around since construction.
  [[nodiscard]] std::uint64_t overwritten() const { return overwritten_; }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<FlightEvent> events() const;

  /// Binary dump: "MNFR1\n" magic, little-endian u64 count + overwritten
  /// count, then 32-byte packed records oldest-first.
  [[nodiscard]] std::string serialize() const;
  /// Parse a serialize() dump; throws std::runtime_error on bad magic or
  /// a truncated body.  Returns events oldest-first (plus the recorded
  /// overwritten count via the out-param, if non-null).
  [[nodiscard]] static std::vector<FlightEvent> parse(const std::string& bytes,
                                                      std::uint64_t* overwritten = nullptr);

  /// Human-readable rendering, one line per event (diagnostics/tests).
  [[nodiscard]] std::string to_text() const;

  /// Write serialize() to a file; throws std::runtime_error on I/O error.
  void dump(const std::string& path) const;

 private:
  std::vector<FlightEvent> ring_;
  std::size_t head_ = 0;   // next write position
  std::size_t count_ = 0;  // retained (<= capacity)
  std::uint64_t overwritten_ = 0;
};

/// Render parsed events as to_text() does (shared by tools and tests).
[[nodiscard]] std::string flight_events_text(const std::vector<FlightEvent>& events);

}  // namespace mn::obs
