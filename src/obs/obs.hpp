// ObsHub: the per-run observability context — one metrics registry, an
// optional flight recorder, and the pre-registered ids of every
// well-known metric the stack records.
//
// Install with Simulator::set_obs(&hub); components reach it through
// their simulator reference, so instrumentation everywhere follows one
// pattern:
//
//   if (auto* o = sim_.obs()) o->tcp_rto(sim_.now(), subflow, backoff, rto);
//
// With no hub installed this compiles to a single predictable branch on
// a null pointer — BM_ObsOverhead holds the *live*-hub cost on a full
// TCP transfer to <= 2% and the null cost to noise.  The hub is
// single-threaded by design: parallel campaign/soak workers each build
// a private hub (runs own all their state already), and the serial
// reduction merges MetricsSnapshots in plan order — bit-identical
// output at any MN_THREADS, same contract as the runner itself.
//
// Layering: obs sits between util and sim (util -> obs -> sim -> net
// -> ...).  This header must not include anything above util.
#pragma once

#include <cstdint>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "util/time.hpp"

namespace mn::obs {

/// Canonical packet-drop causes.  Every drop anywhere in net/ increments
/// exactly one of these counters (the PR-4 drop audit); the chaos soak
/// and the wiring tests reconcile them against stage counters.
enum class DropCause : std::uint8_t {
  kQueueOverflow = 0,  // RateLink/TraceLink DropTail queue full
  kBlackhole = 1,      // fault-injected route blackhole
  kRandomLoss = 2,     // Bernoulli LossBox
  kBurstLoss = 3,      // Gilbert-Elliott bad-state loss
  kIfaceDown = 4,      // NetworkInterface down (soft-disabled/unplugged)
  kMiddlebox = 5,      // MiddleboxBox rejected a SYN carrying unknown options
};
constexpr std::size_t kDropCauseCount = 6;

[[nodiscard]] const char* drop_cause_name(DropCause cause);

class ObsHub {
 public:
  /// `flight_capacity` > 0 attaches a flight recorder of that many
  /// events; 0 (default) records metrics only.
  explicit ObsHub(std::size_t flight_capacity = 0);
  ObsHub(const ObsHub&) = delete;
  ObsHub& operator=(const ObsHub&) = delete;

  /// Well-known metric ids, registered by the constructor so the record
  /// path never looks anything up by name.
  struct Ids {
    MetricId sim_scheduled, sim_fired, sim_cancelled;
    MetricId pkt_enqueued, pkt_delivered;
    MetricId drop[kDropCauseCount];
    MetricId tcp_retransmits, tcp_rto_fires, tcp_recovery_enters, tcp_penalizations;
    MetricId tcp_rtt_usec, tcp_cwnd_bytes;  // histograms
    MetricId mptcp_grants_sf0, mptcp_grants_sf1, mptcp_reinjects;
    MetricId mptcp_fallback_handshake, mptcp_fallback_mid_flow;
    MetricId mptcp_fallback_join_rejected, mptcp_join_retries;
    MetricId mptcp_run_timeouts;
    MetricId middlebox_syn_stripped, middlebox_syn_dropped, middlebox_dss_mangled;
    MetricId fault_armed, fault_applied, fault_skipped;
    MetricId energy_transitions, energy_wifi_mj, energy_lte_mj;  // last two: gauges
    MetricId inplace_heap_fallbacks;  // gauge, refreshed at snapshot time
    MetricId flight_overwritten;      // gauge, ditto
  };

  [[nodiscard]] MetricsRegistry& metrics() { return reg_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return reg_; }
  [[nodiscard]] const Ids& ids() const { return ids_; }
  [[nodiscard]] FlightRecorder* flight() { return flight_.get(); }
  [[nodiscard]] const FlightRecorder* flight() const { return flight_.get(); }

  // ---- generic record paths -----------------------------------------
  void count(MetricId id, std::int64_t delta = 1) { reg_.add(id, delta); }
  void gauge_set(MetricId id, std::int64_t value) { reg_.set(id, value); }
  void observe(MetricId id, std::int64_t value) { reg_.observe(id, value); }
  void record(TimePoint t, FlightEventType type, std::uint8_t arg8, std::uint32_t arg32,
              std::int64_t v1, std::int64_t v2 = 0) {
    if (flight_) {
      flight_->record(FlightEvent{t.usec(), type, arg8, 0, arg32, v1, v2});
    }
  }

  // ---- domain helpers (inline: each is a counter add + optional ring
  // write; called behind the caller's null check) --------------------
  void sim_scheduled(TimePoint now, TimePoint at, std::uint64_t seq) {
    reg_.add(ids_.sim_scheduled);
    record(now, FlightEventType::kEventSchedule, 0, static_cast<std::uint32_t>(seq),
           at.usec());
  }
  void sim_fired(TimePoint now, std::uint64_t seq) {
    reg_.add(ids_.sim_fired);
    record(now, FlightEventType::kEventFire, 0, static_cast<std::uint32_t>(seq), 0);
  }
  void sim_cancelled(TimePoint now) {
    reg_.add(ids_.sim_cancelled);
    record(now, FlightEventType::kEventCancel, 0, 0, 0);
  }
  void packet_enqueued(TimePoint now, std::int64_t wire_bytes, std::int64_t depth) {
    reg_.add(ids_.pkt_enqueued);
    record(now, FlightEventType::kPktEnqueue, 0, 0, wire_bytes, depth);
  }
  void packet_delivered(TimePoint now, std::int64_t wire_bytes) {
    reg_.add(ids_.pkt_delivered);
    record(now, FlightEventType::kPktDeliver, 0, 0, wire_bytes);
  }
  void packet_dropped(TimePoint now, DropCause cause, std::int64_t wire_bytes) {
    reg_.add(ids_.drop[static_cast<std::size_t>(cause)]);
    record(now, FlightEventType::kPktDrop, static_cast<std::uint8_t>(cause), 0,
           wire_bytes);
  }

  /// Refresh process-level gauges (inplace-function heap fallbacks,
  /// flight-ring overwrites) and return the sorted snapshot.
  [[nodiscard]] MetricsSnapshot snapshot();

 private:
  MetricsRegistry reg_;
  Ids ids_{};
  std::unique_ptr<FlightRecorder> flight_;
};

}  // namespace mn::obs
