#include "obs/trace_export.hpp"

#include <fstream>
#include <stdexcept>

namespace mn::obs {

std::string chrome_trace_json(const std::vector<FlightEvent>& events) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const FlightEvent& e : events) {
    if (!first) out += ',';
    first = false;
    const std::string ts = std::to_string(e.t_usec);
    if (e.type == FlightEventType::kCwndUpdate) {
      // One counter track per subflow: the cwnd/ssthresh evolution lanes
      // the paper's Figure-13-style analyses need.
      out += "{\"name\":\"cwnd sf" + std::to_string(e.arg8) +
             "\",\"ph\":\"C\",\"ts\":" + ts + ",\"pid\":0,\"tid\":" +
             std::to_string(e.arg8) + ",\"args\":{\"cwnd\":" + std::to_string(e.v1) +
             ",\"ssthresh\":" + std::to_string(e.v2) + "}}";
    } else {
      out += "{\"name\":\"";
      out += flight_event_name(e.type);
      out += "\",\"ph\":\"i\",\"s\":\"g\",\"ts\":" + ts +
             ",\"pid\":0,\"tid\":" + std::to_string(e.arg8) +
             ",\"args\":{\"a32\":" + std::to_string(e.arg32) +
             ",\"v1\":" + std::to_string(e.v1) + ",\"v2\":" + std::to_string(e.v2) +
             "}}";
    }
  }
  out += "]}";
  return out;
}

void write_chrome_trace(const std::string& path, const std::vector<FlightEvent>& events) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("chrome trace: cannot write " + path);
  out << chrome_trace_json(events);
  if (!out) throw std::runtime_error("chrome trace: write failed: " + path);
}

}  // namespace mn::obs
