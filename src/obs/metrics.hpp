// Fixed-capacity metrics registry: named counters, gauges, and
// log-linear (HDR-style) histograms.
//
// The contract that makes this usable inside the event engine's hot
// path: *registration* may allocate (it happens once, at setup), but
// *recording* never does — a counter add is one array store, a
// histogram observation is a bit-scan plus two array stores.  The
// registry is deliberately single-threaded; parallel campaign/soak
// workers each own a private registry and the serial reduction merges
// their MetricsSnapshots in plan order, so campaign output stays
// bit-identical at any MN_THREADS value (the same plan/execute split
// that made the runner deterministic).
//
// Histogram buckets are log-linear: values below 2^kSubBucketBits get
// one bucket each; above that, every power-of-two octave is split into
// 2^kSubBucketBits linear sub-buckets.  Relative error is bounded by
// 2^-kSubBucketBits (12.5%) at any magnitude — the HDR-histogram scheme,
// sized for int64 microsecond/byte values.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mn::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Dense handle into a registry; obtained at registration time and
/// cached by the instrumented component (never look up by name on the
/// record path).
using MetricId = std::uint32_t;

class MetricsRegistry;

/// A histogram's merged/exported form: sparse (index, count) pairs in
/// ascending bucket order plus total count and sum.
struct HistogramData {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;
  std::uint64_t count = 0;
  std::int64_t sum = 0;
};

/// One exported metric.  `value` is meaningful for counters and gauges,
/// `hist` for histograms.
struct SnapshotEntry {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::int64_t value = 0;
  HistogramData hist;
};

/// A detached, order-stable copy of a registry's state.  Entries are
/// sorted by name, so two snapshots with the same contents serialize to
/// byte-identical text regardless of registration order — the basis of
/// the cross-thread determinism tests.
struct MetricsSnapshot {
  std::vector<SnapshotEntry> entries;  // invariant: sorted by name

  [[nodiscard]] const SnapshotEntry* find(std::string_view name) const;
  /// Counter/gauge value by name; `fallback` when absent.
  [[nodiscard]] std::int64_t value_of(std::string_view name,
                                      std::int64_t fallback = 0) const;
  /// Sum of every counter/gauge whose name starts with `prefix`
  /// (e.g. "drop." for total drops across causes).
  [[nodiscard]] std::int64_t sum_with_prefix(std::string_view prefix) const;

  /// Deterministic merge: counters and histograms add, gauges take the
  /// max (a gauge like "util.inplace_heap_fallbacks" is a process-wide
  /// high-water mark, not a per-run delta).  Entries absent on one side
  /// are copied.  Merging A then B equals merging in any grouping as
  /// long as the *sequence* order is fixed — the campaign reduces in
  /// plan order.
  void merge_from(const MetricsSnapshot& other);

  /// Prometheus text exposition (one "# TYPE" line per metric;
  /// histograms emit cumulative _bucket{le=...} series plus _sum and
  /// _count).  Deterministic byte-for-byte for equal snapshots.
  [[nodiscard]] std::string prometheus_text() const;
};

class MetricsRegistry {
 public:
  /// Fixed capacity: at most this many metrics, of which at most
  /// kMaxHistograms histograms.  Exceeding either throws at
  /// *registration* time — never at record time.
  /// 256 leaves headroom for the world layer's per-cell series (four
  /// per cell) on top of the ~50 pre-registered hub metrics — a test
  /// that builds a dozen cells on one sim must not trip the cap.
  static constexpr std::size_t kMaxMetrics = 256;
  static constexpr std::size_t kMaxHistograms = 16;
  static constexpr std::uint32_t kSubBucketBits = 3;  // 8 sub-buckets/octave
  static constexpr std::uint32_t kSubBuckets = 1u << kSubBucketBits;
  static constexpr std::uint32_t kHistBuckets = (64 - kSubBucketBits)
                                               << kSubBucketBits;

  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register a metric; throws std::length_error at capacity and
  /// std::invalid_argument on duplicate names.  Setup-time only.
  MetricId counter(std::string name) { return add_metric(std::move(name), MetricKind::kCounter); }
  MetricId gauge(std::string name) { return add_metric(std::move(name), MetricKind::kGauge); }
  MetricId histogram(std::string name) { return add_metric(std::move(name), MetricKind::kHistogram); }

  [[nodiscard]] std::size_t size() const { return count_; }

  // ---- record path: pure array arithmetic, no branches on capacity ---
  void add(MetricId id, std::int64_t delta = 1) { values_[id] += delta; }
  void set(MetricId id, std::int64_t value) { values_[id] = value; }
  void observe(MetricId id, std::int64_t value) {
    Histogram& h = hists_[hist_index_[id]];
    ++h.buckets[bucket_of(value)];
    ++h.count;
    h.sum += value;
  }

  [[nodiscard]] std::int64_t value(MetricId id) const { return values_[id]; }

  /// Map a value to its log-linear bucket index (values < 0 clamp to 0).
  [[nodiscard]] static std::uint32_t bucket_of(std::int64_t value) {
    const auto v = static_cast<std::uint64_t>(value < 0 ? 0 : value);
    if (v < kSubBuckets) return static_cast<std::uint32_t>(v);
    const auto exp = static_cast<std::uint32_t>(63 - std::countl_zero(v));
    return ((exp - kSubBucketBits + 1) << kSubBucketBits) +
           static_cast<std::uint32_t>((v >> (exp - kSubBucketBits)) &
                                      (kSubBuckets - 1));
  }
  /// Smallest value that lands in bucket `b` (inverse of bucket_of;
  /// exporters label buckets with the *upper* bound, bucket_floor(b+1)-1).
  [[nodiscard]] static std::int64_t bucket_floor(std::uint32_t b) {
    if (b < kSubBuckets) return b;
    const std::uint32_t octave = b >> kSubBucketBits;
    const std::uint32_t sub = b & (kSubBuckets - 1);
    return static_cast<std::int64_t>(
        (static_cast<std::uint64_t>(kSubBuckets) + sub) << (octave - 1));
  }

  /// Detached copy, sorted by name.  Allocates (export path, not record
  /// path).
  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  struct Meta {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
  };
  struct Histogram {
    std::array<std::uint64_t, kHistBuckets> buckets{};
    std::uint64_t count = 0;
    std::int64_t sum = 0;
  };

  MetricId add_metric(std::string name, MetricKind kind);

  std::array<Meta, kMaxMetrics> meta_;
  std::array<std::int64_t, kMaxMetrics> values_{};
  std::array<std::uint32_t, kMaxMetrics> hist_index_{};
  std::unique_ptr<Histogram[]> hists_;  // pool, allocated once at construction
  std::size_t count_ = 0;
  std::size_t hist_count_ = 0;
};

}  // namespace mn::obs
