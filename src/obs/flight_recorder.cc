#include "obs/flight_recorder.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace mn::obs {
namespace {

constexpr char kMagic[] = "MNFR1\n";
constexpr std::size_t kMagicLen = 6;
constexpr std::size_t kRecordBytes = 32;

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint64_t get_u64(const std::string& in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[at + i])) << (8 * i);
  }
  return v;
}

void put_record(std::string& out, const FlightEvent& e) {
  put_u64(out, static_cast<std::uint64_t>(e.t_usec));
  out.push_back(static_cast<char>(e.type));
  out.push_back(static_cast<char>(e.arg8));
  out.push_back(static_cast<char>(e.arg16 & 0xFF));
  out.push_back(static_cast<char>(e.arg16 >> 8));
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((e.arg32 >> (8 * i)) & 0xFF));
  put_u64(out, static_cast<std::uint64_t>(e.v1));
  put_u64(out, static_cast<std::uint64_t>(e.v2));
}

FlightEvent get_record(const std::string& in, std::size_t at) {
  FlightEvent e;
  e.t_usec = static_cast<std::int64_t>(get_u64(in, at));
  e.type = static_cast<FlightEventType>(static_cast<unsigned char>(in[at + 8]));
  e.arg8 = static_cast<std::uint8_t>(in[at + 9]);
  e.arg16 = static_cast<std::uint16_t>(static_cast<unsigned char>(in[at + 10]) |
                                       (static_cast<unsigned char>(in[at + 11]) << 8));
  e.arg32 = 0;
  for (int i = 0; i < 4; ++i) {
    e.arg32 |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[at + 12 + i]))
               << (8 * i);
  }
  e.v1 = static_cast<std::int64_t>(get_u64(in, at + 16));
  e.v2 = static_cast<std::int64_t>(get_u64(in, at + 24));
  return e;
}

}  // namespace

const char* flight_event_name(FlightEventType type) {
  switch (type) {
    case FlightEventType::kEventSchedule: return "event_schedule";
    case FlightEventType::kEventFire: return "event_fire";
    case FlightEventType::kEventCancel: return "event_cancel";
    case FlightEventType::kPktEnqueue: return "pkt_enqueue";
    case FlightEventType::kPktDrop: return "pkt_drop";
    case FlightEventType::kPktDeliver: return "pkt_deliver";
    case FlightEventType::kCwndUpdate: return "cwnd_update";
    case FlightEventType::kRttSample: return "rtt_sample";
    case FlightEventType::kRtoFire: return "rto_fire";
    case FlightEventType::kRetransmit: return "retransmit";
    case FlightEventType::kSchedGrant: return "sched_grant";
    case FlightEventType::kReinject: return "reinject";
    case FlightEventType::kFaultArm: return "fault_arm";
    case FlightEventType::kFaultFire: return "fault_fire";
    case FlightEventType::kRadioState: return "radio_state";
    case FlightEventType::kMarker: return "marker";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(capacity > 0 ? capacity : 1) {}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::vector<FlightEvent> out;
  out.reserve(count_);
  const std::size_t start = count_ < ring_.size() ? 0 : head_;
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::string FlightRecorder::serialize() const {
  std::string out;
  out.reserve(kMagicLen + 16 + count_ * kRecordBytes);
  out.append(kMagic, kMagicLen);
  put_u64(out, count_);
  put_u64(out, overwritten_);
  for (const FlightEvent& e : events()) put_record(out, e);
  return out;
}

std::vector<FlightEvent> FlightRecorder::parse(const std::string& bytes,
                                               std::uint64_t* overwritten) {
  if (bytes.size() < kMagicLen + 16 ||
      std::memcmp(bytes.data(), kMagic, kMagicLen) != 0) {
    throw std::runtime_error("FlightRecorder: bad dump magic");
  }
  const std::uint64_t count = get_u64(bytes, kMagicLen);
  if (bytes.size() != kMagicLen + 16 + count * kRecordBytes) {
    throw std::runtime_error("FlightRecorder: truncated dump (" +
                             std::to_string(bytes.size()) + " bytes for " +
                             std::to_string(count) + " events)");
  }
  if (overwritten != nullptr) *overwritten = get_u64(bytes, kMagicLen + 8);
  std::vector<FlightEvent> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    out.push_back(get_record(bytes, kMagicLen + 16 + i * kRecordBytes));
  }
  return out;
}

std::string flight_events_text(const std::vector<FlightEvent>& events) {
  std::string out;
  for (const FlightEvent& e : events) {
    out += std::to_string(e.t_usec) + " " + flight_event_name(e.type) +
           " a8=" + std::to_string(e.arg8) + " a32=" + std::to_string(e.arg32) +
           " v1=" + std::to_string(e.v1) + " v2=" + std::to_string(e.v2) + "\n";
  }
  return out;
}

std::string FlightRecorder::to_text() const { return flight_events_text(events()); }

void FlightRecorder::dump(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("FlightRecorder: cannot write " + path);
  const std::string bytes = serialize();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("FlightRecorder: write failed: " + path);
}

}  // namespace mn::obs
