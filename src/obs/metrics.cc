#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace mn::obs {

MetricsRegistry::MetricsRegistry()
    : hists_(std::make_unique<Histogram[]>(kMaxHistograms)) {}

MetricId MetricsRegistry::add_metric(std::string name, MetricKind kind) {
  if (count_ == kMaxMetrics) {
    throw std::length_error("MetricsRegistry: metric capacity exhausted");
  }
  if (kind == MetricKind::kHistogram && hist_count_ == kMaxHistograms) {
    throw std::length_error("MetricsRegistry: histogram capacity exhausted");
  }
  for (std::size_t i = 0; i < count_; ++i) {
    if (meta_[i].name == name) {
      throw std::invalid_argument("MetricsRegistry: duplicate metric: " + name);
    }
  }
  const auto id = static_cast<MetricId>(count_++);
  meta_[id] = Meta{std::move(name), kind};
  if (kind == MetricKind::kHistogram) {
    hist_index_[id] = static_cast<std::uint32_t>(hist_count_++);
  }
  return id;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.entries.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    SnapshotEntry e;
    e.name = meta_[i].name;
    e.kind = meta_[i].kind;
    if (e.kind == MetricKind::kHistogram) {
      const Histogram& h = hists_[hist_index_[i]];
      e.hist.count = h.count;
      e.hist.sum = h.sum;
      for (std::uint32_t b = 0; b < kHistBuckets; ++b) {
        if (h.buckets[b] != 0) e.hist.buckets.emplace_back(b, h.buckets[b]);
      }
    } else {
      e.value = values_[i];
    }
    snap.entries.push_back(std::move(e));
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) { return a.name < b.name; });
  return snap;
}

const SnapshotEntry* MetricsSnapshot::find(std::string_view name) const {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const SnapshotEntry& e, std::string_view n) { return e.name < n; });
  if (it == entries.end() || it->name != name) return nullptr;
  return &*it;
}

std::int64_t MetricsSnapshot::value_of(std::string_view name, std::int64_t fallback) const {
  const SnapshotEntry* e = find(name);
  return e != nullptr ? e->value : fallback;
}

std::int64_t MetricsSnapshot::sum_with_prefix(std::string_view prefix) const {
  std::int64_t total = 0;
  for (const SnapshotEntry& e : entries) {
    if (e.kind != MetricKind::kHistogram && e.name.starts_with(prefix)) total += e.value;
  }
  return total;
}

namespace {

void merge_hist(HistogramData& into, const HistogramData& from) {
  // Two sparse ascending bucket lists -> one merged ascending list.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> merged;
  merged.reserve(into.buckets.size() + from.buckets.size());
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < into.buckets.size() || b < from.buckets.size()) {
    if (b == from.buckets.size() ||
        (a < into.buckets.size() && into.buckets[a].first < from.buckets[b].first)) {
      merged.push_back(into.buckets[a++]);
    } else if (a == into.buckets.size() || from.buckets[b].first < into.buckets[a].first) {
      merged.push_back(from.buckets[b++]);
    } else {
      merged.emplace_back(into.buckets[a].first,
                          into.buckets[a].second + from.buckets[b].second);
      ++a;
      ++b;
    }
  }
  into.buckets = std::move(merged);
  into.count += from.count;
  into.sum += from.sum;
}

}  // namespace

void MetricsSnapshot::merge_from(const MetricsSnapshot& other) {
  for (const SnapshotEntry& oe : other.entries) {
    const auto it = std::lower_bound(
        entries.begin(), entries.end(), oe.name,
        [](const SnapshotEntry& e, const std::string& n) { return e.name < n; });
    if (it == entries.end() || it->name != oe.name) {
      entries.insert(it, oe);
      continue;
    }
    switch (oe.kind) {
      case MetricKind::kCounter:
        it->value += oe.value;
        break;
      case MetricKind::kGauge:
        it->value = std::max(it->value, oe.value);
        break;
      case MetricKind::kHistogram:
        merge_hist(it->hist, oe.hist);
        break;
    }
  }
}

std::string MetricsSnapshot::prometheus_text() const {
  // Prometheus metric names use underscores, not dots.
  const auto flat = [](std::string name) {
    for (char& c : name) {
      if (c == '.' || c == '-') c = '_';
    }
    return name;
  };
  std::string out;
  for (const SnapshotEntry& e : entries) {
    const std::string name = flat(e.name);
    switch (e.kind) {
      case MetricKind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(e.value) + "\n";
        break;
      case MetricKind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + std::to_string(e.value) + "\n";
        break;
      case MetricKind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (const auto& [bucket, count] : e.hist.buckets) {
          cumulative += count;
          const std::int64_t le = MetricsRegistry::bucket_floor(bucket + 1) - 1;
          out += name + "_bucket{le=\"" + std::to_string(le) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " + std::to_string(e.hist.count) + "\n";
        out += name + "_sum " + std::to_string(e.hist.sum) + "\n";
        out += name + "_count " + std::to_string(e.hist.count) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace mn::obs
