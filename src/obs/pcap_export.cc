#include "obs/pcap_export.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace mn::obs {
namespace {

// Classic pcap, little-endian writer.
void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>(v >> 8));
}
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}
// Network byte order (big-endian) for the synthetic packet bytes.
void put_be16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v & 0xFF));
}
void put_be32(std::string& out, std::uint32_t v) {
  for (int i = 3; i >= 0; --i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

constexpr std::uint32_t kPcapMagic = 0xa1b2c3d4;
constexpr std::uint32_t kLinkTypeRaw = 101;  // raw IP, no link-layer header
constexpr std::size_t kHeaderBytes = 40;     // IPv4 (20) + TCP (20)
// Synthetic endpoints: client 10.0.0.1, server 10.0.0.2; the client's
// port encodes the subflow so Wireshark separates the MPTCP lanes into
// distinct TCP conversations.
constexpr std::uint32_t kClientAddr = 0x0A000001;
constexpr std::uint32_t kServerAddr = 0x0A000002;
constexpr std::uint16_t kServerPort = 443;
constexpr std::uint16_t kClientPortBase = 10000;

}  // namespace

std::string pcap_bytes(const std::vector<PcapPacket>& packets) {
  std::string out;
  out.reserve(24 + packets.size() * (16 + kHeaderBytes));
  // Global header.
  put_u32(out, kPcapMagic);
  put_u16(out, 2);   // version major
  put_u16(out, 4);   // version minor
  put_u32(out, 0);   // thiszone
  put_u32(out, 0);   // sigfigs
  put_u32(out, 65535);  // snaplen
  put_u32(out, kLinkTypeRaw);

  for (const PcapPacket& p : packets) {
    const auto total_len = static_cast<std::uint32_t>(
        kHeaderBytes + static_cast<std::uint64_t>(std::clamp<std::int64_t>(
                           p.payload, 0, 65535 - static_cast<std::int64_t>(kHeaderBytes))));
    // Record header.
    put_u32(out, static_cast<std::uint32_t>(p.t_usec / 1'000'000));
    put_u32(out, static_cast<std::uint32_t>(p.t_usec % 1'000'000));
    put_u32(out, kHeaderBytes);  // incl_len: headers only
    put_u32(out, total_len);     // orig_len: true on-wire size

    const std::uint16_t client_port =
        static_cast<std::uint16_t>(kClientPortBase + p.subflow);
    // IPv4 header (checksum 0: Wireshark accepts, flags it informational).
    out.push_back(0x45);  // version 4, IHL 5
    out.push_back(0);     // DSCP/ECN
    put_be16(out, static_cast<std::uint16_t>(total_len));
    put_be16(out, 0);       // identification
    put_be16(out, 0x4000);  // don't fragment
    out.push_back(64);      // TTL
    out.push_back(6);       // protocol: TCP
    put_be16(out, 0);       // header checksum
    put_be32(out, p.outbound ? kClientAddr : kServerAddr);
    put_be32(out, p.outbound ? kServerAddr : kClientAddr);
    // TCP header.
    put_be16(out, p.outbound ? client_port : kServerPort);
    put_be16(out, p.outbound ? kServerPort : client_port);
    put_be32(out, p.seq);
    put_be32(out, p.ack_seq);
    out.push_back(0x50);  // data offset 5 words
    std::uint8_t flags = 0;
    if (p.fin) flags |= 0x01;
    if (p.syn) flags |= 0x02;
    if (p.rst) flags |= 0x04;
    if (p.ack) flags |= 0x10;
    out.push_back(static_cast<char>(flags));
    put_be16(out, 65535);  // window
    put_be16(out, 0);      // checksum
    put_be16(out, 0);      // urgent pointer
  }
  return out;
}

void write_pcap(const std::string& path, const std::vector<PcapPacket>& packets) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("pcap: cannot write " + path);
  const std::string bytes = pcap_bytes(packets);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("pcap: write failed: " + path);
}

}  // namespace mn::obs
