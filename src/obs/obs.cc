#include "obs/obs.hpp"

#include "util/inplace_function.hpp"

namespace mn::obs {

const char* drop_cause_name(DropCause cause) {
  switch (cause) {
    case DropCause::kQueueOverflow: return "queue_overflow";
    case DropCause::kBlackhole: return "blackhole";
    case DropCause::kRandomLoss: return "random_loss";
    case DropCause::kBurstLoss: return "burst_loss";
    case DropCause::kIfaceDown: return "iface_down";
    case DropCause::kMiddlebox: return "middlebox";
  }
  return "unknown";
}

ObsHub::ObsHub(std::size_t flight_capacity) {
  ids_.sim_scheduled = reg_.counter("sim.events_scheduled");
  ids_.sim_fired = reg_.counter("sim.events_fired");
  ids_.sim_cancelled = reg_.counter("sim.events_cancelled");
  ids_.pkt_enqueued = reg_.counter("net.pkt_enqueued");
  ids_.pkt_delivered = reg_.counter("net.pkt_delivered");
  for (std::size_t c = 0; c < kDropCauseCount; ++c) {
    ids_.drop[c] =
        reg_.counter(std::string{"drop."} + drop_cause_name(static_cast<DropCause>(c)));
  }
  ids_.tcp_retransmits = reg_.counter("tcp.retransmits");
  ids_.tcp_rto_fires = reg_.counter("tcp.rto_fires");
  ids_.tcp_recovery_enters = reg_.counter("tcp.recovery_enters");
  ids_.tcp_penalizations = reg_.counter("tcp.penalizations");
  ids_.tcp_rtt_usec = reg_.histogram("tcp.rtt_usec");
  ids_.tcp_cwnd_bytes = reg_.histogram("tcp.cwnd_bytes");
  ids_.mptcp_grants_sf0 = reg_.counter("mptcp.sched_grants_sf0");
  ids_.mptcp_grants_sf1 = reg_.counter("mptcp.sched_grants_sf1");
  ids_.mptcp_reinjects = reg_.counter("mptcp.reinjected_ranges");
  ids_.mptcp_fallback_handshake = reg_.counter("mptcp.fallback.handshake");
  ids_.mptcp_fallback_mid_flow = reg_.counter("mptcp.fallback.mid_flow");
  ids_.mptcp_fallback_join_rejected = reg_.counter("mptcp.fallback.join_rejected");
  ids_.mptcp_join_retries = reg_.counter("mptcp.join_retries");
  ids_.mptcp_run_timeouts = reg_.counter("mptcp.run_timeouts");
  ids_.middlebox_syn_stripped = reg_.counter("middlebox.syn_stripped");
  ids_.middlebox_syn_dropped = reg_.counter("middlebox.syn_dropped");
  ids_.middlebox_dss_mangled = reg_.counter("middlebox.dss_mangled");
  ids_.fault_armed = reg_.counter("fault.armed");
  ids_.fault_applied = reg_.counter("fault.applied");
  ids_.fault_skipped = reg_.counter("fault.skipped");
  ids_.energy_transitions = reg_.counter("energy.state_transitions");
  ids_.energy_wifi_mj = reg_.gauge("energy.wifi_mj");
  ids_.energy_lte_mj = reg_.gauge("energy.lte_mj");
  ids_.inplace_heap_fallbacks = reg_.gauge("util.inplace_heap_fallbacks");
  ids_.flight_overwritten = reg_.gauge("obs.flight_overwritten");
  if (flight_capacity > 0) {
    flight_ = std::make_unique<FlightRecorder>(flight_capacity);
  }
}

MetricsSnapshot ObsHub::snapshot() {
  reg_.set(ids_.inplace_heap_fallbacks,
           static_cast<std::int64_t>(inplace_function_heap_fallbacks()));
  reg_.set(ids_.flight_overwritten,
           flight_ ? static_cast<std::int64_t>(flight_->overwritten()) : 0);
  return reg_.snapshot();
}

}  // namespace mn::obs
