// pcap exporter: writes classic libpcap capture files with synthetic
// IPv4+TCP headers, so simulated packet logs open in tcpdump/Wireshark
// next to the real traces the paper collected.
//
// Input is a neutral PcapPacket record rather than net/Packet — obs
// sits *below* net in the layering (util -> obs -> sim -> net), so the
// conversion lives with the caller (emu/PacketLog::save_pcap).  Payload
// bytes are synthetic and not written: each frame is the 40-byte
// IPv4+TCP header with orig_len carrying the true on-wire size, which
// is all throughput/sequence analyses need.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mn::obs {

struct PcapPacket {
  std::int64_t t_usec = 0;
  bool outbound = true;  // client -> server
  std::uint16_t subflow = 0;
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
  std::uint32_t seq = 0;
  std::uint32_t ack_seq = 0;
  std::int64_t payload = 0;  // data bytes (reported via orig_len only)
};

/// Serialize as a classic pcap byte stream (magic 0xa1b2c3d4, LINKTYPE_RAW).
[[nodiscard]] std::string pcap_bytes(const std::vector<PcapPacket>& packets);

/// Write pcap_bytes to a file; throws std::runtime_error on I/O failure.
void write_pcap(const std::string& path, const std::vector<PcapPacket>& packets);

}  // namespace mn::obs
