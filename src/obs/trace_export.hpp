// chrome://tracing exporter: renders a flight-recorder event stream as
// a Trace Event Format JSON document (load in chrome://tracing or
// https://ui.perfetto.dev).
//
// Mapping: cwnd updates become counter tracks ("C" phase, one track per
// subflow, cwnd + ssthresh series); every other event becomes an
// instant ("i" phase) named after its FlightEventType, with the raw
// v1/v2 payload in args.  Timestamps are already microseconds — the
// trace format's native unit — so simulated time maps 1:1 onto the
// viewer's timeline.
#pragma once

#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"

namespace mn::obs {

/// Serialize `events` (oldest-first, e.g. FlightRecorder::events() or
/// FlightRecorder::parse output) as chrome://tracing JSON.
[[nodiscard]] std::string chrome_trace_json(const std::vector<FlightEvent>& events);

/// Write chrome_trace_json to a file; throws std::runtime_error on I/O
/// failure.
void write_chrome_trace(const std::string& path, const std::vector<FlightEvent>& events);

}  // namespace mn::obs
