// Chaos soak harness: N seeded random fault plans over randomized
// WiFi+LTE setups, each run checked against the stack's safety
// invariants.
//
// A run is allowed to fail to complete (that is the point of injecting
// unrestored blackholes), but it must fail *well*:
//   1. byte conservation — no endpoint ever observes more data than was
//      sent, and in-order delivery never exceeds total delivery;
//   2. no event-queue leak — after shutdown the simulator drains to an
//      empty queue;
//   3. bounded stall — the watchdog caps the longest progress gap;
//   4. stage-counter consistency — accepted == delivered + dropped +
//      queued on every pipeline stage of all four one-way pipes.
// Any violation is reported with the serialized plan so the exact run
// can be replayed from its seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faults/fault_plan.hpp"
#include "mptcp/testbed.hpp"
#include "obs/metrics.hpp"
#include "store/key.hpp"
#include "store/store.hpp"

namespace mn {

struct ChaosSoakOptions {
  int runs = 200;
  std::uint64_t seed = 20140814;
  std::int64_t min_bytes = 50'000;
  std::int64_t max_bytes = 2'000'000;
  Duration timeout = sec(120);
  /// Watchdog bound asserted by invariant 3.
  Duration stall_limit = sec(10);
  RandomPlanOptions plan;
  /// Worker threads for the soak: 0/1 = serial, negative = follow
  /// MN_THREADS.  Each run is a pure function of its seed, so the
  /// summary is identical for every value.
  int parallelism = -1;
  /// Flight-recorder ring capacity per run; 0 disables the recorder.
  /// When a run trips the watchdog or violates an invariant, the ring's
  /// last events are serialized into ChaosRunReport::flight_dump (the
  /// black box of the crash).
  std::size_t flight_recorder_events = 0;
  /// When non-empty and a dump was taken, also write it to
  /// `<dir>/chaos_flight_<seed>.mnfr` (FlightRecorder::parse reads it).
  std::string flight_dump_dir;
  /// Optional result store: run_chaos_soak looks each seed up before
  /// executing and appends fresh reports on miss.  A cached run that
  /// carried a flight dump re-writes its .mnfr file, so the on-disk
  /// black boxes survive a crash-and-rerun exactly like the reports.
  /// Not owned.
  store::Store* store = nullptr;
};

/// Everything observed in one chaos run (reproducible from `seed`).
struct ChaosRunReport {
  std::uint64_t seed = 0;
  bool completed = false;
  std::string failure_reason;  // watchdog verdict when !completed
  Duration max_stall{0};
  int faults_applied = 0;
  int faults_skipped = 0;
  std::int64_t bytes_requested = 0;
  std::int64_t bytes_observed = 0;  // receiver's data-level total
  std::string plan_text;            // serialized FaultPlan (replay aid)
  /// Multipath negotiation outcome (client view; middlebox plans).
  bool negotiated_mp = false;
  bool achieved_mp = false;
  /// Why multipath degraded ("" when it did not) — under middlebox-only
  /// plans, every watchdog abort must carry one of these.
  std::string fallback_reason;
  /// One entry per violated invariant; empty means the run was safe.
  std::vector<std::string> violations;
  /// Metrics snapshot of the run's private ObsHub.
  obs::MetricsSnapshot metrics;
  /// Serialized flight-recorder ring ("MNFR1" format), captured when the
  /// run aborted or violated an invariant and flight_recorder_events > 0.
  std::string flight_dump;

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Execute one seeded chaos run and check all four invariants.
[[nodiscard]] ChaosRunReport run_chaos_run(std::uint64_t seed,
                                           const ChaosSoakOptions& options = {});

struct ChaosSoakSummary {
  int runs = 0;
  int completed = 0;
  int aborted = 0;  // watchdog/timeout aborts — expected under chaos
  /// Reports that violated an invariant (must be empty for a green soak).
  std::vector<ChaosRunReport> violating;
  Duration max_stall{0};

  [[nodiscard]] bool ok() const { return violating.empty(); }
};

/// Run `options.runs` seeded chaos runs (seeds options.seed + i).
[[nodiscard]] ChaosSoakSummary run_chaos_soak(const ChaosSoakOptions& options = {});

/// Content key of one chaos run: the seed plus every option that shapes
/// the run (byte range, timeout, watchdog, random-plan knobs, and the
/// flight-recorder size, which changes the captured dump).
[[nodiscard]] store::ScenarioKey chaos_scenario_key(std::uint64_t seed,
                                                    const ChaosSoakOptions& options);

/// Store blob codec for ChaosRunReport; parse throws std::runtime_error
/// on corruption (treated upstream as a cache miss).
[[nodiscard]] std::string serialize_chaos_report(const ChaosRunReport& report);
[[nodiscard]] ChaosRunReport parse_chaos_report(std::string_view blob);

}  // namespace mn
