#include "faults/fault_plan.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace mn {

std::string to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kBlackhole: return "blackhole";
    case FaultKind::kRestore: return "restore";
    case FaultKind::kSoftDown: return "soft_down";
    case FaultKind::kSoftUp: return "soft_up";
    case FaultKind::kUnplug: return "unplug";
    case FaultKind::kReplug: return "replug";
    case FaultKind::kBurstOn: return "burst_on";
    case FaultKind::kBurstOff: return "burst_off";
    case FaultKind::kRateCrash: return "rate_crash";
    case FaultKind::kRateRestore: return "rate_restore";
    case FaultKind::kDelaySpike: return "delay_spike";
    case FaultKind::kDelayClear: return "delay_clear";
    case FaultKind::kMiddleboxOn: return "mbox_on";
    case FaultKind::kMiddleboxOff: return "mbox_off";
  }
  return "?";
}

std::string to_string(LinkDir d) {
  switch (d) {
    case LinkDir::kUp: return "up";
    case LinkDir::kDown: return "down";
    case LinkDir::kBoth: return "both";
  }
  return "?";
}

namespace {

FaultKind parse_kind(const std::string& s) {
  for (const FaultKind k :
       {FaultKind::kBlackhole, FaultKind::kRestore, FaultKind::kSoftDown,
        FaultKind::kSoftUp, FaultKind::kUnplug, FaultKind::kReplug, FaultKind::kBurstOn,
        FaultKind::kBurstOff, FaultKind::kRateCrash, FaultKind::kRateRestore,
        FaultKind::kDelaySpike, FaultKind::kDelayClear, FaultKind::kMiddleboxOn,
        FaultKind::kMiddleboxOff}) {
    if (to_string(k) == s) return k;
  }
  throw std::runtime_error("FaultPlan: unknown fault kind: " + s);
}

PathId parse_path(const std::string& s) {
  if (s == "wifi") return PathId::kWifi;
  if (s == "lte") return PathId::kLte;
  throw std::runtime_error("FaultPlan: unknown path: " + s);
}

LinkDir parse_dir(const std::string& s) {
  if (s == "up") return LinkDir::kUp;
  if (s == "down") return LinkDir::kDown;
  if (s == "both") return LinkDir::kBoth;
  throw std::runtime_error("FaultPlan: unknown direction: " + s);
}

}  // namespace

std::string FaultEvent::describe() const {
  std::ostringstream os;
  os << at.usec() << "us " << to_string(kind) << ' '
     << (path == PathId::kWifi ? "wifi" : "lte") << ' ' << to_string(dir);
  if (kind == FaultKind::kRateCrash) os << " rate=" << rate_mbps;
  if (kind == FaultKind::kDelaySpike) os << " extra=" << extra_delay.usec() << "us";
  if (kind == FaultKind::kBurstOn) {
    os << " ge=" << ge.loss_good << '/' << ge.loss_bad << '/' << ge.p_good_to_bad << '/'
       << ge.p_bad_to_good;
  }
  if (kind == FaultKind::kMiddleboxOn) {
    os << " mbox=" << middlebox.strip_capable << '/' << middlebox.strip_join << '/'
       << middlebox.drop_unknown_syn << '/' << middlebox.mangle_dss << '/'
       << middlebox.rewrite_seq;
  }
  return os.str();
}

FaultPlan& FaultPlan::add(FaultEvent ev) {
  // Stable insert keeps the plan sorted while preserving the authoring
  // order of simultaneous events.
  auto it = std::upper_bound(events_.begin(), events_.end(), ev,
                             [](const FaultEvent& a, const FaultEvent& b) {
                               return a.at < b.at;
                             });
  events_.insert(it, std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::blackhole(Duration at, PathId path, LinkDir dir) {
  return add({.at = at, .kind = FaultKind::kBlackhole, .path = path, .dir = dir});
}
FaultPlan& FaultPlan::restore(Duration at, PathId path, LinkDir dir) {
  return add({.at = at, .kind = FaultKind::kRestore, .path = path, .dir = dir});
}
FaultPlan& FaultPlan::soft_down(Duration at, PathId path) {
  return add({.at = at, .kind = FaultKind::kSoftDown, .path = path});
}
FaultPlan& FaultPlan::soft_up(Duration at, PathId path) {
  return add({.at = at, .kind = FaultKind::kSoftUp, .path = path});
}
FaultPlan& FaultPlan::unplug(Duration at, PathId path) {
  return add({.at = at, .kind = FaultKind::kUnplug, .path = path});
}
FaultPlan& FaultPlan::replug(Duration at, PathId path) {
  return add({.at = at, .kind = FaultKind::kReplug, .path = path});
}
FaultPlan& FaultPlan::burst_loss(Duration at, PathId path, const GeLossSpec& ge,
                                 LinkDir dir) {
  return add(
      {.at = at, .kind = FaultKind::kBurstOn, .path = path, .dir = dir, .ge = ge});
}
FaultPlan& FaultPlan::burst_loss_off(Duration at, PathId path, LinkDir dir) {
  return add({.at = at, .kind = FaultKind::kBurstOff, .path = path, .dir = dir});
}
FaultPlan& FaultPlan::rate_crash(Duration at, PathId path, double mbps, LinkDir dir) {
  return add({.at = at,
              .kind = FaultKind::kRateCrash,
              .path = path,
              .dir = dir,
              .rate_mbps = mbps});
}
FaultPlan& FaultPlan::rate_restore(Duration at, PathId path, LinkDir dir) {
  return add({.at = at, .kind = FaultKind::kRateRestore, .path = path, .dir = dir});
}
FaultPlan& FaultPlan::delay_spike(Duration at, PathId path, Duration extra, LinkDir dir) {
  return add({.at = at,
              .kind = FaultKind::kDelaySpike,
              .path = path,
              .dir = dir,
              .extra_delay = extra});
}
FaultPlan& FaultPlan::delay_clear(Duration at, PathId path, LinkDir dir) {
  return add({.at = at, .kind = FaultKind::kDelayClear, .path = path, .dir = dir});
}
FaultPlan& FaultPlan::middlebox_on(Duration at, PathId path, const MiddleboxSpec& spec,
                                   LinkDir dir) {
  return add({.at = at,
              .kind = FaultKind::kMiddleboxOn,
              .path = path,
              .dir = dir,
              .middlebox = spec});
}
FaultPlan& FaultPlan::middlebox_off(Duration at, PathId path, LinkDir dir) {
  return add({.at = at, .kind = FaultKind::kMiddleboxOff, .path = path, .dir = dir});
}

std::string FaultPlan::serialize() const {
  std::ostringstream os;
  for (const FaultEvent& ev : events_) {
    os << ev.at.usec() << ' ' << to_string(ev.kind) << ' '
       << (ev.path == PathId::kWifi ? "wifi" : "lte") << ' ' << to_string(ev.dir);
    switch (ev.kind) {
      case FaultKind::kRateCrash:
        os << ' ' << ev.rate_mbps;
        break;
      case FaultKind::kDelaySpike:
        os << ' ' << ev.extra_delay.usec();
        break;
      case FaultKind::kBurstOn:
        os << ' ' << ev.ge.loss_good << ' ' << ev.ge.loss_bad << ' '
           << ev.ge.p_good_to_bad << ' ' << ev.ge.p_bad_to_good << ' ' << ev.ge.seed;
        break;
      case FaultKind::kMiddleboxOn:
        os << ' ' << ev.middlebox.strip_capable << ' ' << ev.middlebox.strip_join << ' '
           << ev.middlebox.drop_unknown_syn << ' ' << ev.middlebox.mangle_dss << ' '
           << ev.middlebox.rewrite_seq << ' ' << ev.middlebox.seed;
        break;
      default:
        break;
    }
    os << '\n';
  }
  return os.str();
}

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::int64_t at_us = 0;
    std::string kind_s;
    std::string path_s;
    std::string dir_s;
    if (!(ls >> at_us >> kind_s >> path_s >> dir_s)) {
      throw std::runtime_error("FaultPlan: malformed line " + std::to_string(line_no) +
                               ": " + line);
    }
    if (at_us < 0) {
      throw std::runtime_error("FaultPlan: negative time at line " +
                               std::to_string(line_no));
    }
    FaultEvent ev;
    ev.at = Duration{at_us};
    ev.kind = parse_kind(kind_s);
    ev.path = parse_path(path_s);
    ev.dir = parse_dir(dir_s);
    switch (ev.kind) {
      case FaultKind::kRateCrash:
        if (!(ls >> ev.rate_mbps) || ev.rate_mbps <= 0.0) {
          throw std::runtime_error("FaultPlan: bad rate at line " +
                                   std::to_string(line_no));
        }
        break;
      case FaultKind::kDelaySpike: {
        std::int64_t extra_us = 0;
        if (!(ls >> extra_us) || extra_us < 0) {
          throw std::runtime_error("FaultPlan: bad delay at line " +
                                   std::to_string(line_no));
        }
        ev.extra_delay = Duration{extra_us};
        break;
      }
      case FaultKind::kBurstOn:
        if (!(ls >> ev.ge.loss_good >> ev.ge.loss_bad >> ev.ge.p_good_to_bad >>
              ev.ge.p_bad_to_good >> ev.ge.seed)) {
          throw std::runtime_error("FaultPlan: bad burst params at line " +
                                   std::to_string(line_no));
        }
        break;
      case FaultKind::kMiddleboxOn: {
        MiddleboxSpec& mb = ev.middlebox;
        if (!(ls >> mb.strip_capable >> mb.strip_join >> mb.drop_unknown_syn >>
              mb.mangle_dss >> mb.rewrite_seq >> mb.seed)) {
          throw std::runtime_error("FaultPlan: bad middlebox params at line " +
                                   std::to_string(line_no));
        }
        for (const double p : {mb.strip_capable, mb.strip_join, mb.drop_unknown_syn,
                               mb.mangle_dss, mb.rewrite_seq}) {
          if (p < 0.0 || p > 1.0) {
            throw std::runtime_error("FaultPlan: middlebox probability out of [0,1] at line " +
                                     std::to_string(line_no));
          }
        }
        break;
      }
      default:
        break;
    }
    std::string trailing;
    if (ls >> trailing) {
      throw std::runtime_error("FaultPlan: trailing junk at line " +
                               std::to_string(line_no) + ": " + trailing);
    }
    plan.add(ev);
  }
  return plan;
}

FaultPlan random_fault_plan(std::uint64_t seed, const RandomPlanOptions& options) {
  Rng rng{mix_seed(seed, "fault-plan")};
  FaultPlan plan;
  // max_events <= 0 requests a plan with no link/interface events at
  // all (middlebox-only soaks); legacy callers always pass >= 1, so the
  // draw stream they see is unchanged.
  const int n = options.max_events <= 0
                    ? 0
                    : static_cast<int>(rng.uniform_int(1, options.max_events));
  for (int i = 0; i < n; ++i) {
    const auto at = Duration{rng.uniform_int(0, options.horizon.usec())};
    const PathId path = rng.chance(0.5) ? PathId::kWifi : PathId::kLte;
    const LinkDir dir = rng.chance(0.5)
                            ? LinkDir::kBoth
                            : (rng.chance(0.5) ? LinkDir::kUp : LinkDir::kDown);
    // A restore event, when drawn, lands between the fault and the
    // horizon plus slack, so some faults heal inside the run and some
    // only after the watchdog has had to act.
    const auto restore_at = [&] {
      return at + Duration{rng.uniform_int(msec(50).usec(),
                                           (options.horizon - at).usec() +
                                               sec(2).usec())};
    };
    switch (rng.uniform_int(0, 5)) {
      case 0:
        plan.blackhole(at, path, dir);
        if (rng.chance(options.restore_probability)) plan.restore(restore_at(), path, dir);
        break;
      case 1:
        plan.soft_down(at, path);
        if (rng.chance(options.restore_probability)) plan.soft_up(restore_at(), path);
        break;
      case 2:
        plan.unplug(at, path);
        if (rng.chance(options.restore_probability)) plan.replug(restore_at(), path);
        break;
      case 3: {
        GeLossSpec ge;
        ge.loss_good = rng.uniform(0.0, 0.02);
        ge.loss_bad = rng.uniform(0.2, 0.8);
        ge.p_good_to_bad = rng.uniform(0.005, 0.05);
        ge.p_bad_to_good = rng.uniform(0.05, 0.3);
        ge.seed = rng.next_u64();
        plan.burst_loss(at, path, ge, dir);
        if (rng.chance(options.restore_probability)) {
          plan.burst_loss_off(restore_at(), path, dir);
        }
        break;
      }
      case 4:
        plan.rate_crash(at, path, rng.uniform(0.1, 1.0), dir);
        if (rng.chance(options.restore_probability)) {
          plan.rate_restore(restore_at(), path, dir);
        }
        break;
      case 5:
        plan.delay_spike(at, path, Duration{rng.uniform_int(msec(50).usec(),
                                                            msec(800).usec())},
                         dir);
        if (rng.chance(options.restore_probability)) {
          plan.delay_clear(restore_at(), path, dir);
        }
        break;
    }
  }
  // Middlebox adversary, gated on the knob so legacy (seed, options)
  // pairs keep producing byte-identical plans: no rng draw happens
  // unless the probability is nonzero.
  if (options.middlebox_probability > 0.0 &&
      rng.chance(options.middlebox_probability)) {
    // At t=0 so the handshake itself runs through it — the scenario the
    // negotiation state machine exists for.  Mid-run appearance is also
    // exercised (routing change while the flow is live).
    const auto at = rng.chance(0.5)
                        ? Duration{0}
                        : Duration{rng.uniform_int(0, options.horizon.usec())};
    const PathId path = rng.chance(0.5) ? PathId::kWifi : PathId::kLte;
    const LinkDir dir = rng.chance(0.5)
                            ? LinkDir::kBoth
                            : (rng.chance(0.5) ? LinkDir::kUp : LinkDir::kDown);
    MiddleboxSpec mb;
    mb.strip_capable = rng.chance(0.5) ? rng.uniform(0.3, 1.0) : 0.0;
    mb.strip_join = rng.chance(0.5) ? rng.uniform(0.3, 1.0) : 0.0;
    mb.drop_unknown_syn = rng.chance(0.25) ? rng.uniform(0.3, 1.0) : 0.0;
    mb.mangle_dss = rng.chance(0.35) ? rng.uniform(0.001, 0.05) : 0.0;
    mb.rewrite_seq = rng.chance(0.25) ? rng.uniform(0.3, 1.0) : 0.0;
    mb.seed = rng.next_u64();
    plan.middlebox_on(at, path, mb, dir);
    if (rng.chance(options.restore_probability)) {
      plan.middlebox_off(
          at + Duration{rng.uniform_int(msec(50).usec(),
                                        (options.horizon - at).usec() + sec(2).usec())},
          path, dir);
    }
  }
  return plan;
}

std::string corrupt_mahimahi(const std::string& text, TraceCorruption mode, Rng& rng) {
  switch (mode) {
    case TraceCorruption::kEmpty:
      return "";
    case TraceCorruption::kTruncate: {
      if (text.empty()) return text;
      const auto cut = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
      return text.substr(0, cut);
    }
    case TraceCorruption::kJunkLine: {
      std::string out = text;
      const auto pos = out.find('\n');
      const std::string junk = "not-a-timestamp\n";
      out.insert(pos == std::string::npos ? out.size() : pos + 1, junk);
      return out;
    }
    case TraceCorruption::kUnsort:
    case TraceCorruption::kNegative: {
      // Re-emit the lines with one victim rewritten.
      std::istringstream in(text);
      std::vector<std::string> lines;
      std::string line;
      while (std::getline(in, line)) lines.push_back(line);
      if (lines.empty()) return text;
      const auto victim = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(lines.size()) - 1));
      if (mode == TraceCorruption::kNegative) {
        lines[victim] = "-" + (lines[victim].empty() ? "1" : lines[victim]);
      } else {
        // Inflate an early timestamp so the sequence decreases after it.
        lines[victim] = "999999999";
        if (victim + 1 == lines.size()) lines.push_back("1");
      }
      std::ostringstream os;
      for (const auto& l : lines) os << l << '\n';
      return os.str();
    }
    case TraceCorruption::kBinary: {
      std::string out = text;
      if (out.empty()) out = "0\n";
      const auto start = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(out.size()) - 1));
      for (std::size_t i = start; i < out.size() && i < start + 8; ++i) {
        out[i] = static_cast<char>(0x80 + (rng.next_u64() & 0x7F));
      }
      return out;
    }
  }
  return text;
}

}  // namespace mn
