#include "faults/fault_injector.hpp"

#include "util/rng.hpp"

namespace mn {

void FaultInjector::set_target(PathId path, DuplexPath* duplex, NetworkInterface* iface) {
  Target& t = targets_[static_cast<std::size_t>(path)];
  t.duplex = duplex;
  t.iface = iface;
}

void FaultInjector::arm(const FaultPlan& plan) {
  pending_.reserve(pending_.size() + plan.size());
  armed_events_.reserve(armed_events_.size() + plan.size());
  for (const FaultEvent& ev : plan.events()) {
    // The event is parked in armed_events_ and the callback captures
    // only its index: a FaultEvent is too large for the simulator's
    // inline-callback buffer, and fault arming must not allocate.
    const std::size_t idx = armed_events_.size();
    armed_events_.push_back(ev);
    pending_.push_back(
        sim_.schedule_after(ev.at, [this, idx] { apply(armed_events_[idx]); }));
    if (auto* o = sim_.obs()) {
      o->count(o->ids().fault_armed);
      o->record(sim_.now(), obs::FlightEventType::kFaultArm,
                static_cast<std::uint8_t>(ev.kind), 0, (sim_.now() + ev.at).usec());
    }
  }
}

void FaultInjector::disarm() {
  for (const EventId id : pending_) sim_.cancel(id);
  pending_.clear();
  armed_events_.clear();
}

void FaultInjector::for_each_pipe(const Target& t, LinkDir dir,
                                  const std::function<void(OneWayPipe&)>& fn) {
  if (dir != LinkDir::kDown) fn(t.duplex->uplink());
  if (dir != LinkDir::kUp) fn(t.duplex->downlink());
}

void FaultInjector::apply(const FaultEvent& ev) {
  Target& t = targets_[static_cast<std::size_t>(ev.path)];
  const bool needs_iface = ev.kind == FaultKind::kSoftDown ||
                           ev.kind == FaultKind::kSoftUp ||
                           ev.kind == FaultKind::kUnplug || ev.kind == FaultKind::kReplug;
  if ((needs_iface && !t.iface) || (!needs_iface && !t.duplex)) {
    ++skipped_;
    if (auto* o = sim_.obs()) {
      o->count(o->ids().fault_skipped);
      o->record(sim_.now(), obs::FlightEventType::kFaultFire,
                static_cast<std::uint8_t>(ev.kind), /*arg32=skipped*/ 1, 0);
    }
    return;
  }
  switch (ev.kind) {
    case FaultKind::kBlackhole:
      for_each_pipe(t, ev.dir, [](OneWayPipe& p) { p.set_blackhole(true); });
      break;
    case FaultKind::kRestore:
      for_each_pipe(t, ev.dir, [](OneWayPipe& p) { p.set_blackhole(false); });
      break;
    case FaultKind::kSoftDown:
      t.iface->disable_soft();
      break;
    case FaultKind::kSoftUp:
      t.iface->enable();
      break;
    case FaultKind::kUnplug:
      t.iface->unplug();
      break;
    case FaultKind::kReplug:
      t.iface->plug_in();
      break;
    case FaultKind::kBurstOn:
      for_each_pipe(t, ev.dir, [&ev](OneWayPipe& p) { p.set_burst_loss(ev.ge); });
      break;
    case FaultKind::kBurstOff:
      for_each_pipe(t, ev.dir, [](OneWayPipe& p) { p.clear_burst_loss(); });
      break;
    case FaultKind::kRateCrash:
      for_each_pipe(t, ev.dir, [&ev](OneWayPipe& p) { p.set_rate_mbps(ev.rate_mbps); });
      break;
    case FaultKind::kRateRestore:
      for_each_pipe(t, ev.dir, [](OneWayPipe& p) { p.restore_rate(); });
      break;
    case FaultKind::kDelaySpike:
      for_each_pipe(t, ev.dir, [&ev](OneWayPipe& p) { p.set_delay_spike(ev.extra_delay); });
      break;
    case FaultKind::kDelayClear:
      for_each_pipe(t, ev.dir, [](OneWayPipe& p) { p.clear_delay_spike(); });
      break;
    case FaultKind::kMiddleboxOn:
      // Per-direction seed fork, mirroring LinkSpec::direction_spec: a
      // kBoth event must not give both pipes identical policy draws.
      if (ev.dir != LinkDir::kDown) {
        MiddleboxSpec s = ev.middlebox;
        s.seed = mix_seed(s.seed, "up");
        t.duplex->uplink().set_middlebox(s);
      }
      if (ev.dir != LinkDir::kUp) {
        MiddleboxSpec s = ev.middlebox;
        s.seed = mix_seed(s.seed, "down");
        t.duplex->downlink().set_middlebox(s);
      }
      break;
    case FaultKind::kMiddleboxOff:
      for_each_pipe(t, ev.dir, [](OneWayPipe& p) { p.clear_middlebox(); });
      break;
  }
  ++applied_;
  log_.push_back(ev.describe());
  if (auto* o = sim_.obs()) {
    o->count(o->ids().fault_applied);
    o->record(sim_.now(), obs::FlightEventType::kFaultFire,
              static_cast<std::uint8_t>(ev.kind), 0, 0);
  }
}

}  // namespace mn
