// FaultInjector: executes a FaultPlan against live network components.
//
// The injector is bound to up to two duplex paths (indexed by PathId)
// and optionally their client-side NetworkInterfaces, then armed with a
// plan: every event is scheduled on the simulator relative to the arm
// time and applied through the components' fault hooks when it fires.
// Events whose target is not registered (e.g. an interface event in a
// single-path experiment with no NetworkInterface) are counted as
// skipped, not errors — one plan can drive many experiment shapes.
//
// disarm() cancels everything still pending; the chaos-soak harness
// calls it before draining the simulator so a plan with events beyond
// the flow's lifetime cannot leak queue entries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faults/fault_plan.hpp"
#include "net/path.hpp"
#include "sim/simulator.hpp"

namespace mn {

class FaultInjector {
 public:
  explicit FaultInjector(Simulator& sim) : sim_(sim) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;
  ~FaultInjector() { disarm(); }

  /// Register the components behind `path`.  `iface` may be null when
  /// the experiment has no interface layer (plain DuplexPath flows).
  void set_target(PathId path, DuplexPath* duplex, NetworkInterface* iface = nullptr);

  /// Schedule every event of `plan` relative to sim.now().  May be
  /// called repeatedly (plans accumulate).
  void arm(const FaultPlan& plan);
  /// Cancel all not-yet-fired events.
  void disarm();

  /// Apply one event immediately (also the per-event execution path).
  void apply(const FaultEvent& ev);

  [[nodiscard]] int events_applied() const { return applied_; }
  [[nodiscard]] int events_skipped() const { return skipped_; }
  /// Human-readable record of every applied event (test diagnostics).
  [[nodiscard]] const std::vector<std::string>& log() const { return log_; }

 private:
  struct Target {
    DuplexPath* duplex = nullptr;
    NetworkInterface* iface = nullptr;
  };

  void for_each_pipe(const Target& t, LinkDir dir, const std::function<void(OneWayPipe&)>& fn);

  Simulator& sim_;
  Target targets_[2];
  std::vector<EventId> pending_;
  std::vector<FaultEvent> armed_events_;  // owned copies the callbacks index into
  int applied_ = 0;
  int skipped_ = 0;
  std::vector<std::string> log_;
};

}  // namespace mn
