// FaultPlan: a deterministic, serializable schedule of timed fault
// events for the multi-homed stack.
//
// A plan is an ordered list of (time, kind, target, params) entries.
// Times are relative to the moment a FaultInjector arms the plan, so the
// same plan can be replayed against any experiment.  Plans serialize to
// a line-oriented text format (one event per line, microsecond times)
// and parse back losslessly — the campaign and the chaos-soak harness
// persist them for reproduction of failing seeds.
//
// The taxonomy maps to the paper's failure experiments (Sections
// 3.5-3.6): kBlackhole is the Figure-15g silent stall, kSoftDown/kSoftUp
// the iproute "multipath off/on", kUnplug/kReplug the physical removal,
// and the burst/rate/delay events the path-degradation regimes that
// dominate real multi-path deployments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mptcp/mptcp.hpp"
#include "net/links.hpp"
#include "net/middlebox.hpp"
#include "util/rng.hpp"

namespace mn {

enum class FaultKind {
  kBlackhole,   // OneWayPipe: packets vanish silently
  kRestore,     // OneWayPipe: lift a blackhole
  kSoftDown,    // NetworkInterface::disable_soft (notifies the endpoint)
  kSoftUp,      // NetworkInterface::enable
  kUnplug,      // NetworkInterface::unplug (silent unless carrier loss reported)
  kReplug,      // NetworkInterface::plug_in
  kBurstOn,     // Gilbert-Elliott burst loss on (params in `ge`)
  kBurstOff,    // burst loss off
  kRateCrash,   // RateLink rate -> `rate_mbps` (no-op on trace links)
  kRateRestore, // back to the spec rate
  kDelaySpike,  // extra one-way delay of `extra_delay`
  kDelayClear,  // back to the spec delay
  kMiddleboxOn,   // option-mangling middlebox appears (params in `middlebox`)
  kMiddleboxOff,  // middlebox removed (routing change)
};

[[nodiscard]] std::string to_string(FaultKind k);

/// Which direction(s) of the target path a link-level fault applies to.
enum class LinkDir { kUp, kDown, kBoth };

[[nodiscard]] std::string to_string(LinkDir d);

struct FaultEvent {
  Duration at{0};      // relative to FaultInjector::arm()
  FaultKind kind = FaultKind::kBlackhole;
  PathId path = PathId::kWifi;
  LinkDir dir = LinkDir::kBoth;  // ignored by interface events
  double rate_mbps = 0.0;        // kRateCrash
  Duration extra_delay{0};       // kDelaySpike
  GeLossSpec ge;                 // kBurstOn
  MiddleboxSpec middlebox;       // kMiddleboxOn

  [[nodiscard]] std::string describe() const;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Append an event; the plan keeps itself sorted by time (stable for
  /// equal times, preserving insertion order).
  FaultPlan& add(FaultEvent ev);

  // Convenience builders for the common scenarios.
  FaultPlan& blackhole(Duration at, PathId path, LinkDir dir = LinkDir::kBoth);
  FaultPlan& restore(Duration at, PathId path, LinkDir dir = LinkDir::kBoth);
  FaultPlan& soft_down(Duration at, PathId path);
  FaultPlan& soft_up(Duration at, PathId path);
  FaultPlan& unplug(Duration at, PathId path);
  FaultPlan& replug(Duration at, PathId path);
  FaultPlan& burst_loss(Duration at, PathId path, const GeLossSpec& ge,
                        LinkDir dir = LinkDir::kBoth);
  FaultPlan& burst_loss_off(Duration at, PathId path, LinkDir dir = LinkDir::kBoth);
  FaultPlan& rate_crash(Duration at, PathId path, double mbps,
                        LinkDir dir = LinkDir::kBoth);
  FaultPlan& rate_restore(Duration at, PathId path, LinkDir dir = LinkDir::kBoth);
  FaultPlan& delay_spike(Duration at, PathId path, Duration extra,
                         LinkDir dir = LinkDir::kBoth);
  FaultPlan& delay_clear(Duration at, PathId path, LinkDir dir = LinkDir::kBoth);
  FaultPlan& middlebox_on(Duration at, PathId path, const MiddleboxSpec& spec,
                          LinkDir dir = LinkDir::kBoth);
  FaultPlan& middlebox_off(Duration at, PathId path, LinkDir dir = LinkDir::kBoth);

  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// One event per line: "<at_us> <kind> <path> <dir> [params...]".
  /// Round-trips exactly through parse().
  [[nodiscard]] std::string serialize() const;
  /// Throws std::runtime_error on malformed input (bad kind, junk
  /// fields, negative times) — corrupt plan files must fail loudly,
  /// never half-apply.
  [[nodiscard]] static FaultPlan parse(const std::string& text);

 private:
  std::vector<FaultEvent> events_;
};

/// Knobs for random_fault_plan (the chaos-soak input distribution).
struct RandomPlanOptions {
  Duration horizon = sec(8);  // events land in [0, horizon]
  int max_events = 6;         // 1..max_events events per plan; <= 0 =
                              // no link/interface events (middlebox-only)
  /// Probability that a degrading event gets a matching restore later in
  /// the plan; unrestored faults exercise the watchdog/abort paths.
  double restore_probability = 0.7;
  /// Probability that the plan additionally carries an option-mangling
  /// middlebox (strip/drop/mangle knobs drawn per plan).  Default 0 so
  /// legacy seeds reproduce byte-identical plans; the draw is gated on
  /// the knob, never consumed when it is off.
  double middlebox_probability = 0.0;
};

/// Deterministic random plan: same (seed, options) -> same plan.
[[nodiscard]] FaultPlan random_fault_plan(std::uint64_t seed,
                                          const RandomPlanOptions& options = {});

/// Ways to corrupt a Mahimahi trace file mid-stream (the DeliveryTrace
/// loading paths must reject all of them with an exception rather than
/// crash, hang, or construct a bogus link).
enum class TraceCorruption {
  kTruncate,   // cut the text at a random byte
  kUnsort,     // swap two timestamps out of order
  kJunkLine,   // splice a non-numeric line into the middle
  kNegative,   // negate a timestamp
  kEmpty,      // replace the whole trace with nothing
  kBinary,     // overwrite a span with non-ASCII bytes
};

/// Apply `mode` to Mahimahi trace text.  Deterministic in `rng`.
[[nodiscard]] std::string corrupt_mahimahi(const std::string& text, TraceCorruption mode,
                                           Rng& rng);

}  // namespace mn
