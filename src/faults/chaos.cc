#include "faults/chaos.hpp"

#include <algorithm>
#include <fstream>
#include <memory>
#include <stdexcept>

#include "faults/fault_injector.hpp"
#include "net/trace_gen.hpp"
#include "obs/obs.hpp"
#include "store/codec.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace mn {
namespace {

constexpr std::uint8_t kChaosReportBlobVersion = 2;  // v2: negotiation fields

/// Best-effort black-box file: reporting must never throw.
void write_flight_dump(const ChaosRunReport& report, const std::string& dir) {
  if (report.flight_dump.empty() || dir.empty()) return;
  const std::string path = dir + "/chaos_flight_" + std::to_string(report.seed) + ".mnfr";
  std::ofstream out(path, std::ios::binary);
  if (out) out << report.flight_dump;
}

/// A random emulated access link: fixed-rate or trace-driven, optional
/// random loss, varied queue depth — the whole space the real campaign
/// links live in.
LinkSpec random_link(Rng& rng, bool lte) {
  LinkSpec s;
  s.one_way_delay = msec(rng.uniform_int(5, lte ? 60 : 30));
  s.queue_packets = static_cast<int>(rng.uniform_int(16, 200));
  s.loss_rate = rng.chance(0.5) ? rng.uniform(0.0, 0.02) : 0.0;
  s.loss_seed = rng.next_u64();
  if (rng.chance(0.3)) {
    const Duration period = sec(2);
    if (lte) {
      TwoStateSpec ts;
      ts.good_mbps = rng.uniform(5.0, 30.0);
      ts.bad_mbps = rng.uniform(0.5, 3.0);
      ts.mean_dwell = msec(rng.uniform_int(100, 600));
      s.trace = std::make_shared<DeliveryTrace>(two_state_trace(ts, period, rng));
    } else {
      s.trace = std::make_shared<DeliveryTrace>(poisson_trace(rng.uniform(2.0, 30.0), period, rng));
    }
  } else {
    s.rate_mbps = rng.uniform(1.0, 50.0);
  }
  return s;
}

MpNetworkSetup random_setup(Rng& rng) {
  MpNetworkSetup setup;
  setup.wifi_up = random_link(rng, /*lte=*/false);
  setup.wifi_down = random_link(rng, /*lte=*/false);
  setup.lte_up = random_link(rng, /*lte=*/true);
  setup.lte_down = random_link(rng, /*lte=*/true);
  return setup;
}

MptcpSpec random_spec(Rng& rng) {
  MptcpSpec spec;
  spec.primary = rng.chance(0.5) ? PathId::kWifi : PathId::kLte;
  switch (rng.uniform_int(0, 2)) {
    case 0: spec.cc = CcAlgo::kDecoupled; break;
    case 1: spec.cc = CcAlgo::kCoupled; break;
    default: spec.cc = CcAlgo::kOlia; break;
  }
  switch (rng.uniform_int(0, 2)) {
    case 0: spec.mode = MpMode::kFull; break;
    case 1: spec.mode = MpMode::kBackup; break;
    default: spec.mode = MpMode::kSinglePath; break;
  }
  spec.scheduler = static_cast<MpScheduler>(rng.uniform_int(0, kMpSchedulerCount - 1));
  return spec;
}

void check_counters(ChaosRunReport& report, DuplexPath& path, const char* name) {
  if (!path.uplink().counters_consistent()) {
    report.violations.push_back(std::string{"stage counters inconsistent: "} + name + " uplink");
  }
  if (!path.downlink().counters_consistent()) {
    report.violations.push_back(std::string{"stage counters inconsistent: "} + name +
                                " downlink");
  }
}

}  // namespace

ChaosRunReport run_chaos_run(std::uint64_t seed, const ChaosSoakOptions& options) {
  ChaosRunReport report;
  report.seed = seed;

  Rng rng{mix_seed(seed, "chaos-run")};
  const MpNetworkSetup setup = random_setup(rng);
  const MptcpSpec spec = random_spec(rng);
  const Direction dir = rng.chance(0.5) ? Direction::kDownload : Direction::kUpload;
  report.bytes_requested = rng.uniform_int(options.min_bytes, options.max_bytes);
  const FaultPlan plan = random_fault_plan(rng.next_u64(), options.plan);
  report.plan_text = plan.serialize();

  // Per-run observability shard: metrics always, flight recorder only
  // when the caller sized one.  Declared before the testbed so nothing
  // records into a dead hub during teardown.
  obs::ObsHub hub{options.flight_recorder_events};

  Simulator sim;
  sim.set_obs(&hub);
  MptcpTestbed bed{sim, setup, spec};
  FaultInjector injector{sim};
  injector.set_target(PathId::kWifi, &bed.path(PathId::kWifi), &bed.iface(PathId::kWifi));
  injector.set_target(PathId::kLte, &bed.path(PathId::kLte), &bed.iface(PathId::kLte));
  injector.arm(plan);

  bed.start_transfer(report.bytes_requested, dir);
  const WatchdogResult watchdog = bed.run_with_watchdog(options.timeout, options.stall_limit);
  report.completed = watchdog.completed;
  report.failure_reason = watchdog.reason;
  report.max_stall = watchdog.max_stall;
  report.faults_applied = injector.events_applied();
  report.faults_skipped = injector.events_skipped();
  report.negotiated_mp = bed.client().negotiated_mp();
  report.achieved_mp = bed.client().achieved_mp();
  report.fallback_reason = bed.client().fallback_reason();
  if (report.fallback_reason.empty()) {
    report.fallback_reason = bed.server().fallback_reason();
  }

  // Invariant 3: the watchdog bound held.
  if (watchdog.max_stall > options.stall_limit) {
    report.violations.push_back("stall " + std::to_string(watchdog.max_stall.millis()) +
                                " ms exceeds watchdog bound");
  }

  // Invariant 1: byte conservation on both ends, in both roles.
  MptcpAgent& sender = (dir == Direction::kUpload) ? bed.client() : bed.server();
  MptcpAgent& receiver = (dir == Direction::kUpload) ? bed.server() : bed.client();
  report.bytes_observed = receiver.data_delivered();
  if (sender.data_acked() > report.bytes_requested) {
    report.violations.push_back("sender acked more than it sent");
  }
  if (receiver.data_delivered() > report.bytes_requested) {
    report.violations.push_back("receiver delivered more than was sent");
  }
  if (receiver.data_delivered_in_order() > receiver.data_delivered()) {
    report.violations.push_back("in-order delivery exceeds total delivery");
  }
  // A completed run must have delivered everything — except bytes the
  // receiver provably discarded because a middlebox destroyed their DSS
  // mapping and the loss signal (MP_FAIL) raced the close; those are
  // accounted, not silently lost.
  if (report.completed && receiver.data_delivered_in_order() +
                                  receiver.mangled_discarded() <
                              report.bytes_requested) {
    report.violations.push_back("completed run delivered less than requested");
  }

  // Invariant 2: quiesce and drain — nothing may keep the queue alive.
  bed.shutdown();
  injector.disarm();
  sim.run_until_idle();
  if (sim.pending_events() != 0) {
    report.violations.push_back("event-queue leak: " + std::to_string(sim.pending_events()) +
                                " pending after idle");
  }

  // Invariant 4: per-stage conservation, checked after the drain so
  // queued packets have either been delivered or dropped.
  check_counters(report, bed.path(PathId::kWifi), "wifi");
  check_counters(report, bed.path(PathId::kLte), "lte");

  report.metrics = hub.snapshot();
  // Black box: when the run aborted or broke an invariant, keep the last
  // flight-recorder events with the report (and on disk if asked).
  if (hub.flight() && (!report.completed || !report.ok())) {
    report.flight_dump = hub.flight()->serialize();
    write_flight_dump(report, options.flight_dump_dir);
  }
  return report;
}

store::ScenarioKey chaos_scenario_key(std::uint64_t seed, const ChaosSoakOptions& options) {
  store::KeyBuilder key{"chaos-run"};
  key.u64(seed)
      .i64(options.min_bytes)
      .i64(options.max_bytes)
      .i64(options.timeout.usec())
      .i64(options.stall_limit.usec())
      .i64(options.plan.horizon.usec())
      .u32(static_cast<std::uint32_t>(options.plan.max_events))
      .f64(options.plan.restore_probability)
      .f64(options.plan.middlebox_probability)
      .u64(options.flight_recorder_events);
  return key.finish();
}

std::string serialize_chaos_report(const ChaosRunReport& report) {
  store::BinWriter w;
  w.put_u8(kChaosReportBlobVersion);
  w.put_u64(report.seed);
  w.put_bool(report.completed);
  w.put_str(report.failure_reason);
  w.put_i64(report.max_stall.usec());
  w.put_u32(static_cast<std::uint32_t>(report.faults_applied));
  w.put_u32(static_cast<std::uint32_t>(report.faults_skipped));
  w.put_i64(report.bytes_requested);
  w.put_i64(report.bytes_observed);
  w.put_str(report.plan_text);
  w.put_bool(report.negotiated_mp);
  w.put_bool(report.achieved_mp);
  w.put_str(report.fallback_reason);
  w.put_u32(static_cast<std::uint32_t>(report.violations.size()));
  for (const std::string& v : report.violations) w.put_str(v);
  store::put_metrics_snapshot(w, report.metrics);
  w.put_str(report.flight_dump);
  return w.take();
}

ChaosRunReport parse_chaos_report(std::string_view blob) {
  store::BinReader r{blob};
  if (r.get_u8() != kChaosReportBlobVersion) {
    throw std::runtime_error("chaos report blob: unknown layout version");
  }
  ChaosRunReport report;
  report.seed = r.get_u64();
  report.completed = r.get_bool();
  report.failure_reason = r.get_str();
  report.max_stall = Duration{r.get_i64()};
  report.faults_applied = static_cast<int>(r.get_u32());
  report.faults_skipped = static_cast<int>(r.get_u32());
  report.bytes_requested = r.get_i64();
  report.bytes_observed = r.get_i64();
  report.plan_text = r.get_str();
  report.negotiated_mp = r.get_bool();
  report.achieved_mp = r.get_bool();
  report.fallback_reason = r.get_str();
  const std::uint32_t violations = r.get_u32();
  if (violations > r.remaining() / 4) throw std::runtime_error("store payload truncated");
  report.violations.reserve(violations);
  for (std::uint32_t i = 0; i < violations; ++i) report.violations.push_back(r.get_str());
  report.metrics = store::get_metrics_snapshot(r);
  report.flight_dump = r.get_str();
  r.expect_done();
  return report;
}

ChaosSoakSummary run_chaos_soak(const ChaosSoakOptions& options) {
  // Parallel execute phase: each run is seeded independently and owns
  // all of its state; the serial reduction below keeps the summary (and
  // the order of violation reports) identical at any worker count.
  const std::size_t n = options.runs > 0 ? static_cast<std::size_t>(options.runs) : 0;
  std::vector<ChaosRunReport> reports;
  if (options.store == nullptr) {
    reports = parallel_map(n, options.parallelism, [&](std::size_t i) {
      return run_chaos_run(options.seed + static_cast<std::uint64_t>(i), options);
    });
  } else {
    // Cache-aware soak: hits replay their report (and re-write their
    // flight-dump black box), only the misses execute.
    std::vector<std::uint64_t> seeds(n);
    std::vector<store::ScenarioKey> keys(n);
    reports.resize(n);
    std::vector<std::size_t> missing;
    for (std::size_t i = 0; i < n; ++i) {
      seeds[i] = options.seed + static_cast<std::uint64_t>(i);
      keys[i] = chaos_scenario_key(seeds[i], options);
    }
    const auto blobs = options.store->lookup_many(keys);
    for (std::size_t i = 0; i < n; ++i) {
      if (blobs[i]) {
        try {
          reports[i] = parse_chaos_report(*blobs[i]);
          write_flight_dump(reports[i], options.flight_dump_dir);
          continue;
        } catch (const std::exception&) {
          // Undecodable blob = miss; superseded by the fresh run below.
        }
      }
      missing.push_back(i);
    }
    std::vector<ChaosRunReport> fresh =
        parallel_map(missing.size(), options.parallelism,
                     [&](std::size_t j) { return run_chaos_run(seeds[missing[j]], options); });
    for (std::size_t j = 0; j < missing.size(); ++j) {
      options.store->put(keys[missing[j]], serialize_chaos_report(fresh[j]));
      reports[missing[j]] = std::move(fresh[j]);
    }
  }
  ChaosSoakSummary summary;
  for (const ChaosRunReport& report : reports) {
    ++summary.runs;
    if (report.completed) {
      ++summary.completed;
    } else {
      ++summary.aborted;
    }
    summary.max_stall = std::max(summary.max_stall, report.max_stall);
    if (!report.ok()) summary.violating.push_back(report);
  }
  return summary;
}

}  // namespace mn
