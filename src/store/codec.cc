#include "store/codec.hpp"

#include <bit>
#include <stdexcept>

namespace mn::store {

void BinWriter::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>(v >> (i * 8)));
}

void BinWriter::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>(v >> (i * 8)));
}

void BinWriter::put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

void BinWriter::put_str(std::string_view s) {
  if (s.size() > 0xFFFFFFFFull) throw std::length_error("store codec: string too long");
  put_u32(static_cast<std::uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

void BinReader::need(std::size_t n) const {
  if (in_.size() - pos_ < n) throw std::runtime_error("store payload truncated");
}

std::uint8_t BinReader::get_u8() {
  need(1);
  return static_cast<std::uint8_t>(in_[pos_++]);
}

std::uint32_t BinReader::get_u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in_[pos_ + static_cast<std::size_t>(i)]))
         << (i * 8);
  }
  pos_ += 4;
  return v;
}

std::uint64_t BinReader::get_u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in_[pos_ + static_cast<std::size_t>(i)]))
         << (i * 8);
  }
  pos_ += 8;
  return v;
}

double BinReader::get_f64() { return std::bit_cast<double>(get_u64()); }

std::string BinReader::get_str() {
  const std::uint32_t len = get_u32();
  need(len);
  std::string s{in_.substr(pos_, len)};
  pos_ += len;
  return s;
}

void BinReader::expect_done() const {
  if (!done()) throw std::runtime_error("store payload has trailing bytes");
}

void put_metrics_snapshot(BinWriter& w, const obs::MetricsSnapshot& snap) {
  w.put_u32(static_cast<std::uint32_t>(snap.entries.size()));
  for (const obs::SnapshotEntry& e : snap.entries) {
    w.put_str(e.name);
    w.put_u8(static_cast<std::uint8_t>(e.kind));
    w.put_i64(e.value);
    w.put_u64(e.hist.count);
    w.put_i64(e.hist.sum);
    w.put_u32(static_cast<std::uint32_t>(e.hist.buckets.size()));
    for (const auto& [index, count] : e.hist.buckets) {
      w.put_u32(index);
      w.put_u64(count);
    }
  }
}

obs::MetricsSnapshot get_metrics_snapshot(BinReader& r) {
  obs::MetricsSnapshot snap;
  const std::uint32_t n = r.get_u32();
  // Corrupt counts must fail as "truncated", not as an OOM reserve: each
  // entry needs at least 33 encoded bytes, each bucket 12.
  if (n > r.remaining() / 33) throw std::runtime_error("store payload truncated");
  snap.entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    obs::SnapshotEntry e;
    e.name = r.get_str();
    const std::uint8_t kind = r.get_u8();
    if (kind > static_cast<std::uint8_t>(obs::MetricKind::kHistogram)) {
      throw std::runtime_error("store payload: bad metric kind");
    }
    e.kind = static_cast<obs::MetricKind>(kind);
    e.value = r.get_i64();
    e.hist.count = r.get_u64();
    e.hist.sum = r.get_i64();
    const std::uint32_t buckets = r.get_u32();
    if (buckets > r.remaining() / 12) throw std::runtime_error("store payload truncated");
    e.hist.buckets.reserve(buckets);
    for (std::uint32_t b = 0; b < buckets; ++b) {
      const std::uint32_t index = r.get_u32();
      const std::uint64_t count = r.get_u64();
      e.hist.buckets.emplace_back(index, count);
    }
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

}  // namespace mn::store
