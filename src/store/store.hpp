// The store interface campaign / sweep / chaos consume.
//
// A Store memoizes deterministic work units: lookup() before executing,
// put() after.  Two implementations exist — the process-local, durable
// RunStore (run_store.hpp) and the fleet-shared RemoteStore client
// (remote/client.hpp) that forwards both calls over the MNSP1 wire
// protocol to a store server.
//
// The contract every implementation must honour is the degradation
// discipline from PR 5: a store may *lose* work (miss where a record
// exists, drop a put) but may never invent, corrupt, or fail a run —
// callers treat every anomaly as a cache miss and re-execute, so output
// stays byte-identical whatever the cache tier is doing.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "store/key.hpp"

namespace mn::store {

class Store {
 public:
  virtual ~Store() = default;

  /// Cached blob for `key`, or nullopt.  Must be safe to call from
  /// multiple threads (the campaign execute phase is parallel).
  [[nodiscard]] virtual std::optional<std::string> lookup(const ScenarioKey& key) = 0;

  /// Insert/overwrite `key`.  Implementations may drop the write on
  /// error (degradation), but must not throw for transport failures.
  virtual void put(const ScenarioKey& key, std::string_view blob) = 0;

  /// Batched lookup, one result per key in order.  The default loops
  /// over lookup(); RemoteStore overrides it with a single MULTI_GET
  /// round trip so a 10^3-run campaign does not pay 10^3 RTTs.
  [[nodiscard]] virtual std::vector<std::optional<std::string>> lookup_many(
      const std::vector<ScenarioKey>& keys) {
    std::vector<std::optional<std::string>> out;
    out.reserve(keys.size());
    for (const ScenarioKey& k : keys) out.push_back(lookup(k));
    return out;
  }
};

}  // namespace mn::store
