// Little-endian binary payload codec for store blobs.
//
// Every record the store persists (campaign RunRecords, sweep points,
// chaos reports) is encoded with these two classes so the bytes are
// identical on every platform: explicit widths, explicit byte order,
// length-prefixed strings, doubles as their IEEE-754 bit patterns
// (bit-exact round trip — the golden byte-identity tests depend on it).
//
// BinReader is bounds-checked everywhere and throws std::runtime_error
// on any overrun or malformed length: a corrupt or truncated payload is
// a clean parse failure (the caller treats it as a cache miss), never
// undefined behaviour.  The corruption suite runs these paths under
// ASan/UBSan.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace mn::store {

class BinWriter {
 public:
  void put_u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_f64(double v);
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  /// u32 length prefix + raw bytes.
  void put_str(std::string_view s);

  [[nodiscard]] const std::string& bytes() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

class BinReader {
 public:
  explicit BinReader(std::string_view bytes) : in_(bytes) {}

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  [[nodiscard]] double get_f64();
  [[nodiscard]] bool get_bool() { return get_u8() != 0; }
  [[nodiscard]] std::string get_str();

  [[nodiscard]] std::size_t remaining() const { return in_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == in_.size(); }
  /// Throws unless every byte was consumed — trailing junk means the
  /// payload is not what the reader thinks it is.
  void expect_done() const;

 private:
  void need(std::size_t n) const;

  std::string_view in_;
  std::size_t pos_ = 0;
};

/// obs::MetricsSnapshot codec, shared by every record type that carries
/// per-run metrics.  Round-trips the snapshot exactly: entry order,
/// names, kinds, values, and sparse histogram buckets.
void put_metrics_snapshot(BinWriter& w, const obs::MetricsSnapshot& snap);
[[nodiscard]] obs::MetricsSnapshot get_metrics_snapshot(BinReader& r);

}  // namespace mn::store
