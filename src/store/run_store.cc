#include "store/run_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

namespace mn::store {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kSegmentPrefix = "seg-";
constexpr std::string_view kSegmentSuffix = ".mnrs";

/// seg-<number>.mnrs -> number, or nullopt for foreign files.
std::optional<std::uint64_t> segment_number(const std::string& filename) {
  if (filename.size() <= kSegmentPrefix.size() + kSegmentSuffix.size()) return std::nullopt;
  if (filename.rfind(kSegmentPrefix, 0) != 0) return std::nullopt;
  if (filename.substr(filename.size() - kSegmentSuffix.size()) != kSegmentSuffix) {
    return std::nullopt;
  }
  const std::string digits = filename.substr(
      kSegmentPrefix.size(), filename.size() - kSegmentPrefix.size() - kSegmentSuffix.size());
  if (digits.empty()) return std::nullopt;
  std::uint64_t n = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    n = n * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return n;
}

std::string segment_path_in(const std::string& dir, std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s%06llu%s", std::string{kSegmentPrefix}.c_str(),
                static_cast<unsigned long long>(index), std::string{kSegmentSuffix}.c_str());
  return (fs::path(dir) / buf).string();
}

}  // namespace

std::string claim_next_segment(const std::string& dir) {
  // Start past the highest existing number, then O_EXCL upward: the
  // kernel arbitrates concurrent claimers, no lock needed.
  std::uint64_t next = 1;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    if (const auto n = segment_number(entry.path().filename().string())) {
      if (*n >= next) next = *n + 1;
    }
  }
  for (;; ++next) {
    const std::string path = segment_path_in(dir, next);
    const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC, 0644);
    if (fd >= 0) {
      ::close(fd);
      return path;
    }
    if (errno != EEXIST) {
      throw std::runtime_error("store: cannot claim segment " + path + ": " +
                               std::strerror(errno));
    }
  }
}

std::vector<std::string> list_segment_files(const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> numbered;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (const auto n = segment_number(name)) numbered.emplace_back(*n, entry.path().string());
  }
  std::sort(numbered.begin(), numbered.end());
  std::vector<std::string> out;
  out.reserve(numbered.size());
  for (auto& [n, path] : numbered) out.push_back(std::move(path));
  return out;
}

RunStore::RunStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) throw std::runtime_error("store: cannot create directory " + dir_);
  // Shared hold for our lifetime: appenders/loaders coexist; a compactor
  // (exclusive) can never delete files while we load or append.
  dir_lock_ = FileLock::shared(store_lock_path(dir_));
  std::lock_guard<std::mutex> lock(mu_);
  load_locked();
}

RunStore::~RunStore() {
  try {
    seal_active();
  } catch (...) {
    // Best effort: an unsealed active segment still reads back fine.
  }
}

void RunStore::load_locked() {
  for (const std::string& path : list_segment_files(dir_)) {
    SegmentReadResult seg = read_segment(path);
    if (seg.version_mismatch) {
      ++stats_.segments_skipped;
      continue;
    }
    ++stats_.segments_loaded;
    stats_.torn_frames += seg.torn_frames;
    for (SegmentEntry& e : seg.entries) {
      map_[e.key] = std::move(e.blob);  // later frames supersede earlier
    }
  }
  stats_.entries = map_.size();
}

void RunStore::open_writer_locked() {
  writer_ = std::make_unique<SegmentWriter>(claim_next_segment(dir_));
}

std::optional<std::string> RunStore::lookup(const ScenarioKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void RunStore::put(const ScenarioKey& key, std::string_view blob) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!writer_) open_writer_locked();
  stats_.bytes_written += writer_->append(key, blob);
  ++stats_.puts;
  map_[key] = std::string{blob};
  stats_.entries = map_.size();
}

bool RunStore::contains(const ScenarioKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.find(key) != map_.end();
}

std::size_t RunStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

std::vector<std::pair<ScenarioKey, std::string>> RunStore::sorted_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<ScenarioKey, std::string>> out(map_.begin(), map_.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void RunStore::seal_active() {
  std::lock_guard<std::mutex> lock(mu_);
  if (writer_) {
    writer_->seal();
    writer_.reset();
  }
}

void RunStore::compact() {
  std::lock_guard<std::mutex> lock(mu_);
  if (writer_) {
    writer_->seal();
    writer_.reset();
  }
  // Exclusive directory ownership for the census + rewrite + delete.
  // Our own shared hold is released first — flock is per-description,
  // so we would otherwise wait on ourselves; it is restored (and the
  // store left untouched) on every exit path, including StoreBusyError.
  dir_lock_.release();
  FileLock excl;
  try {
    excl = FileLock::exclusive(store_lock_path(dir_));
  } catch (...) {
    dir_lock_ = FileLock::shared(store_lock_path(dir_));
    throw;
  }
  try {
    // Census from DISK, not from map_: another process may have appended
    // records this handle never loaded, and every put of our own is
    // already flushed to our segments — so the on-disk state is the
    // complete live set.  Refused segments (foreign format versions)
    // contribute nothing and are left on disk untouched.
    const std::vector<std::string> old_files = list_segment_files(dir_);
    std::vector<std::string> deletable;
    std::unordered_map<ScenarioKey, std::string, ScenarioKeyHash> merged;
    for (const std::string& path : old_files) {
      SegmentReadResult seg = read_segment(path);
      if (seg.version_mismatch) continue;
      deletable.push_back(path);
      stats_.torn_frames += seg.torn_frames;
      for (SegmentEntry& e : seg.entries) merged[e.key] = std::move(e.blob);
    }
    // Deterministic compact: live entries in key order, one sealed segment.
    std::vector<std::pair<ScenarioKey, std::string>> live(merged.begin(), merged.end());
    std::sort(live.begin(), live.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    {
      SegmentWriter writer{claim_next_segment(dir_)};
      for (const auto& [key, blob] : live) stats_.bytes_written += writer.append(key, blob);
      writer.seal();
    }
    for (const std::string& path : deletable) {
      std::error_code ec;
      fs::remove(path, ec);  // best effort: a leftover is re-read, not fatal
    }
    map_ = std::move(merged);
    stats_.entries = map_.size();
  } catch (...) {
    excl.release();
    dir_lock_ = FileLock::shared(store_lock_path(dir_));
    throw;
  }
  excl.release();
  dir_lock_ = FileLock::shared(store_lock_path(dir_));
}

RunStore::Stats RunStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

obs::MetricsSnapshot RunStore::metrics_snapshot() const {
  const Stats s = stats();
  // A throwaway registry keeps the export format identical to every
  // other metric source (sorted names, same text exposition).
  obs::MetricsRegistry reg;
  reg.add(reg.counter("store.hits"), static_cast<std::int64_t>(s.hits));
  reg.add(reg.counter("store.misses"), static_cast<std::int64_t>(s.misses));
  reg.add(reg.counter("store.puts"), static_cast<std::int64_t>(s.puts));
  reg.add(reg.counter("store.bytes_written"), static_cast<std::int64_t>(s.bytes_written));
  reg.add(reg.counter("store.torn_frames"), static_cast<std::int64_t>(s.torn_frames));
  reg.set(reg.gauge("store.entries"), static_cast<std::int64_t>(s.entries));
  reg.set(reg.gauge("store.segments"),
          static_cast<std::int64_t>(s.segments_loaded + (writer_ ? 1 : 0)));
  return reg.snapshot();
}

VerifyReport verify_store(const std::string& dir) {
  VerifyReport report;
  for (const std::string& path : list_segment_files(dir)) {
    const SegmentReadResult seg = read_segment(path);
    ++report.segments;
    SegmentVerify sv;
    sv.file = fs::path(path).filename().string();
    sv.records = seg.entries.size();
    sv.torn_frames = seg.torn_frames;
    sv.refused = seg.version_mismatch;
    sv.sealed = seg.sealed;
    sv.note = seg.note;
    report.per_segment.push_back(sv);
    std::string line = sv.file + ": ";
    if (seg.version_mismatch) {
      ++report.version_mismatches;
      line += "REFUSED (" + seg.note + ")";
    } else {
      report.records += seg.entries.size();
      report.torn_frames += seg.torn_frames;
      report.truncated_bytes += seg.truncated_bytes;
      if (seg.sealed) ++report.sealed_segments;
      line += std::to_string(seg.entries.size()) + " record(s), " +
              (seg.sealed ? "sealed" : "unsealed");
      if (seg.torn_frames > 0) {
        line += ", " + std::to_string(seg.torn_frames) + " torn frame(s)";
      }
      if (!seg.note.empty()) line += " [" + seg.note + "]";
    }
    report.text += line + "\n";
  }
  return report;
}

}  // namespace mn::store
