// MNRS1: the result store's append-only segment file format.
//
// Layout:
//
//   header   "MNRS1\n" (6 bytes) + u32 format version
//   frames   repeated: u32 payload_len | u32 crc32(payload) | u8 type
//            | payload
//     kRecord payload: key.hi u64 | key.lo u64 | blob bytes
//     kIndex  payload: u64 count, then per record frame in file order:
//             key.hi u64 | key.lo u64 | u64 frame offset
//   footer   (sealed segments only, written by seal()):
//            u64 index_frame_offset | u32 crc32(those 8 bytes)
//            | "MNRSIDX\n" (8 bytes)
//
// Crash semantics: appends go frame-at-a-time with a flush after each,
// so a killed process loses at most the frame being written.  Readers
// tolerate that torn final frame by truncating to the last valid frame;
// a frame whose CRC fails mid-file is skipped (resynchronizing on its
// length header when plausible) and counted.  Either way the reader
// returns every decodable record and a torn-frame count — corruption
// degrades the cache hit rate, never the process.
//
// A sealed segment (clean close or compact()) carries the footer index:
// readers then know the exact record census and treat any mismatch as
// corruption rather than a mere torn tail.  Files whose magic or format
// version is unknown are refused wholesale (clean skip upstream): a
// future MNRS2 must never be half-read as MNRS1.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "store/key.hpp"

namespace mn::store {

inline constexpr std::string_view kSegmentMagic = "MNRS1\n";
inline constexpr std::string_view kFooterMagic = "MNRSIDX\n";
inline constexpr std::uint32_t kSegmentFormatVersion = 1;
/// Frame header: payload_len + crc + type.
inline constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 1;
/// Sanity bound on one frame's payload — a "length" beyond this is
/// corruption, not a record.
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

enum class FrameType : std::uint8_t { kRecord = 1, kIndex = 2 };

struct SegmentEntry {
  ScenarioKey key;
  std::string blob;
  std::uint64_t offset = 0;  // frame offset in the file (diagnostics)
};

/// One decodable record located (not copied) by scan_segment: the blob
/// is a [blob_offset, blob_offset + blob_len) slice of the scanned
/// buffer.  The basis of the zero-copy mmap views (segment_view.hpp).
struct ScanEntry {
  ScenarioKey key;
  std::uint64_t offset = 0;       // frame offset in the buffer
  std::uint64_t blob_offset = 0;  // blob bytes start here
  std::uint64_t blob_len = 0;
};

struct SegmentScan {
  std::vector<ScanEntry> entries;  // decodable records, buffer order
  bool sealed = false;
  bool version_mismatch = false;
  std::uint64_t torn_frames = 0;
  std::uint64_t truncated_bytes = 0;
  std::string note;
};

/// Scan one segment *buffer* (a whole file read into memory, or an
/// mmap'd view of it) with full corruption tolerance: torn tails
/// truncate, bad-CRC frames skip, foreign magics refuse — identical
/// semantics to read_segment, which is now a thin copying wrapper.
/// An empty buffer is a *claimed-but-never-written* segment (a writer
/// died between O_EXCL claim and header write): zero records, not
/// damage, not a refusal.
[[nodiscard]] SegmentScan scan_segment(std::string_view data);

struct SegmentReadResult {
  std::vector<SegmentEntry> entries;  // decodable records, file order
  bool sealed = false;                // valid footer index present
  bool version_mismatch = false;      // bad magic / unknown version: refused
  std::uint64_t torn_frames = 0;      // frames dropped (bad CRC, torn tail,
                                      // bad type, index mismatch)
  std::uint64_t truncated_bytes = 0;  // bytes past the last readable frame
  std::string note;                   // human-readable diagnostics
};

/// Read every recoverable record of one segment file.  Never throws on
/// corrupt *content* (that is what the result struct reports); throws
/// std::runtime_error only when the file cannot be opened at all.
[[nodiscard]] SegmentReadResult read_segment(const std::string& path);

/// Appending writer.  Creates the file with a fresh header; append()
/// flushes each frame so a crash loses at most the in-flight record.
class SegmentWriter {
 public:
  explicit SegmentWriter(std::string path);
  ~SegmentWriter();
  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;

  /// Append one record frame; returns its encoded size in bytes.
  std::uint64_t append(const ScenarioKey& key, std::string_view blob);

  /// Write the index frame + footer and close.  Idempotent; called by
  /// the destructor if the caller did not seal explicitly.
  void seal();

  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
  [[nodiscard]] std::uint64_t records() const { return index_.size(); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  struct IndexEntry {
    ScenarioKey key;
    std::uint64_t offset;
  };

  void write_frame(FrameType type, std::string_view payload);

  std::string path_;
  std::ofstream out_;
  std::uint64_t offset_ = 0;  // current end-of-file offset
  std::uint64_t bytes_written_ = 0;
  std::vector<IndexEntry> index_;
  bool sealed_ = false;
};

}  // namespace mn::store
