// Read-only mmap'd views of MNRS1 segment files.
//
// The store server keeps every segment of its directory mapped instead
// of copied: blobs are served straight out of the page cache as
// string_views into the mapping, so a multi-GB store costs address
// space, not heap.  The view is a snapshot of the file length at map
// time — an appender growing the file afterwards is invisible, and a
// writer that died mid-frame shows up as the usual torn tail.  Both are
// exactly the tolerance scan_segment already implements: a MappedSegment
// is scan_segment over mapped bytes.
//
// Safety: the mapping must outlive every view handed out (the server
// owns its MappedSegments for the whole serving session; compaction is
// excluded by the shared flock, so the mapped files are never deleted
// under us).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "store/segment.hpp"

namespace mn::store {

class MappedSegment {
 public:
  /// Maps `path` read-only and scans it.  Throws std::runtime_error
  /// when the file cannot be opened or mapped; corrupt *content* is
  /// tolerated and reported by scan() like everywhere else.
  explicit MappedSegment(std::string path);
  ~MappedSegment();
  MappedSegment(MappedSegment&& other) noexcept;
  MappedSegment& operator=(MappedSegment&& other) noexcept;
  MappedSegment(const MappedSegment&) = delete;
  MappedSegment& operator=(const MappedSegment&) = delete;

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::string_view data() const {
    return {static_cast<const char*>(base_), size_};
  }
  [[nodiscard]] const SegmentScan& scan() const { return scan_; }

  /// The blob bytes of one scanned entry, zero-copy into the mapping.
  [[nodiscard]] std::string_view blob(const ScanEntry& e) const {
    return data().substr(static_cast<std::size_t>(e.blob_offset),
                         static_cast<std::size_t>(e.blob_len));
  }

 private:
  void unmap();

  std::string path_;
  void* base_ = nullptr;
  std::size_t size_ = 0;
  SegmentScan scan_;
};

}  // namespace mn::store
