// RunStore: a durable, content-addressed cache of deterministic work
// units — the memoization layer under run_campaign, sweep_flow_sizes,
// and the chaos soak.
//
// A store is a directory of MNRS1 segment files (see segment.hpp).
// Opening loads every readable record into an in-memory key -> blob
// map (later segments / later frames supersede earlier ones); put()
// appends to a fresh active segment with a flush per record, so a
// killed campaign keeps everything it finished — re-running against
// the same store resumes with only the missing runs executing.
//
// Corruption never escalates: a segment with an unknown magic/version
// is refused wholesale, a torn final frame is truncated away, a frame
// with a bad CRC is skipped — all of it surfaces only as cache misses
// plus the store.torn_frames counter.
//
// Concurrency: lookup()/put() are mutex-serialized, so the parallel
// execute phases can share one store.  Determinism is unaffected —
// results are assembled in plan order by the callers, and a key's blob
// is a pure function of the keyed inputs, so *which* worker wrote it
// first can never change a byte of output.
//
// Cross-process sharing (the fleet tier, see lockfile.hpp): every open
// RunStore holds `<dir>/store.lock` SHARED for its lifetime, new
// segment files are claimed with O_EXCL so two appenders can never
// clobber one another, and compact() upgrades to an EXCLUSIVE hold and
// re-censuses the directory from disk — records appended by *other*
// processes (which this handle never loaded) survive compaction.
// A compact attempted while another appender is alive throws
// StoreBusyError and modifies nothing.
//
// Observability: hits/misses/appended bytes/torn frames are recorded in
// an owned obs::MetricsRegistry (store.hits, store.misses,
// store.bytes_written, store.torn_frames, ...).  The store's snapshot is
// deliberately separate from the per-run metrics that merge_run_metrics
// folds — campaign output must stay byte-identical whether a run was
// simulated or replayed from cache.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "store/key.hpp"
#include "store/lockfile.hpp"
#include "store/segment.hpp"
#include "store/store.hpp"

namespace mn::store {

class RunStore : public Store {
 public:
  /// Opens (creating the directory if needed) and loads every segment.
  /// Throws std::runtime_error when the directory cannot be created or
  /// a segment file cannot be opened at all (corrupt *content* is
  /// tolerated and counted instead).
  explicit RunStore(std::string dir);
  ~RunStore() override;
  RunStore(const RunStore&) = delete;
  RunStore& operator=(const RunStore&) = delete;

  /// Cached blob for `key`, or nullopt.  Counts store.hits/store.misses.
  [[nodiscard]] std::optional<std::string> lookup(const ScenarioKey& key) override;

  /// Insert/overwrite `key` and append it durably to the active
  /// segment.  Safe to call concurrently with lookups and other puts.
  void put(const ScenarioKey& key, std::string_view blob) override;

  [[nodiscard]] bool contains(const ScenarioKey& key) const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Every live (key, blob) pair, sorted by key — the deterministic
  /// iteration order used by compact() and the CLI dump.
  [[nodiscard]] std::vector<std::pair<ScenarioKey, std::string>> sorted_entries() const;

  /// Rewrite every live entry into one fresh sealed segment and delete
  /// the old files: superseded duplicates and undecodable frames are
  /// dropped, disk usage shrinks to the live set.  Requires exclusive
  /// directory ownership — throws StoreBusyError (modifying nothing)
  /// while any other process holds the store open.  The census is taken
  /// from disk under the lock, so records appended by other processes
  /// are preserved; refused segments (foreign format versions) are left
  /// in place untouched.
  void compact();

  /// Seal the active segment (if any): subsequent puts open a new one.
  /// Called by the destructor; explicit sealing makes the on-disk state
  /// verify as fully indexed.
  void seal_active();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t puts = 0;
    std::uint64_t bytes_written = 0;   // appended this session (incl. framing)
    std::uint64_t torn_frames = 0;     // unusable frames seen at open/compact
    std::uint64_t entries = 0;         // live records in memory
    std::uint64_t segments_loaded = 0; // readable segments at open
    std::uint64_t segments_skipped = 0;  // refused: wrong magic/version
  };
  [[nodiscard]] Stats stats() const;

  /// The PR-4 registry view of the same counters (store.hits,
  /// store.misses, store.bytes_written, store.torn_frames, store.puts,
  /// plus store.entries / store.segments gauges), for exporters.
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const;

 private:
  void load_locked();
  void open_writer_locked();

  mutable std::mutex mu_;
  std::string dir_;
  FileLock dir_lock_;  // shared hold on store.lock for our lifetime
  std::unordered_map<ScenarioKey, std::string, ScenarioKeyHash> map_;
  std::unique_ptr<SegmentWriter> writer_;
  Stats stats_;
};

/// Segment files of `dir` in load order (ascending segment number).
[[nodiscard]] std::vector<std::string> list_segment_files(const std::string& dir);

/// Atomically claim the next unused segment file name in `dir` via
/// O_EXCL creation: scans for the highest existing number and creates
/// the successor, retrying upward on EEXIST — two processes claiming
/// concurrently always get distinct files.  Returns the claimed path
/// (created empty; hand it to SegmentWriter).
[[nodiscard]] std::string claim_next_segment(const std::string& dir);

/// Integrity report over a store directory, without opening a RunStore
/// (pure read: the CLI's `verify`).
struct SegmentVerify {
  std::string file;  // basename of the segment file
  std::uint64_t records = 0;
  std::uint64_t torn_frames = 0;
  bool refused = false;  // bad magic / unknown version
  bool sealed = false;
  std::string note;  // reader's damage notes (offset of every bad frame)

  [[nodiscard]] bool damaged() const { return refused || torn_frames > 0; }
};

struct VerifyReport {
  std::uint64_t segments = 0;
  std::uint64_t sealed_segments = 0;
  std::uint64_t records = 0;
  std::uint64_t torn_frames = 0;
  std::uint64_t version_mismatches = 0;
  std::uint64_t truncated_bytes = 0;
  std::string text;  // one line per segment
  /// One entry per segment file, in load order — the structured form of
  /// `text`, so callers (the CLI's bad-frame summary, tests) can point
  /// at exactly which segments hold bad frames.
  std::vector<SegmentVerify> per_segment;

  [[nodiscard]] bool ok() const { return torn_frames == 0 && version_mismatches == 0; }
};
[[nodiscard]] VerifyReport verify_store(const std::string& dir);

}  // namespace mn::store
