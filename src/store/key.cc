#include "store/key.hpp"

#include <bit>

namespace mn::store {
namespace {

// FNV-1a/128 parameters (Fowler–Noll–Vo, 128-bit variant).
constexpr unsigned __int128 fnv_offset_basis() {
  return (static_cast<unsigned __int128>(0x6C62272E07BB0142ull) << 64) |
         0x62B821756295C58Dull;
}
constexpr unsigned __int128 fnv_prime() {
  return (static_cast<unsigned __int128>(0x0000000001000000ull) << 64) | 0x13Bull;
}

constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::string ScenarioKey::hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(i)] = kDigits[(hi >> (60 - i * 4)) & 0xF];
    out[static_cast<std::size_t>(16 + i)] = kDigits[(lo >> (60 - i * 4)) & 0xF];
  }
  return out;
}

std::optional<ScenarioKey> ScenarioKey::from_hex(std::string_view s) {
  if (s.size() != 32) return std::nullopt;
  std::uint64_t halves[2] = {0, 0};
  for (std::size_t i = 0; i < 32; ++i) {
    const char c = s[i];
    std::uint64_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      nibble = static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
    halves[i / 16] = (halves[i / 16] << 4) | nibble;
  }
  return ScenarioKey{halves[0], halves[1]};
}

KeyBuilder::KeyBuilder(std::string_view domain, std::uint32_t version)
    : h_(fnv_offset_basis()) {
  str(domain);
  u32(version);
}

void KeyBuilder::absorb(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h_ ^= p[i];
    h_ *= fnv_prime();
  }
}

KeyBuilder& KeyBuilder::u8(std::uint8_t v) {
  absorb(&v, 1);
  return *this;
}

KeyBuilder& KeyBuilder::u32(std::uint32_t v) {
  unsigned char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (i * 8));
  absorb(b, sizeof b);
  return *this;
}

KeyBuilder& KeyBuilder::u64(std::uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (i * 8));
  absorb(b, sizeof b);
  return *this;
}

KeyBuilder& KeyBuilder::i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }

KeyBuilder& KeyBuilder::f64(double v) { return u64(std::bit_cast<std::uint64_t>(v)); }

KeyBuilder& KeyBuilder::boolean(bool v) { return u8(v ? 1 : 0); }

KeyBuilder& KeyBuilder::str(std::string_view s) {
  u64(s.size());
  absorb(s.data(), s.size());
  return *this;
}

ScenarioKey KeyBuilder::finish() const {
  // FNV mixes low bits well but diffuses upward slowly; avalanche both
  // halves and cross-fold so every input bit reaches every output bit.
  const auto raw_lo = static_cast<std::uint64_t>(h_);
  const auto raw_hi = static_cast<std::uint64_t>(h_ >> 64);
  ScenarioKey key;
  key.hi = splitmix64(raw_hi ^ splitmix64(raw_lo));
  key.lo = splitmix64(raw_lo ^ key.hi);
  return key;
}

}  // namespace mn::store
