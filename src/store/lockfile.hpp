// Advisory flock(2) coordination for shared store directories.
//
// A store directory shared by several OS processes has exactly two
// cross-process hazards: (a) a compaction deleting segment files while
// another process is appending or loading them, and (b) two writers
// claiming the same segment file name.  (b) is solved lock-free with
// O_EXCL claims (see claim in run_store.cc); (a) is solved here with a
// classic shared/exclusive advisory lock on `<dir>/store.lock`:
//
//   - every open RunStore / store server holds the lock SHARED for its
//     whole lifetime (appenders and loaders can coexist freely — each
//     writes only its own claimed segment file);
//   - compact() takes it EXCLUSIVE, with bounded non-blocking retries,
//     so it can census + rewrite + delete with no appender alive.  A
//     busy store surfaces as StoreBusyError, never as lost records.
//
// flock is per open-file-description: two RunStores in one process get
// independent descriptions and therefore behave exactly like two
// processes — which is what the in-process regression tests exploit.
// Locks are advisory; `mn_store verify` (pure read of immutable bytes
// plus a torn-tail-tolerant scan) deliberately takes none.
#pragma once

#include <chrono>
#include <stdexcept>
#include <string>

namespace mn::store {

/// The lock file every coordinated opener of `dir` agrees on.
[[nodiscard]] std::string store_lock_path(const std::string& dir);
/// The writer-role lock a store server holds exclusively (one server
/// per directory; a second `mn_store serve` fails fast).
[[nodiscard]] std::string serve_lock_path(const std::string& dir);

/// Thrown when an exclusive acquisition times out because other
/// processes still hold the lock shared.  Nothing was modified.
struct StoreBusyError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// RAII flock holder.  Default-constructed = not held; release() and
/// destruction drop the lock (and close the fd).
class FileLock {
 public:
  FileLock() = default;
  ~FileLock();
  FileLock(FileLock&& other) noexcept;
  FileLock& operator=(FileLock&& other) noexcept;
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

  [[nodiscard]] bool held() const { return fd_ >= 0; }
  void release();

  /// Blocking shared acquisition (creates the lock file if absent).
  /// Throws std::runtime_error when the file cannot be opened.
  [[nodiscard]] static FileLock shared(const std::string& path);

  /// One non-blocking exclusive attempt; empty (held() == false) when
  /// another holder exists.
  [[nodiscard]] static FileLock try_exclusive(const std::string& path);

  /// Exclusive acquisition with bounded non-blocking retries spaced
  /// `backoff` apart.  Throws StoreBusyError after `attempts` failures.
  [[nodiscard]] static FileLock exclusive(
      const std::string& path, int attempts = 50,
      std::chrono::milliseconds backoff = std::chrono::milliseconds(10));

 private:
  explicit FileLock(int fd) : fd_(fd) {}
  static int open_lock_file(const std::string& path);

  int fd_ = -1;
};

}  // namespace mn::store
