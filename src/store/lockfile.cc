#include "store/lockfile.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <thread>

namespace mn::store {

std::string store_lock_path(const std::string& dir) {
  return (std::filesystem::path(dir) / "store.lock").string();
}

std::string serve_lock_path(const std::string& dir) {
  return (std::filesystem::path(dir) / "serve.lock").string();
}

FileLock::~FileLock() { release(); }

FileLock::FileLock(FileLock&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

FileLock& FileLock::operator=(FileLock&& other) noexcept {
  if (this != &other) {
    release();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void FileLock::release() {
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);  // closing would drop it too; be explicit
    ::close(fd_);
    fd_ = -1;
  }
}

int FileLock::open_lock_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw std::runtime_error("store lock: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  return fd;
}

FileLock FileLock::shared(const std::string& path) {
  const int fd = open_lock_file(path);
  int rc;
  do {
    rc = ::flock(fd, LOCK_SH);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("store lock: flock(LOCK_SH) on " + path + ": " +
                             std::strerror(err));
  }
  return FileLock{fd};
}

FileLock FileLock::try_exclusive(const std::string& path) {
  const int fd = open_lock_file(path);
  int rc;
  do {
    rc = ::flock(fd, LOCK_EX | LOCK_NB);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    ::close(fd);
    return FileLock{};
  }
  return FileLock{fd};
}

FileLock FileLock::exclusive(const std::string& path, int attempts,
                             std::chrono::milliseconds backoff) {
  for (int i = 0; i < attempts; ++i) {
    FileLock lock = try_exclusive(path);
    if (lock.held()) return lock;
    if (i + 1 < attempts) std::this_thread::sleep_for(backoff);
  }
  throw StoreBusyError("store lock: " + path +
                       " is held shared by another appender (a live RunStore or "
                       "store server); close it or retry later");
}

}  // namespace mn::store
