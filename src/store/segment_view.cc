#include "store/segment_view.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace mn::store {

MappedSegment::MappedSegment(std::string path) : path_(std::move(path)) {
  const int fd = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw std::runtime_error("store segment view: cannot open " + path_ + ": " +
                             std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("store segment view: fstat " + path_ + ": " +
                             std::strerror(err));
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("store segment view: mmap " + path_ + ": " +
                               std::strerror(err));
    }
    base_ = p;
  }
  ::close(fd);  // the mapping keeps the pages; the fd is not needed
  scan_ = scan_segment(data());
}

MappedSegment::~MappedSegment() { unmap(); }

MappedSegment::MappedSegment(MappedSegment&& other) noexcept
    : path_(std::move(other.path_)),
      base_(other.base_),
      size_(other.size_),
      scan_(std::move(other.scan_)) {
  other.base_ = nullptr;
  other.size_ = 0;
}

MappedSegment& MappedSegment::operator=(MappedSegment&& other) noexcept {
  if (this != &other) {
    unmap();
    path_ = std::move(other.path_);
    base_ = other.base_;
    size_ = other.size_;
    scan_ = std::move(other.scan_);
    other.base_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void MappedSegment::unmap() {
  if (base_ != nullptr) {
    ::munmap(base_, size_);
    base_ = nullptr;
    size_ = 0;
  }
}

}  // namespace mn::store
