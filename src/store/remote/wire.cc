#include "store/remote/wire.hpp"

#include "store/codec.hpp"
#include "util/crc32.hpp"

namespace mn::store::wire {
namespace {

std::uint32_t le_u32_at(std::string_view bytes, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(bytes[at + static_cast<std::size_t>(i)]))
         << (i * 8);
  }
  return v;
}

bool known_op(std::uint8_t op) {
  switch (static_cast<Op>(op)) {
    case Op::kPing:
    case Op::kPong:
    case Op::kGet:
    case Op::kGetReply:
    case Op::kMultiGet:
    case Op::kMultiGetReply:
    case Op::kPut:
    case Op::kPutReply:
    case Op::kStats:
    case Op::kStatsReply:
    case Op::kError:
      return true;
  }
  return false;
}

/// Wraps BinReader's overrun exceptions as WireError so a malformed
/// body and a malformed frame degrade identically at the client.
template <typename Fn>
auto parse_body(Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const WireError&) {
    throw;
  } catch (const std::exception& e) {
    throw WireError(std::string{"MNSP1 body: "} + e.what());
  }
}

}  // namespace

std::string encode_frame(Op op, std::string_view body) {
  std::string payload;
  payload.reserve(2 + body.size());
  payload.push_back(static_cast<char>(kWireProtocolVersion));
  payload.push_back(static_cast<char>(op));
  payload.append(body.data(), body.size());
  BinWriter header;
  header.put_u32(static_cast<std::uint32_t>(payload.size()));
  header.put_u32(crc32(payload));
  std::string frame = header.take();
  frame += payload;
  return frame;
}

void FrameParser::feed(std::string_view bytes) {
  // Compact the consumed prefix away before it grows unbounded.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= (64u << 10))) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes.data(), bytes.size());
}

std::optional<Message> FrameParser::next() {
  const std::string_view view{buf_.data() + pos_, buf_.size() - pos_};
  if (view.size() < kWireHeaderBytes) return std::nullopt;
  const std::uint32_t len = le_u32_at(view, 0);
  if (len < 2 || len > kMaxWirePayload) {
    throw WireError("MNSP1 frame: implausible payload length " + std::to_string(len));
  }
  if (view.size() < kWireHeaderBytes + len) return std::nullopt;
  const std::string_view payload = view.substr(kWireHeaderBytes, len);
  if (crc32(payload) != le_u32_at(view, 4)) {
    throw WireError("MNSP1 frame: CRC mismatch");
  }
  const auto version = static_cast<std::uint8_t>(payload[0]);
  if (version != kWireProtocolVersion) {
    throw WireError("MNSP1 frame: unknown protocol version " + std::to_string(version));
  }
  const auto op = static_cast<std::uint8_t>(payload[1]);
  if (!known_op(op)) {
    throw WireError("MNSP1 frame: unknown op " + std::to_string(op));
  }
  Message msg;
  msg.op = static_cast<Op>(op);
  msg.body.assign(payload.substr(2));
  pos_ += kWireHeaderBytes + len;
  return msg;
}

std::string encode_nonce_body(std::uint64_t nonce) {
  BinWriter w;
  w.put_u64(nonce);
  return w.take();
}

std::uint64_t decode_nonce_body(std::string_view body) {
  return parse_body([&] {
    BinReader r{body};
    const std::uint64_t nonce = r.get_u64();
    r.expect_done();
    return nonce;
  });
}

std::string encode_key_body(const ScenarioKey& key) {
  BinWriter w;
  w.put_u64(key.hi);
  w.put_u64(key.lo);
  return w.take();
}

ScenarioKey decode_key_body(std::string_view body) {
  return parse_body([&] {
    BinReader r{body};
    ScenarioKey key;
    key.hi = r.get_u64();
    key.lo = r.get_u64();
    r.expect_done();
    return key;
  });
}

std::string encode_keys_body(const std::vector<ScenarioKey>& keys) {
  BinWriter w;
  w.put_u32(static_cast<std::uint32_t>(keys.size()));
  for (const ScenarioKey& k : keys) {
    w.put_u64(k.hi);
    w.put_u64(k.lo);
  }
  return w.take();
}

std::vector<ScenarioKey> decode_keys_body(std::string_view body) {
  return parse_body([&] {
    BinReader r{body};
    const std::uint32_t n = r.get_u32();
    if (static_cast<std::size_t>(n) * 16 != r.remaining()) {
      throw WireError("MNSP1 MULTI_GET: key count does not match body size");
    }
    std::vector<ScenarioKey> keys(n);
    for (auto& k : keys) {
      k.hi = r.get_u64();
      k.lo = r.get_u64();
    }
    r.expect_done();
    return keys;
  });
}

std::string encode_blob_reply(const std::optional<std::string_view>& blob) {
  BinWriter w;
  w.put_bool(blob.has_value());
  w.put_str(blob.value_or(std::string_view{}));
  return w.take();
}

std::optional<std::string> decode_blob_reply(std::string_view body) {
  return parse_body([&]() -> std::optional<std::string> {
    BinReader r{body};
    const bool found = r.get_bool();
    std::string blob = r.get_str();
    r.expect_done();
    if (!found) return std::nullopt;
    return blob;
  });
}

std::string encode_blobs_reply(const std::vector<std::optional<std::string_view>>& blobs) {
  BinWriter w;
  w.put_u32(static_cast<std::uint32_t>(blobs.size()));
  for (const auto& b : blobs) {
    w.put_bool(b.has_value());
    w.put_str(b.value_or(std::string_view{}));
  }
  return w.take();
}

std::vector<std::optional<std::string>> decode_blobs_reply(std::string_view body) {
  return parse_body([&] {
    BinReader r{body};
    const std::uint32_t n = r.get_u32();
    std::vector<std::optional<std::string>> out(n);
    for (auto& slot : out) {
      const bool found = r.get_bool();
      std::string blob = r.get_str();
      if (found) slot = std::move(blob);
    }
    r.expect_done();
    return out;
  });
}

std::string encode_put_body(const ScenarioKey& key, std::string_view blob) {
  BinWriter w;
  w.put_u64(key.hi);
  w.put_u64(key.lo);
  w.put_str(blob);
  return w.take();
}

std::pair<ScenarioKey, std::string> decode_put_body(std::string_view body) {
  return parse_body([&] {
    BinReader r{body};
    ScenarioKey key;
    key.hi = r.get_u64();
    key.lo = r.get_u64();
    std::string blob = r.get_str();
    r.expect_done();
    return std::pair<ScenarioKey, std::string>{key, std::move(blob)};
  });
}

std::string encode_status_body(std::uint8_t status) {
  BinWriter w;
  w.put_u8(status);
  return w.take();
}

std::uint8_t decode_status_body(std::string_view body) {
  return parse_body([&] {
    BinReader r{body};
    const std::uint8_t status = r.get_u8();
    r.expect_done();
    return status;
  });
}

std::string encode_error_body(std::string_view message) {
  BinWriter w;
  w.put_str(message);
  return w.take();
}

std::string decode_error_body(std::string_view body) {
  return parse_body([&] {
    BinReader r{body};
    std::string msg = r.get_str();
    r.expect_done();
    return msg;
  });
}

std::string encode_stats_reply(const WireStats& s) {
  BinWriter w;
  w.put_u64(s.entries);
  w.put_u64(s.segments);
  w.put_u64(s.hits);
  w.put_u64(s.misses);
  w.put_u64(s.gets);
  w.put_u64(s.multi_gets);
  w.put_u64(s.puts);
  w.put_u64(s.bytes_appended);
  w.put_u64(s.connections);
  w.put_u64(s.protocol_errors);
  return w.take();
}

WireStats decode_stats_reply(std::string_view body) {
  return parse_body([&] {
    BinReader r{body};
    WireStats s;
    s.entries = r.get_u64();
    s.segments = r.get_u64();
    s.hits = r.get_u64();
    s.misses = r.get_u64();
    s.gets = r.get_u64();
    s.multi_gets = r.get_u64();
    s.puts = r.get_u64();
    s.bytes_appended = r.get_u64();
    s.connections = r.get_u64();
    s.protocol_errors = r.get_u64();
    r.expect_done();
    return s;
  });
}

}  // namespace mn::store::wire
