// StoreServer: the fleet-shared side of the result store.
//
// One server process owns a store directory and exposes it over MNSP1
// (wire.hpp) on a Unix-domain or TCP socket — `mn_store serve <dir>
// --socket <spec>` is a thin main() around this class.
//
// Ownership and locking (lockfile.hpp):
//   - `serve.lock` is held EXCLUSIVE: exactly one server per directory,
//     a second `mn_store serve` fails fast instead of double-writing.
//   - `store.lock` is held SHARED, the appender role: local RunStores
//     may still read/append their own segments concurrently, and a
//     compactor is excluded for as long as the server lives.
//
// Storage: existing segments are served from read-only mmap'd views
// (segment_view.hpp) — blobs go from page cache to socket without a
// heap copy, and a torn tail left by a crashed writer is tolerated by
// the shared scan.  PUTs append through the ordinary SegmentWriter into
// an O_EXCL-claimed segment (flush per record, the PR 5 crash
// discipline) and live in a small overlay map that supersedes the
// mapped views.
//
// Concurrency: a single poll(2) loop owns every connection — requests
// are serialized by arrival, so the store needs no internal locking and
// "single-writer" is structural, not a convention.  stop() (any thread)
// wakes the loop via a self-pipe.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"
#include "store/remote/socket.hpp"
#include "store/remote/wire.hpp"

namespace mn::store::remote {

struct StoreServerOptions {
  std::string dir;          // store directory (created if absent)
  std::string socket_spec;  // parse_endpoint() format
};

class StoreServer {
 public:
  /// Opens the directory (locks, mmaps, listens).  Throws on an
  /// unservable directory (already served, unbindable socket, ...).
  explicit StoreServer(StoreServerOptions options);
  ~StoreServer();
  StoreServer(const StoreServer&) = delete;
  StoreServer& operator=(const StoreServer&) = delete;

  /// Serve until stop().  Call from exactly one thread.
  void run();

  /// Wake run() and make it return after the current iteration.
  /// Thread-safe; callable any number of times.
  void stop();

  /// One poll iteration (accept/read/serve/write), waiting at most
  /// `timeout_ms`.  run() is a loop over this; tests can step manually.
  void poll_once(int timeout_ms);

  [[nodiscard]] const Endpoint& endpoint() const { return endpoint_; }
  /// The actual TCP port after binding (meaningful when the spec said
  /// port 0); the Unix path otherwise unchanged.
  [[nodiscard]] std::uint16_t tcp_port() const;
  [[nodiscard]] const std::string& dir() const { return options_.dir; }

  /// Live counters (what STATS serves), safe from any thread.
  [[nodiscard]] wire::WireStats stats() const;
  /// The same counters as store.server.* metrics for exporters.
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const;

 private:
  struct Impl;

  StoreServerOptions options_;
  Endpoint endpoint_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mn::store::remote
