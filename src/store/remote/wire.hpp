// MNSP1: the store service's length-prefixed binary wire protocol.
//
// One frame on the wire:
//
//   u32 payload_len | u32 crc32(payload) | payload
//   payload := u8 protocol_version (=1) | u8 op | body
//
// Everything is little-endian with explicit widths, encoded through the
// same BinWriter/BinReader discipline as the segment format and
// KeyBuilder: length-prefixed strings, bit-exact integers — the bytes
// are identical on every platform.  The CRC spans the whole payload, so
// a flipped bit anywhere surfaces as WireError, which the client treats
// as a degraded connection (cache miss), never as data.
//
// Ops (requests from the client, replies from the server):
//
//   PING      u64 nonce                 -> PONG       u64 nonce (echo)
//   GET       key.hi u64 | key.lo u64   -> GET_REPLY  bool found | str blob
//   MULTI_GET u32 n | n * (hi,lo)       -> MULTI_GET_REPLY
//                                            u32 n | n * (bool | str blob)
//   PUT       hi | lo | str blob        -> PUT_REPLY  u8 status (0 = ok)
//   STATS     (empty)                   -> STATS_REPLY (WireStats fields)
//   (server only) ERROR  str message — sent before closing on a
//   malformed request or version mismatch.
//
// Versioning: the protocol version rides in every payload.  A server
// refuses a mismatched version with ERROR; a client treats any
// unexpected version as WireError.  A future MNSP2 never half-parses
// as MNSP1 — the same wholesale-refusal rule as segment files.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "store/key.hpp"

namespace mn::store::wire {

inline constexpr std::uint8_t kWireProtocolVersion = 1;
/// Upper bound on one frame's payload: covers the largest record blob
/// (64 MiB, kMaxFramePayload) plus a batched reply's framing with room
/// to spare.  A longer length prefix is corruption, not a message.
inline constexpr std::uint32_t kMaxWirePayload = 256u << 20;
/// Frame header: payload_len + crc.
inline constexpr std::size_t kWireHeaderBytes = 4 + 4;
/// Client-side MULTI_GET chunk size: bounds one reply's size while
/// still amortizing the round trip over hundreds of keys.
inline constexpr std::size_t kMultiGetBatch = 256;

enum class Op : std::uint8_t {
  kPing = 1,
  kPong = 2,
  kGet = 3,
  kGetReply = 4,
  kMultiGet = 5,
  kMultiGetReply = 6,
  kPut = 7,
  kPutReply = 8,
  kStats = 9,
  kStatsReply = 10,
  kError = 15,
};

/// Any framing/encoding violation: bad CRC, oversize length, unknown
/// op, version mismatch, malformed body, truncated stream.  Clients
/// degrade on it; the server answers ERROR and closes.
struct WireError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Message {
  Op op = Op::kError;
  std::string body;
};

/// One full frame (header + version + op + body), ready to write.
[[nodiscard]] std::string encode_frame(Op op, std::string_view body);

/// Incremental frame decoder: feed() arbitrary byte chunks, next()
/// yields complete messages.  Throws WireError on any malformed input —
/// once thrown, the stream is poisoned and the connection must drop
/// (there is no resynchronization on a byte stream).
class FrameParser {
 public:
  void feed(std::string_view bytes);
  /// Next complete message, or nullopt when more bytes are needed.
  [[nodiscard]] std::optional<Message> next();
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;
};

// ---- body codecs (shared by client and server) ----------------------

[[nodiscard]] std::string encode_nonce_body(std::uint64_t nonce);
[[nodiscard]] std::uint64_t decode_nonce_body(std::string_view body);

[[nodiscard]] std::string encode_key_body(const ScenarioKey& key);
[[nodiscard]] ScenarioKey decode_key_body(std::string_view body);

[[nodiscard]] std::string encode_keys_body(const std::vector<ScenarioKey>& keys);
[[nodiscard]] std::vector<ScenarioKey> decode_keys_body(std::string_view body);

/// GET_REPLY: found + blob.
[[nodiscard]] std::string encode_blob_reply(const std::optional<std::string_view>& blob);
[[nodiscard]] std::optional<std::string> decode_blob_reply(std::string_view body);

/// MULTI_GET_REPLY: per-key found + blob, in request order.  The server
/// encodes views (zero-copy out of its mmap'd segments).
[[nodiscard]] std::string encode_blobs_reply(
    const std::vector<std::optional<std::string_view>>& blobs);
[[nodiscard]] std::vector<std::optional<std::string>> decode_blobs_reply(
    std::string_view body);

[[nodiscard]] std::string encode_put_body(const ScenarioKey& key, std::string_view blob);
[[nodiscard]] std::pair<ScenarioKey, std::string> decode_put_body(std::string_view body);

[[nodiscard]] std::string encode_status_body(std::uint8_t status);
[[nodiscard]] std::uint8_t decode_status_body(std::string_view body);

[[nodiscard]] std::string encode_error_body(std::string_view message);
[[nodiscard]] std::string decode_error_body(std::string_view body);

/// The server's STATS_REPLY payload.
struct WireStats {
  std::uint64_t entries = 0;
  std::uint64_t segments = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t gets = 0;
  std::uint64_t multi_gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t bytes_appended = 0;
  std::uint64_t connections = 0;
  std::uint64_t protocol_errors = 0;

  friend bool operator==(const WireStats&, const WireStats&) = default;
};
[[nodiscard]] std::string encode_stats_reply(const WireStats& s);
[[nodiscard]] WireStats decode_stats_reply(std::string_view body);

}  // namespace mn::store::wire
