#include "store/remote/socket.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace mn::store::remote {
namespace {

bool set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, want) == 0;
}

void set_io_timeout(int fd, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

int parse_port(const std::string& s) {
  if (s.empty() || s.size() > 5) throw std::invalid_argument("store endpoint: bad port '" + s + "'");
  long v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') throw std::invalid_argument("store endpoint: bad port '" + s + "'");
    v = v * 10 + (c - '0');
  }
  if (v > 65535) throw std::invalid_argument("store endpoint: bad port '" + s + "'");
  return static_cast<int>(v);
}

/// Fill a sockaddr_un; throws when the path does not fit.
sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof addr.sun_path) {
    throw std::invalid_argument("store endpoint: unix path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

std::string Endpoint::describe() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint ep;
  std::string rest = spec;
  bool forced_unix = false;
  bool forced_tcp = false;
  if (rest.rfind("unix:", 0) == 0) {
    forced_unix = true;
    rest = rest.substr(5);
  } else if (rest.rfind("tcp:", 0) == 0) {
    forced_tcp = true;
    rest = rest.substr(4);
  }
  const std::size_t colon = rest.rfind(':');
  const bool looks_tcp =
      !forced_unix && colon != std::string::npos && rest.find('/') == std::string::npos;
  if (forced_tcp || looks_tcp) {
    if (colon == std::string::npos) {
      throw std::invalid_argument("store endpoint: tcp spec needs host:port, got '" + spec + "'");
    }
    ep.kind = Endpoint::Kind::kTcp;
    ep.host = rest.substr(0, colon);
    if (ep.host.empty()) ep.host = "127.0.0.1";
    ep.port = static_cast<std::uint16_t>(parse_port(rest.substr(colon + 1)));
    return ep;
  }
  ep.kind = Endpoint::Kind::kUnix;
  ep.path = rest;
  if (ep.path.empty()) throw std::invalid_argument("store endpoint: empty socket path");
  return ep;
}

int connect_endpoint(const Endpoint& ep, std::chrono::milliseconds connect_timeout,
                     std::chrono::milliseconds io_timeout) {
  int fd = -1;
  sockaddr_storage storage{};
  socklen_t addr_len = 0;
  if (ep.kind == Endpoint::Kind::kUnix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return -1;
    const sockaddr_un addr = unix_addr(ep.path);
    std::memcpy(&storage, &addr, sizeof addr);
    addr_len = sizeof addr;
  } else {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const std::string port = std::to_string(ep.port);
    if (::getaddrinfo(ep.host.c_str(), port.c_str(), &hints, &res) != 0 || res == nullptr) {
      errno = EHOSTUNREACH;
      return -1;
    }
    fd = ::socket(res->ai_family, res->ai_socktype | SOCK_CLOEXEC, res->ai_protocol);
    if (fd < 0) {
      ::freeaddrinfo(res);
      return -1;
    }
    std::memcpy(&storage, res->ai_addr, res->ai_addrlen);
    addr_len = res->ai_addrlen;
    ::freeaddrinfo(res);
  }

  // Nonblocking connect bounded by poll: a dead TCP peer fails in
  // `connect_timeout`, not in the kernel's minutes-long default.
  if (!set_nonblocking(fd, true)) {
    ::close(fd);
    return -1;
  }
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&storage), addr_len);
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    do {
      rc = ::poll(&pfd, 1, static_cast<int>(connect_timeout.count()));
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) {
      if (rc == 0) errno = ETIMEDOUT;
      ::close(fd);
      return -1;
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      errno = err != 0 ? err : ECONNREFUSED;
      return -1;
    }
  } else if (rc != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    return -1;
  }
  if (!set_nonblocking(fd, false)) {
    ::close(fd);
    return -1;
  }
  set_io_timeout(fd, io_timeout);
  if (ep.kind == Endpoint::Kind::kTcp) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  return fd;
}

int listen_endpoint(const Endpoint& ep) {
  int fd = -1;
  if (ep.kind == Endpoint::Kind::kUnix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw std::runtime_error("store server: socket(AF_UNIX): " + std::string{std::strerror(errno)});
    // A stale socket *file* from a dead server blocks bind; a live
    // server is excluded by serve.lock before we get here, so any
    // existing socket at the path is dead by construction.
    struct stat st {};
    if (::lstat(ep.path.c_str(), &st) == 0 && S_ISSOCK(st.st_mode)) {
      ::unlink(ep.path.c_str());
    }
    const sockaddr_un addr = unix_addr(ep.path);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
      const int err = errno;
      ::close(fd);
      throw std::runtime_error("store server: bind " + ep.path + ": " + std::strerror(err));
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw std::runtime_error("store server: socket(AF_INET): " + std::string{std::strerror(errno)});
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    addrinfo* res = nullptr;
    const std::string port = std::to_string(ep.port);
    if (::getaddrinfo(ep.host.empty() ? nullptr : ep.host.c_str(), port.c_str(), &hints,
                      &res) != 0 ||
        res == nullptr) {
      ::close(fd);
      throw std::runtime_error("store server: cannot resolve " + ep.describe());
    }
    const int rc = ::bind(fd, res->ai_addr, res->ai_addrlen);
    const int err = errno;
    ::freeaddrinfo(res);
    if (rc != 0) {
      ::close(fd);
      throw std::runtime_error("store server: bind " + ep.describe() + ": " +
                               std::strerror(err));
    }
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("store server: listen " + ep.describe() + ": " +
                             std::strerror(err));
  }
  if (!set_nonblocking(fd, true)) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("store server: fcntl(O_NONBLOCK): " +
                             std::string{std::strerror(err)});
  }
  return fd;
}

std::uint16_t local_tcp_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return 0;
  return ntohs(addr.sin_port);
}

bool send_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

long recv_some(int fd, char* buf, std::size_t buf_len) {
  ssize_t n;
  do {
    n = ::recv(fd, buf, buf_len, 0);
  } while (n < 0 && errno == EINTR);
  return static_cast<long>(n);
}

}  // namespace mn::store::remote
