#include "store/remote/client.hpp"

#include <unistd.h>

#include <algorithm>
#include <thread>

namespace mn::store::remote {

RemoteStore::RemoteStore(RemoteStoreOptions options)
    : options_(std::move(options)), endpoint_(parse_endpoint(options_.endpoint)) {}

RemoteStore::~RemoteStore() {
  std::lock_guard<std::mutex> lock(mu_);
  drop_connection_locked();
}

bool RemoteStore::ensure_connected_locked() {
  if (fd_ >= 0) return true;
  const int fd = connect_endpoint(endpoint_, options_.connect_timeout, options_.io_timeout);
  if (fd < 0) return false;
  fd_ = fd;
  parser_ = wire::FrameParser{};  // a fresh connection is a fresh stream
  if (ever_connected_) ++stats_.reconnects;
  ever_connected_ = true;
  return true;
}

void RemoteStore::drop_connection_locked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool RemoteStore::breaker_skips_locked() {
  if (skip_remaining_ <= 0) return false;
  --skip_remaining_;
  ++stats_.degraded;
  ++stats_.skipped;
  return true;
}

void RemoteStore::note_failure_locked() {
  ++stats_.degraded;
  // Next 2^streak operations degrade instantly, capped: a dead server
  // costs the campaign O(1) failed connects per max_skip runs.
  failure_streak_ = std::min(failure_streak_ + 1, 30);
  const long skip = 1L << std::min(failure_streak_, 10);
  skip_remaining_ = static_cast<int>(std::min<long>(skip, options_.max_skip));
}

void RemoteStore::note_success_locked() {
  failure_streak_ = 0;
  skip_remaining_ = 0;
}

std::optional<wire::Message> RemoteStore::exchange_locked(wire::Op op, std::string_view body,
                                                          wire::Op expect) {
  std::chrono::milliseconds backoff = options_.initial_backoff;
  for (int attempt = 0; attempt < std::max(1, options_.max_attempts); ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, options_.max_backoff);
    }
    if (!ensure_connected_locked()) continue;
    if (!send_all(fd_, wire::encode_frame(op, body))) {
      drop_connection_locked();
      continue;
    }
    // Read exactly one reply frame (requests are strictly serial on
    // this connection, so the next complete message is ours).
    try {
      char buf[64 * 1024];
      for (;;) {
        if (auto msg = parser_.next()) {
          if (msg->op == wire::Op::kError) {
            ++stats_.protocol_errors;
            drop_connection_locked();
            break;  // retry (the server closes after ERROR anyway)
          }
          if (msg->op != expect) {
            ++stats_.protocol_errors;
            drop_connection_locked();
            break;
          }
          note_success_locked();
          return msg;
        }
        const long n = recv_some(fd_, buf, sizeof buf);
        if (n <= 0) {  // EOF, timeout, or reset mid-reply
          drop_connection_locked();
          break;
        }
        parser_.feed({buf, static_cast<std::size_t>(n)});
      }
    } catch (const wire::WireError&) {
      ++stats_.protocol_errors;
      drop_connection_locked();
    }
  }
  note_failure_locked();
  return std::nullopt;
}

std::optional<std::string> RemoteStore::lookup(const ScenarioKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (breaker_skips_locked()) return std::nullopt;
  auto reply = exchange_locked(wire::Op::kGet, wire::encode_key_body(key), wire::Op::kGetReply);
  if (!reply) return std::nullopt;
  try {
    auto blob = wire::decode_blob_reply(reply->body);
    blob ? ++stats_.hits : ++stats_.misses;
    return blob;
  } catch (const wire::WireError&) {
    ++stats_.protocol_errors;
    ++stats_.degraded;
    drop_connection_locked();
    return std::nullopt;
  }
}

std::vector<std::optional<std::string>> RemoteStore::lookup_many(
    const std::vector<ScenarioKey>& keys) {
  std::vector<std::optional<std::string>> out(keys.size());
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t start = 0; start < keys.size(); start += wire::kMultiGetBatch) {
    const std::size_t n = std::min(wire::kMultiGetBatch, keys.size() - start);
    if (breaker_skips_locked()) continue;  // the whole chunk degrades to misses
    const std::vector<ScenarioKey> chunk(keys.begin() + static_cast<std::ptrdiff_t>(start),
                                         keys.begin() + static_cast<std::ptrdiff_t>(start + n));
    auto reply = exchange_locked(wire::Op::kMultiGet, wire::encode_keys_body(chunk),
                                 wire::Op::kMultiGetReply);
    if (!reply) continue;
    try {
      auto blobs = wire::decode_blobs_reply(reply->body);
      if (blobs.size() != n) throw wire::WireError("MULTI_GET reply count mismatch");
      for (std::size_t i = 0; i < n; ++i) {
        blobs[i] ? ++stats_.hits : ++stats_.misses;
        out[start + i] = std::move(blobs[i]);
      }
    } catch (const wire::WireError&) {
      ++stats_.protocol_errors;
      ++stats_.degraded;
      drop_connection_locked();
      // Leave the chunk as misses; later chunks may still succeed.
    }
  }
  return out;
}

void RemoteStore::put(const ScenarioKey& key, std::string_view blob) {
  std::lock_guard<std::mutex> lock(mu_);
  if (breaker_skips_locked()) return;
  auto reply =
      exchange_locked(wire::Op::kPut, wire::encode_put_body(key, blob), wire::Op::kPutReply);
  if (!reply) return;
  try {
    if (wire::decode_status_body(reply->body) == 0) {
      ++stats_.puts;
    } else {
      ++stats_.degraded;  // server could not append durably: write dropped
    }
  } catch (const wire::WireError&) {
    ++stats_.protocol_errors;
    ++stats_.degraded;
    drop_connection_locked();
  }
}

bool RemoteStore::ping() {
  std::lock_guard<std::mutex> lock(mu_);
  if (breaker_skips_locked()) return false;
  const std::uint64_t nonce = 0x6d6e73703170696eull;  // arbitrary, echoed back
  auto reply =
      exchange_locked(wire::Op::kPing, wire::encode_nonce_body(nonce), wire::Op::kPong);
  if (!reply) return false;
  try {
    return wire::decode_nonce_body(reply->body) == nonce;
  } catch (const wire::WireError&) {
    ++stats_.protocol_errors;
    ++stats_.degraded;
    drop_connection_locked();
    return false;
  }
}

std::optional<wire::WireStats> RemoteStore::server_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  if (breaker_skips_locked()) return std::nullopt;
  auto reply = exchange_locked(wire::Op::kStats, {}, wire::Op::kStatsReply);
  if (!reply) return std::nullopt;
  try {
    return wire::decode_stats_reply(reply->body);
  } catch (const wire::WireError&) {
    ++stats_.protocol_errors;
    ++stats_.degraded;
    drop_connection_locked();
    return std::nullopt;
  }
}

RemoteStore::Stats RemoteStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

obs::MetricsSnapshot RemoteStore::metrics_snapshot() const {
  const Stats s = stats();
  obs::MetricsRegistry reg;
  reg.add(reg.counter("store.remote.hits"), static_cast<std::int64_t>(s.hits));
  reg.add(reg.counter("store.remote.misses"), static_cast<std::int64_t>(s.misses));
  reg.add(reg.counter("store.remote.puts"), static_cast<std::int64_t>(s.puts));
  reg.add(reg.counter("store.remote.reconnects"), static_cast<std::int64_t>(s.reconnects));
  reg.add(reg.counter("store.remote.degraded"), static_cast<std::int64_t>(s.degraded));
  reg.add(reg.counter("store.remote.skipped"), static_cast<std::int64_t>(s.skipped));
  reg.add(reg.counter("store.remote.protocol_errors"),
          static_cast<std::int64_t>(s.protocol_errors));
  return reg.snapshot();
}

}  // namespace mn::store::remote
