// RemoteStore: the campaign-side client of the store service.
//
// Implements the same store::Store interface campaign / sweep / chaos
// already consume, forwarding lookup/put over MNSP1 to a StoreServer.
// lookup_many() is overridden to batch whole plans into MULTI_GET
// round trips (kMultiGetBatch keys per request).
//
// Failure discipline — the headline contract of the tier: ANY failure
// (connect refused, timeout, reset, CRC mismatch, version mismatch,
// malformed reply, server-side ERROR) degrades to a cache miss for
// lookups and a dropped write for puts.  Nothing here ever throws for
// peer behaviour, so a dead, flaky, or malicious server can slow a
// campaign but can never fail it or change a byte of its output (runs
// simply re-execute, exactly as with a cold cache).
//
// Retry policy: each operation gets `max_attempts` tries with capped
// exponential backoff; when an operation still fails, a count-based
// circuit breaker degrades the next 2^streak operations instantly
// (capped at max_skip) so a dead server costs a campaign microseconds
// per run, not three connect timeouts.  Everything is observable via
// store.remote.* counters (hits, misses, puts, reconnects, degraded,
// skipped, protocol_errors).
//
// Thread-safety: one connection, mutex-serialized — safe to share
// across the parallel execute phase (only the serial plan-order phases
// do lookups, but puts come from worker threads).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "obs/metrics.hpp"
#include "store/remote/socket.hpp"
#include "store/remote/wire.hpp"
#include "store/store.hpp"

namespace mn::store::remote {

struct RemoteStoreOptions {
  std::string endpoint;  // parse_endpoint() format, e.g. "/run/mn.sock" or "host:port"
  /// Tries per operation before it degrades.
  int max_attempts = 3;
  /// Backoff between tries: initial, doubling, capped.
  std::chrono::milliseconds initial_backoff{5};
  std::chrono::milliseconds max_backoff{100};
  std::chrono::milliseconds connect_timeout{1000};
  std::chrono::milliseconds io_timeout{5000};
  /// Circuit-breaker cap: after repeated whole-operation failures, at
  /// most this many subsequent operations are skipped (degraded without
  /// touching the socket) before probing the server again.
  int max_skip = 64;
};

class RemoteStore : public Store {
 public:
  explicit RemoteStore(RemoteStoreOptions options);
  ~RemoteStore() override;
  RemoteStore(const RemoteStore&) = delete;
  RemoteStore& operator=(const RemoteStore&) = delete;

  [[nodiscard]] std::optional<std::string> lookup(const ScenarioKey& key) override;
  void put(const ScenarioKey& key, std::string_view blob) override;
  [[nodiscard]] std::vector<std::optional<std::string>> lookup_many(
      const std::vector<ScenarioKey>& keys) override;

  /// Round-trip a PING; false = degraded (and counted as such).
  [[nodiscard]] bool ping();
  /// The server's STATS counters, or nullopt when degraded.
  [[nodiscard]] std::optional<wire::WireStats> server_stats();

  struct Stats {
    std::uint64_t hits = 0;        // lookups answered with a blob
    std::uint64_t misses = 0;      // genuine server-side misses
    std::uint64_t puts = 0;        // acknowledged writes
    std::uint64_t reconnects = 0;  // connections established after the first
    std::uint64_t degraded = 0;    // operations that fell back to miss/drop
    std::uint64_t skipped = 0;     // of those: answered by the circuit breaker
    std::uint64_t protocol_errors = 0;  // WireError / ERROR replies seen
  };
  [[nodiscard]] Stats stats() const;
  /// store.remote.* registry view of the same counters, for exporters.
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const;

  [[nodiscard]] const Endpoint& endpoint() const { return endpoint_; }

 private:
  /// One request/reply exchange with retries; nullopt = degraded.
  /// Already holds no lock — callers lock mu_.
  [[nodiscard]] std::optional<wire::Message> exchange_locked(wire::Op op,
                                                            std::string_view body,
                                                            wire::Op expect);
  [[nodiscard]] bool ensure_connected_locked();
  void drop_connection_locked();
  [[nodiscard]] bool breaker_skips_locked();
  void note_failure_locked();
  void note_success_locked();

  RemoteStoreOptions options_;
  Endpoint endpoint_;

  mutable std::mutex mu_;
  int fd_ = -1;
  bool ever_connected_ = false;
  wire::FrameParser parser_;
  int failure_streak_ = 0;
  int skip_remaining_ = 0;
  Stats stats_;
};

}  // namespace mn::store::remote
