// Socket plumbing for the store service: endpoint parsing, bounded
// connects, and EINTR-safe send/recv — shared by StoreServer and
// RemoteStore so both sides agree on what "--socket <spec>" means.
//
//   <spec> := "unix:<path>" | "tcp:<host>:<port>"
//           | a path containing '/'            (Unix-domain socket)
//           | "<host>:<port>"                  (TCP)
//           | anything else                    (Unix-domain socket)
//
// Nothing here throws for *peer* behaviour (refused, reset, timeout) —
// those return error codes so RemoteStore can degrade to a miss.  Only
// local programming errors (unparseable spec, bind failures in the
// server) throw.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

namespace mn::store::remote {

struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  // kUnix: filesystem path of the socket
  std::string host;  // kTcp
  std::uint16_t port = 0;

  [[nodiscard]] std::string describe() const;
};

/// Parse a --socket spec.  Throws std::invalid_argument when a tcp spec
/// has a malformed port; never touches the filesystem.
[[nodiscard]] Endpoint parse_endpoint(const std::string& spec);

/// Connect with a deadline (nonblocking connect + poll).  Returns the
/// connected fd (blocking mode, SO_RCVTIMEO/SO_SNDTIMEO set to
/// `io_timeout`) or -1 with errno describing the failure.
[[nodiscard]] int connect_endpoint(const Endpoint& ep,
                                   std::chrono::milliseconds connect_timeout,
                                   std::chrono::milliseconds io_timeout);

/// Bind + listen.  For Unix endpoints a stale socket file left by a
/// dead server is unlinked first (a *live* server is excluded by the
/// serve.lock, not by the socket file).  Throws std::runtime_error on
/// failure.  The returned fd is nonblocking (the server poll loop).
[[nodiscard]] int listen_endpoint(const Endpoint& ep);

/// The port a tcp listener actually bound (for "port 0" in tests).
[[nodiscard]] std::uint16_t local_tcp_port(int fd);

/// Write the whole buffer, retrying on EINTR / partial writes.  Returns
/// false on any error (including a send timeout).
[[nodiscard]] bool send_all(int fd, std::string_view bytes);

/// One recv into `buf` (up to buf_len).  Returns >0 bytes read, 0 on
/// orderly EOF, -1 on error/timeout.
[[nodiscard]] long recv_some(int fd, char* buf, std::size_t buf_len);

}  // namespace mn::store::remote
