#include "store/remote/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <deque>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "store/lockfile.hpp"
#include "store/run_store.hpp"
#include "store/segment.hpp"
#include "store/segment_view.hpp"

namespace mn::store::remote {
namespace {

namespace fs = std::filesystem;

/// Where a live blob's bytes are: a mapped segment entry or an overlay
/// string appended this session.
struct IndexSlot {
  std::uint32_t segment = 0;  // index into mapped_, or kOverlay
  std::uint32_t entry = 0;    // index into that segment's scan entries
  static constexpr std::uint32_t kOverlay = 0xFFFFFFFFu;
};

}  // namespace

struct StoreServer::Impl {
  // ---- storage -------------------------------------------------------
  FileLock serve_lock;   // exclusive: the one server of this directory
  FileLock dir_lock;     // shared: the appender role
  std::vector<MappedSegment> mapped;
  std::unordered_map<ScenarioKey, IndexSlot, ScenarioKeyHash> index;
  std::unordered_map<ScenarioKey, std::string, ScenarioKeyHash> overlay;
  std::unique_ptr<SegmentWriter> writer;
  std::string dir;

  // ---- networking ----------------------------------------------------
  int listen_fd = -1;
  int wake_rd = -1;
  int wake_wr = -1;
  std::atomic<bool> stopping{false};

  struct Conn {
    int fd = -1;
    wire::FrameParser parser;
    std::string out;         // bytes not yet written
    std::size_t out_off = 0;
    bool close_after_flush = false;
  };
  std::deque<Conn> conns;

  // ---- counters (mutex: STATS is served from the poll thread but
  // stats() may be called from any thread) -----------------------------
  mutable std::mutex stats_mu;
  wire::WireStats counters;

  ~Impl() {
    for (Conn& c : conns) {
      if (c.fd >= 0) ::close(c.fd);
    }
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_rd >= 0) ::close(wake_rd);
    if (wake_wr >= 0) ::close(wake_wr);
  }

  // ---- store operations ---------------------------------------------
  void load() {
    for (const std::string& path : list_segment_files(dir)) {
      MappedSegment seg{path};
      if (seg.scan().version_mismatch) continue;  // foreign format: refused
      const auto seg_idx = static_cast<std::uint32_t>(mapped.size());
      const auto& entries = seg.scan().entries;
      for (std::uint32_t i = 0; i < entries.size(); ++i) {
        index[entries[i].key] = IndexSlot{seg_idx, i};  // later supersedes
      }
      mapped.push_back(std::move(seg));
    }
    std::lock_guard<std::mutex> lock(stats_mu);
    counters.segments = mapped.size();
    counters.entries = live_entries();
  }

  [[nodiscard]] std::uint64_t live_entries() const {
    // overlay keys may shadow mapped ones; the union is the live set.
    std::uint64_t extra = 0;
    for (const auto& [key, blob] : overlay) {
      if (index.find(key) == index.end()) ++extra;
    }
    return index.size() + extra;
  }

  [[nodiscard]] std::optional<std::string_view> get(const ScenarioKey& key) {
    if (const auto it = overlay.find(key); it != overlay.end()) return std::string_view{it->second};
    if (const auto it = index.find(key); it != index.end()) {
      const MappedSegment& seg = mapped[it->second.segment];
      return seg.blob(seg.scan().entries[it->second.entry]);
    }
    return std::nullopt;
  }

  /// Durable append + overlay insert.  Returns false when the disk
  /// write failed (the client gets a non-zero PUT status and treats the
  /// write as dropped; the server keeps serving).
  [[nodiscard]] bool put(const ScenarioKey& key, std::string blob) {
    try {
      if (!writer) writer = std::make_unique<SegmentWriter>(claim_next_segment(dir));
      const std::uint64_t appended = writer->append(key, blob);
      std::lock_guard<std::mutex> lock(stats_mu);
      counters.bytes_appended += appended;
    } catch (const std::exception&) {
      return false;
    }
    overlay[key] = std::move(blob);
    std::lock_guard<std::mutex> lock(stats_mu);
    counters.entries = live_entries();
    counters.segments = mapped.size() + 1;
    return true;
  }

  // ---- request handling ---------------------------------------------
  [[nodiscard]] std::string handle(const wire::Message& msg) {
    using wire::Op;
    switch (msg.op) {
      case Op::kPing:
        return wire::encode_frame(Op::kPong,
                                  wire::encode_nonce_body(wire::decode_nonce_body(msg.body)));
      case Op::kGet: {
        const ScenarioKey key = wire::decode_key_body(msg.body);
        const auto blob = get(key);
        {
          std::lock_guard<std::mutex> lock(stats_mu);
          ++counters.gets;
          blob ? ++counters.hits : ++counters.misses;
        }
        return wire::encode_frame(Op::kGetReply, wire::encode_blob_reply(blob));
      }
      case Op::kMultiGet: {
        const std::vector<ScenarioKey> keys = wire::decode_keys_body(msg.body);
        std::vector<std::optional<std::string_view>> blobs;
        blobs.reserve(keys.size());
        std::uint64_t hit = 0;
        for (const ScenarioKey& k : keys) {
          blobs.push_back(get(k));
          if (blobs.back()) ++hit;
        }
        {
          std::lock_guard<std::mutex> lock(stats_mu);
          ++counters.multi_gets;
          counters.hits += hit;
          counters.misses += keys.size() - hit;
        }
        return wire::encode_frame(Op::kMultiGetReply, wire::encode_blobs_reply(blobs));
      }
      case Op::kPut: {
        auto [key, blob] = wire::decode_put_body(msg.body);
        const bool ok = put(key, std::move(blob));
        {
          std::lock_guard<std::mutex> lock(stats_mu);
          if (ok) ++counters.puts;
        }
        return wire::encode_frame(Op::kPutReply, wire::encode_status_body(ok ? 0 : 1));
      }
      case Op::kStats: {
        std::lock_guard<std::mutex> lock(stats_mu);
        return wire::encode_frame(Op::kStatsReply, wire::encode_stats_reply(counters));
      }
      default:
        throw wire::WireError("request with reply-only op " +
                              std::to_string(static_cast<int>(msg.op)));
    }
  }

  // ---- connection plumbing ------------------------------------------
  void enqueue(Conn& c, std::string bytes) {
    if (c.out_off > 0 && c.out_off == c.out.size()) {
      c.out.clear();
      c.out_off = 0;
    }
    c.out += bytes;
    flush(c);
  }

  /// Write as much pending output as the socket accepts now.
  void flush(Conn& c) {
    while (c.out_off < c.out.size()) {
      const ssize_t n = ::send(c.fd, c.out.data() + c.out_off, c.out.size() - c.out_off,
                               MSG_NOSIGNAL);
      if (n > 0) {
        c.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;  // POLLOUT later
      close_conn(c);  // peer went away mid-write
      return;
    }
    if (c.close_after_flush) close_conn(c);
  }

  void close_conn(Conn& c) {
    if (c.fd >= 0) {
      ::close(c.fd);
      c.fd = -1;
    }
  }

  void read_conn(Conn& c) {
    char buf[64 * 1024];
    for (;;) {
      const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
      if (n > 0) {
        c.parser.feed({buf, static_cast<std::size_t>(n)});
        if (n < static_cast<ssize_t>(sizeof buf)) break;
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      close_conn(c);  // orderly EOF or hard error either way
      return;
    }
    // Serve every complete request in arrival order.  A protocol error
    // poisons the stream: answer ERROR, then close after flushing.
    try {
      while (auto msg = c.parser.next()) {
        if (c.fd < 0 || c.close_after_flush) return;
        enqueue(c, handle(*msg));
      }
    } catch (const wire::WireError& e) {
      {
        std::lock_guard<std::mutex> lock(stats_mu);
        ++counters.protocol_errors;
      }
      if (c.fd >= 0) {
        c.close_after_flush = true;
        enqueue(c, wire::encode_frame(wire::Op::kError, wire::encode_error_body(e.what())));
      }
    }
  }

  void accept_new() {
    for (;;) {
      const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN or transient accept error: poll again later
      }
      Conn c;
      c.fd = fd;
      conns.push_back(std::move(c));
      std::lock_guard<std::mutex> lock(stats_mu);
      ++counters.connections;
    }
  }

  void poll_once(int timeout_ms) {
    // Reap closed connections first so pollfds and conns stay aligned.
    for (auto it = conns.begin(); it != conns.end();) {
      it = (it->fd < 0) ? conns.erase(it) : std::next(it);
    }
    std::vector<pollfd> fds;
    fds.reserve(conns.size() + 2);
    fds.push_back({listen_fd, POLLIN, 0});
    fds.push_back({wake_rd, POLLIN, 0});
    for (const Conn& c : conns) {
      short events = POLLIN;
      if (c.out_off < c.out.size()) events |= POLLOUT;
      fds.push_back({c.fd, events, 0});
    }
    int rc;
    do {
      rc = ::poll(fds.data(), fds.size(), timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) return;
    if ((fds[1].revents & POLLIN) != 0) {
      char drain[64];
      while (::read(wake_rd, drain, sizeof drain) > 0) {
      }
    }
    if ((fds[0].revents & POLLIN) != 0) accept_new();
    // conns may grow during accept; only the polled prefix has revents.
    const std::size_t polled = fds.size() - 2;
    for (std::size_t i = 0; i < polled && i < conns.size(); ++i) {
      Conn& c = conns[i];
      if (c.fd < 0) continue;
      const short re = fds[i + 2].revents;
      if ((re & (POLLERR | POLLHUP | POLLNVAL)) != 0 && (re & POLLIN) == 0) {
        close_conn(c);
        continue;
      }
      if ((re & POLLOUT) != 0) flush(c);
      if (c.fd >= 0 && (re & POLLIN) != 0) read_conn(c);
    }
  }
};

StoreServer::StoreServer(StoreServerOptions options) : options_(std::move(options)) {
  endpoint_ = parse_endpoint(options_.socket_spec);
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) throw std::runtime_error("store server: cannot create directory " + options_.dir);

  impl_ = std::make_unique<Impl>();
  impl_->dir = options_.dir;
  impl_->serve_lock = FileLock::try_exclusive(serve_lock_path(options_.dir));
  if (!impl_->serve_lock.held()) {
    throw std::runtime_error("store server: " + options_.dir +
                             " is already served by another mn_store serve process");
  }
  impl_->dir_lock = FileLock::shared(store_lock_path(options_.dir));
  impl_->load();

  impl_->listen_fd = listen_endpoint(endpoint_);
  if (endpoint_.kind == Endpoint::Kind::kTcp && endpoint_.port == 0) {
    endpoint_.port = local_tcp_port(impl_->listen_fd);
  }
  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    throw std::runtime_error("store server: pipe2: " + std::string{std::strerror(errno)});
  }
  impl_->wake_rd = pipe_fds[0];
  impl_->wake_wr = pipe_fds[1];
}

StoreServer::~StoreServer() {
  if (impl_ && endpoint_.kind == Endpoint::Kind::kUnix) {
    ::unlink(endpoint_.path.c_str());  // best effort; stale files are reclaimed anyway
  }
}

void StoreServer::run() {
  while (!impl_->stopping) poll_once(200);
}

void StoreServer::stop() {
  impl_->stopping = true;
  const char byte = 'w';
  ssize_t rc;
  do {
    rc = ::write(impl_->wake_wr, &byte, 1);
  } while (rc < 0 && errno == EINTR);
}

void StoreServer::poll_once(int timeout_ms) { impl_->poll_once(timeout_ms); }

std::uint16_t StoreServer::tcp_port() const { return endpoint_.port; }

wire::WireStats StoreServer::stats() const {
  std::lock_guard<std::mutex> lock(impl_->stats_mu);
  return impl_->counters;
}

obs::MetricsSnapshot StoreServer::metrics_snapshot() const {
  const wire::WireStats s = stats();
  obs::MetricsRegistry reg;
  reg.add(reg.counter("store.server.gets"), static_cast<std::int64_t>(s.gets));
  reg.add(reg.counter("store.server.multi_gets"), static_cast<std::int64_t>(s.multi_gets));
  reg.add(reg.counter("store.server.hits"), static_cast<std::int64_t>(s.hits));
  reg.add(reg.counter("store.server.misses"), static_cast<std::int64_t>(s.misses));
  reg.add(reg.counter("store.server.puts"), static_cast<std::int64_t>(s.puts));
  reg.add(reg.counter("store.server.bytes_appended"),
          static_cast<std::int64_t>(s.bytes_appended));
  reg.add(reg.counter("store.server.connections"), static_cast<std::int64_t>(s.connections));
  reg.add(reg.counter("store.server.protocol_errors"),
          static_cast<std::int64_t>(s.protocol_errors));
  reg.set(reg.gauge("store.server.entries"), static_cast<std::int64_t>(s.entries));
  reg.set(reg.gauge("store.server.segments"), static_cast<std::int64_t>(s.segments));
  return reg.snapshot();
}

}  // namespace mn::store::remote
