#include "store/segment.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "store/codec.hpp"
#include "util/crc32.hpp"

namespace mn::store {
namespace {

constexpr std::size_t kHeaderBytes = 6 + 4;       // magic + version
constexpr std::size_t kFooterBytes = 8 + 4 + 8;   // index offset + crc + magic
constexpr std::size_t kRecordKeyBytes = 16;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("store segment: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::uint32_t le_u32(std::string_view bytes, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at + static_cast<std::size_t>(i)]))
         << (i * 8);
  }
  return v;
}

std::uint64_t le_u64(std::string_view bytes, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[at + static_cast<std::size_t>(i)]))
         << (i * 8);
  }
  return v;
}

/// Locate a valid footer; returns the index-frame offset or npos.
std::size_t find_index_offset(std::string_view data) {
  if (data.size() < kHeaderBytes + kFooterBytes) return std::string::npos;
  const std::size_t foot = data.size() - kFooterBytes;
  if (data.substr(foot + 12, 8) != kFooterMagic) return std::string::npos;
  if (crc32(data.substr(foot, 8)) != le_u32(data, foot + 8)) return std::string::npos;
  const std::uint64_t index_offset = le_u64(data, foot);
  if (index_offset < kHeaderBytes || index_offset >= foot) return std::string::npos;
  return static_cast<std::size_t>(index_offset);
}

}  // namespace

SegmentScan scan_segment(std::string_view data) {
  SegmentScan res;

  if (data.empty()) {
    // A claimed segment whose writer died before the header: nothing to
    // read, nothing wrong — the crash-tolerance contract of a torn tail.
    res.note = "empty segment (claimed, never written)";
    return res;
  }
  if (data.size() < kHeaderBytes || data.substr(0, 6) != kSegmentMagic) {
    res.version_mismatch = true;
    res.note = "not an MNRS1 segment";
    return res;
  }
  if (const std::uint32_t version = le_u32(data, 6); version != kSegmentFormatVersion) {
    res.version_mismatch = true;
    res.note = "unknown MNRS1 format version " + std::to_string(version);
    return res;
  }

  const std::size_t index_offset = find_index_offset(data);
  const bool has_footer = index_offset != std::string::npos;
  // Frames end where the index frame begins (sealed) or at EOF (active).
  const std::size_t frame_end = has_footer ? index_offset : data.size();
  std::uint64_t indexed_records = 0;

  std::size_t pos = kHeaderBytes;
  while (pos < frame_end) {
    if (frame_end - pos < kFrameHeaderBytes) {
      // Torn mid-header: truncate to the last valid frame.
      ++res.torn_frames;
      res.truncated_bytes = frame_end - pos;
      res.note += "torn frame header at offset " + std::to_string(pos) + "; ";
      break;
    }
    const std::uint32_t len = le_u32(data, pos);
    const auto type = static_cast<std::uint8_t>(data[pos + 8]);
    const bool plausible =
        len <= kMaxFramePayload && len <= frame_end - pos - kFrameHeaderBytes &&
        (type == static_cast<std::uint8_t>(FrameType::kRecord) ||
         type == static_cast<std::uint8_t>(FrameType::kIndex));
    if (!plausible) {
      // The length itself is untrustworthy: everything from here on is
      // unreachable.  Truncate (the crash-mid-append case lands here).
      ++res.torn_frames;
      res.truncated_bytes = frame_end - pos;
      res.note += "implausible frame at offset " + std::to_string(pos) + "; ";
      break;
    }
    const std::string_view payload{data.data() + pos + kFrameHeaderBytes, len};
    if (crc32(payload) != le_u32(data, pos + 4)) {
      // Payload damaged but the header still frames it: skip exactly
      // this frame and resynchronize on the next boundary.
      ++res.torn_frames;
      res.note += "bad CRC at offset " + std::to_string(pos) + "; ";
      pos += kFrameHeaderBytes + len;
      continue;
    }
    if (type == static_cast<std::uint8_t>(FrameType::kRecord)) {
      if (len < kRecordKeyBytes) {
        ++res.torn_frames;
        res.note += "short record at offset " + std::to_string(pos) + "; ";
      } else {
        ScanEntry e;
        e.key.hi = le_u64(data, pos + kFrameHeaderBytes);
        e.key.lo = le_u64(data, pos + kFrameHeaderBytes + 8);
        e.offset = pos;
        e.blob_offset = pos + kFrameHeaderBytes + kRecordKeyBytes;
        e.blob_len = len - kRecordKeyBytes;
        res.entries.push_back(e);
      }
    }
    // Stray index frames before the footer's one carry no records; skip.
    pos += kFrameHeaderBytes + len;
  }

  if (has_footer) {
    // Cross-check the footer index against the scan.
    bool index_ok = false;
    if (data.size() - index_offset >= kFrameHeaderBytes) {
      const std::uint32_t len = le_u32(data, index_offset);
      const auto type = static_cast<std::uint8_t>(data[index_offset + 8]);
      if (type == static_cast<std::uint8_t>(FrameType::kIndex) &&
          len <= data.size() - index_offset - kFrameHeaderBytes) {
        const std::string_view payload{data.data() + index_offset + kFrameHeaderBytes, len};
        if (crc32(payload) == le_u32(data, index_offset + 4) && len >= 8) {
          indexed_records = le_u64(data, index_offset + kFrameHeaderBytes);
          index_ok = true;
        }
      }
    }
    if (index_ok && indexed_records == res.entries.size() && res.torn_frames == 0) {
      res.sealed = true;
    } else if (index_ok) {
      res.note += "sealed index lists " + std::to_string(indexed_records) + " records, " +
                  std::to_string(res.entries.size()) + " readable; ";
      if (indexed_records != res.entries.size()) ++res.torn_frames;
    } else {
      ++res.torn_frames;
      res.note += "footer present but index frame unreadable; ";
    }
  }
  return res;
}

SegmentReadResult read_segment(const std::string& path) {
  const std::string data = read_file(path);
  const SegmentScan scan = scan_segment(data);
  SegmentReadResult res;
  res.sealed = scan.sealed;
  res.version_mismatch = scan.version_mismatch;
  res.torn_frames = scan.torn_frames;
  res.truncated_bytes = scan.truncated_bytes;
  res.note = scan.note;
  res.entries.reserve(scan.entries.size());
  for (const ScanEntry& e : scan.entries) {
    SegmentEntry out;
    out.key = e.key;
    out.offset = e.offset;
    out.blob.assign(data, e.blob_offset, e.blob_len);
    res.entries.push_back(std::move(out));
  }
  return res;
}

SegmentWriter::SegmentWriter(std::string path) : path_(std::move(path)) {
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_) throw std::runtime_error("store segment: cannot create " + path_);
  out_.write(kSegmentMagic.data(), static_cast<std::streamsize>(kSegmentMagic.size()));
  BinWriter header;
  header.put_u32(kSegmentFormatVersion);
  out_.write(header.bytes().data(), static_cast<std::streamsize>(header.bytes().size()));
  out_.flush();
  if (!out_) throw std::runtime_error("store segment: write failed on " + path_);
  offset_ = kHeaderBytes;
  bytes_written_ = kHeaderBytes;
}

SegmentWriter::~SegmentWriter() {
  try {
    seal();
  } catch (...) {
    // Destructor best-effort: an unsealed segment is still fully
    // readable via the scan path.
  }
}

void SegmentWriter::write_frame(FrameType type, std::string_view payload) {
  BinWriter header;
  header.put_u32(static_cast<std::uint32_t>(payload.size()));
  header.put_u32(crc32(payload));
  header.put_u8(static_cast<std::uint8_t>(type));
  out_.write(header.bytes().data(), static_cast<std::streamsize>(header.bytes().size()));
  out_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out_.flush();
  if (!out_) throw std::runtime_error("store segment: write failed on " + path_);
  offset_ += kFrameHeaderBytes + payload.size();
  bytes_written_ += kFrameHeaderBytes + payload.size();
}

std::uint64_t SegmentWriter::append(const ScenarioKey& key, std::string_view blob) {
  if (sealed_) throw std::logic_error("store segment: append after seal");
  if (blob.size() > kMaxFramePayload - kRecordKeyBytes) {
    throw std::length_error("store segment: record blob too large");
  }
  const std::uint64_t frame_offset = offset_;
  BinWriter payload;
  payload.put_u64(key.hi);
  payload.put_u64(key.lo);
  std::string bytes = payload.take();
  bytes.append(blob.data(), blob.size());
  write_frame(FrameType::kRecord, bytes);
  index_.push_back({key, frame_offset});
  return kFrameHeaderBytes + bytes.size();
}

void SegmentWriter::seal() {
  if (sealed_) return;
  sealed_ = true;
  const std::uint64_t index_offset = offset_;
  BinWriter payload;
  payload.put_u64(index_.size());
  for (const IndexEntry& e : index_) {
    payload.put_u64(e.key.hi);
    payload.put_u64(e.key.lo);
    payload.put_u64(e.offset);
  }
  write_frame(FrameType::kIndex, payload.bytes());
  BinWriter footer;
  footer.put_u64(index_offset);
  footer.put_u32(crc32(footer.bytes()));  // crc over the 8 offset bytes
  std::string foot = footer.take();
  foot.append(kFooterMagic.data(), kFooterMagic.size());
  out_.write(foot.data(), static_cast<std::streamsize>(foot.size()));
  out_.flush();
  if (!out_) throw std::runtime_error("store segment: write failed on " + path_);
  bytes_written_ += foot.size();
  out_.close();
}

}  // namespace mn::store
