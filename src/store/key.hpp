// Canonical scenario keying for the result store.
//
// A ScenarioKey is a 128-bit content hash over a canonical little-endian
// binary encoding of everything that can affect a work unit's result:
// the pre-drawn RunPlan fields, the result-affecting experiment options,
// and a format-version salt.  Two invariants make it a safe cache key:
//
//   1. *Canonical encoding*: every field is appended in a fixed order
//      with explicit widths (strings length-prefixed), so the key never
//      depends on struct padding, platform layout, or locale.  Keys are
//      a function of one run's own inputs only — never of plan order,
//      sibling runs, or parallelism.
//   2. *Version salt*: kRunFormatVersion is absorbed first.  Any change
//      to run semantics (simulator behaviour, probe structure, record
//      layout) bumps it, silently invalidating every old entry — a
//      version-mismatched lookup is a clean miss, never a stale hit.
//
// The hash is FNV-1a/128 with a splitmix64 finalizer on both halves.
// It is a *content* hash for memoization, not a cryptographic MAC: the
// store trusts its own files (CRC-framed, see segment.hpp) and 128 bits
// make accidental collisions across any realistic campaign grid
// (billions of runs) vanishingly unlikely.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mn::store {

/// Bump on ANY change that alters what a cached run would produce:
/// simulator semantics, probe sequences, record serialization, metric
/// names.  Old entries then key differently and simply never hit.
/// v2: middlebox adversary layer — MPTCP negotiation/fallback state
/// machine changed flow semantics, campaign grew an MPTCP probe phase,
/// and the chaos/run record blobs carry negotiation fields.
inline constexpr std::uint32_t kRunFormatVersion = 2;

struct ScenarioKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend constexpr auto operator<=>(const ScenarioKey&, const ScenarioKey&) = default;

  /// 32 lowercase hex characters, hi half first (stable display form).
  [[nodiscard]] std::string hex() const;

  /// Inverse of hex(): exactly 32 hex digits (either case), or nullopt.
  /// Operator tooling takes keys on the command line in this form.
  [[nodiscard]] static std::optional<ScenarioKey> from_hex(std::string_view s);
};

/// For unordered_map: the key is already a high-quality hash.
struct ScenarioKeyHash {
  [[nodiscard]] std::size_t operator()(const ScenarioKey& k) const noexcept {
    return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9E3779B97F4A7C15ull));
  }
};

/// Streaming canonical encoder + hasher.  `domain` separates key spaces
/// (e.g. "campaign-run" vs "sweep-point") so identical field sequences
/// in different subsystems can never collide; `version` is the format
/// salt (tests inject mismatched versions to prove clean misses).
class KeyBuilder {
 public:
  explicit KeyBuilder(std::string_view domain,
                      std::uint32_t version = kRunFormatVersion);

  KeyBuilder& u8(std::uint8_t v);
  KeyBuilder& u32(std::uint32_t v);
  KeyBuilder& u64(std::uint64_t v);
  KeyBuilder& i64(std::int64_t v);
  /// Bit-exact: encodes the IEEE-754 representation, so keys distinguish
  /// -0.0 from 0.0 and every NaN payload (determinism over prettiness).
  KeyBuilder& f64(double v);
  KeyBuilder& boolean(bool v);
  /// Length-prefixed, so "ab"+"c" never encodes like "a"+"bc".
  KeyBuilder& str(std::string_view s);

  [[nodiscard]] ScenarioKey finish() const;

 private:
  void absorb(const void* data, std::size_t len);

  unsigned __int128 h_;
};

}  // namespace mn::store
