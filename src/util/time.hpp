// Simulated-time primitives for the multinet discrete-event world.
//
// All simulation time is integral microseconds.  We use strong types
// (distinct from std::chrono) so that simulated time can never be
// accidentally mixed with wall-clock time: nothing in this library ever
// consults the host clock, which is what makes every experiment
// bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>

namespace mn {

/// A span of simulated time, in microseconds.  Value type; totally ordered.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t usec) : usec_(usec) {}

  [[nodiscard]] constexpr std::int64_t usec() const { return usec_; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(usec_) / 1e6; }
  [[nodiscard]] constexpr double millis() const { return static_cast<double>(usec_) / 1e3; }

  friend constexpr auto operator<=>(Duration, Duration) = default;
  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.usec_ + b.usec_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.usec_ - b.usec_}; }
  friend constexpr Duration operator*(Duration a, std::int64_t k) { return Duration{a.usec_ * k}; }
  friend constexpr Duration operator*(std::int64_t k, Duration a) { return a * k; }
  friend constexpr Duration operator/(Duration a, std::int64_t k) { return Duration{a.usec_ / k}; }
  constexpr Duration& operator+=(Duration o) { usec_ += o.usec_; return *this; }
  constexpr Duration& operator-=(Duration o) { usec_ -= o.usec_; return *this; }

 private:
  std::int64_t usec_ = 0;
};

constexpr Duration usec(std::int64_t n) { return Duration{n}; }
constexpr Duration msec(std::int64_t n) { return Duration{n * 1000}; }
constexpr Duration sec(std::int64_t n) { return Duration{n * 1'000'000}; }
/// Fractional seconds, rounded to the nearest microsecond.
constexpr Duration secs_f(double s) { return Duration{static_cast<std::int64_t>(s * 1e6 + (s >= 0 ? 0.5 : -0.5))}; }

/// An instant of simulated time (microseconds since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(std::int64_t usec) : usec_(usec) {}

  [[nodiscard]] constexpr std::int64_t usec() const { return usec_; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(usec_) / 1e6; }

  [[nodiscard]] static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;
  friend constexpr TimePoint operator+(TimePoint t, Duration d) { return TimePoint{t.usec_ + d.usec()}; }
  friend constexpr TimePoint operator+(Duration d, TimePoint t) { return t + d; }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) { return TimePoint{t.usec_ - d.usec()}; }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) { return Duration{a.usec_ - b.usec_}; }
  constexpr TimePoint& operator+=(Duration d) { usec_ += d.usec(); return *this; }

 private:
  std::int64_t usec_ = 0;
};

}  // namespace mn
