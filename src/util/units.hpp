// Byte-count and data-rate helpers.
//
// Sizes are plain std::int64_t byte counts (the codebase moves a lot of
// them; a strong type here buys little and costs ergonomics), but all
// *conversions* between bytes, durations, and megabits/second go through
// the named helpers below so the 1e6-vs-2^20 and bits-vs-bytes pitfalls
// live in exactly one place.  Throughputs follow the paper's convention:
// "mbps" means 1e6 bits per second, and "1 MB flow" means 1e6 bytes.
#pragma once

#include <cstdint>

#include "util/time.hpp"

namespace mn {

constexpr std::int64_t kKB = 1000;        // paper uses decimal KB/MB
constexpr std::int64_t kMB = 1000 * 1000;

/// Throughput in megabits/second for `bytes` transferred over `elapsed`.
/// Returns 0 for a non-positive duration (e.g. a flow that never started).
constexpr double throughput_mbps(std::int64_t bytes, Duration elapsed) {
  if (elapsed.usec() <= 0) return 0.0;
  return static_cast<double>(bytes) * 8.0 / static_cast<double>(elapsed.usec());
}

/// Time to serialize `bytes` onto a link of `mbps` megabits/second.
constexpr Duration transmission_time(std::int64_t bytes, double mbps) {
  if (mbps <= 0.0) return Duration{0};
  const double usecs = static_cast<double>(bytes) * 8.0 / mbps;
  return Duration{static_cast<std::int64_t>(usecs + 0.5)};
}

/// Bytes deliverable at `mbps` within `elapsed`.
constexpr std::int64_t bytes_at_rate(double mbps, Duration elapsed) {
  return static_cast<std::int64_t>(mbps * static_cast<double>(elapsed.usec()) / 8.0);
}

}  // namespace mn
