// Deterministic random-number generation.
//
// Every stochastic component in multinet draws from an explicitly seeded
// Rng; there is no global generator and no entropy source, so identical
// seeds give identical experiments on every platform (we rely only on
// distributions implemented here, not on libstdc++'s, whose outputs are
// not specified by the standard).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace mn {

/// splitmix64/xoshiro256++-based generator: small, fast, reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Derive an independent child stream (for per-component seeding).
  [[nodiscard]] Rng fork(std::string_view label);

  /// Uniform over the full 64-bit range.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller (deterministic pairing).
  double normal(double mean = 0.0, double stddev = 1.0);
  /// Log-normal: exp(N(mu, sigma)) — the paper-world's rate distributions.
  double lognormal(double mu, double sigma);
  /// Exponential with the given mean (NOT rate).
  double exponential(double mean);
  /// Bernoulli trial.
  bool chance(double p);

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

/// Derive an independent seed from (seed, label) without constructing an
/// Rng — splitmix64 over seed XOR FNV-1a(label).  Used wherever one
/// user-facing seed must fan out into uncorrelated component streams
/// (e.g. the two directions of a duplex path).
[[nodiscard]] std::uint64_t mix_seed(std::uint64_t seed, std::string_view label);

/// Fisher-Yates shuffle (deterministic given the Rng state).
template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

}  // namespace mn
