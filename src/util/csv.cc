#include "util/csv.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

namespace mn {
namespace {

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cur;
  for (char ch : line) {
    if (ch == ',') {
      cells.push_back(std::move(cur));
      cur.clear();
    } else if (ch != '\r') {
      cur.push_back(ch);
    }
  }
  cells.push_back(std::move(cur));
  return cells;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {}

void CsvWriter::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::runtime_error("CSV row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::str() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << cells[i];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void CsvWriter::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out << str();
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::size_t CsvData::col(const std::string& name) const {
  if (const auto i = find_col(name)) return *i;
  throw std::runtime_error("CSV column not found: " + name);
}

std::optional<std::size_t> CsvData::find_col(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  return std::nullopt;
}

CsvData parse_csv(const std::string& text) {
  CsvData data;
  std::istringstream in(text);
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto cells = split_line(line);
    if (first) {
      data.header = std::move(cells);
      first = false;
    } else {
      if (cells.size() != data.header.size()) {
        throw std::runtime_error("CSV ragged row");
      }
      data.rows.push_back(std::move(cells));
    }
  }
  return data;
}

std::string format_double(double v) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) throw std::runtime_error("format_double: to_chars failed");
  return std::string(buf, end);
}

double parse_double(const std::string& cell) {
  double v = 0.0;
  const char* first = cell.data();
  const char* last = first + cell.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last || cell.empty()) {
    throw std::runtime_error("not a number: \"" + cell + "\"");
  }
  return v;
}

CsvData load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_csv(buf.str());
}

}  // namespace mn
