// ASCII renderings of the paper's figure types, so each figure bench can
// print a curve a human can compare against the paper at a glance:
//   - CDF / line plots  (Figures 3, 4, 6, 8, 13, 14, ...)
//   - event timelines   (Figure 15 packet patterns)
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace mn {

struct Series {
  std::string name;
  std::vector<std::pair<double, double>> points;  // (x, y)
};

struct PlotOptions {
  int width = 72;    // plot area columns
  int height = 18;   // plot area rows
  std::string x_label = "x";
  std::string y_label = "y";
  // If set, clamp the x-axis; otherwise autoscale to the data.
  bool fix_x = false;
  double x_min = 0.0;
  double x_max = 1.0;
  bool fix_y = false;
  double y_min = 0.0;
  double y_max = 1.0;
};

/// Render one or more series on a shared axis grid.  Each series is drawn
/// with its own glyph and listed in a legend below the plot.
[[nodiscard]] std::string render_plot(const std::vector<Series>& series,
                                      const PlotOptions& options);

/// Render a Figure-15-style packet timeline: one lane per label, a tick
/// per event time.
[[nodiscard]] std::string render_timeline(
    const std::vector<std::pair<std::string, std::vector<double>>>& lanes,
    double t_max_seconds, int width = 90);

}  // namespace mn
