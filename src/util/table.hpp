// Plain-text table rendering for bench output.
//
// Every table/figure bench prints its rows through Table so that the
// regenerated artifacts are aligned, diff-able, and easy to eyeball
// against the paper.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mn {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Formats a double with `prec` digits after the decimal point.
  static std::string num(double v, int prec = 2);
  /// Formats as a percentage, e.g. 0.42 -> "42%".
  static std::string pct(double fraction, int prec = 0);

  void print(std::ostream& os) const;

  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mn
