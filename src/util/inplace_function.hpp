// InplaceFunction: a move-only std::function replacement whose callable
// lives inside the object (small-buffer storage), so storing and moving
// one never touches the heap for captures up to `Capacity` bytes.
//
// The simulator keeps one of these inline in every event slot — the
// whole point of the slab engine is that scheduling a packet hop costs
// zero allocations, which std::function cannot promise (its SBO is
// implementation-defined and typically ~16 bytes).  Oversized or
// throwing-move callables still work: they fall back to a heap box, and
// every fallback bumps a process-wide counter so a regression that
// silently re-introduces per-event allocation shows up in the perf
// numbers (`BENCH_*.json` records it as `allocs`) and in tests.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>

namespace mn {

namespace detail {
inline std::atomic<std::uint64_t>& inplace_heap_counter() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}
}  // namespace detail

/// Process-wide count of InplaceFunction constructions that had to box
/// their callable on the heap (capture larger than the buffer, or a
/// move constructor that may throw).  Stays 0 on the allocation-free
/// common path; benches and tests assert on it.
[[nodiscard]] inline std::uint64_t inplace_function_heap_fallbacks() {
  return detail::inplace_heap_counter().load(std::memory_order_relaxed);
}

template <class Sig, std::size_t Capacity = 64>
class InplaceFunction;

template <class R, class... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  static constexpr std::size_t kCapacity = Capacity;

  InplaceFunction() noexcept = default;
  InplaceFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, InplaceFunction> &&
                                     !std::is_same_v<D, std::nullptr_t> &&
                                     std::is_invocable_r_v<R, D&, Args...>>>
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    construct(std::forward<F>(f));
  }

  /// Destroy the current callable (if any) and construct `f` directly
  /// in the buffer — no intermediate InplaceFunction, no relocation.
  /// The simulator's schedule path uses this to build each event
  /// callback straight into its slab slot.
  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, InplaceFunction> &&
                                     !std::is_same_v<D, std::nullptr_t> &&
                                     std::is_invocable_r_v<R, D&, Args...>>>
  void emplace(F&& f) {
    reset();
    construct(std::forward<F>(f));
  }

  InplaceFunction(InplaceFunction&& other) noexcept { take(other); }
  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }
  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;
  InplaceFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }
  ~InplaceFunction() { reset(); }

  void reset() noexcept {
    if (vtable_) {
      // Trivially-destructible inline callables (the per-event common
      // case: lambdas capturing pointers and integers) skip the
      // indirect destroy call entirely.
      if (!vtable_->trivial) vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept { return vtable_ != nullptr; }

  R operator()(Args... args) const {
    return vtable_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    // Move-construct `dst` from `src`, then destroy `src` (relocation).
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void*) noexcept;
    // Inline callable that is trivially copyable AND trivially
    // destructible: relocation is a raw memcpy and destruction a no-op,
    // so moves/resets never make an indirect call.
    bool trivial;
  };

  template <class D>
  static constexpr bool fits_inline = sizeof(D) <= Capacity &&
                                      alignof(D) <= alignof(std::max_align_t) &&
                                      std::is_nothrow_move_constructible_v<D>;

  template <class D>
  static constexpr VTable kInlineOps{
      [](void* p, Args&&... args) -> R {
        return (*static_cast<D*>(p))(std::forward<Args>(args)...);
      },
      [](void* src, void* dst) noexcept {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* p) noexcept { static_cast<D*>(p)->~D(); },
      std::is_trivially_copyable_v<D> && std::is_trivially_destructible_v<D>};

  template <class D>
  static constexpr VTable kHeapOps{
      [](void* p, Args&&... args) -> R {
        return (**static_cast<D**>(p))(std::forward<Args>(args)...);
      },
      [](void* src, void* dst) noexcept { ::new (dst) D*(*static_cast<D**>(src)); },
      [](void* p) noexcept { delete *static_cast<D**>(p); },
      false};

  template <class F, class D = std::decay_t<F>>
  void construct(F&& f) {
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      vtable_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      vtable_ = &kHeapOps<D>;
      detail::inplace_heap_counter().fetch_add(1, std::memory_order_relaxed);
    }
  }

  void take(InplaceFunction& other) noexcept {
    if (other.vtable_) {
      if (other.vtable_->trivial) {
        // Fixed-size copy: compiles to a handful of vector moves.
        std::memcpy(storage_, other.storage_, kStorageBytes);
      } else {
        other.vtable_->relocate(other.storage_, storage_);
      }
      vtable_ = other.vtable_;
      other.vtable_ = nullptr;
    }
  }

  static constexpr std::size_t kStorageBytes =
      Capacity < sizeof(void*) ? sizeof(void*) : Capacity;
  alignas(std::max_align_t) mutable std::byte storage_[kStorageBytes];
  const VTable* vtable_ = nullptr;
};

}  // namespace mn
