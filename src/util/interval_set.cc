#include "util/interval_set.hpp"

#include <algorithm>

namespace mn {

std::int64_t IntervalSet::add(std::int64_t start, std::int64_t end) {
  if (end <= start) return 0;
  std::int64_t gained = end - start;

  // Find the first interval that could overlap or touch [start, end).
  auto it = intervals_.upper_bound(start);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) it = prev;
  }
  // Merge all overlapping/adjacent intervals into [start, end).
  while (it != intervals_.end() && it->first <= end) {
    gained -= std::min(it->second, end) - std::max(it->first, start);
    start = std::min(start, it->first);
    end = std::max(end, it->second);
    it = intervals_.erase(it);
  }
  intervals_.emplace(start, end);
  total_ += std::max<std::int64_t>(gained, 0);
  const auto& first = *intervals_.begin();
  prefix_ = (first.first <= 0 && first.second > 0) ? first.second : 0;
  return std::max<std::int64_t>(gained, 0);
}

std::int64_t IntervalSet::contiguous_from_slow(std::int64_t from) const {
  auto it = intervals_.upper_bound(from);
  if (it == intervals_.begin()) return 0;
  --it;
  if (it->second <= from) return 0;
  return it->second - from;
}

bool IntervalSet::covers(std::int64_t start, std::int64_t end) const {
  if (end <= start) return true;
  auto it = intervals_.upper_bound(start);
  if (it == intervals_.begin()) return false;
  --it;
  return it->second >= end;
}

}  // namespace mn
