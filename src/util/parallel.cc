#include "util/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace mn {

int env_threads() {
  if (const char* v = std::getenv("MN_THREADS")) {
    const int n = std::atoi(v);
    if (n > 0) return n;
  }
  return 0;
}

int resolve_parallelism(int requested) {
  return requested < 0 ? env_threads() : requested;
}

void parallel_for(std::size_t n, int parallelism,
                  const std::function<void(std::size_t)>& fn) {
  const int threads = resolve_parallelism(parallelism);
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  const std::size_t workers = std::min(static_cast<std::size_t>(threads), n);
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;

  auto work = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(work);
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace mn
