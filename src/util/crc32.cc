#include "util/crc32.hpp"

#include <array>

namespace mn {
namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

std::uint32_t update(std::uint32_t state, const unsigned char* p, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    state = kCrcTable[(state ^ p[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len) {
  return update(0xFFFFFFFFu, static_cast<const unsigned char*>(data), len) ^ 0xFFFFFFFFu;
}

Crc32& Crc32::feed(const void* data, std::size_t len) {
  state_ = update(state_, static_cast<const unsigned char*>(data), len);
  return *this;
}

}  // namespace mn
