// Statistics helpers: running moments, quantiles, and empirical CDFs.
//
// The paper reports almost everything as a CDF or a median of a derived
// quantity (throughput differences, relative differences, RTT deltas).
// EmpiricalDistribution is the one-stop container benches use to build
// those curves and read off medians / win-fractions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mn {

/// Welford running mean/variance.  O(1) space, numerically stable.
class OnlineStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A sample set with CDF / quantile queries.  The sample vector is kept
/// sorted on every mutation, so all const accessors are pure reads —
/// many threads may query one distribution concurrently as long as no
/// thread is mutating it (the usual const-method contract).
class EmpiricalDistribution {
 public:
  EmpiricalDistribution() = default;
  explicit EmpiricalDistribution(std::vector<double> samples);

  void add(double x);
  void add_all(const std::vector<double>& xs);

  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Quantile via linear interpolation between order statistics; q in [0,1].
  /// On an empty sample set, returns quiet NaN (as do median/min/max):
  /// a campaign where every run failed filtering has no quantiles, and
  /// aggregation pipelines must stay exception-free — callers that care
  /// check empty() or std::isnan.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const { return quantile(0.0); }
  [[nodiscard]] double max() const { return quantile(1.0); }

  /// Empirical CDF value: fraction of samples <= x.
  [[nodiscard]] double cdf_at(double x) const;
  /// Fraction of samples strictly below zero — the paper's "LTE wins"
  /// region when samples are Tput(WiFi) - Tput(LTE).
  [[nodiscard]] double fraction_below(double x) const;

  /// (value, cumulative-fraction) pairs suitable for plotting a CDF curve.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf_points() const;

  [[nodiscard]] const std::vector<double>& sorted_samples() const;

 private:
  std::vector<double> samples_;  // invariant: always sorted ascending
};

/// Bounded-memory streaming quantile sketch with a *bit-exact
/// associative* merge.
///
/// The million-user world cannot keep a per-run sample vector per
/// cluster (EmpiricalDistribution is O(samples)); it needs an
/// accumulator whose size is independent of the stream length and whose
/// merge gives the same bits no matter how the stream was sharded —
/// otherwise the MN_THREADS golden (cluster results identical at any
/// parallelism) would be unprovable.  Classic t-digest fails that bar:
/// its centroids depend on insertion and merge order.  This sketch is a
/// log-linear histogram over the IEEE-754 double representation
/// instead — the same family as obs' HDR buckets, tuned finer:
///
///   bucket(|x|) = (unbiased_exponent - kMinExp2) * 2^kSubBits
///               + top kSubBits mantissa bits
///
/// Sub-bucketing an octave into 2^kSubBits = 32 linear slices bounds
/// the relative quantile error by 1/32 ≈ 3.1% — comfortably inside the
/// paper's reporting granularity (Table 1 prints three significant
/// digits of Mbps).  Counts are plain uint64 adds, so merge is
/// associative, commutative, and bit-exact by construction; the only
/// non-count state (min/max) merges with min/max, which are equally
/// order-free.  No running double sum is kept — mean() is derived from
/// bucket counts in index order, so it too is merge-order independent.
///
/// Conventions shared with EmpiricalDistribution:
///   - quantile()/median()/min()/max() on an empty sketch return quiet
///     NaN (PR 5's campaign convention);
///   - q = 0 and q = 1 return the *exact* tracked min/max, and every
///     interpolated quantile is clamped into [min, max] — a
///     single-element sketch therefore answers that element exactly
///     for every q.
/// Non-finite inputs are ignored (counted in rejected()), matching the
/// campaign filter's treatment of failed runs.
class QuantileSketch {
 public:
  static constexpr int kSubBits = 5;  // 32 sub-buckets per octave
  /// Magnitudes in [2^kMinExp2, 2^kMaxExp2) get their own buckets;
  /// smaller ones (incl. 0 and subnormals) collapse into a zero bucket,
  /// larger ones clamp into the top bucket.  The span covers ~1e-10 to
  /// ~1e12 — nanoseconds-as-seconds through terabytes — with slack.
  static constexpr int kMinExp2 = -32;
  static constexpr int kMaxExp2 = 40;
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kMaxExp2 - kMinExp2) << kSubBits;

  QuantileSketch();

  void add(double x);
  /// Associative, commutative, bit-exact: for any sharding of a stream
  /// into sketches and any merge tree over them, the result's
  /// observable state (and therefore every quantile) is identical.
  void merge_from(const QuantileSketch& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  /// Non-finite samples seen and ignored.
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }

  /// Quiet NaN when empty; otherwise exact extremes.
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Bucket-midpoint mean (same ±3.1% relative bound); NaN when empty.
  [[nodiscard]] double mean() const;

  /// q in [0,1], linear interpolation inside the hit bucket, clamped to
  /// [min(), max()].  NaN when empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

  /// Heap footprint in bytes (the positive array always; the negative
  /// array only once a negative sample arrives).
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  [[nodiscard]] static std::size_t bucket_of(double magnitude);
  [[nodiscard]] static double bucket_lo(std::size_t b);
  [[nodiscard]] static double bucket_hi(std::size_t b);

  std::vector<std::uint64_t> pos_;  // sized kBuckets
  std::vector<std::uint64_t> neg_;  // lazily sized kBuckets
  std::uint64_t zero_ = 0;          // |x| below 2^kMinExp2 (incl. ±0)
  std::uint64_t count_ = 0;
  std::uint64_t rejected_ = 0;
  double min_ = 0.0;  // valid iff count_ > 0
  double max_ = 0.0;
};

/// Convenience: median of a vector (copies; fine for bench-sized data).
[[nodiscard]] double median_of(std::vector<double> xs);

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |error| < 1.2e-9).  Used to calibrate the synthetic world's
/// LTE-beats-WiFi probabilities.  p must be in (0, 1).
[[nodiscard]] double normal_quantile(double p);

}  // namespace mn
