// Statistics helpers: running moments, quantiles, and empirical CDFs.
//
// The paper reports almost everything as a CDF or a median of a derived
// quantity (throughput differences, relative differences, RTT deltas).
// EmpiricalDistribution is the one-stop container benches use to build
// those curves and read off medians / win-fractions.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace mn {

/// Welford running mean/variance.  O(1) space, numerically stable.
class OnlineStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A sample set with CDF / quantile queries.  The sample vector is kept
/// sorted on every mutation, so all const accessors are pure reads —
/// many threads may query one distribution concurrently as long as no
/// thread is mutating it (the usual const-method contract).
class EmpiricalDistribution {
 public:
  EmpiricalDistribution() = default;
  explicit EmpiricalDistribution(std::vector<double> samples);

  void add(double x);
  void add_all(const std::vector<double>& xs);

  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Quantile via linear interpolation between order statistics; q in [0,1].
  /// On an empty sample set, returns quiet NaN (as do median/min/max):
  /// a campaign where every run failed filtering has no quantiles, and
  /// aggregation pipelines must stay exception-free — callers that care
  /// check empty() or std::isnan.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const { return quantile(0.0); }
  [[nodiscard]] double max() const { return quantile(1.0); }

  /// Empirical CDF value: fraction of samples <= x.
  [[nodiscard]] double cdf_at(double x) const;
  /// Fraction of samples strictly below zero — the paper's "LTE wins"
  /// region when samples are Tput(WiFi) - Tput(LTE).
  [[nodiscard]] double fraction_below(double x) const;

  /// (value, cumulative-fraction) pairs suitable for plotting a CDF curve.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf_points() const;

  [[nodiscard]] const std::vector<double>& sorted_samples() const;

 private:
  std::vector<double> samples_;  // invariant: always sorted ascending
};

/// Convenience: median of a vector (copies; fine for bench-sized data).
[[nodiscard]] double median_of(std::vector<double> xs);

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |error| < 1.2e-9).  Used to calibrate the synthetic world's
/// LTE-beats-WiFi probabilities.  p must be in (0, 1).
[[nodiscard]] double normal_quantile(double p);

}  // namespace mn
