#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

namespace mn {
namespace {

constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@', '%', '&'};

struct Range {
  double lo = 0.0;
  double hi = 1.0;
  [[nodiscard]] double span() const { return hi - lo; }
};

Range data_range(const std::vector<Series>& series, bool x_axis) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      const double v = x_axis ? x : y;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (!std::isfinite(lo)) return {0.0, 1.0};
  if (hi == lo) hi = lo + 1.0;
  return {lo, hi};
}

}  // namespace

std::string render_plot(const std::vector<Series>& series, const PlotOptions& opt) {
  const Range xr = opt.fix_x ? Range{opt.x_min, opt.x_max} : data_range(series, true);
  const Range yr = opt.fix_y ? Range{opt.y_min, opt.y_max} : data_range(series, false);
  const int w = std::max(16, opt.width);
  const int h = std::max(6, opt.height);

  std::vector<std::string> grid(static_cast<std::size_t>(h), std::string(static_cast<std::size_t>(w), ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    for (const auto& [x, y] : series[si].points) {
      if (x < xr.lo || x > xr.hi || y < yr.lo || y > yr.hi) continue;
      const int cx = static_cast<int>(std::lround((x - xr.lo) / xr.span() * (w - 1)));
      const int cy = static_cast<int>(std::lround((y - yr.lo) / yr.span() * (h - 1)));
      grid[static_cast<std::size_t>(h - 1 - cy)][static_cast<std::size_t>(cx)] = glyph;
    }
  }

  std::ostringstream os;
  os << std::setprecision(3);
  os << "  " << opt.y_label << "\n";
  for (int row = 0; row < h; ++row) {
    const double yv = yr.hi - (yr.hi - yr.lo) * row / (h - 1);
    os << std::setw(9) << yv << " |" << grid[static_cast<std::size_t>(row)] << "\n";
  }
  os << std::string(10, ' ') << '+' << std::string(static_cast<std::size_t>(w), '-') << "\n";
  os << std::setw(10 + 1) << xr.lo << std::string(static_cast<std::size_t>(std::max(1, w - 14)), ' ')
     << xr.hi << "  (" << opt.x_label << ")\n";
  os << "  legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    os << "  [" << kGlyphs[si % sizeof(kGlyphs)] << "] " << series[si].name;
  }
  os << "\n";
  return os.str();
}

std::string render_timeline(
    const std::vector<std::pair<std::string, std::vector<double>>>& lanes,
    double t_max_seconds, int width) {
  const int w = std::max(20, width);
  std::size_t label_w = 0;
  for (const auto& [label, _] : lanes) label_w = std::max(label_w, label.size());

  std::ostringstream os;
  for (const auto& [label, events] : lanes) {
    std::string lane(static_cast<std::size_t>(w), '.');
    for (double t : events) {
      if (t < 0.0 || t > t_max_seconds) continue;
      const int cx = static_cast<int>(std::lround(t / t_max_seconds * (w - 1)));
      lane[static_cast<std::size_t>(cx)] = '|';
    }
    os << std::left << std::setw(static_cast<int>(label_w)) << label << " [" << lane << "]\n";
  }
  os << std::left << std::setw(static_cast<int>(label_w)) << "t(s)" << "  0"
     << std::string(static_cast<std::size_t>(w - 6), ' ') << t_max_seconds << "\n";
  return os.str();
}

}  // namespace mn
