// Deterministic parallel execution over an index range.
//
// The experiment drivers follow a plan/execute split: a serial, cheap
// *plan* phase pre-draws every random input, then a parallel *execute*
// phase runs each unit of work against only its own pre-drawn inputs.
// Because index i owns its inputs and its output slot, the result is
// bit-identical for any worker count — parallelism changes wall-clock
// time, never bytes.
//
// Thread count resolution: an explicit non-negative request wins;
// a negative request falls back to the MN_THREADS environment variable;
// 0 or 1 means serial (the loop runs inline in the caller, no threads
// are created).
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <vector>

namespace mn {

/// MN_THREADS environment default; 0 (serial) when unset or invalid.
[[nodiscard]] int env_threads();

/// Resolve a parallelism request: negative means "use MN_THREADS",
/// anything else is taken literally.
[[nodiscard]] int resolve_parallelism(int requested);

/// Run fn(0) .. fn(n-1) on a pool of `parallelism` workers (resolved via
/// resolve_parallelism; <= 1 runs inline).  Indices are handed out
/// dynamically, so execution *order* is unspecified — callers must make
/// each index self-contained.  The first exception thrown by any fn is
/// rethrown in the caller after all workers have stopped.
void parallel_for(std::size_t n, int parallelism,
                  const std::function<void(std::size_t)>& fn);

/// Map fn over [0, n) into a vector, preserving index order regardless
/// of which worker computed each element.  fn's result type must be
/// default-constructible.
template <typename Fn>
[[nodiscard]] auto parallel_map(std::size_t n, int parallelism, Fn&& fn) {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  static_assert(std::is_default_constructible_v<R>,
                "parallel_map results are written into pre-sized slots");
  std::vector<R> out(n);
  parallel_for(n, parallelism, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace mn
