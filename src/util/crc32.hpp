// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
// guarding every frame of the MNRS1 result-store format.
//
// Table-driven, one table shared process-wide, byte-at-a-time: plenty
// for store appends (the store writes records, not packets).  The
// streaming Crc32 accumulator exists so writers can checksum a frame
// while assembling it without an extra copy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mn {

/// One-shot CRC-32 of a byte range.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t len);
[[nodiscard]] inline std::uint32_t crc32(std::string_view bytes) {
  return crc32(bytes.data(), bytes.size());
}

/// Streaming accumulator: feed() in any chunking, value() at any point.
class Crc32 {
 public:
  Crc32& feed(const void* data, std::size_t len);
  Crc32& feed(std::string_view bytes) { return feed(bytes.data(), bytes.size()); }
  [[nodiscard]] std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace mn
