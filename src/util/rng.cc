#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace mn {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a over a label, used to derive independent child streams.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

std::uint64_t mix_seed(std::uint64_t seed, std::string_view label) {
  std::uint64_t x = seed ^ fnv1a(label);
  return splitmix64(x);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
}

Rng Rng::fork(std::string_view label) {
  return Rng{next_u64() ^ fnv1a(label)};
}

std::uint64_t Rng::next_u64() {
  // xoshiro256++
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1)
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Modulo bias is negligible for the span sizes used here (<< 2^64).
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double mean) {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 1e-300);
  return -mean * std::log(u);
}

bool Rng::chance(double p) { return uniform() < p; }

}  // namespace mn
