// Geographic helpers for the crowdsourced-study clustering (Table 1):
// great-circle (haversine) distance between (lat, long) pairs.
#pragma once

namespace mn {

struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

/// Great-circle distance in kilometres (mean Earth radius 6371 km).
[[nodiscard]] double haversine_km(GeoPoint a, GeoPoint b);

}  // namespace mn
