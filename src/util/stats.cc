#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace mn {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> samples)
    : samples_(std::move(samples)) {
  std::sort(samples_.begin(), samples_.end());
}

void EmpiricalDistribution::add(double x) {
  // Sorted insert: O(n) moves, but eager sorting keeps every const
  // accessor mutation-free (safe for concurrent readers).  Bulk loads
  // should prefer add_all or the vector constructor.
  samples_.insert(std::upper_bound(samples_.begin(), samples_.end(), x), x);
}

void EmpiricalDistribution::add_all(const std::vector<double>& xs) {
  const auto mid = samples_.size();
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  std::sort(samples_.begin() + static_cast<std::ptrdiff_t>(mid), samples_.end());
  std::inplace_merge(samples_.begin(), samples_.begin() + static_cast<std::ptrdiff_t>(mid),
                     samples_.end());
}

double EmpiricalDistribution::quantile(double q) const {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double EmpiricalDistribution::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double EmpiricalDistribution::cdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double EmpiricalDistribution::fraction_below(double x) const {
  if (samples_.empty()) return 0.0;
  const auto it = std::lower_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> EmpiricalDistribution::cdf_points() const {
  std::vector<std::pair<double, double>> pts;
  pts.reserve(samples_.size());
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    pts.emplace_back(samples_[i],
                     static_cast<double>(i + 1) / static_cast<double>(samples_.size()));
  }
  return pts;
}

const std::vector<double>& EmpiricalDistribution::sorted_samples() const { return samples_; }

double median_of(std::vector<double> xs) {
  return EmpiricalDistribution{std::move(xs)}.median();
}

double normal_quantile(double p) {
  if (p <= 0.0 || p >= 1.0) throw std::runtime_error("normal_quantile: p outside (0,1)");
  // Acklam's algorithm.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00, 2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  constexpr double phigh = 1.0 - plow;
  double q = 0.0;
  double r = 0.0;
  if (p < plow) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= phigh) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace mn
