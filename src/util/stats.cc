#include "util/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace mn {

namespace {
// Magnitudes below this collapse into the sketch's zero bucket.
constexpr double kSketchMinMagnitude = 0x1p-32;
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
}  // namespace

QuantileSketch::QuantileSketch() : pos_(kBuckets, 0) {}

std::size_t QuantileSketch::bucket_of(double magnitude) {
  // Caller guarantees: finite, >= kSketchMinMagnitude (so never
  // subnormal — the biased exponent is meaningful).
  const auto bits = std::bit_cast<std::uint64_t>(magnitude);
  const int e = static_cast<int>((bits >> 52) & 0x7ff) - 1023;
  if (e >= kMaxExp2) return kBuckets - 1;
  const auto sub = static_cast<std::size_t>((bits >> (52 - kSubBits)) &
                                            ((std::uint64_t{1} << kSubBits) - 1));
  return (static_cast<std::size_t>(e - kMinExp2) << kSubBits) | sub;
}

double QuantileSketch::bucket_lo(std::size_t b) {
  const auto e = static_cast<std::uint64_t>(
      kMinExp2 + static_cast<int>(b >> kSubBits) + 1023);
  const std::uint64_t sub = b & ((std::uint64_t{1} << kSubBits) - 1);
  return std::bit_cast<double>((e << 52) | (sub << (52 - kSubBits)));
}

double QuantileSketch::bucket_hi(std::size_t b) { return bucket_lo(b + 1); }

void QuantileSketch::add(double x) {
  if (!std::isfinite(x)) {
    ++rejected_;
    return;
  }
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double mag = std::fabs(x);
  if (mag < kSketchMinMagnitude) {
    ++zero_;
  } else if (x > 0.0) {
    ++pos_[bucket_of(mag)];
  } else {
    if (neg_.empty()) neg_.assign(kBuckets, 0);
    ++neg_[bucket_of(mag)];
  }
}

void QuantileSketch::merge_from(const QuantileSketch& other) {
  if (other.count_ > 0) {
    if (count_ > 0) {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    } else {
      min_ = other.min_;
      max_ = other.max_;
    }
  }
  count_ += other.count_;
  rejected_ += other.rejected_;
  zero_ += other.zero_;
  for (std::size_t b = 0; b < kBuckets; ++b) pos_[b] += other.pos_[b];
  if (!other.neg_.empty()) {
    if (neg_.empty()) neg_.assign(kBuckets, 0);
    for (std::size_t b = 0; b < kBuckets; ++b) neg_[b] += other.neg_[b];
  }
}

double QuantileSketch::min() const { return count_ ? min_ : kNan; }
double QuantileSketch::max() const { return count_ ? max_ : kNan; }

double QuantileSketch::mean() const {
  if (count_ == 0) return kNan;
  // Bucket midpoints accumulated in fixed index order: the result
  // depends only on the merged counts, never on insertion order.
  double sum = 0.0;
  if (!neg_.empty()) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (neg_[b]) {
        sum -= static_cast<double>(neg_[b]) * 0.5 * (bucket_lo(b) + bucket_hi(b));
      }
    }
  }
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (pos_[b]) {
      sum += static_cast<double>(pos_[b]) * 0.5 * (bucket_lo(b) + bucket_hi(b));
    }
  }
  return sum / static_cast<double>(count_);
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return kNan;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const double target = q * static_cast<double>(count_ - 1);
  double cum = 0.0;
  const auto in_region = [&](std::uint64_t cnt, double lo, double hi,
                             double* out) {
    if (cnt == 0) return false;
    const double c = static_cast<double>(cnt);
    if (target <= cum + c - 1.0) {
      const double local = target - cum;
      const double frac = cnt > 1 ? local / (c - 1.0) : 0.5;
      *out = std::clamp(lo + (hi - lo) * frac, min_, max_);
      return true;
    }
    cum += c;
    return false;
  };
  double out = 0.0;
  // Ascending value order: most-negative bucket first, then the zero
  // bucket, then positives.
  if (!neg_.empty()) {
    for (std::size_t b = kBuckets; b-- > 0;) {
      if (in_region(neg_[b], -bucket_hi(b), -bucket_lo(b), &out)) return out;
    }
  }
  if (in_region(zero_, 0.0, 0.0, &out)) return out;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (in_region(pos_[b], bucket_lo(b), bucket_hi(b), &out)) return out;
  }
  return max_;  // numeric slack: target fell off the end
}

std::size_t QuantileSketch::memory_bytes() const {
  return (pos_.capacity() + neg_.capacity()) * sizeof(std::uint64_t);
}

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> samples)
    : samples_(std::move(samples)) {
  std::sort(samples_.begin(), samples_.end());
}

void EmpiricalDistribution::add(double x) {
  // Sorted insert: O(n) moves, but eager sorting keeps every const
  // accessor mutation-free (safe for concurrent readers).  Bulk loads
  // should prefer add_all or the vector constructor.
  samples_.insert(std::upper_bound(samples_.begin(), samples_.end(), x), x);
}

void EmpiricalDistribution::add_all(const std::vector<double>& xs) {
  const auto mid = samples_.size();
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  std::sort(samples_.begin() + static_cast<std::ptrdiff_t>(mid), samples_.end());
  std::inplace_merge(samples_.begin(), samples_.begin() + static_cast<std::ptrdiff_t>(mid),
                     samples_.end());
}

double EmpiricalDistribution::quantile(double q) const {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double EmpiricalDistribution::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double EmpiricalDistribution::cdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double EmpiricalDistribution::fraction_below(double x) const {
  if (samples_.empty()) return 0.0;
  const auto it = std::lower_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> EmpiricalDistribution::cdf_points() const {
  std::vector<std::pair<double, double>> pts;
  pts.reserve(samples_.size());
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    pts.emplace_back(samples_[i],
                     static_cast<double>(i + 1) / static_cast<double>(samples_.size()));
  }
  return pts;
}

const std::vector<double>& EmpiricalDistribution::sorted_samples() const { return samples_; }

double median_of(std::vector<double> xs) {
  return EmpiricalDistribution{std::move(xs)}.median();
}

double normal_quantile(double p) {
  if (p <= 0.0 || p >= 1.0) throw std::runtime_error("normal_quantile: p outside (0,1)");
  // Acklam's algorithm.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00, 2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  constexpr double phigh = 1.0 - plow;
  double q = 0.0;
  double r = 0.0;
  if (p < plow) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= phigh) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace mn
