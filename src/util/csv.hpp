// Minimal CSV writing/reading used to persist datasets (campaign runs,
// recorded traffic) and bench series.  Only what multinet needs: numeric
// and simple-string cells, comma-separated, first row is the header.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace mn {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Serialize to CSV text.
  [[nodiscard]] std::string str() const;
  /// Write to a file; throws std::runtime_error on I/O failure.
  void save(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

struct CsvData {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column; throws if absent.
  [[nodiscard]] std::size_t col(const std::string& name) const;
  /// Index of a header column, or nullopt if absent — for columns added
  /// by newer writers that older files legitimately lack.
  [[nodiscard]] std::optional<std::size_t> find_col(const std::string& name) const;
};

/// Parse CSV text (no quoting/escaping — our writers never emit commas
/// inside cells).  Throws std::runtime_error on ragged rows.
[[nodiscard]] CsvData parse_csv(const std::string& text);
/// Load and parse a CSV file; throws std::runtime_error on I/O failure.
[[nodiscard]] CsvData load_csv(const std::string& path);

/// Shortest decimal representation that parses back to exactly the same
/// double (std::to_chars round-trip guarantee).  Every writer that
/// persists doubles must use this — std::to_string truncates to six
/// fixed decimals and silently corrupts reload-and-analyze pipelines.
[[nodiscard]] std::string format_double(double v);

/// Strict double parse of a whole cell: rejects empty cells, leading
/// junk, and trailing junk ("1.2x" is an error, not 1.2).  Throws
/// std::runtime_error naming the offending cell.
[[nodiscard]] double parse_double(const std::string& cell);

}  // namespace mn
