// A set of disjoint half-open integer intervals [start, end).
//
// MPTCP uses these on both ends of a connection: the receiver
// deduplicates data-level byte ranges that may arrive twice (subflow
// retransmissions, reinjection after path failure), and the sender
// tracks which data-level ranges have been acknowledged across subflows.
#pragma once

#include <cstdint>
#include <map>

namespace mn {

class IntervalSet {
 public:
  /// Insert [start, end); overlapping/adjacent intervals are merged.
  /// Returns the number of bytes newly covered.
  std::int64_t add(std::int64_t start, std::int64_t end);

  /// Total bytes covered.
  [[nodiscard]] std::int64_t total() const { return total_; }
  /// Length of the contiguous run starting at `from` (0 if uncovered).
  /// `from == 0` is the cumulative-ack / in-order-prefix pattern and by
  /// far the hottest caller (once per pump on the MPTCP data path), so
  /// it reads a cached prefix length instead of walking the tree.
  [[nodiscard]] std::int64_t contiguous_from(std::int64_t from) const {
    if (from == 0) return prefix_;
    return contiguous_from_slow(from);
  }
  /// Whether [start, end) is fully covered.
  [[nodiscard]] bool covers(std::int64_t start, std::int64_t end) const;
  [[nodiscard]] bool empty() const { return intervals_.empty(); }
  [[nodiscard]] std::size_t interval_count() const { return intervals_.size(); }

 private:
  [[nodiscard]] std::int64_t contiguous_from_slow(std::int64_t from) const;

  std::map<std::int64_t, std::int64_t> intervals_;  // start -> end
  std::int64_t total_ = 0;
  std::int64_t prefix_ = 0;  // == contiguous_from(0), maintained by add()
};

}  // namespace mn
