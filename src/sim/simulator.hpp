// Deterministic single-threaded discrete-event engine.
//
// The Simulator owns a priority queue of (time, sequence#) -> callback
// events.  Ties on time break on insertion order, so a run is a pure
// function of its inputs.  Components hold a Simulator& and schedule
// their own futures; the top-level experiment calls run_until /
// run_until_idle.
//
// Cancellation: schedule() returns an EventId; cancel() marks the entry
// dead (it is skipped when popped).  Timer wraps the
// schedule-cancel-reschedule pattern used by retransmission timeouts.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/time.hpp"

namespace mn {

using EventId = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (clamped to >= now).
  EventId schedule_at(TimePoint at, std::function<void()> fn);
  /// Schedule `fn` to run after `delay`.
  EventId schedule_after(Duration delay, std::function<void()> fn);
  /// Cancel a pending event.  Cancelling an already-fired or unknown id
  /// is a no-op (the common race when a timer fires while being reset).
  void cancel(EventId id);

  /// Run events until the queue empties or the clock would pass `deadline`.
  /// The clock is left at the last fired event (or `deadline` if reached).
  void run_until(TimePoint deadline);
  /// Run until no events remain.
  void run_until_idle();
  /// Fire exactly one event if one is pending; returns false when idle.
  bool step();

  [[nodiscard]] std::size_t pending_events() const { return queue_.size() - cancelled_.size(); }
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

 private:
  struct Entry {
    TimePoint at;
    EventId id;
    // Ordered min-first by (time, id): id is the insertion sequence, so
    // simultaneous events fire in the order they were scheduled.
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  TimePoint now_{0};
  EventId next_id_ = 1;
  std::uint64_t fired_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
  std::unordered_set<EventId> cancelled_;
};

/// A restartable one-shot timer (RTO, join delays, app think time...).
class Timer {
 public:
  Timer(Simulator& sim, std::function<void()> on_fire)
      : sim_(sim), on_fire_(std::move(on_fire)) {}
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer() { stop(); }

  /// (Re)arm the timer to fire after `delay` from now.
  void restart(Duration delay);
  /// Disarm; no-op if not armed.
  void stop();
  [[nodiscard]] bool armed() const { return armed_; }

 private:
  Simulator& sim_;
  std::function<void()> on_fire_;
  EventId pending_ = 0;
  bool armed_ = false;
};

}  // namespace mn
