// Deterministic single-threaded discrete-event engine.
//
// Events fire strictly in (time, insertion-sequence#) order — ties on
// time break on schedule order — so a run is a pure function of its
// inputs.  Components hold a Simulator& and schedule their own futures;
// the top-level experiment calls run_until / run_until_idle.
//
// Storage is an allocation-free slab: each pending event lives in a
// free-listed slot holding its callback inline (InplaceFunction —
// captures up to 64 bytes never touch the heap).  The slab grows in
// fixed 256-slot chunks so slot addresses are stable for the life of
// the simulator — growth never relocates pending callbacks, and the
// fire path can invoke a callback in place instead of moving it out
// first.  An EventId packs
// (generation << 32 | slot); cancel() is an O(1) generation bump that
// drops the callback immediately and leaves the queue entry to be
// reaped lazily — no hash maps, no per-event allocation.  Generations
// are 32-bit and skip 0, so a forged or long-stale id is rejected; a
// slot would need 2^32 reuses for an id to false-match.
//
// The queue is a two-level timing wheel (times are integer
// microseconds): level 0 is 16384 one-microsecond buckets (16.4 ms —
// wide enough that RTT-scale events never leave it), level 1 is 4096
// buckets of 4096 us (~16.8 s horizon), and events beyond that sit
// in a small overflow min-heap.  Buckets are intrusive singly-linked
// lists threaded through the slab (a push is: write slot.next, write
// bucket head, set a bitmap bit), so schedule and fire are O(1) —
// no O(log n) comparison heap on the per-event path.  Head arrays are
// deliberately left uninitialised: a head is only read when its
// occupancy bit is set, which keeps constructing a Simulator O(bitmap)
// cheap.  Level-1 buckets cascade into level 0 as the cursor reaches
// them.  Firing order is bucket-path independent: all events due at
// one tick are collected into a batch and sorted by sequence number
// before firing (batches are almost always a single event).
//
// Timer wraps the schedule-cancel-reschedule pattern used by
// retransmission timeouts.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "util/inplace_function.hpp"
#include "util/time.hpp"

namespace mn {

using EventId = std::uint64_t;

/// Event callback: inline up to 64 bytes of captures (heap fallback
/// beyond that, counted by inplace_function_heap_fallbacks()).
using SimCallback = InplaceFunction<void(), 64>;

class Simulator {
 public:
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Install (or clear, with nullptr) the run's observability hub.  The
  /// engine and every component holding this simulator record through
  /// it; with none installed each instrumentation site is a single
  /// branch on a null pointer.  The hub must outlive the simulation.
  void set_obs(obs::ObsHub* hub) { obs_ = hub; }
  [[nodiscard]] obs::ObsHub* obs() const { return obs_; }

  /// Schedule `fn` to run at absolute time `at` (clamped to >= now).
  /// Templated so the callable is constructed directly into its slab
  /// slot — the push path is fully inlined at every call site and does
  /// no intermediate relocation.
  template <class F, class = std::enable_if_t<std::is_invocable_v<std::decay_t<F>&>>>
  EventId schedule_at(TimePoint at, F&& fn) {
    if (at < now_) at = now_;
    std::uint32_t slot;
    if (free_.empty()) {
      slot = slot_count_++;
      if ((slot >> kChunkBits) == chunks_.size()) grow_slab();
      // Chunks are raw storage; a slot is constructed the first time it
      // is handed out and destroyed only in ~Simulator.
      ::new (static_cast<void*>(&slot_ref(slot))) Slot;
    } else {
      slot = free_.back();
      free_.pop_back();
    }
    Slot& s = slot_ref(slot);
    if constexpr (std::is_same_v<std::decay_t<F>, SimCallback>) {
      s.fn = std::forward<F>(fn);
    } else {
      s.fn.emplace(std::forward<F>(fn));
    }
    s.at = at;
    s.seq = next_seq_++;
    enqueue(slot, s);
    ++live_;
    if (obs_ != nullptr) [[unlikely]] note_scheduled(at, s.seq);
    return (static_cast<EventId>(s.generation) << 32) | slot;
  }
  /// Schedule `fn` to run after `delay`.
  template <class F, class = std::enable_if_t<std::is_invocable_v<std::decay_t<F>&>>>
  EventId schedule_after(Duration delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancel a pending event.  Cancelling an already-fired or unknown id
  /// is a no-op (the common race when a timer fires while being reset).
  void cancel(EventId id);

  /// Run events until the queue empties or the clock would pass `deadline`.
  /// The clock is left at the last fired event (or `deadline` if reached).
  void run_until(TimePoint deadline) {
    const std::int64_t limit = deadline.usec();
    for (;;) {
      // Purge cancelled batch heads so the peek below sees a live event.
      while (batch_pos_ < batch_.size() && !slot_ref(batch_[batch_pos_].slot).fn) {
        reap(batch_[batch_pos_].slot);
        ++batch_pos_;
      }
      if (batch_pos_ == batch_.size() && !refill_batch(limit)) break;
      if (batch_tick_ > limit) break;  // batch held over from an unbounded step()
      step();
    }
    if (now_ < deadline) now_ = deadline;
  }
  /// Run until no events remain.
  void run_until_idle() {
    while (step()) {
    }
  }
  /// Fire exactly one event if one is pending; returns false when idle.
  bool step() {
    for (;;) {
      while (batch_pos_ < batch_.size()) {
        const BatchItem item = batch_[batch_pos_++];
        Slot& s = slot_ref(item.slot);
        if (!s.fn) {
          reap(item.slot);  // cancelled after the batch was built
          continue;
        }
        if (++s.generation == 0) s.generation = 1;
        --live_;
        now_ = TimePoint{batch_tick_};
        ++fired_;
        if (obs_ != nullptr) [[unlikely]] note_fired(s.seq);
        // Slot addresses are stable (chunked slab) and the slot is not
        // yet on the free list, so the callback runs in place — no move
        // of the 64-byte buffer.  Anything it schedules lands in other
        // slots; its own id was invalidated by the generation bump.
        s.fn();
        s.fn = nullptr;
        free_.push_back(item.slot);
        return true;
      }
      if (!refill_batch(std::numeric_limits<std::int64_t>::max())) return false;
    }
  }

  [[nodiscard]] std::size_t pending_events() const {
    assert(bookkeeping_consistent());
    return live_;
  }
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

  /// Audit hook: wheel/overflow/batch occupancy and the slab free list
  /// must always reconcile with the live and cancelled-but-unreaped
  /// counters:
  ///   queued entries == live events + stale entries
  ///   slab slots     == live events + stale entries + free slots
  /// pending_events() asserts this in debug builds; the churn stress
  /// test checks it explicitly in every build type.  Walks every
  /// bucket, so debug/audit use only.
  [[nodiscard]] bool bookkeeping_consistent() const;

  /// Sum of events_fired() over every Simulator already destroyed in
  /// this process (relaxed atomic, added once per simulator at
  /// destruction — nothing on the per-event path).  The bench harness
  /// uses it to derive whole-process events/sec for BENCH_*.json.
  [[nodiscard]] static std::uint64_t process_events_fired();

 private:
  struct Slot {
    SimCallback fn;                  // engaged iff a live event owns the slot
    std::uint32_t generation = 1;    // bumped on fire/cancel; 0 never used
    std::uint32_t next = 0;          // intrusive bucket-list link
    TimePoint at{0};                 // firing tick (integer microseconds)
    std::uint64_t seq = 0;           // insertion order: ties fire FIFO
  };
  struct OverflowEntry {
    TimePoint at;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct BatchItem {
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr int kL0Bits = 14;                          // 16384 x 1 us
  static constexpr std::size_t kL0Size = std::size_t{1} << kL0Bits;
  static constexpr std::size_t kL0Mask = kL0Size - 1;
  static constexpr std::size_t kL0Words = kL0Size / 64;
  static constexpr int kL1Shift = 12;                         // L1 bucket = 4096 us
  static constexpr int kL1Bits = 12;                          // 4096 buckets
  static constexpr std::size_t kL1Size = std::size_t{1} << kL1Bits;
  static constexpr std::size_t kL1Mask = kL1Size - 1;
  static constexpr std::size_t kL1Words = kL1Size / 64;
  static constexpr std::int64_t kL0Horizon = std::int64_t{1} << kL0Bits;
  static constexpr std::int64_t kL1Horizon = std::int64_t{1} << (kL1Shift + kL1Bits);
  static constexpr int kChunkBits = 8;                        // 256 slots/chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

  [[nodiscard]] Slot& slot_ref(std::uint32_t slot) {
    return reinterpret_cast<Slot*>(chunks_[slot >> kChunkBits].get())[slot & kChunkMask];
  }
  [[nodiscard]] const Slot& slot_ref(std::uint32_t slot) const {
    return reinterpret_cast<const Slot*>(chunks_[slot >> kChunkBits].get())[slot &
                                                                            kChunkMask];
  }
  void grow_slab() {
    chunks_.push_back(
        std::make_unique_for_overwrite<std::byte[]>(kChunkSize * sizeof(Slot)));
  }

  // Min-first by (time, seq) for the overflow heap; keys are unique
  // (seq never repeats), so heap mechanics cannot affect firing order.
  struct OverflowLater {
    bool operator()(const OverflowEntry& a, const OverflowEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Heads are uninitialised storage: a head is read only when its
  // occupancy bit says a list is there, so an empty bucket's head may
  // hold garbage safely.
  void push_bucket(std::uint32_t* heads, std::uint64_t* bitmap, std::size_t bucket,
                   std::uint32_t slot) {
    std::uint64_t& word = bitmap[bucket >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (bucket & 63);
    slot_ref(slot).next = (word & bit) != 0 ? heads[bucket] : kNil;
    heads[bucket] = slot;
    word |= bit;
  }
  void push_l0(std::size_t bucket, std::uint32_t slot) {
    push_bucket(l0_head_.get(), l0_bits_.get(), bucket, slot);
    ++l0_count_;
  }
  void push_l1(std::size_t bucket, std::uint32_t slot) {
    push_bucket(l1_head_.get(), l1_bits_.get(), bucket, slot);
    ++l1_count_;
  }

  /// File `slot` into the wheel level (or overflow heap) that covers
  /// its distance from the cursor.  List order within a bucket is
  /// irrelevant — fire-time batches sort by seq.
  ///
  /// L1 admission is by *bucket* distance, not time distance: buckets
  /// are indexed by absolute time, so when the cursor sits mid-bucket
  /// an event whose time distance is just under kL1Horizon can already
  /// be a full wheel revolution away in bucket distance — filing it
  /// would wrap into the cursor's own bucket and fire a revolution
  /// early.  Such boundary events go to the overflow heap instead.
  void enqueue(std::uint32_t slot, const Slot& s) {
    const std::int64_t d = s.at.usec() - cursor_;
    if (d < kL0Horizon) {
      push_l0(static_cast<std::size_t>(s.at.usec()) & kL0Mask, slot);
    } else if ((s.at.usec() >> kL1Shift) - (cursor_ >> kL1Shift) <
               static_cast<std::int64_t>(kL1Size)) {
      push_l1((static_cast<std::size_t>(s.at.usec()) >> kL1Shift) & kL1Mask, slot);
    } else {
      overflow_.push_back(OverflowEntry{s.at, s.seq, slot});
      std::push_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
    }
  }

  /// Put the slot back on the free list once no queue structure
  /// references it.  The generation was already bumped when the event
  /// was cancelled or fired.
  void reap(std::uint32_t slot) {
    free_.push_back(slot);
    --stale_;
  }

  // Obs hooks, outlined so the (rare) hub-present path costs the hot
  // loops exactly one predicted branch — the registry/ring writes never
  // inline into schedule_at()'s template expansions or step():
  [[gnu::noinline, gnu::cold]] void note_scheduled(TimePoint at, std::uint64_t seq) {
    obs_->sim_scheduled(now_, at, seq);
  }
  [[gnu::noinline, gnu::cold]] void note_fired(std::uint64_t seq) {
    obs_->sim_fired(now_, seq);
  }

  // Cold-path machinery in the .cc:
  bool refill_batch(std::int64_t limit_usec);   // collect next tick's batch
  void cascade(std::size_t l1_bucket);          // re-file an L1 bucket into L0
  static std::size_t scan(const std::uint64_t* bitmap, std::size_t words,
                          std::size_t from);

  TimePoint now_{0};
  obs::ObsHub* obs_ = nullptr;  // optional, not owned; null = no instrumentation
  std::int64_t cursor_ = 0;     // wheel position; invariant: cursor_ <= now_.usec()
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::size_t live_ = 0;   // scheduled, not yet fired or cancelled
  std::size_t stale_ = 0;  // cancelled, still occupying a queue entry
  std::vector<std::unique_ptr<std::byte[]>> chunks_;  // slab: stable slot addresses
  std::uint32_t slot_count_ = 0;
  std::vector<std::uint32_t> free_;
  std::unique_ptr<std::uint32_t[]> l0_head_;  // uninitialised; bitmap-guarded
  std::unique_ptr<std::uint32_t[]> l1_head_;
  std::unique_ptr<std::uint64_t[]> l0_bits_;  // occupancy bitmaps (1 bit/bucket)
  std::unique_ptr<std::uint64_t[]> l1_bits_;
  std::size_t l0_count_ = 0;             // entries (live + stale) per level:
  std::size_t l1_count_ = 0;             // lets refill skip empty-level scans
  std::vector<OverflowEntry> overflow_;  // min-heap, events >= ~16.8 s out
  std::vector<BatchItem> batch_;         // current tick, sorted by seq
  std::size_t batch_pos_ = 0;
  std::int64_t batch_tick_ = 0;
};

/// A restartable one-shot timer (RTO, join delays, app think time...).
class Timer {
 public:
  Timer(Simulator& sim, SimCallback on_fire)
      : sim_(sim), on_fire_(std::move(on_fire)) {}
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer() { stop(); }

  /// (Re)arm the timer to fire after `delay` from now.
  void restart(Duration delay);
  /// Disarm; no-op if not armed.
  void stop();
  [[nodiscard]] bool armed() const { return armed_; }

 private:
  Simulator& sim_;
  SimCallback on_fire_;
  EventId pending_ = 0;
  bool armed_ = false;
};

}  // namespace mn
