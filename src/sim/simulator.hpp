// Deterministic single-threaded discrete-event engine.
//
// Events fire strictly in (time, insertion-sequence#) order — ties on
// time break on schedule order — so a run is a pure function of its
// inputs.  Components hold a Simulator& and schedule their own futures;
// the top-level experiment calls run_until / run_until_idle.
//
// Storage is an allocation-free slab split into two parallel arrays:
// a hot 32-byte Meta record per event (firing tick, sequence number,
// intrusive bucket link, generation, kind, sink id) and a cold record
// holding the payload — either an inline callback (InplaceFunction —
// captures up to 64 bytes never touch the heap) or a plain 64-bit sink
// item.  Every queue operation (schedule filing, cancel, bucket walks,
// cascades, batch collection) touches only the Meta array; the cold
// payload is read exactly once, at fire time.  Both arrays grow in
// fixed 256-slot chunks so addresses are stable for the life of the
// simulator — growth never relocates pending callbacks, and the fire
// path can invoke a callback in place instead of moving it out first.
// An EventId packs (generation << 32 | slot); cancel() is an O(1)
// generation bump that drops the payload immediately and leaves the
// queue entry to be reaped lazily — no hash maps, no per-event
// allocation.  Generations are 32-bit and skip 0, so a forged or
// long-stale id is rejected; a slot would need 2^32 reuses for an id to
// false-match.  Wheel arrays and slab chunks are recycled through a
// thread-local arena pool across Simulator lifetimes, so the thousands
// of short-lived simulators a campaign builds construct without
// touching the allocator (a 2.5 KB bitmap clear) after the first.
//
// The queue is a two-level timing wheel (times are integer
// microseconds): level 0 is 16384 one-microsecond buckets (16.4 ms —
// wide enough that RTT-scale events never leave it), level 1 is 4096
// buckets of 4096 us (~16.8 s horizon), and events beyond that sit
// in a small overflow min-heap.  Buckets are intrusive singly-linked
// lists threaded through the Meta slab (a push is: write meta.next,
// write bucket head, set a bitmap bit), so schedule and fire are O(1)
// — no O(log n) comparison heap on the per-event path.  Head arrays
// are deliberately left uninitialised: a head is only read when its
// occupancy bit is set, which keeps constructing a Simulator O(bitmap)
// cheap.  Level-1 buckets cascade into level 0 as the cursor reaches
// them; the earliest occupied L1 bucket is cached between refills so
// the steady state pays one L1 bitmap scan per cascade, not per tick.
// Firing order is bucket-path independent: all events due at one tick
// are collected into a batch and sorted by sequence number before
// firing.
//
// Batch dispatch (sinks).  Components that receive many same-tick
// events — flight pools draining a link tick, timers — can register a
// *sink*: a callback taking a span of 64-bit items.  schedule_item_at
// files an event exactly like schedule_at (same id space, same seq
// allocation, same (time, seq) firing order) but carries a plain item
// instead of a closure, so scheduling writes 40 bytes instead of
// constructing an 80-byte callable and firing makes no indirect
// trampoline call per event.  At fire time, maximal runs of
// consecutive-in-seq same-sink items within one tick are delivered in
// ONE sink invocation (fired count still advances per item, and obs
// sees one sim_fired per item, so metrics are batch-width invariant).
// Grouping never reorders anything: a run is only formed from items
// that would have fired back-to-back under scalar dispatch, and
// set_batch_dispatch(false) (or MN_SCALAR_DISPATCH=1) degrades every
// run to width 1 — golden tests assert byte-identical output both
// ways.  Contract: items handed to a sink are already fired — a sink
// callback that cancels an id delivered in its own current span is a
// harmless no-op (the id was invalidated when the span was formed);
// cancelling same-tick events of *other* sinks or closures from inside
// a batch works and suppresses them, exactly as under scalar dispatch.
//
// Timer wraps the schedule-cancel-reschedule pattern used by
// retransmission timeouts; it is sink-based, so a restart re-files 40
// bytes of meta instead of rebuilding a closure.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "util/inplace_function.hpp"
#include "util/time.hpp"

namespace mn {

using EventId = std::uint64_t;

/// Event callback: inline up to 64 bytes of captures (heap fallback
/// beyond that, counted by inplace_function_heap_fallbacks()).
using SimCallback = InplaceFunction<void(), 64>;

/// Sink identifier returned by Simulator::register_sink.
using SinkId = std::uint32_t;

/// One dispatch group: the payloads of a maximal same-tick same-sink
/// run of fired events, in (time, seq) order.
using SinkSpan = std::span<const std::uint64_t>;

/// Batch sink callback: receives each fired group in one call.
using SinkCallback = InplaceFunction<void(SinkSpan), 64>;

class Simulator {
 public:
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Install (or clear, with nullptr) the run's observability hub.  The
  /// engine and every component holding this simulator record through
  /// it; with none installed each instrumentation site is a single
  /// branch on a null pointer.  The hub must outlive the simulation.
  void set_obs(obs::ObsHub* hub) { obs_ = hub; }
  [[nodiscard]] obs::ObsHub* obs() const { return obs_; }

  /// Register a batch sink.  Sinks live for the simulator's lifetime
  /// (ids are never reused) and must be registered before items for
  /// them are scheduled.  Registration may allocate — do it at setup,
  /// not on the per-event path.
  SinkId register_sink(SinkCallback cb) {
    sinks_.push_back(std::move(cb));
    return static_cast<SinkId>(sinks_.size() - 1);
  }

  /// Scalar fallback: with batch dispatch off every sink group has
  /// width 1.  Firing order, ids, seq allocation, obs counts and all
  /// outputs are identical either way — golden tests toggle this (or
  /// set MN_SCALAR_DISPATCH=1) to prove it.
  void set_batch_dispatch(bool on) { batch_dispatch_ = on; }
  [[nodiscard]] bool batch_dispatch() const { return batch_dispatch_; }

  /// Schedule `fn` to run at absolute time `at` (clamped to >= now).
  /// Templated so the callable is constructed directly into its slab
  /// slot — the push path is fully inlined at every call site and does
  /// no intermediate relocation.
  template <class F, class = std::enable_if_t<std::is_invocable_v<std::decay_t<F>&>>>
  EventId schedule_at(TimePoint at, F&& fn) {
    const std::uint32_t slot = acquire_slot();
    ::new (cold_ptr(slot)) SimCallback(std::forward<F>(fn));
    Meta& m = meta_ref(slot);
    m.kind = kClosure;
    return file_slot(slot, m, at);
  }
  /// Schedule `fn` to run after `delay`.
  template <class F, class = std::enable_if_t<std::is_invocable_v<std::decay_t<F>&>>>
  EventId schedule_after(Duration delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Schedule `item` to be delivered to `sink` at absolute time `at`
  /// (clamped to >= now).  Same ordering contract and id space as
  /// schedule_at; the payload is 8 bytes instead of a callable.
  EventId schedule_item_at(TimePoint at, SinkId sink, std::uint64_t item) {
    assert(sink < sinks_.size());
    const std::uint32_t slot = acquire_slot();
    *static_cast<std::uint64_t*>(cold_ptr(slot)) = item;
    Meta& m = meta_ref(slot);
    m.kind = kSink;
    m.sink = sink;
    return file_slot(slot, m, at);
  }
  EventId schedule_item_after(Duration delay, SinkId sink, std::uint64_t item) {
    return schedule_item_at(now_ + delay, sink, item);
  }

  /// File every item in `items` for `sink` at time `at` with
  /// consecutive sequence numbers.  Because the batch grouper coalesces
  /// maximal same-tick same-sink consecutive-in-seq runs, the whole
  /// burst is guaranteed to arrive back as ONE span under batch
  /// dispatch (and back-to-back width-1 calls with nothing interleaved
  /// under scalar dispatch).  This is how a cell files one service
  /// tick's grants so per-tick service is a single span sweep.
  void schedule_item_burst_at(TimePoint at, SinkId sink,
                              std::span<const std::uint64_t> items) {
    for (const std::uint64_t item : items) schedule_item_at(at, sink, item);
  }

  /// Cancel a pending event.  Cancelling an already-fired or unknown id
  /// is a no-op (the common race when a timer fires while being reset).
  void cancel(EventId id);

  /// Run events until the queue empties or the clock would pass `deadline`.
  /// The clock is left at the last fired event (or `deadline` if reached).
  void run_until(TimePoint deadline) {
    const std::int64_t limit = deadline.usec();
    for (;;) {
      // Purge cancelled batch heads so the peek below sees a live event.
      while (batch_pos_ < batch_.size() &&
             meta_ref(batch_[batch_pos_].slot).kind == kDead) {
        reap(batch_[batch_pos_].slot);
        ++batch_pos_;
      }
      if (batch_pos_ == batch_.size() && !refill_batch(limit)) break;
      if (batch_tick_ > limit) break;  // batch held over from an unbounded step()
      step();
    }
    if (now_ < deadline) now_ = deadline;
  }
  /// Run until no events remain.
  void run_until_idle() {
    while (step()) {
    }
  }
  /// Fire the next dispatch group if one is pending; returns false when
  /// idle.  A group is one closure event, or one maximal same-tick
  /// same-sink run of items (always a single item under scalar
  /// dispatch — closures and scalar mode preserve the historical
  /// one-event-per-step granularity exactly).
  bool step() {
    for (;;) {
      while (batch_pos_ < batch_.size()) {
        const BatchItem item = batch_[batch_pos_];
        Meta& m = meta_ref(item.slot);
        if (m.kind == kDead) {
          ++batch_pos_;
          reap(item.slot);  // cancelled after the batch was built
          continue;
        }
        now_ = TimePoint{batch_tick_};
        if (m.kind == kClosure) {
          fire_closure(item, m);
        } else {
          fire_sink_group(m.sink);
        }
        return true;
      }
      if (!refill_batch(std::numeric_limits<std::int64_t>::max())) return false;
    }
  }

  /// Live (scheduled, not yet fired or cancelled) events.  Consistent
  /// at any point, including from inside a batch sink callback: the
  /// items of the in-flight span are already fired and not counted.
  [[nodiscard]] std::size_t pending_events() const {
    assert(bookkeeping_consistent());
    return live_;
  }
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

  /// Audit hook: wheel/overflow/batch occupancy and the slab free list
  /// must always reconcile with the live and cancelled-but-unreaped
  /// counters:
  ///   queued entries == live events + stale entries
  ///   slab slots     == live events + stale entries + free slots
  ///                     + the slot of an in-flight closure (a firing
  ///                       closure runs in place and is freed after it
  ///                       returns; fired sink items are freed before
  ///                       their span is delivered)
  /// pending_events() asserts this in debug builds; the churn stress
  /// test checks it explicitly in every build type — including from
  /// inside callbacks mid-batch.  Walks every bucket, so debug/audit
  /// use only.
  [[nodiscard]] bool bookkeeping_consistent() const;

  /// Sum of events_fired() over every Simulator already destroyed in
  /// this process (relaxed atomic, added once per simulator at
  /// destruction — nothing on the per-event path).  The bench harness
  /// uses it to derive whole-process events/sec for BENCH_*.json.
  [[nodiscard]] static std::uint64_t process_events_fired();

 private:
  // Slot payload kind.  kDead marks free, cancelled-but-unreaped and
  // already-fired slots; liveness checks are a single meta read.
  enum : std::uint32_t { kDead = 0, kClosure = 1, kSink = 2 };

  // Hot per-event record: everything the wheel touches.  32 bytes.
  struct Meta {
    TimePoint at{0};               // firing tick (integer microseconds)
    std::uint64_t seq = 0;         // insertion order: ties fire FIFO
    std::uint32_t next = 0;        // intrusive bucket-list link
    std::uint32_t generation = 1;  // bumped on fire/cancel; 0 never used
    std::uint32_t kind = kDead;
    std::uint32_t sink = 0;        // valid iff kind == kSink
  };
  static_assert(sizeof(Meta) == 32);

  // Cold per-event payload: an engaged SimCallback iff kind == kClosure
  // (constructed on schedule, destroyed on fire/cancel), or a raw
  // 64-bit item at offset 0 iff kind == kSink.  Raw storage — managed
  // manually, keyed by meta.kind.
  struct ColdSlot {
    alignas(SimCallback) std::byte raw[sizeof(SimCallback)];
  };

  struct OverflowEntry {
    TimePoint at;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct BatchItem {
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr int kL0Bits = 14;                          // 16384 x 1 us
  static constexpr std::size_t kL0Size = std::size_t{1} << kL0Bits;
  static constexpr std::size_t kL0Mask = kL0Size - 1;
  static constexpr std::size_t kL0Words = kL0Size / 64;
  static constexpr int kL1Shift = 12;                         // L1 bucket = 4096 us
  static constexpr int kL1Bits = 12;                          // 4096 buckets
  static constexpr std::size_t kL1Size = std::size_t{1} << kL1Bits;
  static constexpr std::size_t kL1Mask = kL1Size - 1;
  static constexpr std::size_t kL1Words = kL1Size / 64;
  static constexpr std::int64_t kL0Horizon = std::int64_t{1} << kL0Bits;
  static constexpr std::int64_t kL1Horizon = std::int64_t{1} << (kL1Shift + kL1Bits);
  static constexpr int kChunkBits = 8;                        // 256 slots/chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

  // One chunk allocation holds 256 Meta records followed by their 256
  // cold payloads: metas stay densely packed (8 KB — wheel walks and
  // cancels touch nothing else) while meta_ref and cold_ptr share a
  // single chunk-table pointer chase.
  static constexpr std::size_t kColdOffset = kChunkSize * sizeof(Meta);
  [[nodiscard]] Meta& meta_ref(std::uint32_t slot) {
    return reinterpret_cast<Meta*>(chunks_[slot >> kChunkBits].get())[slot & kChunkMask];
  }
  [[nodiscard]] const Meta& meta_ref(std::uint32_t slot) const {
    return reinterpret_cast<const Meta*>(chunks_[slot >> kChunkBits].get())[slot &
                                                                            kChunkMask];
  }
  [[nodiscard]] void* cold_ptr(std::uint32_t slot) {
    return chunks_[slot >> kChunkBits].get() + kColdOffset +
           (slot & kChunkMask) * sizeof(ColdSlot);
  }
  [[nodiscard]] SimCallback& cold_fn(std::uint32_t slot) {
    return *static_cast<SimCallback*>(cold_ptr(slot));
  }
  // Extend the slab by one chunk, preferring the thread-local arena
  // pool (retired simulators park their chunks there) over malloc.
  void grow_slab();
  struct ArenaPool;

  /// Pop a free slot (or extend the slab).  The returned slot's meta is
  /// initialised (generation survives reuse) and kind == kDead; the
  /// caller fills the payload and calls file_slot.
  [[nodiscard]] std::uint32_t acquire_slot() {
    if (free_.empty()) {
      const std::uint32_t slot = slot_count_++;
      if ((slot >> kChunkBits) == chunks_.size()) grow_slab();
      // Chunks are raw storage; a slot's meta is constructed the first
      // time it is handed out and its generation then persists across
      // reuse.  Cold payloads are constructed per schedule.
      ::new (static_cast<void*>(&meta_ref(slot))) Meta;
      return slot;
    }
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  /// Stamp (time, seq), file into the wheel, publish the id.
  EventId file_slot(std::uint32_t slot, Meta& m, TimePoint at) {
    if (at < now_) at = now_;
    m.at = at;
    m.seq = next_seq_++;
    enqueue(slot, m);
    ++live_;
    if (obs_ != nullptr) [[unlikely]] note_scheduled(at, m.seq);
    return (static_cast<EventId>(m.generation) << 32) | slot;
  }

  // Min-first by (time, seq) for the overflow heap; keys are unique
  // (seq never repeats), so heap mechanics cannot affect firing order.
  struct OverflowLater {
    bool operator()(const OverflowEntry& a, const OverflowEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Heads are uninitialised storage: a head is read only when its
  // occupancy bit says a list is there, so an empty bucket's head may
  // hold garbage safely.
  void push_bucket(std::uint32_t* heads, std::uint64_t* bitmap, std::size_t bucket,
                   std::uint32_t slot) {
    std::uint64_t& word = bitmap[bucket >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (bucket & 63);
    meta_ref(slot).next = (word & bit) != 0 ? heads[bucket] : kNil;
    heads[bucket] = slot;
    word |= bit;
  }
  void push_l0(std::size_t bucket, std::uint32_t slot) {
    push_bucket(l0_head_.get(), l0_bits_.get(), bucket, slot);
    ++l0_count_;
  }
  void push_l1(std::size_t bucket, std::uint32_t slot, std::int64_t at_usec) {
    push_bucket(l1_head_.get(), l1_bits_.get(), bucket, slot);
    ++l1_count_;
    // A bucket earlier than the cached next-occupied candidate
    // invalidates the cache (refill would otherwise miss it).
    if (l1_cache_valid_ && (at_usec >> kL1Shift) << kL1Shift < l1_cache_start_) {
      l1_cache_valid_ = false;
    }
  }

  /// File `slot` into the wheel level (or overflow heap) that covers
  /// its distance from the cursor.  List order within a bucket is
  /// irrelevant — fire-time batches sort by seq.
  ///
  /// L1 admission is by *bucket* distance, not time distance: buckets
  /// are indexed by absolute time, so when the cursor sits mid-bucket
  /// an event whose time distance is just under kL1Horizon can already
  /// be a full wheel revolution away in bucket distance — filing it
  /// would wrap into the cursor's own bucket and fire a revolution
  /// early.  Such boundary events go to the overflow heap instead.
  void enqueue(std::uint32_t slot, const Meta& m) {
    const std::int64_t d = m.at.usec() - cursor_;
    if (d < kL0Horizon) {
      push_l0(static_cast<std::size_t>(m.at.usec()) & kL0Mask, slot);
    } else if ((m.at.usec() >> kL1Shift) - (cursor_ >> kL1Shift) <
               static_cast<std::int64_t>(kL1Size)) {
      push_l1((static_cast<std::size_t>(m.at.usec()) >> kL1Shift) & kL1Mask, slot,
              m.at.usec());
    } else {
      overflow_.push_back(OverflowEntry{m.at, m.seq, slot});
      std::push_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
    }
  }

  /// Put the slot back on the free list once no queue structure
  /// references it.  The generation was already bumped when the event
  /// was cancelled or fired.
  void reap(std::uint32_t slot) {
    free_.push_back(slot);
    --stale_;
  }

  // Obs hooks, outlined so the (rare) hub-present path costs the hot
  // loops exactly one predicted branch — the registry/ring writes never
  // inline into schedule_at()'s template expansions or step():
  [[gnu::noinline, gnu::cold]] void note_scheduled(TimePoint at, std::uint64_t seq) {
    obs_->sim_scheduled(now_, at, seq);
  }
  [[gnu::noinline, gnu::cold]] void note_fired(std::uint64_t seq) {
    obs_->sim_fired(now_, seq);
  }

  /// Invoke one closure event in place, then retire its slot.  The
  /// generation bump precedes the call so the event's own id is already
  /// invalid inside the callback; the slot joins the free list only
  /// after the callback returns (it runs from the cold slot it lives
  /// in).  Kept inline: this is the scalar hot path.
  void fire_closure(BatchItem item, Meta& m) {
    ++batch_pos_;
    if (++m.generation == 0) m.generation = 1;
    m.kind = kDead;
    --live_;
    ++fired_;
    if (obs_ != nullptr) [[unlikely]] note_fired(m.seq);
    SimCallback& fn = cold_fn(item.slot);
    in_flight_ = 1;
    // Slot addresses are stable (chunked slab) and the slot is not yet
    // on the free list, so the callback runs in place — no move of the
    // 64-byte buffer.  Anything it schedules lands in other slots.
    fn();
    fn.~SimCallback();
    in_flight_ = 0;
    free_.push_back(item.slot);
  }

  // Batch fire path, outlined (cold relative to single-closure steps):
  void fire_sink_group(SinkId sink);  // consume run, deliver one span

  // Cold-path machinery in the .cc:
  bool refill_batch(std::int64_t limit_usec);   // collect next tick's batch
  void cascade(std::size_t l1_bucket);          // re-file an L1 bucket into L0
  static std::size_t scan(const std::uint64_t* bitmap, std::size_t words,
                          std::size_t from);

  TimePoint now_{0};
  obs::ObsHub* obs_ = nullptr;  // optional, not owned; null = no instrumentation
  std::int64_t cursor_ = 0;     // wheel position; invariant: cursor_ <= now_.usec()
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::size_t live_ = 0;       // scheduled, not yet fired or cancelled
  std::size_t stale_ = 0;      // cancelled, still occupying a queue entry
  std::size_t in_flight_ = 0;  // 1 while a closure runs in place, else 0
  bool batch_dispatch_ = true;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;  // slab: stable addresses
  std::uint32_t slot_count_ = 0;
  std::vector<std::uint32_t> free_;
  std::unique_ptr<std::uint32_t[]> l0_head_;  // uninitialised; bitmap-guarded
  std::unique_ptr<std::uint32_t[]> l1_head_;
  std::unique_ptr<std::uint64_t[]> l0_bits_;  // occupancy bitmaps (1 bit/bucket)
  std::unique_ptr<std::uint64_t[]> l1_bits_;
  std::size_t l0_count_ = 0;             // entries (live + stale) per level:
  std::size_t l1_count_ = 0;             // lets refill skip empty-level scans
  bool l1_cache_valid_ = false;          // cached earliest-occupied L1 bucket
  std::int64_t l1_cache_start_ = 0;      // bucket start time (usec)
  std::size_t l1_cache_bucket_ = 0;
  std::vector<OverflowEntry> overflow_;  // min-heap, events >= ~16.8 s out
  std::vector<BatchItem> batch_;         // current tick, sorted by seq
  std::size_t batch_pos_ = 0;
  std::int64_t batch_tick_ = 0;
  std::deque<SinkCallback> sinks_;       // deque: stable during dispatch
  std::vector<std::uint64_t> group_;     // scratch: items of the current span
};

/// A restartable one-shot timer (RTO, join delays, app think time...).
/// Sink-based: the fire callback is installed once at construction and
/// a restart only files a 40-byte meta entry — no per-restart closure
/// construction.  Restarts are additionally *lazy*: pushing the
/// deadline later (the overwhelmingly common case — an RTO reset on
/// every ACK) just rewrites the logical deadline and lets the already-
/// scheduled event re-arm itself when it fires early, so a restart
/// costs two field writes instead of a cancel + schedule.  Observable
/// fire times and armed() are exactly as if every restart rescheduled.
/// A Timer must outlive its Simulator use and must not be relocated
/// (the sink captures `this`).
class Timer {
 public:
  Timer(Simulator& sim, SimCallback on_fire)
      : sim_(sim), on_fire_(std::move(on_fire)) {
    sink_ = sim.register_sink([this](SinkSpan) { on_physical_fire(); });
  }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer() { stop(); }

  /// (Re)arm the timer to fire after `delay` from now.
  void restart(Duration delay);
  /// Disarm; no-op if not armed.
  void stop();
  [[nodiscard]] bool armed() const { return armed_; }

 private:
  void on_physical_fire();

  Simulator& sim_;
  SimCallback on_fire_;
  SinkId sink_ = 0;
  EventId pending_ = 0;
  TimePoint deadline_{};     // logical fire time (authoritative)
  TimePoint physical_at_{};  // when the scheduled event actually fires
  bool armed_ = false;       // logical
  bool physical_ = false;    // a sim event is pending
};

}  // namespace mn
