#include "sim/simulator.hpp"

#include <utility>

namespace mn {

EventId Simulator::schedule_at(TimePoint at, std::function<void()> fn) {
  if (at < now_) at = now_;
  const EventId id = next_id_++;
  queue_.push(Entry{at, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

EventId Simulator::schedule_after(Duration delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::cancel(EventId id) {
  if (handlers_.count(id)) cancelled_.insert(id);
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    queue_.pop();
    if (cancelled_.erase(top.id)) {
      handlers_.erase(top.id);
      continue;
    }
    auto it = handlers_.find(top.id);
    // Handler must exist: ids are only erased via the cancel path above.
    auto fn = std::move(it->second);
    handlers_.erase(it);
    now_ = top.at;
    ++fired_;
    fn();
    return true;
  }
  return false;
}

void Simulator::run_until(TimePoint deadline) {
  while (!queue_.empty()) {
    // Peek past cancelled entries without firing.
    const Entry top = queue_.top();
    if (cancelled_.count(top.id)) {
      queue_.pop();
      cancelled_.erase(top.id);
      handlers_.erase(top.id);
      continue;
    }
    if (top.at > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run_until_idle() {
  while (step()) {
  }
}

void Timer::restart(Duration delay) {
  stop();
  armed_ = true;
  pending_ = sim_.schedule_after(delay, [this] {
    armed_ = false;
    on_fire_();
  });
}

void Timer::stop() {
  if (armed_) {
    sim_.cancel(pending_);
    armed_ = false;
  }
}

}  // namespace mn
