#include "sim/simulator.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <utility>

namespace mn {

namespace {
// Events fired by simulators that have finished their lives.  One
// relaxed add per ~Simulator keeps the per-event path free of atomics
// while still letting a bench report whole-process throughput.
std::atomic<std::uint64_t> g_retired_events{0};

bool scalar_dispatch_from_env() {
  const char* v = std::getenv("MN_SCALAR_DISPATCH");
  return v != nullptr && v[0] == '1' && v[1] == '\0';
}
}  // namespace

// A destroyed Simulator parks its wheel arrays and slab chunks here so
// the next one built on this thread adopts them instead of paying
// ~85 KB of fresh allocation per construction.  Campaigns and benches
// build thousands of short-lived simulators (one per run/flow), and in
// a heap fragmented by earlier work those large blocks fall to mmap —
// construction then page-faults its arrays back in every single time.
// Recycling makes steady-state construction a 2.5 KB bitmap clear with
// zero allocator traffic.  Thread-local so parallel campaign workers
// never contend; the chunk cache is capped, the four fixed arrays are
// one set per thread.
struct Simulator::ArenaPool {
  std::unique_ptr<std::uint32_t[]> l0_head;
  std::unique_ptr<std::uint32_t[]> l1_head;
  std::unique_ptr<std::uint64_t[]> l0_bits;
  std::unique_ptr<std::uint64_t[]> l1_bits;
  std::vector<std::unique_ptr<std::byte[]>> chunks;

  static constexpr std::size_t kMaxChunks = 64;  // ~1.8 MB retained max

  static ArenaPool& get() {
    static thread_local ArenaPool pool;
    return pool;
  }
};

Simulator::Simulator() : batch_dispatch_(!scalar_dispatch_from_env()) {
  ArenaPool& pool = ArenaPool::get();
  if (pool.l0_head != nullptr) {
    l0_head_ = std::move(pool.l0_head);
    l1_head_ = std::move(pool.l1_head);
    l0_bits_ = std::move(pool.l0_bits);
    l1_bits_ = std::move(pool.l1_bits);
    // Heads are bitmap-guarded and may hold stale garbage; only the
    // occupancy bitmaps must start clear.
    std::fill_n(l0_bits_.get(), kL0Words, std::uint64_t{0});
    std::fill_n(l1_bits_.get(), kL1Words, std::uint64_t{0});
  } else {
    l0_head_ = std::make_unique_for_overwrite<std::uint32_t[]>(kL0Size);
    l1_head_ = std::make_unique_for_overwrite<std::uint32_t[]>(kL1Size);
    l0_bits_ = std::make_unique<std::uint64_t[]>(kL0Words);
    l1_bits_ = std::make_unique<std::uint64_t[]>(kL1Words);
  }
}

Simulator::~Simulator() {
  // Chunks are raw storage; destroy the closures still alive in their
  // cold slots (free, fired, cancelled and sink slots hold none).
  for (std::uint32_t i = 0; i < slot_count_; ++i) {
    if (meta_ref(i).kind == kClosure) cold_fn(i).~SimCallback();
  }
  g_retired_events.fetch_add(fired_, std::memory_order_relaxed);
  ArenaPool& pool = ArenaPool::get();
  if (pool.l0_head == nullptr) {
    pool.l0_head = std::move(l0_head_);
    pool.l1_head = std::move(l1_head_);
    pool.l0_bits = std::move(l0_bits_);
    pool.l1_bits = std::move(l1_bits_);
  }
  while (!chunks_.empty() && pool.chunks.size() < ArenaPool::kMaxChunks) {
    pool.chunks.push_back(std::move(chunks_.back()));
    chunks_.pop_back();
  }
}

void Simulator::grow_slab() {
  ArenaPool& pool = ArenaPool::get();
  if (!pool.chunks.empty()) {
    chunks_.push_back(std::move(pool.chunks.back()));
    pool.chunks.pop_back();
    return;
  }
  chunks_.push_back(std::make_unique_for_overwrite<std::byte[]>(
      kChunkSize * (sizeof(Meta) + sizeof(ColdSlot))));
}

std::uint64_t Simulator::process_events_fired() {
  return g_retired_events.load(std::memory_order_relaxed);
}

void Simulator::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slot_count_) return;
  Meta& m = meta_ref(slot);
  if (m.generation != generation || m.kind == kDead) return;
  // Drop the payload and invalidate the id now; the slot itself is
  // recycled only when its queue entry surfaces (a bucket list or heap
  // entry still points at it).
  if (m.kind == kClosure) cold_fn(slot).~SimCallback();
  m.kind = kDead;
  if (++m.generation == 0) m.generation = 1;
  --live_;
  ++stale_;
  if (obs_ != nullptr) obs_->sim_cancelled(now_);
}

/// Consume the maximal run of live same-sink items at the front of the
/// current tick's batch and deliver their payloads as one span.  Runs
/// may skip over cancelled entries (scalar dispatch would skip them in
/// the same positions, so grouping across them preserves order).  All
/// consumed slots are fired, counted and freed *before* the sink runs:
/// mid-batch pending_events()/audit queries see them as gone, and a
/// reschedule from inside the callback may legitimately reuse them.
void Simulator::fire_sink_group(SinkId sink) {
  group_.clear();
  do {
    const BatchItem item = batch_[batch_pos_];
    Meta& m = meta_ref(item.slot);
    if (m.kind == kDead) {
      ++batch_pos_;
      reap(item.slot);
      continue;
    }
    if (m.kind != kSink || m.sink != sink) break;
    ++batch_pos_;
    if (++m.generation == 0) m.generation = 1;
    m.kind = kDead;
    --live_;
    ++fired_;
    if (obs_ != nullptr) [[unlikely]] note_fired(m.seq);
    group_.push_back(*static_cast<const std::uint64_t*>(cold_ptr(item.slot)));
    free_.push_back(item.slot);
    if (!batch_dispatch_) break;  // scalar fallback: width-1 groups
  } while (batch_pos_ < batch_.size());
  sinks_[sink](SinkSpan{group_.data(), group_.size()});
}

/// Smallest delta k in [0, words*64) with bit (from+k) mod size set, or
/// SIZE_MAX when the bitmap is empty.
std::size_t Simulator::scan(const std::uint64_t* bits, std::size_t words,
                            std::size_t from) {
  const std::size_t mask = words * 64 - 1;
  from &= mask;
  const std::size_t w0 = from >> 6;
  const std::uint64_t first = bits[w0] >> (from & 63);
  if (first != 0) return static_cast<std::size_t>(std::countr_zero(first));
  for (std::size_t i = 1; i <= words; ++i) {
    const std::size_t w = (w0 + i) % words;
    if (bits[w] != 0) {
      const std::size_t bit = static_cast<std::size_t>(std::countr_zero(bits[w]));
      return ((w << 6) + bit - from) & mask;
    }
  }
  return static_cast<std::size_t>(-1);
}

/// Re-file every live event of L1 bucket `b` into L0.  Caller has
/// already advanced the cursor to (at least) the bucket's start, so
/// every entry is within the L0 horizon.
void Simulator::cascade(std::size_t b) {
  std::uint32_t slot = l1_head_[b];
  l1_head_[b] = kNil;
  l1_bits_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
  l1_cache_valid_ = false;  // the cached earliest bucket was consumed
  while (slot != kNil) {
    Meta& m = meta_ref(slot);
    const std::uint32_t next = m.next;
    --l1_count_;
    if (m.kind == kDead) {
      reap(slot);
    } else {
      assert(m.at.usec() - cursor_ >= 0 && m.at.usec() - cursor_ < kL0Horizon);
      push_l0(static_cast<std::size_t>(m.at.usec()) & kL0Mask, slot);
    }
    slot = next;
  }
}

/// Advance the cursor to the next tick holding live events (cascading
/// L1 buckets and migrating due overflow entries on the way) and load
/// that tick's events, sorted by seq, into batch_.  Returns false — and
/// leaves the cursor at most at `limit_usec` — when no event fires at
/// or before the limit.
bool Simulator::refill_batch(std::int64_t limit_usec) {
  batch_.clear();
  batch_pos_ = 0;
  for (;;) {
    // Candidate next-event lower bounds per structure (occupancy
    // counts let an empty level skip its bitmap scan entirely).
    std::int64_t t0 = -1;
    if (l0_count_ != 0) {
      const std::size_t d0 =
          scan(l0_bits_.get(), kL0Words, static_cast<std::size_t>(cursor_) & kL0Mask);
      if (d0 != static_cast<std::size_t>(-1)) t0 = cursor_ + static_cast<std::int64_t>(d0);
    }

    // The earliest occupied L1 bucket changes only when an earlier
    // bucket is filed (push_l1 invalidates) or the bucket cascades, so
    // its scan result is cached across refills — the steady state pays
    // one L1 bitmap walk per cascade instead of one per tick.
    std::int64_t t1 = -1;
    if (l1_count_ != 0) {
      if (!l1_cache_valid_) {
        const std::int64_t base1 = cursor_ >> kL1Shift;
        const std::size_t d1 =
            scan(l1_bits_.get(), kL1Words, static_cast<std::size_t>(base1) & kL1Mask);
        assert(d1 != static_cast<std::size_t>(-1));
        l1_cache_bucket_ = static_cast<std::size_t>(base1 + static_cast<std::int64_t>(d1)) & kL1Mask;
        l1_cache_start_ = (base1 + static_cast<std::int64_t>(d1)) << kL1Shift;
        l1_cache_valid_ = true;
      }
      t1 = l1_cache_start_ > cursor_ ? l1_cache_start_ : cursor_;
    }

    // Reap cancelled overflow tops so the candidate is a live event.
    while (!overflow_.empty() && meta_ref(overflow_.front().slot).kind == kDead) {
      reap(overflow_.front().slot);
      std::pop_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
      overflow_.pop_back();
    }
    const std::int64_t tov = overflow_.empty() ? -1 : overflow_.front().at.usec();

    // An L1 bucket that starts at or before the earliest other
    // candidate may hide earlier ticks — cascade it first.
    if (t1 >= 0 && (t0 < 0 || t1 <= t0) && (tov < 0 || t1 <= tov)) {
      if (t1 > limit_usec) return false;
      cursor_ = t1;
      cascade(l1_cache_bucket_);
      continue;
    }
    if (tov >= 0 && (t0 < 0 || tov <= t0)) {
      if (tov > limit_usec) return false;
      cursor_ = tov;
      while (!overflow_.empty() && overflow_.front().at.usec() == tov) {
        const std::uint32_t slot = overflow_.front().slot;
        std::pop_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
        overflow_.pop_back();
        if (meta_ref(slot).kind == kDead) {
          reap(slot);
        } else {
          push_l0(static_cast<std::size_t>(tov) & kL0Mask, slot);
        }
      }
      continue;  // the migrated events surface as L0 candidates
    }
    if (t0 < 0) return false;  // idle
    if (t0 > limit_usec) return false;

    cursor_ = t0;
    const std::size_t b0 = static_cast<std::size_t>(t0) & kL0Mask;
    std::uint32_t slot = l0_head_[b0];
    l0_head_[b0] = kNil;
    l0_bits_[b0 >> 6] &= ~(std::uint64_t{1} << (b0 & 63));
    while (slot != kNil) {
      Meta& m = meta_ref(slot);
      const std::uint32_t next = m.next;
      --l0_count_;
      if (m.kind == kDead) {
        reap(slot);
      } else {
        batch_.push_back(BatchItem{m.seq, slot});
      }
      slot = next;
    }
    if (batch_.empty()) continue;  // every entry was cancelled
    if (batch_.size() > 1) {
      std::sort(batch_.begin(), batch_.end(),
                [](const BatchItem& a, const BatchItem& b) { return a.seq < b.seq; });
    }
    batch_tick_ = t0;
    return true;
  }
}

bool Simulator::bookkeeping_consistent() const {
  std::size_t queued = overflow_.size() + (batch_.size() - batch_pos_);
  const auto count_level = [this](const std::uint32_t* heads, const std::uint64_t* bits,
                                  std::size_t words) {
    std::size_t n = 0;
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t word = bits[w];
      while (word != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(word));
        word &= word - 1;
        for (std::uint32_t s = heads[(w << 6) + bit]; s != kNil; s = meta_ref(s).next)
          ++n;
      }
    }
    return n;
  };
  const std::size_t in_l0 = count_level(l0_head_.get(), l0_bits_.get(), kL0Words);
  const std::size_t in_l1 = count_level(l1_head_.get(), l1_bits_.get(), kL1Words);
  queued += in_l0 + in_l1;
  return in_l0 == l0_count_ && in_l1 == l1_count_ && queued == live_ + stale_ &&
         slot_count_ == live_ + stale_ + free_.size() + in_flight_;
}

void Timer::restart(Duration delay) {
  armed_ = true;
  deadline_ = sim_.now() + delay;
  // Deadline moved later (or unchanged): the pending event fires early
  // and re-arms for the remainder — no cancel, no reschedule.
  if (physical_ && physical_at_ <= deadline_) return;
  if (physical_) sim_.cancel(pending_);
  physical_at_ = deadline_;
  physical_ = true;
  pending_ = sim_.schedule_item_at(deadline_, sink_, 0);
}

void Timer::stop() {
  if (physical_) {
    sim_.cancel(pending_);
    physical_ = false;
  }
  armed_ = false;
}

void Timer::on_physical_fire() {
  physical_ = false;
  if (!armed_) return;  // defensive: stop() cancels, so normally unreachable
  if (deadline_ > sim_.now()) {
    // Restarts since scheduling pushed the deadline out; chase it.
    physical_at_ = deadline_;
    physical_ = true;
    pending_ = sim_.schedule_item_at(deadline_, sink_, 0);
    return;
  }
  armed_ = false;
  on_fire_();
}

}  // namespace mn
