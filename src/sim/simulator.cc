#include "sim/simulator.hpp"

#include <atomic>
#include <bit>
#include <utility>

namespace mn {

namespace {
// Events fired by simulators that have finished their lives.  One
// relaxed add per ~Simulator keeps the per-event path free of atomics
// while still letting a bench report whole-process throughput.
std::atomic<std::uint64_t> g_retired_events{0};
}  // namespace

Simulator::Simulator()
    : l0_head_(std::make_unique_for_overwrite<std::uint32_t[]>(kL0Size)),
      l1_head_(std::make_unique_for_overwrite<std::uint32_t[]>(kL1Size)),
      l0_bits_(std::make_unique<std::uint64_t[]>(kL0Words)),
      l1_bits_(std::make_unique<std::uint64_t[]>(kL1Words)) {}

Simulator::~Simulator() {
  // Chunks are raw storage; destroy the slots that were ever handed out.
  for (std::uint32_t i = 0; i < slot_count_; ++i) slot_ref(i).~Slot();
  g_retired_events.fetch_add(fired_, std::memory_order_relaxed);
}

std::uint64_t Simulator::process_events_fired() {
  return g_retired_events.load(std::memory_order_relaxed);
}

void Simulator::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slot_count_) return;
  Slot& s = slot_ref(slot);
  if (s.generation != generation || !s.fn) return;
  // Drop the callback and invalidate the id now; the slot itself is
  // recycled only when its queue entry surfaces (a bucket list or heap
  // entry still points at it).
  s.fn = nullptr;
  if (++s.generation == 0) s.generation = 1;
  --live_;
  ++stale_;
  if (obs_ != nullptr) obs_->sim_cancelled(now_);
}

/// Smallest delta k in [0, words*64) with bit (from+k) mod size set, or
/// SIZE_MAX when the bitmap is empty.
std::size_t Simulator::scan(const std::uint64_t* bits, std::size_t words,
                            std::size_t from) {
  const std::size_t mask = words * 64 - 1;
  from &= mask;
  const std::size_t w0 = from >> 6;
  const std::uint64_t first = bits[w0] >> (from & 63);
  if (first != 0) return static_cast<std::size_t>(std::countr_zero(first));
  for (std::size_t i = 1; i <= words; ++i) {
    const std::size_t w = (w0 + i) % words;
    if (bits[w] != 0) {
      const std::size_t bit = static_cast<std::size_t>(std::countr_zero(bits[w]));
      return ((w << 6) + bit - from) & mask;
    }
  }
  return static_cast<std::size_t>(-1);
}

/// Re-file every live event of L1 bucket `b` into L0.  Caller has
/// already advanced the cursor to (at least) the bucket's start, so
/// every entry is within the L0 horizon.
void Simulator::cascade(std::size_t b) {
  std::uint32_t slot = l1_head_[b];
  l1_head_[b] = kNil;
  l1_bits_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
  while (slot != kNil) {
    Slot& s = slot_ref(slot);
    const std::uint32_t next = s.next;
    --l1_count_;
    if (!s.fn) {
      reap(slot);
    } else {
      assert(s.at.usec() - cursor_ >= 0 && s.at.usec() - cursor_ < kL0Horizon);
      push_l0(static_cast<std::size_t>(s.at.usec()) & kL0Mask, slot);
    }
    slot = next;
  }
}

/// Advance the cursor to the next tick holding live events (cascading
/// L1 buckets and migrating due overflow entries on the way) and load
/// that tick's events, sorted by seq, into batch_.  Returns false — and
/// leaves the cursor at most at `limit_usec` — when no event fires at
/// or before the limit.
bool Simulator::refill_batch(std::int64_t limit_usec) {
  batch_.clear();
  batch_pos_ = 0;
  for (;;) {
    // Candidate next-event lower bounds per structure (occupancy
    // counts let an empty level skip its bitmap scan entirely).
    std::int64_t t0 = -1;
    if (l0_count_ != 0) {
      const std::size_t d0 =
          scan(l0_bits_.get(), kL0Words, static_cast<std::size_t>(cursor_) & kL0Mask);
      if (d0 != static_cast<std::size_t>(-1)) t0 = cursor_ + static_cast<std::int64_t>(d0);
    }

    std::int64_t t1 = -1;
    std::size_t b1 = 0;
    const std::int64_t base1 = cursor_ >> kL1Shift;
    if (l1_count_ != 0) {
      const std::size_t d1 =
          scan(l1_bits_.get(), kL1Words, static_cast<std::size_t>(base1) & kL1Mask);
      if (d1 != static_cast<std::size_t>(-1)) {
        b1 = static_cast<std::size_t>(base1 + static_cast<std::int64_t>(d1)) & kL1Mask;
        const std::int64_t start = (base1 + static_cast<std::int64_t>(d1)) << kL1Shift;
        t1 = start > cursor_ ? start : cursor_;
      }
    }

    // Reap cancelled overflow tops so the candidate is a live event.
    while (!overflow_.empty() && !slot_ref(overflow_.front().slot).fn) {
      reap(overflow_.front().slot);
      std::pop_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
      overflow_.pop_back();
    }
    const std::int64_t tov = overflow_.empty() ? -1 : overflow_.front().at.usec();

    // An L1 bucket that starts at or before the earliest other
    // candidate may hide earlier ticks — cascade it first.
    if (t1 >= 0 && (t0 < 0 || t1 <= t0) && (tov < 0 || t1 <= tov)) {
      if (t1 > limit_usec) return false;
      cursor_ = t1;
      cascade(b1);
      continue;
    }
    if (tov >= 0 && (t0 < 0 || tov <= t0)) {
      if (tov > limit_usec) return false;
      cursor_ = tov;
      while (!overflow_.empty() && overflow_.front().at.usec() == tov) {
        const std::uint32_t slot = overflow_.front().slot;
        std::pop_heap(overflow_.begin(), overflow_.end(), OverflowLater{});
        overflow_.pop_back();
        if (!slot_ref(slot).fn) {
          reap(slot);
        } else {
          push_l0(static_cast<std::size_t>(tov) & kL0Mask, slot);
        }
      }
      continue;  // the migrated events surface as L0 candidates
    }
    if (t0 < 0) return false;  // idle
    if (t0 > limit_usec) return false;

    cursor_ = t0;
    const std::size_t b0 = static_cast<std::size_t>(t0) & kL0Mask;
    std::uint32_t slot = l0_head_[b0];
    l0_head_[b0] = kNil;
    l0_bits_[b0 >> 6] &= ~(std::uint64_t{1} << (b0 & 63));
    while (slot != kNil) {
      Slot& s = slot_ref(slot);
      const std::uint32_t next = s.next;
      --l0_count_;
      if (!s.fn) {
        reap(slot);
      } else {
        batch_.push_back(BatchItem{s.seq, slot});
      }
      slot = next;
    }
    if (batch_.empty()) continue;  // every entry was cancelled
    if (batch_.size() > 1) {
      std::sort(batch_.begin(), batch_.end(),
                [](const BatchItem& a, const BatchItem& b) { return a.seq < b.seq; });
    }
    batch_tick_ = t0;
    return true;
  }
}




bool Simulator::bookkeeping_consistent() const {
  std::size_t queued = overflow_.size() + (batch_.size() - batch_pos_);
  const auto count_level = [this](const std::uint32_t* heads, const std::uint64_t* bits,
                                  std::size_t words) {
    std::size_t n = 0;
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t word = bits[w];
      while (word != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(word));
        word &= word - 1;
        for (std::uint32_t s = heads[(w << 6) + bit]; s != kNil; s = slot_ref(s).next) ++n;
      }
    }
    return n;
  };
  const std::size_t in_l0 = count_level(l0_head_.get(), l0_bits_.get(), kL0Words);
  const std::size_t in_l1 = count_level(l1_head_.get(), l1_bits_.get(), kL1Words);
  queued += in_l0 + in_l1;
  return in_l0 == l0_count_ && in_l1 == l1_count_ && queued == live_ + stale_ &&
         slot_count_ == live_ + stale_ + free_.size();
}

void Timer::restart(Duration delay) {
  stop();
  armed_ = true;
  pending_ = sim_.schedule_after(delay, [this] {
    armed_ = false;
    on_fire_();
  });
}

void Timer::stop() {
  if (armed_) {
    sim_.cancel(pending_);
    armed_ = false;
  }
}

}  // namespace mn
