// CellPort: full packet fidelity through a contended cell.
//
// The fluid flows of shared_world.hpp trade packets for byte backlogs
// to reach 10^5-10^6 users.  CellPort is the opposite trade for
// endpoint-scale experiments: a PacketStage that replaces the private
// RateLink in a real TCP/MPTCP wiring, holding a DropTail queue that is
// drained not by its own serializer but by the grants of a shared
// WifiCell or LteSector.  Many real endpoints attached to one cell then
// experience genuine airtime/PF contention — queueing delay grows with
// the active-station count, service comes in per-tick bursts, and
// detaching is automatic when the queue drains (the station leaves the
// contention set and re-associates on the next packet, paying the
// service-tick attach latency like a waking radio).
//
// Grant credit that exceeds the head packet is banked (carry credit) so
// slow stations with big packets still progress; unused credit is
// returned to the cell (and thus the shared backhaul) when the queue
// empties.
#pragma once

#include <cstdint>

#include "net/links.hpp"
#include "world/cell.hpp"

namespace mn::world {

class CellPort final : public PacketStage, public GrantSink {
 public:
  /// `phy_mbps` is this station's own link-layer rate on the cell.
  CellPort(Simulator& sim, CellBase& cell, double phy_mbps, int queue_packets);
  ~CellPort() override;

  void accept(Packet p) override;
  [[nodiscard]] std::int64_t queued_packets() const override {
    return static_cast<std::int64_t>(queue_.size());
  }

  std::int64_t on_grant(std::uint32_t tag, std::int64_t offered_bytes) override;

  [[nodiscard]] bool attached() const { return cell_.is_attached(station_); }

 private:
  Simulator& sim_;
  CellBase& cell_;
  double phy_mbps_;
  int queue_limit_;
  PacketRing queue_;
  StationId station_;         // valid while the queue is non-empty
  std::int64_t credit_ = 0;   // banked grant bytes (< head wire size)
};

}  // namespace mn::world
