#include "world/shared_world.hpp"

#include <algorithm>
#include <memory>

#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace mn::world {

namespace {

CellConfig make_cell_cfg(std::string name, const WorldOptions& opt, int grants_per_tick,
                         Backhaul* backhaul, std::size_t capacity) {
  CellConfig cfg;
  cfg.name = std::move(name);
  cfg.service_tick = opt.service_tick;
  cfg.grants_per_tick = grants_per_tick;
  cfg.backhaul = backhaul;
  cfg.station_capacity = capacity;
  return cfg;
}

WifiCell::Options wifi_opts(const WorldOptions& opt) {
  WifiCell::Options o;
  o.dcf_overhead = opt.dcf_overhead;
  return o;
}

LteSector::Options lte_opts(const WorldOptions& opt, std::uint64_t seed) {
  LteSector::Options o;
  o.pf_window = opt.pf_window;
  o.ewma_ticks = opt.pf_ewma_ticks;
  o.fading_depth = opt.fading_depth;
  o.fading_seed = seed;
  return o;
}

}  // namespace

ClusterWorld::ClusterWorld(Simulator& sim, const ClusterSpec& spec, int n_users,
                           const WorldOptions& opt)
    : sim_(sim), opt_(opt) {
  stats_.name = spec.name;
  const auto n = static_cast<std::size_t>(std::max(0, n_users));
  users_.resize(n);
  // Venue build-out: a cluster with n users gets ceil(n / users_per_cell)
  // venues so AP density stays realistic at any scale; users are dealt
  // round-robin (user i -> venue i % n_venues), so every venue carries
  // within one user of every other.
  const auto per_cell = static_cast<std::size_t>(std::max(1, opt.users_per_cell));
  const std::size_t n_venues = std::max<std::size_t>(1, (n + per_cell - 1) / per_cell);
  const std::size_t capacity = std::max<std::size_t>(1, (n + n_venues - 1) / n_venues);
  const bool use_backhaul = opt.backhaul_mbps > 0;
  venues_.reserve(n_venues);
  for (std::size_t v = 0; v < n_venues; ++v) {
    const std::string base = spec.name + ".v" + std::to_string(v);
    venues_.push_back(std::make_unique<Venue>(
        sim, Backhaul(use_backhaul ? opt.backhaul_mbps : 1e9, opt.backhaul_burst),
        use_backhaul,
        make_cell_cfg(base + ".wifi", opt, opt.wifi_grants_per_tick, nullptr, capacity),
        wifi_opts(opt),
        make_cell_cfg(base + ".lte", opt, opt.lte_grants_per_tick, nullptr, capacity),
        lte_opts(opt, mix_seed(opt.seed, "fading." + base))));
  }
  // Plan phase: every random draw happens here, in user order, before
  // the first event fires — the event loop itself is randomness-free
  // (the PF fading hash is a pure function, not a stream).
  Rng rng(mix_seed(opt.seed, spec.name));
  for (std::uint32_t i = 0; i < users_.size(); ++i) {
    UserFlow& u = users_[i];
    u.wifi_phy_mbps = static_cast<float>(spec.wifi_rate.sample(rng));
    u.lte_phy_mbps = static_cast<float>(spec.lte_rate.sample(rng));
    u.wifi_rtt_ms = static_cast<float>(2.0 * spec.wifi_delay.sample(rng).millis());
    u.lte_rtt_ms = static_cast<float>(2.0 * spec.lte_delay.sample(rng).millis());
    const bool incomplete = rng.uniform() < opt_.incomplete_probability;
    const bool skip_wifi_side = rng.uniform() < 0.5;  // drawn unconditionally
    if (incomplete) {
      u.skip_wifi = skip_wifi_side;
      u.skip_lte = !skip_wifi_side;
    }
    const Duration arrival = secs_f(rng.uniform(0.0, opt_.arrival_window_s));
    sim_.schedule_at(TimePoint{} + arrival, [this, i] { start_user(i); });
  }
}

void ClusterWorld::start_user(std::uint32_t i) {
  ++stats_.users_started;
  ++in_flight_;
  begin_phase(i, kWifi);
}

void ClusterWorld::begin_phase(std::uint32_t i, std::uint8_t phase) {
  UserFlow& u = users_[i];
  Venue& ven = *venues_[i % venues_.size()];
  u.phase = phase;
  switch (phase) {
    case kWifi:
      if (u.skip_wifi) {
        begin_phase(i, kLte);
        return;
      }
      u.remaining = opt_.transfer_bytes;
      u.grants = 0;
      u.phase_start_us = sim_.now().usec();
      u.wifi_st = ven.wifi.attach(this, i, u.wifi_phy_mbps);
      return;
    case kLte:
      if (u.skip_lte) {
        begin_phase(i, kMptcp);
        return;
      }
      u.remaining = opt_.transfer_bytes;
      u.grants = 0;
      u.phase_start_us = sim_.now().usec();
      u.lte_st = ven.lte.attach(this, i, u.lte_phy_mbps);
      return;
    case kMptcp:
      if (!opt_.mptcp_probe || u.skip_wifi || u.skip_lte) {
        begin_phase(i, kDone);
        return;
      }
      // Dual attach: grants from either cell drain one shared backlog —
      // the aggregation-throughput shape of the paper's Figure 7.
      u.remaining = opt_.transfer_bytes;
      u.grants = 0;
      u.phase_start_us = sim_.now().usec();
      u.wifi_st = ven.wifi.attach(this, i, u.wifi_phy_mbps);
      u.lte_st = ven.lte.attach(this, i, u.lte_phy_mbps);
      return;
    case kDone:
    default:
      ++stats_.users_completed;
      --in_flight_;
      if (u.wifi_down_mbps >= 0.0f && u.lte_down_mbps >= 0.0f) {
        ++stats_.both_measured;
        if (u.lte_down_mbps > u.wifi_down_mbps) ++stats_.lte_wins;
      }
      return;
  }
}

std::int64_t ClusterWorld::on_grant(std::uint32_t tag, std::int64_t offered_bytes) {
  UserFlow& u = users_[tag];
  const std::int64_t g = std::min(offered_bytes, u.remaining);
  if (g <= 0) return 0;
  u.remaining -= g;
  ++u.grants;
  if (u.remaining == 0) complete_phase(tag);
  return g;
}

void ClusterWorld::complete_phase(std::uint32_t i) {
  UserFlow& u = users_[i];
  Venue& ven = *venues_[i % venues_.size()];
  const std::int64_t dur_us = sim_.now().usec() - u.phase_start_us;
  // bits per microsecond == Mbps.
  const double mbps =
      dur_us > 0 ? static_cast<double>(opt_.transfer_bytes) * 8.0 / static_cast<double>(dur_us)
                 : 0.0;
  // Contended-RTT proxy: base RTT plus half the mean inter-grant gap —
  // the time a just-missed packet waits for the next transmit
  // opportunity, which is what contention adds to ping.
  const double gap_ms =
      u.grants > 0 ? static_cast<double>(dur_us) / 1000.0 / static_cast<double>(u.grants)
                   : 0.0;
  switch (u.phase) {
    case kWifi:
      u.wifi_down_mbps = static_cast<float>(mbps);
      stats_.wifi_down_mbps.add(mbps);
      stats_.wifi_rtt_ms.add(static_cast<double>(u.wifi_rtt_ms) + 0.5 * gap_ms);
      ven.wifi.detach(u.wifi_st);
      u.wifi_st = StationId{};
      begin_phase(i, kLte);
      return;
    case kLte:
      u.lte_down_mbps = static_cast<float>(mbps);
      stats_.lte_down_mbps.add(mbps);
      stats_.lte_rtt_ms.add(static_cast<double>(u.lte_rtt_ms) + 0.5 * gap_ms);
      ven.lte.detach(u.lte_st);
      u.lte_st = StationId{};
      begin_phase(i, kMptcp);
      return;
    case kMptcp:
    default:
      stats_.mptcp_down_mbps.add(mbps);
      ven.wifi.detach(u.wifi_st);
      ven.lte.detach(u.lte_st);
      u.wifi_st = StationId{};
      u.lte_st = StationId{};
      begin_phase(i, kDone);
      return;
  }
}

std::vector<int> split_users(const std::vector<ClusterSpec>& world,
                             std::uint64_t total_users) {
  std::vector<int> out(world.size(), 0);
  if (world.empty()) return out;
  std::uint64_t weight_sum = 0;
  for (const ClusterSpec& c : world) weight_sum += static_cast<std::uint64_t>(std::max(1, c.runs));
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < world.size(); ++i) {
    const auto w = static_cast<std::uint64_t>(std::max(1, world[i].runs));
    out[i] = static_cast<int>(total_users * w / weight_sum);
    assigned += static_cast<std::uint64_t>(out[i]);
  }
  // Largest-remainder leftovers go to the first clusters: deterministic
  // and at most world.size() - 1 extras.
  for (std::size_t i = 0; assigned < total_users; i = (i + 1) % world.size()) {
    ++out[i];
    ++assigned;
  }
  return out;
}

WorldResult run_world(const std::vector<ClusterSpec>& world, std::uint64_t total_users,
                      const WorldOptions& opt) {
  const std::vector<int> counts = split_users(world, total_users);

  struct ShardOut {
    StreamingClusterStats stats;
    std::uint64_t fired = 0;
    std::int64_t end_us = 0;
  };
  auto shards = parallel_map(world.size(), opt.parallelism, [&](std::size_t i) {
    Simulator sim;  // honours MN_SCALAR_DISPATCH itself
    if (!opt.batch_dispatch) sim.set_batch_dispatch(false);
    std::unique_ptr<obs::ObsHub> hub;
    if (opt.attach_obs) {
      hub = std::make_unique<obs::ObsHub>();
      sim.set_obs(hub.get());
    }
    ClusterWorld cluster(sim, world[i], counts[i], opt);
    sim.run_until_idle();
    return ShardOut{cluster.take_stats(), sim.events_fired(), sim.now().usec()};
  });

  WorldResult r;
  r.stats = StreamingRunStats(world);
  r.total_users = total_users;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    r.stats.cluster(i).merge_from(shards[i].stats);
    r.events_fired += shards[i].fired;
    r.sim_horizon_s = std::max(r.sim_horizon_s, static_cast<double>(shards[i].end_us) / 1e6);
  }
  return r;
}

}  // namespace mn::world
