#include "world/cell.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"

namespace mn::world {

namespace {
// splitmix64 finalizer: the deterministic fast-fading hash.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}
}  // namespace

CellBase::CellBase(Simulator& sim, CellConfig cfg) : sim_(sim), cfg_(std::move(cfg)) {
  sink_id_ = sim_.register_sink([this](SinkSpan items) { on_items(items); });
  stations_.reserve(cfg_.station_capacity);
  free_slots_.reserve(cfg_.station_capacity);
  const auto k = static_cast<std::size_t>(std::max(1, cfg_.grants_per_tick));
  scratch_slots_.resize(k);
  scratch_bytes_.resize(k);
  scratch_items_.resize(k);
  if (sim_.obs() != nullptr) {
    reg_ = &sim_.obs()->metrics();
    m_active_ = reg_->gauge(cfg_.name + ".active_stations");
    m_grants_ = reg_->counter(cfg_.name + ".grants");
    m_granted_bytes_ = reg_->counter(cfg_.name + ".granted_bytes");
    m_busy_us_ = reg_->counter(cfg_.name + ".busy_usec");
  }
}

StationId CellBase::attach(GrantSink* sink, std::uint32_t tag, double phy_mbps) {
  assert(sink != nullptr);
  std::uint32_t slot = 0;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(stations_.size());
    assert(slot < kWakeSlot && "cell station table exceeds the 20-bit slot space");
    stations_.emplace_back();
  }
  Station& st = stations_[slot];
  st.sink = sink;
  st.tag = tag;
  st.phy_mbps = static_cast<float>(phy_mbps);
  st.active = true;
  st.pf_avg_mbps = 0.0f;
  st.pf_last_tick = 0;
  link_active(slot);
  ++active_;
  // An idle cell (no grant or wake item in flight) must restart its
  // tick chain.  The wake lands one service tick out: the chain's
  // selection step runs there and grants begin the tick after — the
  // association/scheduling-request latency a real station pays.
  if (armed_ == 0) {
    sim_.schedule_item_at(sim_.now() + cfg_.service_tick, sink_id_, pack(kWakeSlot, 0, 0));
    armed_ = 1;
  }
  return {slot, st.generation};
}

void CellBase::detach(StationId id) {
  if (!id.valid() || id.slot >= stations_.size()) return;
  Station& st = stations_[id.slot];
  if (!st.active || st.generation != id.generation) return;
  unlink_active(id.slot);
  --active_;
  st.active = false;
  st.sink = nullptr;
  if (++st.generation == 0) st.generation = 1;
  free_slots_.push_back(id.slot);
}

bool CellBase::is_attached(StationId id) const {
  return id.valid() && id.slot < stations_.size() && stations_[id.slot].active &&
         stations_[id.slot].generation == id.generation;
}

std::uint32_t CellBase::take_cursor() {
  const std::uint32_t cur = cursor_;
  cursor_ = stations_[cur].next;
  return cur;
}

void CellBase::link_active(std::uint32_t slot) {
  Station& st = stations_[slot];
  if (cursor_ == StationId::kInvalidSlot) {
    st.next = st.prev = slot;
    cursor_ = slot;
    return;
  }
  // Insert just before the cursor: the newcomer is served after one
  // full round over the existing stations — no queue-jumping.
  const std::uint32_t at = cursor_;
  const std::uint32_t before = stations_[at].prev;
  st.next = at;
  st.prev = before;
  stations_[before].next = slot;
  stations_[at].prev = slot;
}

void CellBase::unlink_active(std::uint32_t slot) {
  Station& st = stations_[slot];
  if (st.next == slot) {
    cursor_ = StationId::kInvalidSlot;
    return;
  }
  stations_[st.prev].next = st.next;
  stations_[st.next].prev = st.prev;
  if (cursor_ == slot) cursor_ = st.next;
}

void CellBase::on_items(SinkSpan items) {
  // One span per service tick under batch dispatch; the same items
  // arrive back-to-back width-1 under scalar dispatch.  handle_item is
  // the shared per-item path, so the two modes execute identical logic
  // in identical (time, seq) order — that is the whole invariance
  // argument, no mode-specific branches anywhere below.
  for (const std::uint64_t item : items) handle_item(item);
}

void CellBase::handle_item(std::uint64_t item) {
  const TimePoint now = sim_.now();
  if (now.usec() != cur_tick_us_) {
    // First item of this tick: run grant selection for the NEXT tick on
    // pre-commit state, before any of this tick's grants land.  Keyed
    // on the tick value so it runs exactly once per tick regardless of
    // dispatch mode or span width.
    cur_tick_us_ = now.usec();
    select_and_arm();
  }
  --armed_;
  const auto slot = static_cast<std::uint32_t>(item & kWakeSlot);
  if (slot == kWakeSlot) return;  // wake marker: selection already ran
  const auto gen = static_cast<std::uint32_t>((item >> kSlotBits) & ((1u << kGenBits) - 1));
  const auto planned = static_cast<std::int64_t>(item >> (kSlotBits + kGenBits));
  Station& st = stations_[slot];
  if (!st.active || (st.generation & ((1u << kGenBits) - 1)) != gen) return;  // stale grant
  std::int64_t offered = planned;
  if (cfg_.backhaul != nullptr) offered = cfg_.backhaul->draw(now, offered);
  std::int64_t accepted = 0;
  if (offered > 0) accepted = st.sink->on_grant(st.tag, offered);
  if (cfg_.backhaul != nullptr && accepted < offered) cfg_.backhaul->refund(offered - accepted);
  ++grants_;
  granted_bytes_ += accepted;
  if (reg_ != nullptr) {
    reg_->add(m_grants_);
    reg_->add(m_granted_bytes_, accepted);
  }
  // on_grant may have detached/reattached this very station; fold PF
  // state only if the grantee is still the station we served.
  if (st.active && (st.generation & ((1u << kGenBits) - 1)) == gen) {
    on_committed(st, accepted, now.usec() / cfg_.service_tick.usec());
  }
}

void CellBase::select_and_arm() {
  const TimePoint now = sim_.now();
  if (reg_ != nullptr) reg_->set(m_active_, active_);
  if (active_ == 0) return;  // cell drains; the next attach re-arms it
  const std::int64_t tick_index = now.usec() / cfg_.service_tick.usec();
  const int k = select_grants(tick_index, scratch_slots_.data(), scratch_bytes_.data());
  if (k <= 0) return;
  for (int j = 0; j < k; ++j) {
    scratch_items_[static_cast<std::size_t>(j)] =
        pack(scratch_slots_[static_cast<std::size_t>(j)],
             stations_[scratch_slots_[static_cast<std::size_t>(j)]].generation,
             scratch_bytes_[static_cast<std::size_t>(j)]);
  }
  sim_.schedule_item_burst_at(
      now + cfg_.service_tick, sink_id_,
      std::span<const std::uint64_t>(scratch_items_.data(), static_cast<std::size_t>(k)));
  armed_ += k;
  if (reg_ != nullptr) reg_->add(m_busy_us_, cfg_.service_tick.usec());
}

int WifiCell::select_grants(std::int64_t /*tick_index*/, std::uint32_t* slots,
                            std::int64_t* bytes) {
  const int n = active_;
  const int k = std::min(cfg_.grants_per_tick, n);
  // DCF airtime fairness: the tick is split into k equal transmit
  // opportunities handed to the next k stations in ring order; each
  // station moves bytes at its OWN PHY rate for its share of airtime
  // (the classic WiFi anomaly: slow stations drag everyone's share of
  // time, not of bytes), degraded by the contention-overhead factor.
  const double share_s = cfg_.service_tick.seconds() / k;
  const double eff = efficiency(n);
  for (int j = 0; j < k; ++j) {
    const std::uint32_t slot = take_cursor();
    slots[j] = slot;
    bytes[j] = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(static_cast<double>(stations_[slot].phy_mbps) * 1e6 /
                                     8.0 * eff * share_s));
  }
  return k;
}

LteSector::LteSector(Simulator& sim, CellConfig cfg, Options opt)
    : CellBase(sim, std::move(cfg)), opt_(opt) {
  snaps_.resize(static_cast<std::size_t>(std::max(1, opt_.pf_window)));
  decay_table_.resize(1024);
  const double d = 1.0 - 1.0 / std::max(1.0, opt_.ewma_ticks);
  double acc = 1.0;
  for (auto& v : decay_table_) {
    v = acc;
    acc *= d;
  }
}

double LteSector::fading(std::uint32_t tag, std::int64_t tick_index) const {
  const std::uint64_t x =
      mix64(opt_.fading_seed ^ (static_cast<std::uint64_t>(tag) * 0x9e3779b97f4a7c15ull) ^
            (static_cast<std::uint64_t>(tick_index) * 0xd1b54a32d192ed03ull));
  const double u = static_cast<double>(x >> 11) * 0x1.0p-53;
  return 1.0 - opt_.fading_depth + 2.0 * opt_.fading_depth * u;
}

double LteSector::decay_pow(std::int64_t ticks) const {
  if (ticks <= 0) return 1.0;
  const auto i = static_cast<std::size_t>(
      std::min<std::int64_t>(ticks, static_cast<std::int64_t>(decay_table_.size()) - 1));
  return decay_table_[i];
}

int LteSector::select_grants(std::int64_t tick_index, std::uint32_t* slots,
                             std::int64_t* bytes) {
  const int n = active_;
  const int window = std::min(opt_.pf_window, n);
  const int k = std::min(cfg_.grants_per_tick, window);
  // Snapshot the candidate window (rotating: take_cursor advances the
  // ring, so successive ticks consider successive windows and no UE
  // starves behind a fixed prefix).
  for (int j = 0; j < window; ++j) {
    const std::uint32_t slot = take_cursor();
    const Station& st = stations_[slot];
    snaps_[static_cast<std::size_t>(j)] = UeSnapshot{
        slot,
        static_cast<float>(static_cast<double>(st.phy_mbps) * fading(st.tag, tick_index)),
        static_cast<float>(static_cast<double>(st.pf_avg_mbps) *
                           decay_pow(tick_index - st.pf_last_tick)),
    };
  }
  const std::span<UeSnapshot> cand(snaps_.data(), static_cast<std::size_t>(window));
  const auto pf_metric = [](const UeSnapshot& s) {
    return static_cast<double>(s.inst_mbps) / std::max(0.05, static_cast<double>(s.avg_mbps));
  };
  // Top-k by PF metric (partial selection sort; window is small and the
  // first-index-wins tie break keeps the choice deterministic).
  const double share_s = cfg_.service_tick.seconds() / k;
  for (int j = 0; j < k; ++j) {
    int best = j;
    double best_m = pf_metric(cand[static_cast<std::size_t>(j)]);
    for (int i = j + 1; i < window; ++i) {
      const double m = pf_metric(cand[static_cast<std::size_t>(i)]);
      if (m > best_m) {
        best_m = m;
        best = i;
      }
    }
    std::swap(cand[static_cast<std::size_t>(j)], cand[static_cast<std::size_t>(best)]);
    slots[j] = cand[static_cast<std::size_t>(j)].slot;
    bytes[j] = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               static_cast<double>(cand[static_cast<std::size_t>(j)].inst_mbps) * 1e6 / 8.0 *
               share_s));
  }
  return k;
}

void LteSector::on_committed(Station& st, std::int64_t accepted_bytes,
                             std::int64_t tick_index) {
  // Classic PF EWMA with lazy decay: R <- R * d^gap, then fold the rate
  // actually served this tick.  bits/usec == Mbps, so the served rate
  // is accepted * 8 / tick_usec with no unit fudge.
  const double served_mbps = static_cast<double>(accepted_bytes) * 8.0 /
                             static_cast<double>(cfg_.service_tick.usec());
  const double decayed = static_cast<double>(st.pf_avg_mbps) *
                         decay_pow(tick_index - st.pf_last_tick);
  st.pf_avg_mbps = static_cast<float>(decayed + served_mbps / std::max(1.0, opt_.ewma_ticks));
  st.pf_last_tick = tick_index;
}

}  // namespace mn::world
