#include "world/port.hpp"

namespace mn::world {

CellPort::CellPort(Simulator& sim, CellBase& cell, double phy_mbps, int queue_packets)
    : sim_(sim), cell_(cell), phy_mbps_(phy_mbps), queue_limit_(queue_packets) {
  (void)sim_;
}

CellPort::~CellPort() { cell_.detach(station_); }

void CellPort::accept(Packet p) {
  ++counters_.accepted;
  if (queue_.size() >= static_cast<std::size_t>(queue_limit_)) {
    ++counters_.dropped;
    note_drop(obs::DropCause::kQueueOverflow, p);
    return;
  }
  note_enqueue(p, static_cast<std::int64_t>(queue_.size()) + 1);
  queue_.push_back(std::move(p));
  if (!cell_.is_attached(station_)) {
    // First byte after idle: join the contention set.  Service starts
    // one tick out (the cell's wake latency), like a radio waking up.
    station_ = cell_.attach(this, 0, phy_mbps_);
  }
}

std::int64_t CellPort::on_grant(std::uint32_t /*tag*/, std::int64_t offered_bytes) {
  credit_ += offered_bytes;
  std::int64_t used = offered_bytes;
  while (!queue_.empty() && queue_.front().wire_bytes() <= credit_) {
    credit_ -= queue_.front().wire_bytes();
    Packet p = queue_.pop_front();
    // forward() may synchronously re-enter accept() (tight loopback
    // wiring); the queue/attach state is consistent before the call.
    forward(std::move(p));
  }
  if (queue_.empty()) {
    // Idle: refund the banked remainder (it may include carry from
    // earlier grants — refund at most what this grant offered) and
    // leave the contention set.
    const std::int64_t refund = std::min(credit_, used);
    used -= refund;
    credit_ = 0;
    cell_.detach(station_);
    station_ = StationId{};
  }
  return used;
}

}  // namespace mn::world
