// Shared, contended last-mile infrastructure: the cells many users
// attach to at once.
//
// The campaign runner gives every simulated user a private WiFi AP and
// a private LTE sector — fine for reproducing Table 1, wrong for the
// question the paper's 750 real users actually posed, where flows in
// one coffee shop contended for the same AP, eNodeB, and backhaul.
// This header models that shared layer:
//
//   WifiCell   — airtime-fair contention.  Per service tick the cell
//                round-robins grants over the active stations; each
//                station's bytes scale with its own PHY rate times a
//                DCF-style efficiency factor eff(n) = 1/(1 + a(n-1))
//                that decays as more stations contend (collision and
//                backoff overhead).
//   LteSector  — proportional-fair downlink.  Per service tick the
//                scheduler snapshots a rotating window of attached UEs
//                (the span-based snapshot idiom the MPTCP scheduler
//                engine uses) and grants the top-k by inst/avg rate,
//                with deterministic per-UE fast fading supplying the
//                multi-user diversity PF exists to exploit.
//   Backhaul   — a token-bucket bottleneck shared by both cells of a
//                cluster, drawn at grant-commit time in (time, seq)
//                order.
//
// Mechanically both cells are *batch sinks* on the simulator's sink
// ABI.  A cell files one burst of grant items per service tick
// (consecutive seqs, one tick), so the whole tick's service arrives
// back as ONE span sweep under batch dispatch and as back-to-back
// width-1 calls under scalar dispatch.  The handler keeps the two modes
// bit-identical by construction: grant *selection* runs once per tick
// keyed on the tick value, before any of that tick's commits, and every
// commit touches only per-station state plus the backhaul bucket in
// (time, seq) order.
//
// Stations are generation-tagged (the simulator's own slot-reuse
// discipline): a grant scheduled for a station that detaches before the
// grant lands hits a stale generation and commits nothing, so detach
// never needs to chase in-flight events.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace mn::world {

/// Consumer side of a grant: the cell offers bytes, the owner returns
/// how many it actually used (less when the flow's remaining backlog is
/// smaller — the surplus is refunded to the backhaul).  Implemented by
/// ClusterWorld (fluid flows) and CellPort (real packet queues).
class GrantSink {
 public:
  virtual ~GrantSink() = default;
  virtual std::int64_t on_grant(std::uint32_t tag, std::int64_t offered_bytes) = 0;
};

/// Handle to an attached station; stale after detach (generation
/// mismatch), so holding one past detach is harmless.
struct StationId {
  static constexpr std::uint32_t kInvalidSlot = 0xffffffffu;
  std::uint32_t slot = kInvalidSlot;
  std::uint32_t generation = 0;
  [[nodiscard]] bool valid() const { return slot != kInvalidSlot; }
};

/// Shared bottleneck behind a cluster's cells: a continuous-refill
/// token bucket drawn at grant commit time.  Integer byte-microsecond
/// arithmetic keeps the refill exact and deterministic.
class Backhaul {
 public:
  Backhaul(double rate_mbps, Duration burst)
      : rate_bytes_per_s_(static_cast<std::int64_t>(rate_mbps * 1e6 / 8.0)),
        burst_bytes_(std::max<std::int64_t>(1, rate_bytes_per_s_ * burst.usec() / 1'000'000)),
        tokens_(burst_bytes_) {}

  /// Take up to `want` bytes at simulated time `now`; returns granted.
  std::int64_t draw(TimePoint now, std::int64_t want) {
    refill(now);
    const std::int64_t g = want < tokens_ ? want : tokens_;
    tokens_ -= g;
    granted_ += g;
    throttled_ += want - g;
    return g;
  }

  /// Return bytes a grant did not use (flow smaller than the offer).
  void refund(std::int64_t bytes) {
    tokens_ = std::min(burst_bytes_, tokens_ + bytes);
    granted_ -= bytes;
    throttled_ += bytes;
  }

  [[nodiscard]] std::int64_t granted_bytes() const { return granted_; }
  [[nodiscard]] std::int64_t throttled_bytes() const { return throttled_; }
  [[nodiscard]] std::int64_t rate_bytes_per_s() const { return rate_bytes_per_s_; }

 private:
  void refill(TimePoint now) {
    const std::int64_t dt = now.usec() - last_.usec();
    if (dt <= 0) return;
    last_ = now;
    acc_byte_us_ += rate_bytes_per_s_ * dt;
    tokens_ = std::min(burst_bytes_, tokens_ + acc_byte_us_ / 1'000'000);
    acc_byte_us_ %= 1'000'000;
  }

  std::int64_t rate_bytes_per_s_;
  std::int64_t burst_bytes_;
  std::int64_t tokens_;
  std::int64_t acc_byte_us_ = 0;  // sub-byte refill remainder
  TimePoint last_{};
  std::int64_t granted_ = 0;
  std::int64_t throttled_ = 0;
};

/// Knobs shared by both cell types.
struct CellConfig {
  std::string name = "cell";  // obs metric prefix: "<name>.grants" etc.
  Duration service_tick = msec(5);
  int grants_per_tick = 8;
  Backhaul* backhaul = nullptr;       // optional shared bottleneck
  std::size_t station_capacity = 64;  // pre-reserved; attach beyond it allocates
};

/// One UE as the PF scheduler sees it during selection — the same
/// span-of-snapshots shape mptcp::SchedContext hands its schedulers.
struct UeSnapshot {
  std::uint32_t slot = 0;
  float inst_mbps = 0.0f;  // PHY rate x deterministic fast fading, this tick
  float avg_mbps = 0.0f;   // PF throughput EWMA, decayed to this tick
};

/// Common station table + tick/grant machinery.  Concrete cells differ
/// only in how they pick stations and size grants (select_grants).
class CellBase {
 public:
  CellBase(Simulator& sim, CellConfig cfg);
  CellBase(const CellBase&) = delete;
  CellBase& operator=(const CellBase&) = delete;
  virtual ~CellBase() = default;

  /// Attach a station (active immediately).  `tag` is echoed to
  /// `sink->on_grant`; `phy_mbps` is this station's own link-layer rate.
  StationId attach(GrantSink* sink, std::uint32_t tag, double phy_mbps);
  /// Idempotent under staleness: a mismatched generation is a no-op.
  void detach(StationId id);
  [[nodiscard]] bool is_attached(StationId id) const;

  [[nodiscard]] int active_stations() const { return active_; }
  [[nodiscard]] std::uint64_t grants() const { return grants_; }
  [[nodiscard]] std::int64_t granted_bytes() const { return granted_bytes_; }
  [[nodiscard]] Duration service_tick() const { return cfg_.service_tick; }

 protected:
  struct Station {
    GrantSink* sink = nullptr;
    std::uint32_t tag = 0;
    std::uint32_t generation = 1;
    float phy_mbps = 0.0f;
    bool active = false;
    // Intrusive ring of active stations (round-robin cursor lives here).
    std::uint32_t next = 0;
    std::uint32_t prev = 0;
    // PF state (LteSector only; dead weight for WiFi, kept unified so
    // one station table serves both cells).
    float pf_avg_mbps = 0.0f;
    std::int64_t pf_last_tick = 0;
  };

  /// Fill `slots`/`bytes` (capacity grants_per_tick) with this tick's
  /// grants; returns how many were planned.  Runs once per tick, before
  /// any of the tick's commits, on pre-commit state.
  virtual int select_grants(std::int64_t tick_index, std::uint32_t* slots,
                            std::int64_t* bytes) = 0;
  /// Commit-side hook (PF EWMA fold); called only for non-stale grants.
  virtual void on_committed(Station& st, std::int64_t accepted_bytes,
                            std::int64_t tick_index) {
    (void)st;
    (void)accepted_bytes;
    (void)tick_index;
  }

  /// Advance the round-robin cursor and return the previous position.
  std::uint32_t take_cursor();

  Simulator& sim_;
  CellConfig cfg_;
  std::vector<Station> stations_;
  std::vector<std::uint32_t> free_slots_;
  std::uint32_t cursor_ = StationId::kInvalidSlot;
  int active_ = 0;

 private:
  // Grant items pack (bytes:32 | generation:12 | slot:20); planned bytes
  // ride in the item itself so a station selected in consecutive ticks
  // never clobbers an in-flight grant's size.
  static constexpr int kSlotBits = 20;
  static constexpr int kGenBits = 12;
  static constexpr std::uint32_t kWakeSlot = (1u << kSlotBits) - 1;

  static std::uint64_t pack(std::uint32_t slot, std::uint32_t gen, std::int64_t bytes) {
    return (static_cast<std::uint64_t>(bytes) << (kSlotBits + kGenBits)) |
           (static_cast<std::uint64_t>(gen & ((1u << kGenBits) - 1)) << kSlotBits) |
           slot;
  }

  void on_items(SinkSpan items);
  void handle_item(std::uint64_t item);
  void select_and_arm();
  void link_active(std::uint32_t slot);
  void unlink_active(std::uint32_t slot);

  SinkId sink_id_;
  std::int64_t cur_tick_us_ = -1;  // tick whose selection already ran
  int armed_ = 0;                  // scheduled-but-unfired grant/wake items
  // Per-selection scratch (preallocated; sized grants_per_tick).
  std::vector<std::uint32_t> scratch_slots_;
  std::vector<std::int64_t> scratch_bytes_;
  std::vector<std::uint64_t> scratch_items_;

  std::uint64_t grants_ = 0;
  std::int64_t granted_bytes_ = 0;

  // Optional registry-backed gauges (present iff the sim has an ObsHub
  // at construction).
  obs::MetricsRegistry* reg_ = nullptr;
  obs::MetricId m_active_ = 0;
  obs::MetricId m_grants_ = 0;
  obs::MetricId m_granted_bytes_ = 0;
  obs::MetricId m_busy_us_ = 0;
};

/// Airtime-fair shared WiFi AP with DCF-style efficiency decay.
class WifiCell final : public CellBase {
 public:
  struct Options {
    /// eff(n) = 1 / (1 + dcf_overhead * (n - 1)): contention/backoff
    /// overhead grows with the active-station count.
    double dcf_overhead = 0.03;
  };

  WifiCell(Simulator& sim, CellConfig cfg, Options opt)
      : CellBase(sim, std::move(cfg)), opt_(opt) {}
  WifiCell(Simulator& sim, CellConfig cfg) : WifiCell(sim, std::move(cfg), Options{}) {}

  [[nodiscard]] double efficiency(int n) const {
    return n <= 1 ? 1.0 : 1.0 / (1.0 + opt_.dcf_overhead * (n - 1));
  }

 protected:
  int select_grants(std::int64_t tick_index, std::uint32_t* slots,
                    std::int64_t* bytes) override;

 private:
  Options opt_;
};

/// Proportional-fair LTE downlink sector.
class LteSector final : public CellBase {
 public:
  struct Options {
    /// PF candidate window per tick.  Selection is exact PF whenever the
    /// active-UE count fits the window; beyond it the window rotates
    /// through the ring so every UE is considered within
    /// ceil(active / window) ticks — a standard bounded-work
    /// approximation.
    int pf_window = 64;
    /// EWMA horizon in ticks (classic PF T).
    double ewma_ticks = 100.0;
    /// Deterministic fast fading: inst rate uniform in
    /// phy * [1 - depth, 1 + depth], hashed from (cell seed, UE tag,
    /// tick index).
    double fading_depth = 0.4;
    std::uint64_t fading_seed = 0x9e3779b97f4a7c15ull;
  };

  LteSector(Simulator& sim, CellConfig cfg, Options opt);
  LteSector(Simulator& sim, CellConfig cfg) : LteSector(sim, std::move(cfg), Options{}) {}

  /// Exposed for tests: the fading factor UE `tag` sees at `tick_index`.
  [[nodiscard]] double fading(std::uint32_t tag, std::int64_t tick_index) const;

 protected:
  int select_grants(std::int64_t tick_index, std::uint32_t* slots,
                    std::int64_t* bytes) override;
  void on_committed(Station& st, std::int64_t accepted_bytes,
                    std::int64_t tick_index) override;

 private:
  [[nodiscard]] double decay_pow(std::int64_t ticks) const;

  Options opt_;
  std::vector<UeSnapshot> snaps_;     // selection scratch, sized pf_window
  std::vector<double> decay_table_;   // (1 - 1/T)^i, i in [0, 1024)
};

}  // namespace mn::world
