// The shared-infrastructure world: many concurrent users contending
// for the cells of cell.hpp inside one simulation.
//
// Each Table-1 cluster becomes ONE simulation containing a set of
// *venues* — each one WifiCell + one LteSector sharing one Backhaul
// (the coffee shop's AP, the overhead sector, and the shop's uplink) —
// plus n fluid user flows that replay the paper's measurement
// protocol: every user runs a WiFi bulk probe, then
// an LTE bulk probe, then (optionally) an MPTCP probe attached to BOTH
// cells at once — grants from either cell drain one shared backlog,
// which is exactly the aggregation-throughput question of Figure 7.
// Flows are fluid (byte backlogs served by grants, no per-packet
// events), which is what makes 10^5-10^6 concurrent users tractable:
// event count scales with cell service ticks, not with packets.  Full
// per-packet fidelity over the same cells is available separately via
// world::CellPort (port.hpp) for endpoint-level tests.
//
// Determinism contract (DESIGN.md §14):
//   - Every per-user random draw comes from an Rng forked off
//     (seed, cluster name) BEFORE the simulation starts; nothing inside
//     the event loop draws randomness except the LTE sector's hashed
//     fading, which is a pure function of (seed, tag, tick).
//   - One cluster == one Simulator.  run_world shards clusters across
//     workers with parallel_map and merges StreamingClusterStats in
//     cluster order, so results are byte-identical at any MN_THREADS.
//   - Within a cluster, cells keep batched and scalar dispatch
//     bit-identical (see cell.hpp); the golden test pins both axes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "measure/streaming.hpp"
#include "measure/world.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"
#include "world/cell.hpp"

namespace mn::world {

struct WorldOptions {
  /// Bytes per probe transfer (the paper's fixed 1 MB bulk download).
  std::int64_t transfer_bytes = 1'000'000;
  /// Run the third, dual-attached MPTCP probe after the two singles.
  bool mptcp_probe = true;
  /// Probability a user skips one technology (the paper's incomplete
  /// runs); skipped users never enter the LTE-win denominator.
  double incomplete_probability = 0.0;
  /// User arrival times are uniform over [0, arrival_window_s).  The
  /// default keeps a 64-user venue below saturation (crowdsourced users
  /// trickle in; they do not start in the same second) — shrink it to
  /// study thundering-herd overload, where the WiFi-first protocol
  /// piles every arrival onto the APs and LTE wins almost everywhere.
  double arrival_window_s = 60.0;

  // -- contention model ----------------------------------------------
  /// Users per venue (one WifiCell + LteSector + Backhaul).  A cluster
  /// with n users gets ceil(n / users_per_cell) venues and users are
  /// dealt round-robin, so cell contention stays at realistic AP
  /// density no matter how many users the cluster holds.
  int users_per_cell = 64;
  Duration service_tick = msec(5);
  int wifi_grants_per_tick = 8;
  int lte_grants_per_tick = 8;
  double dcf_overhead = 0.03;
  int pf_window = 64;
  double pf_ewma_ticks = 100.0;
  double fading_depth = 0.4;
  /// Per-venue backhaul shared by its WiFi cell and LTE sector;
  /// <= 0 disables the bottleneck.
  double backhaul_mbps = 40.0;
  Duration backhaul_burst = msec(20);

  std::uint64_t seed = 20130901;
  /// Register per-cell gauges into an ObsHub on the cluster's sim.
  bool attach_obs = false;
  /// false -> width-1 scalar dispatch (golden tests; results identical).
  bool batch_dispatch = true;
  /// Worker threads for run_world (0 -> MN_THREADS / hardware).
  int parallelism = 0;
};

/// One cluster's shared world: cells + n users on one Simulator.  The
/// caller owns the Simulator and drives it (run_until_idle); the world
/// schedules user arrivals in its constructor.
class ClusterWorld final : public GrantSink {
 public:
  ClusterWorld(Simulator& sim, const ClusterSpec& spec, int n_users,
               const WorldOptions& opt);

  std::int64_t on_grant(std::uint32_t tag, std::int64_t offered_bytes) override;

  [[nodiscard]] const StreamingClusterStats& stats() const { return stats_; }
  [[nodiscard]] StreamingClusterStats take_stats() { return std::move(stats_); }
  [[nodiscard]] int users_in_flight() const { return in_flight_; }
  [[nodiscard]] std::size_t venue_count() const { return venues_.size(); }
  [[nodiscard]] WifiCell& wifi(std::size_t v = 0) { return venues_[v]->wifi; }
  [[nodiscard]] LteSector& lte(std::size_t v = 0) { return venues_[v]->lte; }
  [[nodiscard]] Backhaul& backhaul(std::size_t v = 0) { return venues_[v]->backhaul; }

 private:
  struct Venue {
    Backhaul backhaul;  // initialized first: the cells point at it
    WifiCell wifi;
    LteSector lte;
    Venue(Simulator& sim, Backhaul bh, bool use_backhaul, CellConfig wifi_cfg,
          WifiCell::Options wopt, CellConfig lte_cfg, LteSector::Options lopt)
        : backhaul(bh),
          wifi(sim, with_backhaul(std::move(wifi_cfg), use_backhaul ? &backhaul : nullptr),
               wopt),
          lte(sim, with_backhaul(std::move(lte_cfg), use_backhaul ? &backhaul : nullptr),
              lopt) {}

   private:
    static CellConfig with_backhaul(CellConfig c, Backhaul* b) {
      c.backhaul = b;
      return c;
    }
  };
  enum Phase : std::uint8_t { kWifi = 0, kLte = 1, kMptcp = 2, kDone = 3 };

  struct UserFlow {
    float wifi_phy_mbps = 0.0f;
    float lte_phy_mbps = 0.0f;
    float wifi_rtt_ms = 0.0f;  // uncontended base RTTs
    float lte_rtt_ms = 0.0f;
    std::int64_t remaining = 0;
    std::int64_t phase_start_us = 0;
    std::uint32_t grants = 0;
    std::uint8_t phase = kWifi;
    bool skip_wifi = false;
    bool skip_lte = false;
    StationId wifi_st;
    StationId lte_st;
    float wifi_down_mbps = -1.0f;  // measured; <0 = not measured
    float lte_down_mbps = -1.0f;
  };

  void start_user(std::uint32_t i);
  void begin_phase(std::uint32_t i, std::uint8_t phase);
  void complete_phase(std::uint32_t i);

  Simulator& sim_;
  WorldOptions opt_;
  std::vector<std::unique_ptr<Venue>> venues_;
  std::vector<UserFlow> users_;
  StreamingClusterStats stats_;
  int in_flight_ = 0;
};

/// Aggregate outcome of a multi-cluster world run.
struct WorldResult {
  StreamingRunStats stats;
  std::uint64_t events_fired = 0;
  std::uint64_t total_users = 0;
  double sim_horizon_s = 0.0;  // max end-of-sim time across clusters
};

/// Distribute `total_users` over `world`'s clusters (weighted by each
/// cluster's Table-1 run count), simulate every cluster on its own
/// Simulator — in parallel across opt.parallelism workers — and merge
/// the per-cluster streaming stats in cluster order.
[[nodiscard]] WorldResult run_world(const std::vector<ClusterSpec>& world,
                                    std::uint64_t total_users, const WorldOptions& opt);

/// The deterministic per-cluster user split run_world uses (exposed for
/// tests and for benches that want to report it).
[[nodiscard]] std::vector<int> split_users(const std::vector<ClusterSpec>& world,
                                           std::uint64_t total_users);

}  // namespace mn::world
