// Synthetic delivery-trace generators.
//
// These stand in for the packet-delivery traces the paper recorded on
// real WiFi and LTE links (Section 5 uses recorded TCP traces to drive
// Mahimahi; we generate statistically similar ones):
//   - constant_rate: evenly spaced opportunities (an idealized link).
//   - poisson: exponential inter-opportunity gaps (WiFi-ish contention).
//   - two_state: Gilbert-style good/degraded alternation (LTE-ish
//     scheduler burstiness; also models WiFi interference episodes).
#pragma once

#include "net/delivery_trace.hpp"
#include "util/rng.hpp"

namespace mn {

/// Evenly spaced MTU opportunities averaging `mbps` over `period`.
[[nodiscard]] DeliveryTrace constant_rate_trace(double mbps, Duration period);

/// Poisson arrivals of MTU opportunities averaging `mbps` over `period`.
[[nodiscard]] DeliveryTrace poisson_trace(double mbps, Duration period, Rng& rng);

struct TwoStateSpec {
  double good_mbps = 10.0;
  double bad_mbps = 2.0;
  Duration mean_dwell = msec(500);  // mean time in each state
};

/// Two-state Markov-modulated Poisson trace: alternates between good and
/// degraded delivery rates with exponentially distributed dwell times.
[[nodiscard]] DeliveryTrace two_state_trace(const TwoStateSpec& spec, Duration period,
                                            Rng& rng);

}  // namespace mn
