#include "net/links.hpp"

#include <stdexcept>

#include "util/units.hpp"

namespace mn {

void DelayBox::accept(Packet p) {
  ++counters_.accepted;
  ++in_flight_;
  sim_.schedule_after(delay_, [this, p = std::move(p)]() mutable {
    --in_flight_;
    forward(std::move(p));
  });
}

void LossBox::accept(Packet p) {
  ++counters_.accepted;
  if (rng_.chance(loss_rate_)) {
    ++counters_.dropped;
    return;
  }
  forward(std::move(p));
}

void GilbertElliottLossBox::accept(Packet p) {
  ++counters_.accepted;
  if (enabled_) {
    // Step the chain first, then draw the loss from the new state: a
    // burst begins with the packet that triggers the transition.
    if (bad_) {
      if (rng_.chance(spec_.p_bad_to_good)) bad_ = false;
    } else {
      if (rng_.chance(spec_.p_good_to_bad)) bad_ = true;
    }
    if (rng_.chance(bad_ ? spec_.loss_bad : spec_.loss_good)) {
      ++counters_.dropped;
      return;
    }
  }
  forward(std::move(p));
}

void GilbertElliottLossBox::set_spec(const GeLossSpec& spec) {
  spec_ = spec;
  enabled_ = true;
  bad_ = false;
}

void GilbertElliottLossBox::disable() {
  enabled_ = false;
  bad_ = false;
}

void ReorderBox::accept(Packet p) {
  ++counters_.accepted;
  if (rng_.chance(probability_)) {
    const Duration jitter{static_cast<std::int64_t>(
        rng_.uniform(0.5, 1.5) * static_cast<double>(extra_delay_.usec()))};
    sim_.schedule_after(jitter, [this, p = std::move(p)]() mutable {
      forward(std::move(p));
    });
    return;
  }
  forward(std::move(p));
}

RateLink::RateLink(Simulator& sim, double mbps, int queue_packets)
    : sim_(sim), mbps_(mbps), queue_limit_(queue_packets) {
  if (mbps <= 0.0) throw std::invalid_argument("RateLink: rate must be positive");
  if (queue_packets <= 0) throw std::invalid_argument("RateLink: queue must hold >= 1 packet");
}

void RateLink::set_rate(double mbps) {
  if (mbps <= 0.0) throw std::invalid_argument("RateLink: rate must be positive");
  mbps_ = mbps;
}

void RateLink::accept(Packet p) {
  ++counters_.accepted;
  if (queued_ >= queue_limit_) {
    ++counters_.dropped;
    return;
  }
  ++queued_;
  const TimePoint start = std::max(sim_.now(), busy_until_);
  const TimePoint finish = start + transmission_time(p.wire_bytes(), mbps_);
  busy_until_ = finish;
  sim_.schedule_at(finish, [this, p = std::move(p)]() mutable {
    --queued_;
    forward(std::move(p));
  });
}

TraceLink::TraceLink(Simulator& sim, TracePtr trace, int queue_packets)
    : sim_(sim), trace_(std::move(trace)), queue_limit_(queue_packets) {
  if (!trace_) throw std::invalid_argument("TraceLink: null trace");
  if (queue_packets <= 0) throw std::invalid_argument("TraceLink: queue must hold >= 1 packet");
}

void TraceLink::accept(Packet p) {
  ++counters_.accepted;
  if (queue_.size() >= static_cast<std::size_t>(queue_limit_)) {
    ++counters_.dropped;
    return;
  }
  queue_.push_back(std::move(p));
  arm_drain();
}

void TraceLink::arm_drain() {
  if (drain_armed_ || queue_.empty()) return;
  const TimePoint when = trace_->next_opportunity(std::max(sim_.now(), next_allowed_));
  drain_armed_ = true;
  sim_.schedule_at(when, [this] { drain(); });
}

void TraceLink::drain() {
  drain_armed_ = false;
  // This opportunity is consumed regardless of how much it carries.
  next_allowed_ = sim_.now() + usec(1);
  std::int64_t budget = Packet::kMtu;
  while (!queue_.empty() && queue_.front().wire_bytes() <= budget) {
    budget -= queue_.front().wire_bytes();
    Packet p = std::move(queue_.front());
    queue_.pop_front();
    forward(std::move(p));
  }
  arm_drain();
}

}  // namespace mn
