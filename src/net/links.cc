#include "net/links.hpp"

#include <stdexcept>

#include "util/units.hpp"

namespace mn {

void PacketStage::note_drop_slow(obs::DropCause cause, const Packet& p) {
  obs()->packet_dropped(obs_sim_->now(), cause, p.wire_bytes());
}

void PacketStage::note_enqueue_slow(const Packet& p, std::int64_t depth) {
  obs()->packet_enqueued(obs_sim_->now(), p.wire_bytes(), depth);
}

void PacketStage::note_deliver_slow(const Packet& p) {
  obs()->packet_delivered(obs_sim_->now(), p.wire_bytes());
}

void PacketStage::note_deliver_batch_slow(std::span<const Packet> ps) {
  obs::ObsHub* o = obs();
  o->count(o->ids().pkt_delivered, static_cast<std::int64_t>(ps.size()));
  if (o->flight() != nullptr) {
    for (const Packet& p : ps) {
      o->record(obs_sim_->now(), obs::FlightEventType::kPktDeliver, 0, 0, p.wire_bytes());
    }
  }
}

DelayBox::DelayBox(Simulator& sim, Duration delay) : sim_(sim), delay_(delay) {
  sink_ = sim_.register_sink([this](SinkSpan idxs) { deliver_batch(idxs); });
}

void DelayBox::accept(Packet p) {
  ++counters_.accepted;
  const std::uint32_t idx = pool_.put(std::move(p));
  sim_.schedule_item_after(delay_, sink_, idx);
}

void DelayBox::deliver_batch(SinkSpan idxs) {
  // The DelayBox is the pipeline exit, so this is the one place packets
  // count as delivered by the pipe (kPktDeliver); per-stage forwards in
  // the middle of the pipe are not separately recorded.
  if (batch_next_) {
    // Whole-sweep path: reclaim every slot first, then one downstream
    // call with the packets in delivery order.
    counters_.delivered += idxs.size();
    sweep_.clear();
    for (const std::uint64_t idx : idxs)
      sweep_.push_back(pool_.take(static_cast<std::uint32_t>(idx)));
    note_deliver_batch(std::span<const Packet>{sweep_.data(), sweep_.size()});
    batch_next_(std::span<Packet>{sweep_.data(), sweep_.size()});
    return;
  }
  for (const std::uint64_t idx : idxs) {
    Packet p = pool_.take(static_cast<std::uint32_t>(idx));
    note_deliver(p);
    forward(std::move(p));
  }
}

void LossBox::accept(Packet p) {
  ++counters_.accepted;
  if (rng_.chance(loss_rate_)) {
    ++counters_.dropped;
    note_drop(obs::DropCause::kRandomLoss, p);
    return;
  }
  forward(std::move(p));
}

void GilbertElliottLossBox::accept(Packet p) {
  ++counters_.accepted;
  if (enabled_) {
    // Step the chain first, then draw the loss from the new state: a
    // burst begins with the packet that triggers the transition.
    if (bad_) {
      if (rng_.chance(spec_.p_bad_to_good)) bad_ = false;
    } else {
      if (rng_.chance(spec_.p_good_to_bad)) bad_ = true;
    }
    if (rng_.chance(bad_ ? spec_.loss_bad : spec_.loss_good)) {
      ++counters_.dropped;
      note_drop(obs::DropCause::kBurstLoss, p);
      return;
    }
  }
  forward(std::move(p));
}

void GilbertElliottLossBox::set_spec(const GeLossSpec& spec) {
  spec_ = spec;
  enabled_ = true;
  bad_ = false;
}

void GilbertElliottLossBox::disable() {
  enabled_ = false;
  bad_ = false;
}

void ReorderBox::accept(Packet p) {
  ++counters_.accepted;
  if (rng_.chance(probability_)) {
    const Duration jitter{static_cast<std::int64_t>(
        rng_.uniform(0.5, 1.5) * static_cast<double>(extra_delay_.usec()))};
    const std::uint32_t idx = pool_.put(std::move(p));
    sim_.schedule_after(jitter, [this, idx] { forward(pool_.take(idx)); });
    return;
  }
  forward(std::move(p));
}

RateLink::RateLink(Simulator& sim, double mbps, int queue_packets)
    : sim_(sim), mbps_(mbps), queue_limit_(queue_packets) {
  if (mbps <= 0.0) throw std::invalid_argument("RateLink: rate must be positive");
  if (queue_packets <= 0) throw std::invalid_argument("RateLink: queue must hold >= 1 packet");
  // At most one drain completion is ever live, so the span is width-1;
  // the loop is defensive symmetry with the other sink stages.
  sink_ = sim_.register_sink([this](SinkSpan s) {
    for (std::size_t i = 0; i < s.size(); ++i) finish_head();
  });
}

void RateLink::set_rate(double mbps) {
  if (mbps <= 0.0) throw std::invalid_argument("RateLink: rate must be positive");
  if (mbps == mbps_) return;
  if (!sending_) {
    mbps_ = mbps;
    return;
  }
  // Re-plan the in-progress serialization: whatever the old rate already
  // put on the wire stays sent, the remainder continues at the new rate,
  // and every packet queued behind the head inherits the new rate when
  // its turn comes.
  sim_.cancel(drain_event_);
  const std::int64_t sent =
      std::min(head_wire_bytes_, bytes_at_rate(mbps_, sim_.now() - head_start_));
  head_wire_bytes_ -= sent;
  head_start_ = sim_.now();
  mbps_ = mbps;
  drain_event_ =
      sim_.schedule_item_after(transmission_time(head_wire_bytes_, mbps_), sink_, 0);
}

void RateLink::accept(Packet p) {
  ++counters_.accepted;
  if (queue_.size() >= static_cast<std::size_t>(queue_limit_)) {
    ++counters_.dropped;
    note_drop(obs::DropCause::kQueueOverflow, p);
    return;
  }
  note_enqueue(p, static_cast<std::int64_t>(queue_.size()) + 1);
  queue_.push_back(std::move(p));
  if (!sending_) begin_head();
}

void RateLink::begin_head() {
  sending_ = true;
  head_start_ = sim_.now();
  head_wire_bytes_ = queue_.front().wire_bytes();
  drain_event_ =
      sim_.schedule_item_after(transmission_time(head_wire_bytes_, mbps_), sink_, 0);
}

void RateLink::finish_head() {
  sending_ = false;
  Packet p = queue_.pop_front();
  forward(std::move(p));
  // forward() can synchronously re-enter accept() (tight loopback
  // wiring), which may have restarted the serializer already.
  if (!sending_ && !queue_.empty()) begin_head();
}

TraceLink::TraceLink(Simulator& sim, TracePtr trace, int queue_packets)
    : sim_(sim), trace_(std::move(trace)), queue_limit_(queue_packets) {
  if (!trace_) throw std::invalid_argument("TraceLink: null trace");
  if (queue_packets <= 0) throw std::invalid_argument("TraceLink: queue must hold >= 1 packet");
  cursor_ = DeliveryTrace::Cursor{*trace_};
  // drain_armed_ guarantees a single live opportunity event; see
  // RateLink for why the loop is still written over the span.
  sink_ = sim_.register_sink([this](SinkSpan s) {
    for (std::size_t i = 0; i < s.size(); ++i) drain();
  });
}

void TraceLink::accept(Packet p) {
  ++counters_.accepted;
  if (queue_.size() >= static_cast<std::size_t>(queue_limit_)) {
    ++counters_.dropped;
    note_drop(obs::DropCause::kQueueOverflow, p);
    return;
  }
  note_enqueue(p, static_cast<std::int64_t>(queue_.size()) + 1);
  queue_.push_back(std::move(p));
  arm_drain();
}

void TraceLink::arm_drain() {
  if (drain_armed_ || queue_.empty()) return;
  const TimePoint when = cursor_.next(std::max(sim_.now(), next_allowed_));
  drain_armed_ = true;
  sim_.schedule_item_at(when, sink_, 0);
}

void TraceLink::drain() {
  drain_armed_ = false;
  // This opportunity is consumed regardless of how much it carries: the
  // whole MTU's worth of queued packets leaves in one contiguous sweep.
  next_allowed_ = sim_.now() + usec(1);
  std::int64_t budget = Packet::kMtu;
  while (!queue_.empty() && queue_.front().wire_bytes() <= budget) {
    budget -= queue_.front().wire_bytes();
    forward(queue_.pop_front());
  }
  arm_drain();
}

}  // namespace mn
