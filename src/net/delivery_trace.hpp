// Mahimahi-style packet-delivery traces.
//
// A trace is a sorted list of opportunity timestamps plus a period; the
// pattern repeats forever (Mahimahi's trace-looping semantics).  Each
// opportunity can deliver up to one MTU (1500 bytes) of queued packets.
// The on-disk format matches Mahimahi: one integer per line, the
// millisecond timestamp of an opportunity; the period is the last
// timestamp (rounded up to at least 1 ms).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace mn {

class DeliveryTrace {
 public:
  /// `opportunities` must be sorted, non-negative, and within `period`.
  /// Throws std::invalid_argument otherwise (or if the trace is empty /
  /// the period non-positive: a link that never delivers is a config bug).
  DeliveryTrace(std::vector<Duration> opportunities, Duration period);

  /// First opportunity at time >= `t`.
  [[nodiscard]] TimePoint next_opportunity(TimePoint t) const;

  /// Stateful, monotone variant of next_opportunity for the drain loop.
  ///
  /// A cursor remembers its position (opportunity index + loop cycle) in
  /// the infinite looped opportunity sequence, and next(t) only ever
  /// walks forward from there — amortized O(1) per query when `t` is
  /// non-decreasing (which simulator time is), against O(log n) binary
  /// search per drain for the stateless call.  Invariant: the cursor's
  /// candidate opportunity never precedes any previously returned one.
  /// If `t` moves backwards (a time wrap — e.g. the owning link is
  /// re-used across simulator lifetimes) or jumps forward by more than
  /// one period, the cursor re-seeks with one binary search.
  /// next(t) returns exactly what next_opportunity(t) returns, always.
  class Cursor {
   public:
    Cursor() = default;
    explicit Cursor(const DeliveryTrace& trace) : trace_(&trace) {}
    [[nodiscard]] TimePoint next(TimePoint t);

   private:
    const DeliveryTrace* trace_ = nullptr;
    std::size_t idx_ = 0;     // position within one period's opportunities
    std::int64_t cycle_ = 0;  // which repetition of the trace
    std::int64_t last_t_ = std::numeric_limits<std::int64_t>::min();
  };

  [[nodiscard]] Duration period() const { return period_; }
  [[nodiscard]] std::size_t opportunities_per_period() const { return opportunities_.size(); }
  /// The sorted per-period opportunity offsets, exactly as stored —
  /// full precision (unlike the millisecond-rounded Mahimahi text), so
  /// content hashing (the result store's scenario keys) is collision-safe.
  [[nodiscard]] const std::vector<Duration>& opportunities() const { return opportunities_; }
  /// Long-run average rate implied by the trace, in megabits/second,
  /// assuming every opportunity carries a full MTU.
  [[nodiscard]] double average_rate_mbps() const;

  /// Serialize to Mahimahi's one-millisecond-integer-per-line format.
  [[nodiscard]] std::string to_mahimahi() const;
  /// Parse the Mahimahi format; throws std::runtime_error on bad input.
  [[nodiscard]] static DeliveryTrace from_mahimahi(const std::string& text);
  /// File round-trip in the same format (interoperable with Mahimahi's
  /// mm-link trace files).  Throw std::runtime_error on I/O failure.
  void save(const std::string& path) const;
  [[nodiscard]] static DeliveryTrace load(const std::string& path);

 private:
  std::vector<Duration> opportunities_;  // sorted offsets within one period
  Duration period_;
};

using TracePtr = std::shared_ptr<const DeliveryTrace>;

}  // namespace mn
