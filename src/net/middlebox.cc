#include "net/middlebox.hpp"

namespace mn {

void MiddleboxBox::set_spec(const MiddleboxSpec& spec) {
  // One fixed draw order so a given seed is one reproducible middlebox
  // regardless of which probabilities are zero.
  Rng policy{spec.seed};
  strips_capable_ = policy.chance(spec.strip_capable);
  strips_join_ = policy.chance(spec.strip_join);
  drops_unknown_syn_ = policy.chance(spec.drop_unknown_syn);
  rewrites_seq_ = policy.chance(spec.rewrite_seq);
  mangle_dss_ = spec.mangle_dss;
  rng_ = Rng{mix_seed(spec.seed, "mangle")};
  enabled_ = true;
}

void MiddleboxBox::disable() {
  enabled_ = false;
  strips_capable_ = strips_join_ = drops_unknown_syn_ = rewrites_seq_ = false;
  mangle_dss_ = 0.0;
}

void MiddleboxBox::accept(Packet p) {
  ++counters_.accepted;
  if (!enabled_) {
    forward(std::move(p));
    return;
  }
  if (p.flags.syn) {
    if (p.mp_option != MpOption::kNone) {
      if (drops_unknown_syn_) {
        ++counters_.dropped;
        ++syn_dropped_;
        note_drop(obs::DropCause::kMiddlebox, p);
        note_syn_dropped();
        return;
      }
      if ((p.mp_option == MpOption::kCapable && strips_capable_) ||
          (p.mp_option == MpOption::kJoin && strips_join_)) {
        p.mp_option = MpOption::kNone;
        ++syn_stripped_;
        note_syn_stripped();
      }
    }
  } else if (p.data_seq >= 0 || p.data_ack >= 0) {
    // Data-path DSS interference.  MP_FAIL itself rides a bare ACK with
    // no DSS fields, so the fallback signal always gets through — the
    // same asymmetry that makes real infinite-mapping fallback viable.
    if (rewrites_seq_ || (mangle_dss_ > 0.0 && rng_.chance(mangle_dss_))) {
      p.data_seq = -1;
      p.data_ack = -1;
      ++dss_mangled_;
      note_dss_mangled();
    }
  }
  forward(std::move(p));
}

void MiddleboxBox::accept_batch(std::span<Packet> ps) {
  // Per-batch entry point.  The policy itself stays packet-by-packet —
  // the mangle draw must consume the RNG stream in arrival order for
  // determinism — so this is one call into the box per burst, not a
  // changed decision procedure.
  for (Packet& p : ps) accept(std::move(p));
}

void MiddleboxBox::note_syn_stripped() {
  if (auto* o = obs()) o->count(o->ids().middlebox_syn_stripped);
}

void MiddleboxBox::note_syn_dropped() {
  if (auto* o = obs()) o->count(o->ids().middlebox_syn_dropped);
}

void MiddleboxBox::note_dss_mangled() {
  if (auto* o = obs()) o->count(o->ids().middlebox_dss_mangled);
}

}  // namespace mn
