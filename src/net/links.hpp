// Unidirectional packet-pipeline stages: loss, delay, fixed-rate link,
// and the Mahimahi-style trace-driven link.
//
// A stage accepts packets and forwards them to the next handler, possibly
// later (simulated time) and possibly never (drops).  Stages are composed
// left-to-right by Path (see path.hpp).  All stages keep simple counters
// so tests and benches can assert on queue behaviour.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "net/delivery_trace.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace mn {

using PacketHandler = std::function<void(Packet)>;

struct StageCounters {
  std::uint64_t accepted = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
};

/// Base for pipeline stages.  Not copyable: stages are wired by reference.
class PacketStage {
 public:
  PacketStage() = default;
  PacketStage(const PacketStage&) = delete;
  PacketStage& operator=(const PacketStage&) = delete;
  virtual ~PacketStage() = default;

  virtual void accept(Packet p) = 0;
  void set_next(PacketHandler next) { next_ = std::move(next); }

  [[nodiscard]] const StageCounters& counters() const { return counters_; }
  /// Packets accepted but neither delivered nor dropped yet (queued or
  /// in flight inside the stage).  Every stage maintains the invariant
  ///   accepted == delivered + dropped + queued_packets()
  /// which the fault-injection soak harness asserts after every run.
  [[nodiscard]] virtual std::int64_t queued_packets() const { return 0; }

 protected:
  void forward(Packet p) {
    ++counters_.delivered;
    if (next_) next_(std::move(p));
  }
  StageCounters counters_;

 private:
  PacketHandler next_;
};

/// Constant one-way propagation delay.
class DelayBox final : public PacketStage {
 public:
  DelayBox(Simulator& sim, Duration delay) : sim_(sim), delay_(delay) {}
  void accept(Packet p) override;

  /// Change the propagation delay for packets accepted from now on
  /// (fault injection: delay spikes).  In-flight packets keep their
  /// original delivery time, so reordering across the change is possible
  /// only when the delay shrinks — exactly as on a real route change.
  void set_delay(Duration delay) { delay_ = delay; }
  [[nodiscard]] Duration delay() const { return delay_; }
  [[nodiscard]] std::int64_t queued_packets() const override { return in_flight_; }

 private:
  Simulator& sim_;
  Duration delay_;
  std::int64_t in_flight_ = 0;
};

/// Independent (Bernoulli) packet loss.
class LossBox final : public PacketStage {
 public:
  LossBox(Rng rng, double loss_rate) : rng_(std::move(rng)), loss_rate_(loss_rate) {}
  void accept(Packet p) override;

 private:
  Rng rng_;
  double loss_rate_;
};

/// Gilbert-Elliott burst loss: a two-state (Good/Bad) Markov chain
/// stepped per packet, with an independent loss probability in each
/// state.  Models the correlated loss episodes of wireless links (deep
/// fades, handovers) that Bernoulli loss cannot produce; the fault
/// injector flips it on mid-run for burst-loss faults.
struct GeLossSpec {
  double loss_good = 0.0;     // loss probability in the Good state
  double loss_bad = 0.5;      // loss probability in the Bad state
  double p_good_to_bad = 0.01;  // per-packet Good -> Bad transition
  double p_bad_to_good = 0.1;   // per-packet Bad -> Good transition
  std::uint64_t seed = 1;
};

class GilbertElliottLossBox final : public PacketStage {
 public:
  /// Constructed disabled (pure pass-through) until a spec is set.
  explicit GilbertElliottLossBox(std::uint64_t seed) : rng_(seed) {}
  void accept(Packet p) override;

  /// Enable (or live-reconfigure) burst loss.  The chain restarts in the
  /// Good state; the RNG stream continues (no reseed mid-run).
  void set_spec(const GeLossSpec& spec);
  /// Back to pass-through; state resets to Good.
  void disable();
  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] bool in_bad_state() const { return bad_; }

 private:
  Rng rng_;
  GeLossSpec spec_;
  bool enabled_ = false;
  bool bad_ = false;
};

/// Fixed-rate serializing link with a DropTail queue of `queue_packets`.
class RateLink final : public PacketStage {
 public:
  RateLink(Simulator& sim, double mbps, int queue_packets);
  void accept(Packet p) override;

  [[nodiscard]] std::int64_t queued_packets() const override { return queued_; }

  /// Change the link rate for packets accepted from now on (fault
  /// injection: rate crashes/recoveries).  Packets already serializing
  /// keep their scheduled finish time.  Throws on non-positive rates.
  void set_rate(double mbps);
  [[nodiscard]] double rate_mbps() const { return mbps_; }

 private:
  Simulator& sim_;
  double mbps_;
  int queue_limit_;
  std::int64_t queued_ = 0;
  TimePoint busy_until_{0};
};

/// Random extra delay on a fraction of packets — produces genuine packet
/// reordering (wireless links reorder under link-layer retransmission).
/// Used to stress the transport's reordering tolerance.
class ReorderBox final : public PacketStage {
 public:
  ReorderBox(Simulator& sim, Rng rng, double reorder_probability, Duration extra_delay)
      : sim_(sim),
        rng_(std::move(rng)),
        probability_(reorder_probability),
        extra_delay_(extra_delay) {}
  void accept(Packet p) override;

 private:
  Simulator& sim_;
  Rng rng_;
  double probability_;
  Duration extra_delay_;
};

/// Mahimahi-semantics trace-driven link: a DropTail queue drained by MTU
/// delivery opportunities from a looping DeliveryTrace.  Each opportunity
/// carries up to kMtu bytes of whole packets; unused capacity is wasted
/// (as on a real shared channel slot).
class TraceLink final : public PacketStage {
 public:
  TraceLink(Simulator& sim, TracePtr trace, int queue_packets);
  void accept(Packet p) override;

  [[nodiscard]] std::int64_t queued_packets() const override {
    return static_cast<std::int64_t>(queue_.size());
  }

 private:
  void arm_drain();
  void drain();

  Simulator& sim_;
  TracePtr trace_;
  int queue_limit_;
  std::deque<Packet> queue_;
  bool drain_armed_ = false;
  TimePoint next_allowed_{0};  // first instant a new opportunity may fire
};

}  // namespace mn
